#!/usr/bin/env python3
# Copyright 2026 The densest Authors.
"""CI validator for the observability artifacts (stdlib-only).

Checks the two files a `--metrics-out` / `--trace-out` run writes:

  --metrics FILE   Prometheus text exposition (or the .json mirror) must
                   contain every name registered in src/obs/metric_names.h
                   — the registry pre-allocates every slot, so an absent
                   series means the exporter or the registry regressed.
  --trace FILE     chrome://tracing JSON: must parse, every event must be
                   a well-formed complete ("X") event, and each thread's
                   spans must be well-nested (properly contained or
                   disjoint — a half-overlap means a torn span record).

Flags:
  --require-events N   fail unless the trace holds at least N events
                       (default 1; use 0 for tracing-compiled-out legs)
  --require-subsystems a,b,...   fail unless the exposition shows nonzero
                       activity (counter > 0 or histogram count > 0) in
                       every listed subsystem prefix

Usage:
  tools/check_obs.py --metrics m.prom --trace t.json \
      --require-subsystems core,dynamic,serve
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys


def load_registered_names(repo_root: str) -> dict[str, set[str]]:
    """The four name arrays of src/obs/metric_names.h, keyed by kind."""
    path = os.path.join(repo_root, "src/obs/metric_names.h")
    text = open(path).read()
    out: dict[str, set[str]] = {}
    for kind, array in (
        ("counter", "kCounterNames"),
        ("gauge", "kGaugeNames"),
        ("histogram", "kHistogramNames"),
    ):
        m = re.search(re.escape(array) + r"\[\]\s*=\s*\{(.*?)\};", text, re.S)
        if m is None:
            raise SystemExit(f"check_obs: {array} not found in {path}")
        out[kind] = set(re.findall(r'"([^"]+)"', m.group(1)))
    return out


def mangle(name: str) -> str:
    return "densest_" + name.replace(".", "_")


def check_metrics(path: str, registered: dict[str, set[str]],
                  require_subsystems: list[str]) -> list[str]:
    errors: list[str] = []
    text = open(path).read()
    if path.endswith(".json"):
        doc = json.loads(text)
        activity: dict[str, float] = {}
        for kind in ("counters", "gauges", "histograms"):
            if kind not in doc:
                errors.append(f"{path}: JSON mirror missing '{kind}' object")
        for name in registered["counter"]:
            if name not in doc.get("counters", {}):
                errors.append(f"{path}: counter '{name}' absent")
            else:
                activity[name] = doc["counters"][name]
        for name in registered["gauge"]:
            if name not in doc.get("gauges", {}):
                errors.append(f"{path}: gauge '{name}' absent")
        for name in registered["histogram"]:
            if name not in doc.get("histograms", {}):
                errors.append(f"{path}: histogram '{name}' absent")
            else:
                activity[name] = doc["histograms"][name].get("count", 0)
    else:
        activity = {}
        for kind, names in registered.items():
            for name in names:
                mangled = mangle(name)
                # A histogram family exposes _bucket/_sum/_count series; a
                # scalar family exposes the bare name.
                probes = (
                    [mangled + "_bucket", mangled + "_sum", mangled + "_count"]
                    if kind == "histogram"
                    else [mangled]
                )
                for probe in probes:
                    if not re.search(
                        r"^" + re.escape(probe) + r"[ {]", text, re.M
                    ):
                        errors.append(
                            f"{path}: {kind} '{name}' absent "
                            f"(no '{probe}' series)"
                        )
                if kind == "histogram":
                    m = re.search(
                        r"^" + re.escape(mangled) + r"_count (\S+)", text, re.M
                    )
                    activity[name] = float(m.group(1)) if m else 0.0
                elif kind == "counter":
                    m = re.search(
                        r"^" + re.escape(mangled) + r" (\S+)", text, re.M
                    )
                    activity[name] = float(m.group(1)) if m else 0.0
    for prefix in require_subsystems:
        if not any(
            name.startswith(prefix + ".") and value > 0
            for name, value in activity.items()
        ):
            errors.append(
                f"{path}: no activity in subsystem '{prefix}' "
                "(every counter and histogram count is 0)"
            )
    return errors


def check_trace(path: str, require_events: int) -> list[str]:
    errors: list[str] = []
    try:
        doc = json.loads(open(path).read())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: trace not loadable JSON: {e}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no 'traceEvents' array"]
    if len(events) < require_events:
        errors.append(
            f"{path}: {len(events)} events, expected >= {require_events}"
        )
    by_tid: dict[int, list[tuple[float, float, str]]] = {}
    for i, ev in enumerate(events):
        for field in ("name", "ph", "ts", "dur", "pid", "tid"):
            if field not in ev:
                errors.append(f"{path}: event #{i} missing '{field}'")
                break
        else:
            if ev["ph"] != "X":
                errors.append(
                    f"{path}: event #{i} ph='{ev['ph']}', expected 'X'"
                )
                continue
            if ev["dur"] < 0 or ev["ts"] < 0:
                errors.append(f"{path}: event #{i} has negative ts/dur")
                continue
            by_tid.setdefault(ev["tid"], []).append(
                (ev["ts"], ev["ts"] + ev["dur"], ev["name"])
            )
    # Well-nestedness per thread: spans sorted by (start, -end) must form a
    # stack — each span either contained in the enclosing one or after it.
    for tid, spans in sorted(by_tid.items()):
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[tuple[float, float, str]] = []
        for start, end, name in spans:
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                errors.append(
                    f"{path}: tid {tid}: span '{name}' [{start},{end}] "
                    f"half-overlaps '{stack[-1][2]}' "
                    f"[{stack[-1][0]},{stack[-1][1]}]"
                )
                continue
            stack.append((start, end, name))
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)",
    )
    parser.add_argument("--metrics", help="metrics exposition file to check")
    parser.add_argument("--trace", help="trace JSON file to check")
    parser.add_argument("--require-events", type=int, default=1)
    parser.add_argument("--require-subsystems", default="")
    args = parser.parse_args()
    if not args.metrics and not args.trace:
        parser.error("nothing to check: pass --metrics and/or --trace")

    errors: list[str] = []
    if args.metrics:
        registered = load_registered_names(args.root)
        subsystems = [s for s in args.require_subsystems.split(",") if s]
        errors += check_metrics(args.metrics, registered, subsystems)
    if args.trace:
        errors += check_trace(args.trace, args.require_events)

    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_obs: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print("check_obs: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
