// densest_cli: command-line front end for the densest library.
// See CliUsage() (or run with no arguments) for the command reference.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cli/args.h"
#include "cli/commands.h"

int main(int argc, char** argv) {
  using namespace densest;
  if (argc < 2) {
    std::fputs(CliUsage().c_str(), stdout);
    return 2;
  }
  std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    std::fputs(CliUsage().c_str(), stdout);
    return 0;
  }
  std::vector<std::string> tokens(argv + 2, argv + argc);
  StatusOr<Args> args = Args::Parse(tokens);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  Status status = RunCliCommand(command, *args, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
