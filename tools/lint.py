#!/usr/bin/env python3
# Copyright 2026 The densest Authors.
"""Project-invariant linter (stdlib-only; a blocking CI step).

Enforces repo invariants that neither the compiler nor the sanitizers
check — the conventions the correctness story leans on:

  failpoint-registry   Every DENSEST_FAILPOINT("name") literal in src/ is
                       listed in src/common/failpoint_names.h, every
                       registered name is evaluated by some seam, and all
                       names follow the `subsystem.operation` grammar.
  metric-registry      Every DENSEST_METRIC_COUNTER/GAUGE/HISTOGRAM and
                       DENSEST_TRACE_SPAN name literal in src/ is listed in
                       the matching array of src/obs/metric_names.h, every
                       registered name has a call site, and all names
                       follow the `subsystem.operation` grammar (the
                       reserved "t." test prefix is exempt).
  nodiscard            `class Status` / `class StatusOr` (and the result
                       structs the engines return) keep their
                       [[nodiscard]] attribute — without it the
                       -Werror=unused-result gate silently stops gating.
  naked-new            No naked `new` / `delete` outside an immediate
                       smart-pointer wrap; intentional leaks carry a
                       `lint:allow(naked-new)` comment on the same or the
                       preceding line.
  tools-includes       tools/*.cc may include only standard headers and
                       the public CLI surface (cli/...); reaching into
                       internal headers would grow a second, unversioned
                       API out of the binaries.
  override             Subclass redeclarations of the stream interfaces'
                       virtual methods must say `override` — a stream that
                       silently stops overriding status() reverts to the
                       infallible default and swallows IO errors.

Usage:
  tools/lint.py [--root DIR]     lint the tree (exit 1 on any violation)
  tools/lint.py --self-test      seed one violation per check into a temp
                                 tree and assert every check fires
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

# ---------------------------------------------------------------- helpers --

SOURCE_DIRS = ("src", "tests", "bench", "tools", "examples")
SOURCE_EXTS = (".cc", ".h", ".cpp")

FAILPOINT_GRAMMAR = re.compile(r"^[a-z0-9_]+\.[a-z0-9_]+$")


def source_files(root: str, subdirs=SOURCE_DIRS):
    for sub in subdirs:
        top = os.path.join(root, sub)
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


def strip_comments(text: str, keep_strings: bool = False) -> str:
    """Blanks out // and /* */ comments and (unless keep_strings) string
    literals, preserving line structure so reported line numbers stay
    correct."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "str":
            if c == "\\":
                out.append(text[i : i + 2] if keep_strings else "  ")
                i += 2
                continue
            if c == '"':
                state = "code"
            if keep_strings:
                out.append(c)
            else:
                out.append(c if c in ('"', "\n") else " ")
        elif state == "chr":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(c if c in ("'", "\n") else " ")
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: str):
        self.root = root
        self.violations: list[str] = []

    def report(self, check: str, path: str, line: int, msg: str):
        rel = os.path.relpath(path, self.root)
        self.violations.append(f"{rel}:{line}: [{check}] {msg}")

    # ------------------------------------------------- failpoint registry --

    def check_failpoints(self):
        check = "failpoint-registry"
        reg_path = os.path.join(self.root, "src/common/failpoint_names.h")
        if not os.path.exists(reg_path):
            self.report(check, reg_path, 1, "registry file missing")
            return
        reg_text = open(reg_path).read()
        # Entries are the quoted strings of the kFailpointNames initializer
        # (comments stripped, strings kept; helper code below the array may
        # use other literals).
        reg_code = strip_comments(reg_text, keep_strings=True)
        array = re.search(r"kFailpointNames\[\]\s*=\s*\{(.*?)\};", reg_code,
                          re.S)
        if array is None:
            self.report(check, reg_path, 1,
                        "kFailpointNames initializer not found")
            return
        registered = set(re.findall(r'"([^"]+)"', array.group(1)))
        for name in sorted(registered):
            if not FAILPOINT_GRAMMAR.match(name):
                line = next(
                    i
                    for i, l in enumerate(reg_text.splitlines(), 1)
                    if f'"{name}"' in l
                )
                self.report(
                    check, reg_path, line,
                    f"registered name '{name}' violates subsystem.operation "
                    "grammar",
                )

        # Seam usages: DENSEST_FAILPOINT("...") and the retry-wrapped
        # EvalFailpointWithRetry("...") form.
        seam_re = re.compile(
            r'(?:DENSEST_FAILPOINT|EvalFailpointWithRetry)\s*\(\s*"([^"]+)"'
        )
        used: dict[str, tuple[str, int]] = {}
        for path in source_files(self.root, subdirs=("src",)):
            # Comments stripped so documentation mentioning the macro does
            # not read as a seam.
            text = strip_comments(open(path).read(), keep_strings=True)
            for i, line_text in enumerate(text.splitlines(), 1):
                for m in seam_re.finditer(line_text):
                    name = m.group(1)
                    used.setdefault(name, (path, i))
                    if not FAILPOINT_GRAMMAR.match(name):
                        self.report(
                            check, path, i,
                            f"failpoint '{name}' violates subsystem.operation "
                            "grammar",
                        )
                    elif name not in registered:
                        self.report(
                            check, path, i,
                            f"failpoint '{name}' not listed in "
                            "src/common/failpoint_names.h",
                        )
        for name in sorted(registered - set(used)):
            line = next(
                i
                for i, l in enumerate(reg_text.splitlines(), 1)
                if f'"{name}"' in l
            )
            self.report(
                check, reg_path, line,
                f"registered failpoint '{name}' is evaluated by no seam "
                "(dead registry entry)",
            )

    # ------------------------------------------------ metric-name registry --

    # array in src/obs/metric_names.h -> the macro whose literals it indexes
    METRIC_ARRAYS = {
        "counter": ("kCounterNames", "DENSEST_METRIC_COUNTER"),
        "gauge": ("kGaugeNames", "DENSEST_METRIC_GAUGE"),
        "histogram": ("kHistogramNames", "DENSEST_METRIC_HISTOGRAM"),
        "trace span": ("kTraceSpanNames", "DENSEST_TRACE_SPAN"),
    }

    def check_metrics(self):
        check = "metric-registry"
        reg_path = os.path.join(self.root, "src/obs/metric_names.h")
        if not os.path.exists(reg_path):
            self.report(check, reg_path, 1, "registry file missing")
            return
        reg_text = open(reg_path).read()
        reg_code = strip_comments(reg_text, keep_strings=True)

        def reg_line(name: str) -> int:
            return next(
                (i for i, l in enumerate(reg_text.splitlines(), 1)
                 if f'"{name}"' in l),
                1,
            )

        registered: dict[str, set[str]] = {}
        for kind, (array, _) in self.METRIC_ARRAYS.items():
            m = re.search(
                re.escape(array) + r"\[\]\s*=\s*\{(.*?)\};", reg_code, re.S
            )
            if m is None:
                self.report(check, reg_path, 1,
                            f"{array} initializer not found")
                registered[kind] = set()
                continue
            names = set(re.findall(r'"([^"]+)"', m.group(1)))
            registered[kind] = names
            for name in sorted(names):
                if not FAILPOINT_GRAMMAR.match(name):
                    self.report(
                        check, reg_path, reg_line(name),
                        f"registered {kind} name '{name}' violates "
                        "subsystem.operation grammar",
                    )

        macro_kind = {macro: kind
                      for kind, (_, macro) in self.METRIC_ARRAYS.items()}
        seam_re = re.compile(
            r"(" + "|".join(re.escape(m) for m in macro_kind) + r')\s*\(\s*"([^"]+)"'
        )
        used: dict[str, set[str]] = {kind: set() for kind in registered}
        for path in source_files(self.root, subdirs=("src",)):
            text = strip_comments(open(path).read(), keep_strings=True)
            for i, line_text in enumerate(text.splitlines(), 1):
                for m in seam_re.finditer(line_text):
                    kind = macro_kind[m.group(1)]
                    name = m.group(2)
                    used[kind].add(name)
                    if name.startswith("t."):
                        continue  # reserved test prefix, never registered
                    if not FAILPOINT_GRAMMAR.match(name):
                        self.report(
                            check, path, i,
                            f"{kind} name '{name}' violates "
                            "subsystem.operation grammar",
                        )
                    elif name not in registered[kind]:
                        self.report(
                            check, path, i,
                            f"{kind} '{name}' not listed in "
                            "src/obs/metric_names.h",
                        )
        for kind in registered:
            for name in sorted(registered[kind] - used[kind]):
                self.report(
                    check, reg_path, reg_line(name),
                    f"registered {kind} '{name}' has no call site "
                    "(dead registry entry)",
                )

    # ------------------------------------------------------- [[nodiscard]] --

    # type name -> header that must declare it [[nodiscard]]
    NODISCARD_TYPES = {
        "Status": "src/common/status.h",
        "StatusOr": "src/common/status.h",
        "UndirectedPassResult": "src/core/pass_engine.h",
        "DirectedPassResult": "src/core/pass_engine.h",
        "MrDensestResult": "src/mapreduce/mr_densest.h",
        "MrDirectedResult": "src/mapreduce/mr_densest.h",
        "RestoredEngine": "src/dynamic/snapshot.h",
        "ReplayReport": "src/dynamic/replay.h",
    }

    def check_nodiscard(self):
        check = "nodiscard"
        for type_name, rel in self.NODISCARD_TYPES.items():
            path = os.path.join(self.root, rel)
            if not os.path.exists(path):
                self.report(check, path, 1, f"expected header for {type_name} missing")
                continue
            text = open(path).read()
            decl = re.search(
                r"^(?:class|struct)\s+(\[\[nodiscard\]\]\s+)?"
                + re.escape(type_name) + r"\b",
                text,
                re.M,
            )
            if decl is None:
                self.report(
                    check, path, 1,
                    f"declaration of {type_name} not found (moved? update "
                    "tools/lint.py NODISCARD_TYPES)",
                )
            elif decl.group(1) is None:
                line = text[: decl.start()].count("\n") + 1
                self.report(
                    check, path, line,
                    f"{type_name} lost its [[nodiscard]] attribute — the "
                    "-Werror=unused-result gate depends on it",
                )

    # ---------------------------------------------------------- naked new --

    NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (place)` is placement new
    DELETE_RE = re.compile(r"\bdelete\b\s*(\[\s*\])?[^;,)\]=]")

    def check_naked_new(self):
        check = "naked-new"
        allow = "lint:allow(naked-new)"
        for path in source_files(self.root):
            raw = open(path).read()
            text = strip_comments(raw)
            raw_lines = raw.splitlines()
            for i, line_text in enumerate(text.splitlines(), 1):
                m = self.NEW_RE.search(line_text)
                if m:
                    wrapped = (
                        "unique_ptr" in line_text
                        or "shared_ptr" in line_text
                        or "make_unique" in line_text
                    )
                    allowed = any(
                        allow in raw_lines[j]
                        for j in (i - 2, i - 1)
                        if 0 <= j < len(raw_lines)
                    )
                    if not wrapped and not allowed:
                        self.report(
                            check, path, i,
                            "naked `new` (wrap in std::unique_ptr on the same "
                            f"statement or annotate `// {allow} — why`)",
                        )
                m = self.DELETE_RE.search(line_text)
                if m and "= delete" not in line_text:
                    self.report(
                        check, path, i,
                        "naked `delete` (ownership belongs in smart pointers)",
                    )

    # ------------------------------------------------------ tools includes --

    TOOLS_ALLOWED_PREFIXES = ("cli/",)

    def check_tools_includes(self):
        check = "tools-includes"
        include_re = re.compile(r'^\s*#include\s+"([^"]+)"')
        for path in source_files(self.root, subdirs=("tools",)):
            if path.endswith(".py"):
                continue
            for i, line_text in enumerate(open(path).read().splitlines(), 1):
                m = include_re.match(line_text)
                if m is None:
                    continue
                header = m.group(1)
                if not header.startswith(self.TOOLS_ALLOWED_PREFIXES):
                    self.report(
                        check, path, i,
                        f'tools/ may not include internal header "{header}" '
                        "(only cli/* is the supported surface; route new "
                        "functionality through cli/commands.h)",
                    )

    # ------------------------------------------------------------ override --

    # Streams' virtual methods; a subclass redeclaring one without
    # `override` is either shadowing or silently detached from the base.
    STREAM_BASES = re.compile(
        r":\s*public\s+\w*(?:EdgeStream|UpdateStream|RecordSource)"
    )
    STREAM_METHODS = re.compile(
        r"^\s*(?:virtual\s+)?[\w:<>,*&\s]+?\b"
        r"(Reset|Next|NextBatch|NextView|status|io_retry_stats|"
        r"HasUnitWeights|num_nodes|SizeHint|UndirectedCsrView|"
        r"DirectedCsrView|FillChunk|bytes_scanned|Skip)\s*\([^;{]*?[;{]",
        re.M,
    )

    def check_override(self):
        check = "override"
        for path in source_files(self.root, subdirs=("src", "tests")):
            text = strip_comments(open(path).read())
            for cls in re.finditer(r"class\s+\w+[^{;]*{", text):
                header = cls.group(0)
                if not self.STREAM_BASES.search(header):
                    continue
                # Class body: from the opening brace to its matching close.
                depth, j = 0, cls.end() - 1
                while j < len(text):
                    if text[j] == "{":
                        depth += 1
                    elif text[j] == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                body = text[cls.end(): j]
                base_line = text[: cls.end()].count("\n") + 1
                for m in self.STREAM_METHODS.finditer(body):
                    decl = m.group(0)
                    if "override" in decl or "= 0" in decl or "static" in decl:
                        continue
                    line = base_line + body[: m.start()].count("\n")
                    self.report(
                        check, path, line,
                        f"stream subclass method '{m.group(1)}' missing "
                        "`override`",
                    )

    # ----------------------------------------------------------------- run --

    def run(self) -> int:
        self.check_failpoints()
        self.check_metrics()
        self.check_nodiscard()
        self.check_naked_new()
        self.check_tools_includes()
        self.check_override()
        for v in self.violations:
            print(v)
        if self.violations:
            print(f"lint: {len(self.violations)} violation(s)", file=sys.stderr)
            return 1
        print("lint: clean")
        return 0


# ------------------------------------------------------------- self-test --


def self_test(repo_root: str) -> int:
    """Seeds one violation per check into a scratch tree (layered on top of
    a minimal skeleton) and asserts every check fires — so a refactor that
    silently breaks a lint regex is caught by CI, not trusted forever."""
    failures = []

    def expect(name: str, violations: list[str], needle: str):
        if not any(needle in v for v in violations):
            failures.append(
                f"self-test: check '{name}' did not fire (wanted '{needle}' "
                f"in {violations})"
            )

    def make_tree(tmp: str):
        """Minimal clean skeleton the seeded violations overlay."""
        os.makedirs(os.path.join(tmp, "src/common"), exist_ok=True)
        os.makedirs(os.path.join(tmp, "tools"), exist_ok=True)
        with open(os.path.join(tmp, "src/common/failpoint_names.h"), "w") as f:
            f.write(
                "inline constexpr std::string_view kFailpointNames[] = {\n"
                '    "spill.append",\n'
                "};\n"
            )
        with open(os.path.join(tmp, "src/common/status.h"), "w") as f:
            f.write(
                "class [[nodiscard]] Status {};\n"
                "template <typename T> class [[nodiscard]] StatusOr {};\n"
            )
        # The other NODISCARD_TYPES headers, minimally well-formed.
        for type_name, rel in Linter.NODISCARD_TYPES.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            if type_name in ("Status", "StatusOr"):
                continue
            with open(path, "a") as f:
                f.write(f"struct [[nodiscard]] {type_name} {{}};\n")
        with open(os.path.join(tmp, "src/common/seams.cc"), "w") as f:
            f.write('auto a = DENSEST_FAILPOINT("spill.append");\n')

    # 1. Unregistered + ill-formed failpoint names, dead registry entry.
    with tempfile.TemporaryDirectory() as tmp:
        make_tree(tmp)
        reg = os.path.join(tmp, "src/common/failpoint_names.h")
        text = open(reg).read().replace(
            "};", '    "zombie.entry",\n    "BadGrammar",\n};', 1
        )
        with open(reg, "w") as f:
            f.write(text)
        with open(os.path.join(tmp, "src/common/seams.cc"), "a") as f:
            f.write('auto b = DENSEST_FAILPOINT("not.registered");\n')
        lint = Linter(tmp)
        lint.check_failpoints()
        expect("failpoint-unregistered", lint.violations, "not.registered")
        expect("failpoint-grammar", lint.violations, "BadGrammar")
        expect("failpoint-dead-entry", lint.violations, "zombie.entry")

    # 1b. Metric-name registry: unregistered + ill-formed names, a dead
    # entry, a counter literal misfiled under the gauge array, and the
    # exempt "t." test prefix.
    with tempfile.TemporaryDirectory() as tmp:
        make_tree(tmp)
        os.makedirs(os.path.join(tmp, "src/obs"), exist_ok=True)
        with open(os.path.join(tmp, "src/obs/metric_names.h"), "w") as f:
            f.write(
                "inline constexpr std::string_view kCounterNames[] = {\n"
                '    "core.passes",\n'
                '    "zombie.counter",\n'
                "};\n"
                "inline constexpr std::string_view kGaugeNames[] = {\n"
                '    "BadMetricGrammar",\n'
                "};\n"
                "inline constexpr std::string_view kHistogramNames[] = {\n"
                "};\n"
                "inline constexpr std::string_view kTraceSpanNames[] = {\n"
                '    "core.pass_round",\n'
                "};\n"
            )
        with open(os.path.join(tmp, "src/obs/seams.cc"), "w") as f:
            f.write(
                'auto c = DENSEST_METRIC_COUNTER("core.passes");\n'
                'auto d = DENSEST_METRIC_COUNTER("metric.unregistered");\n'
                'auto e = DENSEST_METRIC_GAUGE("core.passes");\n'
                'auto g = DENSEST_METRIC_COUNTER("t.test_only");\n'
                'DENSEST_TRACE_SPAN("core.pass_round");\n'
            )
        lint = Linter(tmp)
        lint.check_metrics()
        expect("metric-unregistered", lint.violations, "metric.unregistered")
        expect("metric-grammar", lint.violations, "BadMetricGrammar")
        expect("metric-dead-entry", lint.violations, "zombie.counter")
        expect("metric-kind-confusion", lint.violations,
               "gauge 'core.passes' not listed")
        if any("t.test_only" in v for v in lint.violations):
            failures.append(
                f"self-test: 't.' test prefix wrongly flagged: {lint.violations}"
            )

    # 2. Lost [[nodiscard]].
    with tempfile.TemporaryDirectory() as tmp:
        make_tree(tmp)
        with open(os.path.join(tmp, "src/common/status.h"), "w") as f:
            f.write(
                "class Status {};\n"
                "template <typename T> class [[nodiscard]] StatusOr {};\n"
            )
        lint = Linter(tmp)
        lint.check_nodiscard()
        expect("nodiscard", lint.violations, "Status lost its [[nodiscard]]")

    # 3. Naked new / delete (and that the allow-comment suppresses).
    with tempfile.TemporaryDirectory() as tmp:
        make_tree(tmp)
        with open(os.path.join(tmp, "src/common/leak.cc"), "w") as f:
            f.write(
                "void f() {\n"
                "  int* p = new int;\n"
                "  delete p;\n"
                "  // lint:allow(naked-new) — intentional\n"
                "  int* q = new int;\n"
                "  auto r = std::unique_ptr<int>(new int);\n"
                "}\n"
            )
        lint = Linter(tmp)
        lint.check_naked_new()
        expect("naked-new", lint.violations, "naked `new`")
        expect("naked-delete", lint.violations, "naked `delete`")
        if sum("naked `new`" in v for v in lint.violations) != 1:
            failures.append(
                "self-test: allow-comment or unique_ptr wrap did not "
                f"suppress: {lint.violations}"
            )

    # 4. tools/ including an internal header.
    with tempfile.TemporaryDirectory() as tmp:
        make_tree(tmp)
        with open(os.path.join(tmp, "tools/rogue.cc"), "w") as f:
            f.write('#include "cli/args.h"\n#include "core/pass_engine.h"\n')
        lint = Linter(tmp)
        lint.check_tools_includes()
        expect("tools-includes", lint.violations, "core/pass_engine.h")
        if any("cli/args.h" in v for v in lint.violations):
            failures.append("self-test: cli/ include wrongly flagged")

    # 5. Stream subclass missing `override`.
    with tempfile.TemporaryDirectory() as tmp:
        make_tree(tmp)
        with open(os.path.join(tmp, "src/common/stream_bad.h"), "w") as f:
            f.write(
                "class Bad : public EdgeStream {\n"
                " public:\n"
                "  void Reset();\n"
                "  bool Next(Edge* e) override;\n"
                "};\n"
            )
        lint = Linter(tmp)
        lint.check_override()
        expect("override", lint.violations, "'Reset' missing")

    # 6. The real tree must be clean (the blocking-CI contract).
    real = Linter(repo_root)
    real.check_failpoints()
    real.check_metrics()
    real.check_nodiscard()
    real.check_naked_new()
    real.check_tools_includes()
    real.check_override()
    for v in real.violations:
        failures.append(f"self-test: real tree not clean: {v}")

    for f in failures:
        print(f, file=sys.stderr)
    print("self-test:", "FAILED" if failures else "ok",
          file=sys.stderr if failures else sys.stdout)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify every check fires on a seeded violation",
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test(args.root)
    return Linter(args.root).run()


if __name__ == "__main__":
    sys.exit(main())
