// chaos: standalone front end for the randomized chaos/soak harness
// (dynamic/chaos.h). `chaos --smoke` is the fixed-seed CI gate; without
// flags it runs the default 20 schedules from seed 1. Exits nonzero the
// moment any schedule's surviving engine is not bit-identical to its
// fault-free reference — the error names the seed that replays it.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cli/args.h"
#include "cli/commands.h"

int main(int argc, char** argv) {
  using namespace densest;
  std::vector<std::string> tokens(argv + 1, argv + argc);
  for (const std::string& t : tokens) {
    if (t == "help" || t == "--help" || t == "-h") {
      std::fputs(
          "chaos — randomized chaos/soak harness for the dynamic service\n"
          "\n"
          "usage: chaos [--smoke] [--schedules=20] [--seed=1] [--verbose]\n"
          "             [--nodes=70 --edges=1200 --window=150 --eps=0.6]\n"
          "             [--checkpoint-every=300 --snapshot-every=100]\n"
          "             [--max-faults=6] [--batch-size=64] [--scratch=DIR]\n"
          "             [--stats-every=N] [--metrics-out=PATH]\n"
          "             [--trace-out=PATH]\n"
          "\n"
          "Replays seeded sliding-window workloads under random fault\n"
          "injection (process crashes, dead disks, torn update files,\n"
          "failed snapshot writes/reads) with kill/snapshot-resume cycles,\n"
          "and fails unless every surviving engine is bit-identical to a\n"
          "fault-free reference run and passes all structural invariant\n"
          "audits. --smoke pins the seed for the CI gate. A failure prints\n"
          "the --seed that deterministically replays the bad schedule.\n"
          "--metrics-out / --trace-out write the metrics exposition and the\n"
          "chrome://tracing timeline on exit; --stats-every=N prints a\n"
          "metrics summary every N schedules.\n",
          stdout);
      return 0;
    }
  }
  StatusOr<Args> args = Args::Parse(tokens);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  // Through the shared dispatcher (not CmdChaos directly) so the global
  // flags — --failpoint, --metrics-out, --trace-out — and the
  // unknown-flag check behave exactly like `densest_cli chaos`.
  Status status = RunCliCommand("chaos", *args, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return status.code() == Status::Code::kInvalidArgument ? 2 : 1;
  }
  return 0;
}
