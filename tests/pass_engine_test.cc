// Unit tests for the batched pass engine and the NextBatch stream contract:
// every stream type must produce exactly the same edge sequence through
// NextBatch as through repeated Next, and PassEngine results must be
// bit-identical regardless of thread count.

#include "core/pass_engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/algorithm1.h"
#include "core/algorithm3.h"
#include "gen/erdos_renyi.h"
#include "graph/graph_builder.h"
#include "stream/file_stream.h"
#include "stream/generated_stream.h"
#include "stream/memory_stream.h"

namespace densest {
namespace {

std::vector<Edge> DrainScalar(EdgeStream& s) {
  std::vector<Edge> out;
  s.Reset();
  Edge e;
  while (s.Next(&e)) out.push_back(e);
  return out;
}

std::vector<Edge> DrainBatched(EdgeStream& s, size_t cap) {
  std::vector<Edge> out;
  std::vector<Edge> buf(cap);
  s.Reset();
  size_t got;
  while ((got = s.NextBatch(buf.data(), cap)) > 0) {
    out.insert(out.end(), buf.begin(), buf.begin() + got);
  }
  return out;
}

/// NextBatch must reproduce the Next sequence for a capacity that divides
/// the stream length unevenly (exercising the partial final batch), a
/// capacity of one, and a capacity larger than the whole stream.
void ExpectBatchMatchesScalar(EdgeStream& s) {
  const std::vector<Edge> scalar = DrainScalar(s);
  for (size_t cap : {size_t{1}, size_t{7}, scalar.size() + 13}) {
    EXPECT_EQ(DrainBatched(s, cap), scalar) << "cap=" << cap;
  }
  // The scalar path still works after batched passes (shared cursor).
  EXPECT_EQ(DrainScalar(s), scalar);
}

TEST(NextBatchContractTest, EdgeListStream) {
  EdgeList el = ErdosRenyiGnm(50, 200, 1);
  EdgeListStream s(el);
  ExpectBatchMatchesScalar(s);
}

TEST(NextBatchContractTest, EmptyEdgeListStream) {
  EdgeList el(5);
  EdgeListStream s(el);
  Edge buf[4];
  s.Reset();
  EXPECT_EQ(s.NextBatch(buf, 4), 0u);
  EXPECT_TRUE(DrainBatched(s, 4).empty());
}

TEST(NextBatchContractTest, UndirectedGraphStream) {
  GraphBuilder b;
  EdgeList el = ErdosRenyiGnm(40, 150, 2);
  for (const Edge& e : el.edges()) b.Add(e.u, e.v);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  UndirectedGraphStream s(g);
  ExpectBatchMatchesScalar(s);
}

TEST(NextBatchContractTest, UndirectedGraphStreamEmpty) {
  UndirectedGraph g;
  UndirectedGraphStream s(g);
  Edge buf[2];
  s.Reset();
  EXPECT_EQ(s.NextBatch(buf, 2), 0u);
}

TEST(NextBatchContractTest, DirectedGraphStream) {
  GraphBuilder b;
  EdgeList el = ErdosRenyiDirectedGnm(40, 150, 3);
  for (const Edge& e : el.edges()) b.Add(e.u, e.v);
  DirectedGraph g = std::move(b.BuildDirected()).value();
  DirectedGraphStream s(g);
  ExpectBatchMatchesScalar(s);
}

TEST(NextBatchContractTest, WeightedGraphStreams) {
  GraphBuilder b;
  Rng rng(7);
  EdgeList el = ErdosRenyiGnm(30, 80, 4);
  for (const Edge& e : el.edges()) b.Add(e.u, e.v, 0.5 + rng.UniformDouble());
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  UndirectedGraphStream s(g);
  ExpectBatchMatchesScalar(s);
}

class BinaryFileBatchTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(BinaryFileBatchTest, UnweightedFileStream) {
  path_ = ::testing::TempDir() + "/batch_unweighted.bin";
  EdgeList el = ErdosRenyiGnm(60, 300, 5);
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, /*weighted=*/false).ok());
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  ExpectBatchMatchesScalar(**stream);
}

TEST_F(BinaryFileBatchTest, WeightedFileStream) {
  path_ = ::testing::TempDir() + "/batch_weighted.bin";
  EdgeList el(10);
  Rng rng(11);
  for (int i = 0; i < 57; ++i) {
    el.Add(static_cast<NodeId>(rng.UniformU64(10)),
           static_cast<NodeId>(rng.UniformU64(10)), rng.UniformDouble());
  }
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, /*weighted=*/true).ok());
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  ExpectBatchMatchesScalar(**stream);
}

TEST_F(BinaryFileBatchTest, EmptyFileStream) {
  path_ = ::testing::TempDir() + "/batch_empty.bin";
  EdgeList el(3);
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, /*weighted=*/false).ok());
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  Edge buf[4];
  (*stream)->Reset();
  EXPECT_EQ((*stream)->NextBatch(buf, 4), 0u);
}

TEST(NextBatchContractTest, GnpEdgeStream) {
  GnpEdgeStream s(100, 0.08, 17);
  ExpectBatchMatchesScalar(s);
}

TEST(NextBatchContractTest, GnpEdgeStreamEmpty) {
  GnpEdgeStream s(100, 0.0, 17);
  Edge buf[4];
  s.Reset();
  EXPECT_EQ(s.NextBatch(buf, 4), 0u);
}

TEST(NextBatchContractTest, CirculantEdgeStream) {
  CirculantEdgeStream s(101, 6);
  ExpectBatchMatchesScalar(s);
}

// ---------------------------------------------------------------------------
// PassEngine determinism and correctness.

/// Reference scalar pass (the seed implementation, kept here as the oracle).
UndirectedPassResult ScalarUndirectedPass(EdgeStream& stream,
                                          const NodeSet& alive,
                                          std::vector<double>& degrees) {
  std::fill(degrees.begin(), degrees.end(), 0.0);
  UndirectedPassResult out;
  stream.Reset();
  Edge e;
  while (stream.Next(&e)) {
    if (alive.Contains(e.u) && alive.Contains(e.v)) {
      degrees[e.u] += e.w;
      degrees[e.v] += e.w;
      out.weight += e.w;
      ++out.edges;
    }
  }
  return out;
}

NodeSet EveryThirdDead(NodeId n) {
  NodeSet alive(n, /*full=*/true);
  for (NodeId u = 0; u < n; u += 3) alive.Remove(u);
  return alive;
}

TEST(PassEngineTest, MatchesScalarReferenceUnweighted) {
  const NodeId n = 500;
  EdgeList el = ErdosRenyiGnm(n, 4000, 23);
  EdgeListStream stream(el);
  NodeSet alive = EveryThirdDead(n);

  std::vector<double> want(n), got(n);
  UndirectedPassResult ref = ScalarUndirectedPass(stream, alive, want);

  PassEngine engine(PassEngineOptions{.num_threads = 1});
  UndirectedPassResult r = engine.RunUndirected(stream, alive, got);
  EXPECT_EQ(r.edges, ref.edges);
  EXPECT_EQ(r.weight, ref.weight);  // unit weights: sums are exact
  EXPECT_EQ(got, want);
}

TEST(PassEngineTest, UndirectedIdenticalAcrossThreadCounts) {
  const NodeId n = 400;
  // Random weights: float addition order would show up immediately if the
  // sharded reduction depended on the thread count.
  EdgeList el = ErdosRenyiGnm(n, 5000, 31);
  Rng rng(43);
  for (Edge& e : el.mutable_edges()) e.w = rng.UniformDouble();
  EdgeListStream stream(el);
  NodeSet alive = EveryThirdDead(n);

  PassEngine one(PassEngineOptions{.num_threads = 1});
  std::vector<double> deg1(n);
  UndirectedPassResult r1 = one.RunUndirected(stream, alive, deg1);

  for (size_t threads : {2u, 4u, 8u}) {
    PassEngine many(PassEngineOptions{.num_threads = threads});
    std::vector<double> degN(n);
    UndirectedPassResult rN = many.RunUndirected(stream, alive, degN);
    EXPECT_EQ(rN.edges, r1.edges) << threads;
    EXPECT_EQ(rN.weight, r1.weight) << threads;  // bit-identical, not NEAR
    EXPECT_EQ(degN, deg1) << threads;
  }
}

TEST(PassEngineTest, DirectedIdenticalAcrossThreadCounts) {
  const NodeId n = 300;
  EdgeList el = ErdosRenyiDirectedGnm(n, 4000, 37);
  Rng rng(51);
  for (Edge& e : el.mutable_edges()) e.w = rng.UniformDouble();
  EdgeListStream stream(el);
  NodeSet s = EveryThirdDead(n);
  NodeSet t(n, /*full=*/true);
  for (NodeId u = 1; u < n; u += 5) t.Remove(u);

  PassEngine one(PassEngineOptions{.num_threads = 1});
  std::vector<double> out1(n), in1(n);
  DirectedPassResult r1 = one.RunDirected(stream, s, t, out1, in1);
  EXPECT_GT(r1.arcs, 0u);

  for (size_t threads : {2u, 4u}) {
    PassEngine many(PassEngineOptions{.num_threads = threads});
    std::vector<double> outN(n), inN(n);
    DirectedPassResult rN = many.RunDirected(stream, s, t, outN, inN);
    EXPECT_EQ(rN.arcs, r1.arcs) << threads;
    EXPECT_EQ(rN.weight, r1.weight) << threads;
    EXPECT_EQ(outN, out1) << threads;
    EXPECT_EQ(inN, in1) << threads;
  }
}

TEST(PassEngineTest, CollectPreservesStreamOrder) {
  const NodeId n = 200;
  EdgeList el = ErdosRenyiGnm(n, 3000, 41);
  EdgeListStream stream(el);
  NodeSet alive = EveryThirdDead(n);

  // Expected survivors: the filtered stream in original order.
  std::vector<Edge> want;
  for (const Edge& e : el.edges()) {
    if (alive.Contains(e.u) && alive.Contains(e.v)) want.push_back(e);
  }

  for (size_t threads : {1u, 4u}) {
    PassEngine engine(PassEngineOptions{.num_threads = threads});
    std::vector<double> degrees(n);
    std::vector<Edge> survivors;
    UndirectedPassResult r =
        engine.RunUndirectedCollect(stream, alive, degrees, &survivors);
    EXPECT_EQ(r.edges, want.size()) << threads;
    EXPECT_EQ(survivors, want) << threads;
  }
}

TEST(PassEngineTest, BufferPassCompactsInPlace) {
  const NodeId n = 200;
  EdgeList el = ErdosRenyiGnm(n, 3000, 47);
  NodeSet alive = EveryThirdDead(n);

  std::vector<Edge> want;
  for (const Edge& e : el.edges()) {
    if (alive.Contains(e.u) && alive.Contains(e.v)) want.push_back(e);
  }

  for (size_t threads : {1u, 4u}) {
    PassEngine engine(PassEngineOptions{.num_threads = threads});
    std::vector<Edge> buffer = el.edges();
    std::vector<double> degrees(n);
    UndirectedPassResult r =
        engine.RunUndirectedBuffer(buffer, alive, degrees, /*compact=*/true);
    EXPECT_EQ(r.edges, want.size()) << threads;
    EXPECT_EQ(buffer, want) << threads;

    // A second pass over the compacted buffer sees the same statistics.
    std::vector<double> degrees2(n);
    UndirectedPassResult r2 =
        engine.RunUndirectedBuffer(buffer, alive, degrees2, /*compact=*/false);
    EXPECT_EQ(r2.edges, r.edges);
    EXPECT_EQ(degrees2, degrees);
  }
}

TEST(PassEngineTest, AlgorithmsIdenticalAcrossInjectedEngines) {
  // Algorithm-level determinism: private engines with different thread
  // counts must produce identical node sets and densities.
  EdgeList el = ErdosRenyiGnm(300, 3000, 77);
  EdgeListStream stream(el);

  PassEngine one(PassEngineOptions{.num_threads = 1});
  PassEngine four(PassEngineOptions{.num_threads = 4});

  Algorithm1Options a1;
  a1.engine = &one;
  auto r1 = RunAlgorithm1(stream, a1);
  a1.engine = &four;
  auto r4 = RunAlgorithm1(stream, a1);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r1->nodes, r4->nodes);
  EXPECT_EQ(r1->density, r4->density);
  EXPECT_EQ(r1->passes, r4->passes);

  EdgeList arcs = ErdosRenyiDirectedGnm(200, 2000, 78);
  EdgeListStream arc_stream(arcs);
  Algorithm3Options a3;
  a3.engine = &one;
  auto d1 = RunAlgorithm3(arc_stream, a3);
  a3.engine = &four;
  auto d4 = RunAlgorithm3(arc_stream, a3);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d4.ok());
  EXPECT_EQ(d1->s_nodes, d4->s_nodes);
  EXPECT_EQ(d1->t_nodes, d4->t_nodes);
  EXPECT_EQ(d1->density, d4->density);
}

TEST(PassEngineTest, EmptyStreamYieldsZeroes) {
  EdgeList el(10);
  EdgeListStream stream(el);
  NodeSet alive(10, /*full=*/true);
  std::vector<double> degrees(10, 99.0);
  PassEngine engine(PassEngineOptions{.num_threads = 2});
  UndirectedPassResult r = engine.RunUndirected(stream, alive, degrees);
  EXPECT_EQ(r.edges, 0u);
  EXPECT_EQ(r.weight, 0.0);
  for (double d : degrees) EXPECT_EQ(d, 0.0);
}

TEST(PassEngineTest, MultiRoundStreamsSpanRounds) {
  // More edges than one round (kShardSlots * kShardEdges) to cover the
  // refill path and cross-round accumulator reuse.
  const size_t round = PassEngine::kShardSlots * PassEngine::kShardEdges;
  const NodeId n = 1000;
  EdgeList el(n);
  Rng rng(61);
  for (size_t i = 0; i < round + round / 3; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformU64(n));
    NodeId v = static_cast<NodeId>(rng.UniformU64(n));
    el.Add(u, v);
  }
  EdgeListStream stream(el);
  NodeSet alive = EveryThirdDead(n);

  std::vector<double> want(n), got(n);
  UndirectedPassResult ref = ScalarUndirectedPass(stream, alive, want);
  PassEngine engine(PassEngineOptions{.num_threads = 4});
  UndirectedPassResult r = engine.RunUndirected(stream, alive, got);
  EXPECT_EQ(r.edges, ref.edges);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace densest
