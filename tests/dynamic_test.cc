// Tests for the incremental densest-subgraph maintenance subsystem: the
// edge-key hash set, the dynamic adjacency, the degree-level invariants
// under churn, the engine's certified approximation band against the exact
// solver, the insert-only equivalence with batch Algorithm 1 across every
// stream type and thread count, and the replay driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/algorithm1.h"
#include "dynamic/degree_levels.h"
#include "dynamic/dynamic_densest.h"
#include "dynamic/replay.h"
#include "flow/goldberg.h"
#include "gen/erdos_renyi.h"
#include "gen/planted.h"
#include "graph/undirected_graph.h"
#include "stream/file_stream.h"
#include "stream/generated_stream.h"
#include "stream/memory_stream.h"
#include "stream/update_stream.h"

namespace densest {
namespace {

constexpr double kTol = 1e-9;

// ------------------------------------------------------------ EdgeKeySet --

TEST(EdgeKeySetTest, InsertEraseChurnMatchesReference) {
  EdgeKeySet set;
  std::set<uint64_t> reference;
  Rng rng(42);
  for (int step = 0; step < 50000; ++step) {
    // A small universe forces constant collisions of intent (not hash):
    // most operations hit existing keys.
    const NodeId u = static_cast<NodeId>(rng.UniformU64(40));
    const NodeId v = static_cast<NodeId>(rng.UniformU64(40));
    if (u == v) continue;
    const uint64_t key = EdgeKeySet::Key(u, v);
    if (rng.Bernoulli(0.55)) {
      EXPECT_EQ(set.Insert(key), reference.insert(key).second);
    } else {
      EXPECT_EQ(set.Erase(key), reference.erase(key) > 0);
    }
    EXPECT_EQ(set.size(), reference.size());
  }
  for (uint64_t key : reference) EXPECT_TRUE(set.Contains(key));
}

TEST(EdgeKeySetTest, GrowsThroughManyInserts) {
  EdgeKeySet set;
  for (NodeId i = 0; i < 5000; ++i) {
    EXPECT_TRUE(set.Insert(EdgeKeySet::Key(i, i + 1)));
  }
  EXPECT_EQ(set.size(), 5000u);
  for (NodeId i = 0; i < 5000; ++i) {
    EXPECT_TRUE(set.Contains(EdgeKeySet::Key(i + 1, i)));  // canonical key
    EXPECT_FALSE(set.Insert(EdgeKeySet::Key(i, i + 1)));
  }
}

// ------------------------------------------------------ DynamicAdjacency --

TEST(DynamicAdjacencyTest, RejectsDuplicatesSelfLoopsAndOutOfRange) {
  DynamicAdjacency adj(10);
  EXPECT_TRUE(adj.Insert(1, 2));
  EXPECT_FALSE(adj.Insert(2, 1));  // same undirected edge
  EXPECT_FALSE(adj.Insert(3, 3));  // self-loop
  EXPECT_FALSE(adj.Insert(1, 10));  // out of range
  EXPECT_EQ(adj.num_edges(), 1u);
  EXPECT_FALSE(adj.Erase(1, 3));  // absent
  EXPECT_TRUE(adj.Erase(2, 1));
  EXPECT_EQ(adj.num_edges(), 0u);
  EXPECT_EQ(adj.degree(1), 0u);
  EXPECT_EQ(adj.degree(2), 0u);
}

TEST(DynamicAdjacencyTest, ToEdgeListSnapshotsCanonically) {
  DynamicAdjacency adj(5);
  adj.Insert(3, 1);
  adj.Insert(0, 4);
  adj.Insert(1, 2);
  adj.Erase(1, 2);
  EdgeList edges = adj.ToEdgeList();
  EXPECT_EQ(edges.num_edges(), 2u);
  for (const Edge& e : edges.edges()) {
    EXPECT_LT(e.u, e.v);
    EXPECT_TRUE(adj.Contains(e.u, e.v));
  }
}

// ---------------------------------------------------------- DegreeLevels --

/// Brute-force check of everything a DegreeLevels structure maintains:
/// counter exactness, both invariants, and the level-set aggregates that
/// FindBestLevel reads.
void VerifyStructure(const DegreeLevels& levels, const DynamicAdjacency& adj,
                     double d, double eps) {
  const NodeId n = adj.num_nodes();
  const double promote = 2.0 * (1.0 + eps) * d;
  const double demote = 2.0 * d;
  for (NodeId v = 0; v < n; ++v) {
    const uint32_t lv = levels.level(v);
    ASSERT_LE(lv, levels.levels());
    uint32_t up = 0;
    uint32_t near = 0;
    for (NodeId x : adj.neighbors(v)) {
      if (levels.level(x) >= lv) ++up;
      if (levels.level(x) + 1 >= lv) ++near;
    }
    ASSERT_EQ(levels.up_deg(v), up) << "node " << v;
    ASSERT_EQ(levels.near_deg(v), near) << "node " << v;
    if (lv < levels.levels()) {
      ASSERT_LT(static_cast<double>(up), promote)
          << "promote invariant violated at node " << v;
    }
    if (lv > 0) {
      ASSERT_GE(static_cast<double>(near), demote)
          << "demote invariant violated at node " << v;
    }
  }
  // FindBestLevel's density must be the real induced density of the level
  // set it names.
  const DegreeLevels::BestLevel best = levels.FindBestLevel();
  std::vector<NodeId> members = levels.CollectLevelSet(best.level);
  ASSERT_EQ(members.size(), best.nodes);
  std::set<NodeId> member_set(members.begin(), members.end());
  EdgeId induced = 0;
  const EdgeList snapshot = adj.ToEdgeList();
  for (const Edge& e : snapshot.edges()) {
    if (member_set.count(e.u) != 0 && member_set.count(e.v) != 0) ++induced;
  }
  ASSERT_EQ(induced, best.edges);
  if (best.nodes > 0) {
    ASSERT_NEAR(best.density,
                static_cast<double>(induced) / static_cast<double>(best.nodes),
                kTol);
  }
}

TEST(DegreeLevelsTest, InvariantsHoldUnderRandomChurn) {
  const NodeId n = 60;
  const double eps = 0.5;
  for (double d : {0.25, 1.0, 4.0}) {
    DynamicAdjacency adj(n);
    DegreeLevels levels(n, d, eps, 16);
    Rng rng(static_cast<uint64_t>(d * 1000) + 1);
    for (int step = 0; step < 4000; ++step) {
      const NodeId u = static_cast<NodeId>(rng.UniformU64(n));
      const NodeId v = static_cast<NodeId>(rng.UniformU64(n));
      if (u == v) continue;
      if (rng.Bernoulli(0.6)) {
        if (adj.Insert(u, v)) levels.OnInsert(u, v, adj);
      } else {
        if (adj.Erase(u, v)) levels.OnDelete(u, v, adj);
      }
      if (step % 500 == 499) VerifyStructure(levels, adj, d, eps);
    }
    VerifyStructure(levels, adj, d, eps);
  }
}

TEST(DegreeLevelsTest, RebuildSatisfiesInvariants) {
  const NodeId n = 80;
  const double eps = 0.3;
  EdgeList edges = ErdosRenyiGnm(n, 600, 5);
  DynamicAdjacency adj(n);
  for (const Edge& e : edges.edges()) adj.Insert(e.u, e.v);
  for (double d : {0.25, 2.0, 8.0}) {
    DegreeLevels levels(n, d, eps, 20);
    levels.Rebuild(adj);
    VerifyStructure(levels, adj, d, eps);
  }
}

TEST(DegreeLevelsTest, SingleEdgeClimbsToTopAtBaseThreshold) {
  // The slot-0 certificate must be nonempty whenever any edge exists:
  // that's what makes "no certifying slot" synonymous with an empty graph.
  DynamicAdjacency adj(4);
  DegreeLevels levels(4, 0.25, 0.5, 8);
  adj.Insert(0, 1);
  levels.OnInsert(0, 1, adj);
  EXPECT_GT(levels.top_count(), 0u);
  adj.Erase(0, 1);
  levels.OnDelete(0, 1, adj);
  EXPECT_EQ(levels.top_count(), 0u);
  VerifyStructure(levels, adj, 0.25, 0.5);
}

// -------------------------------------------------------- DynamicDensest --

TEST(DynamicDensestTest, CreateValidatesArguments) {
  EXPECT_FALSE(DynamicDensest::Create(0).ok());
  DynamicDensestOptions opt;
  opt.epsilon = 0.001;
  EXPECT_FALSE(DynamicDensest::Create(10, opt).ok());
  opt.epsilon = 1.5;
  EXPECT_FALSE(DynamicDensest::Create(10, opt).ok());
  opt.epsilon = 0.5;
  EXPECT_TRUE(DynamicDensest::Create(10, opt).ok());
}

TEST(DynamicDensestTest, EmptyGraphAnswersZeroCertified) {
  auto engine = DynamicDensest::Create(16);
  ASSERT_TRUE(engine.ok());
  const DynamicDensest::Answer a = (*engine)->Query();
  EXPECT_EQ(a.density, 0);
  EXPECT_TRUE(a.certified);
  EXPECT_TRUE((*engine)->DensestNodes().empty());
}

TEST(DynamicDensestTest, IgnoresDuplicatesSelfLoopsAndAbsentDeletes) {
  auto engine = DynamicDensest::Create(8);
  ASSERT_TRUE(engine.ok());
  (*engine)->Apply(InsertUpdate(0, 1));
  (*engine)->Apply(InsertUpdate(1, 0));   // duplicate
  (*engine)->Apply(InsertUpdate(2, 2));   // self-loop
  (*engine)->Apply(InsertUpdate(3, 99));  // out of range
  (*engine)->Apply(DeleteUpdate(4, 5));   // absent
  EXPECT_EQ((*engine)->stats().inserts, 1u);
  EXPECT_EQ((*engine)->stats().ignored, 4u);
  EXPECT_EQ((*engine)->num_edges(), 1u);
}

/// Asserts the engine's certified sandwich against the exact solver.
void CheckBand(DynamicDensest& engine) {
  const DynamicDensest::Answer a = engine.Query();
  EdgeList edges = engine.CurrentEdges();
  if (edges.empty()) {
    EXPECT_EQ(a.density, 0);
    return;
  }
  UndirectedGraph g = UndirectedGraph::FromEdgeList(edges);
  auto exact = ExactDensestSubgraph(g);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(a.certified);
  EXPECT_LE(a.density, exact->density * (1 + kTol) + kTol);
  EXPECT_LE(exact->density, a.upper_bound * (1 + kTol) + kTol);
  // The worst case the band promises: upper / lower <= 2(1+eps)^3.
  EXPECT_LE(a.upper_bound / std::max(a.density, 1e-30),
            engine.ApproxBand() * (1 + kTol));
  // And the served set really has the served density.
  std::vector<NodeId> nodes = engine.DensestNodes();
  EXPECT_EQ(nodes.size(), a.size);
  std::set<NodeId> in(nodes.begin(), nodes.end());
  EdgeId induced = 0;
  for (const Edge& e : edges.edges()) {
    if (in.count(e.u) != 0 && in.count(e.v) != 0) ++induced;
  }
  EXPECT_NEAR(a.density,
              static_cast<double>(induced) / static_cast<double>(nodes.size()),
              kTol);
}

TEST(DynamicDensestTest, HysteresisSuppressesBoundaryTrimThrash) {
  // Grow a clique edge by edge: the certifying slot climbs far above the
  // window's low end, so the trim condition starts holding. With
  // trim_hysteresis=1 (the legacy immediate-trim behavior) each excursion
  // moves the window right away; with a large hysteresis the drift is
  // deferred, counted, and — when density falls back — fully avoided.
  const NodeId kClique = 40;
  auto grow = [](DynamicDensest& engine) {
    uint64_t ts = 0;
    for (NodeId u = 0; u < kClique; ++u) {
      for (NodeId v = u + 1; v < kClique; ++v) {
        engine.Apply(InsertUpdate(u, v, ++ts));
      }
    }
    return ts;
  };

  DynamicDensestOptions immediate;
  immediate.epsilon = 0.3;
  immediate.trim_hysteresis = 1;
  auto eager = DynamicDensest::Create(kClique, immediate);
  ASSERT_TRUE(eager.ok());
  grow(**eager);

  DynamicDensestOptions lazy = immediate;
  lazy.trim_hysteresis = 1u << 30;  // defer forever
  auto deferred = DynamicDensest::Create(kClique, lazy);
  ASSERT_TRUE(deferred.ok());
  uint64_t ts = grow(**deferred);

  // The workload hits the trim condition (else this test is vacuous), the
  // eager engine acted on it, the deferred one only counted it.
  EXPECT_GT((*deferred)->stats().trims_deferred, 0u);
  EXPECT_EQ((*deferred)->stats().recomputes_avoided, 0u);
  EXPECT_GT((*eager)->stats().window_moves,
            (*deferred)->stats().window_moves);
  EXPECT_GE((*eager)->window_lo(), (*deferred)->window_lo());
  // Both serve correct certified answers — hysteresis trades maintenance
  // cost only, never the band.
  CheckBand(**eager);
  CheckBand(**deferred);

  // A transient excursion: grow a fresh engine only until the drift streak
  // has clearly formed (full growth would end on a re-centering that
  // resets it), then let density fall back. The streak dies without ever
  // trimming — that is the avoided recompute.
  auto probe = DynamicDensest::Create(kClique, lazy);
  ASSERT_TRUE(probe.ok());
  std::vector<std::pair<NodeId, NodeId>> inserted;
  ts = 0;
  for (NodeId u = 0; u < kClique && (*probe)->trim_streak() < 8; ++u) {
    for (NodeId v = u + 1; v < kClique && (*probe)->trim_streak() < 8; ++v) {
      (*probe)->Apply(InsertUpdate(u, v, ++ts));
      inserted.emplace_back(u, v);
    }
  }
  ASSERT_GE((*probe)->trim_streak(), 8u) << "workload never armed the streak";
  for (auto it = inserted.rbegin(); it != inserted.rend(); ++it) {
    (*probe)->Apply(DeleteUpdate(it->first, it->second, ++ts));
    if ((*probe)->stats().recomputes_avoided > 0) break;
  }
  EXPECT_GT((*probe)->stats().recomputes_avoided, 0u);
  EXPECT_EQ((*probe)->trim_streak(), 0u);
  CheckBand(**probe);
}

TEST(DynamicDensestTest, BandHoldsUnderInsertDeleteChurn) {
  for (DynamicFallback fallback :
       {DynamicFallback::kRecompute, DynamicFallback::kRebuildOnly}) {
    for (double eps : {0.3, 0.8}) {
      DynamicDensestOptions opt;
      opt.epsilon = eps;
      opt.fallback = fallback;
      opt.window_radius = 1;  // small window: force window moves
      auto engine = DynamicDensest::Create(48, opt);
      ASSERT_TRUE(engine.ok());
      Rng rng(static_cast<uint64_t>(eps * 100) +
              (fallback == DynamicFallback::kRecompute ? 7 : 77));
      for (int step = 0; step < 3000; ++step) {
        const NodeId u = static_cast<NodeId>(rng.UniformU64(48));
        const NodeId v = static_cast<NodeId>(rng.UniformU64(48));
        // Bias toward a hot clique so density actually climbs and falls.
        const bool in_core = rng.Bernoulli(0.5);
        const NodeId uu = in_core ? u % 12 : u;
        const NodeId vv = in_core ? v % 12 : v;
        (*engine)->Apply(rng.Bernoulli(0.65) ? InsertUpdate(uu, vv)
                                             : DeleteUpdate(uu, vv));
        if (step % 250 == 249) CheckBand(**engine);
      }
      CheckBand(**engine);
      EXPECT_GT((*engine)->stats().window_moves, 0u);
    }
  }
}

TEST(DynamicDensestTest, DeleteToEmptyReturnsToZero) {
  auto engine = DynamicDensest::Create(30);
  ASSERT_TRUE(engine.ok());
  EdgeList edges = ErdosRenyiGnm(30, 200, 9);
  for (const Edge& e : edges.edges()) {
    (*engine)->Apply(InsertUpdate(e.u, e.v));
  }
  EXPECT_GT((*engine)->Query().density, 0);
  for (const Edge& e : edges.edges()) {
    (*engine)->Apply(DeleteUpdate(e.u, e.v));
  }
  EXPECT_EQ((*engine)->num_edges(), 0u);
  const DynamicDensest::Answer a = (*engine)->Query();
  EXPECT_EQ(a.density, 0);
  EXPECT_TRUE(a.certified);
}

TEST(DynamicDensestTest, NeverFallbackServesUncertifiedWhenDegraded) {
  DynamicDensestOptions opt;
  opt.fallback = DynamicFallback::kNever;
  opt.window_radius = 0;  // window [0, 1]: a clique degrades it immediately
  auto engine = DynamicDensest::Create(24, opt);
  ASSERT_TRUE(engine.ok());
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = u + 1; v < 20; ++v) {
      (*engine)->Apply(InsertUpdate(u, v));
    }
  }
  const DynamicDensest::Answer a = (*engine)->Query();
  EXPECT_FALSE(a.certified);
  EXPECT_GT(a.density, 0);  // best-effort answer is still served
  EXPECT_EQ((*engine)->stats().recomputes, 0u);
}

// Satellite: insert-only dynamic equivalence. Replaying ANY EdgeStream as
// insertions and querying at the end must land within the approximation
// band of RunAlgorithm1 on the same edges, across all stream types and
// 1..8 recompute threads (thread count must not change a single bit of
// the answer).
TEST(DynamicDensestTest, InsertOnlyReplayMatchesBatchAcrossStreamsAndThreads) {
  const std::string bin_path =
      (std::filesystem::temp_directory_path() / "dynamic_equiv_test.bin")
          .string();
  EdgeList er = ErdosRenyiGnm(400, 3000, 21);
  ASSERT_TRUE(WriteBinaryEdgeFile(bin_path, er, /*weighted=*/false).ok());
  UndirectedGraph er_graph = UndirectedGraph::FromEdgeList(er);

  EdgeListStream list_stream(er);
  UndirectedGraphStream graph_stream(er_graph);
  auto file_stream = BinaryFileEdgeStream::Open(bin_path);
  ASSERT_TRUE(file_stream.ok());
  GnpEdgeStream gnp_stream(300, 0.03, 99);
  CirculantEdgeStream circ_stream(256, 8);

  struct Case {
    const char* name;
    EdgeStream* stream;
  };
  const Case cases[] = {
      {"edge_list", &list_stream},
      {"csr_graph", &graph_stream},
      {"binary_file", file_stream->get()},
      {"gnp", &gnp_stream},
      {"circulant", &circ_stream},
  };
  const double batch_eps = 0.5;

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    Algorithm1Options a1;
    a1.epsilon = batch_eps;
    a1.record_trace = false;
    auto batch = RunAlgorithm1(*c.stream, a1);
    ASSERT_TRUE(batch.ok());

    double first_density = -1;
    std::vector<NodeId> first_nodes;
    for (size_t threads = 1; threads <= 8; ++threads) {
      DynamicDensestOptions opt;
      opt.window_radius = 1;
      opt.engine_options.num_threads = threads;
      auto engine = DynamicDensest::Create(c.stream->num_nodes(), opt);
      ASSERT_TRUE(engine.ok());
      InsertReplayUpdateStream replay(*c.stream);
      replay.Reset();
      EdgeUpdate u;
      while (replay.Next(&u)) (*engine)->Apply(u);
      ASSERT_TRUE(replay.status().ok());

      const DynamicDensest::Answer a = (*engine)->Query();
      ASSERT_TRUE(a.certified);
      // Both answers sandwich rho*: dynamic <= rho* <= (2+2eps) batch and
      // batch <= rho* < dynamic upper bound.
      EXPECT_LE(a.density,
                (2 + 2 * batch_eps) * batch->density * (1 + kTol));
      EXPECT_LE(batch->density, a.upper_bound * (1 + kTol));
      // The dynamic answer's own band around rho*.
      EXPECT_LE(batch->density / (2 + 2 * batch_eps),
                a.upper_bound * (1 + kTol));
      if (first_density < 0) {
        first_density = a.density;
        first_nodes = (*engine)->DensestNodes();
      } else {
        // Bit-identical across recompute thread counts.
        EXPECT_EQ(a.density, first_density);
        EXPECT_EQ((*engine)->DensestNodes(), first_nodes);
      }
    }
  }
  std::remove(bin_path.c_str());
}

// ----------------------------------------------------------- ReplayUpdates --

TEST(ReplayTest, InsertOnlyReplayReportsAndStaysInBand) {
  EdgeList edges = ErdosRenyiGnm(120, 900, 13);
  EdgeListStream base(edges);
  InsertReplayUpdateStream updates(base);
  auto engine = DynamicDensest::Create(base.num_nodes());
  ASSERT_TRUE(engine.ok());
  ReplayOptions opt;
  opt.query_every = 100;
  opt.checkpoint_every = 300;
  opt.checkpoint_mode = CheckpointMode::kExactFlow;
  auto report = ReplayUpdates(updates, **engine, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->updates, edges.num_edges());
  EXPECT_TRUE(report->band_ok);
  EXPECT_EQ(report->checkpoints.size(), edges.num_edges() / 300);
  EXPECT_GT(report->queries, 0u);
  EXPECT_GT(report->updates_per_sec, 0);
  EXPECT_GE(report->max_observed_error, 1.0);
  EXPECT_LE(report->max_observed_error,
            (*engine)->ApproxBand() * (1 + kTol));
  EXPECT_EQ(report->final_edges, edges.num_edges());
}

TEST(ReplayTest, SlidingWindowReplayStaysInBand) {
  EdgeList edges = ErdosRenyiGnm(100, 2000, 17);
  EdgeListStream base(edges);
  SlidingWindowUpdateStream updates(base, 500);
  auto engine = DynamicDensest::Create(base.num_nodes());
  ASSERT_TRUE(engine.ok());
  ReplayOptions opt;
  opt.query_every = 128;
  opt.checkpoint_every = 700;
  auto report = ReplayUpdates(updates, **engine, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->band_ok);
  EXPECT_GT(report->engine_stats.deletes, 0u);
  EXPECT_EQ(report->final_edges, 500u);
}

TEST(ReplayTest, BatchCheckpointsWork) {
  EdgeList edges = ErdosRenyiGnm(200, 1500, 23);
  EdgeListStream base(edges);
  InsertReplayUpdateStream updates(base);
  auto engine = DynamicDensest::Create(base.num_nodes());
  ASSERT_TRUE(engine.ok());
  ReplayOptions opt;
  opt.checkpoint_every = 500;
  opt.checkpoint_mode = CheckpointMode::kBatchAlgorithm1;
  auto report = ReplayUpdates(updates, **engine, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->band_ok);
  EXPECT_FALSE(report->checkpoints.empty());
}

TEST(ReplayTest, TruncatedUpdateFileFailsTheReplay) {
  std::vector<EdgeUpdate> updates;
  for (uint32_t i = 0; i < 200; ++i) {
    updates.push_back(InsertUpdate(i % 40, (i + 1) % 40, i + 1));
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "dynamic_trunc_replay.bin")
          .string();
  ASSERT_TRUE(WriteBinaryUpdateFile(path, 40, updates).ok());
  std::filesystem::resize_file(
      path, sizeof(BinaryUpdateFileHeader) + 150 * sizeof(EdgeUpdate));
  auto stream = BinaryFileUpdateStream::Open(path);
  ASSERT_TRUE(stream.ok());
  auto engine = DynamicDensest::Create(40);
  ASSERT_TRUE(engine.ok());
  auto report = ReplayUpdates(**stream, **engine, ReplayOptions{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), Status::Code::kIOError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace densest
