// The sticky-status matrix: every stream type in the library, driven
// through Reset(), must either (a) be infallible and redeliver the exact
// same sequence on every replay (the in-memory and generated streams), or
// (b) carry a sticky error across Reset() once its backing file went bad
// (the disk-backed streams) — including the generator wrappers, which must
// forward the inner stream's sticky health rather than mask a truncated
// replay as a short-but-healthy one.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "gen/erdos_renyi.h"
#include "graph/directed_graph.h"
#include "graph/graph_builder.h"
#include "graph/undirected_graph.h"
#include "stream/file_stream.h"
#include "stream/generated_stream.h"
#include "stream/memory_stream.h"
#include "stream/update_stream.h"

namespace densest {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("sticky_reset_test_" + name + "_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
      .string();
}

/// Drains an EdgeStream and returns its edge count.
uint64_t DrainEdges(EdgeStream& s) {
  uint64_t n = 0;
  Edge e;
  while (s.Next(&e)) ++n;
  return n;
}

uint64_t DrainUpdates(UpdateStream& s) {
  uint64_t n = 0;
  EdgeUpdate u;
  while (s.Next(&u)) ++n;
  return n;
}

/// The infallible half of the matrix: status() is OK before, during and
/// after two full replays, and both replays deliver the same count.
void ExpectInfallibleReplays(EdgeStream& s, uint64_t expect) {
  s.Reset();
  EXPECT_EQ(DrainEdges(s), expect);
  EXPECT_TRUE(s.status().ok());
  s.Reset();
  EXPECT_EQ(DrainEdges(s), expect);
  EXPECT_TRUE(s.status().ok());
}

TEST(StickyResetMatrixTest, InMemoryAndGeneratedEdgeStreamsAreInfallible) {
  EdgeList edges = ErdosRenyiGnm(40, 300, 11);
  {
    EdgeListStream s(edges);
    ExpectInfallibleReplays(s, edges.num_edges());
  }
  {
    GraphBuilder b;
    b.ReserveNodes(edges.num_nodes());
    for (const Edge& e : edges.edges()) b.Add(e.u, e.v, e.w);
    StatusOr<UndirectedGraph> g = b.BuildUndirected();
    ASSERT_TRUE(g.ok());
    UndirectedGraphStream s(*g);
    ExpectInfallibleReplays(s, g->num_edges());
  }
  {
    GraphBuilder b;
    b.ReserveNodes(edges.num_nodes());
    for (const Edge& e : edges.edges()) b.Add(e.u, e.v, e.w);
    StatusOr<DirectedGraph> g = b.BuildDirected();
    ASSERT_TRUE(g.ok());
    DirectedGraphStream s(*g);
    ExpectInfallibleReplays(s, g->num_edges());
  }
  {
    GnpEdgeStream s(50, 0.2, 7);
    s.Reset();
    const uint64_t first = DrainEdges(s);
    EXPECT_TRUE(s.status().ok());
    s.Reset();
    EXPECT_EQ(DrainEdges(s), first);  // same seed, same sequence
    EXPECT_TRUE(s.status().ok());
  }
  {
    CirculantEdgeStream s(32, 4);
    s.Reset();
    const uint64_t first = DrainEdges(s);
    s.Reset();
    EXPECT_EQ(DrainEdges(s), first);
    EXPECT_TRUE(s.status().ok());
  }
}

TEST(StickyResetMatrixTest, InMemoryUpdateStreamsAreInfallible) {
  std::vector<EdgeUpdate> updates;
  for (uint32_t i = 0; i < 50; ++i) updates.push_back(InsertUpdate(i, i + 1));
  MemoryUpdateStream s(updates, 51);
  s.Reset();
  EXPECT_EQ(DrainUpdates(s), updates.size());
  EXPECT_TRUE(s.status().ok());
  s.Reset();
  EXPECT_EQ(DrainUpdates(s), updates.size());
  EXPECT_TRUE(s.status().ok());
}

// ---------------------------------------------- fault-injected file seams --

class StickyResetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Failpoints::compiled_in()) {
      GTEST_SKIP() << "built with -DDENSEST_FAILPOINTS=OFF";
    }
    Failpoints::Instance().ClearAll();
  }
  void TearDown() override {
    if (Failpoints::compiled_in()) Failpoints::Instance().ClearAll();
  }
};

/// Once bad, always bad: status() must carry `code` through a Reset() and
/// another full drain, even after the failpoint itself is cleared.
template <typename Stream>
void ExpectStickyAcrossReset(Stream& s, Status::Code code) {
  EXPECT_EQ(s.status().code(), code) << s.status().ToString();
  Failpoints::Instance().ClearAll();
  s.Reset();
  EXPECT_EQ(s.status().code(), code)
      << "Reset() washed away the sticky error";
}

TEST_F(StickyResetFaultTest, BinaryEdgeStreamEveryFaultKindIsSticky) {
  EdgeList edges = ErdosRenyiGnm(30, 200, 13);
  const std::string path = TempPath("edges");
  ASSERT_TRUE(WriteBinaryEdgeFile(path, edges, /*weighted=*/false).ok());

  struct Case {
    const char* spec;
    Status::Code expect;
  };
  const Case cases[] = {
      {"kind=io", Status::Code::kIOError},
      {"kind=short", Status::Code::kIOError},       // torn file -> truncated
      {"kind=unavailable", Status::Code::kUnavailable},  // retries exhausted
  };
  for (const Case& c : cases) {
    auto stream = BinaryFileEdgeStream::Open(path);
    ASSERT_TRUE(stream.ok());
    RetryPolicy retry;
    retry.max_attempts = 2;
    retry.base_delay_ms = 0.01;
    (*stream)->set_retry_policy(retry);
    ASSERT_TRUE(Failpoints::Instance().Set("edge_stream.read", c.spec).ok());
    (*stream)->Reset();
    DrainEdges(**stream);
    ExpectStickyAcrossReset(**stream, c.expect);
  }
  std::remove(path.c_str());
}

TEST_F(StickyResetFaultTest, BinaryUpdateStreamEveryFaultKindIsSticky) {
  std::vector<EdgeUpdate> updates;
  for (uint32_t i = 0; i < 200; ++i) updates.push_back(InsertUpdate(i, i + 1));
  const std::string path = TempPath("updates");
  ASSERT_TRUE(WriteBinaryUpdateFile(path, 201, updates).ok());

  struct Case {
    const char* spec;
    Status::Code expect;
  };
  const Case cases[] = {
      {"kind=io", Status::Code::kIOError},
      {"kind=short", Status::Code::kIOError},
      {"kind=unavailable", Status::Code::kUnavailable},
  };
  for (const Case& c : cases) {
    auto stream = BinaryFileUpdateStream::Open(path);
    ASSERT_TRUE(stream.ok());
    RetryPolicy retry;
    retry.max_attempts = 2;
    retry.base_delay_ms = 0.01;
    (*stream)->set_retry_policy(retry);
    ASSERT_TRUE(Failpoints::Instance().Set("update_stream.read", c.spec).ok());
    (*stream)->Reset();
    DrainUpdates(**stream);
    ExpectStickyAcrossReset(**stream, c.expect);
  }
  std::remove(path.c_str());
}

TEST_F(StickyResetFaultTest, GeneratorWrappersForwardStickyInnerStatus) {
  EdgeList edges = ErdosRenyiGnm(30, 200, 17);
  const std::string path = TempPath("wrapped");
  ASSERT_TRUE(WriteBinaryEdgeFile(path, edges, /*weighted=*/false).ok());

  {
    auto inner = BinaryFileEdgeStream::Open(path);
    ASSERT_TRUE(inner.ok());
    InsertReplayUpdateStream wrapper(**inner);
    ASSERT_TRUE(
        Failpoints::Instance().Set("edge_stream.read", "kind=io").ok());
    wrapper.Reset();
    DrainUpdates(wrapper);
    ExpectStickyAcrossReset(wrapper, Status::Code::kIOError);
  }
  {
    auto inner = BinaryFileEdgeStream::Open(path);
    ASSERT_TRUE(inner.ok());
    SlidingWindowUpdateStream wrapper(**inner, 50);
    ASSERT_TRUE(
        Failpoints::Instance().Set("edge_stream.read", "kind=io").ok());
    wrapper.Reset();
    DrainUpdates(wrapper);
    ExpectStickyAcrossReset(wrapper, Status::Code::kIOError);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace densest
