// Tests for the bench metrics JSON writer: a NaN/inf metric or a quote in
// a key (or the bench name) must still serialize to valid JSON — CI tooling
// parses these files, and a bare `nan` token or unescaped quote breaks it.

#include "io/bench_json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace densest {
namespace {

TEST(JsonEscapeTest, PassesPlainStringsThrough) {
  EXPECT_EQ(JsonEscape("fig64.scan_reduction"), "fig64.scan_reduction");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape("a\rb\bc\fd"), "a\\rb\\bc\\fd");
  EXPECT_EQ(JsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(BenchJsonTest, SerializesFiniteMetrics) {
  BenchJson json("unit");
  json.Add("edges_per_s", 1.5);
  json.Add("scans", 22);
  EXPECT_EQ(json.ToJson(),
            "{\n  \"bench\": \"unit\",\n  \"metrics\": {\n"
            "    \"edges_per_s\": 1.5,\n"
            "    \"scans\": 22\n  }\n}\n");
}

TEST(BenchJsonTest, NonFiniteValuesBecomeNull) {
  BenchJson json("unit");
  json.Add("nan_metric", std::nan(""));
  json.Add("inf_metric", std::numeric_limits<double>::infinity());
  json.Add("neg_inf", -std::numeric_limits<double>::infinity());
  const std::string doc = json.ToJson();
  EXPECT_NE(doc.find("\"nan_metric\": null"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"inf_metric\": null"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"neg_inf\": null"), std::string::npos) << doc;
  // The invalid bare tokens must never appear.
  EXPECT_EQ(doc.find("nan,"), std::string::npos) << doc;
  EXPECT_EQ(doc.find("inf,"), std::string::npos) << doc;
}

TEST(BenchJsonTest, EscapesKeysAndName) {
  BenchJson json("we\"ird\\name");
  json.Add("key \"with\" quotes", 1.0);
  json.Add("tab\there", 2.0);
  const std::string doc = json.ToJson();
  EXPECT_NE(doc.find("\"bench\": \"we\\\"ird\\\\name\""), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"key \\\"with\\\" quotes\": 1"), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"tab\\there\": 2"), std::string::npos) << doc;
}

TEST(BenchJsonTest, EmptyMetricsStillValid) {
  BenchJson json("empty");
  EXPECT_EQ(json.ToJson(),
            "{\n  \"bench\": \"empty\",\n  \"metrics\": {\n  }\n}\n");
}

TEST(BenchJsonTest, WriteRoundTripsToDisk) {
  // Write() targets bench_results/ under the CWD; run it from a temp dir.
  const std::string dir = ::testing::TempDir() + "/bench_json_test";
  std::filesystem::create_directories(dir);
  const std::filesystem::path old_cwd = std::filesystem::current_path();
  std::filesystem::current_path(dir);

  BenchJson json("roundtrip");
  json.Add("value", 42.0);
  ASSERT_TRUE(json.Write().ok());

  std::ifstream in("bench_results/BENCH_roundtrip.json");
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json.ToJson());

  std::filesystem::current_path(old_cwd);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace densest
