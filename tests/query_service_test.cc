// Copyright 2026 The densest Authors.
// Unit tests for the serving front-end: the batched QueryBatch surface
// over an AnswerPlane, its deadline/cancel/backpressure status contract,
// the serve.enqueue / serve.dequeue fault seams, the SLO counters, and
// the unified Answer type the whole query surface now shares.

#include "serve/query_service.h"

#include <type_traits>
#include <vector>

#include "common/cancel.h"
#include "common/failpoint.h"
#include "core/algorithm1.h"
#include "core/answer.h"
#include "core/density.h"
#include "dynamic/dynamic_densest.h"
#include "graph/graph_builder.h"
#include "gtest/gtest.h"
#include "serve/answer_plane.h"

namespace densest {
namespace {

class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (Failpoints::compiled_in()) Failpoints::Instance().ClearAll();
  }
  void TearDown() override {
    if (Failpoints::compiled_in()) Failpoints::Instance().ClearAll();
  }
};

Answer MakeAnswer(double density, double upper_bound, NodeId size) {
  Answer a;
  a.density = density;
  a.upper_bound = upper_bound;
  a.size = size;
  return a;
}

TEST_F(QueryServiceTest, EmptyPlaneServesTheDefaultAnswer) {
  AnswerPlane plane(8);
  QueryService service(plane, {});
  const std::vector<ServeQuery> queries = {
      {ServeQuery::Kind::kDensity, 0},
      {ServeQuery::Kind::kMembership, 3},
      {ServeQuery::Kind::kSnapshot, 0},
  };
  std::vector<ServeResult> results;
  ASSERT_TRUE(service.QueryBatch(queries, &results).ok());
  ASSERT_EQ(results.size(), 3u);
  for (const ServeResult& r : results) {
    EXPECT_EQ(r.answer.epoch, 0u);
    EXPECT_EQ(r.answer.density, 0.0);
    EXPECT_EQ(r.answer.size, 0u);
    // The pre-publication plane is the empty graph's answer: certified
    // (rho* = 0 <= 0), exactly Answer's own default.
    EXPECT_TRUE(r.answer.certified);
    EXPECT_FALSE(r.answer.stale);
  }
  EXPECT_FALSE(results[1].member);
  EXPECT_TRUE(results[2].nodes.empty());
  EXPECT_EQ(results[2].prefix_updates, 0u);
}

TEST_F(QueryServiceTest, ServesThePublishedState) {
  AnswerPlane plane(10);
  const std::vector<NodeId> members = {1, 4, 6};
  plane.Publish(MakeAnswer(1.5, 4.5, 3), members, 42);

  QueryService service(plane, {});
  const std::vector<ServeQuery> queries = {
      {ServeQuery::Kind::kDensity, 0},
      {ServeQuery::Kind::kMembership, 4},
      {ServeQuery::Kind::kMembership, 5},
      {ServeQuery::Kind::kSnapshot, 0},
  };
  std::vector<ServeResult> results;
  ASSERT_TRUE(service.QueryBatch(queries, &results).ok());
  ASSERT_EQ(results.size(), 4u);
  for (const ServeResult& r : results) {
    EXPECT_EQ(r.answer.epoch, 1u);
    EXPECT_DOUBLE_EQ(r.answer.density, 1.5);
    EXPECT_DOUBLE_EQ(r.answer.upper_bound, 4.5);
    EXPECT_EQ(r.answer.size, 3u);
    EXPECT_TRUE(r.answer.certified);
  }
  EXPECT_TRUE(results[1].member);
  EXPECT_FALSE(results[2].member);
  EXPECT_EQ(results[3].nodes, members);
  EXPECT_EQ(results[3].prefix_updates, 42u);

  const QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches_served, 1u);
  EXPECT_EQ(stats.queries_served, 4u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_GE(stats.latency_p99_us, stats.latency_p50_us);
}

TEST_F(QueryServiceTest, RepublishingMovesTheEpoch) {
  AnswerPlane plane(6);
  plane.Publish(MakeAnswer(1.0, 2.0, 2), std::vector<NodeId>{0, 1}, 10);
  plane.Publish(MakeAnswer(2.0, 4.0, 3), std::vector<NodeId>{0, 1, 5}, 20);

  QueryService service(plane, {});
  std::vector<ServeResult> results;
  const std::vector<ServeQuery> queries = {{ServeQuery::Kind::kSnapshot, 0}};
  ASSERT_TRUE(service.QueryBatch(queries, &results).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].answer.epoch, 2u);
  EXPECT_DOUBLE_EQ(results[0].answer.density, 2.0);
  EXPECT_EQ(results[0].nodes, (std::vector<NodeId>{0, 1, 5}));
  EXPECT_EQ(results[0].prefix_updates, 20u);
}

TEST_F(QueryServiceTest, EmptyBatchIsOkAndNullResultsRejected) {
  AnswerPlane plane(4);
  QueryService service(plane, {});
  std::vector<ServeResult> results = {ServeResult{}};
  EXPECT_TRUE(service.QueryBatch({}, &results).ok());
  EXPECT_TRUE(results.empty());  // cleared even for the empty batch
  EXPECT_EQ(service
                .QueryBatch(std::vector<ServeQuery>{{ServeQuery::Kind::kDensity,
                                                     0}},
                            nullptr)
                .code(),
            Status::Code::kInvalidArgument);
}

TEST_F(QueryServiceTest, CancelledTokenRejectsTheBatch) {
  AnswerPlane plane(4);
  QueryService service(plane, {});
  CancelToken cancelled;
  cancelled.Cancel();
  std::vector<ServeResult> results;
  const std::vector<ServeQuery> queries = {{ServeQuery::Kind::kDensity, 0}};
  EXPECT_EQ(service.QueryBatch(queries, &results, &cancelled).code(),
            Status::Code::kCancelled);
}

TEST_F(QueryServiceTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  AnswerPlane plane(4);
  QueryService service(plane, {});
  const CancelToken expired = CancelToken::WithDeadlineAfterMs(0);
  std::vector<ServeResult> results;
  const std::vector<ServeQuery> queries = {{ServeQuery::Kind::kDensity, 0}};
  EXPECT_EQ(service.QueryBatch(queries, &results, &expired).code(),
            Status::Code::kDeadlineExceeded);
}

TEST_F(QueryServiceTest, OptionsTokenAppliesWhenCallPassesNone) {
  AnswerPlane plane(4);
  CancelToken cancelled;
  cancelled.Cancel();
  QueryServiceOptions opt;
  opt.cancel = &cancelled;
  QueryService service(plane, opt);
  std::vector<ServeResult> results;
  const std::vector<ServeQuery> queries = {{ServeQuery::Kind::kDensity, 0}};
  EXPECT_EQ(service.QueryBatch(queries, &results).code(),
            Status::Code::kCancelled);
}

TEST_F(QueryServiceTest, SubmitAfterStopShedsWithUnavailable) {
  AnswerPlane plane(4);
  QueryService service(plane, {});
  service.Stop();
  std::vector<ServeResult> results;
  const std::vector<ServeQuery> queries = {{ServeQuery::Kind::kDensity, 0}};
  EXPECT_EQ(service.QueryBatch(queries, &results).code(),
            Status::Code::kUnavailable);
}

TEST_F(QueryServiceTest, EnqueueFailpointShedsAtAdmission) {
  if (!Failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  AnswerPlane plane(4);
  QueryService service(plane, {});
  ASSERT_TRUE(Failpoints::Instance().Set("serve.enqueue", "after=0").ok());
  std::vector<ServeResult> results;
  const std::vector<ServeQuery> queries = {{ServeQuery::Kind::kDensity, 0}};
  EXPECT_EQ(service.QueryBatch(queries, &results).code(),
            Status::Code::kUnavailable);
  EXPECT_EQ(service.stats().shed, 1u);
  EXPECT_GE(Failpoints::Instance().fires("serve.enqueue"), 1u);

  // Disarm: the very same batch now serves.
  Failpoints::Instance().Clear("serve.enqueue");
  ASSERT_TRUE(service.QueryBatch(queries, &results).ok());
  EXPECT_EQ(results.size(), 1u);
}

TEST_F(QueryServiceTest, DequeueFailpointFailsTheBatchAfterQueueing) {
  if (!Failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  AnswerPlane plane(4);
  QueryService service(plane, {});
  ASSERT_TRUE(Failpoints::Instance().Set("serve.dequeue", "after=0").ok());
  std::vector<ServeResult> results;
  const std::vector<ServeQuery> queries = {{ServeQuery::Kind::kDensity, 0}};
  EXPECT_EQ(service.QueryBatch(queries, &results).code(),
            Status::Code::kUnavailable);
  EXPECT_EQ(service.stats().failed, 1u);
  EXPECT_GE(Failpoints::Instance().fires("serve.dequeue"), 1u);

  Failpoints::Instance().Clear("serve.dequeue");
  ASSERT_TRUE(service.QueryBatch(queries, &results).ok());
}

// --- The unified Answer surface (satellite of the serving redesign) ---

// DynamicDensest::Query, the serving plane, and batch ToAnswer() all speak
// the one ::densest::Answer.
static_assert(std::is_same_v<DynamicDensest::Answer, Answer>,
              "the dynamic engine's Answer must be the shared core type");

TEST(AnswerUnificationTest, BatchResultsCarryTheirCertifiedBand) {
  GraphBuilder b;
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = i + 1; j < 6; ++j) b.Add(i, j);
  }
  b.Add(5, 6);
  b.ReserveNodes(7);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();

  Algorithm1Options opt;
  opt.epsilon = 0.25;
  auto r = RunAlgorithm1(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->certified_band, 2.0 * (1.0 + opt.epsilon));  // Lemma 1

  const Answer a = r->ToAnswer();
  EXPECT_TRUE(a.certified);
  EXPECT_DOUBLE_EQ(a.density, r->density);
  EXPECT_DOUBLE_EQ(a.upper_bound, r->certified_band * r->density);
  EXPECT_EQ(a.size, static_cast<NodeId>(r->nodes.size()));
  EXPECT_FALSE(a.stale);
  EXPECT_EQ(a.epoch, 0u);  // batch answers are never plane publications
}

TEST(AnswerUnificationTest, BandlessResultsAreUncertified) {
  UndirectedDensestResult r;
  r.density = 2.0;
  r.nodes = {0, 1, 2};
  // certified_band stays 0: e.g. the sketched variant, whose oracle
  // estimates void the deterministic peeling proof.
  const Answer a = r.ToAnswer();
  EXPECT_FALSE(a.certified);
  EXPECT_EQ(a.upper_bound, 0.0);
  EXPECT_DOUBLE_EQ(a.density, 2.0);
  EXPECT_EQ(a.size, 3u);
}

}  // namespace
}  // namespace densest
