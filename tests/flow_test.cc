// Tests for Dinic max-flow, the Goldberg exact solver, and the brute-force
// oracles themselves.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "flow/brute_force.h"
#include "flow/dinic.h"
#include "flow/goldberg.h"
#include "gen/erdos_renyi.h"
#include "gen/planted.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"

namespace densest {
namespace {

UndirectedGraph BuildUndirected(const EdgeList& e) {
  GraphBuilder b;
  b.ReserveNodes(e.num_nodes());
  for (const Edge& edge : e.edges()) b.Add(edge.u, edge.v, edge.w);
  return std::move(b.BuildUndirected()).value();
}

TEST(DinicTest, SingleArc) {
  Dinic d(2);
  d.AddArc(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 1), 5.0);
}

TEST(DinicTest, SeriesBottleneck) {
  Dinic d(3);
  d.AddArc(0, 1, 5.0);
  d.AddArc(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 2), 3.0);
}

TEST(DinicTest, ParallelPaths) {
  Dinic d(4);
  d.AddArc(0, 1, 2.0);
  d.AddArc(1, 3, 2.0);
  d.AddArc(0, 2, 3.0);
  d.AddArc(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 3), 3.0);
}

TEST(DinicTest, ClassicResidualExample) {
  // Diamond with a cross arc: needs residual arcs to reach the optimum.
  Dinic d(4);
  d.AddArc(0, 1, 10.0);
  d.AddArc(0, 2, 10.0);
  d.AddArc(1, 2, 1.0);
  d.AddArc(1, 3, 10.0);
  d.AddArc(2, 3, 10.0);
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 3), 20.0);
}

TEST(DinicTest, DisconnectedSinkHasZeroFlow) {
  Dinic d(4);
  d.AddArc(0, 1, 7.0);
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 3), 0.0);
}

TEST(DinicTest, MinCutSourceSide) {
  Dinic d(4);
  d.AddArc(0, 1, 10.0);
  d.AddArc(1, 2, 1.0);  // the bottleneck
  d.AddArc(2, 3, 10.0);
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 3), 1.0);
  auto side = d.MinCutSourceSide(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(DinicTest, ResetFlowAllowsResolving) {
  Dinic d(2);
  int arc = d.AddArc(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 1), 5.0);
  d.SetArcCapacity(arc, 2.0);
  d.ResetFlow();
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 1), 2.0);
}

TEST(DinicTest, UndirectedEdgePairBothDirections) {
  Dinic d(3);
  d.AddArc(0, 1, 1.0, 1.0);  // undirected edge as opposed arc pair
  d.AddArc(1, 2, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(d.MaxFlow(0, 2), 1.0);
  d.ResetFlow();
  EXPECT_DOUBLE_EQ(d.MaxFlow(2, 0), 1.0);
}

TEST(GoldbergTest, CliquePlusTailExact) {
  GraphBuilder b;
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) b.Add(i, j);
  }
  b.Add(3, 4);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  auto r = ExactDensestSubgraph(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->density, 1.5);  // K4
  EXPECT_EQ(r->nodes, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(GoldbergTest, PathOfThree) {
  GraphBuilder b;
  b.Add(0, 1);
  b.Add(1, 2);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  auto r = ExactDensestSubgraph(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->density, 2.0 / 3.0);  // the whole path
  EXPECT_EQ(r->nodes.size(), 3u);
}

TEST(GoldbergTest, EdgelessGraph) {
  GraphBuilder b;
  b.ReserveNodes(5);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  auto r = ExactDensestSubgraph(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->density, 0.0);
}

TEST(GoldbergTest, WholeGraphWhenRegular) {
  // A cycle: every subgraph has density <= 1, the full cycle achieves it.
  GraphBuilder b;
  for (NodeId i = 0; i < 10; ++i) b.Add(i, (i + 1) % 10);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  auto r = ExactDensestSubgraph(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->density, 1.0);
  EXPECT_EQ(r->nodes.size(), 10u);
}

TEST(GoldbergTest, WeightedExactness) {
  GraphBuilder b;
  b.Add(0, 1, 3.0);
  b.Add(1, 2, 1.0);
  b.Add(3, 4, 2.0);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  auto r = ExactDensestSubgraph(g);
  ASSERT_TRUE(r.ok());
  // Best: {0,1} with 3/2 = 1.5 (vs {0,1,2}: 4/3; {3,4}: 1).
  EXPECT_DOUBLE_EQ(r->density, 1.5);
  EXPECT_EQ(r->nodes, (std::vector<NodeId>{0, 1}));
}

TEST(GoldbergTest, ConvergesInFewIterations) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(500, 4000, 99));
  auto r = ExactDensestSubgraph(g);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->flow_iterations, 30);
}

TEST(GoldbergTest, PlantedCliqueRecovered) {
  PlantedGraph pg = PlantDenseBlocks(300, 600, {{20, 1.0}}, 71);
  UndirectedGraph g = BuildUndirected(pg.edges);
  auto r = ExactDensestSubgraph(g);
  ASSERT_TRUE(r.ok());
  // The 20-clique has density 9.5; optimum may add a few attached nodes
  // but can never fall below the clique itself.
  EXPECT_GE(r->density, 9.5 - 1e-9);
}

TEST(BruteForceTest, TriangleExact) {
  GraphBuilder b;
  b.Add(0, 1);
  b.Add(1, 2);
  b.Add(0, 2);
  b.Add(2, 3);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  auto r = BruteForceDensest(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->density, 1.0);
  EXPECT_EQ(r->nodes, (std::vector<NodeId>{0, 1, 2}));
}

TEST(BruteForceTest, SizeLimitEnforced) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(30, 50, 1));
  EXPECT_FALSE(BruteForceDensest(g).ok());
}

TEST(BruteForceDirectedTest, StarExact) {
  // Arcs 1->0, 2->0, 3->0: best is S={1,2,3}, T={0}: 3/sqrt(3) = sqrt(3).
  GraphBuilder b;
  b.Add(1, 0);
  b.Add(2, 0);
  b.Add(3, 0);
  DirectedGraph g = std::move(b.BuildDirected()).value();
  auto r = BruteForceDensestDirected(g);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->density, std::sqrt(3.0), 1e-12);
  EXPECT_EQ(r->t_nodes, (std::vector<NodeId>{0}));
  EXPECT_EQ(r->s_nodes.size(), 3u);
}

// ---- The central oracle consistency sweep: Goldberg == brute force. ----

class ExactOracleAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExactOracleAgreementTest, GoldbergMatchesBruteForce) {
  auto [seed, edges] = GetParam();
  UndirectedGraph g = BuildUndirected(
      ErdosRenyiGnm(13, static_cast<EdgeId>(edges),
                    static_cast<uint64_t>(seed)));
  auto brute = BruteForceDensest(g);
  auto flow = ExactDensestSubgraph(g);
  ASSERT_TRUE(brute.ok());
  ASSERT_TRUE(flow.ok());
  EXPECT_NEAR(flow->density, brute->density, 1e-9)
      << "seed=" << seed << " m=" << edges;
  // The returned set must actually attain the reported density.
  NodeSet s = NodeSet::FromVector(g.num_nodes(), flow->nodes);
  EXPECT_NEAR(InducedDensity(g, s), flow->density, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    OracleSweep, ExactOracleAgreementTest,
    ::testing::Combine(::testing::Range(500, 515),
                       ::testing::Values(10, 25, 45, 70)));

// Weighted agreement sweep.
class WeightedOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(WeightedOracleTest, GoldbergMatchesBruteForceWeighted) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  GraphBuilder b;
  b.ReserveNodes(12);
  EdgeList base = ErdosRenyiGnm(12, 30, seed);
  for (const Edge& e : base.edges()) {
    b.Add(e.u, e.v, 0.25 + 4.0 * rng.UniformDouble());
  }
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  auto brute = BruteForceDensest(g);
  auto flow = ExactDensestSubgraph(g);
  ASSERT_TRUE(brute.ok());
  ASSERT_TRUE(flow.ok());
  EXPECT_NEAR(flow->density, brute->density, 1e-7) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(WeightedSweep, WeightedOracleTest,
                         ::testing::Range(600, 612));

}  // namespace
}  // namespace densest
