// Unit tests for Status / StatusOr.

#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace densest {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), Status::Code::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
  EXPECT_FALSE(Status::Internal("x").ok());
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
  EXPECT_EQ(Status::Unavailable("x").code(), Status::Code::kUnavailable);
  EXPECT_EQ(Status::Unavailable("x").ToString(), "Unavailable: x");
}

TEST(StatusTest, OnlyUnavailableIsRetryable) {
  // The retry loops key off this split: kUnavailable is the transient
  // class worth retrying; kIOError (dead disk, torn file) is permanent.
  EXPECT_TRUE(Status::Unavailable("flaky nfs").IsRetryable());
  EXPECT_FALSE(Status::IOError("dead disk").IsRetryable());
  EXPECT_FALSE(Status::Internal("bug").IsRetryable());
  EXPECT_FALSE(Status().IsRetryable());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("eps < 0").ToString(),
            "InvalidArgument: eps < 0");
  EXPECT_EQ(Status::IOError("").ToString(), "IOError");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

}  // namespace
}  // namespace densest
