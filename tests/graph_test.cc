// Unit tests for CSR graphs, GraphBuilder, and graph stats.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/directed_graph.h"
#include "graph/graph_builder.h"
#include "graph/stats.h"
#include "graph/undirected_graph.h"

namespace densest {
namespace {

EdgeList Triangle() {
  EdgeList e(3);
  e.Add(0, 1);
  e.Add(1, 2);
  e.Add(0, 2);
  return e;
}

TEST(UndirectedGraphTest, TriangleBasics) {
  UndirectedGraph g = UndirectedGraph::FromEdgeList(Triangle());
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);
  EXPECT_FALSE(g.is_weighted());
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(g.Degree(u), 2u);
  EXPECT_DOUBLE_EQ(g.Density(), 1.0);
  EXPECT_EQ(g.MaxDegree(), 2u);
}

TEST(UndirectedGraphTest, NeighborsAreSymmetric) {
  UndirectedGraph g = UndirectedGraph::FromEdgeList(Triangle());
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v : g.Neighbors(u)) {
      auto nbrs = g.Neighbors(v);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), u), nbrs.end());
    }
  }
}

TEST(UndirectedGraphTest, WeightedDegrees) {
  EdgeList e(3);
  e.Add(0, 1, 2.0);
  e.Add(1, 2, 3.0);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
  EXPECT_TRUE(g.is_weighted());
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 2.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 5.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(2), 3.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 5.0);
}

TEST(UndirectedGraphTest, SelfLoopOccupiesOneSlot) {
  EdgeList e(2);
  e.Add(0, 0);
  e.Add(0, 1);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
  EXPECT_EQ(g.Degree(0), 2u);  // one slot for the loop, one for edge to 1
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(UndirectedGraphTest, RoundTripsThroughEdgeList) {
  EdgeList e(5);
  e.Add(0, 4);
  e.Add(1, 3);
  e.Add(2, 4);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
  EdgeList back = g.ToEdgeList();
  EXPECT_EQ(back.num_edges(), 3u);
  UndirectedGraph g2 = UndirectedGraph::FromEdgeList(back);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(g.Degree(u), g2.Degree(u));
}

TEST(UndirectedGraphTest, EmptyGraph) {
  UndirectedGraph g = UndirectedGraph::FromEdgeList(EdgeList(0));
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.Density(), 0.0);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(DirectedGraphTest, OutAndInAdjacency) {
  EdgeList arcs(3);
  arcs.Add(0, 1);
  arcs.Add(0, 2);
  arcs.Add(2, 1);
  DirectedGraph g = DirectedGraph::FromEdgeList(arcs);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.InDegree(1), 2u);
  EXPECT_EQ(g.OutDegree(1), 0u);
  EXPECT_EQ(g.OutDegree(2), 1u);
  EXPECT_EQ(g.InDegree(2), 1u);

  auto in1 = g.InNeighbors(1);
  std::set<NodeId> sources(in1.begin(), in1.end());
  EXPECT_TRUE(sources.count(0));
  EXPECT_TRUE(sources.count(2));
}

TEST(DirectedGraphTest, RoundTripPreservesArcCount) {
  EdgeList arcs(4);
  arcs.Add(0, 1);
  arcs.Add(1, 0);  // opposite arcs are distinct
  arcs.Add(2, 3);
  DirectedGraph g = DirectedGraph::FromEdgeList(arcs);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.ToEdgeList().num_edges(), 3u);
}

TEST(GraphBuilderTest, DefaultCleaningPolicy) {
  GraphBuilder b;
  b.Add(0, 0);  // self loop: dropped
  b.Add(0, 1);
  b.Add(1, 0);  // duplicate after canonicalization: merged
  b.Add(1, 2);
  auto g = b.BuildUndirected();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_EQ(g->Degree(0), 1u);
}

TEST(GraphBuilderTest, RejectsNegativeWeights) {
  GraphBuilder b;
  b.Add(0, 1, -1.0);
  auto g = b.BuildUndirected();
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kInvalidArgument);
}

TEST(GraphBuilderTest, IgnoreWeightsKeepsDeduplicatedUnit) {
  GraphBuilderOptions opt;
  opt.ignore_weights = true;
  GraphBuilder b(opt);
  b.Add(0, 1, 5.0);
  b.Add(1, 0, 7.0);
  auto g = b.BuildUndirected();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_FALSE(g->is_weighted());
  EXPECT_DOUBLE_EQ(g->total_weight(), 1.0);
}

TEST(GraphBuilderTest, DirectedKeepsBothOrientations) {
  GraphBuilder b;
  b.Add(0, 1);
  b.Add(1, 0);
  auto g = b.BuildDirected();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(GraphBuilderTest, ReserveNodesCoversIsolated) {
  GraphBuilder b;
  b.ReserveNodes(10);
  b.Add(0, 1);
  auto g = b.BuildUndirected();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 10u);
}

TEST(GraphStatsTest, TriangleStats) {
  UndirectedGraph g = UndirectedGraph::FromEdgeList(Triangle());
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 3u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.density, 1.0);
  EXPECT_EQ(s.isolated_nodes, 0u);
}

TEST(GraphStatsTest, CountsIsolatedNodes) {
  EdgeList e(5);
  e.Add(0, 1);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.isolated_nodes, 3u);
}

TEST(GraphStatsTest, DegreeHistogramSumsToN) {
  EdgeList e(4);
  e.Add(0, 1);
  e.Add(1, 2);
  e.Add(1, 3);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
  auto hist = DegreeHistogram(g);
  EdgeId total = 0;
  for (EdgeId c : hist) total += c;
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(hist[3], 1u);  // node 1
  EXPECT_EQ(hist[1], 3u);  // nodes 0, 2, 3
}

TEST(GraphStatsTest, FormatStatsHumanizes) {
  GraphStats s;
  s.num_nodes = 976000;
  s.num_edges = 7600000;
  std::string str = FormatStats(s);
  EXPECT_NE(str.find("976K"), std::string::npos);
  EXPECT_NE(str.find("7.6M"), std::string::npos);
}

}  // namespace
}  // namespace densest
