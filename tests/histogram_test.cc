// Unit tests for the streaming histogram.

#include "common/histogram.h"

#include <gtest/gtest.h>

namespace densest {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Mean(), 42.0);
  EXPECT_EQ(h.Min(), 42.0);
  EXPECT_EQ(h.Max(), 42.0);
  EXPECT_EQ(h.Quantile(0.0), 42.0);
  EXPECT_EQ(h.Quantile(1.0), 42.0);
}

TEST(HistogramTest, MeanMinMaxSum) {
  Histogram h;
  for (double x : {1.0, 2.0, 3.0, 4.0}) h.Add(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_EQ(h.Min(), 1.0);
  EXPECT_EQ(h.Max(), 4.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 10.0);
}

TEST(HistogramTest, ExactQuantilesForSmallSamples) {
  Histogram h;
  for (int i = 1; i <= 101; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.Quantile(0.5), 51.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(h.Quantile(1.0), 101.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.25), 26.0, 1e-9);
}

TEST(HistogramTest, ReservoirKeepsQuantilesApproximatelyRight) {
  Histogram h(512);  // force reservoir mode
  for (int i = 0; i < 100000; ++i) h.Add(static_cast<double>(i % 1000));
  EXPECT_EQ(h.count(), 100000u);
  // p50 of a uniform 0..999 stream should be near 500.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 100.0);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  EXPECT_NE(h.ToString().find("count=2"), std::string::npos);
}

}  // namespace
}  // namespace densest
