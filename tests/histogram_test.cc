// Unit tests for the streaming histogram.

#include "common/histogram.h"

#include <gtest/gtest.h>

namespace densest {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Mean(), 42.0);
  EXPECT_EQ(h.Min(), 42.0);
  EXPECT_EQ(h.Max(), 42.0);
  EXPECT_EQ(h.Quantile(0.0), 42.0);
  EXPECT_EQ(h.Quantile(1.0), 42.0);
}

TEST(HistogramTest, MeanMinMaxSum) {
  Histogram h;
  for (double x : {1.0, 2.0, 3.0, 4.0}) h.Add(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_EQ(h.Min(), 1.0);
  EXPECT_EQ(h.Max(), 4.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 10.0);
}

TEST(HistogramTest, ExactQuantilesForSmallSamples) {
  Histogram h;
  for (int i = 1; i <= 101; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.Quantile(0.5), 51.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(h.Quantile(1.0), 101.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.25), 26.0, 1e-9);
}

TEST(HistogramTest, ReservoirKeepsQuantilesApproximatelyRight) {
  Histogram h(512);  // force reservoir mode
  for (int i = 0; i < 100000; ++i) h.Add(static_cast<double>(i % 1000));
  EXPECT_EQ(h.count(), 100000u);
  // p50 of a uniform 0..999 stream should be near 500.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 100.0);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  EXPECT_NE(h.ToString().find("count=2"), std::string::npos);
}

TEST(HistogramMergeTest, MergeIntoEmptyAdoptsDonor) {
  Histogram a, b;
  for (double x : {1.0, 2.0, 3.0}) b.Add(x);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.Sum(), 6.0);
  EXPECT_EQ(a.Min(), 1.0);
  EXPECT_EQ(a.Max(), 3.0);
  EXPECT_NEAR(a.Quantile(0.5), 2.0, 1e-9);
  // The donor is untouched.
  EXPECT_EQ(b.count(), 3u);
}

TEST(HistogramMergeTest, MergeEmptyDonorIsNoOp) {
  Histogram a, b;
  a.Add(7.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.Quantile(0.5), 7.0);
}

TEST(HistogramMergeTest, ExactWhileCombinedSamplesFit) {
  Histogram a, b;
  for (int i = 1; i <= 50; ++i) a.Add(static_cast<double>(i));
  for (int i = 51; i <= 101; ++i) b.Add(static_cast<double>(i));
  a.Merge(b);
  EXPECT_EQ(a.count(), 101u);
  EXPECT_EQ(a.Min(), 1.0);
  EXPECT_EQ(a.Max(), 101.0);
  EXPECT_NEAR(a.Quantile(0.5), 51.0, 1e-9);
}

TEST(HistogramMergeTest, ProportionalResampleBeyondCapacity) {
  // Two reservoirs over disjoint uniform ranges, 3:1 by observation mass:
  // the merged quantiles must reflect the 3:1 weighting even though the
  // combined samples exceed capacity and must be resampled.
  Histogram a(512), b(512);
  for (int i = 0; i < 30000; ++i) a.Add(static_cast<double>(i % 1000));
  for (int i = 0; i < 10000; ++i) {
    b.Add(static_cast<double>(2000 + i % 1000));
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 40000u);
  EXPECT_EQ(a.Min(), 0.0);
  EXPECT_EQ(a.Max(), 2999.0);
  // 75% of mass sits in [0,1000): p50 lands there, p90 in [2000,3000).
  EXPECT_LT(a.Quantile(0.5), 1100.0);
  EXPECT_GT(a.Quantile(0.9), 1900.0);
}

TEST(HistogramMergeTest, DeterministicAcrossIdenticalRuns) {
  auto build = [] {
    Histogram a(256), b(256);
    for (int i = 0; i < 5000; ++i) a.Add(static_cast<double>(i % 97));
    for (int i = 0; i < 5000; ++i) b.Add(static_cast<double>(100 + i % 89));
    a.Merge(b);
    return a;
  };
  Histogram first = build();
  Histogram second = build();
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(first.Quantile(q), second.Quantile(q));
  }
}

}  // namespace
}  // namespace densest
