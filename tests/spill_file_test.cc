// Tests for the shuffle spill store: round trips, IO accounting, and the
// truncation failure mode (a short read must be an IOError, never a silent
// end-of-data — mirroring the edge streams' status() contract).

#include "io/spill_file.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <numeric>
#include <vector>

namespace densest {
namespace {

TEST(SpillFileTest, RoundTripsSegments) {
  auto spill = SpillFile::Create("");
  ASSERT_TRUE(spill.ok()) << spill.status().ToString();

  std::vector<uint64_t> run1(1000);
  std::iota(run1.begin(), run1.end(), 0);
  std::vector<uint64_t> run2(500);
  std::iota(run2.begin(), run2.end(), 7000);
  ASSERT_TRUE((*spill)->Append(run1.data(), run1.size() * 8).ok());
  ASSERT_TRUE((*spill)->Append(run2.data(), run2.size() * 8).ok());
  ASSERT_TRUE((*spill)->Flush().ok());
  EXPECT_EQ((*spill)->bytes_written(), 1500u * 8);

  // Read the second run first: readers are independent cursors.
  auto r2 = (*spill)->OpenReader(1000 * 8, 500 * 8);
  ASSERT_TRUE(r2.ok());
  std::vector<uint64_t> got(500);
  auto n = r2->Read(got.data(), got.size() * 8);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 500u * 8);
  EXPECT_EQ(got, run2);
  EXPECT_EQ(r2->remaining(), 0u);
  // Exhausted segment reads 0, not an error.
  auto after = r2->Read(got.data(), 8);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, 0u);

  // First run in two partial reads.
  auto r1 = (*spill)->OpenReader(0, 1000 * 8);
  ASSERT_TRUE(r1.ok());
  std::vector<uint64_t> head(600);
  ASSERT_TRUE(r1->Read(head.data(), 600 * 8).ok());
  std::vector<uint64_t> tail(400);
  ASSERT_TRUE(r1->Read(tail.data(), 400 * 8).ok());
  head.insert(head.end(), tail.begin(), tail.end());
  EXPECT_EQ(head, run1);
}

TEST(SpillFileTest, ReaderBeyondWrittenSizeRejected) {
  auto spill = SpillFile::Create("");
  ASSERT_TRUE(spill.ok());
  uint64_t x = 42;
  ASSERT_TRUE((*spill)->Append(&x, 8).ok());
  EXPECT_FALSE((*spill)->OpenReader(0, 16).ok());
  EXPECT_FALSE((*spill)->OpenReader(16, 8).ok());
}

TEST(SpillFileTest, TruncatedFileSurfacesIOError) {
  const std::string path =
      ::testing::TempDir() + "/spill_truncation_test.tmp";
  auto spill = SpillFile::CreateAt(path);
  ASSERT_TRUE(spill.ok());
  std::vector<uint64_t> data(1000);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE((*spill)->Append(data.data(), data.size() * 8).ok());
  ASSERT_TRUE((*spill)->Flush().ok());

  // Somebody (a full disk, an over-eager cleaner) truncates the file
  // between spill and merge-read.
  std::filesystem::resize_file(path, 300 * 8);

  auto reader = (*spill)->OpenReader(0, 1000 * 8);
  ASSERT_TRUE(reader.ok());
  std::vector<uint64_t> buf(1000);
  StatusOr<size_t> n = reader->Read(buf.data(), buf.size() * 8);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), Status::Code::kIOError);
  EXPECT_NE(n.status().message().find("truncated"), std::string::npos);
}

TEST(SpillFileTest, ReadAtServesInterleavedSegmentsThroughOneHandle) {
  auto spill = SpillFile::Create("");
  ASSERT_TRUE(spill.ok());
  std::vector<uint64_t> data(2000);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE((*spill)->Append(data.data(), data.size() * 8).ok());
  ASSERT_TRUE((*spill)->Flush().ok());

  // Interleave positioned reads the way the merge does across runs.
  uint64_t a = 0, b = 0;
  ASSERT_TRUE((*spill)->ReadAt(500 * 8, &a, 8).ok());
  ASSERT_TRUE((*spill)->ReadAt(0, &b, 8).ok());
  EXPECT_EQ(a, 500u);
  EXPECT_EQ(b, 0u);
  // Past the end: 0 bytes, not an error.
  auto past = (*spill)->ReadAt(2000 * 8, &a, 8);
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(*past, 0u);
}

TEST(SpillFileTest, ReadAtSurfacesTruncationAsIOError) {
  const std::string path = ::testing::TempDir() + "/spill_readat_trunc.tmp";
  auto spill = SpillFile::CreateAt(path);
  ASSERT_TRUE(spill.ok());
  std::vector<uint64_t> data(1000);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE((*spill)->Append(data.data(), data.size() * 8).ok());
  ASSERT_TRUE((*spill)->Flush().ok());
  std::filesystem::resize_file(path, 100 * 8);

  std::vector<uint64_t> buf(1000);
  StatusOr<size_t> n = (*spill)->ReadAt(0, buf.data(), buf.size() * 8);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), Status::Code::kIOError);
  EXPECT_NE(n.status().message().find("truncated"), std::string::npos);
}

TEST(SpillFileTest, FileRemovedOnDestruction) {
  std::string path;
  {
    auto spill = SpillFile::Create("");
    ASSERT_TRUE(spill.ok());
    path = (*spill)->path();
    uint64_t x = 1;
    ASSERT_TRUE((*spill)->Append(&x, 8).ok());
    ASSERT_TRUE((*spill)->Flush().ok());
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(SpillFileTest, CreateInMissingDirectoryFails) {
  auto spill = SpillFile::Create("/nonexistent_densest_dir_xyz");
  EXPECT_FALSE(spill.ok());
  EXPECT_EQ(spill.status().code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace densest
