// Unit tests for the shared per-pass accumulators (core/peel_state) and
// weighted directed peeling.

#include "core/peel_state.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/algorithm3.h"
#include "graph/graph_builder.h"
#include "stream/memory_stream.h"

namespace densest {
namespace {

TEST(PeelStateTest, UndirectedPassCountsOnlyAliveEdges) {
  EdgeList el(4);
  el.Add(0, 1, 2.0);
  el.Add(1, 2, 1.0);
  el.Add(2, 3, 1.0);
  EdgeListStream stream(el);

  NodeSet alive(4, /*full=*/true);
  alive.Remove(3);
  std::vector<double> degrees(4, 99.0);  // must be overwritten

  UndirectedPassResult r = RunUndirectedPass(stream, alive, degrees);
  EXPECT_EQ(r.edges, 2u);          // edge 2-3 excluded
  EXPECT_DOUBLE_EQ(r.weight, 3.0);
  EXPECT_DOUBLE_EQ(degrees[0], 2.0);
  EXPECT_DOUBLE_EQ(degrees[1], 3.0);
  EXPECT_DOUBLE_EQ(degrees[2], 1.0);
  EXPECT_DOUBLE_EQ(degrees[3], 0.0);  // dead nodes read as zero
}

TEST(PeelStateTest, DirectedPassSplitsOutAndIn) {
  EdgeList arcs(4);
  arcs.Add(0, 1, 1.0);
  arcs.Add(0, 2, 1.0);
  arcs.Add(3, 1, 1.0);
  EdgeListStream stream(arcs);

  NodeSet s(4, true), t(4, true);
  t.Remove(2);  // arc 0->2 no longer counts
  std::vector<double> out_to_t(4), in_from_s(4);
  DirectedPassResult r = RunDirectedPass(stream, s, t, out_to_t, in_from_s);
  EXPECT_EQ(r.arcs, 2u);
  EXPECT_DOUBLE_EQ(out_to_t[0], 1.0);
  EXPECT_DOUBLE_EQ(out_to_t[3], 1.0);
  EXPECT_DOUBLE_EQ(in_from_s[1], 2.0);
  EXPECT_DOUBLE_EQ(in_from_s[2], 0.0);
}

TEST(PeelStateTest, RepeatedPassesAreIdempotent) {
  EdgeList el(3);
  el.Add(0, 1);
  el.Add(1, 2);
  EdgeListStream stream(el);
  NodeSet alive(3, true);
  std::vector<double> degrees(3);
  auto r1 = RunUndirectedPass(stream, alive, degrees);
  auto r2 = RunUndirectedPass(stream, alive, degrees);
  EXPECT_EQ(r1.edges, r2.edges);
  EXPECT_DOUBLE_EQ(r1.weight, r2.weight);
  EXPECT_DOUBLE_EQ(degrees[1], 2.0);  // not double-counted
}

TEST(WeightedDirectedTest, Algorithm3UsesArcWeights) {
  // A heavy 2-cycle between {0,1} vs a light dense block on {2..5}.
  GraphBuilder b;
  b.Add(0, 1, 50.0);
  b.Add(1, 0, 50.0);
  for (NodeId u = 2; u <= 5; ++u) {
    for (NodeId v = 2; v <= 5; ++v) {
      if (u != v) b.Add(u, v, 1.0);
    }
  }
  DirectedGraph g = std::move(b.BuildDirected()).value();

  Algorithm3Options opt;
  opt.c = 1.0;
  opt.epsilon = 0.1;
  auto r = RunAlgorithm3(g, opt);
  ASSERT_TRUE(r.ok());
  // Heavy pair: rho(S={0,1}, T={0,1}) = 100/2 = 50.
  EXPECT_DOUBLE_EQ(r->density, 50.0);
  EXPECT_EQ(r->s_nodes, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(r->t_nodes, (std::vector<NodeId>{0, 1}));
}

TEST(WeightedDirectedTest, WeightScalingActsLinearlyOnAlgorithm3) {
  GraphBuilder base, scaled;
  EdgeList arcs(20);
  Rng rng(5);
  for (int i = 0; i < 80; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformU64(20));
    NodeId v = static_cast<NodeId>(rng.UniformU64(20));
    if (u == v) continue;
    base.Add(u, v, 1.0);
    scaled.Add(u, v, 7.0);
  }
  DirectedGraph g1 = std::move(base.BuildDirected()).value();
  DirectedGraph g2 = std::move(scaled.BuildDirected()).value();

  Algorithm3Options opt;
  opt.c = 1.0;
  opt.epsilon = 0.5;
  auto r1 = RunAlgorithm3(g1, opt);
  auto r2 = RunAlgorithm3(g2, opt);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->s_nodes, r2->s_nodes);
  EXPECT_EQ(r1->t_nodes, r2->t_nodes);
  EXPECT_NEAR(r2->density, 7.0 * r1->density, 1e-9);
}

}  // namespace
}  // namespace densest
