// Unit tests for NodeSet and induced subgraph extraction.

#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace densest {
namespace {

TEST(NodeSetTest, InsertRemoveContains) {
  NodeSet s(10);
  EXPECT_TRUE(s.empty());
  s.Insert(3);
  s.Insert(3);  // idempotent
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(3));
  s.Remove(3);
  s.Remove(3);  // idempotent
  EXPECT_TRUE(s.empty());
}

TEST(NodeSetTest, FullConstruction) {
  NodeSet s(5, /*full=*/true);
  EXPECT_EQ(s.size(), 5u);
  for (NodeId u = 0; u < 5; ++u) EXPECT_TRUE(s.Contains(u));
}

TEST(NodeSetTest, ToVectorAscending) {
  NodeSet s(10);
  s.Insert(7);
  s.Insert(2);
  s.Insert(5);
  auto v = s.ToVector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 2u);
  EXPECT_EQ(v[1], 5u);
  EXPECT_EQ(v[2], 7u);
}

TEST(NodeSetTest, FromVectorRoundTrip) {
  NodeSet s = NodeSet::FromVector(10, {1, 4, 9});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.Contains(9));
  EXPECT_FALSE(s.Contains(0));
}

TEST(NodeSetTest, FullConstructionMasksTailBits) {
  // Universe sizes straddling the 64-bit word boundary: the packed tail
  // word must not carry phantom members.
  for (NodeId n : {63u, 64u, 65u, 130u}) {
    NodeSet s(n, /*full=*/true);
    EXPECT_EQ(s.size(), n);
    EXPECT_EQ(s.ToVector().size(), n);
    for (NodeId u = 0; u < n; ++u) EXPECT_TRUE(s.Contains(u)) << n << " " << u;
  }
}

TEST(NodeSetTest, ContainsBothMatchesPairwiseContains) {
  NodeSet s = NodeSet::FromVector(200, {0, 63, 64, 100, 199});
  for (NodeId u : {0u, 1u, 63u, 64u, 100u, 199u}) {
    for (NodeId v : {0u, 1u, 63u, 64u, 100u, 199u}) {
      EXPECT_EQ(s.ContainsBoth(u, v), s.Contains(u) && s.Contains(v))
          << u << " " << v;
    }
  }
}

TEST(NodeSetTest, ToVectorCrossesWordBoundaries) {
  NodeSet s = NodeSet::FromVector(300, {5, 63, 64, 127, 128, 255, 299});
  EXPECT_EQ(s.ToVector(),
            (std::vector<NodeId>{5, 63, 64, 127, 128, 255, 299}));
}

UndirectedGraph K4PlusPendant() {
  // Clique on {0,1,2,3} plus pendant edge 3-4.
  GraphBuilder b;
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) b.Add(i, j);
  }
  b.Add(3, 4);
  return std::move(b.BuildUndirected()).value();
}

TEST(InducedSubgraphTest, ExtractsCliqueWithMapping) {
  UndirectedGraph g = K4PlusPendant();
  NodeSet s = NodeSet::FromVector(5, {0, 1, 2, 3});
  std::vector<NodeId> mapping;
  UndirectedGraph sub = InducedSubgraph(g, s, &mapping);
  EXPECT_EQ(sub.num_nodes(), 4u);
  EXPECT_EQ(sub.num_edges(), 6u);
  ASSERT_EQ(mapping.size(), 4u);
  for (NodeId i = 0; i < 4; ++i) EXPECT_EQ(mapping[i], i);
}

TEST(InducedSubgraphTest, DropsCrossEdges) {
  UndirectedGraph g = K4PlusPendant();
  NodeSet s = NodeSet::FromVector(5, {3, 4});
  UndirectedGraph sub = InducedSubgraph(g, s);
  EXPECT_EQ(sub.num_nodes(), 2u);
  EXPECT_EQ(sub.num_edges(), 1u);  // only 3-4 survives
}

TEST(InducedSubgraphTest, EmptySelection) {
  UndirectedGraph g = K4PlusPendant();
  NodeSet s(5);
  UndirectedGraph sub = InducedSubgraph(g, s);
  EXPECT_EQ(sub.num_nodes(), 0u);
  EXPECT_EQ(sub.num_edges(), 0u);
}

TEST(CountInducedEdgesTest, CliqueSubsetCounts) {
  UndirectedGraph g = K4PlusPendant();
  NodeSet s = NodeSet::FromVector(5, {0, 1, 2});
  auto c = CountInducedEdges(g, s);
  EXPECT_EQ(c.edges, 3u);
  EXPECT_DOUBLE_EQ(c.weight, 3.0);
  EXPECT_DOUBLE_EQ(InducedDensity(g, s), 1.0);
}

TEST(InducedDensityTest, EmptySetIsZero) {
  UndirectedGraph g = K4PlusPendant();
  EXPECT_DOUBLE_EQ(InducedDensity(g, NodeSet(5)), 0.0);
}

TEST(InducedSubgraphDirectedTest, KeepsInternalArcs) {
  GraphBuilder b;
  b.Add(0, 1);
  b.Add(1, 2);
  b.Add(2, 0);
  b.Add(0, 3);
  DirectedGraph g = std::move(b.BuildDirected()).value();
  NodeSet s = NodeSet::FromVector(4, {0, 1, 2});
  std::vector<NodeId> mapping;
  DirectedGraph sub = InducedSubgraphDirected(g, s, &mapping);
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 3u);
}

TEST(InducedDensityDirectedTest, MatchesDefinition) {
  GraphBuilder b;
  b.Add(0, 2);
  b.Add(0, 3);
  b.Add(1, 2);
  b.Add(1, 3);
  DirectedGraph g = std::move(b.BuildDirected()).value();
  NodeSet s = NodeSet::FromVector(4, {0, 1});
  NodeSet t = NodeSet::FromVector(4, {2, 3});
  // |E(S,T)| = 4, sqrt(|S||T|) = 2 -> rho = 2.
  EXPECT_DOUBLE_EQ(InducedDensityDirected(g, s, t), 2.0);
  EXPECT_DOUBLE_EQ(InducedDensityDirected(g, NodeSet(4), t), 0.0);
}

TEST(InducedDensityDirectedTest, OverlappingSetsAllowed) {
  // S and T need not be disjoint (paper Definition 2).
  GraphBuilder b;
  b.Add(0, 1);
  b.Add(1, 0);
  DirectedGraph g = std::move(b.BuildDirected()).value();
  NodeSet both = NodeSet::FromVector(2, {0, 1});
  // E(S,T) = 2 arcs, sqrt(2*2) = 2 -> rho = 1.
  EXPECT_DOUBLE_EQ(InducedDensityDirected(g, both, both), 1.0);
}

}  // namespace
}  // namespace densest
