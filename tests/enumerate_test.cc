// Tests for node-disjoint dense subgraph enumeration.

#include "core/enumerate.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/planted.h"
#include "graph/graph_builder.h"

namespace densest {
namespace {

UndirectedGraph BuildUndirected(const EdgeList& e) {
  GraphBuilder b;
  b.ReserveNodes(e.num_nodes());
  for (const Edge& edge : e.edges()) b.Add(edge.u, edge.v, edge.w);
  return std::move(b.BuildUndirected()).value();
}

TEST(EnumerateTest, FindsTwoPlantedCommunities) {
  // Two planted communities with well-separated densities: with a small
  // epsilon the peel isolates the denser one first rather than returning
  // their union as one intermediate set.
  PlantedGraph pg =
      PlantDenseBlocks(600, 900, {{40, 0.95}, {28, 0.7}}, 51);
  UndirectedGraph g = BuildUndirected(pg.edges);

  EnumerateOptions opt;
  opt.max_subgraphs = 2;
  opt.epsilon = 0.0;
  opt.min_density = 2.0;
  auto r = EnumerateDenseSubgraphs(g, opt);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);

  // Densest first.
  EXPECT_GE((*r)[0].density, (*r)[1].density);
  // Both should be clearly denser than the background (~1.5 avg degree).
  EXPECT_GT((*r)[1].density, 5.0);

  // Node-disjointness.
  std::set<NodeId> seen((*r)[0].nodes.begin(), (*r)[0].nodes.end());
  for (NodeId u : (*r)[1].nodes) {
    EXPECT_TRUE(seen.insert(u).second) << "subgraphs overlap at " << u;
  }
}

TEST(EnumerateTest, RespectsMaxSubgraphs) {
  PlantedGraph pg =
      PlantDenseBlocks(500, 800, {{25, 0.9}, {25, 0.9}, {25, 0.9}}, 52);
  UndirectedGraph g = BuildUndirected(pg.edges);
  EnumerateOptions opt;
  opt.max_subgraphs = 1;
  auto r = EnumerateDenseSubgraphs(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST(EnumerateTest, MinDensityCutsOff) {
  PlantedGraph pg = PlantDenseBlocks(400, 300, {{30, 1.0}}, 53);
  UndirectedGraph g = BuildUndirected(pg.edges);
  EnumerateOptions opt;
  opt.max_subgraphs = 10;
  opt.min_density = 5.0;  // only the clique qualifies
  opt.min_relative_density = 0.0;
  auto r = EnumerateDenseSubgraphs(g, opt);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->size(), 1u);
  for (const auto& sub : *r) EXPECT_GE(sub.density, 5.0);
  EXPECT_LT(r->size(), 10u);  // background never reaches 5.0
}

TEST(EnumerateTest, RelativeDensityCutoff) {
  PlantedGraph pg = PlantDenseBlocks(400, 600, {{40, 1.0}}, 54);
  UndirectedGraph g = BuildUndirected(pg.edges);
  EnumerateOptions opt;
  opt.max_subgraphs = 20;
  opt.min_density = 0.0;
  opt.min_relative_density = 0.5;  // half the clique density: ~9.75
  auto r = EnumerateDenseSubgraphs(g, opt);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->size(), 1u);
  for (size_t i = 1; i < r->size(); ++i) {
    EXPECT_GE((*r)[i].density, 0.5 * (*r)[0].density);
  }
}

TEST(EnumerateTest, EdgelessGraphReturnsNothing) {
  GraphBuilder b;
  b.ReserveNodes(10);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  auto r = EnumerateDenseSubgraphs(g, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

}  // namespace
}  // namespace densest
