// Tests for the dynamic update-stream substrate: memory and binary-file
// streams, the insert-only replay generator, the sliding-window deleter,
// and the shared sticky-status error model.

#include "stream/update_stream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "gen/erdos_renyi.h"
#include "stream/memory_stream.h"

namespace densest {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("update_stream_test_" + name + "_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
      .string();
}

std::vector<EdgeUpdate> Drain(UpdateStream& stream) {
  stream.Reset();
  std::vector<EdgeUpdate> out;
  EdgeUpdate u;
  while (stream.Next(&u)) out.push_back(u);
  return out;
}

TEST(EdgeUpdateTest, PackedLayout) {
  EXPECT_EQ(sizeof(EdgeUpdate), 24u);
  EdgeUpdate ins = InsertUpdate(3, 5, 7);
  EXPECT_TRUE(ins.is_insert());
  EXPECT_EQ(ins.timestamp, 7u);
  EXPECT_FALSE(DeleteUpdate(3, 5, 8).is_insert());
}

TEST(MemoryUpdateStreamTest, DeliversAllAndRewinds) {
  std::vector<EdgeUpdate> updates = {InsertUpdate(0, 1, 1),
                                     InsertUpdate(1, 2, 2),
                                     DeleteUpdate(0, 1, 3)};
  MemoryUpdateStream stream(updates, 3);
  EXPECT_EQ(stream.num_nodes(), 3u);
  EXPECT_EQ(stream.SizeHint(), 3u);
  EXPECT_EQ(Drain(stream), updates);
  EXPECT_EQ(Drain(stream), updates);  // Reset replays identically
}

TEST(MemoryUpdateStreamTest, NextBatchMatchesNext) {
  std::vector<EdgeUpdate> updates;
  for (uint32_t i = 0; i < 1000; ++i) {
    updates.push_back(InsertUpdate(i % 50, (i + 1) % 50, i + 1));
  }
  MemoryUpdateStream stream(updates, 50);
  stream.Reset();
  std::vector<EdgeUpdate> batched;
  EdgeUpdate buf[64];
  size_t got;
  while ((got = stream.NextBatch(buf, 64)) > 0) {
    batched.insert(batched.end(), buf, buf + got);
  }
  EXPECT_EQ(batched, updates);
}

TEST(BinaryUpdateFileTest, RoundTrip) {
  std::vector<EdgeUpdate> updates = {InsertUpdate(0, 1, 1),
                                     DeleteUpdate(0, 1, 2),
                                     InsertUpdate(4, 2, 3)};
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(WriteBinaryUpdateFile(path, 5, updates).ok());
  auto stream = BinaryFileUpdateStream::Open(path);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ((*stream)->num_nodes(), 5u);
  EXPECT_EQ((*stream)->SizeHint(), 3u);
  EXPECT_EQ(Drain(**stream), updates);
  EXPECT_EQ(Drain(**stream), updates);
  EXPECT_TRUE((*stream)->status().ok());
  std::remove(path.c_str());
}

TEST(BinaryUpdateFileTest, RejectsWrongMagic) {
  const std::string path = TempPath("magic");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "not an update file at all, sorry";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto stream = BinaryFileUpdateStream::Open(path);
  EXPECT_FALSE(stream.ok());
  std::remove(path.c_str());
}

TEST(BinaryUpdateFileTest, TruncationSetsStickyStatus) {
  std::vector<EdgeUpdate> updates;
  for (uint32_t i = 0; i < 100; ++i) updates.push_back(InsertUpdate(i, i + 1, i));
  const std::string path = TempPath("trunc");
  ASSERT_TRUE(WriteBinaryUpdateFile(path, 101, updates).ok());
  // Chop off the last 30 records plus a partial one.
  std::filesystem::resize_file(
      path, sizeof(BinaryUpdateFileHeader) + 70 * sizeof(EdgeUpdate) + 5);
  auto stream = BinaryFileUpdateStream::Open(path);
  ASSERT_TRUE(stream.ok());
  std::vector<EdgeUpdate> got = Drain(**stream);
  EXPECT_LT(got.size(), updates.size());
  EXPECT_EQ((*stream)->status().code(), Status::Code::kIOError);
  // Sticky across Reset: the file stays bad.
  (*stream)->Reset();
  EXPECT_EQ((*stream)->status().code(), Status::Code::kIOError);
  std::remove(path.c_str());
}

TEST(InsertReplayTest, ReplaysEveryEdgeWithIncreasingTimestamps) {
  EdgeList edges = ErdosRenyiGnm(100, 400, 7);
  EdgeListStream base(edges);
  InsertReplayUpdateStream replay(base);
  EXPECT_EQ(replay.num_nodes(), edges.num_nodes());
  std::vector<EdgeUpdate> got = Drain(replay);
  ASSERT_EQ(got.size(), edges.num_edges());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].is_insert());
    EXPECT_EQ(got[i].timestamp, i + 1);
    EXPECT_EQ(got[i].u, edges.edges()[i].u);
    EXPECT_EQ(got[i].v, edges.edges()[i].v);
  }
  // Reset restarts both edges and timestamps.
  EXPECT_EQ(Drain(replay), got);
}

TEST(SlidingWindowTest, KeepsAtMostWindowEdgesLive) {
  EdgeList edges = ErdosRenyiGnm(60, 500, 11);
  EdgeListStream base(edges);
  const uint64_t kWindow = 64;
  SlidingWindowUpdateStream stream(base, kWindow);
  stream.Reset();
  std::multiset<std::pair<NodeId, NodeId>> live;
  std::vector<std::pair<NodeId, NodeId>> fifo;
  size_t fifo_head = 0;
  EdgeUpdate u;
  uint64_t last_ts = 0;
  while (stream.Next(&u)) {
    EXPECT_EQ(u.timestamp, last_ts + 1);
    last_ts = u.timestamp;
    if (u.is_insert()) {
      live.insert({u.u, u.v});
      fifo.emplace_back(u.u, u.v);
    } else {
      // Deletions evict exactly the oldest live insert.
      ASSERT_LT(fifo_head, fifo.size());
      EXPECT_EQ(std::make_pair(u.u, u.v), fifo[fifo_head]);
      live.erase(live.find({u.u, u.v}));
      ++fifo_head;
    }
    EXPECT_LE(live.size(), kWindow + 1);
  }
  // The stream ends with the final window intact.
  EXPECT_EQ(live.size(), std::min<uint64_t>(kWindow, edges.num_edges()));
  // Total updates: m inserts + (m - W) deletes.
  EXPECT_EQ(last_ts, edges.num_edges() + (edges.num_edges() - kWindow));
  EXPECT_EQ(stream.SizeHint(), last_ts);
}

TEST(SlidingWindowTest, SmallStreamNeverDeletes) {
  EdgeList edges = ErdosRenyiGnm(30, 40, 3);
  EdgeListStream base(edges);
  SlidingWindowUpdateStream stream(base, 1000);
  for (const EdgeUpdate& u : Drain(stream)) {
    EXPECT_TRUE(u.is_insert());
  }
}

/// The updates of a sliding window reduced to (edge, kind) pairs — what
/// the batched and per-update eviction paths must agree on.
struct WindowTrace {
  std::vector<std::pair<NodeId, NodeId>> inserts;
  std::vector<std::pair<NodeId, NodeId>> deletes;
  std::multiset<std::pair<NodeId, NodeId>> final_live;
};

WindowTrace TraceWindow(SlidingWindowUpdateStream& stream, uint64_t cap) {
  WindowTrace t;
  stream.Reset();
  EdgeUpdate u;
  uint64_t last_ts = 0;
  while (stream.Next(&u)) {
    EXPECT_EQ(u.timestamp, last_ts + 1);  // ticks stay gapless either way
    last_ts = u.timestamp;
    if (u.is_insert()) {
      t.inserts.emplace_back(u.u, u.v);
      t.final_live.insert({u.u, u.v});
    } else {
      t.deletes.emplace_back(u.u, u.v);
      auto it = t.final_live.find({u.u, u.v});
      EXPECT_NE(it, t.final_live.end()) << "deleted an edge that is not live";
      if (it != t.final_live.end()) t.final_live.erase(it);
    }
    EXPECT_LE(t.final_live.size(), cap);
  }
  return t;
}

TEST(SlidingWindowTest, BatchedEvictionMatchesPerUpdatePath) {
  EdgeList edges = ErdosRenyiGnm(60, 500, 11);
  const uint64_t kWindow = 64;
  EdgeListStream base(edges);
  SlidingWindowUpdateStream per_update(base, kWindow);
  WindowTrace reference = TraceWindow(per_update, kWindow + 1);

  for (uint64_t batch : {2u, 7u, 64u, 1000u}) {
    EdgeListStream b(edges);
    SlidingWindowUpdateStream stream(b, kWindow, batch);
    // Overfill bounded by the batch: live never exceeds window + batch - 1
    // right before an eviction burst (and window + batch at its start).
    WindowTrace t = TraceWindow(stream, kWindow + batch);
    EXPECT_EQ(t.inserts, reference.inserts) << "batch=" << batch;
    // Deletions are the same edges in the same FIFO order — batching only
    // changes where in the interleaving they appear.
    EXPECT_EQ(t.deletes, reference.deletes) << "batch=" << batch;
    EXPECT_EQ(t.final_live, reference.final_live) << "batch=" << batch;
    // The final flush drains down to exactly the window.
    EXPECT_EQ(t.final_live.size(),
              std::min<uint64_t>(kWindow, edges.num_edges()));
    EXPECT_EQ(stream.SizeHint(),
              static_cast<uint64_t>(t.inserts.size() + t.deletes.size()));
  }
}

TEST(SkipTest, MemoryAndBinarySkipMatchDraining) {
  std::vector<EdgeUpdate> updates;
  for (uint32_t i = 0; i < 500; ++i) {
    updates.push_back(InsertUpdate(i % 40, (i + 1) % 40, i + 1));
  }
  MemoryUpdateStream mem(updates, 40);
  mem.Reset();
  EXPECT_EQ(mem.Skip(123), 123u);
  EdgeUpdate u;
  ASSERT_TRUE(mem.Next(&u));
  EXPECT_EQ(u, updates[123]);
  // Skipping past the end reports how much was actually there.
  mem.Reset();
  EXPECT_EQ(mem.Skip(10'000), updates.size());
  EXPECT_FALSE(mem.Next(&u));

  const std::string path = TempPath("skip");
  ASSERT_TRUE(WriteBinaryUpdateFile(path, 40, updates).ok());
  auto stream = BinaryFileUpdateStream::Open(path);
  ASSERT_TRUE(stream.ok());
  (*stream)->Reset();
  EXPECT_EQ((*stream)->Skip(123), 123u);
  ASSERT_TRUE((*stream)->Next(&u));
  EXPECT_EQ(u, updates[123]);
  EXPECT_TRUE((*stream)->status().ok());
  std::remove(path.c_str());
}

TEST(SkipTest, SlidingWindowSkipKeepsGeneratorStateConsistent) {
  EdgeList edges = ErdosRenyiGnm(60, 500, 11);
  EdgeListStream a(edges);
  SlidingWindowUpdateStream full(a, 64);
  std::vector<EdgeUpdate> reference = Drain(full);

  // The drain-based default Skip must leave the FIFO mid-state identical
  // to having consumed the prefix one by one.
  EdgeListStream b(edges);
  SlidingWindowUpdateStream skipped(b, 64);
  skipped.Reset();
  const uint64_t kSkip = 200;
  EXPECT_EQ(skipped.Skip(kSkip), kSkip);
  EdgeUpdate u;
  size_t i = kSkip;
  while (skipped.Next(&u)) {
    ASSERT_LT(i, reference.size());
    EXPECT_EQ(u, reference[i]);
    ++i;
  }
  EXPECT_EQ(i, reference.size());
}

}  // namespace
}  // namespace densest
