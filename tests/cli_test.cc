// Tests for the CLI argument parser and command layer.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/args.h"
#include "cli/commands.h"
#include "gen/planted.h"
#include "io/edge_list_io.h"

namespace densest {
namespace {

StatusOr<Args> Parse(std::vector<std::string> tokens) {
  return Args::Parse(tokens);
}

TEST(ArgsTest, PositionalAndFlagsMixed) {
  // Note the grammar: a bare --flag consumes the next token as its value
  // unless that token is another flag, so trailing positionals must come
  // before bare flags (or use --flag=value).
  auto args = Parse({"graph.txt", "out.txt", "--eps=0.5", "--trace"});
  ASSERT_TRUE(args.ok());
  ASSERT_EQ(args->positional().size(), 2u);
  EXPECT_EQ(args->positional()[0], "graph.txt");
  EXPECT_EQ(args->positional()[1], "out.txt");
  EXPECT_TRUE(args->Has("eps"));
  EXPECT_TRUE(args->GetBool("trace", false).value());
}

TEST(ArgsTest, EqualsAndSpaceSeparatedValues) {
  auto args = Parse({"--eps=0.25", "--delta", "4", "--name", "x"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetDouble("eps", 0).value(), 0.25);
  EXPECT_EQ(args->GetDouble("delta", 0).value(), 4.0);
  EXPECT_EQ(args->GetString("name", ""), "x");
}

TEST(ArgsTest, BareFlagIsTrue) {
  auto args = Parse({"--trace"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->GetBool("trace", false).value());
  EXPECT_FALSE(args->GetBool("absent", false).value());
}

TEST(ArgsTest, BareFlagFollowedByFlagStaysTrue) {
  auto args = Parse({"--trace", "--eps=1"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->GetBool("trace", false).value());
}

TEST(ArgsTest, TypeErrors) {
  auto args = Parse({"--eps=abc", "--count=1.5x", "--flag=maybe"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args->GetDouble("eps", 0).ok());
  EXPECT_FALSE(args->GetInt("count", 0).ok());
  EXPECT_FALSE(args->GetBool("flag", false).ok());
}

TEST(ArgsTest, MalformedFlagRejected) {
  EXPECT_FALSE(Parse({"--=3"}).ok());
  EXPECT_FALSE(Parse({"--"}).ok());
}

TEST(ArgsTest, UnusedFlagsTracked) {
  auto args = Parse({"--known=1", "--typo=2"});
  ASSERT_TRUE(args.ok());
  (void)args->GetInt("known", 0);
  auto unused = args->UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

class CliCommandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/cli_graph.txt";
    // Sparse background plus a planted near-clique of 20 nodes.
    PlantedGraph pg = PlantDenseBlocks(500, 1000, {{20, 1.0}}, 3);
    ASSERT_TRUE(WriteEdgeListText(path_, pg.edges).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string Run(const std::string& command,
                  std::vector<std::string> tokens, Status* status) {
    tokens.insert(tokens.begin(), path_);
    auto args = Args::Parse(tokens);
    EXPECT_TRUE(args.ok());
    std::ostringstream out;
    *status = RunCliCommand(command, *args, out);
    return out.str();
  }

  std::string path_;
};

TEST_F(CliCommandTest, StatsPrintsCounts) {
  Status status;
  std::string out = Run("stats", {}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("|V|=500"), std::string::npos);
  EXPECT_NE(out.find("power-law"), std::string::npos);
}

TEST_F(CliCommandTest, UndirectedFindsPlantedClique) {
  Status status;
  std::string out = Run("undirected", {"--eps=0.1"}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("algorithm 1"), std::string::npos);
  // The 20-clique (plus any background edges that landed inside it).
  EXPECT_NE(out.find("rho=9."), std::string::npos);
  EXPECT_NE(out.find("|S|=20"), std::string::npos);
}

TEST_F(CliCommandTest, UndirectedMinSizeUsesAlgorithm2) {
  Status status;
  std::string out = Run("undirected", {"--min-size=50"}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("algorithm 2"), std::string::npos);
}

TEST_F(CliCommandTest, UndirectedSketchPath) {
  Status status;
  std::string out =
      Run("undirected", {"--sketch-buckets=512", "--eps=0.5"}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("sketched"), std::string::npos);
}

TEST_F(CliCommandTest, UndirectedTraceAndOutputFile) {
  std::string out_path = ::testing::TempDir() + "/cli_nodes.txt";
  Status status;
  std::string out = Run(
      "undirected", {"--trace", "--output=" + out_path, "--eps=0.1"},
      &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("pass  nodes"), std::string::npos);
  std::ifstream nodes(out_path);
  ASSERT_TRUE(nodes.good());
  int count = 0;
  std::string line;
  while (std::getline(nodes, line)) ++count;
  EXPECT_EQ(count, 20);  // the planted clique
  std::remove(out_path.c_str());
}

TEST_F(CliCommandTest, ExactMatchesKnownOptimum) {
  Status status;
  std::string out = Run("exact", {}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("rho*=9."), std::string::npos);
  EXPECT_NE(out.find("|S*|=20"), std::string::npos);
}

TEST_F(CliCommandTest, EnumerateListsSubgraphs) {
  Status status;
  std::string out =
      Run("enumerate", {"--count=2", "--min-density=1.5"}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("dense subgraphs"), std::string::npos);
  EXPECT_NE(out.find("#1"), std::string::npos);
}

TEST_F(CliCommandTest, DirectedCSearchRuns) {
  Status status;
  std::string out = Run("directed", {"--eps=1"}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("c-search"), std::string::npos);
}

TEST_F(CliCommandTest, DirectedSingleC) {
  Status status;
  std::string out = Run("directed", {"--c=1", "--trace"}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("algorithm 3"), std::string::npos);
  EXPECT_NE(out.find("peel"), std::string::npos);
}

TEST_F(CliCommandTest, MapReduceUndirectedWithSpillAndTrace) {
  Status status;
  std::string out =
      Run("mapreduce", {"--eps=1", "--spill-budget=4096", "--trace"}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("mapreduce algorithm 1"), std::string::npos);
  EXPECT_NE(out.find("input scans"), std::string::npos);
  EXPECT_NE(out.find("sim_sec"), std::string::npos);
}

TEST_F(CliCommandTest, MapReduceDirectedSingleC) {
  Status status;
  std::string out = Run("mapreduce", {"--directed", "--c=2"}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("mapreduce algorithm 3"), std::string::npos);
}

TEST(CliMapReduceTest, RunsOutOfCoreOnBinaryInput) {
  // generate --format=bin, then mapreduce the file: the driver streams it
  // from disk and must agree with the streaming algorithm's CLI path.
  std::string path = ::testing::TempDir() + "/cli_mr.bin";
  auto gen_args = Args::Parse({"er", path, "--nodes=200", "--edges=900",
                               "--seed=9", "--format=bin"});
  ASSERT_TRUE(gen_args.ok());
  std::ostringstream gen_out;
  ASSERT_TRUE(RunCliCommand("generate", *gen_args, gen_out).ok());

  auto mr_args = Args::Parse({path, "--eps=0.5", "--spill-budget=1024"});
  ASSERT_TRUE(mr_args.ok());
  std::ostringstream mr_out;
  Status status = RunCliCommand("mapreduce", *mr_args, mr_out);
  ASSERT_TRUE(status.ok()) << status.ToString();

  auto und_args = Args::Parse({path, "--eps=0.5"});
  std::ostringstream und_out;
  ASSERT_TRUE(RunCliCommand("undirected", *und_args, und_out).ok());
  // Both report the same Summarize(...) line; compare the rho=... token.
  auto rho_of = [](const std::string& s) {
    size_t at = s.find("rho=");
    return s.substr(at, s.find(' ', at) - at);
  };
  EXPECT_EQ(rho_of(mr_out.str()), rho_of(und_out.str()));
  std::remove(path.c_str());
}

TEST_F(CliCommandTest, DynamicInsertOnlyReplayWithCheckpoints) {
  Status status;
  std::string out = Run(
      "dynamic", {"--query-every=200", "--checkpoint-every=500"}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("insert-only"), std::string::npos);
  EXPECT_NE(out.find("certified rho* <"), std::string::npos);
  EXPECT_NE(out.find("band=OK"), std::string::npos);
  EXPECT_NE(out.find("p99="), std::string::npos);
}

TEST_F(CliCommandTest, DynamicSlidingWindowReplay) {
  Status status;
  std::string out = Run(
      "dynamic",
      {"--window=300", "--eps=0.5", "--fallback=rebuild", "--query-every=0"},
      &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("sliding window 300"), std::string::npos);
  EXPECT_NE(out.find("del"), std::string::npos);
}

TEST_F(CliCommandTest, DynamicNeverFallbackReportsUncertified) {
  // The planted clique's density exceeds the boot window, and
  // --fallback=never forbids re-centering: the report must say so instead
  // of printing an impossible certified bound.
  Status status;
  std::string out =
      Run("dynamic", {"--fallback=never", "--query-every=0"}, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.find("UNCERTIFIED"), std::string::npos);
  EXPECT_EQ(out.find("certified rho* <"), std::string::npos);
}

TEST_F(CliCommandTest, DynamicRejectsBadFlagValues) {
  Status status;
  Run("dynamic", {"--fallback=sometimes"}, &status);
  ASSERT_FALSE(status.ok());
  Run("dynamic", {"--checkpoints=psychic"}, &status);
  ASSERT_FALSE(status.ok());
  Run("dynamic", {"--window=-1"}, &status);
  ASSERT_FALSE(status.ok());
}

TEST(CliDynamicTest, RunsOnBinaryInput) {
  std::string path = ::testing::TempDir() + "/cli_dyn.bin";
  auto gen_args = Args::Parse({"er", path, "--nodes=200", "--edges=900",
                               "--seed=9", "--format=bin"});
  ASSERT_TRUE(gen_args.ok());
  std::ostringstream gen_out;
  ASSERT_TRUE(RunCliCommand("generate", *gen_args, gen_out).ok());

  auto dyn_args = Args::Parse({path, "--checkpoint-every=400"});
  ASSERT_TRUE(dyn_args.ok());
  std::ostringstream dyn_out;
  Status status = RunCliCommand("dynamic", *dyn_args, dyn_out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(dyn_out.str().find("band=OK"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CliCommandTest, UnknownFlagRejected) {
  Status status;
  Run("undirected", {"--epsilonn=1"}, &status);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("epsilonn"), std::string::npos);
}

TEST_F(CliCommandTest, UnknownCommandRejected) {
  Status status;
  Run("frobnicate", {}, &status);
  ASSERT_FALSE(status.ok());
}

TEST(CliGenerateTest, GenerateErRoundTrips) {
  std::string path = ::testing::TempDir() + "/cli_gen.txt";
  auto args = Args::Parse(
      {"er", path, "--nodes=100", "--edges=300", "--seed=7"});
  ASSERT_TRUE(args.ok());
  std::ostringstream out;
  Status status = RunCliCommand("generate", *args, out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.str().find("|E|=300"), std::string::npos);
  auto loaded = ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), 300u);
  std::remove(path.c_str());
}

TEST(CliGenerateTest, GenerateBinaryFormat) {
  std::string path = ::testing::TempDir() + "/cli_gen.bin";
  auto args = Args::Parse({"er", path, "--nodes=50", "--edges=100",
                           "--format=bin"});
  ASSERT_TRUE(args.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCliCommand("generate", *args, out).ok());

  // stats must be able to read it back.
  auto stat_args = Args::Parse({path});
  std::ostringstream stats_out;
  Status status = RunCliCommand("stats", *stat_args, stats_out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(stats_out.str().find("|E|=100"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliGenerateTest, TruncatedBinaryFileRejected) {
  // A .bin whose header promises more edges than its body holds must fail
  // loading with an IOError, not silently analyze a partial graph.
  std::string path = ::testing::TempDir() + "/cli_trunc.bin";
  auto args = Args::Parse({"er", path, "--nodes=2000", "--edges=30000",
                           "--format=bin"});
  ASSERT_TRUE(args.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCliCommand("generate", *args, out).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 5000 * 8);

  auto run_args = Args::Parse({path, "--eps=0.5"});
  std::ostringstream run_out;
  Status status = RunCliCommand("undirected", *run_args, run_out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIOError);
  std::remove(path.c_str());
}

TEST(CliGenerateTest, RejectsUnknownDatasetAndFormat) {
  std::ostringstream out;
  auto bad_name = Args::Parse({"nope", "/tmp/x.txt"});
  EXPECT_FALSE(RunCliCommand("generate", *bad_name, out).ok());
  auto bad_format = Args::Parse({"er", "/tmp/x.txt", "--format=xml"});
  EXPECT_FALSE(RunCliCommand("generate", *bad_format, out).ok());
}

TEST(CliUsageTest, MentionsAllCommands) {
  std::string usage = CliUsage();
  for (const char* cmd :
       {"stats", "undirected", "directed", "exact", "enumerate", "generate"}) {
    EXPECT_NE(usage.find(cmd), std::string::npos) << cmd;
  }
}

}  // namespace
}  // namespace densest
