// Unit and property tests for the graph generators.

#include <gtest/gtest.h>

#include <set>

#include "gen/chung_lu.h"
#include "gen/datasets.h"
#include "gen/erdos_renyi.h"
#include "gen/lower_bound.h"
#include "gen/planted.h"
#include "gen/preferential_attachment.h"
#include "gen/regular.h"
#include "gen/rmat.h"
#include "graph/graph_builder.h"
#include "graph/stats.h"
#include "graph/subgraph.h"

namespace densest {
namespace {

bool IsSimpleUndirected(const EdgeList& e) {
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& edge : e.edges()) {
    if (edge.u == edge.v) return false;
    NodeId a = std::min(edge.u, edge.v), b = std::max(edge.u, edge.v);
    if (!seen.insert({a, b}).second) return false;
  }
  return true;
}

TEST(ErdosRenyiTest, GnmExactEdgeCount) {
  EdgeList e = ErdosRenyiGnm(100, 500, 1);
  EXPECT_EQ(e.num_edges(), 500u);
  EXPECT_LE(e.num_nodes(), 100u);
  EXPECT_TRUE(IsSimpleUndirected(e));
}

TEST(ErdosRenyiTest, GnmDeterministic) {
  EdgeList a = ErdosRenyiGnm(50, 100, 42);
  EdgeList b = ErdosRenyiGnm(50, 100, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].u, b.edges()[i].u);
    EXPECT_EQ(a.edges()[i].v, b.edges()[i].v);
  }
}

TEST(ErdosRenyiTest, GnpEdgeCountNearExpectation) {
  const NodeId n = 500;
  const double p = 0.05;
  EdgeList e = ErdosRenyiGnp(n, p, 7);
  double expected = p * n * (n - 1) / 2.0;
  EXPECT_GT(static_cast<double>(e.num_edges()), expected * 0.85);
  EXPECT_LT(static_cast<double>(e.num_edges()), expected * 1.15);
  EXPECT_TRUE(IsSimpleUndirected(e));
}

TEST(ErdosRenyiTest, GnpExtremes) {
  EXPECT_EQ(ErdosRenyiGnp(50, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(ErdosRenyiGnp(10, 1.0, 1).num_edges(), 45u);
}

TEST(ErdosRenyiTest, DirectedGnmDistinctArcs) {
  EdgeList e = ErdosRenyiDirectedGnm(50, 300, 3);
  EXPECT_EQ(e.num_edges(), 300u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& edge : e.edges()) {
    EXPECT_NE(edge.u, edge.v);
    EXPECT_TRUE(seen.insert({edge.u, edge.v}).second);
  }
}

TEST(ChungLuTest, ProducesHeavyTailedDegrees) {
  ChungLuOptions opt;
  opt.num_nodes = 20000;
  opt.num_edges = 100000;
  opt.exponent = 2.2;
  EdgeList e = ChungLu(opt, 11);
  EXPECT_GT(e.num_edges(), 90000u);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
  GraphStats s = ComputeStats(g);
  // A heavy-tailed graph has a hub far above the mean degree.
  EXPECT_GT(s.max_degree, 20 * s.avg_degree);
}

TEST(ChungLuTest, DeterministicAndSimple) {
  ChungLuOptions opt;
  opt.num_nodes = 1000;
  opt.num_edges = 5000;
  EdgeList a = ChungLu(opt, 5);
  EdgeList b = ChungLu(opt, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(IsSimpleUndirected(a));
}

TEST(RmatTest, RespectsScaleAndBudget) {
  RmatOptions opt;
  opt.scale = 10;
  opt.num_edges = 5000;
  EdgeList e = Rmat(opt, 9);
  EXPECT_EQ(e.num_nodes(), 1024u);
  EXPECT_GT(e.num_edges(), 4000u);
  EXPECT_LE(e.num_edges(), 5000u);
}

TEST(RmatTest, SkewedQuadrantsProduceHubs) {
  RmatOptions opt;
  opt.scale = 12;
  opt.num_edges = 40000;
  opt.directed = true;
  EdgeList e = Rmat(opt, 21);
  DirectedGraph g = DirectedGraph::FromEdgeList(e);
  GraphStats s = ComputeStats(g);
  EXPECT_GT(s.max_degree, 10 * s.avg_degree);
}

TEST(BarabasiAlbertTest, EdgeCountAndConnectivityShape) {
  EdgeList e = BarabasiAlbert(2000, 3, 13);
  // Each node beyond the seed adds ~3 edges.
  EXPECT_GT(e.num_edges(), 1995u * 3 * 8 / 10);
  UndirectedGraph g =
      UndirectedGraph::FromEdgeList(e);
  GraphStats s = ComputeStats(g);
  EXPECT_GT(s.max_degree, 30u);  // rich-get-richer hubs
}

TEST(DeterministicWeightedPATest, PowerLawWeightedDegrees) {
  EdgeList e = DeterministicWeightedPA(200);
  // Complete graph: n(n-1)/2 edges.
  EXPECT_EQ(e.num_edges(), 200u * 199 / 2);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
  // Total weight grows by 1 per arrival: first arrival distributes 1.
  EXPECT_NEAR(g.total_weight(), 199.0, 1e-6);
  // Early nodes accumulate much more weighted degree than late ones.
  EXPECT_GT(g.WeightedDegree(0), 10 * g.WeightedDegree(150));
}

TEST(CirculantRegularTest, ExactDegrees) {
  for (NodeId d : {2u, 4u, 6u}) {
    EdgeList e = CirculantRegular(20, d);
    UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
    for (NodeId u = 0; u < 20; ++u) EXPECT_EQ(g.Degree(u), d);
    EXPECT_EQ(g.num_edges(), 20u * d / 2);
  }
}

TEST(CirculantRegularTest, OddDegreeViaMatching) {
  EdgeList e = CirculantRegular(10, 3);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
  for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(g.Degree(u), 3u);
}

TEST(CirculantRegularTest, DegreeOneIsPerfectMatching) {
  EdgeList e = CirculantRegular(8, 1);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
  EXPECT_EQ(g.num_edges(), 4u);
  for (NodeId u = 0; u < 8; ++u) EXPECT_EQ(g.Degree(u), 1u);
}

TEST(Lemma5Test, BlockStructureMatchesPaper) {
  const int k = 4;
  EdgeList e = Lemma5Construction(k);
  EXPECT_EQ(e.num_nodes(), Lemma5NumNodes(k));
  // Every block G_i has exactly 2^(2k-1) edges; k blocks total.
  EXPECT_EQ(e.num_edges(), static_cast<EdgeId>(k) << (2 * k - 1));
  UndirectedGraph g = UndirectedGraph::FromEdgeList(e);
  // Degrees are exactly the powers 2^(i-1).
  std::set<NodeId> degrees;
  for (NodeId u = 0; u < g.num_nodes(); ++u) degrees.insert(g.Degree(u));
  std::set<NodeId> expected;
  for (int i = 1; i <= k; ++i) expected.insert(1u << (i - 1));
  EXPECT_EQ(degrees, expected);
}

TEST(PlantedTest, BlocksAreDenseAndDisjoint) {
  std::vector<PlantedBlock> blocks = {{30, 1.0}, {20, 0.5}};
  PlantedGraph pg = PlantDenseBlocks(1000, 2000, blocks, 31);
  ASSERT_EQ(pg.blocks.size(), 2u);
  EXPECT_EQ(pg.blocks[0].size(), 30u);
  EXPECT_EQ(pg.blocks[1].size(), 20u);
  std::set<NodeId> all(pg.blocks[0].begin(), pg.blocks[0].end());
  for (NodeId u : pg.blocks[1]) {
    EXPECT_TRUE(all.insert(u).second) << "blocks overlap at " << u;
  }

  // The clique block should actually be a clique.
  GraphBuilder b;
  b.ReserveNodes(pg.edges.num_nodes());
  for (const Edge& edge : pg.edges.edges()) b.Add(edge.u, edge.v);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  NodeSet s = NodeSet::FromVector(g.num_nodes(), pg.blocks[0]);
  // At least the clique edges; background edges may add a little more.
  EXPECT_GE(InducedDensity(g, s), (30.0 - 1) / 2);
  EXPECT_LE(InducedDensity(g, s), (30.0 - 1) / 2 + 1.0);
}

TEST(PlantedDirectedTest, BlockArcsPresent) {
  PlantedDirectedGraph pg = PlantDirectedBlock(500, 1000, 40, 10, 1.0, 17);
  EXPECT_EQ(pg.s_nodes.size(), 40u);
  EXPECT_EQ(pg.t_nodes.size(), 10u);
  // With p = 1, all 400 block arcs exist on top of the background.
  EXPECT_GE(pg.arcs.num_edges(), 1000u + 400u);
}

TEST(DatasetsTest, Table1HasFourEntries) {
  auto infos = Table1Datasets();
  ASSERT_EQ(infos.size(), 4u);
  EXPECT_EQ(infos[0].paper_name, "flickr");
  EXPECT_FALSE(infos[0].directed);
  EXPECT_TRUE(infos[2].directed);
}

TEST(DatasetsTest, Table2HasSevenRows) {
  auto specs = Table2Specs();
  ASSERT_EQ(specs.size(), 7u);
  for (const auto& s : specs) {
    EXPECT_GT(s.nodes, 0u);
    EXPECT_GT(s.edges, 0u);
    EXPECT_GT(s.paper_rho, 0.0);
  }
}

TEST(DatasetsTest, SnapStandInMatchesRowScale) {
  auto specs = Table2Specs();
  const auto& row = specs[3];  // ca-GrQc: 5242 nodes
  EdgeList e = MakeSnapStandIn(row, 1);
  EXPECT_EQ(e.num_nodes(), row.nodes);
  double ratio = static_cast<double>(e.num_edges()) /
                 static_cast<double>(row.edges);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.3);
  EXPECT_TRUE(IsSimpleUndirected(e));
}

}  // namespace
}  // namespace densest
