// Tests for Algorithm 3 (directed densest subgraph) and the c-search.

#include "core/algorithm3.h"

#include <gtest/gtest.h>

#include <cmath>

#include "flow/brute_force.h"
#include "gen/erdos_renyi.h"
#include "gen/planted.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"

namespace densest {
namespace {

DirectedGraph BuildDirected(const EdgeList& e) {
  GraphBuilder b;
  b.ReserveNodes(e.num_nodes());
  for (const Edge& edge : e.edges()) b.Add(edge.u, edge.v, edge.w);
  return std::move(b.BuildDirected()).value();
}

DirectedGraph TwoNodeCycle() {
  GraphBuilder b;
  b.Add(0, 1);
  b.Add(1, 0);
  return std::move(b.BuildDirected()).value();
}

TEST(Algorithm3Test, TwoNodeCycleDensity) {
  // S = T = {0,1}: E(S,T) = 2, sqrt(4) = 2 -> rho = 1 (the optimum).
  auto r = RunAlgorithm3(TwoNodeCycle(), {.c = 1.0, .epsilon = 0.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->density, 1.0);
  EXPECT_EQ(r->s_nodes.size(), 2u);
  EXPECT_EQ(r->t_nodes.size(), 2u);
}

TEST(Algorithm3Test, FindsPlantedBipartiteBlock) {
  PlantedDirectedGraph pg = PlantDirectedBlock(500, 1500, 40, 10, 1.0, 23);
  DirectedGraph g = BuildDirected(pg.arcs);
  // Planted block: rho = 400 / sqrt(400) = 20; c* = 4.
  Algorithm3Options opt;
  opt.c = 4.0;
  opt.epsilon = 0.25;
  auto r = RunAlgorithm3(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->density * (2.0 + 2.0 * opt.epsilon), 20.0 * (1 - 1e-9));
}

TEST(Algorithm3Test, DensityMatchesReturnedSets) {
  DirectedGraph g = BuildDirected(ErdosRenyiDirectedGnm(200, 2000, 5));
  Algorithm3Options opt;
  opt.c = 1.0;
  opt.epsilon = 0.5;
  auto r = RunAlgorithm3(g, opt);
  ASSERT_TRUE(r.ok());
  NodeSet s = NodeSet::FromVector(g.num_nodes(), r->s_nodes);
  NodeSet t = NodeSet::FromVector(g.num_nodes(), r->t_nodes);
  EXPECT_NEAR(InducedDensityDirected(g, s, t), r->density, 1e-9);
}

TEST(Algorithm3Test, TraceShowsAlternatingPeels) {
  DirectedGraph g = BuildDirected(ErdosRenyiDirectedGnm(300, 3000, 7));
  Algorithm3Options opt;
  opt.c = 1.0;
  opt.epsilon = 1.0;
  auto r = RunAlgorithm3(g, opt);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->trace.size(), r->passes);
  bool saw_s = false, saw_t = false;
  for (const auto& snap : r->trace) {
    EXPECT_GE(snap.removed, 1u);
    saw_s |= snap.removed_from_s;
    saw_t |= !snap.removed_from_s;
  }
  // With c = 1 and |S| = |T| initially, both sides get peeled eventually.
  EXPECT_TRUE(saw_s);
  EXPECT_TRUE(saw_t);
}

TEST(Algorithm3Test, PassBoundHolds) {
  DirectedGraph g = BuildDirected(ErdosRenyiDirectedGnm(1000, 8000, 29));
  for (double eps : {0.5, 1.0, 2.0}) {
    Algorithm3Options opt;
    opt.c = 1.0;
    opt.epsilon = eps;
    opt.record_trace = false;
    auto r = RunAlgorithm3(g, opt);
    ASSERT_TRUE(r.ok());
    // Lemma 13: O(log_{1+eps} n) passes; the constant covers both sets.
    double bound =
        2.0 * std::log(static_cast<double>(g.num_nodes())) / std::log1p(eps);
    EXPECT_LE(static_cast<double>(r->passes), bound + 2.0) << "eps=" << eps;
  }
}

TEST(Algorithm3Test, MaxDegreeRuleAlsoSatisfiesGuarantee) {
  PlantedDirectedGraph pg = PlantDirectedBlock(300, 900, 30, 10, 1.0, 37);
  DirectedGraph g = BuildDirected(pg.arcs);
  Algorithm3Options opt;
  opt.c = 3.0;
  opt.epsilon = 0.5;
  opt.rule = DirectedRemovalRule::kMaxDegree;
  auto r = RunAlgorithm3(g, opt);
  ASSERT_TRUE(r.ok());
  // Planted rho = 300 / sqrt(300) = sqrt(300).
  EXPECT_GE(r->density * (2.0 + 2.0 * opt.epsilon),
            std::sqrt(300.0) * (1 - 1e-9));
}

TEST(Algorithm3Test, InvalidArguments) {
  DirectedGraph g = TwoNodeCycle();
  EXPECT_FALSE(RunAlgorithm3(g, {.c = 0.0}).ok());
  EXPECT_FALSE(RunAlgorithm3(g, {.c = -1.0}).ok());
  EXPECT_FALSE(RunAlgorithm3(g, {.c = 1.0, .epsilon = -0.5}).ok());
  DirectedGraph empty;
  EXPECT_FALSE(RunAlgorithm3(empty, {.c = 1.0}).ok());
}

TEST(CSearchTest, SweepCoversRatioGridAndFindsBest) {
  PlantedDirectedGraph pg = PlantDirectedBlock(200, 600, 32, 8, 1.0, 41);
  DirectedGraph g = BuildDirected(pg.arcs);
  CSearchOptions opt;
  opt.delta = 2.0;
  opt.epsilon = 0.5;
  auto r = RunCSearch(g, opt);
  ASSERT_TRUE(r.ok());
  // Grid size: 2 * ceil(log2 200) + 1 = 17 values of c.
  EXPECT_EQ(r->sweep.size(), 17u);
  // The planted block has rho = 256/16 = 16, c* = 4 (on the grid).
  EXPECT_GE(r->best.density * (2.0 + 2.0 * opt.epsilon), 16.0 * (1 - 1e-9));
  // best is the max of the sweep.
  for (const auto& run : r->sweep) {
    EXPECT_LE(run.density, r->best.density + 1e-12);
  }
}

TEST(CSearchTest, RejectsBadDelta) {
  DirectedGraph g = TwoNodeCycle();
  CSearchOptions opt;
  opt.delta = 1.0;
  EXPECT_FALSE(RunCSearch(g, opt).ok());
}

// ---- Guarantee sweep against the directed brute-force oracle. ----

class Algorithm3GuaranteeTest : public ::testing::TestWithParam<int> {};

TEST_P(Algorithm3GuaranteeTest, CSearchWithinFactor) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  DirectedGraph g = BuildDirected(ErdosRenyiDirectedGnm(9, 30, seed));
  auto brute = BruteForceDensestDirected(g);
  ASSERT_TRUE(brute.ok());

  CSearchOptions opt;
  opt.delta = 1.5;  // fine grid keeps the delta penalty small
  opt.epsilon = 0.1;
  auto r = RunCSearch(g, opt);
  ASSERT_TRUE(r.ok());
  // (2+2eps) * delta overall factor (Lemma 12 plus the grid rounding).
  double factor = (2.0 + 2.0 * opt.epsilon) * opt.delta;
  EXPECT_GE(r->best.density * factor, brute->density * (1 - 1e-9))
      << "seed=" << seed;
  EXPECT_LE(r->best.density, brute->density + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(DirectedSweep, Algorithm3GuaranteeTest,
                         ::testing::Range(300, 315));

}  // namespace
}  // namespace densest
