// RetryBackoff schedule tests: a zero jitter seed must reproduce the
// legacy pure-exponential DelayMs schedule bit for bit (the contract the
// fault-injection suites lean on), and nonzero seeds must give bounded,
// deterministic, seed-dependent decorrelated jitter.

#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace densest {
namespace {

std::vector<double> Draw(const RetryPolicy& policy, int n) {
  RetryBackoff backoff(policy);
  std::vector<double> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(backoff.NextDelayMs());
  return out;
}

TEST(RetryBackoffTest, ZeroSeedReproducesLegacyExponentialScheduleExactly) {
  RetryPolicy policy;  // defaults: base 0.1, max 50, jitter_seed 0
  RetryBackoff backoff(policy);
  for (int retry = 0; retry < 16; ++retry) {
    EXPECT_EQ(backoff.NextDelayMs(), policy.DelayMs(retry)) << retry;
  }
}

TEST(RetryBackoffTest, LegacyScheduleDoublesAndSaturates) {
  RetryPolicy policy;
  policy.base_delay_ms = 1.0;
  policy.max_delay_ms = 8.0;
  EXPECT_DOUBLE_EQ(policy.DelayMs(0), 1.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(1), 2.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(2), 4.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(3), 8.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(10), 8.0);  // capped forever after
}

TEST(RetryBackoffTest, JitteredDelaysStayWithinTheDecorrelatedEnvelope) {
  RetryPolicy policy;
  policy.base_delay_ms = 1.0;
  policy.max_delay_ms = 40.0;
  policy.jitter_seed = 0xfeedULL;
  RetryBackoff backoff(policy);
  double prev = policy.base_delay_ms;
  for (int i = 0; i < 64; ++i) {
    const double d = backoff.NextDelayMs();
    EXPECT_GE(d, policy.base_delay_ms) << i;
    EXPECT_LE(d, policy.max_delay_ms) << i;
    // Decorrelated jitter: each draw is uniform in [base, 3 * prev].
    EXPECT_LE(d, std::min(policy.max_delay_ms, prev * 3.0) + 1e-12) << i;
    prev = d;
  }
}

TEST(RetryBackoffTest, JitterIsDeterministicPerSeedAndDiffersAcrossSeeds) {
  RetryPolicy policy;
  policy.base_delay_ms = 0.5;
  policy.max_delay_ms = 30.0;

  policy.jitter_seed = 41;
  const std::vector<double> a1 = Draw(policy, 12);
  const std::vector<double> a2 = Draw(policy, 12);
  EXPECT_EQ(a1, a2) << "same seed must give the same schedule";

  policy.jitter_seed = 42;
  const std::vector<double> b = Draw(policy, 12);
  EXPECT_NE(a1, b) << "distinct seeds should decorrelate the schedules";
}

}  // namespace
}  // namespace densest
