// Tests for the Lemma 7 disjointness construction and the separation it
// proves: any constant-factor approximation distinguishes YES from NO.

#include "gen/disjointness.h"

#include <gtest/gtest.h>

#include "core/algorithm1.h"
#include "flow/goldberg.h"
#include "graph/graph_builder.h"

namespace densest {
namespace {

UndirectedGraph BuildMultigraph(const EdgeList& e) {
  // Parallel edges merge into weight-2 edges: the lemma's edge accounting.
  GraphBuilder b;
  b.ReserveNodes(e.num_nodes());
  for (const Edge& edge : e.edges()) b.Add(edge.u, edge.v, edge.w);
  return std::move(b.BuildUndirected()).value();
}

TEST(DisjointnessTest, NoInstanceDensity) {
  DisjointnessInstance inst =
      MakeDisjointnessInstance(50, 8, /*yes=*/false, /*fill=*/1.0, 1);
  UndirectedGraph g = BuildMultigraph(inst.edges);
  auto exact = ExactDensestSubgraph(g);
  ASSERT_TRUE(exact.ok());
  // Every gadget is a star: rho = (q-1)/q = 0.875.
  EXPECT_NEAR(exact->density, inst.expected_density, 1e-9);
  EXPECT_NEAR(exact->density, 0.875, 1e-9);
}

TEST(DisjointnessTest, YesInstanceDensity) {
  DisjointnessInstance inst =
      MakeDisjointnessInstance(50, 8, /*yes=*/true, /*fill=*/1.0, 2);
  UndirectedGraph g = BuildMultigraph(inst.edges);
  auto exact = ExactDensestSubgraph(g);
  ASSERT_TRUE(exact.ok());
  // The special gadget is a clique with doubled edges: rho = q-1 = 7.
  EXPECT_NEAR(exact->density, inst.expected_density, 1e-9);
  EXPECT_NEAR(exact->density, 7.0, 1e-9);
  EXPECT_NE(inst.special_gadget, kInvalidNode);
}

TEST(DisjointnessTest, GadgetsAreDisjoint) {
  DisjointnessInstance inst = MakeDisjointnessInstance(20, 5, true, 1.0, 3);
  for (const Edge& e : inst.edges.edges()) {
    EXPECT_EQ(e.u / 5, e.v / 5) << "edge crosses gadget boundary";
  }
}

TEST(DisjointnessTest, ApproximationDistinguishesYesFromNo) {
  // The lemma's punchline: the YES/NO density gap is a factor q, so any
  // algorithm with a better-than-q approximation separates them. Our
  // (2+2eps) Algorithm 1 separates easily at q = 8.
  const int q = 8;
  Algorithm1Options opt;
  opt.epsilon = 0.5;  // worst-case factor 3 < q
  opt.record_trace = false;

  DisjointnessInstance yes = MakeDisjointnessInstance(100, q, true, 1.0, 4);
  DisjointnessInstance no = MakeDisjointnessInstance(100, q, false, 1.0, 5);
  auto yes_run = RunAlgorithm1(BuildMultigraph(yes.edges), opt);
  auto no_run = RunAlgorithm1(BuildMultigraph(no.edges), opt);
  ASSERT_TRUE(yes_run.ok());
  ASSERT_TRUE(no_run.ok());

  // Decision threshold from the promise gap.
  double threshold = (static_cast<double>(q) - 1.0) /
                     (2.0 + 2.0 * opt.epsilon);
  EXPECT_GE(yes_run->density, threshold);
  EXPECT_LT(no_run->density, threshold);
}

TEST(DisjointnessTest, SparseFillStillSeparates) {
  const int q = 10;
  DisjointnessInstance yes = MakeDisjointnessInstance(200, q, true, 0.3, 6);
  DisjointnessInstance no = MakeDisjointnessInstance(200, q, false, 0.3, 7);
  auto yes_exact = ExactDensestSubgraph(BuildMultigraph(yes.edges));
  auto no_exact = ExactDensestSubgraph(BuildMultigraph(no.edges));
  ASSERT_TRUE(yes_exact.ok());
  ASSERT_TRUE(no_exact.ok());
  EXPECT_NEAR(yes_exact->density, 9.0, 1e-9);
  EXPECT_LE(no_exact->density, 1.0);
}

}  // namespace
}  // namespace densest
