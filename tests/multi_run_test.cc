// Equivalence tests for the fused MultiRunEngine: a fused c-sweep or
// epsilon-sweep must produce results bit-identical to the same
// configurations run sequentially — densities, pass counts, survivor sets
// and traces — across 1..8 fan-out threads and every stream type, while
// physically scanning the stream only max-over-runs(passes) times.

#include "core/multi_run.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "core/peel_runs.h"
#include "gen/erdos_renyi.h"
#include "graph/graph_builder.h"
#include "stream/file_stream.h"
#include "stream/generated_stream.h"
#include "stream/memory_stream.h"
#include "stream/pass_stats.h"

namespace densest {
namespace {

void ExpectSameDirected(const DirectedDensestResult& seq,
                        const DirectedDensestResult& fused,
                        const std::string& label) {
  EXPECT_EQ(seq.c, fused.c) << label;
  EXPECT_EQ(seq.density, fused.density) << label;  // bit-identical, not NEAR
  EXPECT_EQ(seq.passes, fused.passes) << label;
  EXPECT_EQ(seq.s_nodes, fused.s_nodes) << label;
  EXPECT_EQ(seq.t_nodes, fused.t_nodes) << label;
  ASSERT_EQ(seq.trace.size(), fused.trace.size()) << label;
  for (size_t i = 0; i < seq.trace.size(); ++i) {
    EXPECT_EQ(seq.trace[i].weight, fused.trace[i].weight) << label;
    EXPECT_EQ(seq.trace[i].density, fused.trace[i].density) << label;
    EXPECT_EQ(seq.trace[i].removed, fused.trace[i].removed) << label;
    EXPECT_EQ(seq.trace[i].removed_from_s, fused.trace[i].removed_from_s)
        << label;
  }
}

void ExpectSameUndirected(const UndirectedDensestResult& seq,
                          const UndirectedDensestResult& fused,
                          const std::string& label) {
  EXPECT_EQ(seq.density, fused.density) << label;
  EXPECT_EQ(seq.passes, fused.passes) << label;
  EXPECT_EQ(seq.io_passes, fused.io_passes) << label;
  EXPECT_EQ(seq.nodes, fused.nodes) << label;
  ASSERT_EQ(seq.trace.size(), fused.trace.size()) << label;
  for (size_t i = 0; i < seq.trace.size(); ++i) {
    EXPECT_EQ(seq.trace[i].weight, fused.trace[i].weight) << label;
    EXPECT_EQ(seq.trace[i].density, fused.trace[i].density) << label;
    EXPECT_EQ(seq.trace[i].removed, fused.trace[i].removed) << label;
  }
}

std::vector<Algorithm3Options> DirectedGrid() {
  std::vector<Algorithm3Options> grid;
  for (double c : {0.125, 0.5, 1.0, 2.0, 8.0}) {
    Algorithm3Options o;
    o.c = c;
    o.epsilon = 0.25;
    grid.push_back(o);
  }
  // A couple of off-grid configurations: different eps and the max-degree
  // removal rule, to prove fusion is per-run, not per-sweep.
  Algorithm3Options hot;
  hot.c = 1.0;
  hot.epsilon = 1.0;
  grid.push_back(hot);
  Algorithm3Options naive;
  naive.c = 2.0;
  naive.epsilon = 0.25;
  naive.rule = DirectedRemovalRule::kMaxDegree;
  grid.push_back(naive);
  return grid;
}

/// Fused results over `stream` must equal sequential RunAlgorithm3 per
/// options, for every fan-out thread count and both fan-out shapes
/// (run-major, and work-major where (run, shard) pairs are the tasks).
void CheckDirectedEquivalence(EdgeStream& stream, const std::string& label) {
  const std::vector<Algorithm3Options> grid = DirectedGrid();

  std::vector<DirectedDensestResult> seq;
  for (const Algorithm3Options& o : grid) {
    auto r = RunAlgorithm3(stream, o);
    ASSERT_TRUE(r.ok()) << label;
    seq.push_back(std::move(*r));
  }

  for (MultiRunFanOut fan_out :
       {MultiRunFanOut::kAuto, MultiRunFanOut::kRunMajor,
        MultiRunFanOut::kWorkMajor}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      MultiRunEngine engine(
          MultiRunOptions{.num_threads = threads, .fan_out = fan_out});
      auto fused = engine.RunDirectedRuns(stream, grid);
      ASSERT_TRUE(fused.ok()) << label;
      ASSERT_EQ(fused->size(), grid.size()) << label;
      uint64_t max_passes = 0;
      for (size_t i = 0; i < grid.size(); ++i) {
        ExpectSameDirected(
            seq[i], (*fused)[i],
            label + " fan_out=" + std::to_string(static_cast<int>(fan_out)) +
                " threads=" + std::to_string(threads) +
                " run=" + std::to_string(i));
        max_passes = std::max(max_passes, (*fused)[i].passes);
      }
      // The fused engine scans once per pass round: exactly the longest
      // run.
      EXPECT_EQ(engine.last_physical_passes(), max_passes) << label;
    }
  }
}

TEST(MultiRunDirectedTest, EdgeListStream) {
  EdgeList el = ErdosRenyiDirectedGnm(300, 4000, 11);
  EdgeListStream stream(el);
  CheckDirectedEquivalence(stream, "edge-list");
}

TEST(MultiRunDirectedTest, WeightedEdgeListStream) {
  // Non-unit weights force the per-run slot accumulators; results must
  // still be bit-identical to sequential PassEngine runs.
  EdgeList el = ErdosRenyiDirectedGnm(250, 5000, 13);
  Rng rng(17);
  for (Edge& e : el.mutable_edges()) e.w = 0.25 + rng.UniformDouble();
  EdgeListStream stream(el);
  CheckDirectedEquivalence(stream, "weighted-edge-list");
}

TEST(MultiRunDirectedTest, DirectedGraphStream) {
  GraphBuilder b;
  EdgeList el = ErdosRenyiDirectedGnm(300, 4000, 19);
  for (const Edge& e : el.edges()) b.Add(e.u, e.v);
  DirectedGraph g = std::move(b.BuildDirected()).value();
  DirectedGraphStream stream(g);
  CheckDirectedEquivalence(stream, "csr");
}

class MultiRunFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(MultiRunFileTest, BinaryFileStream) {
  path_ = ::testing::TempDir() + "/multi_run_directed.bin";
  EdgeList el = ErdosRenyiDirectedGnm(200, 3000, 23);
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, /*weighted=*/false).ok());
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  CheckDirectedEquivalence(**stream, "file");
}

TEST_F(MultiRunFileTest, WeightedBinaryFileStream) {
  path_ = ::testing::TempDir() + "/multi_run_weighted.bin";
  EdgeList el = ErdosRenyiDirectedGnm(150, 2500, 29);
  Rng rng(31);
  for (Edge& e : el.mutable_edges()) e.w = 0.5 + rng.UniformDouble();
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, /*weighted=*/true).ok());
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  CheckDirectedEquivalence(**stream, "weighted-file");
}

// ---------------------------------------------------------------------------
// Undirected sweeps (Algorithms 1 and 2).

std::vector<double> EpsilonGrid() { return {0.0, 0.25, 0.5, 1.0, 2.0}; }

void CheckEpsilonSweepEquivalence(EdgeStream& stream,
                                  const std::string& label,
                                  EdgeId compact_below_edges = 0) {
  Algorithm1Options base;
  base.compact_below_edges = compact_below_edges;
  const std::vector<double> epsilons = EpsilonGrid();

  std::vector<UndirectedDensestResult> seq;
  for (double eps : epsilons) {
    Algorithm1Options o = base;
    o.epsilon = eps;
    auto r = RunAlgorithm1(stream, o);
    ASSERT_TRUE(r.ok()) << label;
    seq.push_back(std::move(*r));
  }

  for (MultiRunFanOut fan_out :
       {MultiRunFanOut::kAuto, MultiRunFanOut::kRunMajor,
        MultiRunFanOut::kWorkMajor}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      MultiRunEngine engine(
          MultiRunOptions{.num_threads = threads, .fan_out = fan_out});
      auto fused = RunAlgorithm1EpsilonSweep(stream, base, epsilons, &engine);
      ASSERT_TRUE(fused.ok()) << label;
      ASSERT_EQ(fused->size(), epsilons.size()) << label;
      uint64_t max_io = 0;
      for (size_t i = 0; i < epsilons.size(); ++i) {
        ExpectSameUndirected(
            seq[i], (*fused)[i],
            label + " fan_out=" + std::to_string(static_cast<int>(fan_out)) +
                " threads=" + std::to_string(threads) +
                " eps=" + std::to_string(epsilons[i]));
        max_io = std::max(max_io, (*fused)[i].io_passes);
      }
      EXPECT_EQ(engine.last_physical_passes(), max_io) << label;
    }
  }
}

TEST(MultiRunEpsilonSweepTest, EdgeListStream) {
  EdgeList el = ErdosRenyiGnm(300, 4000, 37);
  EdgeListStream stream(el);
  CheckEpsilonSweepEquivalence(stream, "edge-list");
}

TEST(MultiRunEpsilonSweepTest, WeightedEdgeListStream) {
  EdgeList el = ErdosRenyiGnm(250, 5000, 41);
  Rng rng(43);
  for (Edge& e : el.mutable_edges()) e.w = 0.25 + rng.UniformDouble();
  EdgeListStream stream(el);
  CheckEpsilonSweepEquivalence(stream, "weighted-edge-list");
}

TEST(MultiRunEpsilonSweepTest, UndirectedGraphStream) {
  GraphBuilder b;
  EdgeList el = ErdosRenyiGnm(300, 4000, 47);
  for (const Edge& e : el.edges()) b.Add(e.u, e.v);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  UndirectedGraphStream stream(g);
  CheckEpsilonSweepEquivalence(stream, "csr");
}

TEST(MultiRunEpsilonSweepTest, GnpEdgeStream) {
  GnpEdgeStream stream(400, 0.05, 53);
  CheckEpsilonSweepEquivalence(stream, "gnp");
}

TEST(MultiRunEpsilonSweepTest, CirculantEdgeStream) {
  CirculantEdgeStream stream(301, 8);
  CheckEpsilonSweepEquivalence(stream, "circulant");
}

TEST(MultiRunEpsilonSweepTest, WeightedCsrStreamMatchesSequential) {
  // Weighted + CSR view: RunAlgorithm1EpsilonSweep must fall back to
  // run-by-run execution (like RunCSearch) so results never depend on
  // fusing, bit for bit.
  GraphBuilder b;
  EdgeList el = ErdosRenyiGnm(200, 2500, 89);
  Rng rng(97);
  for (const Edge& e : el.edges()) b.Add(e.u, e.v, 0.5 + rng.UniformDouble());
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  UndirectedGraphStream stream(g);

  Algorithm1Options base;
  const std::vector<double> epsilons = EpsilonGrid();
  std::vector<UndirectedDensestResult> seq;
  for (double eps : epsilons) {
    Algorithm1Options o = base;
    o.epsilon = eps;
    auto r = RunAlgorithm1(stream, o);
    ASSERT_TRUE(r.ok());
    seq.push_back(std::move(*r));
  }
  auto sweep = RunAlgorithm1EpsilonSweep(stream, base, epsilons);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    ExpectSameUndirected(seq[i], (*sweep)[i],
                         "weighted-csr eps=" + std::to_string(epsilons[i]));
  }
}

TEST(MultiRunEpsilonSweepTest, CompactionLeavesTheSharedScan) {
  // With §6.3 compaction armed, fused runs must buffer at the same pass as
  // their sequential twins and produce the same io_passes — and the fused
  // scan must stop as soon as every run went in-memory.
  EdgeList el = ErdosRenyiGnm(300, 6000, 59);
  EdgeListStream stream(el);
  CheckEpsilonSweepEquivalence(stream, "compacting", /*compact_below_edges=*/
                               2000);
}

TEST(MultiRunAlgorithm2Test, FusedMatchesSequential) {
  EdgeList el = ErdosRenyiGnm(300, 4000, 61);
  EdgeListStream stream(el);

  std::vector<Algorithm2Options> grid;
  for (NodeId k : {1u, 50u, 150u}) {
    for (double eps : {0.5, 1.0}) {
      Algorithm2Options o;
      o.min_size = k;
      o.epsilon = eps;
      grid.push_back(o);
    }
  }

  std::vector<UndirectedDensestResult> seq;
  for (const Algorithm2Options& o : grid) {
    auto r = RunAlgorithm2(stream, o);
    ASSERT_TRUE(r.ok());
    seq.push_back(std::move(*r));
  }

  for (MultiRunFanOut fan_out :
       {MultiRunFanOut::kAuto, MultiRunFanOut::kWorkMajor}) {
    for (size_t threads : {1u, 4u}) {
      MultiRunEngine engine(
          MultiRunOptions{.num_threads = threads, .fan_out = fan_out});
      auto fused = engine.RunUndirectedRuns(stream, grid);
      ASSERT_TRUE(fused.ok());
      ASSERT_EQ(fused->size(), grid.size());
      for (size_t i = 0; i < grid.size(); ++i) {
        ExpectSameUndirected(seq[i], (*fused)[i],
                             "alg2 threads=" + std::to_string(threads) +
                                 " run=" + std::to_string(i));
      }
    }
  }
}

TEST(MultiRunDriveTest, TruncatedFileAbortsTheSweep) {
  // The fused engine must surface a stream IO error instead of peeling on
  // statistics of a silently truncated pass.
  const std::string path = ::testing::TempDir() + "/multi_run_trunc.bin";
  EdgeList el = ErdosRenyiGnm(400, 8000, 83);
  ASSERT_TRUE(WriteBinaryEdgeFile(path, el, /*weighted=*/false).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 3000 * 8);
  auto stream = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());

  MultiRunEngine engine(MultiRunOptions{.num_threads = 2});
  auto fused = RunAlgorithm1EpsilonSweep(**stream, {}, EpsilonGrid(), &engine);
  ASSERT_FALSE(fused.ok());
  EXPECT_EQ(fused.status().code(), Status::Code::kIOError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fused RunCSearch (the converted §6.4 entry point).

TEST(MultiRunCSearchTest, FusedMatchesSequentialAndSavesScans) {
  EdgeList el = ErdosRenyiDirectedGnm(200, 3000, 67);

  CSearchOptions opt;
  opt.delta = 2.0;
  opt.epsilon = 0.5;
  opt.record_trace = false;

  EdgeListStream seq_inner(el);
  PassStats seq_stats;
  CountingEdgeStream seq_stream(seq_inner, seq_stats);
  opt.fused = false;
  auto seq = RunCSearch(seq_stream, opt);
  ASSERT_TRUE(seq.ok());

  EdgeListStream fused_inner(el);
  PassStats fused_stats;
  CountingEdgeStream fused_stream(fused_inner, fused_stats);
  opt.fused = true;
  auto fused = RunCSearch(fused_stream, opt);
  ASSERT_TRUE(fused.ok());

  ASSERT_EQ(seq->sweep.size(), fused->sweep.size());
  for (size_t i = 0; i < seq->sweep.size(); ++i) {
    ExpectSameDirected(seq->sweep[i], fused->sweep[i],
                       "csearch run=" + std::to_string(i));
  }
  ExpectSameDirected(seq->best, fused->best, "csearch best");

  // Scan accounting: the wrapper counts one Reset per physical scan.
  EXPECT_EQ(seq->physical_scans, seq_stats.passes);
  EXPECT_EQ(fused->physical_scans, fused_stats.passes);
  EXPECT_LT(fused->physical_scans, seq->physical_scans);
}

TEST(MultiRunCSearchTest, WeightedCsrStreamIdenticalAcrossFusedFlag) {
  // Weighted + CSR view is the one shape where fused accumulation could
  // differ in low-order FP bits; RunCSearch must fall back run-by-run so
  // the flag never changes results.
  GraphBuilder b;
  EdgeList el = ErdosRenyiDirectedGnm(120, 1500, 73);
  Rng rng(79);
  for (const Edge& e : el.edges()) b.Add(e.u, e.v, 0.5 + rng.UniformDouble());
  DirectedGraph g = std::move(b.BuildDirected()).value();
  DirectedGraphStream stream(g);

  CSearchOptions opt;
  opt.epsilon = 0.5;
  opt.record_trace = false;
  opt.fused = false;
  auto seq = RunCSearch(stream, opt);
  ASSERT_TRUE(seq.ok());
  opt.fused = true;
  auto fused = RunCSearch(stream, opt);
  ASSERT_TRUE(fused.ok());
  ASSERT_EQ(seq->sweep.size(), fused->sweep.size());
  for (size_t i = 0; i < seq->sweep.size(); ++i) {
    ExpectSameDirected(seq->sweep[i], fused->sweep[i],
                       "weighted-csr run=" + std::to_string(i));
  }
}

TEST(MultiRunCSearchTest, CSearchGridRejectsInvalidShapes) {
  CSearchOptions opt;
  opt.delta = 1.0;  // spans no finite grid
  EXPECT_TRUE(CSearchGrid(1000, opt).empty());
  opt.delta = 0.5;
  EXPECT_TRUE(CSearchGrid(1000, opt).empty());
  opt.delta = 2.0;
  EXPECT_TRUE(CSearchGrid(0, opt).empty());
  EXPECT_FALSE(CSearchGrid(1000, opt).empty());
}

TEST(MultiRunCSearchTest, EmptyAndInvalidInputs) {
  MultiRunEngine engine(MultiRunOptions{.num_threads = 2});
  EdgeList el = ErdosRenyiDirectedGnm(50, 200, 71);
  EdgeListStream stream(el);

  auto empty = engine.RunDirectedRuns(stream, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ(engine.last_physical_passes(), 0u);

  Algorithm3Options bad;
  bad.c = -1.0;
  auto invalid = engine.RunDirectedRuns(stream, {bad});
  EXPECT_FALSE(invalid.ok());
}

// ---------------------------------------------------------------------------
// Peel-run state machines: drivers agree with the state-machine protocol.

TEST(PeelRunsTest, Algorithm1RunMatchesDriver) {
  // Drive an Algorithm1Run by hand with a private engine and compare with
  // RunAlgorithm1 — guards the ApplyPass protocol itself.
  EdgeList el = ErdosRenyiGnm(200, 2500, 73);
  EdgeListStream stream(el);
  Algorithm1Options options;
  options.epsilon = 0.5;

  auto want = RunAlgorithm1(stream, options);
  ASSERT_TRUE(want.ok());

  PassEngine engine(PassEngineOptions{.num_threads = 1});
  Algorithm1Run run(stream.num_nodes(), options);
  std::vector<double> degrees(stream.num_nodes());
  while (!run.done()) {
    ASSERT_EQ(run.mode(), Algorithm1Run::PassMode::kStream);
    UndirectedPassResult stats =
        engine.RunUndirected(stream, run.alive(), degrees);
    run.ApplyPass(stats, degrees);
  }
  UndirectedDensestResult got = run.TakeResult();
  EXPECT_EQ(got.density, want->density);
  EXPECT_EQ(got.passes, want->passes);
  EXPECT_EQ(got.nodes, want->nodes);
}

}  // namespace
}  // namespace densest
