// Copyright 2026 The densest Authors.
// Stress tests for the ThreadPool submit/shutdown/cancellation protocol.
//
// These are written to fail loudly under ThreadSanitizer if the pool's
// locking discipline regresses: many producer threads hammer Submit while
// the destructor races to shut down, ParallelFor interleaves with Submit,
// and CancelTokens are tripped from outside the pool mid-flight. The
// assertions (every task ran exactly once, every future became ready)
// catch lost-wakeup and dropped-task bugs even without TSan; the
// cross-thread access pattern is what makes a locking regression visible
// to the race detector.

#include "common/thread_pool.h"

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "gtest/gtest.h"

namespace densest {
namespace {

// TSan runs every schedule ~5-20x slower; fewer rounds keep the suite
// fast while still crossing the interesting interleavings many times.
#ifdef DENSEST_TSAN
constexpr int kRounds = 6;
constexpr int kTasksPerProducer = 64;
#else
constexpr int kRounds = 24;
constexpr int kTasksPerProducer = 256;
#endif
constexpr int kProducers = 4;

// Concurrent producers Submit tasks while the pool is destroyed as soon
// as the last Submit returns: the destructor must drain every queued task
// (its future is the caller's only proof the work happened).
TEST(ThreadPoolStressTest, ConcurrentSubmitThenShutdownRunsEveryTask) {
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures(kProducers * kTasksPerProducer);
    {
      ThreadPool pool(3);
      std::vector<std::thread> producers;
      producers.reserve(kProducers);
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
          for (int t = 0; t < kTasksPerProducer; ++t) {
            futures[static_cast<size_t>(p * kTasksPerProducer + t)] =
                pool.Submit(
                    [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
          }
        });
      }
      for (std::thread& t : producers) t.join();
      // Pool destructor runs here with (potentially) a full queue.
    }
    EXPECT_EQ(ran.load(), kProducers * kTasksPerProducer);
    for (std::future<void>& f : futures) {
      ASSERT_TRUE(f.valid());
      f.get();  // throws if the task was dropped or threw
    }
  }
}

// ParallelFor's outstanding_ bookkeeping is shared with Submit; an
// interleaved mix must neither deadlock nor lose a completion signal.
TEST(ThreadPoolStressTest, ParallelForInterleavedWithSubmit) {
  for (int round = 0; round < kRounds; ++round) {
    ThreadPool pool(3);
    std::atomic<int> submitted_ran{0};
    std::atomic<int> parallel_ran{0};
    std::vector<std::future<void>> futures;
    futures.reserve(kTasksPerProducer);
    std::thread submitter([&] {
      for (int t = 0; t < kTasksPerProducer; ++t) {
        futures.push_back(pool.Submit([&submitted_ran] {
          submitted_ran.fetch_add(1, std::memory_order_relaxed);
        }));
      }
    });
    for (int i = 0; i < 8; ++i) {
      pool.ParallelFor(16, [&parallel_ran](size_t) {
        parallel_ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    submitter.join();
    for (std::future<void>& f : futures) f.get();
    EXPECT_EQ(submitted_ran.load(), kTasksPerProducer);
    EXPECT_EQ(parallel_ran.load(), 8 * 16);
  }
}

// Cancellation protocol: workers poll a CancelToken tripped from outside
// the pool. Every task must still complete (cooperative cancellation
// finishes the current bounded unit), every future must become ready, and
// the token's flag must be visible across threads without a data race.
TEST(ThreadPoolStressTest, CancelTokenTrippedMidFlight) {
  for (int round = 0; round < kRounds; ++round) {
    CancelToken cancel;
    std::atomic<int> observed_cancel{0};
    std::atomic<int> ran{0};
    {
      ThreadPool pool(3);
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksPerProducer);
      for (int t = 0; t < kTasksPerProducer; ++t) {
        futures.push_back(pool.Submit([&] {
          // A bounded unit of "work" that polls the token like the
          // engines do (once per shard round).
          if (ShouldStop(&cancel)) {
            observed_cancel.fetch_add(1, std::memory_order_relaxed);
          }
          ran.fetch_add(1, std::memory_order_relaxed);
        }));
      }
      // Trip the token from the producer thread while tasks are in
      // flight; roughly half the queue should observe it.
      cancel.Cancel();
      for (std::future<void>& f : futures) f.get();
    }
    EXPECT_EQ(ran.load(), kTasksPerProducer);
    // Everything submitted after the Cancel() observed it; tasks that ran
    // before may not have. Either way no task was dropped.
    EXPECT_GE(observed_cancel.load(), 0);
    EXPECT_TRUE(cancel.cancelled());
  }
}

// Deadline tokens are read concurrently by many workers while no thread
// writes (the deadline is fixed at construction) — a shape TSan verifies
// is genuinely read-only after publication.
TEST(ThreadPoolStressTest, DeadlineTokenPolledConcurrently) {
  CancelToken token = CancelToken::WithDeadlineAfterMs(1e7);  // far future
  ThreadPool pool(3);
  std::atomic<int> stopped{0};
  pool.ParallelFor(64, [&](size_t) {
    if (ShouldStop(&token)) stopped.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(stopped.load(), 0);
  EXPECT_TRUE(CheckCancel(&token).ok());
}

// A throwing task must surface through its future, not kill a worker or
// wedge the outstanding_ count (the next ParallelFor would hang forever).
TEST(ThreadPoolStressTest, ThrowingTaskPropagatesAndPoolSurvives) {
  ThreadPool pool(2);
  std::future<void> bad = pool.Submit([] {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool must still be fully functional afterwards.
  std::atomic<int> ran{0};
  pool.ParallelFor(8, [&](size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace densest
