// Tests for Charikar's exact greedy peel (bucket queue and weighted heap).

#include "core/charikar.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

#include "flow/brute_force.h"
#include "flow/goldberg.h"
#include "gen/erdos_renyi.h"
#include "gen/planted.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"
#include "stream/file_stream.h"
#include "stream/memory_stream.h"

namespace densest {
namespace {

UndirectedGraph BuildUndirected(const EdgeList& e) {
  GraphBuilder b;
  b.ReserveNodes(e.num_nodes());
  for (const Edge& edge : e.edges()) b.Add(edge.u, edge.v, edge.w);
  return std::move(b.BuildUndirected()).value();
}

UndirectedGraph K5PlusTail() {
  GraphBuilder b;
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) b.Add(i, j);
  }
  b.Add(4, 5);
  b.Add(5, 6);
  return std::move(b.BuildUndirected()).value();
}

TEST(CharikarTest, FindsCliqueOnCliquePlusTail) {
  CharikarResult r = CharikarPeel(K5PlusTail());
  EXPECT_DOUBLE_EQ(r.best.density, 2.0);  // K5: 10 edges / 5 nodes
  EXPECT_EQ(r.best.nodes, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(CharikarTest, RemovalOrderIsPermutation) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(100, 400, 3));
  CharikarResult r = CharikarPeel(g);
  ASSERT_EQ(r.removal_order.size(), 100u);
  std::set<NodeId> unique(r.removal_order.begin(), r.removal_order.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(r.best.passes, 100u);  // one removal step per node
}

TEST(CharikarTest, DensityMatchesReturnedNodes) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(80, 500, 11));
  CharikarResult r = CharikarPeel(g);
  NodeSet s = NodeSet::FromVector(g.num_nodes(), r.best.nodes);
  EXPECT_NEAR(InducedDensity(g, s), r.best.density, 1e-9);
}

TEST(CharikarTest, EmptyAndTinyGraphs) {
  UndirectedGraph empty;
  CharikarResult r = CharikarPeel(empty);
  EXPECT_EQ(r.best.nodes.size(), 0u);
  EXPECT_EQ(r.best.density, 0.0);

  GraphBuilder b;
  b.Add(0, 1);
  UndirectedGraph single = std::move(b.BuildUndirected()).value();
  r = CharikarPeel(single);
  EXPECT_DOUBLE_EQ(r.best.density, 0.5);
  EXPECT_EQ(r.best.nodes.size(), 2u);
}

TEST(CharikarTest, HandlesIsolatedNodes) {
  GraphBuilder b;
  b.Add(0, 1);
  b.Add(1, 2);
  b.ReserveNodes(10);  // nodes 3..9 isolated
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  CharikarResult r = CharikarPeel(g);
  // Best is the path {0,1,2} with density 2/3.
  EXPECT_DOUBLE_EQ(r.best.density, 2.0 / 3.0);
  EXPECT_EQ(r.removal_order.size(), 10u);
}

TEST(CharikarTest, WeightedMatchesUnweightedOnUnitWeights) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(120, 700, 17));
  CharikarResult bucket = CharikarPeel(g);
  CharikarResult heap = CharikarPeelWeighted(g);
  EXPECT_DOUBLE_EQ(bucket.best.density, heap.best.density);
}

TEST(CharikarTest, WeightedPrefersHeavySubgraph) {
  GraphBuilder b;
  // Heavy pair vs a light clique.
  b.Add(0, 1, 100.0);
  for (NodeId i = 2; i < 8; ++i) {
    for (NodeId j = i + 1; j < 8; ++j) b.Add(i, j, 1.0);
  }
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  CharikarResult r = CharikarPeelWeighted(g);
  EXPECT_DOUBLE_EQ(r.best.density, 50.0);
  EXPECT_EQ(r.best.nodes, (std::vector<NodeId>{0, 1}));
}

TEST(CharikarTest, TraceDensitiesConsistent) {
  UndirectedGraph g = K5PlusTail();
  CharikarResult r = CharikarPeel(g);
  ASSERT_EQ(r.best.trace.size(), g.num_nodes() + 1);
  EXPECT_DOUBLE_EQ(r.best.trace.front().density, g.Density());
  EXPECT_DOUBLE_EQ(r.best.trace.back().density, 0.0);
}

TEST(CharikarTest, StreamFrontEndMatchesGraphVersion) {
  // The stream overload ingests via the pass engine's batched drain and
  // must return exactly what the in-memory entry point returns. The graph
  // is built with FromEdgeList (not GraphBuilder) so both sides see the
  // same adjacency order — greedy tie-breaking depends on it.
  EdgeList el = ErdosRenyiGnm(50, 200, 99);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(el);
  CharikarResult from_graph = CharikarPeel(g);

  EdgeListStream stream(el);
  auto from_stream = CharikarPeel(stream);
  ASSERT_TRUE(from_stream.ok());
  EXPECT_DOUBLE_EQ(from_stream->best.density, from_graph.best.density);
  EXPECT_EQ(from_stream->best.nodes, from_graph.best.nodes);
  EXPECT_EQ(from_stream->removal_order, from_graph.removal_order);

  auto weighted_stream = CharikarPeelWeighted(stream);
  ASSERT_TRUE(weighted_stream.ok());
  CharikarResult weighted_graph = CharikarPeelWeighted(g);
  EXPECT_DOUBLE_EQ(weighted_stream->best.density, weighted_graph.best.density);
  EXPECT_EQ(weighted_stream->best.nodes, weighted_graph.best.nodes);
}

TEST(CharikarStreamTest, TruncatedFileSurfacesIOError) {
  // The stream front end materializes with one pass; a truncated file must
  // fail the call instead of peeling the partial graph.
  const std::string path = ::testing::TempDir() + "/charikar_trunc.bin";
  EdgeList el = ErdosRenyiGnm(500, 8000, 211);
  ASSERT_TRUE(WriteBinaryEdgeFile(path, el, /*weighted=*/false).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 2000 * 8);
  auto stream = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());
  auto r = CharikarPeel(**stream);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
  std::remove(path.c_str());
}

// The classical guarantee: greedy >= rho*/2, verified against both oracles.
class CharikarGuaranteeTest : public ::testing::TestWithParam<int> {};

TEST_P(CharikarGuaranteeTest, TwoApproximation) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(60, 300, seed));
  auto exact = ExactDensestSubgraph(g);
  ASSERT_TRUE(exact.ok());
  CharikarResult greedy = CharikarPeel(g);
  EXPECT_GE(greedy.best.density * 2.0, exact->density * (1 - 1e-9));
  EXPECT_LE(greedy.best.density, exact->density + 1e-9);

  CharikarResult weighted = CharikarPeelWeighted(g);
  EXPECT_GE(weighted.best.density * 2.0, exact->density * (1 - 1e-9));
}

INSTANTIATE_TEST_SUITE_P(GreedySweep, CharikarGuaranteeTest,
                         ::testing::Range(400, 412));

}  // namespace
}  // namespace densest
