// Tests for Algorithm 1: unit behaviour, trace invariants, and the
// (2+2eps) approximation guarantee checked against exact oracles.

#include "core/algorithm1.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <tuple>

#include "flow/brute_force.h"
#include "flow/goldberg.h"
#include "gen/erdos_renyi.h"
#include "gen/planted.h"
#include "gen/regular.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"
#include "stream/file_stream.h"
#include "stream/memory_stream.h"
#include "stream/pass_stats.h"

namespace densest {
namespace {

UndirectedGraph BuildUndirected(const EdgeList& e) {
  GraphBuilder b;
  b.ReserveNodes(e.num_nodes());
  for (const Edge& edge : e.edges()) b.Add(edge.u, edge.v, edge.w);
  return std::move(b.BuildUndirected()).value();
}

UndirectedGraph CliquePlusPendants() {
  // K6 on {0..5}; pendant path 5-6-7; isolated node 8.
  GraphBuilder b;
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = i + 1; j < 6; ++j) b.Add(i, j);
  }
  b.Add(5, 6);
  b.Add(6, 7);
  b.ReserveNodes(9);
  return std::move(b.BuildUndirected()).value();
}

TEST(Algorithm1Test, FindsPlantedClique) {
  UndirectedGraph g = CliquePlusPendants();
  Algorithm1Options opt;
  opt.epsilon = 0.1;
  auto r = RunAlgorithm1(g, opt);
  ASSERT_TRUE(r.ok());
  // The clique K6 has density 15/6 = 2.5; the whole graph 17/9 < 2.
  EXPECT_DOUBLE_EQ(r->density, 2.5);
  EXPECT_EQ(r->nodes.size(), 6u);
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_EQ(r->nodes[u], u);
  }
}

TEST(Algorithm1Test, ReportedDensityMatchesReturnedNodes) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(200, 1500, 5));
  Algorithm1Options opt;
  opt.epsilon = 0.5;
  auto r = RunAlgorithm1(g, opt);
  ASSERT_TRUE(r.ok());
  NodeSet s = NodeSet::FromVector(g.num_nodes(), r->nodes);
  EXPECT_NEAR(InducedDensity(g, s), r->density, 1e-9);
}

TEST(Algorithm1Test, RegularGraphPeelsInOnePass) {
  // d-regular: threshold 2(1+eps)(d/2) >= d removes everyone at once.
  UndirectedGraph g = BuildUndirected(CirculantRegular(100, 6));
  Algorithm1Options opt;
  opt.epsilon = 0.0;
  auto r = RunAlgorithm1(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->passes, 1u);
  EXPECT_DOUBLE_EQ(r->density, 3.0);
  EXPECT_EQ(r->nodes.size(), 100u);
}

TEST(Algorithm1Test, TraceInvariants) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(500, 3000, 77));
  Algorithm1Options opt;
  opt.epsilon = 0.5;
  auto r = RunAlgorithm1(g, opt);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->trace.size(), r->passes);
  EXPECT_EQ(r->trace.front().nodes, g.num_nodes());
  EXPECT_EQ(r->trace.front().edges, g.num_edges());
  for (size_t i = 0; i < r->trace.size(); ++i) {
    const PassSnapshot& snap = r->trace[i];
    EXPECT_EQ(snap.pass, i + 1);
    EXPECT_GE(snap.removed, 1u) << "every pass must remove a node";
    EXPECT_NEAR(snap.density,
                snap.weight / static_cast<double>(snap.nodes), 1e-12);
    if (i + 1 < r->trace.size()) {
      EXPECT_EQ(r->trace[i + 1].nodes, snap.nodes - snap.removed);
      EXPECT_LE(r->trace[i + 1].edges, snap.edges);
    }
  }
  // Last pass ends with everything removed.
  uint64_t total_removed = 0;
  for (const auto& snap : r->trace) total_removed += snap.removed;
  EXPECT_EQ(total_removed, g.num_nodes());
}

TEST(Algorithm1Test, PassBoundHolds) {
  // Lemma 4: at most log_{1+eps} n passes.
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(2000, 10000, 3));
  for (double eps : {0.25, 0.5, 1.0, 2.0}) {
    Algorithm1Options opt;
    opt.epsilon = eps;
    opt.record_trace = false;
    auto r = RunAlgorithm1(g, opt);
    ASSERT_TRUE(r.ok());
    double bound =
        std::log(static_cast<double>(g.num_nodes())) / std::log1p(eps);
    EXPECT_LE(static_cast<double>(r->passes), bound + 2.0)
        << "eps=" << eps;
  }
}

TEST(Algorithm1Test, LargerEpsilonNeverMorePassesOnErdosRenyi) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(1000, 8000, 13));
  uint64_t prev = UINT64_MAX;
  for (double eps : {0.0, 0.5, 1.0, 2.0}) {
    Algorithm1Options opt;
    opt.epsilon = eps;
    opt.record_trace = false;
    auto r = RunAlgorithm1(g, opt);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->passes, prev) << "eps=" << eps;
    prev = r->passes;
  }
}

TEST(Algorithm1Test, WeightedGraphUsesWeightedDegrees) {
  // A light triangle and a heavy triangle: the heavy one is denser.
  GraphBuilder b;
  b.Add(0, 1, 1.0);
  b.Add(1, 2, 1.0);
  b.Add(0, 2, 1.0);
  b.Add(3, 4, 10.0);
  b.Add(4, 5, 10.0);
  b.Add(3, 5, 10.0);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  Algorithm1Options opt;
  opt.epsilon = 0.25;
  auto r = RunAlgorithm1(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->density, 10.0);
  EXPECT_EQ(r->nodes, (std::vector<NodeId>{3, 4, 5}));
}

TEST(Algorithm1Test, InvalidArguments) {
  UndirectedGraph g = CliquePlusPendants();
  Algorithm1Options opt;
  opt.epsilon = -0.1;
  EXPECT_FALSE(RunAlgorithm1(g, opt).ok());

  UndirectedGraph empty;
  Algorithm1Options ok_opt;
  EXPECT_FALSE(RunAlgorithm1(empty, ok_opt).ok());
}

TEST(Algorithm1Test, MaxPassesCapRespected) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(500, 2000, 9));
  Algorithm1Options opt;
  opt.epsilon = 0.0;
  opt.max_passes = 2;
  auto r = RunAlgorithm1(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->passes, 2u);
}

TEST(Algorithm1Test, SameResultAcrossStreamBackends) {
  EdgeList el = ErdosRenyiGnm(300, 2000, 55);
  UndirectedGraph g = BuildUndirected(el);
  Algorithm1Options opt;
  opt.epsilon = 0.75;

  auto from_graph = RunAlgorithm1(g, opt);
  ASSERT_TRUE(from_graph.ok());

  EdgeListStream list_stream(el);
  auto from_list = RunAlgorithm1(list_stream, opt);
  ASSERT_TRUE(from_list.ok());

  std::string path = ::testing::TempDir() + "/alg1_edges.bin";
  ASSERT_TRUE(WriteBinaryEdgeFile(path, el, false).ok());
  auto file_stream = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(file_stream.ok());
  auto from_file = RunAlgorithm1(**file_stream, opt);
  ASSERT_TRUE(from_file.ok());
  std::remove(path.c_str());

  EXPECT_EQ(from_graph->nodes, from_list->nodes);
  EXPECT_EQ(from_graph->nodes, from_file->nodes);
  EXPECT_DOUBLE_EQ(from_graph->density, from_list->density);
  EXPECT_DOUBLE_EQ(from_graph->density, from_file->density);
  EXPECT_EQ(from_graph->passes, from_file->passes);
}

TEST(Algorithm1Test, PassAccountingMatchesReportedPasses) {
  EdgeList el = ErdosRenyiGnm(300, 2000, 56);
  EdgeListStream inner(el);
  PassStats stats;
  CountingEdgeStream counting(inner, stats);
  Algorithm1Options opt;
  opt.epsilon = 1.0;
  auto r = RunAlgorithm1(counting, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.passes, r->passes);
  EXPECT_EQ(stats.edges_scanned, r->passes * el.num_edges());
}

TEST(Algorithm1Test, CompactionProducesIdenticalResults) {
  EdgeList el = ErdosRenyiGnm(800, 6000, 21);
  UndirectedGraph g = BuildUndirected(el);

  Algorithm1Options plain;
  plain.epsilon = 0.5;
  auto reference = RunAlgorithm1(g, plain);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->io_passes, reference->passes);

  Algorithm1Options compacting = plain;
  compacting.compact_below_edges = 3000;
  auto compacted = RunAlgorithm1(g, compacting);
  ASSERT_TRUE(compacted.ok());

  // Bit-identical peeling; only the IO accounting differs.
  EXPECT_EQ(compacted->nodes, reference->nodes);
  EXPECT_DOUBLE_EQ(compacted->density, reference->density);
  EXPECT_EQ(compacted->passes, reference->passes);
  EXPECT_LT(compacted->io_passes, compacted->passes);
  ASSERT_EQ(compacted->trace.size(), reference->trace.size());
  for (size_t i = 0; i < reference->trace.size(); ++i) {
    EXPECT_EQ(compacted->trace[i].edges, reference->trace[i].edges);
    EXPECT_EQ(compacted->trace[i].removed, reference->trace[i].removed);
  }
}

TEST(Algorithm1Test, CompactionReducesStreamScans) {
  EdgeList el = ErdosRenyiGnm(1000, 8000, 22);
  EdgeListStream inner(el);
  PassStats stats;
  CountingEdgeStream counting(inner, stats);

  Algorithm1Options opt;
  opt.epsilon = 0.25;
  opt.compact_below_edges = el.num_edges() / 2;
  auto r = RunAlgorithm1(counting, opt);
  ASSERT_TRUE(r.ok());
  // The external stream was only reset io_passes times.
  EXPECT_EQ(stats.passes, r->io_passes);
  EXPECT_LT(r->io_passes, r->passes);
}

TEST(Algorithm1Test, CompactionThresholdLargerThanGraphStillCorrect) {
  // Compaction armed immediately (threshold above |E|): pass 1 streams,
  // pass 2 compacts, rest run in memory.
  EdgeList el = ErdosRenyiGnm(300, 2000, 23);
  UndirectedGraph g = BuildUndirected(el);
  Algorithm1Options opt;
  opt.epsilon = 0.5;
  opt.compact_below_edges = 1u << 30;
  auto compacted = RunAlgorithm1(g, opt);
  Algorithm1Options plain;
  plain.epsilon = 0.5;
  auto reference = RunAlgorithm1(g, plain);
  ASSERT_TRUE(compacted.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(compacted->nodes, reference->nodes);
  EXPECT_LE(compacted->io_passes, 2u);
}

// ---- Property sweep: approximation guarantee against exact oracles. ----

class Algorithm1GuaranteeTest
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(Algorithm1GuaranteeTest, WithinFactorOfOptimum) {
  auto [seed, density_factor, eps] = GetParam();
  const NodeId n = 60;
  const EdgeId m = static_cast<EdgeId>(density_factor * n);
  UndirectedGraph g = BuildUndirected(
      ErdosRenyiGnm(n, m, static_cast<uint64_t>(seed)));

  auto exact = ExactDensestSubgraph(g);
  ASSERT_TRUE(exact.ok());

  Algorithm1Options opt;
  opt.epsilon = eps;
  auto approx = RunAlgorithm1(g, opt);
  ASSERT_TRUE(approx.ok());

  // Lemma 3: rho~ >= rho* / (2 + 2eps); allow a hair of float slack.
  EXPECT_GE(approx->density * (2.0 + 2.0 * eps),
            exact->density * (1.0 - 1e-9))
      << "seed=" << seed << " m=" << m << " eps=" << eps;
  // And never better than the optimum.
  EXPECT_LE(approx->density, exact->density + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    GuaranteeSweep, Algorithm1GuaranteeTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(1.5, 4.0, 10.0),
                       ::testing::Values(0.001, 0.5, 2.0)));

// Cross-check against the brute-force oracle on very small graphs, which
// validates the flow oracle itself through an independent path.
class Algorithm1TinyTest : public ::testing::TestWithParam<int> {};

TEST_P(Algorithm1TinyTest, GuaranteeAgainstBruteForce) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(12, 25, seed));
  auto brute = BruteForceDensest(g);
  ASSERT_TRUE(brute.ok());
  Algorithm1Options opt;
  opt.epsilon = 0.2;
  auto approx = RunAlgorithm1(g, opt);
  ASSERT_TRUE(approx.ok());
  EXPECT_GE(approx->density * (2.0 + 2.0 * 0.2), brute->density - 1e-9);
  EXPECT_LE(approx->density, brute->density + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(TinySweep, Algorithm1TinyTest,
                         ::testing::Range(100, 120));

}  // namespace
}  // namespace densest
