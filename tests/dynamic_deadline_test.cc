// Overload-protection tests for the dynamic service: a recompute deadline
// that trips must never block or break serving — queries get the last
// certified answer under a soundly widened, stale-flagged upper bound —
// and the engine must heal on its own: the budget doubles per consecutive
// cancellation until a recompute fits, at which point certified serving
// resumes. The pending state also survives a snapshot round trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "dynamic/dynamic_densest.h"
#include "dynamic/snapshot.h"
#include "flow/goldberg.h"
#include "graph/undirected_graph.h"
#include "stream/update_stream.h"

namespace densest {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("deadline_test_" + name + "_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
      .string();
}

/// Grows a clique until the window degrades and the (deadline-bounded)
/// recompute path has fired at least once.
void GrowClique(DynamicDensest& engine, NodeId k, uint64_t* ts) {
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) {
      engine.Apply(InsertUpdate(u, v, ++*ts));
    }
  }
}

DynamicDensestOptions TinyDeadlineOptions() {
  DynamicDensestOptions opt;
  opt.fallback = DynamicFallback::kRecompute;
  opt.window_radius = 0;  // window [lo, lo+1]: a clique degrades it fast
  // Pre-expired on arrival: the first poll inside the recompute trips it,
  // so cancellation is deterministic regardless of machine speed.
  opt.recompute_deadline_ms = 1e-5;
  // Never re-arm within the test workload: the first cancellation leaves
  // the engine observably pending, which is the state these tests pin.
  // (BackoffDoublesBudgetUntilRecomputeCompletes overrides this.)
  opt.recompute_rearm_updates = 1u << 30;
  return opt;
}

TEST(DeadlineTest, CancelledRecomputeServesCertifiedWidenedStaleAnswer) {
  auto engine = DynamicDensest::Create(32, TinyDeadlineOptions());
  ASSERT_TRUE(engine.ok());
  uint64_t ts = 0;
  GrowClique(**engine, 24, &ts);

  const DynamicDensestStats& stats = (*engine)->stats();
  ASSERT_GT(stats.recomputes_cancelled, 0u)
      << "workload never tripped the deadline";
  ASSERT_TRUE((*engine)->recompute_pending());

  // The query MUST NOT block or degrade to uncertified: it serves the best
  // maintained density under the last certificate widened by the insert
  // drift bound (rho* rises at most 1/2 per insertion).
  const DynamicDensest::Answer a = (*engine)->Query();
  EXPECT_TRUE(a.certified);
  EXPECT_TRUE(a.stale);
  EXPECT_GT(a.density, 0);
  EXPECT_GT((*engine)->stats().stale_answers_served, 0u);

  // Soundness of the widened bound: it really is above rho*.
  UndirectedGraph g = UndirectedGraph::FromEdgeList((*engine)->CurrentEdges());
  StatusOr<ExactDensestResult> exact = ExactDensestSubgraph(g);
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(a.upper_bound, exact->density);
  // And the served density is a real induced density, so it lower-bounds.
  EXPECT_LE(a.density, exact->density + 1e-9);
}

TEST(DeadlineTest, BackoffDoublesBudgetUntilRecomputeCompletes) {
  DynamicDensestOptions opt = TinyDeadlineOptions();
  opt.recompute_rearm_updates = 8;  // retry (with doubled budget) often
  auto engine = DynamicDensest::Create(32, opt);
  ASSERT_TRUE(engine.ok());
  uint64_t ts = 0;
  GrowClique(**engine, 24, &ts);
  ASSERT_GT((*engine)->stats().recomputes_cancelled, 0u)
      << "workload never tripped the deadline";

  // Each re-arm boundary retries with a doubled budget; the cap
  // (2^20 x deadline ~ 10ms) dwarfs this graph's recompute cost, so the
  // pending state must clear in bounded time. Keep the update stream
  // alive with churn on an edge far from the clique in case the growth
  // alone didn't carry the engine across enough re-arm boundaries.
  for (int i = 0; i < 4000 && (*engine)->recompute_pending(); ++i) {
    (*engine)->Apply(i % 2 == 0 ? InsertUpdate(28, 29, ++ts)
                                : DeleteUpdate(28, 29, ++ts));
  }
  EXPECT_FALSE((*engine)->recompute_pending());
  EXPECT_GT((*engine)->stats().recomputes, 0u);
  EXPECT_EQ((*engine)->overload_state().cancel_streak, 0u);
  const DynamicDensest::Answer a = (*engine)->Query();
  EXPECT_TRUE(a.certified);
  EXPECT_FALSE(a.stale);
  // Certified serving resumed: the band holds against the exact density.
  UndirectedGraph g = UndirectedGraph::FromEdgeList((*engine)->CurrentEdges());
  StatusOr<ExactDensestResult> exact = ExactDensestSubgraph(g);
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(a.density, exact->density + 1e-9);
  EXPECT_GE(a.upper_bound, exact->density);
}

TEST(DeadlineTest, UnboundedDeadlineNeverCancels) {
  DynamicDensestOptions opt = TinyDeadlineOptions();
  opt.recompute_deadline_ms = 0;  // 0 = unbounded (the default)
  auto engine = DynamicDensest::Create(32, opt);
  ASSERT_TRUE(engine.ok());
  uint64_t ts = 0;
  GrowClique(**engine, 24, &ts);
  EXPECT_EQ((*engine)->stats().recomputes_cancelled, 0u);
  EXPECT_FALSE((*engine)->recompute_pending());
  EXPECT_GT((*engine)->stats().recomputes, 0u);
}

TEST(DeadlineTest, PendingOverloadStateSurvivesSnapshotRoundTrip) {
  const DynamicDensestOptions opt = TinyDeadlineOptions();
  auto engine = DynamicDensest::Create(32, opt);
  ASSERT_TRUE(engine.ok());
  uint64_t ts = 0;
  GrowClique(**engine, 24, &ts);
  ASSERT_TRUE((*engine)->recompute_pending());
  const DynamicDensest::OverloadState before = (*engine)->overload_state();
  const DynamicDensest::Answer served = (*engine)->Query();

  // The snapshot's internal cross-check re-runs Query() on the restored
  // engine; without the overload state it would serve an unwidened bound
  // and refuse the restore.
  const std::string path = TempPath("pending");
  ASSERT_TRUE(WriteSnapshot(path, **engine, ts).ok());
  auto restored = ReadSnapshot(path, opt);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->engine->recompute_pending());
  const DynamicDensest::OverloadState after =
      restored->engine->overload_state();
  EXPECT_EQ(after.pending, before.pending);
  EXPECT_EQ(after.cancel_streak, before.cancel_streak);
  EXPECT_EQ(after.rearm_at_updates, before.rearm_at_updates);
  EXPECT_EQ(after.last_cert_upper, before.last_cert_upper);
  EXPECT_EQ(after.last_cert_inserts, before.last_cert_inserts);

  const DynamicDensest::Answer again = restored->engine->Query();
  EXPECT_EQ(again.density, served.density);
  EXPECT_EQ(again.upper_bound, served.upper_bound);
  EXPECT_TRUE(again.stale);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace densest
