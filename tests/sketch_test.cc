// Tests for Count-Sketch, degree oracles, and the sketched Algorithm 1.

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithm1.h"
#include "gen/erdos_renyi.h"
#include "gen/planted.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"
#include "sketch/count_sketch.h"
#include "sketch/degree_oracle.h"
#include "sketch/sketched_algorithm1.h"
#include "stream/memory_stream.h"

namespace densest {
namespace {

UndirectedGraph BuildUndirected(const EdgeList& e) {
  GraphBuilder b;
  b.ReserveNodes(e.num_nodes());
  for (const Edge& edge : e.edges()) b.Add(edge.u, edge.v, edge.w);
  return std::move(b.BuildUndirected()).value();
}

TEST(CountSketchTest, RejectsBadDimensions) {
  EXPECT_FALSE(CountSketch::Create({.tables = 0, .buckets = 10}, 1).ok());
  EXPECT_FALSE(CountSketch::Create({.tables = 5, .buckets = 0}, 1).ok());
}

TEST(CountSketchTest, ExactWhenNoCollisions) {
  // Few keys, many buckets: estimates should be exact.
  auto sketch = CountSketch::Create({.tables = 5, .buckets = 4096}, 7);
  ASSERT_TRUE(sketch.ok());
  for (uint32_t x = 0; x < 10; ++x) {
    for (uint32_t k = 0; k <= x; ++k) sketch->Update(x, 1.0);
  }
  for (uint32_t x = 0; x < 10; ++x) {
    EXPECT_NEAR(sketch->Estimate(x), x + 1.0, 1e-12) << "x=" << x;
  }
}

TEST(CountSketchTest, UnseenKeyNearZero) {
  auto sketch = CountSketch::Create({.tables = 5, .buckets = 4096}, 7);
  ASSERT_TRUE(sketch.ok());
  for (uint32_t x = 0; x < 20; ++x) sketch->Update(x, 1.0);
  EXPECT_NEAR(sketch->Estimate(12345), 0.0, 1.0);
}

TEST(CountSketchTest, HeavyHitterAccurateUnderCollisions) {
  // 20k light keys + 1 heavy key, only 2k buckets: the heavy key's
  // relative error must stay small (the Count-Sketch guarantee).
  auto sketch = CountSketch::Create({.tables = 7, .buckets = 2048}, 11);
  ASSERT_TRUE(sketch.ok());
  for (uint32_t x = 1; x <= 20000; ++x) sketch->Update(x, 1.0);
  sketch->Update(0, 5000.0);
  EXPECT_NEAR(sketch->Estimate(0), 5000.0, 250.0);
}

TEST(CountSketchTest, ClearZeroesCounters) {
  auto sketch = CountSketch::Create({.tables = 3, .buckets = 64}, 3);
  ASSERT_TRUE(sketch.ok());
  sketch->Update(5, 100.0);
  sketch->Clear();
  EXPECT_DOUBLE_EQ(sketch->Estimate(5), 0.0);
}

TEST(CountSketchTest, StateWordsIsTablesTimesBuckets) {
  auto sketch = CountSketch::Create({.tables = 5, .buckets = 30000}, 1);
  ASSERT_TRUE(sketch.ok());
  EXPECT_EQ(sketch->StateWords(), 150000u);
}

TEST(CountSketchTest, NegativeUpdatesSupported) {
  auto sketch = CountSketch::Create({.tables = 5, .buckets = 1024}, 5);
  ASSERT_TRUE(sketch.ok());
  sketch->Update(42, 10.0);
  sketch->Update(42, -4.0);
  EXPECT_NEAR(sketch->Estimate(42), 6.0, 1e-12);
}

TEST(DegreeOracleTest, ExactOracleCountsDegrees) {
  ExactDegreeOracle oracle(5);
  oracle.BeginPass();
  oracle.AddIncidence(0, 1.0);
  oracle.AddIncidence(0, 2.0);
  oracle.AddIncidence(3, 1.0);
  EXPECT_DOUBLE_EQ(oracle.EstimateDegree(0), 3.0);
  EXPECT_DOUBLE_EQ(oracle.EstimateDegree(3), 1.0);
  EXPECT_DOUBLE_EQ(oracle.EstimateDegree(1), 0.0);
  EXPECT_EQ(oracle.StateWords(), 5u);
  oracle.BeginPass();
  EXPECT_DOUBLE_EQ(oracle.EstimateDegree(0), 0.0);
}

TEST(SketchedAlgorithm1Test, ExactOracleReproducesAlgorithm1) {
  EdgeList el = ErdosRenyiGnm(400, 3000, 61);
  UndirectedGraph g = BuildUndirected(el);
  Algorithm1Options opt;
  opt.epsilon = 0.5;

  auto reference = RunAlgorithm1(g, opt);
  ASSERT_TRUE(reference.ok());

  UndirectedGraphStream stream(g);
  ExactDegreeOracle oracle(g.num_nodes());
  auto via_oracle = RunAlgorithm1WithOracle(stream, oracle, opt);
  ASSERT_TRUE(via_oracle.ok());

  EXPECT_EQ(via_oracle->result.nodes, reference->nodes);
  EXPECT_DOUBLE_EQ(via_oracle->result.density, reference->density);
  EXPECT_EQ(via_oracle->result.passes, reference->passes);
  EXPECT_DOUBLE_EQ(via_oracle->memory_ratio, 1.0);
}

TEST(SketchedAlgorithm1Test, LargeSketchNearExactQuality) {
  // Table 4 regime: counter memory well below n, quality ratio stays high.
  PlantedGraph pg = PlantDenseBlocks(20000, 60000, {{60, 0.9}}, 63);
  UndirectedGraph g = BuildUndirected(pg.edges);
  Algorithm1Options opt;
  opt.epsilon = 0.5;
  auto exact_run = RunAlgorithm1(g, opt);
  ASSERT_TRUE(exact_run.ok());

  UndirectedGraphStream stream(g);
  auto sketched = RunSketchedAlgorithm1(
      stream, {.tables = 5, .buckets = 2048}, 17, opt);
  ASSERT_TRUE(sketched.ok());
  EXPECT_GE(sketched->result.density, 0.5 * exact_run->density);
  EXPECT_LT(sketched->memory_ratio, 1.0)
      << "sketch should use less counter memory than exact";
}

TEST(SketchedAlgorithm1Test, ReportedDensityIsExactForReturnedSet) {
  // Even with sketched degrees, the tracked density is exact.
  PlantedGraph pg = PlantDenseBlocks(1000, 3000, {{25, 0.9}}, 67);
  UndirectedGraph g = BuildUndirected(pg.edges);
  UndirectedGraphStream stream(g);
  Algorithm1Options opt;
  opt.epsilon = 1.0;
  auto sketched = RunSketchedAlgorithm1(
      stream, {.tables = 5, .buckets = 1024}, 19, opt);
  ASSERT_TRUE(sketched.ok());
  NodeSet s = NodeSet::FromVector(g.num_nodes(), sketched->result.nodes);
  EXPECT_NEAR(InducedDensity(g, s), sketched->result.density, 1e-9);
}

TEST(SketchedAlgorithm1Test, TerminatesEvenWithTinySketch) {
  // A pathologically small sketch must not loop forever.
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(200, 1000, 69));
  UndirectedGraphStream stream(g);
  Algorithm1Options opt;
  opt.epsilon = 0.5;
  opt.max_passes = 5000;
  auto sketched =
      RunSketchedAlgorithm1(stream, {.tables = 1, .buckets = 4}, 23, opt);
  ASSERT_TRUE(sketched.ok());
  EXPECT_LT(sketched->result.passes, 5000u);
}

TEST(SketchedAlgorithm1Test, MemoryRatioMatchesTable4Formula) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(976, 2000, 71));
  UndirectedGraphStream stream(g);
  Algorithm1Options opt;
  opt.epsilon = 0.5;
  auto sketched =
      RunSketchedAlgorithm1(stream, {.tables = 5, .buckets = 30}, 29, opt);
  ASSERT_TRUE(sketched.ok());
  EXPECT_DOUBLE_EQ(sketched->memory_ratio, 150.0 / 976.0);
}

}  // namespace
}  // namespace densest
