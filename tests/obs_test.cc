// Unit and concurrency tests for the observability layer (src/obs/):
// sharded counters under thread fan-out, snapshot-consistent Collect(),
// histogram bucketing, the exporter's completeness contract, and the trace
// recorder's per-thread span buffers. Test-local metric names use the
// reserved "t." prefix (see obs/metric_names.h), which the registry serves
// from its overflow map and the lint registry check exempts.

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/answer.h"
#include "obs/exporter.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/answer_plane.h"
#include "serve/query_service.h"

namespace densest::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Get().ResetForTest();
    TraceRecorder::Get().ResetForTest();
  }
  void TearDown() override {
    MetricsRegistry::Get().ResetForTest();
    TraceRecorder::Get().ResetForTest();
  }
};

double CounterValue(const MetricsSnapshot& snap, std::string_view name) {
  for (const CounterSample& c : snap.counters) {
    if (c.name == name) return static_cast<double>(c.value);
  }
  ADD_FAILURE() << "counter " << name << " not in snapshot";
  return -1;
}

TEST_F(ObsTest, CounterExactTotalAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr uint64_t kIncsPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (uint64_t i = 0; i < kIncsPerThread; ++i) {
        DENSEST_METRIC_COUNTER("t.obs_counter").Inc();
      }
      DENSEST_METRIC_COUNTER("t.obs_counter_bulk").Inc(42);
    });
  }
  for (std::thread& t : threads) t.join();
  const MetricsSnapshot snap = MetricsRegistry::Get().Collect();
  EXPECT_EQ(CounterValue(snap, "t.obs_counter"), kThreads * kIncsPerThread);
  EXPECT_EQ(CounterValue(snap, "t.obs_counter_bulk"), kThreads * 42);
}

TEST_F(ObsTest, CollectIsMonotoneUnderConcurrentWriters) {
  // Four writers race Collect(): each collected total must be monotone
  // non-decreasing (stripes are monotone and read in order), and under
  // TSan this doubles as the torn-free data-race check for Collect.
  // Register the counter up front so the first Collect already sees it
  // even if no writer has managed an Inc yet.
  DENSEST_METRIC_COUNTER("t.obs_race").Inc();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        DENSEST_METRIC_COUNTER("t.obs_race").Inc();
      }
    });
  }
  double last = 1;
  for (int i = 0; i < 200; ++i) {
    const double v =
        CounterValue(MetricsRegistry::Get().Collect(), "t.obs_race");
    EXPECT_GE(v, last);
    last = v;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
}

TEST_F(ObsTest, GaugeHoldsLastSet) {
  DENSEST_METRIC_GAUGE("t.obs_gauge").Set(2.5);
  DENSEST_METRIC_GAUGE("t.obs_gauge").Set(-7.25);
  const MetricsSnapshot snap = MetricsRegistry::Get().Collect();
  bool found = false;
  for (const GaugeSample& g : snap.gauges) {
    if (g.name == "t.obs_gauge") {
      EXPECT_DOUBLE_EQ(g.value, -7.25);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, HistogramBucketsCountSumMinMax) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("t.obs_hist");
  h.Observe(0.5);
  h.Observe(3.0);
  h.Observe(1000.0);
  h.Observe(-5.0);  // clamped to 0
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1003.5);
  EXPECT_DOUBLE_EQ(h.MinSeen(), 0.0);
  EXPECT_DOUBLE_EQ(h.MaxSeen(), 1000.0);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    bucket_total += h.BucketCount(i);
  }
  EXPECT_EQ(bucket_total, 4u);
}

TEST_F(ObsTest, HistogramSampleQuantileClampedToObservedRange) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("t.obs_hist_q");
  for (int i = 0; i < 100; ++i) h.Observe(100.0);
  const MetricsSnapshot snap = MetricsRegistry::Get().Collect();
  for (const HistogramSample& s : snap.histograms) {
    if (s.name != "t.obs_hist_q") continue;
    EXPECT_EQ(s.count, 100u);
    // The log2 bucket upper bound for 100 is 128; the sample clamps the
    // quantile to the observed max.
    EXPECT_DOUBLE_EQ(s.Quantile(0.5), 100.0);
    EXPECT_DOUBLE_EQ(s.Quantile(0.99), 100.0);
    EXPECT_DOUBLE_EQ(s.Mean(), 100.0);
    return;
  }
  FAIL() << "t.obs_hist_q not collected";
}

TEST_F(ObsTest, DisabledRegistryDropsWrites) {
  MetricsRegistry::Get().set_enabled(false);
  DENSEST_METRIC_COUNTER("t.obs_off").Inc();
  DENSEST_METRIC_GAUGE("t.obs_off_g").Set(9);
  MetricsRegistry::Get().set_enabled(true);
  DENSEST_METRIC_COUNTER("t.obs_off").Inc();
  const MetricsSnapshot snap = MetricsRegistry::Get().Collect();
  EXPECT_EQ(CounterValue(snap, "t.obs_off"), 1);
}

TEST_F(ObsTest, PrometheusExpositionContainsEveryRegisteredName) {
  auto mangled = [](std::string_view name) {
    std::string out = "densest_";
    for (char c : name) out.push_back(c == '.' ? '_' : c);
    return out;
  };
  const std::string text = RenderMetricsPrometheus();
  for (std::string_view name : kCounterNames) {
    EXPECT_NE(text.find("\n" + mangled(name) + " "), std::string::npos)
        << "counter " << name << " absent from exposition";
  }
  for (std::string_view name : kGaugeNames) {
    EXPECT_NE(text.find("\n" + mangled(name) + " "), std::string::npos)
        << "gauge " << name << " absent from exposition";
  }
  for (std::string_view name : kHistogramNames) {
    EXPECT_NE(text.find(mangled(name) + "_count"), std::string::npos)
        << "histogram " << name << " absent from exposition";
    EXPECT_NE(text.find(mangled(name) + "_bucket{le=\"+Inf\"}"),
              std::string::npos)
        << "histogram " << name << " missing its +Inf bucket";
  }
}

TEST_F(ObsTest, HistogramExpositionBucketSumMatchesCount) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("dynamic.query_latency_us");
  for (int i = 0; i < 7; ++i) h.Observe(static_cast<double>(1 << i));
  const std::string text = RenderMetricsPrometheus();
  const std::string inf =
      "densest_dynamic_query_latency_us_bucket{le=\"+Inf\"} 7";
  const std::string count = "densest_dynamic_query_latency_us_count 7";
  EXPECT_NE(text.find(inf), std::string::npos) << text;
  EXPECT_NE(text.find(count), std::string::npos) << text;
}

TEST_F(ObsTest, JsonMirrorRendersAllThreeKinds) {
  DENSEST_METRIC_COUNTER("core.passes").Inc(3);
  const std::string json =
      MetricsExporter::RenderJson(MetricsRegistry::Get().Collect());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"core.passes\": 3"), std::string::npos) << json;
}

TEST_F(ObsTest, SummaryLineShowsOnlyNonZero) {
  DENSEST_METRIC_COUNTER("core.passes").Inc(2);
  const std::string line =
      MetricsExporter::SummaryLine(MetricsRegistry::Get().Collect());
  EXPECT_NE(line.find("core.passes=2"), std::string::npos) << line;
  EXPECT_EQ(line.find("mr.jobs"), std::string::npos) << line;
}

// ------------------------------------------------------------- tracing --

#if defined(DENSEST_TRACING_ENABLED)

/// Spins until the recorder clock advances at least `us` microseconds, so
/// nested spans get strictly ordered timestamps.
void SpinMicros(uint64_t us) {
  const uint64_t start = TraceRecorder::Get().NowMicros();
  while (TraceRecorder::Get().NowMicros() - start < us) {
  }
}

TEST_F(ObsTest, MultiThreadedSpansAreWellNestedPerThread) {
  TraceRecorder::Get().Start();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      DENSEST_TRACE_SPAN("t.outer");
      SpinMicros(2);
      {
        DENSEST_TRACE_SPAN("t.inner");
        SpinMicros(2);
      }
      SpinMicros(2);
    });
  }
  for (std::thread& t : threads) t.join();
  TraceRecorder::Get().Stop();

  std::vector<TraceSpan> spans = TraceRecorder::Get().Drain();
  // One outer + one inner per thread; each thread's inner is strictly
  // contained in its outer.
  std::map<uint32_t, std::vector<TraceSpan>> by_tid;
  for (const TraceSpan& s : spans) by_tid[s.tid].push_back(s);
  int threads_with_spans = 0;
  for (const auto& [tid, list] : by_tid) {
    if (list.empty()) continue;
    ++threads_with_spans;
    ASSERT_EQ(list.size(), 2u) << "tid " << tid;
    const TraceSpan* outer = nullptr;
    const TraceSpan* inner = nullptr;
    for (const TraceSpan& s : list) {
      if (s.name == "t.outer") outer = &s;
      if (s.name == "t.inner") inner = &s;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_GE(inner->ts_us, outer->ts_us);
    EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us);
    EXPECT_LT(inner->dur_us, outer->dur_us);
  }
  EXPECT_EQ(threads_with_spans, kThreads);
  EXPECT_EQ(TraceRecorder::Get().dropped(), 0u);
}

TEST_F(ObsTest, DrainToJsonEmitsCompleteEvents) {
  TraceRecorder::Get().Start();
  {
    DENSEST_TRACE_SPAN("t.outer");
    SpinMicros(1);
  }
  std::thread other([] {
    DENSEST_TRACE_SPAN("t.inner");
    SpinMicros(1);
  });
  other.join();
  TraceRecorder::Get().Stop();
  const std::string json = TraceRecorder::Get().DrainToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"t.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"t.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Braces and brackets balance (the quick structural sanity check; CI's
  // tools/check_obs.py does the real JSON parse).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(ObsTest, SpansOutsideRecordingAreNotBuffered) {
  {
    DENSEST_TRACE_SPAN("t.outer");
    SpinMicros(1);
  }
  EXPECT_TRUE(TraceRecorder::Get().Drain().empty());
}

#endif  // DENSEST_TRACING_ENABLED

// ----------------------------------------------------- stats query kind --

TEST_F(ObsTest, StatsQueryKindServesExposition) {
  AnswerPlane plane(16);
  Answer a;
  a.density = 1.5;
  a.upper_bound = 3.0;
  a.size = 4;
  a.certified = true;
  const std::vector<NodeId> members = {1, 2, 3, 5};
  plane.Publish(a, members, 10);

  QueryServiceOptions opts;
  opts.num_readers = 2;
  QueryService service(plane, opts);
  const std::vector<ServeQuery> queries = {
      ServeQuery{ServeQuery::Kind::kStats, 0},
      ServeQuery{ServeQuery::Kind::kDensity, 0},
  };
  std::vector<ServeResult> results;
  ASSERT_TRUE(service.QueryBatch(queries, &results).ok());
  ASSERT_EQ(results.size(), 2u);
  // The stats result carries the exposition plus the same answer a density
  // query would have served; the density result has no stats text.
  EXPECT_NE(results[0].stats_text.find("densest_serve_publications 1"),
            std::string::npos)
      << results[0].stats_text;
  EXPECT_NE(results[0].stats_text.find("densest_serve_stats_queries"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(results[0].answer.density, 1.5);
  EXPECT_TRUE(results[1].stats_text.empty());
  service.Stop();

  const MetricsSnapshot snap = MetricsRegistry::Get().Collect();
  EXPECT_EQ(CounterValue(snap, "serve.stats_queries"), 1);
  EXPECT_EQ(CounterValue(snap, "serve.queries_served"), 2);
}

}  // namespace
}  // namespace densest::obs
