// Crash-recovery tests for the dynamic service: snapshot round trips are
// bit-for-bit (the restored engine evolves identically to the original),
// replay(snapshot -> crash point) reproduces an uninterrupted run exactly
// at several distinct crash offsets, and a torn/corrupted/stale snapshot
// degrades to a full rebuild — it never yields a wrong density.

#include "dynamic/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "dynamic/dynamic_densest.h"
#include "dynamic/replay.h"
#include "gen/erdos_renyi.h"
#include "stream/memory_stream.h"
#include "stream/update_stream.h"

namespace densest {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("snapshot_test_" + name + "_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
      .string();
}

/// A deterministic insert+delete workload: a sliding window over a random
/// edge sequence, materialized so every run sees the identical updates.
std::vector<EdgeUpdate> MakeWorkload(NodeId n, EdgeId m, uint64_t window,
                                     uint64_t seed) {
  EdgeList edges = ErdosRenyiGnm(n, m, seed);
  EdgeListStream base(edges);
  SlidingWindowUpdateStream stream(base, window);
  stream.Reset();
  std::vector<EdgeUpdate> out;
  EdgeUpdate u;
  while (stream.Next(&u)) out.push_back(u);
  return out;
}

/// Everything two engines must agree on to count as the same state.
void ExpectEnginesIdentical(DynamicDensest& a, DynamicDensest& b) {
  const DynamicDensest::Answer qa = a.Query();
  const DynamicDensest::Answer qb = b.Query();
  EXPECT_EQ(qa.density, qb.density);  // bit-for-bit, no tolerance
  EXPECT_EQ(qa.upper_bound, qb.upper_bound);
  EXPECT_EQ(qa.size, qb.size);
  EXPECT_EQ(qa.certified, qb.certified);
  EXPECT_EQ(a.DensestNodes(), b.DensestNodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.window_lo(), b.window_lo());
  EXPECT_EQ(a.window_hi(), b.window_hi());
  EXPECT_EQ(a.trim_streak(), b.trim_streak());
  const DynamicDensestStats& sa = a.stats();
  const DynamicDensestStats& sb = b.stats();
  EXPECT_EQ(sa.inserts, sb.inserts);
  EXPECT_EQ(sa.deletes, sb.deletes);
  EXPECT_EQ(sa.ignored, sb.ignored);
  EXPECT_EQ(sa.level_moves, sb.level_moves);
  EXPECT_EQ(sa.recomputes, sb.recomputes);
  EXPECT_EQ(sa.window_moves, sb.window_moves);
  EXPECT_EQ(sa.structures_rebuilt, sb.structures_rebuilt);
  EXPECT_EQ(sa.trims_deferred, sb.trims_deferred);
  EXPECT_EQ(sa.recomputes_avoided, sb.recomputes_avoided);
  EXPECT_EQ(sa.last_recompute_density, sb.last_recompute_density);
}

TEST(SnapshotTest, RoundTripRestoresStateAndFutureEvolutionExactly) {
  const NodeId kNodes = 80;
  std::vector<EdgeUpdate> workload = MakeWorkload(kNodes, 1500, 200, 5);
  const size_t kCut = workload.size() / 2;

  DynamicDensestOptions opt;
  opt.epsilon = 0.5;
  auto original = DynamicDensest::Create(kNodes, opt);
  ASSERT_TRUE(original.ok());
  for (size_t i = 0; i < kCut; ++i) (*original)->Apply(workload[i]);

  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(WriteSnapshot(path, **original, kCut).ok());
  auto restored = ReadSnapshot(path, opt);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->cursor, kCut);
  ExpectEnginesIdentical(**original, *restored->engine);

  // The strong property: applying the identical suffix to both engines
  // keeps them identical — the snapshot captured adjacency order, levels,
  // window and streak, not merely the answer.
  for (size_t i = kCut; i < workload.size(); ++i) {
    (*original)->Apply(workload[i]);
    restored->engine->Apply(workload[i]);
  }
  ExpectEnginesIdentical(**original, *restored->engine);
  std::remove(path.c_str());
}

TEST(SnapshotTest, CrashRecoveryMatchesUninterruptedRunAtManyOffsets) {
  if (!Failpoints::compiled_in()) {
    GTEST_SKIP() << "built with -DDENSEST_FAILPOINTS=OFF";
  }
  const NodeId kNodes = 70;
  std::vector<EdgeUpdate> workload = MakeWorkload(kNodes, 1200, 150, 9);
  DynamicDensestOptions opt;
  opt.epsilon = 0.6;

  ReplayOptions replay_opt;
  replay_opt.query_every = 0;
  replay_opt.batch_size = 64;
  replay_opt.snapshot_every = 100;

  // The reference: one uninterrupted run over the whole workload.
  auto uninterrupted = DynamicDensest::Create(kNodes, opt);
  ASSERT_TRUE(uninterrupted.ok());
  {
    MemoryUpdateStream stream(workload, kNodes);
    ReplayOptions clean = replay_opt;
    clean.snapshot_every = 0;
    ASSERT_TRUE(ReplayUpdates(stream, **uninterrupted, clean).ok());
  }

  // Crash at several distinct apply offsets (the failpoint counts run
  // boundaries, so different `after` values land at different updates),
  // restore from the snapshot on disk, replay the tail, and demand the
  // final state match the uninterrupted run bit for bit.
  for (uint64_t crash_after : {2u, 9u, 23u}) {
    const std::string path =
        TempPath("crash_" + std::to_string(crash_after));
    auto crashed = DynamicDensest::Create(kNodes, opt);
    ASSERT_TRUE(crashed.ok());
    ASSERT_TRUE(Failpoints::Instance()
                    .Set("replay.crash",
                         "after=" + std::to_string(crash_after) + ",times=1")
                    .ok());
    {
      MemoryUpdateStream stream(workload, kNodes);
      ReplayOptions crashing = replay_opt;
      crashing.snapshot_path = path;
      StatusOr<ReplayReport> r = ReplayUpdates(stream, **crashed, crashing);
      ASSERT_FALSE(r.ok());  // it really did die mid-stream
      EXPECT_NE(r.status().message().find("crash"), std::string::npos);
    }
    Failpoints::Instance().ClearAll();

    // Restart: restore the snapshot, resume the stream from its cursor.
    auto restored = ReadSnapshot(path, opt);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_GT(restored->cursor, 0u);
    EXPECT_LT(restored->cursor, workload.size());
    {
      MemoryUpdateStream stream(workload, kNodes);
      ReplayOptions resume = replay_opt;
      resume.snapshot_every = 0;
      resume.skip_updates = restored->cursor;
      StatusOr<ReplayReport> r =
          ReplayUpdates(stream, *restored->engine, resume);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(resume.skip_updates + r->updates, workload.size());
    }
    ExpectEnginesIdentical(**uninterrupted, *restored->engine);
    std::remove(path.c_str());
  }
}

TEST(SnapshotTest, CorruptedOrTornSnapshotFailsClosedToFullRebuild) {
  const NodeId kNodes = 50;
  std::vector<EdgeUpdate> workload = MakeWorkload(kNodes, 600, 100, 13);
  DynamicDensestOptions opt;
  auto engine = DynamicDensest::Create(kNodes, opt);
  ASSERT_TRUE(engine.ok());
  for (const EdgeUpdate& u : workload) (*engine)->Apply(u);
  const std::string path = TempPath("damage");
  ASSERT_TRUE(WriteSnapshot(path, **engine, workload.size()).ok());
  const auto size = std::filesystem::file_size(path);

  // Flip one byte mid-body: checksum catches it.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(size / 2), SEEK_SET);
    const char x = 0x5a;
    std::fwrite(&x, 1, 1, f);
    std::fclose(f);
  }
  auto corrupted = ReadSnapshot(path, opt);
  ASSERT_FALSE(corrupted.ok());
  EXPECT_EQ(corrupted.status().code(), Status::Code::kIOError);

  // Torn file (crash mid-write without the atomic rename): rejected.
  ASSERT_TRUE(WriteSnapshot(path, **engine, workload.size()).ok());
  std::filesystem::resize_file(path, size - 17);
  auto torn = ReadSnapshot(path, opt);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), Status::Code::kIOError);

  // Not a snapshot at all.
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[80] = "definitely not a snapshot";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  auto junked = ReadSnapshot(path, opt);
  ASSERT_FALSE(junked.ok());
  EXPECT_EQ(junked.status().code(), Status::Code::kIOError);

  // Missing file.
  std::remove(path.c_str());
  EXPECT_FALSE(ReadSnapshot(path, opt).ok());
}

TEST(SnapshotTest, MismatchedOptionsAreRefusedNotServed) {
  // A snapshot restored under a different epsilon would serve densities
  // whose certificates belong to another threshold grid; the answer
  // cross-check refuses it instead.
  const NodeId kNodes = 40;
  std::vector<EdgeUpdate> workload = MakeWorkload(kNodes, 500, 80, 3);
  DynamicDensestOptions wrote;
  wrote.epsilon = 0.75;
  auto engine = DynamicDensest::Create(kNodes, wrote);
  ASSERT_TRUE(engine.ok());
  for (const EdgeUpdate& u : workload) (*engine)->Apply(u);
  const std::string path = TempPath("options");
  ASSERT_TRUE(WriteSnapshot(path, **engine, workload.size()).ok());

  DynamicDensestOptions other = wrote;
  other.epsilon = 0.3;
  EXPECT_FALSE(ReadSnapshot(path, other).ok());
  // The matching options still restore fine.
  EXPECT_TRUE(ReadSnapshot(path, wrote).ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, FailedWriteLeavesThePreviousSnapshotIntact) {
  if (!Failpoints::compiled_in()) {
    GTEST_SKIP() << "built with -DDENSEST_FAILPOINTS=OFF";
  }
  const NodeId kNodes = 40;
  std::vector<EdgeUpdate> workload = MakeWorkload(kNodes, 500, 80, 7);
  DynamicDensestOptions opt;
  auto engine = DynamicDensest::Create(kNodes, opt);
  ASSERT_TRUE(engine.ok());
  const size_t kCut = workload.size() / 3;
  for (size_t i = 0; i < kCut; ++i) (*engine)->Apply(workload[i]);
  const std::string path = TempPath("atomic");
  ASSERT_TRUE(WriteSnapshot(path, **engine, kCut).ok());

  // The next snapshot dies mid-write; thanks to temp-file + rename the
  // previous one must still be on disk, whole and restorable.
  for (size_t i = kCut; i < workload.size(); ++i) (*engine)->Apply(workload[i]);
  ASSERT_TRUE(Failpoints::Instance().Set("snapshot.write", "after=0").ok());
  EXPECT_EQ(WriteSnapshot(path, **engine, workload.size()).code(),
            Status::Code::kIOError);
  Failpoints::Instance().ClearAll();

  auto restored = ReadSnapshot(path, opt);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->cursor, kCut);  // the OLD snapshot, not the torn new one
  std::remove(path.c_str());
}

TEST(SnapshotTest, RestoreValidatesDecodedStateInternally) {
  // FromSnapshotState rejects inconsistent pieces outright.
  DynamicDensestOptions opt;
  std::vector<std::vector<NodeId>> asym(3);
  asym[0] = {1};
  // missing the mirror entry 1 -> 0
  EXPECT_FALSE(DynamicDensest::FromSnapshotState(
                   3, opt, std::move(asym), 0,
                   {std::vector<uint16_t>(3, 0)}, 0, DynamicDensestStats{},
                   DynamicDensest::OverloadState{})
                   .ok());
  std::vector<std::vector<NodeId>> self(2);
  self[1] = {1};  // self-loop
  EXPECT_FALSE(DynamicDensest::FromSnapshotState(
                   2, opt, std::move(self), 0,
                   {std::vector<uint16_t>(2, 0)}, 0, DynamicDensestStats{},
                   DynamicDensest::OverloadState{})
                   .ok());
  std::vector<std::vector<NodeId>> empty_adj(2);
  // levels above the ladder
  EXPECT_FALSE(DynamicDensest::FromSnapshotState(
                   2, opt, std::move(empty_adj), 0,
                   {std::vector<uint16_t>(2, 60000)}, 0,
                   DynamicDensestStats{}, DynamicDensest::OverloadState{})
                   .ok());
}

}  // namespace
}  // namespace densest
