// Tests for Algorithm 2 (densest subgraph of size >= k).

#include "core/algorithm2.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <tuple>

#include "gen/erdos_renyi.h"
#include "gen/planted.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"

namespace densest {
namespace {

UndirectedGraph BuildUndirected(const EdgeList& e) {
  GraphBuilder b;
  b.ReserveNodes(e.num_nodes());
  for (const Edge& edge : e.edges()) b.Add(edge.u, edge.v, edge.w);
  return std::move(b.BuildUndirected()).value();
}

/// Reference oracle: max density over subsets with |S| >= k (n <= 20).
double BruteForceDensestAtLeastK(const UndirectedGraph& g, NodeId k) {
  const NodeId n = g.num_nodes();
  double best = 0;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    if (static_cast<NodeId>(std::popcount(mask)) < k) continue;
    NodeSet s(n);
    for (NodeId u = 0; u < n; ++u) {
      if (mask & (1u << u)) s.Insert(u);
    }
    best = std::max(best, InducedDensity(g, s));
  }
  return best;
}

TEST(Algorithm2Test, ReturnsAtLeastKNodes) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(200, 1200, 4));
  for (NodeId k : {1u, 10u, 50u, 150u, 200u}) {
    Algorithm2Options opt;
    opt.min_size = k;
    opt.epsilon = 0.5;
    auto r = RunAlgorithm2(g, opt);
    ASSERT_TRUE(r.ok()) << "k=" << k;
    EXPECT_GE(r->nodes.size(), k) << "k=" << k;
  }
}

TEST(Algorithm2Test, DensityMatchesReturnedNodes) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(150, 900, 8));
  Algorithm2Options opt;
  opt.min_size = 30;
  opt.epsilon = 0.5;
  auto r = RunAlgorithm2(g, opt);
  ASSERT_TRUE(r.ok());
  NodeSet s = NodeSet::FromVector(g.num_nodes(), r->nodes);
  EXPECT_NEAR(InducedDensity(g, s), r->density, 1e-9);
}

TEST(Algorithm2Test, FindsLargePlantedCommunityAboveK) {
  // Planted 24-node half-dense block in sparse noise; ask for k = 12.
  // Lemma 10 regime: |S*| > k, so the bound is (2+2eps).
  PlantedGraph pg = PlantDenseBlocks(400, 400, {{24, 0.8}}, 19);
  UndirectedGraph g = BuildUndirected(pg.edges);
  NodeSet planted = NodeSet::FromVector(g.num_nodes(), pg.blocks[0]);
  double planted_density = InducedDensity(g, planted);

  Algorithm2Options opt;
  opt.min_size = 12;
  opt.epsilon = 0.5;
  auto r = RunAlgorithm2(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->nodes.size(), 12u);
  EXPECT_GE(r->density * (2.0 + 2.0 * opt.epsilon),
            planted_density * (1.0 - 1e-9));
}

TEST(Algorithm2Test, KEqualsNReturnsWholeGraph) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(50, 200, 6));
  Algorithm2Options opt;
  opt.min_size = 50;
  opt.epsilon = 1.0;
  auto r = RunAlgorithm2(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes.size(), 50u);
  EXPECT_DOUBLE_EQ(r->density, g.Density());
}

TEST(Algorithm2Test, RejectsOversizedK) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(10, 20, 1));
  Algorithm2Options opt;
  opt.min_size = 11;
  EXPECT_FALSE(RunAlgorithm2(g, opt).ok());
}

TEST(Algorithm2Test, RejectsNegativeEpsilon) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(10, 20, 1));
  Algorithm2Options opt;
  opt.epsilon = -1;
  EXPECT_FALSE(RunAlgorithm2(g, opt).ok());
}

TEST(Algorithm2Test, PassBoundScalesWithNOverK) {
  // Lemma 11: O(log_{1+eps}(n/k)) passes; with k close to n this is tiny.
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(1000, 6000, 12));
  Algorithm2Options opt;
  opt.epsilon = 1.0;
  opt.min_size = 500;
  opt.record_trace = false;
  auto r = RunAlgorithm2(g, opt);
  ASSERT_TRUE(r.ok());
  double bound = std::log(1000.0 / 500.0) / std::log(2.0);
  EXPECT_LE(static_cast<double>(r->passes), bound + 3.0);
}

TEST(Algorithm2Test, RemovalQuotaIsFractionOfS) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(300, 1500, 3));
  Algorithm2Options opt;
  opt.epsilon = 1.0;  // quota = |S| / 2
  opt.min_size = 1;
  auto r = RunAlgorithm2(g, opt);
  ASSERT_TRUE(r.ok());
  for (const PassSnapshot& snap : r->trace) {
    // ceil(eps/(1+eps) |S|) with eps=1 is ceil(|S|/2).
    EXPECT_LE(snap.removed,
              static_cast<NodeId>((snap.nodes + 1) / 2));
  }
}

// ---- Guarantee sweep against the restricted brute-force oracle. ----

class Algorithm2GuaranteeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Algorithm2GuaranteeTest, ThreePlusThreeEpsGuarantee) {
  auto [seed, k] = GetParam();
  const double eps = 0.5;
  UndirectedGraph g = BuildUndirected(
      ErdosRenyiGnm(14, 40, static_cast<uint64_t>(seed)));
  double opt_k = BruteForceDensestAtLeastK(g, static_cast<NodeId>(k));

  Algorithm2Options opt;
  opt.min_size = static_cast<NodeId>(k);
  opt.epsilon = eps;
  auto r = RunAlgorithm2(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->nodes.size(), static_cast<size_t>(k));
  // Theorem 9: (3+3eps)-approximation of rho*_{>=k}.
  EXPECT_GE(r->density * (3.0 + 3.0 * eps), opt_k * (1.0 - 1e-9))
      << "seed=" << seed << " k=" << k;
  // Never above the restricted optimum.
  EXPECT_LE(r->density, opt_k + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(GuaranteeSweep, Algorithm2GuaranteeTest,
                         ::testing::Combine(::testing::Range(200, 210),
                                            ::testing::Values(2, 5, 8, 12)));

}  // namespace
}  // namespace densest
