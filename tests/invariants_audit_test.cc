// Tests for the brute-force structural audits added for the chaos harness:
// DegreeLevels::CheckInvariants must pass on every settled state a real
// workload can reach (churn, rebuilds, snapshot restores) and must DETECT
// state that disagrees with the adjacency it is audited against — an audit
// that cannot fail would make the chaos harness's green runs meaningless.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "dynamic/degree_levels.h"
#include "dynamic/dynamic_densest.h"
#include "gen/erdos_renyi.h"
#include "stream/update_stream.h"

namespace densest {
namespace {

TEST(CheckInvariantsTest, PassesOnSettledStatesUnderRandomChurn) {
  const NodeId n = 50;
  for (double d : {0.5, 2.0}) {
    DynamicAdjacency adj(n);
    DegreeLevels levels(n, d, 0.5, 16);
    Rng rng(static_cast<uint64_t>(d * 10) + 3);
    for (int step = 0; step < 3000; ++step) {
      const NodeId u = static_cast<NodeId>(rng.UniformU64(n));
      const NodeId v = static_cast<NodeId>(rng.UniformU64(n));
      if (u == v) continue;
      if (rng.Bernoulli(0.6)) {
        if (adj.Insert(u, v)) levels.OnInsert(u, v, adj);
      } else {
        if (adj.Erase(u, v)) levels.OnDelete(u, v, adj);
      }
      if (step % 250 == 249) {
        ASSERT_TRUE(levels.CheckInvariants(adj).ok())
            << levels.CheckInvariants(adj).ToString();
      }
    }
    EXPECT_TRUE(levels.CheckInvariants(adj).ok());
  }
}

TEST(CheckInvariantsTest, PassesAfterRebuild) {
  const NodeId n = 60;
  EdgeList edges = ErdosRenyiGnm(n, 400, 21);
  DynamicAdjacency adj(n);
  for (const Edge& e : edges.edges()) adj.Insert(e.u, e.v);
  DegreeLevels levels(n, 1.0, 0.4, 18);
  levels.Rebuild(adj);
  EXPECT_TRUE(levels.CheckInvariants(adj).ok());
}

TEST(CheckInvariantsTest, DetectsStateAdjacencyDisagreement) {
  // Corruption model: the structure's counters describe a graph that is
  // not the one it is audited against — exactly what a bug in the cascade
  // (or a torn restore) would produce. Build levels over one adjacency,
  // then audit against a mutated copy.
  const NodeId n = 30;
  EdgeList edges = ErdosRenyiGnm(n, 150, 23);
  DynamicAdjacency adj(n);
  DegreeLevels levels(n, 1.0, 0.5, 12);
  for (const Edge& e : edges.edges()) {
    if (adj.Insert(e.u, e.v)) levels.OnInsert(e.u, e.v, adj);
  }
  ASSERT_TRUE(levels.CheckInvariants(adj).ok());

  // An extra edge the levels never saw: per-node counters (and, depending
  // on levels, the aggregate edge minima) no longer match.
  DynamicAdjacency tampered(n);
  for (const Edge& e : edges.edges()) tampered.Insert(e.u, e.v);
  NodeId a = 0, b = 1;
  while (tampered.Contains(a, b)) {
    ++b;
    if (b == n) {
      ++a;
      b = a + 1;
    }
    ASSERT_LT(a, n - 1) << "graph unexpectedly complete";
  }
  ASSERT_TRUE(tampered.Insert(a, b));
  const Status audit = levels.CheckInvariants(tampered);
  EXPECT_FALSE(audit.ok());
  EXPECT_EQ(audit.code(), Status::Code::kInternal);

  // A missing edge is detected just as loudly.
  DynamicAdjacency missing(n);
  bool skipped_one = false;
  for (const Edge& e : edges.edges()) {
    if (!skipped_one) {
      skipped_one = true;
      continue;
    }
    missing.Insert(e.u, e.v);
  }
  EXPECT_FALSE(levels.CheckInvariants(missing).ok());
}

TEST(CheckInvariantsTest, EngineAuditCoversEverySlotAndNamesTheBadOne) {
  auto engine = DynamicDensest::Create(40);
  ASSERT_TRUE(engine.ok());
  EdgeList edges = ErdosRenyiGnm(40, 300, 29);
  uint64_t ts = 0;
  for (const Edge& e : edges.edges()) {
    (*engine)->Apply(InsertUpdate(e.u, e.v, ++ts));
  }
  EXPECT_TRUE((*engine)->CheckInvariants().ok());
  // Churn with deletes, audit again: the audit holds at every settled
  // point, not just after insert-only growth.
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const Edge& e = edges.edges()[rng.UniformU64(edges.num_edges())];
    (*engine)->Apply(rng.Bernoulli(0.5) ? InsertUpdate(e.u, e.v, ++ts)
                                        : DeleteUpdate(e.u, e.v, ++ts));
    if (i % 100 == 99) ASSERT_TRUE((*engine)->CheckInvariants().ok());
  }
  EXPECT_TRUE((*engine)->CheckInvariants().ok());
}

}  // namespace
}  // namespace densest
