// Unit tests for the chaos/soak harness itself: a small run must survive
// and report coherent totals, option validation must reject nonsense, and
// the fault-free degradation path (max_faults = 0) must still exercise
// band checks and audits.

#include "dynamic/chaos.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/failpoint.h"

namespace densest {
namespace {

ChaosOptions SmallOptions() {
  ChaosOptions opt;
  opt.schedules = 2;
  opt.seed = 77;
  opt.nodes = 40;
  opt.edges = 300;
  opt.window = 80;
  opt.checkpoint_every = 100;
  opt.snapshot_every = 50;
  opt.max_faults = 4;
  opt.batch_size = 32;
  return opt;
}

TEST(ChaosTest, SmallRunSurvivesAndReportsCoherentTotals) {
  const ChaosOptions opt = SmallOptions();
  StatusOr<ChaosReport> report = RunChaos(opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->failpoints_compiled_in, Failpoints::compiled_in());
  EXPECT_EQ(report->schedules, opt.schedules);
  ASSERT_EQ(report->outcomes.size(), opt.schedules);
  EXPECT_GT(report->total_band_checks, 0u);
  EXPECT_GT(report->total_invariant_audits, 0u);

  uint32_t faults = 0, kills = 0, rebuilds = 0;
  uint64_t bands = 0;
  for (uint32_t i = 0; i < opt.schedules; ++i) {
    const ChaosScheduleOutcome& o = report->outcomes[i];
    EXPECT_EQ(o.index, i);
    EXPECT_EQ(o.seed, opt.seed + i);
    EXPECT_GT(o.updates, 0u);
    EXPECT_LE(o.faults_injected, opt.max_faults);
    faults += o.faults_injected;
    kills += o.kills;
    rebuilds += o.full_rebuilds;
    bands += o.band_checks;
  }
  EXPECT_EQ(report->total_faults, faults);
  EXPECT_EQ(report->total_kills, kills);
  EXPECT_EQ(report->total_full_rebuilds, rebuilds);
  EXPECT_EQ(report->total_band_checks, bands);
}

TEST(ChaosTest, SameSeedIsDeterministic) {
  ChaosOptions opt = SmallOptions();
  opt.schedules = 1;
  StatusOr<ChaosReport> a = RunChaos(opt);
  StatusOr<ChaosReport> b = RunChaos(opt);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->outcomes.size(), 1u);
  ASSERT_EQ(b->outcomes.size(), 1u);
  EXPECT_EQ(a->outcomes[0].faults_injected, b->outcomes[0].faults_injected);
  EXPECT_EQ(a->outcomes[0].kills, b->outcomes[0].kills);
  EXPECT_EQ(a->outcomes[0].full_rebuilds, b->outcomes[0].full_rebuilds);
  EXPECT_EQ(a->outcomes[0].band_checks, b->outcomes[0].band_checks);
  EXPECT_EQ(a->outcomes[0].updates, b->outcomes[0].updates);
}

TEST(ChaosTest, FaultFreeSoakStillAuditsAndBandChecks) {
  ChaosOptions opt = SmallOptions();
  opt.schedules = 1;
  opt.max_faults = 0;
  StatusOr<ChaosReport> report = RunChaos(opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->total_faults, 0u);
  EXPECT_EQ(report->total_kills, 0u);
  EXPECT_GT(report->total_band_checks, 0u);
  EXPECT_GT(report->total_invariant_audits, 0u);
}

TEST(ChaosTest, RejectsInvalidOptions) {
  {
    ChaosOptions opt = SmallOptions();
    opt.schedules = 0;
    EXPECT_FALSE(RunChaos(opt).ok());
  }
  {
    ChaosOptions opt = SmallOptions();
    opt.nodes = 1;
    EXPECT_FALSE(RunChaos(opt).ok());
  }
  {
    ChaosOptions opt = SmallOptions();
    opt.edges = 0;
    EXPECT_FALSE(RunChaos(opt).ok());
  }
  {
    ChaosOptions opt = SmallOptions();
    opt.window = 0;
    EXPECT_FALSE(RunChaos(opt).ok());
  }
  {
    ChaosOptions opt = SmallOptions();
    opt.checkpoint_every = 0;
    EXPECT_FALSE(RunChaos(opt).ok());
  }
  {
    ChaosOptions opt = SmallOptions();
    opt.snapshot_every = 0;
    EXPECT_FALSE(RunChaos(opt).ok());
  }
  {
    ChaosOptions opt = SmallOptions();
    opt.batch_size = 0;
    EXPECT_FALSE(RunChaos(opt).ok());
  }
}

TEST(ChaosTest, VerboseLoggingWritesOneLinePerSchedule) {
  ChaosOptions opt = SmallOptions();
  std::ostringstream log;
  opt.log = &log;
  ASSERT_TRUE(RunChaos(opt).ok());
  EXPECT_FALSE(log.str().empty());
}

}  // namespace
}  // namespace densest
