// Tests for k-core decomposition and the max-core baseline.

#include "core/kcore.h"

#include <gtest/gtest.h>

#include "flow/goldberg.h"
#include "gen/erdos_renyi.h"
#include "gen/regular.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"

namespace densest {
namespace {

UndirectedGraph BuildUndirected(const EdgeList& e) {
  GraphBuilder b;
  b.ReserveNodes(e.num_nodes());
  for (const Edge& edge : e.edges()) b.Add(edge.u, edge.v, edge.w);
  return std::move(b.BuildUndirected()).value();
}

UndirectedGraph CliqueWithTail(NodeId clique, NodeId tail) {
  GraphBuilder b;
  for (NodeId i = 0; i < clique; ++i) {
    for (NodeId j = i + 1; j < clique; ++j) b.Add(i, j);
  }
  for (NodeId i = 0; i < tail; ++i) b.Add(clique - 1 + i, clique + i);
  return std::move(b.BuildUndirected()).value();
}

TEST(KCoreTest, CliqueCoreNumbers) {
  UndirectedGraph g = CliqueWithTail(5, 3);
  CoreDecomposition dec = KCoreDecomposition(g);
  EXPECT_EQ(dec.degeneracy, 4u);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(dec.core[u], 4u);
  for (NodeId u = 5; u < 8; ++u) EXPECT_EQ(dec.core[u], 1u);
}

TEST(KCoreTest, PathCoreNumbersAreOne) {
  GraphBuilder b;
  for (NodeId i = 0; i < 9; ++i) b.Add(i, i + 1);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  CoreDecomposition dec = KCoreDecomposition(g);
  EXPECT_EQ(dec.degeneracy, 1u);
  for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(dec.core[u], 1u);
}

TEST(KCoreTest, RegularGraphCoreEqualsDegree) {
  UndirectedGraph g = BuildUndirected(CirculantRegular(30, 6));
  CoreDecomposition dec = KCoreDecomposition(g);
  EXPECT_EQ(dec.degeneracy, 6u);
  for (NodeId u = 0; u < 30; ++u) EXPECT_EQ(dec.core[u], 6u);
}

TEST(KCoreTest, EmptyGraph) {
  UndirectedGraph g;
  CoreDecomposition dec = KCoreDecomposition(g);
  EXPECT_EQ(dec.degeneracy, 0u);
  EXPECT_TRUE(dec.core.empty());
}

TEST(KCoreTest, IsolatedNodesHaveCoreZero) {
  GraphBuilder b;
  b.Add(0, 1);
  b.ReserveNodes(4);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  CoreDecomposition dec = KCoreDecomposition(g);
  EXPECT_EQ(dec.core[2], 0u);
  EXPECT_EQ(dec.core[3], 0u);
}

/// Reference d-core: iteratively strip nodes with degree < d.
NodeSet ReferenceDCore(const UndirectedGraph& g, NodeId d) {
  NodeSet s(g.num_nodes(), /*full=*/true);
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (!s.Contains(u)) continue;
      NodeId deg = 0;
      for (NodeId v : g.Neighbors(u)) {
        if (v != u && s.Contains(v)) ++deg;
      }
      if (deg < d) {
        s.Remove(u);
        changed = true;
      }
    }
  }
  return s;
}

TEST(KCoreTest, DCoreMatchesIterativeStripping) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(100, 500, 77));
  for (NodeId d : {1u, 3u, 5u, 8u}) {
    NodeSet via_core = DCore(g, d);
    NodeSet reference = ReferenceDCore(g, d);
    EXPECT_EQ(via_core.size(), reference.size()) << "d=" << d;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_EQ(via_core.Contains(u), reference.Contains(u))
          << "d=" << d << " u=" << u;
    }
  }
}

TEST(KCoreTest, MaxCoreBaselineIsTwoApproximation) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(80, 600, 9));
  auto exact = ExactDensestSubgraph(g);
  ASSERT_TRUE(exact.ok());
  UndirectedDensestResult core = MaxCoreBaseline(g);
  EXPECT_GE(core.density * 2.0, exact->density * (1 - 1e-9));
  NodeSet s = NodeSet::FromVector(g.num_nodes(), core.nodes);
  EXPECT_NEAR(InducedDensity(g, s), core.density, 1e-9);
}

TEST(KCoreTest, MaxCoreDensityAtLeastHalfDegeneracy) {
  UndirectedGraph g = BuildUndirected(ErdosRenyiGnm(200, 1500, 13));
  CoreDecomposition dec = KCoreDecomposition(g);
  UndirectedDensestResult core = MaxCoreBaseline(g);
  EXPECT_GE(core.density, static_cast<double>(dec.degeneracy) / 2.0 - 1e-9);
}

}  // namespace
}  // namespace densest
