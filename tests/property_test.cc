// Cross-cutting property tests: invariances every implementation of the
// paper's algorithms must satisfy, plus failure injection on the IO paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <tuple>

#include "core/algorithm1.h"
#include "core/algorithm3.h"
#include "core/charikar.h"
#include "flow/brute_force.h"
#include "flow/goldberg.h"
#include "gen/erdos_renyi.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"
#include "stream/file_stream.h"
#include "stream/memory_stream.h"

namespace densest {
namespace {

UndirectedGraph BuildUndirected(const EdgeList& e) {
  GraphBuilder b;
  b.ReserveNodes(e.num_nodes());
  for (const Edge& edge : e.edges()) b.Add(edge.u, edge.v, edge.w);
  return std::move(b.BuildUndirected()).value();
}

// ---- Stream-order invariance: one pass accumulates degree counters, so
// any permutation of the edges must give identical results. ----

class OrderInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(OrderInvarianceTest, ShuffledStreamGivesIdenticalResult) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  EdgeList el = ErdosRenyiGnm(300, 2400, seed);
  EdgeList shuffled = el;
  Rng rng(seed ^ 0xabc);
  rng.Shuffle(shuffled.mutable_edges());

  Algorithm1Options opt;
  opt.epsilon = 0.5;
  EdgeListStream a(el), b(shuffled);
  auto ra = RunAlgorithm1(a, opt);
  auto rb = RunAlgorithm1(b, opt);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->nodes, rb->nodes);
  EXPECT_DOUBLE_EQ(ra->density, rb->density);
  EXPECT_EQ(ra->passes, rb->passes);
}

INSTANTIATE_TEST_SUITE_P(Shuffles, OrderInvarianceTest,
                         ::testing::Range(900, 906));

// ---- Relabeling invariance: densities are label-free. ----

class RelabelInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(RelabelInvarianceTest, PermutedLabelsPreserveDensity) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  EdgeList el = ErdosRenyiGnm(120, 800, seed);
  const NodeId n = 120;
  std::vector<NodeId> perm(n);
  for (NodeId i = 0; i < n; ++i) perm[i] = i;
  Rng rng(seed ^ 0x9);
  rng.Shuffle(perm);

  EdgeList relabeled(n);
  for (const Edge& e : el.edges()) relabeled.Add(perm[e.u], perm[e.v]);

  UndirectedGraph g1 = BuildUndirected(el);
  UndirectedGraph g2 = BuildUndirected(relabeled);

  auto e1 = ExactDensestSubgraph(g1);
  auto e2 = ExactDensestSubgraph(g2);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_NEAR(e1->density, e2->density, 1e-9);

  CharikarResult c1 = CharikarPeel(g1);
  CharikarResult c2 = CharikarPeel(g2);
  EXPECT_NEAR(c1.best.density, c2.best.density, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Relabels, RelabelInvarianceTest,
                         ::testing::Range(910, 916));

// ---- Weight scaling: scaling all weights by w scales every density by w
// and leaves the chosen subgraphs unchanged. ----

class WeightScalingTest : public ::testing::TestWithParam<double> {};

TEST_P(WeightScalingTest, UniformScaleActsLinearly) {
  const double scale = GetParam();
  EdgeList el = ErdosRenyiGnm(150, 900, 77);
  EdgeList scaled(el.num_nodes());
  for (const Edge& e : el.edges()) scaled.Add(e.u, e.v, scale);

  Algorithm1Options opt;
  opt.epsilon = 0.5;
  auto plain = RunAlgorithm1(BuildUndirected(el), opt);
  auto weighted = RunAlgorithm1(BuildUndirected(scaled), opt);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(weighted.ok());
  EXPECT_EQ(plain->nodes, weighted->nodes);
  EXPECT_NEAR(weighted->density, scale * plain->density,
              1e-9 * scale * plain->density);

  auto exact_plain = ExactDensestSubgraph(BuildUndirected(el));
  auto exact_scaled = ExactDensestSubgraph(BuildUndirected(scaled));
  ASSERT_TRUE(exact_plain.ok());
  ASSERT_TRUE(exact_scaled.ok());
  EXPECT_NEAR(exact_scaled->density, scale * exact_plain->density,
              1e-7 * scale * exact_plain->density);
}

INSTANTIATE_TEST_SUITE_P(Scales, WeightScalingTest,
                         ::testing::Values(0.5, 2.0, 16.0, 1000.0));

// ---- Symmetrization: for a symmetric digraph, rho_dir(S,S) counts each
// undirected edge twice, so the directed optimum is at least twice the
// undirected optimum. ----

class SymmetrizationTest : public ::testing::TestWithParam<int> {};

TEST_P(SymmetrizationTest, DirectedOptimumAtLeastTwiceUndirected) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  EdgeList undirected = ErdosRenyiGnm(10, 22, seed);
  EdgeList arcs(10);
  for (const Edge& e : undirected.edges()) {
    arcs.Add(e.u, e.v);
    arcs.Add(e.v, e.u);
  }
  UndirectedGraph ug = BuildUndirected(undirected);
  DirectedGraph dg = DirectedGraph::FromEdgeList(arcs);

  auto und = BruteForceDensest(ug);
  auto dir = BruteForceDensestDirected(dg);
  ASSERT_TRUE(und.ok());
  ASSERT_TRUE(dir.ok());
  EXPECT_GE(dir->density, 2.0 * und->density - 1e-9) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Symmetrize, SymmetrizationTest,
                         ::testing::Range(920, 928));

// ---- Monotonicity: adding an edge never decreases rho*. ----

class EdgeMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(EdgeMonotonicityTest, AddingEdgesNeverDecreasesOptimum) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  EdgeList el = ErdosRenyiGnm(60, 200, seed);
  UndirectedGraph before = BuildUndirected(el);
  auto rho_before = ExactDensestSubgraph(before);
  ASSERT_TRUE(rho_before.ok());

  // Add 20 fresh random edges.
  Rng rng(seed ^ 0x77);
  EdgeList extended = el;
  for (int i = 0; i < 20; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformU64(60));
    NodeId v = static_cast<NodeId>(rng.UniformU64(60));
    if (u != v) extended.Add(u, v);
  }
  UndirectedGraph after = BuildUndirected(extended);
  auto rho_after = ExactDensestSubgraph(after);
  ASSERT_TRUE(rho_after.ok());
  EXPECT_GE(rho_after->density, rho_before->density - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Monotone, EdgeMonotonicityTest,
                         ::testing::Range(930, 936));

// ---- Failure injection on the binary edge file reader. ----

TEST(FileFailureTest, TruncatedFileYieldsFewerEdgesNotCorruption) {
  std::string path = ::testing::TempDir() + "/truncated.bin";
  EdgeList el = ErdosRenyiGnm(100, 500, 3);
  ASSERT_TRUE(WriteBinaryEdgeFile(path, el, false).ok());

  // Chop off the last 100 bytes (12.5 records).
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() - 100));
  }

  auto stream = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());  // header is intact
  Edge e;
  EdgeId count = 0;
  (*stream)->Reset();
  while ((*stream)->Next(&e)) {
    EXPECT_LT(e.u, 100u);  // no garbage records
    EXPECT_LT(e.v, 100u);
    ++count;
  }
  EXPECT_LT(count, 500u);
  EXPECT_GE(count, 487u);  // only the tail is lost
  std::remove(path.c_str());
}

TEST(FileFailureTest, HeaderOnlyFileYieldsNoEdges) {
  std::string path = ::testing::TempDir() + "/header_only.bin";
  EdgeList el(10);  // zero edges
  ASSERT_TRUE(WriteBinaryEdgeFile(path, el, false).ok());
  auto stream = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());
  Edge e;
  (*stream)->Reset();
  EXPECT_FALSE((*stream)->Next(&e));
  std::remove(path.c_str());
}

// ---- Directed peel: S~ and T~ sizes respect the c regime loosely: for
// extreme c the surviving side collapses fast. ----

TEST(DirectedRegimeTest, PeeledSideFollowsSizeRatioRule) {
  EdgeList arcs = ErdosRenyiDirectedGnm(200, 2000, 5);
  DirectedGraph g = DirectedGraph::FromEdgeList(arcs);
  for (double c : {0.01, 1.0, 200.0}) {
    Algorithm3Options opt;
    opt.c = c;
    opt.epsilon = 1.0;
    auto r = RunAlgorithm3(g, opt);
    ASSERT_TRUE(r.ok());
    for (const auto& snap : r->trace) {
      // The pass-start sizes decide the side: peel S iff |S|/|T| >= c.
      bool should_peel_s = static_cast<double>(snap.s_size) /
                               static_cast<double>(snap.t_size) >=
                           c;
      EXPECT_EQ(snap.removed_from_s, should_peel_s)
          << "c=" << c << " pass=" << snap.pass;
    }
  }
}

}  // namespace
}  // namespace densest
