// Equivalence tests for the fused sketched sweep (sketch/sketch_runs.h):
// a fused Table 4 grid — sketch oracles of several dimensions and seeds
// plus the exact-counting baseline — must produce results bit-identical to
// sequential RunAlgorithm1WithOracle / RunSketchedAlgorithm1 calls, across
// 1..8 fan-out threads, both fan-out modes (run-major and work-major),
// and weighted streams, while physically scanning the stream only
// max-over-runs(passes) times.

#include "sketch/sketch_runs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/algorithm1.h"
#include "gen/erdos_renyi.h"
#include "graph/graph_builder.h"
#include "sketch/degree_oracle.h"
#include "sketch/sketched_algorithm1.h"
#include "stream/file_stream.h"
#include "stream/memory_stream.h"
#include "stream/pass_stats.h"

namespace densest {
namespace {

void ExpectSameSketched(const SketchedResult& seq, const SketchedResult& fused,
                        const std::string& label) {
  EXPECT_EQ(seq.result.density, fused.result.density) << label;  // bits
  EXPECT_EQ(seq.result.passes, fused.result.passes) << label;
  EXPECT_EQ(seq.result.io_passes, fused.result.io_passes) << label;
  EXPECT_EQ(seq.result.nodes, fused.result.nodes) << label;
  EXPECT_EQ(seq.oracle_state_words, fused.oracle_state_words) << label;
  EXPECT_EQ(seq.memory_ratio, fused.memory_ratio) << label;
  ASSERT_EQ(seq.result.trace.size(), fused.result.trace.size()) << label;
  for (size_t i = 0; i < seq.result.trace.size(); ++i) {
    EXPECT_EQ(seq.result.trace[i].weight, fused.result.trace[i].weight)
        << label;
    EXPECT_EQ(seq.result.trace[i].density, fused.result.trace[i].density)
        << label;
    EXPECT_EQ(seq.result.trace[i].threshold, fused.result.trace[i].threshold)
        << label;
    EXPECT_EQ(seq.result.trace[i].removed, fused.result.trace[i].removed)
        << label;
  }
}

/// A Table 4-shaped grid: sketches of several dimensions/seeds at several
/// epsilons, plus the exact-counting baseline per epsilon.
std::vector<SketchedSweepRun> SketchGrid() {
  std::vector<SketchedSweepRun> grid;
  for (double eps : {0.0, 0.5, 1.5}) {
    SketchedSweepRun exact;
    exact.options.epsilon = eps;
    exact.exact = true;
    grid.push_back(exact);
    int i = 0;
    for (int buckets : {64, 256, 1024}) {
      SketchedSweepRun run;
      run.options.epsilon = eps;
      run.sketch.tables = 5;
      run.sketch.buckets = buckets;
      run.sketch_seed = 0x5eed + i++;
      grid.push_back(run);
    }
  }
  return grid;
}

/// Sequential twin of one grid entry, via the original per-run drivers.
StatusOr<SketchedResult> RunSequential(EdgeStream& stream,
                                       const SketchedSweepRun& run) {
  if (run.exact) {
    ExactDegreeOracle oracle(stream.num_nodes());
    return RunAlgorithm1WithOracle(stream, oracle, run.options);
  }
  return RunSketchedAlgorithm1(stream, run.sketch, run.sketch_seed,
                               run.options);
}

void CheckSketchedEquivalence(EdgeStream& stream, const std::string& label) {
  const std::vector<SketchedSweepRun> grid = SketchGrid();

  std::vector<SketchedResult> seq;
  for (const SketchedSweepRun& run : grid) {
    auto r = RunSequential(stream, run);
    ASSERT_TRUE(r.ok()) << label << ": " << r.status().ToString();
    seq.push_back(std::move(*r));
  }

  for (MultiRunFanOut fan_out :
       {MultiRunFanOut::kAuto, MultiRunFanOut::kRunMajor,
        MultiRunFanOut::kWorkMajor}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      MultiRunEngine engine(
          MultiRunOptions{.num_threads = threads, .fan_out = fan_out});
      auto fused = RunSketchedSweep(stream, grid, &engine);
      ASSERT_TRUE(fused.ok()) << label;
      ASSERT_EQ(fused->size(), grid.size()) << label;
      uint64_t max_passes = 0;
      for (size_t i = 0; i < grid.size(); ++i) {
        ExpectSameSketched(
            seq[i], (*fused)[i],
            label + " fan_out=" + std::to_string(static_cast<int>(fan_out)) +
                " threads=" + std::to_string(threads) +
                " run=" + std::to_string(i));
        max_passes = std::max(max_passes, (*fused)[i].result.passes);
      }
      // The fused sweep scans once per pass round: exactly the longest run.
      EXPECT_EQ(engine.last_physical_passes(), max_passes) << label;
      EXPECT_GT(engine.last_logical_passes(), 0u) << label;
    }
  }
}

TEST(SketchFusionTest, EdgeListStream) {
  EdgeList el = ErdosRenyiGnm(300, 4000, 101);
  EdgeListStream stream(el);
  CheckSketchedEquivalence(stream, "edge-list");
}

TEST(SketchFusionTest, WeightedEdgeListStream) {
  EdgeList el = ErdosRenyiGnm(250, 3500, 103);
  Rng rng(107);
  for (Edge& e : el.mutable_edges()) e.w = 0.25 + rng.UniformDouble();
  EdgeListStream stream(el);
  CheckSketchedEquivalence(stream, "weighted-edge-list");
}

TEST(SketchFusionTest, UndirectedGraphStream) {
  GraphBuilder b;
  EdgeList el = ErdosRenyiGnm(300, 4000, 109);
  for (const Edge& e : el.edges()) b.Add(e.u, e.v);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  UndirectedGraphStream stream(g);
  CheckSketchedEquivalence(stream, "csr");
}

TEST(SketchFusionTest, WeightedCsrStreamNeedsNoFallback) {
  // Weighted + CSR view is the one shape where the PLANE-based fused runs
  // need a run-by-run fallback; the sketched runs accumulate in stream
  // order on both paths, so they are bit-identical here with no fallback.
  GraphBuilder b;
  EdgeList el = ErdosRenyiGnm(200, 2500, 113);
  Rng rng(127);
  for (const Edge& e : el.edges()) b.Add(e.u, e.v, 0.5 + rng.UniformDouble());
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  UndirectedGraphStream stream(g);
  CheckSketchedEquivalence(stream, "weighted-csr");
}

class SketchFusionFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(SketchFusionFileTest, BinaryFileStream) {
  path_ = ::testing::TempDir() + "/sketch_fusion.bin";
  EdgeList el = ErdosRenyiGnm(200, 3000, 131);
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, /*weighted=*/false).ok());
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  CheckSketchedEquivalence(**stream, "file");
}

TEST(SketchFusionTest, ScanAccountingMatchesCountingStream) {
  EdgeList el = ErdosRenyiGnm(400, 6000, 137);
  EdgeListStream inner(el);
  PassStats stats;
  CountingEdgeStream stream(inner, stats);

  MultiRunEngine engine;
  auto fused = RunSketchedSweep(stream, SketchGrid(), &engine);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(engine.last_physical_passes(), stats.passes);
  EXPECT_EQ(engine.last_edges_scanned(), stats.edges_scanned);
  // The whole grid shares scans: strictly fewer than run-by-run.
  EXPECT_LT(engine.last_physical_passes(), engine.last_logical_passes());
}

// ---------------------------------------------------------------------------
// Degenerate shapes the fusion exposes.

TEST(SketchFusionDegenerateTest, EmptyGridYieldsEmptyResults) {
  EdgeList el = ErdosRenyiGnm(50, 200, 139);
  EdgeListStream stream(el);
  MultiRunEngine engine;
  auto r = RunSketchedSweep(stream, {}, &engine);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(engine.last_physical_passes(), 0u);
}

TEST(SketchFusionDegenerateTest, EmptyGraphIsInvalidNotNaN) {
  EdgeList el(0);  // n == 0: memory_ratio would divide by zero
  EdgeListStream stream(el);
  std::vector<SketchedSweepRun> grid(1);
  auto fused = RunSketchedSweep(stream, grid);
  ASSERT_FALSE(fused.ok());
  EXPECT_EQ(fused.status().code(), Status::Code::kInvalidArgument);

  Algorithm1Options opt;
  auto seq = RunSketchedAlgorithm1(stream, CountSketchOptions{}, 1, opt);
  ASSERT_FALSE(seq.ok());
  EXPECT_EQ(seq.status().code(), Status::Code::kInvalidArgument);
}

TEST(SketchFusionDegenerateTest, EdgelessGraphFinishesCleanly) {
  // n > 0 but zero edges: density 0, no NaN anywhere, fused == sequential.
  EdgeList el(10);
  EdgeListStream stream(el);
  std::vector<SketchedSweepRun> grid(1);
  grid[0].sketch.buckets = 64;

  auto seq = RunSequential(stream, grid[0]);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->result.density, 0.0);

  auto fused = RunSketchedSweep(stream, grid);
  ASSERT_TRUE(fused.ok());
  ExpectSameSketched(*seq, (*fused)[0], "edgeless");
  EXPECT_TRUE(std::isfinite((*fused)[0].memory_ratio));
}

TEST(SketchFusionDegenerateTest, BadSketchDimensionsRejected) {
  EdgeList el = ErdosRenyiGnm(50, 200, 149);
  EdgeListStream stream(el);
  std::vector<SketchedSweepRun> grid(1);
  grid[0].sketch.tables = 0;
  auto r = RunSketchedSweep(stream, grid);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(SketchFusionDegenerateTest, NegativeEpsilonRejected) {
  EdgeList el = ErdosRenyiGnm(50, 200, 151);
  EdgeListStream stream(el);
  std::vector<SketchedSweepRun> grid(1);
  grid[0].options.epsilon = -0.5;
  auto r = RunSketchedSweep(stream, grid);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(SketchFusionDegenerateTest, TruncatedFileSurfacesIOError) {
  const std::string path = ::testing::TempDir() + "/sketch_fusion_trunc.bin";
  EdgeList el = ErdosRenyiGnm(500, 8000, 157);
  ASSERT_TRUE(WriteBinaryEdgeFile(path, el, /*weighted=*/false).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 2000 * 8);

  auto stream = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());
  std::vector<SketchedSweepRun> grid(2);
  grid[0].exact = true;
  grid[1].sketch.buckets = 128;
  auto r = RunSketchedSweep(**stream, grid);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace densest
