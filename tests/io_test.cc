// Unit tests for text edge-list IO and the CSV writer.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "io/csv_writer.h"
#include "io/edge_list_io.h"

namespace densest {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(IoTest, EdgeListTextRoundTrip) {
  path_ = ::testing::TempDir() + "/edges.txt";
  EdgeList e(4);
  e.Add(0, 1);
  e.Add(2, 3);
  ASSERT_TRUE(WriteEdgeListText(path_, e).ok());
  auto back = ReadEdgeListText(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_edges(), 2u);
  EXPECT_EQ(back->num_nodes(), 4u);
  EXPECT_EQ(back->edges()[1].u, 2u);
}

TEST_F(IoTest, WeightedRoundTrip) {
  path_ = ::testing::TempDir() + "/wedges.txt";
  EdgeList e(2);
  e.Add(0, 1, 3.5);
  ASSERT_TRUE(WriteEdgeListText(path_, e, /*weighted=*/true).ok());
  auto back = ReadEdgeListText(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->edges()[0].w, 3.5);
}

TEST_F(IoTest, SkipsCommentsAndBlankLines) {
  path_ = ::testing::TempDir() + "/comments.txt";
  std::ofstream out(path_);
  out << "# SNAP-style comment\n\n% matrix-market comment\n5 6\n";
  out.close();
  auto back = ReadEdgeListText(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_edges(), 1u);
  EXPECT_EQ(back->num_nodes(), 7u);
}

TEST_F(IoTest, RejectsMalformedLine) {
  path_ = ::testing::TempDir() + "/bad.txt";
  std::ofstream out(path_);
  out << "1 2\nnot an edge\n";
  out.close();
  auto back = ReadEdgeListText(path_);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(back.status().message().find(":2"), std::string::npos);
}

TEST_F(IoTest, RejectsNegativeIds) {
  path_ = ::testing::TempDir() + "/neg.txt";
  std::ofstream out(path_);
  out << "-1 2\n";
  out.close();
  EXPECT_FALSE(ReadEdgeListText(path_).ok());
}

TEST_F(IoTest, MissingFileIsIOError) {
  auto r = ReadEdgeListText("/nonexistent/void.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
}

TEST_F(IoTest, CsvWriterQuotesSpecialValues) {
  path_ = ::testing::TempDir() + "/out.csv";
  {
    auto w = CsvWriter::Open(path_, {"name", "value"});
    ASSERT_TRUE(w.ok());
    w->AddRow({"plain", "1"});
    w->AddRow({"with,comma", "2"});
    w->AddRow({"with\"quote", "3"});
  }
  std::ifstream in(path_);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string content = ss.str();
  EXPECT_NE(content.find("name,value\n"), std::string::npos);
  EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"with\"\"quote\""), std::string::npos);
}

TEST_F(IoTest, CsvNumFormatsCompactly) {
  EXPECT_EQ(CsvWriter::Num(1.5), "1.5");
  EXPECT_EQ(CsvWriter::Num(2), "2");
}

}  // namespace
}  // namespace densest
