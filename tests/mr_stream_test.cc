// Tests for the out-of-core MapReduce substrate: stream-backed job inputs
// (StreamRecordSource over every stream type), the spill path of the
// shuffle, and the drivers' bit-for-bit equivalence with the streaming
// algorithms on file- and generator-backed inputs.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "core/algorithm1.h"
#include "core/algorithm3.h"
#include "gen/erdos_renyi.h"
#include "mapreduce/graph_jobs.h"
#include "mapreduce/job.h"
#include "mapreduce/mr_densest.h"
#include "mapreduce/stream_source.h"
#include "stream/file_stream.h"
#include "stream/generated_stream.h"
#include "stream/memory_stream.h"
#include "stream/pass_cursor.h"

namespace densest {
namespace {

// ---- RecordSource plumbing. ----

TEST(StreamRecordSourceTest, DeliversEveryEdgeAndCountsScans) {
  EdgeList el = ErdosRenyiGnm(200, 1000, 11);
  EdgeListStream stream(el);
  PassCursor cursor(stream);
  StreamRecordSource source(cursor);

  for (int scan = 1; scan <= 2; ++scan) {
    source.Reset();
    std::vector<KV<NodeId, NodeId>> got;
    KV<NodeId, NodeId> buf[64];
    size_t n;
    while ((n = source.FillChunk(buf, 64)) > 0) {
      got.insert(got.end(), buf, buf + n);
    }
    ASSERT_EQ(got.size(), el.num_edges());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].key, el.edges()[i].u);
      EXPECT_EQ(got[i].value, el.edges()[i].v);
    }
    EXPECT_EQ(cursor.passes(), static_cast<uint64_t>(scan));
  }
}

TEST(ChainRecordSourceTest, ConcatenatesInOrderAndResets) {
  std::vector<KV<NodeId, NodeId>> a = {{1, 2}, {3, 4}};
  std::vector<KV<NodeId, NodeId>> b = {{5, 6}};
  VectorRecordSource<NodeId, NodeId> sa(a), sb(b);
  ChainRecordSource<NodeId, NodeId> chain(sa, sb);
  for (int round = 0; round < 2; ++round) {
    chain.Reset();
    std::vector<KV<NodeId, NodeId>> got;
    KV<NodeId, NodeId> buf[8];
    size_t n;
    while ((n = chain.FillChunk(buf, 8)) > 0) got.insert(got.end(), buf, buf + n);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].key, 1u);
    EXPECT_EQ(got[2].key, 5u);
  }
  EXPECT_EQ(chain.SizeHint(), 3u);
}

// ---- Spill path: identical results with and without spilling. ----

std::vector<KV<NodeId, EdgeId>> RunDegreeJob(const MrEdges& edges,
                                             uint64_t budget,
                                             JobStats* stats) {
  MapReduceEnv env({}, 4);
  VectorRecordSource<NodeId, NodeId> source(edges);
  JobOptions opts;
  opts.spill_budget_bytes = budget;
  auto out = MrDegreeJobCombined(env, source, opts, stats);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return std::move(*out);
}

TEST(SpillShuffleTest, EveryPartitionSpillsAndOutputIsByteIdentical) {
  EdgeList el = ErdosRenyiGnm(400, 5000, 21);
  MrEdges edges = ToMrEdges(el.edges());

  JobStats in_memory_stats, spilled_stats;
  auto in_memory = RunDegreeJob(edges, 0, &in_memory_stats);
  // A 1-byte budget gives every partition a share below one record: every
  // append spills, so the whole shuffle goes through disk.
  auto spilled = RunDegreeJob(edges, 1, &spilled_stats);

  EXPECT_EQ(in_memory_stats.spill_bytes_written, 0u);
  EXPECT_GT(spilled_stats.spill_bytes_written, 0u);
  EXPECT_EQ(spilled_stats.spill_bytes_read,
            spilled_stats.spill_bytes_written);
  EXPECT_GT(spilled_stats.spill_runs, 0u);
  // Identical chunking on both sides: the output must match record for
  // record, in order — the merge-read reproduces the stable sort exactly.
  ASSERT_EQ(spilled.size(), in_memory.size());
  for (size_t i = 0; i < spilled.size(); ++i) {
    EXPECT_EQ(spilled[i].key, in_memory[i].key) << "i=" << i;
    EXPECT_EQ(spilled[i].value, in_memory[i].value) << "i=" << i;
  }
  // The spilled run costs more simulated time (spill IO is charged).
  EXPECT_GT(spilled_stats.simulated_seconds,
            in_memory_stats.simulated_seconds);
}

TEST(SpillShuffleTest, OutputOrderInvariantAcrossThreadCountsAndBudgets) {
  // Partition count and chunk boundaries are fixed constants, never
  // derived from the thread count — so the output matches record for
  // record, in order, with no sorting, for every (threads, budget) pair.
  EdgeList el = ErdosRenyiGnm(300, 4000, 22);
  MrEdges edges = ToMrEdges(el.edges());
  auto reference = RunDegreeJob(edges, 0, nullptr);
  for (size_t threads : {1u, 3u, 8u}) {
    for (uint64_t budget : {uint64_t{1}, uint64_t{1} << 12, uint64_t{0}}) {
      MapReduceEnv env({}, threads);
      VectorRecordSource<NodeId, NodeId> source(edges);
      JobOptions opts;
      opts.spill_budget_bytes = budget;
      auto out = MrDegreeJobCombined(env, source, opts, nullptr);
      ASSERT_TRUE(out.ok());
      ASSERT_EQ(out->size(), reference.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ((*out)[i].key, reference[i].key)
            << "threads=" << threads << " budget=" << budget << " i=" << i;
        EXPECT_EQ((*out)[i].value, reference[i].value);
      }
    }
  }
}

// ---- Driver equivalence with streaming, on every stream type. ----

void ExpectMrMatchesStreaming(EdgeStream& stream, double epsilon,
                              uint64_t spill_budget) {
  Algorithm1Options stream_opt;
  stream_opt.epsilon = epsilon;
  auto streaming = RunAlgorithm1(stream, stream_opt);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();

  MapReduceEnv env;
  MrDensestOptions mr_opt;
  mr_opt.epsilon = epsilon;
  mr_opt.spill_budget_bytes = spill_budget;
  auto mr = RunMrDensestUndirected(env, stream, mr_opt);
  ASSERT_TRUE(mr.ok()) << mr.status().ToString();

  EXPECT_EQ(mr->result.nodes, streaming->nodes);
  EXPECT_DOUBLE_EQ(mr->result.density, streaming->density);
  EXPECT_EQ(mr->result.passes, streaming->passes);
  EXPECT_GT(mr->input_scans, 0u);
}

TEST(MrStreamEquivalenceTest, EdgeListStream) {
  EdgeList el = ErdosRenyiGnm(150, 900, 31);
  EdgeListStream stream(el);
  ExpectMrMatchesStreaming(stream, 0.5, 0);
}

TEST(MrStreamEquivalenceTest, BinaryFileStream) {
  const std::string path = ::testing::TempDir() + "/mr_equiv_edges.bin";
  EdgeList el = ErdosRenyiGnm(150, 900, 32);
  ASSERT_TRUE(WriteBinaryEdgeFile(path, el, /*weighted=*/false).ok());
  auto stream = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());
  ExpectMrMatchesStreaming(**stream, 0.5, 0);
  std::remove(path.c_str());
}

TEST(MrStreamEquivalenceTest, BinaryFileStreamUnderTinySpillBudget) {
  // The acceptance configuration: a disk-backed input plus a shuffle
  // budget far below the graph's total KV footprint, so the degree jobs
  // must spill — and the answer still matches streaming bit for bit.
  const std::string path = ::testing::TempDir() + "/mr_equiv_spill.bin";
  EdgeList el = ErdosRenyiGnm(200, 3000, 33);
  ASSERT_TRUE(WriteBinaryEdgeFile(path, el, /*weighted=*/false).ok());
  auto stream = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());
  ExpectMrMatchesStreaming(**stream, 1.0, /*spill_budget=*/256);

  MapReduceEnv env;
  MrDensestOptions opt;
  opt.epsilon = 1.0;
  opt.spill_budget_bytes = 256;
  auto mr = RunMrDensestUndirected(env, **stream, opt);
  ASSERT_TRUE(mr.ok());
  EXPECT_GT(mr->totals.spill_bytes_written, 0u);
  std::remove(path.c_str());
}

TEST(MrStreamEquivalenceTest, GnpGeneratorStream) {
  GnpEdgeStream stream(120, 0.08, 41);
  ExpectMrMatchesStreaming(stream, 0.5, 0);
}

TEST(MrStreamEquivalenceTest, CirculantGeneratorStream) {
  CirculantEdgeStream stream(128, 6);
  ExpectMrMatchesStreaming(stream, 0.0, 0);
}

TEST(MrStreamEquivalenceTest, FirstPassScanAccounting) {
  // Pass 1 runs three stream-scanning jobs (density, degrees, removal pass
  // 1); after the removal job materializes survivors, no job touches the
  // stream again.
  EdgeList el = ErdosRenyiGnm(100, 600, 42);
  EdgeListStream stream(el);
  MapReduceEnv env;
  MrDensestOptions opt;
  opt.epsilon = 0.5;
  auto mr = RunMrDensestUndirected(env, stream, opt);
  ASSERT_TRUE(mr.ok());
  EXPECT_GT(mr->result.passes, 1u);
  EXPECT_EQ(mr->input_scans, 3u);
}

TEST(MrDirectedStreamEquivalenceTest, BinaryFileArcStream) {
  const std::string path = ::testing::TempDir() + "/mr_equiv_arcs.bin";
  EdgeList el = ErdosRenyiDirectedGnm(120, 900, 51);
  ASSERT_TRUE(WriteBinaryEdgeFile(path, el, /*weighted=*/false).ok());
  auto stream = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());

  Algorithm3Options stream_opt;
  stream_opt.c = 2.0;
  stream_opt.epsilon = 1.0;
  auto streaming = RunAlgorithm3(**stream, stream_opt);
  ASSERT_TRUE(streaming.ok());

  MapReduceEnv env;
  MrDirectedOptions mr_opt;
  mr_opt.c = 2.0;
  mr_opt.epsilon = 1.0;
  mr_opt.spill_budget_bytes = 512;  // force spilling on top
  auto mr = RunMrDensestDirected(env, **stream, mr_opt);
  ASSERT_TRUE(mr.ok());

  EXPECT_EQ(mr->result.s_nodes, streaming->s_nodes);
  EXPECT_EQ(mr->result.t_nodes, streaming->t_nodes);
  EXPECT_DOUBLE_EQ(mr->result.density, streaming->density);
  EXPECT_EQ(mr->result.passes, streaming->passes);
  std::remove(path.c_str());
}

// ---- IO failure: truncated inputs abort the job, not the answer. ----

TEST(MrStreamFailureTest, TruncatedBinaryInputSurfacesIOError) {
  const std::string path = ::testing::TempDir() + "/mr_truncated.bin";
  EdgeList el = ErdosRenyiGnm(200, 2000, 61);
  ASSERT_TRUE(WriteBinaryEdgeFile(path, el, /*weighted=*/false).ok());
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 700 * 8);

  auto stream = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(stream.ok());
  MapReduceEnv env;
  auto mr = RunMrDensestUndirected(env, **stream, {});
  ASSERT_FALSE(mr.ok());
  EXPECT_EQ(mr.status().code(), Status::Code::kIOError);
  std::remove(path.c_str());
}

// ---- Combiner ceiling: the shuffle carries O(V), not O(E). ----

TEST(MrCombinerTest, DegreeShuffleBoundedByAliveNodesPerChunk) {
  EdgeList el = ErdosRenyiGnm(500, 20000, 71);
  MrEdges edges = ToMrEdges(el.edges());
  MapReduceEnv env;
  VectorRecordSource<NodeId, NodeId> source(edges);
  JobOptions opts;
  JobStats stats;
  auto out = MrDegreeJobCombined(env, source, opts, &stats);
  ASSERT_TRUE(out.ok());

  const uint64_t chunks =
      (edges.size() + opts.map_chunk_records - 1) / opts.map_chunk_records;
  EXPECT_EQ(stats.map_output_records, 2 * el.num_edges());
  EXPECT_EQ(stats.combine_input_records, stats.map_output_records);
  EXPECT_LE(stats.combine_output_records, chunks * el.num_nodes());
  EXPECT_LT(stats.combine_output_records, stats.map_output_records);
}

TEST(MrCombinerTest, DirectedDegreeCombinedMatchesPlain) {
  EdgeList el = ErdosRenyiDirectedGnm(200, 3000, 72);
  MrEdges arcs = ToMrEdges(el.edges());
  MapReduceEnv env;
  auto plain = MrDirectedDegreeJob(env, arcs);
  VectorRecordSource<NodeId, NodeId> source(arcs);
  JobStats stats;
  auto combined = MrDirectedDegreeJobCombined(env, source, JobOptions{}, &stats);
  ASSERT_TRUE(combined.ok());

  auto by_key = [](const auto& a, const auto& b) { return a.key < b.key; };
  std::sort(plain.begin(), plain.end(), by_key);
  std::sort(combined->begin(), combined->end(), by_key);
  ASSERT_EQ(plain.size(), combined->size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].key, (*combined)[i].key);
    EXPECT_EQ(plain[i].value, (*combined)[i].value);
  }
  EXPECT_LT(stats.combine_output_records, stats.map_output_records);
}

TEST(MapInputIoChargeTest, StreamBackedJobsChargeDfsBytes) {
  EdgeList edges = ErdosRenyiGnm(200, 1200, 31);
  EdgeListStream stream(edges);
  PassCursor cursor(stream);
  StreamRecordSource source(cursor);
  MapReduceEnv env;
  JobStats stats;
  auto degrees = MrDegreeJobCombined(env, source, JobOptions{}, &stats);
  ASSERT_TRUE(degrees.ok());
  // One full scan: exactly the modeled wire size per record, regardless of
  // the backend that served the edges.
  EXPECT_EQ(stats.map_input_bytes,
            edges.num_edges() * StreamRecordSource::kDfsRecordBytes);
  EXPECT_EQ(source.bytes_scanned(), stats.map_input_bytes);

  // A second job over the same source is charged its own scan, not the
  // cumulative total.
  JobStats stats2;
  auto count = MrCountEdgesJob(env, source, JobOptions{}, &stats2);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(stats2.map_input_bytes,
            edges.num_edges() * StreamRecordSource::kDfsRecordBytes);
  EXPECT_EQ(source.bytes_scanned(), 2 * stats2.map_input_bytes);
}

TEST(MapInputIoChargeTest, InMemoryJobsChargeNothing) {
  EdgeList edges = ErdosRenyiGnm(100, 500, 33);
  MrEdges records = ToMrEdges(edges.edges());
  MapReduceEnv env;
  JobStats stats;
  MrDegreeJobCombined(env, records, &stats);
  EXPECT_EQ(stats.map_input_bytes, 0u);
}

TEST(MapInputIoChargeTest, SimulatedSecondsIncludeScanIo) {
  CostModel model;
  JobStats stats;
  stats.map_input_records = 1000;
  const double without = SimulateJobSeconds(model, stats);
  stats.map_input_bytes = 1 << 30;
  const double with = SimulateJobSeconds(model, stats);
  EXPECT_NEAR(with - without,
              model.skew_factor * static_cast<double>(stats.map_input_bytes) *
                  model.map_input_seconds_per_byte /
                  std::max(1, model.num_mappers),
              1e-12);
}

TEST(MapInputIoChargeTest, DriverTotalsCoverEveryInputScan) {
  // The undirected driver's pass-1 jobs each scan the stream; the charged
  // bytes must equal input_scans full scans of the edge file.
  EdgeList edges = ErdosRenyiGnm(150, 800, 35);
  EdgeListStream stream(edges);
  MapReduceEnv env;
  MrDensestOptions opt;
  opt.epsilon = 0.5;
  auto r = RunMrDensestUndirected(env, stream, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->input_scans, 0u);
  EXPECT_EQ(r->totals.map_input_bytes,
            r->input_scans * edges.num_edges() *
                StreamRecordSource::kDfsRecordBytes);
}

/// Winner-tree stress: dozens of spilled runs per partition with heavy
/// key duplication across runs — the merge-read order (and with it the
/// grouped value order) must be byte-identical to the in-memory path the
/// tree replaces.
TEST(SpillShuffleTest, ManyRunsWithDuplicateKeysMergeIdentically) {
  std::vector<KV<NodeId, NodeId>> records;
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    // 16 distinct keys over 20k records: every run holds every key.
    records.push_back(
        {static_cast<NodeId>(rng.UniformU64(16)), static_cast<NodeId>(i)});
  }
  auto run_with_budget = [&](uint64_t budget) {
    JobOptions opts;
    opts.spill_budget_bytes = budget;
    opts.num_partitions = 2;
    ShuffleWriter<NodeId, NodeId> shuffle(opts.num_partitions, opts);
    // Many tiny appends => many sorted runs per partition.
    for (size_t i = 0; i < records.size(); i += 100) {
      std::vector<KV<NodeId, NodeId>> chunk(
          records.begin() + i,
          records.begin() + std::min(records.size(), i + 100));
      EXPECT_TRUE(shuffle.Append(std::move(chunk)).ok());
    }
    std::vector<std::pair<NodeId, std::vector<NodeId>>> groups;
    std::vector<NodeId> values;
    for (size_t p = 0; p < shuffle.num_partitions(); ++p) {
      EXPECT_TRUE(shuffle
                      .ReducePartition(p, &values,
                                       [&](NodeId key,
                                           const std::vector<NodeId>& vs) {
                                         groups.emplace_back(key, vs);
                                       })
                      .ok());
    }
    return std::make_pair(shuffle.spill_runs(), groups);
  };
  auto [runs_spilled, spilled] = run_with_budget(1024);  // every append spills
  auto [runs_memory, in_memory] = run_with_budget(0);
  EXPECT_GT(runs_spilled, 50u);
  EXPECT_EQ(runs_memory, 0u);
  ASSERT_EQ(spilled.size(), in_memory.size());
  for (size_t i = 0; i < spilled.size(); ++i) {
    EXPECT_EQ(spilled[i].first, in_memory[i].first) << "group " << i;
    EXPECT_EQ(spilled[i].second, in_memory[i].second) << "group " << i;
  }
}

}  // namespace
}  // namespace densest
