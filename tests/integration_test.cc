// End-to-end integration tests: the full stack on realistic (scaled-down)
// workloads, cross-checking every solver against every other.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "core/charikar.h"
#include "core/enumerate.h"
#include "core/kcore.h"
#include "flow/goldberg.h"
#include "gen/chung_lu.h"
#include "gen/datasets.h"
#include "gen/lower_bound.h"
#include "gen/planted.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"
#include "mapreduce/mr_densest.h"
#include "sketch/sketched_algorithm1.h"
#include "stream/file_stream.h"
#include "stream/memory_stream.h"

namespace densest {
namespace {

UndirectedGraph BuildUndirected(const EdgeList& e) {
  GraphBuilder b;
  b.ReserveNodes(e.num_nodes());
  for (const Edge& edge : e.edges()) b.Add(edge.u, edge.v, edge.w);
  return std::move(b.BuildUndirected()).value();
}

/// A scaled-down social-network-style workload shared by the tests below.
UndirectedGraph SmallSocialGraph() {
  ChungLuOptions cl;
  cl.num_nodes = 3000;
  cl.num_edges = 15000;
  cl.exponent = 2.3;
  EdgeList graph = ChungLu(cl, 1234);
  PlantedGraph planted = PlantDenseBlocks(cl.num_nodes, 0, {{35, 0.9}}, 99);
  graph.Append(planted.edges);
  return BuildUndirected(graph);
}

TEST(IntegrationTest, ApproximationChainOnSocialGraph) {
  UndirectedGraph g = SmallSocialGraph();

  auto exact = ExactDensestSubgraph(g);
  ASSERT_TRUE(exact.ok());
  double rho_star = exact->density;
  EXPECT_GT(rho_star, 5.0);  // planted community dominates the background

  CharikarResult greedy = CharikarPeel(g);
  EXPECT_GE(greedy.best.density * 2.0, rho_star * (1 - 1e-9));

  UndirectedDensestResult core = MaxCoreBaseline(g);
  EXPECT_GE(core.density * 2.0, rho_star * (1 - 1e-9));

  for (double eps : {0.0, 0.5, 1.0, 2.0}) {
    Algorithm1Options opt;
    opt.epsilon = eps;
    auto r = RunAlgorithm1(g, opt);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r->density * (2 + 2 * eps), rho_star * (1 - 1e-9))
        << "eps=" << eps;
    EXPECT_LE(r->density, rho_star + 1e-9);
  }
}

TEST(IntegrationTest, StreamingFromDiskMatchesInMemory) {
  UndirectedGraph g = SmallSocialGraph();
  EdgeList el = g.ToEdgeList();
  el.set_num_nodes(g.num_nodes());

  // Duplicate ChungLu/planted edges merge to weight 2 during cleaning, so
  // the file must carry weights to be equivalent to the in-memory graph.
  std::string path = ::testing::TempDir() + "/integration_edges.bin";
  ASSERT_TRUE(WriteBinaryEdgeFile(path, el, /*weighted=*/true).ok());
  auto disk = BinaryFileEdgeStream::Open(path);
  ASSERT_TRUE(disk.ok());

  Algorithm1Options opt;
  opt.epsilon = 0.5;
  auto mem = RunAlgorithm1(g, opt);
  auto from_disk = RunAlgorithm1(**disk, opt);
  std::remove(path.c_str());
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE(from_disk.ok());
  EXPECT_EQ(mem->nodes, from_disk->nodes);
  EXPECT_DOUBLE_EQ(mem->density, from_disk->density);
}

TEST(IntegrationTest, MapReduceMatchesStreamingOnSocialGraph) {
  UndirectedGraph g = SmallSocialGraph();
  EdgeList el = g.ToEdgeList();
  el.set_num_nodes(g.num_nodes());

  Algorithm1Options s_opt;
  s_opt.epsilon = 1.0;
  auto streaming = RunAlgorithm1(g, s_opt);
  ASSERT_TRUE(streaming.ok());

  MapReduceEnv env;
  MrDensestOptions mr_opt;
  mr_opt.epsilon = 1.0;
  auto mr = RunMrDensestUndirected(env, el, mr_opt);
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(mr->result.nodes, streaming->nodes);
  EXPECT_EQ(mr->result.passes, streaming->passes);
}

TEST(IntegrationTest, SketchedRunStaysClose) {
  UndirectedGraph g = SmallSocialGraph();
  Algorithm1Options opt;
  opt.epsilon = 0.5;
  auto exact_run = RunAlgorithm1(g, opt);
  ASSERT_TRUE(exact_run.ok());

  UndirectedGraphStream stream(g);
  auto sketched =
      RunSketchedAlgorithm1(stream, {.tables = 5, .buckets = 1024}, 7, opt);
  ASSERT_TRUE(sketched.ok());
  EXPECT_GE(sketched->result.density, 0.5 * exact_run->density);
}

TEST(IntegrationTest, Algorithm2FindsLargeDenseRegions) {
  UndirectedGraph g = SmallSocialGraph();
  Algorithm2Options opt;
  opt.min_size = 100;
  opt.epsilon = 0.5;
  auto r = RunAlgorithm2(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->nodes.size(), 100u);
  // A 100+-node set can't beat the global optimum but must beat the
  // whole-graph density.
  EXPECT_GE(r->density, g.Density() - 1e-9);
}

TEST(IntegrationTest, EnumerationSeparatesTwoCommunities) {
  ChungLuOptions cl;
  cl.num_nodes = 2000;
  cl.num_edges = 8000;
  EdgeList graph = ChungLu(cl, 77);
  PlantedGraph planted =
      PlantDenseBlocks(cl.num_nodes, 0, {{30, 1.0}, {26, 1.0}}, 78);
  graph.Append(planted.edges);
  UndirectedGraph g = BuildUndirected(graph);

  EnumerateOptions opt;
  opt.max_subgraphs = 2;
  opt.epsilon = 0.25;
  opt.min_density = 3.0;
  auto subs = EnumerateDenseSubgraphs(g, opt);
  ASSERT_TRUE(subs.ok());
  ASSERT_EQ(subs->size(), 2u);

  // Each discovered community should be mostly one planted block.
  std::set<NodeId> block0(planted.blocks[0].begin(),
                          planted.blocks[0].end());
  std::set<NodeId> block1(planted.blocks[1].begin(),
                          planted.blocks[1].end());
  size_t hits0 = 0, hits1 = 0;
  for (NodeId u : (*subs)[0].nodes) {
    hits0 += block0.count(u);
    hits1 += block1.count(u);
  }
  EXPECT_GT(std::max(hits0, hits1), (*subs)[0].nodes.size() * 7 / 10);
}

TEST(IntegrationTest, Lemma5ConstructionForcesManyPasses) {
  // The paper's pass lower bound: more blocks -> more passes at small eps.
  EdgeList small = Lemma5Construction(3);
  EdgeList large = Lemma5Construction(5);
  Algorithm1Options opt;
  opt.epsilon = 0.001;
  opt.record_trace = false;
  auto r_small = RunAlgorithm1(BuildUndirected(small), opt);
  auto r_large = RunAlgorithm1(BuildUndirected(large), opt);
  ASSERT_TRUE(r_small.ok());
  ASSERT_TRUE(r_large.ok());
  EXPECT_GT(r_large->passes, r_small->passes);
  // The densest block is G_k (a 2^(k-1)-regular graph, density 2^(k-2)).
  EXPECT_NEAR(r_large->density, 8.0, 8.0 * 0.3);
}

TEST(IntegrationTest, DirectedPipelineOnPlantedGraph) {
  PlantedDirectedGraph pg = PlantDirectedBlock(2000, 10000, 120, 30, 0.8, 5);
  DirectedGraph g = DirectedGraph::FromEdgeList(pg.arcs);

  CSearchOptions opt;
  opt.delta = 2.0;
  opt.epsilon = 0.5;
  auto search = RunCSearch(g, opt);
  ASSERT_TRUE(search.ok());

  // Planted block: E ~ 0.8*120*30 = 2880, rho ~ 2880/60 = 48, c* = 4.
  double planted_rho = 0.8 * 120 * 30 / std::sqrt(120.0 * 30.0);
  EXPECT_GE(search->best.density * (2 + 2 * opt.epsilon) * opt.delta,
            planted_rho * 0.9);
  // The best c should be in the skewed-toward-S region.
  EXPECT_GE(search->best.c, 1.0);
}

TEST(IntegrationTest, DatasetStandInsAreWellFormed) {
  // Smoke-test the two small directed stand-ins end to end.
  EdgeList lj = MakeLiveJournalSim(42);
  EXPECT_GT(lj.num_edges(), 1000000u);
  DirectedGraph g = DirectedGraph::FromEdgeList(lj);
  Algorithm3Options opt;
  opt.c = 1.0;
  opt.epsilon = 2.0;
  opt.record_trace = false;
  auto r = RunAlgorithm3(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->density, 1.0);
}

}  // namespace
}  // namespace densest
