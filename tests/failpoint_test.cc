// Fault-injection tests: the failpoint registry itself, then every sticky
// IO seam of the library driven through its three failure modes —
// permanent (kIOError), transient-and-healed (kUnavailable under retry),
// and torn data (kShortRead) — asserting the exact error class at each
// seam and that no seam ever turns a fault into a plausible wrong result.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gen/erdos_renyi.h"
#include "io/edge_list_io.h"
#include "io/spill_file.h"
#include "mapreduce/graph_jobs.h"
#include "mapreduce/job.h"
#include "stream/file_stream.h"
#include "stream/pass_stats.h"
#include "stream/update_stream.h"

namespace densest {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("failpoint_test_" + name + "_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
      .string();
}

/// Every injection test runs armed only for its own lifetime; a leaked
/// armed point would fail unrelated suites in the same binary.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Failpoints::compiled_in()) {
      GTEST_SKIP() << "built with -DDENSEST_FAILPOINTS=OFF";
    }
    Failpoints::Instance().ClearAll();
  }
  void TearDown() override {
    if (Failpoints::compiled_in()) Failpoints::Instance().ClearAll();
  }
};

// ------------------------------------------------------------- registry --

TEST_F(FailpointTest, SpecGrammarRejectsMalformedClauses) {
  Failpoints& fp = Failpoints::Instance();
  EXPECT_TRUE(fp.Set("t.g", "after=2,times=1,kind=unavailable").ok());
  EXPECT_TRUE(fp.Set("t.g", "off").ok());
  EXPECT_FALSE(fp.Set("t.g", "after=banana").ok());
  EXPECT_FALSE(fp.Set("t.g", "kind=bogus").ok());
  EXPECT_FALSE(fp.Set("t.g", "prob=1.5").ok());
  EXPECT_FALSE(fp.Set("t.g", "nonsense").ok());
  EXPECT_EQ(fp.Set("t.g", "after=x").code(), Status::Code::kInvalidArgument);
}

TEST_F(FailpointTest, AfterAndTimesControlTheFiringWindow) {
  Failpoints& fp = Failpoints::Instance();
  ASSERT_TRUE(fp.Set("t.window", "after=2,times=3").ok());
  std::vector<FailpointAction> got;
  for (int i = 0; i < 8; ++i) got.push_back(fp.Eval("t.window"));
  const std::vector<FailpointAction> want = {
      FailpointAction::kNone,    FailpointAction::kNone,
      FailpointAction::kIOError, FailpointAction::kIOError,
      FailpointAction::kIOError, FailpointAction::kNone,
      FailpointAction::kNone,    FailpointAction::kNone};
  EXPECT_EQ(got, want);
  EXPECT_EQ(fp.evaluations("t.window"), 8u);
  EXPECT_EQ(fp.fires("t.window"), 3u);
  // Unarmed names are silent and uncounted fires.
  EXPECT_EQ(fp.Eval("t.never_armed"), FailpointAction::kNone);
  fp.Clear("t.window");
  EXPECT_EQ(fp.Eval("t.window"), FailpointAction::kNone);
}

TEST_F(FailpointTest, ProbIsDeterministicPerSeed) {
  Failpoints& fp = Failpoints::Instance();
  auto draw = [&](uint64_t seed) {
    EXPECT_TRUE(
        fp.Set("t.prob", "prob=0.5,seed=" + std::to_string(seed)).ok());
    std::vector<FailpointAction> v;
    for (int i = 0; i < 64; ++i) v.push_back(fp.Eval("t.prob"));
    return v;
  };
  const auto a = draw(7);
  const auto b = draw(7);
  const auto c = draw(8);
  EXPECT_EQ(a, b);  // same seed, same firing stream
  EXPECT_NE(a, c);  // different seed diverges
  // p=0.5 over 64 draws: both outcomes must occur.
  EXPECT_NE(std::count(a.begin(), a.end(), FailpointAction::kNone), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), FailpointAction::kIOError), 0);
}

TEST(FailpointCompiledOutTest, ArmingFailsLoudlyWhenCompiledOut) {
  if (Failpoints::compiled_in()) {
    GTEST_SKIP() << "built with -DDENSEST_FAILPOINTS=ON";
  }
  // Arming a fault that can never fire must not silently "pass" a test.
  EXPECT_EQ(Failpoints::Instance().Set("t.x", "after=0").code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(DENSEST_FAILPOINT("t.x"), FailpointAction::kNone);
}

// ---------------------------------------------------- binary edge stream --

class EdgeStreamFaultTest : public FailpointTest {
 protected:
  void SetUp() override {
    FailpointTest::SetUp();
    if (IsSkipped()) return;
    edges_ = ErdosRenyiGnm(500, 10000, 17);
    path_ = TempPath("edges.bin");
    ASSERT_TRUE(WriteBinaryEdgeFile(path_, edges_, /*weighted=*/false).ok());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    FailpointTest::TearDown();
  }

  /// Drains the stream and returns how many edges came out.
  static uint64_t Drain(EdgeStream& stream) {
    stream.Reset();
    Edge e;
    uint64_t n = 0;
    while (stream.Next(&e)) ++n;
    return n;
  }

  EdgeList edges_;
  std::string path_;
};

TEST_F(EdgeStreamFaultTest, PermanentIOErrorIsStickyAndNonRetryable) {
  ASSERT_TRUE(Failpoints::Instance().Set("edge_stream.read", "kind=io").ok());
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  EXPECT_LT(Drain(**stream), edges_.num_edges());
  EXPECT_EQ((*stream)->status().code(), Status::Code::kIOError);
  EXPECT_FALSE((*stream)->status().IsRetryable());
  // No retries for a permanent fault: the budget is for transient ones.
  EXPECT_EQ((*stream)->io_retry_stats().retries, 0u);
  // Sticky across Reset even after the failpoint is gone.
  Failpoints::Instance().Clear("edge_stream.read");
  EXPECT_EQ(Drain(**stream), 0u);
  EXPECT_EQ((*stream)->status().code(), Status::Code::kIOError);
}

TEST_F(EdgeStreamFaultTest, TransientFaultHealsAndCountsIntoPassStats) {
  ASSERT_TRUE(Failpoints::Instance()
                  .Set("edge_stream.read", "times=2,kind=unavailable")
                  .ok());
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  PassStats pass;
  CountingEdgeStream counted(**stream, pass);
  // The retry loop absorbs both transient fires: the pass is complete and
  // correct, and the limp is observable in the stats.
  EXPECT_EQ(Drain(counted), edges_.num_edges());
  EXPECT_TRUE(counted.status().ok());
  const IoRetryStats retry = (*stream)->io_retry_stats();
  EXPECT_EQ(retry.retries, 2u);
  EXPECT_GE(retry.healed, 1u);
  EXPECT_EQ(retry.exhausted, 0u);
  EXPECT_EQ(pass.io_retries, 2u);
  EXPECT_GE(pass.io_retries_healed, 1u);
}

TEST_F(EdgeStreamFaultTest, ExhaustedRetryBudgetSurfacesAsUnavailable) {
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  // One clean pass first: it settles the Open()-issued prefetch (arming
  // while it is still in flight would make the fault count racy) and the
  // whole file fits one IO buffer, so no further prefetch is in flight
  // after it.
  EXPECT_EQ(Drain(**stream), edges_.num_edges());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 0.01;  // keep the test fast
  (*stream)->set_retry_policy(policy);
  ASSERT_TRUE(
      Failpoints::Instance().Set("edge_stream.read", "kind=unavailable").ok());
  EXPECT_LT(Drain(**stream), edges_.num_edges());
  // A permanently-unavailable disk ends the stream with the retryable
  // class — callers can distinguish "retry the whole pass later" from
  // "this file is damaged".
  EXPECT_EQ((*stream)->status().code(), Status::Code::kUnavailable);
  EXPECT_TRUE((*stream)->status().IsRetryable());
  const IoRetryStats retry = (*stream)->io_retry_stats();
  EXPECT_EQ(retry.retries, 2u);  // attempts 2 and 3 of the budget of 3
  EXPECT_EQ(retry.exhausted, 1u);
}

TEST_F(EdgeStreamFaultTest, ShortReadSurfacesAsTruncationNeverAsEndOfData) {
  ASSERT_TRUE(
      Failpoints::Instance().Set("edge_stream.read", "kind=short").ok());
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  const uint64_t got = Drain(**stream);
  EXPECT_LT(got, edges_.num_edges());
  EXPECT_GT(got, 0u);  // the tear delivered whole records, then stopped
  EXPECT_EQ((*stream)->status().code(), Status::Code::kIOError);
  EXPECT_NE((*stream)->status().message().find("truncated"),
            std::string::npos);
}

TEST_F(EdgeStreamFaultTest, EdgeFileWriteFailpointFailsTheWrite) {
  ASSERT_TRUE(Failpoints::Instance().Set("edge_file.write", "after=0").ok());
  const std::string out = TempPath("failed_write.bin");
  EXPECT_EQ(WriteBinaryEdgeFile(out, edges_, false).code(),
            Status::Code::kIOError);
  std::remove(out.c_str());
}

TEST_F(EdgeStreamFaultTest, TextEdgeListReadFailpointFailsTheLoad) {
  const std::string txt = TempPath("edges.txt");
  {
    std::ofstream f(txt);
    f << "0 1\n1 2\n2 3\n";
  }
  ASSERT_TRUE(Failpoints::Instance().Set("edge_list.read", "after=1").ok());
  EXPECT_EQ(ReadEdgeListText(txt).status().code(), Status::Code::kIOError);
  std::remove(txt.c_str());
}

// --------------------------------------------------- binary update stream --

class UpdateStreamFaultTest : public FailpointTest {
 protected:
  void SetUp() override {
    FailpointTest::SetUp();
    if (IsSkipped()) return;
    for (uint32_t i = 0; i < 5000; ++i) {
      updates_.push_back(InsertUpdate(i % 97, (i + 1) % 97, i + 1));
    }
    path_ = TempPath("updates.bin");
    ASSERT_TRUE(WriteBinaryUpdateFile(path_, 97, updates_).ok());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    FailpointTest::TearDown();
  }

  static uint64_t Drain(UpdateStream& stream) {
    stream.Reset();
    EdgeUpdate u;
    uint64_t n = 0;
    while (stream.Next(&u)) ++n;
    return n;
  }

  std::vector<EdgeUpdate> updates_;
  std::string path_;
};

TEST_F(UpdateStreamFaultTest, PermanentIOErrorIsSticky) {
  ASSERT_TRUE(
      Failpoints::Instance().Set("update_stream.read", "kind=io").ok());
  auto stream = BinaryFileUpdateStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  EXPECT_LT(Drain(**stream), updates_.size());
  EXPECT_EQ((*stream)->status().code(), Status::Code::kIOError);
}

TEST_F(UpdateStreamFaultTest, TransientFaultHealsWithRetryStats) {
  ASSERT_TRUE(Failpoints::Instance()
                  .Set("update_stream.read", "times=1,kind=unavailable")
                  .ok());
  auto stream = BinaryFileUpdateStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(Drain(**stream), updates_.size());
  EXPECT_TRUE((*stream)->status().ok());
  const IoRetryStats retry = (*stream)->io_retry_stats();
  EXPECT_EQ(retry.retries, 1u);
  EXPECT_EQ(retry.healed, 1u);
}

TEST_F(UpdateStreamFaultTest, ExhaustedRetriesSurfaceAsUnavailable) {
  ASSERT_TRUE(Failpoints::Instance()
                  .Set("update_stream.read", "kind=unavailable")
                  .ok());
  auto stream = BinaryFileUpdateStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_delay_ms = 0.01;
  (*stream)->set_retry_policy(policy);
  EXPECT_EQ(Drain(**stream), 0u);
  EXPECT_EQ((*stream)->status().code(), Status::Code::kUnavailable);
  EXPECT_EQ((*stream)->io_retry_stats().exhausted, 1u);
}

TEST_F(UpdateStreamFaultTest, ShortReadIsTruncationNotEndOfStream) {
  ASSERT_TRUE(
      Failpoints::Instance().Set("update_stream.read", "kind=short").ok());
  auto stream = BinaryFileUpdateStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  EXPECT_LT(Drain(**stream), updates_.size());
  EXPECT_EQ((*stream)->status().code(), Status::Code::kIOError);
  EXPECT_NE((*stream)->status().message().find("truncated"),
            std::string::npos);
}

TEST_F(UpdateStreamFaultTest, WriteAndFlushFailpointsFailTheWriter) {
  const std::string out = TempPath("failed_updates.bin");
  ASSERT_TRUE(Failpoints::Instance().Set("update_file.write", "after=0").ok());
  Status body = WriteBinaryUpdateFile(out, 97, updates_);
  EXPECT_EQ(body.code(), Status::Code::kIOError);
  EXPECT_NE(body.message().find("short write"), std::string::npos);
  Failpoints::Instance().ClearAll();

  // The flush seam is distinct: data was written, the final fclose fails.
  ASSERT_TRUE(Failpoints::Instance().Set("update_file.flush", "after=0").ok());
  Status flush = WriteBinaryUpdateFile(out, 97, updates_);
  EXPECT_EQ(flush.code(), Status::Code::kIOError);
  EXPECT_NE(flush.message().find("flush failed"), std::string::npos);
  std::remove(out.c_str());
}

// -------------------------------------------------------------- spill IO --

TEST_F(FailpointTest, SpillAppendUnavailableIsStickyAfterBudget) {
  auto spill = SpillFile::Create("");
  ASSERT_TRUE(spill.ok());
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_delay_ms = 0.01;
  (*spill)->set_retry_policy(policy);
  ASSERT_TRUE(Failpoints::Instance().Set("spill.append", "kind=unavailable").ok());
  const char buf[64] = {0};
  EXPECT_EQ((*spill)->Append(buf, sizeof(buf)).code(),
            Status::Code::kUnavailable);
  EXPECT_EQ((*spill)->io_retry_stats().exhausted, 1u);
  // Sticky: the spill is damaged goods even after the fault clears.
  Failpoints::Instance().ClearAll();
  EXPECT_FALSE((*spill)->Append(buf, sizeof(buf)).ok());
}

/// Runs the combined degree job with a 1-byte spill budget so the whole
/// shuffle goes through SpillFile, under whatever failpoints are armed.
StatusOr<std::vector<KV<NodeId, EdgeId>>> RunSpilledDegreeJob(
    JobStats* stats) {
  EdgeList el = ErdosRenyiGnm(300, 4000, 21);
  MapReduceEnv env({}, 4);
  const std::vector<KV<NodeId, NodeId>> records = ToMrEdges(el.edges());
  VectorRecordSource<NodeId, NodeId> source(records);
  JobOptions opts;
  opts.spill_budget_bytes = 1;
  return MrDegreeJobCombined(env, source, opts, stats);
}

TEST_F(FailpointTest, TruncatedSpillMidMergeFailsTheJobLoudly) {
  // The merge phase reads its sorted runs through ReadAt; a torn read
  // there must fail the reduce, never feed it a partial run (a reduce
  // over a partial partition aggregates to a plausible wrong answer).
  ASSERT_TRUE(Failpoints::Instance()
                  .Set("spill.read_at", "after=3,kind=short")
                  .ok());
  JobStats stats;
  auto out = RunSpilledDegreeJob(&stats);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), Status::Code::kIOError);
  EXPECT_NE(out.status().message().find("truncated"), std::string::npos);
}

TEST_F(FailpointTest, TransientSpillFaultHealsAndCountsIntoJobStats) {
  ASSERT_TRUE(Failpoints::Instance()
                  .Set("spill.read_at", "times=2,kind=unavailable")
                  .ok());
  JobStats faulty_stats;
  auto faulty = RunSpilledDegreeJob(&faulty_stats);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_GE(faulty_stats.io_retries, 2u);
  EXPECT_GE(faulty_stats.io_retries_healed, 1u);

  // Identical output to a clean run: the retries healed, nothing leaked.
  Failpoints::Instance().ClearAll();
  JobStats clean_stats;
  auto clean = RunSpilledDegreeJob(&clean_stats);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(faulty->size(), clean->size());
  for (size_t i = 0; i < clean->size(); ++i) {
    EXPECT_EQ((*faulty)[i].key, (*clean)[i].key);
    EXPECT_EQ((*faulty)[i].value, (*clean)[i].value);
  }
  EXPECT_EQ(clean_stats.io_retries, 0u);
}

}  // namespace
}  // namespace densest
