// Cooperative-cancellation tests: the CancelToken itself (manual cancel,
// monotonic deadlines, the null-token helpers), then every engine that
// accepts a token driven with a pre-tripped one — each must return
// kCancelled/kDeadlineExceeded instead of a truncated "result", and leave
// nothing behind (spill directories, stuck threads, unsettled engines).

#include "common/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "dynamic/dynamic_densest.h"
#include "dynamic/replay.h"
#include "flow/goldberg.h"
#include "gen/erdos_renyi.h"
#include "graph/undirected_graph.h"
#include "mapreduce/job.h"
#include "stream/memory_stream.h"
#include "stream/update_stream.h"

namespace densest {
namespace {

// ------------------------------------------------------------- the token --

TEST(CancelTokenTest, ManualCancelIsStickyAndIdempotent) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.should_stop());
  EXPECT_TRUE(token.Check().ok());
  token.Cancel();
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.should_stop());
  const Status s = token.Check();
  EXPECT_EQ(s.code(), Status::Code::kCancelled);
  EXPECT_TRUE(s.IsCancellation());
}

TEST(CancelTokenTest, DeadlineExpiresAndReportsDeadlineExceeded) {
  const CancelToken expired = CancelToken::WithDeadlineAfterMs(0.0);
  EXPECT_TRUE(expired.deadline_expired());
  EXPECT_TRUE(expired.should_stop());
  EXPECT_EQ(expired.Check().code(), Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(expired.Check().IsCancellation());

  const CancelToken far =
      CancelToken::WithDeadlineAfter(std::chrono::hours(24));
  EXPECT_FALSE(far.should_stop());
  EXPECT_TRUE(far.Check().ok());
}

TEST(CancelTokenTest, ManualCancelWinsOverExpiredDeadline) {
  CancelToken token = CancelToken::WithDeadlineAfterMs(0.0);
  token.Cancel();
  // Both conditions hold; the explicit cancel is the more specific report.
  EXPECT_EQ(token.Check().code(), Status::Code::kCancelled);
}

TEST(CancelTokenTest, NullTokenHelpersNeverStop) {
  EXPECT_FALSE(ShouldStop(nullptr));
  EXPECT_TRUE(CheckCancel(nullptr).ok());
  CancelToken token;
  EXPECT_FALSE(ShouldStop(&token));
  token.Cancel();
  EXPECT_TRUE(ShouldStop(&token));
  EXPECT_FALSE(CheckCancel(&token).ok());
}

TEST(CancelTokenTest, CancelFromAnotherThreadIsObserved) {
  CancelToken token;
  std::thread canceller([&token] { token.Cancel(); });
  canceller.join();
  EXPECT_TRUE(token.cancelled());
}

// ----------------------------------------------- batch peeling algorithms --

TEST(CancelTest, Algorithm1ReturnsCancelledNotTruncatedResult) {
  EdgeList edges = ErdosRenyiGnm(60, 600, 3);
  EdgeListStream stream(edges);
  CancelToken token;
  token.Cancel();
  Algorithm1Options opt;
  opt.cancel = &token;
  StatusOr<UndirectedDensestResult> r = RunAlgorithm1(stream, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCancelled);
}

TEST(CancelTest, Algorithm2ReturnsCancelled) {
  EdgeList edges = ErdosRenyiGnm(60, 600, 4);
  EdgeListStream stream(edges);
  CancelToken token;
  token.Cancel();
  Algorithm2Options opt;
  opt.min_size = 5;
  opt.cancel = &token;
  StatusOr<UndirectedDensestResult> r = RunAlgorithm2(stream, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCancelled);
}

TEST(CancelTest, Algorithm3AndCSearchReturnCancelled) {
  EdgeList arcs = ErdosRenyiGnm(50, 500, 5);
  CancelToken token;
  token.Cancel();
  {
    EdgeListStream stream(arcs);
    Algorithm3Options opt;
    opt.c = 1.0;
    opt.cancel = &token;
    StatusOr<DirectedDensestResult> r = RunAlgorithm3(stream, opt);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kCancelled);
  }
  {
    EdgeListStream stream(arcs);
    CSearchOptions opt;
    opt.cancel = &token;
    StatusOr<CSearchResult> r = RunCSearch(stream, opt);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kCancelled);
  }
}

TEST(CancelTest, DeadlineTokenDeadlineExceededPropagates) {
  EdgeList edges = ErdosRenyiGnm(60, 600, 6);
  EdgeListStream stream(edges);
  const CancelToken expired = CancelToken::WithDeadlineAfterMs(0.0);
  Algorithm1Options opt;
  opt.cancel = &expired;
  StatusOr<UndirectedDensestResult> r = RunAlgorithm1(stream, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(r.status().IsCancellation());
}

TEST(CancelTest, UncancelledTokenChangesNothing) {
  EdgeList edges = ErdosRenyiGnm(60, 600, 7);
  CancelToken token;  // never tripped
  Algorithm1Options with, without;
  with.cancel = &token;
  EdgeListStream s1(edges), s2(edges);
  StatusOr<UndirectedDensestResult> a = RunAlgorithm1(s1, with);
  StatusOr<UndirectedDensestResult> b = RunAlgorithm1(s2, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->density, b->density);  // bit-for-bit: polls must not perturb
  EXPECT_EQ(a->nodes.size(), b->nodes.size());
}

// -------------------------------------------------------- exact flow path --

TEST(CancelTest, GoldbergReturnsCancelledNeverAPartialCut) {
  EdgeList edges = ErdosRenyiGnm(40, 300, 8);
  UndirectedGraph g = UndirectedGraph::FromEdgeList(edges);
  CancelToken token;
  token.Cancel();
  ExactDensestOptions opt;
  opt.cancel = &token;
  StatusOr<ExactDensestResult> r = ExactDensestSubgraph(g, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCancelled);

  const CancelToken expired = CancelToken::WithDeadlineAfterMs(0.0);
  ExactDensestOptions dopt;
  dopt.cancel = &expired;
  StatusOr<ExactDensestResult> d = ExactDensestSubgraph(g, dopt);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), Status::Code::kDeadlineExceeded);
}

// -------------------------------------------------------------- mapreduce --

TEST(CancelTest, MapReduceJobReturnsCancelled) {
  MapReduceEnv env;
  std::vector<KV<uint32_t, uint32_t>> input;
  for (uint32_t i = 0; i < 1000; ++i) input.push_back({i, i % 7});
  VectorRecordSource<uint32_t, uint32_t> source(input);
  CancelToken token;
  token.Cancel();
  JobOptions opt;
  opt.cancel = &token;
  StatusOr<std::vector<KV<uint32_t, uint64_t>>> r =
      RunJobOnSource<uint32_t, uint32_t, uint32_t, uint64_t>(
          env, source, opt,
          [](const uint32_t&, const uint32_t& group,
             Emitter<uint32_t, uint32_t>& emit) { emit.Emit(group, 1); },
          NoCombiner,
          [](const uint32_t& key, const std::vector<uint32_t>& ones,
             Emitter<uint32_t, uint64_t>& emit) {
            emit.Emit(key, ones.size());
          });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCancelled);
}

TEST(CancelTest, CancelledSpillingJobRemovesItsSpillFiles) {
  // Cancel from inside the map function once the shuffle has provably
  // spilled: the job must return kCancelled at the next round boundary
  // AND leave nothing behind in its spill directory.
  namespace fs = std::filesystem;
  const fs::path spill_dir =
      fs::temp_directory_path() /
      ("cancel_spill_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::create_directories(spill_dir);

  MapReduceEnv env;
  std::vector<KV<uint32_t, uint32_t>> input;
  for (uint32_t i = 0; i < 20000; ++i) input.push_back({i, i});
  VectorRecordSource<uint32_t, uint32_t> source(input);
  CancelToken token;
  JobOptions opt;
  opt.cancel = &token;
  opt.spill_budget_bytes = 1024;  // force early, frequent spilling
  opt.spill_dir = spill_dir.string();
  opt.map_chunk_records = 256;  // many rounds => many cancel polls
  std::atomic<uint64_t> mapped{0};
  std::atomic<uint64_t> files_at_cancel{0};
  StatusOr<std::vector<KV<uint32_t, uint64_t>>> r =
      RunJobOnSource<uint32_t, uint32_t, uint32_t, uint64_t>(
          env, source, opt,
          [&](const uint32_t& k, const uint32_t& v,
              Emitter<uint32_t, uint32_t>& emit) {
            // Trip the token mid-map, well after the budget forced spills;
            // record how many spill files exist at that instant so the
            // cleanup assertion below is provably non-vacuous.
            if (mapped.fetch_add(1) == 8000) {
              uint64_t files = 0;
              for (const auto& entry : fs::directory_iterator(spill_dir)) {
                (void)entry;
                ++files;
              }
              files_at_cancel.store(files);
              token.Cancel();
            }
            emit.Emit(k % 97, v);
          },
          NoCombiner,
          [](const uint32_t& key, const std::vector<uint32_t>& vals,
             Emitter<uint32_t, uint64_t>& emit) {
            emit.Emit(key, vals.size());
          });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCancelled);
  EXPECT_GT(files_at_cancel.load(), 0u)
      << "budget never forced a spill; the cleanup check proves nothing";
  // The early return destroyed the shuffle and with it every SpillFile.
  uint64_t leftovers = 0;
  for (const auto& entry : fs::directory_iterator(spill_dir)) {
    (void)entry;
    ++leftovers;
  }
  EXPECT_EQ(leftovers, 0u) << "cancelled job leaked spill files";
  fs::remove_all(spill_dir);
}

// ----------------------------------------------------------- replay driver --

TEST(CancelTest, ReplayStopsSettledAndQueryable) {
  EdgeList edges = ErdosRenyiGnm(40, 400, 9);
  EdgeListStream base(edges);
  SlidingWindowUpdateStream updates(base, 100);
  auto engine = DynamicDensest::Create(40);
  ASSERT_TRUE(engine.ok());
  CancelToken token;
  token.Cancel();
  ReplayOptions opt;
  opt.cancel = &token;
  StatusOr<ReplayReport> r = ReplayUpdates(updates, **engine, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCancelled);
  // The abort left the engine settled: a query still serves a certified
  // answer over whatever prefix was applied.
  const DynamicDensest::Answer a = (*engine)->Query();
  EXPECT_TRUE(a.certified);
}

}  // namespace
}  // namespace densest
