// Unit tests for the streaming substrate: memory streams, binary file
// streams, pass accounting.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/algorithm1.h"
#include "graph/graph_builder.h"
#include "stream/file_stream.h"
#include "stream/memory_stream.h"
#include "stream/pass_stats.h"

namespace densest {
namespace {

EdgeList PathGraph(NodeId n) {
  EdgeList e(n);
  for (NodeId i = 0; i + 1 < n; ++i) e.Add(i, i + 1);
  return e;
}

std::set<std::pair<NodeId, NodeId>> Drain(EdgeStream& s) {
  std::set<std::pair<NodeId, NodeId>> seen;
  s.Reset();
  Edge e;
  while (s.Next(&e)) {
    NodeId a = std::min(e.u, e.v), b = std::max(e.u, e.v);
    seen.insert({a, b});
  }
  return seen;
}

TEST(EdgeListStreamTest, YieldsAllEdgesEachPass) {
  EdgeList el = PathGraph(5);
  EdgeListStream s(el);
  EXPECT_EQ(s.num_nodes(), 5u);
  EXPECT_EQ(s.SizeHint(), 4u);
  for (int pass = 0; pass < 3; ++pass) {
    EXPECT_EQ(Drain(s).size(), 4u);
  }
}

TEST(UndirectedGraphStreamTest, EmitsEachEdgeOnce) {
  GraphBuilder b;
  b.Add(0, 1);
  b.Add(1, 2);
  b.Add(0, 2);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  UndirectedGraphStream s(g);
  auto seen = Drain(s);
  EXPECT_EQ(seen.size(), 3u);
  // Second pass gives identical content.
  EXPECT_EQ(Drain(s), seen);
}

TEST(DirectedGraphStreamTest, EmitsEachArcOnce) {
  GraphBuilder b;
  b.Add(0, 1);
  b.Add(1, 0);
  b.Add(1, 2);
  DirectedGraph g = std::move(b.BuildDirected()).value();
  DirectedGraphStream s(g);
  s.Reset();
  Edge e;
  int count = 0;
  while (s.Next(&e)) ++count;
  EXPECT_EQ(count, 3);
}

TEST(CountingEdgeStreamTest, CountsPassesAndEdges) {
  EdgeList el = PathGraph(6);
  EdgeListStream inner(el);
  PassStats stats;
  CountingEdgeStream s(inner, stats);
  Drain(s);
  Drain(s);
  EXPECT_EQ(stats.passes, 2u);
  EXPECT_EQ(stats.edges_scanned, 10u);
  stats.ReportStateWords(100);
  stats.ReportStateWords(50);
  EXPECT_EQ(stats.peak_state_words, 100u);
  EXPECT_NE(stats.ToString().find("passes=2"), std::string::npos);
}

class BinaryFileStreamTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(BinaryFileStreamTest, UnweightedRoundTrip) {
  path_ = ::testing::TempDir() + "/edges_unweighted.bin";
  EdgeList el = PathGraph(100);
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, /*weighted=*/false).ok());

  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ((*stream)->num_nodes(), 100u);
  EXPECT_EQ((*stream)->SizeHint(), 99u);

  for (int pass = 0; pass < 2; ++pass) {
    (*stream)->Reset();
    Edge e;
    EdgeId count = 0;
    while ((*stream)->Next(&e)) {
      EXPECT_EQ(e.v, e.u + 1);
      EXPECT_DOUBLE_EQ(e.w, 1.0);
      ++count;
    }
    EXPECT_EQ(count, 99u);
  }
}

TEST_F(BinaryFileStreamTest, WeightedRoundTrip) {
  path_ = ::testing::TempDir() + "/edges_weighted.bin";
  EdgeList el(3);
  el.Add(0, 1, 2.5);
  el.Add(1, 2, 0.25);
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, /*weighted=*/true).ok());

  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  (*stream)->Reset();
  Edge e;
  ASSERT_TRUE((*stream)->Next(&e));
  EXPECT_DOUBLE_EQ(e.w, 2.5);
  ASSERT_TRUE((*stream)->Next(&e));
  EXPECT_DOUBLE_EQ(e.w, 0.25);
  EXPECT_FALSE((*stream)->Next(&e));
}

TEST_F(BinaryFileStreamTest, OpenMissingFileFails) {
  auto stream = BinaryFileEdgeStream::Open("/nonexistent/nope.bin");
  ASSERT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), Status::Code::kIOError);
}

TEST_F(BinaryFileStreamTest, BadMagicRejected) {
  path_ = ::testing::TempDir() + "/garbage.bin";
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "this is not an edge file";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(BinaryFileStreamTest, TruncatedFileSurfacesIOError) {
  // A file whose header promises more edges than its body holds used to
  // end the pass silently — a wrong (but plausible) density downstream.
  path_ = ::testing::TempDir() + "/edges_truncated.bin";
  EdgeList el = PathGraph(2000);
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, /*weighted=*/false).ok());
  // Chop off the last 500 records plus half a record.
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 500 * 8 - 3);

  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE((*stream)->status().ok());

  (*stream)->Reset();
  Edge e;
  EdgeId count = 0;
  while ((*stream)->Next(&e)) ++count;
  EXPECT_LT(count, 1999u);
  const Status io = (*stream)->status();
  ASSERT_FALSE(io.ok());
  EXPECT_EQ(io.code(), Status::Code::kIOError);
  EXPECT_NE(io.message().find("truncated"), std::string::npos) << io.ToString();

  // The error is sticky across passes: the file stays bad.
  (*stream)->Reset();
  EXPECT_FALSE((*stream)->status().ok());
}

TEST_F(BinaryFileStreamTest, TruncationSurfacesThroughBatchPath) {
  path_ = ::testing::TempDir() + "/edges_truncated_batch.bin";
  EdgeList el = PathGraph(3000);
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, /*weighted=*/false).ok());
  std::filesystem::resize_file(path_,
                               std::filesystem::file_size(path_) - 1000 * 8);

  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  (*stream)->Reset();
  std::vector<Edge> buf(512);
  EdgeId total = 0;
  for (;;) {
    size_t got = (*stream)->NextBatch(buf.data(), buf.size());
    if (got == 0) break;
    total += got;
  }
  EXPECT_EQ(total, 2999u - 1000u);
  EXPECT_EQ((*stream)->status().code(), Status::Code::kIOError);
}

TEST_F(BinaryFileStreamTest, AlgorithmsAbortOnTruncatedFile) {
  // The full path of the bug: RunAlgorithm1 on a truncated stream must
  // return the IOError instead of a density computed from a partial pass.
  path_ = ::testing::TempDir() + "/edges_truncated_run.bin";
  EdgeList el = PathGraph(4000);
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, /*weighted=*/false).ok());
  std::filesystem::resize_file(path_,
                               std::filesystem::file_size(path_) - 800 * 8);

  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  Algorithm1Options opt;
  opt.epsilon = 0.5;
  auto r = RunAlgorithm1(**stream, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
}

TEST_F(BinaryFileStreamTest, ExactFinalRecordIsNotAnError) {
  // The final fread may be short without being a truncation: the last
  // buffer of a well-formed file usually is. Guard against regressing the
  // clean-EOF path while detecting real truncation.
  path_ = ::testing::TempDir() + "/edges_exact.bin";
  EdgeList el = PathGraph(1234);
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, /*weighted=*/false).ok());
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  for (int pass = 0; pass < 3; ++pass) {
    (*stream)->Reset();
    Edge e;
    EdgeId count = 0;
    while ((*stream)->Next(&e)) ++count;
    EXPECT_EQ(count, 1233u);
    EXPECT_TRUE((*stream)->status().ok());
  }
}

TEST_F(BinaryFileStreamTest, TracksBytesRead) {
  path_ = ::testing::TempDir() + "/edges_bytes.bin";
  EdgeList el = PathGraph(1000);
  ASSERT_TRUE(WriteBinaryEdgeFile(path_, el, false).ok());
  auto stream = BinaryFileEdgeStream::Open(path_);
  ASSERT_TRUE(stream.ok());
  Edge e;
  (*stream)->Reset();
  while ((*stream)->Next(&e)) {
  }
  EXPECT_GE((*stream)->bytes_read(), 999u * 8);
}

}  // namespace
}  // namespace densest
