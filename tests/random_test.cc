// Unit and statistical tests for the deterministic RNG.

#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace densest {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64BoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.UniformU64(1), 0u);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(17);
  double sum = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(23);
  int hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(29);
  double sum = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(1000, 100);
  ASSERT_EQ(sample.size(), 100u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (uint64_t x : sample) EXPECT_LT(x, 1000u);
}

TEST(RngTest, SampleWithoutReplacementAllWhenKGeqN) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(10, 15);
  ASSERT_EQ(sample.size(), 10u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SplitMixTest, Mix64IsStableAndNontrivial) {
  EXPECT_EQ(Mix64(0x12345678), Mix64(0x12345678));
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(Mix64(1), 1u);
  // Note: Mix64(0) == 0 by construction (the SplitMix64 finalizer fixes 0);
  // callers hash (seed ^ key), never a raw key, so this is harmless.
  EXPECT_EQ(Mix64(0), 0u);
}

}  // namespace
}  // namespace densest
