// Tests for the MapReduce engine, the §5.2 graph jobs, and the MR drivers'
// equivalence with the streaming algorithms.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/algorithm1.h"
#include "core/algorithm3.h"
#include "gen/erdos_renyi.h"
#include "gen/planted.h"
#include "graph/graph_builder.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/graph_jobs.h"
#include "mapreduce/job.h"
#include "mapreduce/mr_densest.h"
#include "common/thread_pool.h"

namespace densest {
namespace {

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ZeroAndOneCounts) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(CostModelTest, OverheadDominatesTinyJobs) {
  CostModel model;
  JobStats stats;  // zero records
  EXPECT_DOUBLE_EQ(SimulateJobSeconds(model, stats),
                   model.job_overhead_seconds);
}

TEST(CostModelTest, TimeGrowsWithRecords) {
  CostModel model;
  JobStats small, large;
  small.map_input_records = 1000;
  large.map_input_records = 1000000000;
  EXPECT_LT(SimulateJobSeconds(model, small),
            SimulateJobSeconds(model, large));
}

TEST(CostModelTest, AccumulateSums) {
  JobStats a, b;
  a.map_input_records = 5;
  a.simulated_seconds = 1.5;
  b.map_input_records = 7;
  b.simulated_seconds = 2.5;
  a.Accumulate(b);
  EXPECT_EQ(a.map_input_records, 12u);
  EXPECT_DOUBLE_EQ(a.simulated_seconds, 4.0);
  EXPECT_NE(a.ToString().find("map_in=12"), std::string::npos);
}

TEST(RunJobTest, WordCountStyleAggregation) {
  MapReduceEnv env;
  std::vector<KV<uint32_t, uint32_t>> input;
  // 10 records of key i%3.
  for (uint32_t i = 0; i < 10; ++i) input.push_back({i, i % 3});

  JobStats stats;
  auto counts = RunJob<uint32_t, uint32_t, uint32_t, uint64_t>(
      env, input,
      [](const uint32_t&, const uint32_t& group,
         Emitter<uint32_t, uint32_t>& emit) { emit.Emit(group, 1); },
      [](const uint32_t& key, const std::vector<uint32_t>& ones,
         Emitter<uint32_t, uint64_t>& emit) {
        emit.Emit(key, ones.size());
      },
      &stats);

  std::sort(counts.begin(), counts.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0].value, 4u);  // keys 0,3,6,9
  EXPECT_EQ(counts[1].value, 3u);
  EXPECT_EQ(counts[2].value, 3u);
  EXPECT_EQ(stats.map_input_records, 10u);
  EXPECT_EQ(stats.map_output_records, 10u);
  EXPECT_EQ(stats.reduce_input_groups, 3u);
  EXPECT_GT(stats.simulated_seconds, 0.0);
}

TEST(RunJobTest, DeterministicAcrossThreadCounts) {
  std::vector<KV<uint32_t, uint32_t>> input;
  for (uint32_t i = 0; i < 5000; ++i) input.push_back({i % 97, i});

  auto run = [&](size_t threads) {
    MapReduceEnv env({}, threads);
    auto out = RunJob<uint32_t, uint32_t, uint32_t, uint64_t>(
        env, input,
        [](const uint32_t& k, const uint32_t& v,
           Emitter<uint32_t, uint32_t>& emit) { emit.Emit(k, v); },
        [](const uint32_t& key, const std::vector<uint32_t>& vs,
           Emitter<uint32_t, uint64_t>& emit) {
          uint64_t sum = 0;
          for (uint32_t v : vs) sum += v;
          emit.Emit(key, sum);
        });
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    return out;
  };

  auto a = run(1), b = run(8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(GraphJobsTest, DegreeJobMatchesCsrDegrees) {
  EdgeList el = ErdosRenyiGnm(200, 800, 81);
  GraphBuilder b;
  b.ReserveNodes(el.num_nodes());
  for (const Edge& e : el.edges()) b.Add(e.u, e.v);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();

  MapReduceEnv env;
  auto degrees = MrDegreeJob(env, ToMrEdges(g.ToEdgeList().edges()));
  std::vector<EdgeId> deg(g.num_nodes(), 0);
  for (const auto& kv : degrees) deg[kv.key] = kv.value;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(deg[u], g.Degree(u)) << "u=" << u;
  }
}

TEST(GraphJobsTest, CombinedDegreeJobMatchesPlainDegreeJob) {
  EdgeList el = ErdosRenyiGnm(300, 2000, 82);
  MapReduceEnv env;
  MrEdges edges = ToMrEdges(el.edges());

  JobStats plain_stats, combined_stats;
  auto plain = MrDegreeJob(env, edges, &plain_stats);
  auto combined = MrDegreeJobCombined(env, edges, &combined_stats);

  auto by_key = [](const KV<NodeId, EdgeId>& a, const KV<NodeId, EdgeId>& b) {
    return a.key < b.key;
  };
  std::sort(plain.begin(), plain.end(), by_key);
  std::sort(combined.begin(), combined.end(), by_key);
  ASSERT_EQ(plain.size(), combined.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].key, combined[i].key);
    EXPECT_EQ(plain[i].value, combined[i].value);
  }

  // The combiner is what crosses the shuffle: fewer records, fewer bytes.
  EXPECT_EQ(combined_stats.map_output_records, 2 * el.num_edges());
  EXPECT_LT(combined_stats.combine_output_records,
            combined_stats.map_output_records);
  EXPECT_LT(combined_stats.shuffle_bytes, plain_stats.shuffle_bytes);
}

TEST(GraphJobsTest, CombinerInvarianceAcrossThreadCounts) {
  // Chunking changes which records each combiner sees; the final counts
  // must not.
  EdgeList el = ErdosRenyiGnm(200, 1500, 84);
  MrEdges edges = ToMrEdges(el.edges());
  auto run = [&](size_t threads) {
    MapReduceEnv env({}, threads);
    auto out = MrDegreeJobCombined(env, edges);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    return out;
  };
  auto a = run(1), b = run(8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(GraphJobsTest, DirectedDegreeJobMatchesCsr) {
  EdgeList el = ErdosRenyiDirectedGnm(150, 900, 83);
  DirectedGraph g = DirectedGraph::FromEdgeList(el);
  MapReduceEnv env;
  auto degrees = MrDirectedDegreeJob(env, ToMrEdges(el.edges()));
  std::vector<EdgeId> out_deg(g.num_nodes(), 0), in_deg(g.num_nodes(), 0);
  for (const auto& kv : degrees) {
    NodeId node = static_cast<NodeId>(kv.key >> 1);
    (kv.key & 1 ? in_deg : out_deg)[node] = kv.value;
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(out_deg[u], g.OutDegree(u));
    EXPECT_EQ(in_deg[u], g.InDegree(u));
  }
}

TEST(GraphJobsTest, CountEdgesJob) {
  EdgeList el = ErdosRenyiGnm(100, 321, 85);
  MapReduceEnv env;
  EXPECT_EQ(MrCountEdgesJob(env, ToMrEdges(el.edges())), 321u);
  EXPECT_EQ(MrCountEdgesJob(env, {}), 0u);
}

TEST(GraphJobsTest, RemoveNodesDropsExactlyIncidentEdges) {
  // Triangle 0-1-2 plus edge 2-3; removing node 2 leaves only 0-1.
  EdgeList el(4);
  el.Add(0, 1);
  el.Add(1, 2);
  el.Add(0, 2);
  el.Add(2, 3);
  MapReduceEnv env;
  NodeSet marked(4);
  marked.Insert(2);
  MrEdges out = MrRemoveNodesJob(env, ToMrEdges(el.edges()), marked);
  ASSERT_EQ(out.size(), 1u);
  NodeId a = std::min(out[0].key, out[0].value);
  NodeId bb = std::max(out[0].key, out[0].value);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(bb, 1u);
}

TEST(GraphJobsTest, RemoveNodesHandlesBothEndpointOrientations) {
  // Node marked on the *second* endpoint position must also be caught.
  EdgeList el(3);
  el.Add(0, 2);  // 2 in second position
  el.Add(2, 1);  // 2 in first position
  MapReduceEnv env;
  NodeSet marked(3);
  marked.Insert(2);
  MrEdges out = MrRemoveNodesJob(env, ToMrEdges(el.edges()), marked);
  EXPECT_TRUE(out.empty());
}

TEST(GraphJobsTest, RemoveArcsBySourceAndTarget) {
  EdgeList el(4);
  el.Add(0, 1);
  el.Add(1, 2);
  el.Add(2, 3);
  MapReduceEnv env;
  NodeSet marked(4);
  marked.Insert(1);

  MrEdges by_src = MrRemoveArcsJob(env, ToMrEdges(el.edges()), marked,
                                   /*by_source=*/true);
  // Only arc 1->2 has source 1.
  ASSERT_EQ(by_src.size(), 2u);

  MrEdges by_dst = MrRemoveArcsJob(env, ToMrEdges(el.edges()), marked,
                                   /*by_source=*/false);
  // Only arc 0->1 has target 1.
  ASSERT_EQ(by_dst.size(), 2u);
  for (const auto& kv : by_dst) EXPECT_NE(kv.value, 1u);
}

// ---- Driver equivalence with the streaming algorithms. ----

class MrUndirectedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(MrUndirectedEquivalenceTest, MatchesStreamingAlgorithm1) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  GraphBuilder b;
  EdgeList raw = ErdosRenyiGnm(120, 700, seed);
  b.ReserveNodes(raw.num_nodes());
  for (const Edge& e : raw.edges()) b.Add(e.u, e.v);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  EdgeList el = g.ToEdgeList();
  el.set_num_nodes(g.num_nodes());

  Algorithm1Options stream_opt;
  stream_opt.epsilon = 0.5;
  auto streaming = RunAlgorithm1(g, stream_opt);
  ASSERT_TRUE(streaming.ok());

  MapReduceEnv env;
  MrDensestOptions mr_opt;
  mr_opt.epsilon = 0.5;
  auto mr = RunMrDensestUndirected(env, el, mr_opt);
  ASSERT_TRUE(mr.ok());

  EXPECT_EQ(mr->result.nodes, streaming->nodes) << "seed=" << seed;
  EXPECT_DOUBLE_EQ(mr->result.density, streaming->density);
  EXPECT_EQ(mr->result.passes, streaming->passes);
  EXPECT_EQ(mr->pass_seconds.size(), mr->result.passes);
  for (double s : mr->pass_seconds) EXPECT_GT(s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(MrSweep, MrUndirectedEquivalenceTest,
                         ::testing::Range(700, 708));

class MrDirectedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(MrDirectedEquivalenceTest, MatchesStreamingAlgorithm3) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  EdgeList el = ErdosRenyiDirectedGnm(100, 800, seed);
  el.set_num_nodes(100);
  DirectedGraph g = DirectedGraph::FromEdgeList(el);

  Algorithm3Options stream_opt;
  stream_opt.c = 2.0;
  stream_opt.epsilon = 1.0;
  auto streaming = RunAlgorithm3(g, stream_opt);
  ASSERT_TRUE(streaming.ok());

  MapReduceEnv env;
  MrDirectedOptions mr_opt;
  mr_opt.c = 2.0;
  mr_opt.epsilon = 1.0;
  auto mr = RunMrDensestDirected(env, el, mr_opt);
  ASSERT_TRUE(mr.ok());

  EXPECT_EQ(mr->result.s_nodes, streaming->s_nodes) << "seed=" << seed;
  EXPECT_EQ(mr->result.t_nodes, streaming->t_nodes);
  EXPECT_DOUBLE_EQ(mr->result.density, streaming->density);
  EXPECT_EQ(mr->result.passes, streaming->passes);
}

INSTANTIATE_TEST_SUITE_P(MrDirectedSweep, MrDirectedEquivalenceTest,
                         ::testing::Range(800, 806));

TEST(MrDriverTest, InvalidArguments) {
  MapReduceEnv env;
  EdgeList el(3);
  el.Add(0, 1);
  MrDensestOptions bad;
  bad.epsilon = -1;
  EXPECT_FALSE(RunMrDensestUndirected(env, el, bad).ok());
  EXPECT_FALSE(RunMrDensestUndirected(env, EdgeList(0), {}).ok());
  MrDirectedOptions bad_dir;
  bad_dir.c = 0;
  EXPECT_FALSE(RunMrDensestDirected(env, el, bad_dir).ok());
}

TEST(MrDriverTest, SimulatedTimeDecaysAcrossPasses) {
  // The graph shrinks every pass, so simulated per-pass time is
  // non-increasing (up to the constant overhead floor) and the first pass
  // is the most expensive.
  PlantedGraph pg = PlantDenseBlocks(3000, 20000, {{40, 0.9}}, 91);
  GraphBuilder b;
  b.ReserveNodes(pg.edges.num_nodes());
  for (const Edge& e : pg.edges.edges()) b.Add(e.u, e.v);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  EdgeList el = g.ToEdgeList();
  el.set_num_nodes(g.num_nodes());

  CostModel model;
  model.map_seconds_per_record = 1e-3;  // exaggerate data-dependent cost
  model.reduce_seconds_per_record = 1e-3;
  MapReduceEnv env(model);
  MrDensestOptions opt;
  opt.epsilon = 0.5;
  auto mr = RunMrDensestUndirected(env, el, opt);
  ASSERT_TRUE(mr.ok());
  ASSERT_GE(mr->pass_seconds.size(), 2u);
  double first = mr->pass_seconds.front();
  for (double s : mr->pass_seconds) EXPECT_LE(s, first * 1.05);
}

}  // namespace
}  // namespace densest
