// Unit tests for EdgeList cleaning primitives.

#include "graph/edge_list.h"

#include <gtest/gtest.h>

namespace densest {
namespace {

TEST(EdgeListTest, AddGrowsNodeRange) {
  EdgeList e;
  EXPECT_EQ(e.num_nodes(), 0u);
  e.Add(3, 7);
  EXPECT_EQ(e.num_nodes(), 8u);
  e.Add(1, 2);
  EXPECT_EQ(e.num_nodes(), 8u);  // never shrinks
  EXPECT_EQ(e.num_edges(), 2u);
}

TEST(EdgeListTest, SetNumNodesOnlyRaises) {
  EdgeList e(10);
  e.set_num_nodes(5);
  EXPECT_EQ(e.num_nodes(), 10u);
  e.set_num_nodes(20);
  EXPECT_EQ(e.num_nodes(), 20u);
}

TEST(EdgeListTest, TotalWeightSumsWeights) {
  EdgeList e;
  e.Add(0, 1, 2.5);
  e.Add(1, 2, 0.5);
  EXPECT_DOUBLE_EQ(e.TotalWeight(), 3.0);
}

TEST(EdgeListTest, CanonicalizeOrdersEndpoints) {
  EdgeList e;
  e.Add(5, 2);
  e.Add(1, 4);
  e.CanonicalizeUndirected();
  EXPECT_EQ(e.edges()[0].u, 2u);
  EXPECT_EQ(e.edges()[0].v, 5u);
  EXPECT_EQ(e.edges()[1].u, 1u);
  EXPECT_EQ(e.edges()[1].v, 4u);
}

TEST(EdgeListTest, DeduplicateSumsWeights) {
  EdgeList e;
  e.Add(0, 1, 1.0);
  e.Add(0, 1, 2.0);
  e.Add(1, 2, 1.0);
  e.DeduplicateSummingWeights();
  ASSERT_EQ(e.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(e.edges()[0].w, 3.0);
  EXPECT_DOUBLE_EQ(e.edges()[1].w, 1.0);
}

TEST(EdgeListTest, DeduplicateTreatsOrientationAsDistinct) {
  // (1,0) and (0,1) are different arcs unless canonicalized first.
  EdgeList e;
  e.Add(1, 0);
  e.Add(0, 1);
  e.DeduplicateSummingWeights();
  EXPECT_EQ(e.num_edges(), 2u);
  e.CanonicalizeUndirected();
  e.DeduplicateSummingWeights();
  EXPECT_EQ(e.num_edges(), 1u);
}

TEST(EdgeListTest, RemoveSelfLoops) {
  EdgeList e;
  e.Add(0, 0);
  e.Add(0, 1);
  e.Add(2, 2);
  EXPECT_EQ(e.RemoveSelfLoops(), 2u);
  EXPECT_EQ(e.num_edges(), 1u);
  EXPECT_EQ(e.edges()[0].v, 1u);
}

TEST(EdgeListTest, AppendMergesNodesAndEdges) {
  EdgeList a(5), b;
  a.Add(0, 1);
  b.Add(6, 7);
  a.Append(b);
  EXPECT_EQ(a.num_edges(), 2u);
  EXPECT_EQ(a.num_nodes(), 8u);
}

}  // namespace
}  // namespace densest
