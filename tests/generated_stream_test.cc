// Tests for generator-backed streams (edges recomputed every pass).

#include "stream/generated_stream.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/algorithm1.h"
#include "graph/graph_builder.h"

namespace densest {
namespace {

std::vector<std::pair<NodeId, NodeId>> Drain(EdgeStream& s) {
  std::vector<std::pair<NodeId, NodeId>> out;
  s.Reset();
  Edge e;
  while (s.Next(&e)) out.emplace_back(e.u, e.v);
  return out;
}

TEST(GnpEdgeStreamTest, IdenticalAcrossPasses) {
  GnpEdgeStream s(200, 0.05, 42);
  auto first = Drain(s);
  auto second = Drain(s);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(GnpEdgeStreamTest, EdgeCountNearExpectation) {
  const NodeId n = 400;
  const double p = 0.03;
  GnpEdgeStream s(n, p, 7);
  auto edges = Drain(s);
  double expected = p * n * (n - 1) / 2.0;
  EXPECT_GT(edges.size(), expected * 0.8);
  EXPECT_LT(edges.size(), expected * 1.2);
}

TEST(GnpEdgeStreamTest, NoDuplicatesOrSelfLoops) {
  GnpEdgeStream s(300, 0.04, 9);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (auto [u, v] : Drain(s)) {
    EXPECT_NE(u, v);
    EXPECT_LT(u, v);  // canonical enumeration order
    EXPECT_TRUE(seen.insert({u, v}).second);
  }
}

TEST(GnpEdgeStreamTest, ExtremeProbabilities) {
  GnpEdgeStream none(100, 0.0, 1);
  EXPECT_TRUE(Drain(none).empty());
  GnpEdgeStream all(20, 1.0, 1);
  EXPECT_EQ(Drain(all).size(), 190u);
}

TEST(GnpEdgeStreamTest, Algorithm1RunsWithoutMaterializing) {
  // The whole pipeline over a purely generated graph: O(n) algorithm
  // state, O(1) stream state.
  GnpEdgeStream s(2000, 0.01, 13);
  Algorithm1Options opt;
  opt.epsilon = 0.5;
  auto r = RunAlgorithm1(s, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->density, 5.0);  // ~G(2000, 0.01): avg degree ~20
  EXPECT_GT(r->passes, 1u);
}

TEST(CirculantEdgeStreamTest, MatchesDegreeContract) {
  CirculantEdgeStream s(30, 6);
  auto edges = Drain(s);
  EXPECT_EQ(edges.size(), 90u);  // n * d / 2
  // Build and check all degrees are exactly 6.
  GraphBuilder b;
  b.ReserveNodes(30);
  for (auto [u, v] : edges) b.Add(u, v);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  for (NodeId u = 0; u < 30; ++u) EXPECT_EQ(g.Degree(u), 6u);
}

TEST(CirculantEdgeStreamTest, RepeatablePasses) {
  CirculantEdgeStream s(16, 4);
  EXPECT_EQ(Drain(s), Drain(s));
}

TEST(CirculantEdgeStreamTest, RegularGraphDensityViaAlgorithm1) {
  CirculantEdgeStream s(100, 8);
  Algorithm1Options opt;
  opt.epsilon = 0.0;
  auto r = RunAlgorithm1(s, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->density, 4.0);  // d/2
  EXPECT_EQ(r->passes, 1u);
}

// ---------------------------------------------------------------------------
// First-pass materialization (EdgeCache).

TEST(MaterializeTest, GnpReplayMatchesRegeneration) {
  GnpEdgeStream plain(300, 0.04, 77);
  GnpEdgeStream cached(300, 0.04, 77, /*materialize_budget_bytes=*/1 << 20);
  const auto want = Drain(plain);
  // Pass 1 records, passes 2 and 3 replay from memory; all must be equal.
  EXPECT_EQ(Drain(cached), want);
  EXPECT_EQ(cached.SizeHint(), 0u);  // not yet promoted: Drain stops at end,
                                     // promotion happens on the next Reset
  EXPECT_EQ(Drain(cached), want);
  EXPECT_EQ(cached.SizeHint(), want.size());  // now serving from the cache
  EXPECT_EQ(Drain(cached), want);
}

TEST(MaterializeTest, GnpServesZeroCopyViews) {
  GnpEdgeStream s(200, 0.05, 79, /*materialize_budget_bytes=*/1 << 20);
  const auto want = Drain(s);
  s.Reset();  // promotes the recorded pass
  std::vector<std::pair<NodeId, NodeId>> got;
  Edge scratch[64];
  for (;;) {
    auto view = s.NextView(scratch, 64);
    if (view.empty()) break;
    // Zero-copy: views point into the cache, not the scratch buffer.
    EXPECT_TRUE(view.data() < scratch || view.data() >= scratch + 64);
    for (const Edge& e : view) got.emplace_back(e.u, e.v);
  }
  EXPECT_EQ(got, want);
}

TEST(MaterializeTest, BudgetBlownFallsBackToRegeneration) {
  // A ~2000-edge graph against a 10-edge budget: caching must abandon and
  // every pass regenerate, identical to the uncached stream.
  GnpEdgeStream plain(300, 0.05, 81);
  GnpEdgeStream cached(300, 0.05, 81,
                       /*materialize_budget_bytes=*/10 * sizeof(Edge));
  const auto want = Drain(plain);
  EXPECT_GT(want.size(), 10u);
  EXPECT_EQ(Drain(cached), want);
  EXPECT_EQ(Drain(cached), want);
  EXPECT_EQ(cached.SizeHint(), 0u);  // never promoted
}

TEST(MaterializeTest, IncompleteFirstPassRestartsRecording) {
  GnpEdgeStream s(300, 0.04, 83, /*materialize_budget_bytes=*/1 << 20);
  Edge e;
  s.Reset();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(s.Next(&e));  // partial pass
  GnpEdgeStream plain(300, 0.04, 83);
  EXPECT_EQ(Drain(s), Drain(plain));  // restart records cleanly
  EXPECT_EQ(Drain(s), Drain(plain));  // and replays correctly
}

TEST(MaterializeTest, CirculantCachedMatchesAndKnowsBudgetUpfront) {
  CirculantEdgeStream plain(101, 6);
  CirculantEdgeStream cached(101, 6, /*materialize_budget_bytes=*/1 << 20);
  // 101*3 edges * 16 bytes ~ 4.8 KB: too big for a 1 KB budget.
  CirculantEdgeStream tiny(101, 6, /*materialize_budget_bytes=*/1 << 10);
  const auto want = Drain(plain);
  for (int pass = 0; pass < 3; ++pass) {
    EXPECT_EQ(Drain(cached), want) << pass;
    EXPECT_EQ(Drain(tiny), want) << pass;
  }
}

TEST(MaterializeTest, ZeroCapNextBatchDoesNotCompleteARecording) {
  CirculantEdgeStream s(20, 4, /*materialize_budget_bytes=*/1 << 20);
  Edge buf[8];
  s.Reset();
  ASSERT_EQ(s.NextBatch(buf, 8), 8u);   // partial pass recorded
  EXPECT_EQ(s.NextBatch(buf, 0), 0u);   // must NOT mark the pass complete
  CirculantEdgeStream plain(20, 4);
  EXPECT_EQ(Drain(s), Drain(plain));    // restart records the full pass
  EXPECT_EQ(Drain(s), Drain(plain));    // replay serves the full pass
}

TEST(MaterializeTest, Algorithm1IdenticalWithAndWithoutCache) {
  Algorithm1Options opt;
  opt.epsilon = 0.5;
  GnpEdgeStream plain(1000, 0.02, 87);
  GnpEdgeStream cached(1000, 0.02, 87, /*materialize_budget_bytes=*/8 << 20);
  auto r1 = RunAlgorithm1(plain, opt);
  auto r2 = RunAlgorithm1(cached, opt);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->density, r2->density);
  EXPECT_EQ(r1->passes, r2->passes);
  EXPECT_EQ(r1->nodes, r2->nodes);
}

}  // namespace
}  // namespace densest
