// Tests for generator-backed streams (edges recomputed every pass).

#include "stream/generated_stream.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/algorithm1.h"
#include "graph/graph_builder.h"

namespace densest {
namespace {

std::vector<std::pair<NodeId, NodeId>> Drain(EdgeStream& s) {
  std::vector<std::pair<NodeId, NodeId>> out;
  s.Reset();
  Edge e;
  while (s.Next(&e)) out.emplace_back(e.u, e.v);
  return out;
}

TEST(GnpEdgeStreamTest, IdenticalAcrossPasses) {
  GnpEdgeStream s(200, 0.05, 42);
  auto first = Drain(s);
  auto second = Drain(s);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(GnpEdgeStreamTest, EdgeCountNearExpectation) {
  const NodeId n = 400;
  const double p = 0.03;
  GnpEdgeStream s(n, p, 7);
  auto edges = Drain(s);
  double expected = p * n * (n - 1) / 2.0;
  EXPECT_GT(edges.size(), expected * 0.8);
  EXPECT_LT(edges.size(), expected * 1.2);
}

TEST(GnpEdgeStreamTest, NoDuplicatesOrSelfLoops) {
  GnpEdgeStream s(300, 0.04, 9);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (auto [u, v] : Drain(s)) {
    EXPECT_NE(u, v);
    EXPECT_LT(u, v);  // canonical enumeration order
    EXPECT_TRUE(seen.insert({u, v}).second);
  }
}

TEST(GnpEdgeStreamTest, ExtremeProbabilities) {
  GnpEdgeStream none(100, 0.0, 1);
  EXPECT_TRUE(Drain(none).empty());
  GnpEdgeStream all(20, 1.0, 1);
  EXPECT_EQ(Drain(all).size(), 190u);
}

TEST(GnpEdgeStreamTest, Algorithm1RunsWithoutMaterializing) {
  // The whole pipeline over a purely generated graph: O(n) algorithm
  // state, O(1) stream state.
  GnpEdgeStream s(2000, 0.01, 13);
  Algorithm1Options opt;
  opt.epsilon = 0.5;
  auto r = RunAlgorithm1(s, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->density, 5.0);  // ~G(2000, 0.01): avg degree ~20
  EXPECT_GT(r->passes, 1u);
}

TEST(CirculantEdgeStreamTest, MatchesDegreeContract) {
  CirculantEdgeStream s(30, 6);
  auto edges = Drain(s);
  EXPECT_EQ(edges.size(), 90u);  // n * d / 2
  // Build and check all degrees are exactly 6.
  GraphBuilder b;
  b.ReserveNodes(30);
  for (auto [u, v] : edges) b.Add(u, v);
  UndirectedGraph g = std::move(b.BuildUndirected()).value();
  for (NodeId u = 0; u < 30; ++u) EXPECT_EQ(g.Degree(u), 6u);
}

TEST(CirculantEdgeStreamTest, RepeatablePasses) {
  CirculantEdgeStream s(16, 4);
  EXPECT_EQ(Drain(s), Drain(s));
}

TEST(CirculantEdgeStreamTest, RegularGraphDensityViaAlgorithm1) {
  CirculantEdgeStream s(100, 8);
  Algorithm1Options opt;
  opt.epsilon = 0.0;
  auto r = RunAlgorithm1(s, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->density, 4.0);  // d/2
  EXPECT_EQ(r->passes, 1u);
}

}  // namespace
}  // namespace densest
