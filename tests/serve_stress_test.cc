// Copyright 2026 The densest Authors.
// Reader-pool stress over the epoch-published serving plane, written to
// fail loudly under ThreadSanitizer if the seqlock discipline regresses:
// one writer replays a sliding-window workload through the production
// publish seam (ReplayUpdates -> AnswerPlane::Publish) while raw reader
// threads hammer ReadAnswer/ReadMembership/ReadSnapshot and a QueryService
// client submits batches — all concurrently. After the join, every single
// observation must be bit-exact against the writer's recorded publication
// log: one publication's payload, never a blend of two. The assertions
// catch torn reads even without TSan; the cross-thread access pattern is
// what makes a memory-ordering regression visible to the race detector.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/random.h"
#include "dynamic/dynamic_densest.h"
#include "dynamic/replay.h"
#include "gen/erdos_renyi.h"
#include "gtest/gtest.h"
#include "serve/answer_plane.h"
#include "serve/query_service.h"
#include "stream/memory_stream.h"
#include "stream/update_stream.h"

namespace densest {
namespace {

// TSan runs every schedule ~5-20x slower; fewer, smaller rounds keep the
// suite fast while still crossing the interesting interleavings.
#ifdef DENSEST_TSAN
constexpr int kRounds = 2;
constexpr EdgeId kEdges = 800;
#else
constexpr int kRounds = 4;
constexpr EdgeId kEdges = 2000;
#endif
constexpr NodeId kNodes = 120;
constexpr uint64_t kWindow = 400;
constexpr int kRawReaders = 3;

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// One thing some thread observed mid-replay, checked post-join against
/// the writer log.
struct Observed {
  Answer answer;
  bool has_member = false;
  NodeId node = 0;
  bool member = false;
  bool has_snapshot = false;
  uint64_t prefix_updates = 0;
  std::vector<NodeId> members;
};

/// Bit-exact check of one observation against the publication its epoch
/// names. Epoch 0 (pre-first-publish) must be the default empty answer.
testing::AssertionResult MatchesLog(const Observed& ob,
                                    const std::vector<PlaneSnapshot>& log) {
  const Answer& got = ob.answer;
  Answer want;  // epoch 0: the default
  uint64_t want_prefix = 0;
  const std::vector<NodeId>* want_members = nullptr;
  if (got.epoch > 0) {
    if (got.epoch > log.size()) {
      return testing::AssertionFailure()
             << "epoch " << got.epoch << " beyond " << log.size()
             << " publications";
    }
    const PlaneSnapshot& entry = log[got.epoch - 1];
    want = entry.answer;
    want.epoch = got.epoch;
    want_prefix = entry.prefix_updates;
    want_members = &entry.members;
  }
  if (!SameBits(got.density, want.density) ||
      !SameBits(got.upper_bound, want.upper_bound) ||
      got.size != want.size || got.certified != want.certified ||
      got.stale != want.stale) {
    return testing::AssertionFailure()
           << "torn answer at epoch " << got.epoch << ": got density "
           << got.density << " size " << got.size << ", log says "
           << want.density << " size " << want.size;
  }
  if (ob.has_member) {
    const bool member =
        want_members != nullptr &&
        std::binary_search(want_members->begin(), want_members->end(),
                           ob.node);
    if (ob.member != member) {
      return testing::AssertionFailure()
             << "membership of node " << ob.node << " at epoch " << got.epoch
             << " disagrees with the log";
    }
  }
  if (ob.has_snapshot) {
    if (ob.prefix_updates != want_prefix ||
        (want_members != nullptr ? ob.members != *want_members
                                 : !ob.members.empty())) {
      return testing::AssertionFailure()
             << "snapshot at epoch " << got.epoch
             << " disagrees with the log (prefix " << ob.prefix_updates
             << " vs " << want_prefix << ")";
    }
  }
  return testing::AssertionSuccess();
}

std::vector<EdgeUpdate> MakeWorkload(uint64_t seed) {
  EdgeList edges = ErdosRenyiGnm(kNodes, kEdges, seed);
  EdgeListStream base(edges);
  SlidingWindowUpdateStream windowed(base, kWindow);
  std::vector<EdgeUpdate> updates;
  windowed.Reset();
  EdgeUpdate u;
  while (windowed.Next(&u)) updates.push_back(u);
  return updates;
}

TEST(ServeStressTest, ConcurrentReadersSeeOnlyWholePublications) {
  for (int round = 0; round < kRounds; ++round) {
    const std::vector<EdgeUpdate> updates =
        MakeWorkload(91 + static_cast<uint64_t>(round));
    auto engine = DynamicDensest::Create(kNodes);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    MemoryUpdateStream stream(updates, kNodes);

    AnswerPlane plane(kNodes);
    plane.EnableWriterLog();
    QueryServiceOptions qopt;
    qopt.num_readers = 2;
    qopt.queue_capacity = 8;
    QueryService service(plane, qopt);

    std::atomic<bool> stop{false};
    // The writer spins on this before replaying: a 3k-update replay can
    // finish before std::thread even schedules a reader, and a stress
    // with no overlap stresses nothing.
    std::atomic<int> ready{0};
    std::vector<std::vector<Observed>> observed(kRawReaders + 1);

    // Raw readers: all three read paths, recorded verbatim.
    std::vector<std::thread> readers;
    for (int t = 0; t < kRawReaders; ++t) {
      readers.emplace_back([&, t] {
        Rng rng(Mix64(1000 + static_cast<uint64_t>(t)));
        std::vector<Observed>& mine = observed[static_cast<size_t>(t)];
        ready.fetch_add(1, std::memory_order_release);
        while (!stop.load(std::memory_order_acquire)) {
          Observed ob;
          switch (rng.UniformU64(3)) {
            case 0:
              ob.answer = plane.ReadAnswer();
              break;
            case 1: {
              ob.node = static_cast<NodeId>(rng.UniformU64(kNodes));
              const AnswerPlane::Membership m = plane.ReadMembership(ob.node);
              ob.answer = m.answer;
              ob.member = m.member;
              ob.has_member = true;
              break;
            }
            default: {
              PlaneSnapshot snap = plane.ReadSnapshot();
              ob.answer = snap.answer;
              ob.prefix_updates = snap.prefix_updates;
              ob.members = std::move(snap.members);
              ob.has_snapshot = true;
              break;
            }
          }
          mine.push_back(std::move(ob));
        }
      });
    }

    // A batched client through the pool, same recording.
    std::thread client([&] {
      Rng rng(Mix64(77));
      std::vector<Observed>& mine = observed.back();
      std::vector<ServeResult> results;
      ready.fetch_add(1, std::memory_order_release);
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<ServeQuery> batch(4);
        for (ServeQuery& q : batch) {
          const uint64_t draw = rng.UniformU64(3);
          q.kind = draw == 0   ? ServeQuery::Kind::kDensity
                   : draw == 1 ? ServeQuery::Kind::kMembership
                               : ServeQuery::Kind::kSnapshot;
          q.node = static_cast<NodeId>(rng.UniformU64(kNodes));
        }
        const Status s = service.QueryBatch(batch, &results);
        if (s.code() == Status::Code::kUnavailable) continue;  // backpressure
        ASSERT_TRUE(s.ok()) << s.ToString();
        for (size_t i = 0; i < results.size(); ++i) {
          Observed ob;
          ob.answer = results[i].answer;
          if (batch[i].kind == ServeQuery::Kind::kMembership) {
            ob.has_member = true;
            ob.node = batch[i].node;
            ob.member = results[i].member;
          } else if (batch[i].kind == ServeQuery::Kind::kSnapshot) {
            ob.has_snapshot = true;
            ob.prefix_updates = results[i].prefix_updates;
            ob.members = std::move(results[i].nodes);
          }
          mine.push_back(std::move(ob));
        }
      }
    });

    // The writer: the production publish seam, small cadence so the
    // readers race many publications.
    while (ready.load(std::memory_order_acquire) < kRawReaders + 1) {
      std::this_thread::yield();
    }
    ReplayOptions ropt;
    ropt.query_every = 0;
    ropt.publish = &plane;
    ropt.publish_every = 32;
    auto report = ReplayUpdates(stream, **engine, ropt);

    stop.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();
    client.join();
    service.Stop();
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    // Post-join the log is plain memory; audit every observation.
    const std::vector<PlaneSnapshot>& log = plane.writer_log();
    EXPECT_GT(log.size(), 0u);
    uint64_t audited = 0;
    for (const std::vector<Observed>& per_thread : observed) {
      for (const Observed& ob : per_thread) {
        ASSERT_TRUE(MatchesLog(ob, log));
        ++audited;
      }
    }
    EXPECT_GT(audited, 0u);
    // Epochs in the log are the writer's publication order, 1..k.
    for (size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].answer.epoch, i + 1);
    }
  }
}

}  // namespace
}  // namespace densest
