// Copyright 2026 The densest Authors.
// Umbrella header: the full public API of the densest library.
//
//   #include "densest.h"
//
//   densest::UndirectedGraph g = ...;
//   auto result = densest::RunAlgorithm1(g, {.epsilon = 0.5});

#ifndef DENSEST_DENSEST_H_
#define DENSEST_DENSEST_H_

#include "common/histogram.h"    // IWYU pragma: export
#include "common/random.h"       // IWYU pragma: export
#include "common/status.h"       // IWYU pragma: export
#include "common/timer.h"        // IWYU pragma: export
#include "core/algorithm1.h"     // IWYU pragma: export
#include "core/algorithm2.h"     // IWYU pragma: export
#include "core/algorithm3.h"     // IWYU pragma: export
#include "core/charikar.h"       // IWYU pragma: export
#include "core/density.h"        // IWYU pragma: export
#include "core/enumerate.h"      // IWYU pragma: export
#include "core/kcore.h"          // IWYU pragma: export
#include "core/multi_run.h"      // IWYU pragma: export
#include "flow/brute_force.h"    // IWYU pragma: export
#include "flow/goldberg.h"       // IWYU pragma: export
#include "gen/chung_lu.h"        // IWYU pragma: export
#include "gen/datasets.h"        // IWYU pragma: export
#include "gen/erdos_renyi.h"     // IWYU pragma: export
#include "gen/lower_bound.h"     // IWYU pragma: export
#include "gen/planted.h"         // IWYU pragma: export
#include "gen/preferential_attachment.h"  // IWYU pragma: export
#include "gen/regular.h"         // IWYU pragma: export
#include "gen/rmat.h"            // IWYU pragma: export
#include "graph/graph_builder.h" // IWYU pragma: export
#include "graph/stats.h"         // IWYU pragma: export
#include "graph/subgraph.h"      // IWYU pragma: export
#include "io/csv_writer.h"       // IWYU pragma: export
#include "io/edge_list_io.h"     // IWYU pragma: export
#include "mapreduce/mr_densest.h"  // IWYU pragma: export
#include "sketch/sketched_algorithm1.h"  // IWYU pragma: export
#include "stream/file_stream.h"  // IWYU pragma: export
#include "stream/generated_stream.h"  // IWYU pragma: export
#include "stream/memory_stream.h"  // IWYU pragma: export
#include "stream/pass_cursor.h"  // IWYU pragma: export
#include "stream/pass_stats.h"   // IWYU pragma: export

#endif  // DENSEST_DENSEST_H_
