// Copyright 2026 The densest Authors.
// Simple accumulating histogram / summary statistics, used by the MapReduce
// cost model and the benchmark harness to report distributions.

#ifndef DENSEST_COMMON_HISTOGRAM_H_
#define DENSEST_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace densest {

/// \brief Streaming summary of a sequence of doubles: count, mean, min, max,
/// and approximate quantiles (exact for <= 4096 samples, reservoir beyond).
class Histogram {
 public:
  explicit Histogram(size_t reservoir_capacity = 4096);

  /// Records one observation.
  void Add(double value);

  /// Folds `other` into this histogram, as if this one had also seen all
  /// of other's observations. Count / sum / min / max are exact. The
  /// retained sample is exact while the combined samples fit capacity;
  /// beyond that it is rebuilt by sampling the two pools proportionally
  /// to their observation counts (deterministic, seeded off rng_state_),
  /// so quantiles stay approximations of the merged distribution. Used to
  /// combine per-thread / per-reader histograms at report time.
  void Merge(const Histogram& other);

  /// Number of observations recorded.
  uint64_t count() const { return count_; }
  /// Mean of all observations (0 if empty).
  double Mean() const;
  /// Minimum observation (+inf if empty).
  double Min() const { return min_; }
  /// Maximum observation (-inf if empty).
  double Max() const { return max_; }
  /// Sum of all observations.
  double Sum() const { return sum_; }
  /// Quantile in [0,1] over the retained sample (exact when all samples
  /// were retained). Returns 0 for an empty histogram.
  double Quantile(double q) const;

  /// One-line rendering: "count=… mean=… min=… p50=… p99=… max=…".
  std::string ToString() const;

 private:
  size_t capacity_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_;
  double max_;
  std::vector<double> sample_;
  uint64_t rng_state_;
};

}  // namespace densest

#endif  // DENSEST_COMMON_HISTOGRAM_H_
