// Copyright 2026 The densest Authors.
// RocksDB-style status codes: library entry points that can fail return
// Status (or StatusOr<T>) instead of throwing.

#ifndef DENSEST_COMMON_STATUS_H_
#define DENSEST_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace densest {

/// \brief Result of a fallible operation.
///
/// A Status is either OK or carries an error code plus a human-readable
/// message. Statuses are cheap to copy and move. Use the factory functions
/// (Status::OK(), Status::InvalidArgument(...), ...) to construct one.
///
/// [[nodiscard]]: a dropped Status is a swallowed failure — every
/// Status-returning call must be consumed (checked, returned, or
/// explicitly voided with a comment saying why ignoring is sound). The
/// build enforces this with -Werror=unused-result; tools/lint.py checks
/// the attribute stays present.
class [[nodiscard]] Status {
 public:
  /// Error categories, mirroring the subset of RocksDB codes this library
  /// needs.
  enum class Code {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kIOError = 3,
    kOutOfRange = 4,
    kFailedPrecondition = 5,
    kInternal = 6,
    kUnavailable = 7,
    kCancelled = 8,
    kDeadlineExceeded = 9,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  /// \name Factory functions
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// @}

  /// Returns true iff the status is OK.
  bool ok() const { return code_ == Code::kOk; }
  /// Returns the error category.
  Code code() const { return code_; }
  /// True for transient faults a bounded retry may heal (kUnavailable),
  /// false for permanent errors like kIOError that must abort loudly.
  /// Cancellation and deadline expiry are deliberately NOT retryable:
  /// retrying work the caller just asked to stop would defeat the point.
  bool IsRetryable() const { return code_ == Code::kUnavailable; }
  /// True when the operation was stopped cooperatively (kCancelled or
  /// kDeadlineExceeded) rather than failing on its own. Callers use this to
  /// distinguish "the work was shed" from "the work is broken".
  bool IsCancellation() const {
    return code_ == Code::kCancelled || code_ == Code::kDeadlineExceeded;
  }
  /// Returns the error message ("" for OK statuses).
  const std::string& message() const { return message_; }
  /// Renders e.g. "InvalidArgument: epsilon must be >= 0".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Usage:
/// \code
///   StatusOr<UndirectedGraph> g = LoadEdgeList(path);
///   if (!g.ok()) return g.status();
///   Use(g.value());
/// \endcode
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit construction from a value (OK).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status needs a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  /// Rvalue deref moves the value out — without this, `std::move(*f())`
  /// on a temporary binds to the const& overload and silently copies.
  T&& operator*() && {
    assert(ok());
    return std::move(*value_);
  }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace densest

#endif  // DENSEST_COMMON_STATUS_H_
