// Copyright 2026 The densest Authors.
// Cooperative cancellation and deadlines. A CancelToken is a shared flag
// (plus an optional wall-clock deadline) that long computations poll at
// bounded-work granularity — once per shard round, pass round, map round,
// flow phase, or replay batch. Engines take `const CancelToken*` with a
// nullptr default: a null token costs nothing (one pointer test per round),
// and a non-null token is observed within one bounded unit of work.
//
// Cancellation is cooperative, never preemptive: an engine that observes
// the token finishes its current bounded unit, leaves its output in a
// consistent (if partial) state, and returns kCancelled/kDeadlineExceeded.
// Both codes are non-retryable — see Status::IsRetryable().

#ifndef DENSEST_COMMON_CANCEL_H_
#define DENSEST_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace densest {

/// \brief Shared cancellation flag with an optional deadline.
///
/// Thread-safe: any thread may call Cancel(); any number of threads may
/// poll Check()/should_stop() concurrently. The deadline is fixed at
/// construction; checking it calls steady_clock::now() only when a
/// deadline exists, so flag-only tokens stay a single relaxed atomic load.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token with no deadline; stops only via Cancel().
  CancelToken() = default;

  /// A token that additionally expires `budget` from now.
  static CancelToken WithDeadlineAfter(Clock::duration budget) {
    return CancelToken(Clock::now() + budget);
  }
  /// Millisecond convenience for option structs that carry a double.
  static CancelToken WithDeadlineAfterMs(double ms) {
    return WithDeadlineAfter(std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms)));
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called (does not consult the deadline).
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// True when the token has a deadline and it has passed.
  bool deadline_expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// The cheap poll: cancelled, or past the deadline.
  bool should_stop() const { return cancelled() || deadline_expired(); }

  /// OK while running; kCancelled / kDeadlineExceeded once stopped.
  /// Cancel() wins over deadline expiry when both hold, so an explicit
  /// cancel is always reported as such.
  Status Check() const;

 private:
  explicit CancelToken(Clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

/// Null-safe poll: false for a null token. This is the form the hot loops
/// use; with `cancel == nullptr` it folds to one predictable branch.
inline bool ShouldStop(const CancelToken* cancel) {
  return cancel != nullptr && cancel->should_stop();
}

/// Null-safe status check: OK for a null token.
inline Status CheckCancel(const CancelToken* cancel) {
  return cancel != nullptr ? cancel->Check() : Status::OK();
}

}  // namespace densest

#endif  // DENSEST_COMMON_CANCEL_H_
