// Copyright 2026 The densest Authors.
// Bounded retry-with-backoff for transient (kUnavailable) IO faults.
// Permanent faults (kIOError) are never retried: a dead disk stays dead,
// and retrying it would only delay the loud abort the sticky-status model
// promises. Backoff is decorrelated-jittered (AWS architecture blog,
// "Exponential Backoff And Jitter") so concurrent retriers spread out
// instead of synchronizing into retry storms; the jitter stream is seeded
// per retry loop, so injected-fault tests stay deterministic, and a zero
// seed disables jitter entirely (pure exponential, the legacy schedule).

#ifndef DENSEST_COMMON_RETRY_H_
#define DENSEST_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/random.h"

namespace densest {

/// \brief Knobs for the retry loops at the IO seams (binary stream
/// prefetch, spill reads). `max_attempts` counts total tries, so 1 means
/// "no retries".
struct RetryPolicy {
  int max_attempts = 4;
  double base_delay_ms = 0.1;  // doubled per retry: 0.1, 0.2, 0.4, ...
  double max_delay_ms = 50.0;
  /// Seed for decorrelated jitter. 0 (the default) disables jitter: every
  /// retry loop sleeps the exact DelayMs schedule, which the fault-injection
  /// tests rely on. Nonzero seeds produce a deterministic jittered schedule
  /// per seed; concurrent retriers should use distinct seeds.
  uint64_t jitter_seed = 0;

  /// Deterministic exponential backoff delay before retry number `retry`
  /// (0-based). This is the no-jitter schedule and the upper envelope's
  /// shape; jittered delays are drawn by RetryBackoff below.
  double DelayMs(int retry) const {
    double d = base_delay_ms;
    for (int i = 0; i < retry && d < max_delay_ms; ++i) d *= 2.0;
    return d < max_delay_ms ? d : max_delay_ms;
  }
};

/// \brief Per-retry-loop backoff state. With a zero jitter_seed this
/// reproduces the legacy pure-exponential schedule exactly; with a nonzero
/// seed it draws decorrelated jitter: delay_k = min(max, uniform(base,
/// 3 * delay_{k-1})), which decorrelates concurrent retriers while keeping
/// the expected delay growing geometrically. One instance per retry loop —
/// the draw depends on the previous delay, so the state must not be shared.
class RetryBackoff {
 public:
  explicit RetryBackoff(const RetryPolicy& policy)
      : policy_(policy),
        rng_state_(policy.jitter_seed),
        prev_ms_(policy.base_delay_ms) {}

  /// Delay before the next retry, advancing the internal state.
  double NextDelayMs() {
    const double d = policy_.jitter_seed == 0
                         ? policy_.DelayMs(retry_++)
                         : NextJitteredMs();
    prev_ms_ = d;
    return d;
  }

  /// Sleeps for NextDelayMs().
  void Sleep() {
    const auto us = static_cast<int64_t>(NextDelayMs() * 1000.0);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

 private:
  double NextJitteredMs() {
    const double lo = policy_.base_delay_ms;
    const double hi = prev_ms_ * 3.0;
    double d = lo;
    if (hi > lo) {
      // 53-bit mantissa draw in [0, 1); deterministic across platforms.
      const double u =
          static_cast<double>(SplitMix64(rng_state_) >> 11) * 0x1.0p-53;
      d = lo + u * (hi - lo);
    }
    return d < policy_.max_delay_ms ? d : policy_.max_delay_ms;
  }

  RetryPolicy policy_;
  uint64_t rng_state_;
  double prev_ms_;
  int retry_ = 0;
};

/// \brief Observable outcome of the retry loops, surfaced through
/// PassStats / JobStats so transient faults that healed are visible and
/// distinguishable from permanent ones that aborted.
struct IoRetryStats {
  uint64_t retries = 0;    ///< individual retry attempts made
  uint64_t healed = 0;     ///< operations that succeeded after >=1 retry
  uint64_t exhausted = 0;  ///< operations that failed every attempt

  void Accumulate(const IoRetryStats& other) {
    retries += other.retries;
    healed += other.healed;
    exhausted += other.exhausted;
  }
};

/// Sleeps for the policy's backoff before retry number `retry` (0-based).
inline void BackoffSleep(const RetryPolicy& policy, int retry) {
  const auto us = static_cast<int64_t>(policy.DelayMs(retry) * 1000.0);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace densest

#endif  // DENSEST_COMMON_RETRY_H_
