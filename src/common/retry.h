// Copyright 2026 The densest Authors.
// Bounded retry-with-backoff for transient (kUnavailable) IO faults.
// Permanent faults (kIOError) are never retried: a dead disk stays dead,
// and retrying it would only delay the loud abort the sticky-status model
// promises. The policy is deliberately tiny — attempts and delays, no
// jitter — so injected-fault tests stay deterministic.

#ifndef DENSEST_COMMON_RETRY_H_
#define DENSEST_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace densest {

/// \brief Knobs for the retry loops at the IO seams (binary stream
/// prefetch, spill reads). `max_attempts` counts total tries, so 1 means
/// "no retries".
struct RetryPolicy {
  int max_attempts = 4;
  double base_delay_ms = 0.1;  // doubled per retry: 0.1, 0.2, 0.4, ...
  double max_delay_ms = 50.0;

  /// Exponential backoff delay before retry number `retry` (0-based).
  double DelayMs(int retry) const {
    double d = base_delay_ms;
    for (int i = 0; i < retry && d < max_delay_ms; ++i) d *= 2.0;
    return d < max_delay_ms ? d : max_delay_ms;
  }
};

/// \brief Observable outcome of the retry loops, surfaced through
/// PassStats / JobStats so transient faults that healed are visible and
/// distinguishable from permanent ones that aborted.
struct IoRetryStats {
  uint64_t retries = 0;    ///< individual retry attempts made
  uint64_t healed = 0;     ///< operations that succeeded after >=1 retry
  uint64_t exhausted = 0;  ///< operations that failed every attempt

  void Accumulate(const IoRetryStats& other) {
    retries += other.retries;
    healed += other.healed;
    exhausted += other.exhausted;
  }
};

/// Sleeps for the policy's backoff before retry number `retry` (0-based).
inline void BackoffSleep(const RetryPolicy& policy, int retry) {
  const auto us = static_cast<int64_t>(policy.DelayMs(retry) * 1000.0);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace densest

#endif  // DENSEST_COMMON_RETRY_H_
