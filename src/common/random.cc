#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace densest {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  // Lemire, "Fast random integer generation in an interval", 2019.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  UniformU64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double rate) {
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  if (k >= n) {
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm: k iterations, expected O(k) set operations.
  std::unordered_set<uint64_t> chosen;
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = UniformU64(j + 1);
    if (chosen.count(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  return out;
}

}  // namespace densest
