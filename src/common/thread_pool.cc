#include "common/thread_pool.h"

#include <algorithm>

namespace densest {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(mu_);
      // Drain outstanding work before honoring shutdown: tasks Submitted
      // before the destructor ran must still execute (their futures are
      // how callers learn the work happened).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      --outstanding_;
      if (outstanding_ == 0) done_cv_.NotifyAll();
    }
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task =
      std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> future = task->get_future();
  {
    MutexLock lock(mu_);
    // Counted in outstanding_ so the worker-side decrement stays balanced;
    // a concurrent ParallelFor simply waits for submitted tasks too.
    ++outstanding_;
    queue_.push([task] { (*task)(); });
  }
  work_cv_.NotifyOne();
  return future;
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  {
    MutexLock lock(mu_);
    outstanding_ += count;
    for (size_t i = 0; i < count; ++i) {
      queue_.push([&fn, i] { fn(i); });
    }
  }
  work_cv_.NotifyAll();
  MutexLock lock(mu_);
  while (outstanding_ != 0) done_cv_.Wait(mu_);
}

}  // namespace densest
