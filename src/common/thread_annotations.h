// Copyright 2026 The densest Authors.
// Portable Clang Thread Safety Analysis annotations (no-ops elsewhere).
//
// These macros attach the repo's locking discipline to the types that
// carry it — which mutex guards which member, which functions require or
// acquire which capability — so `clang -Wthread-safety` verifies the
// discipline at compile time instead of trusting comments. GCC and MSVC
// compile them away entirely: the annotations are a contract checked on
// the Clang CI legs, never a runtime dependency.
//
// libstdc++'s std::mutex carries no capability attributes, so raw
// std::mutex members are invisible to the analysis. Mutex-protected
// structures must use the annotated wrappers in common/mutex.h
// (Mutex / MutexLock / CondVar) for the analysis to see their locking.
//
// Naming follows the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed
// DENSEST_ to keep the global namespace clean.

#ifndef DENSEST_COMMON_THREAD_ANNOTATIONS_H_
#define DENSEST_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define DENSEST_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define DENSEST_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Declares a type as a capability (a lock): its Lock/Unlock methods carry
/// DENSEST_ACQUIRE/DENSEST_RELEASE and holding it satisfies
/// DENSEST_REQUIRES of the same capability.
#define DENSEST_CAPABILITY(x) DENSEST_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (MutexLock).
#define DENSEST_SCOPED_CAPABILITY DENSEST_THREAD_ANNOTATION__(scoped_lockable)

/// The member may only be read or written while holding `x`.
#define DENSEST_GUARDED_BY(x) DENSEST_THREAD_ANNOTATION__(guarded_by(x))

/// The pointed-to data (not the pointer itself) is guarded by `x`.
#define DENSEST_PT_GUARDED_BY(x) DENSEST_THREAD_ANNOTATION__(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities
/// (and does not release them).
#define DENSEST_REQUIRES(...) \
  DENSEST_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The function must NOT be called while holding the listed capabilities
/// (it acquires them itself; calling with them held would deadlock).
#define DENSEST_EXCLUDES(...) \
  DENSEST_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define DENSEST_ACQUIRE(...) \
  DENSEST_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define DENSEST_RELEASE(...) \
  DENSEST_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define DENSEST_RETURN_CAPABILITY(x) \
  DENSEST_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis (e.g. adopt/release tricks around std::condition_variable).
/// Every use must carry a comment saying why the analysis cannot follow.
#define DENSEST_NO_THREAD_SAFETY_ANALYSIS \
  DENSEST_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // DENSEST_COMMON_THREAD_ANNOTATIONS_H_
