// Copyright 2026 The densest Authors.
// Deterministic, seedable random number generation. Every randomized
// component in the library (generators, sketches, samplers) takes an explicit
// seed so experiments are reproducible bit-for-bit.

#ifndef DENSEST_COMMON_RANDOM_H_
#define DENSEST_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace densest {

/// \brief SplitMix64 step; used for seeding and as a cheap stateless mixer.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Mixes a 64-bit value into a well-distributed 64-bit hash
/// (finalizer of SplitMix64). Stateless; suitable for hashing node ids.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** PRNG (Blackman & Vigna). Fast, high-quality, and
/// deterministic across platforms, unlike std::mt19937 distributions.
class Rng {
 public:
  /// Seeds the generator; two Rng instances with equal seeds produce
  /// identical streams on every platform.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  /// Returns the next 64 uniformly random bits.
  uint64_t NextU64();

  /// Returns a uniform integer in [0, bound); bound must be > 0.
  /// Uses Lemire's nearly-divisionless rejection method.
  uint64_t UniformU64(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns a sample from Exponential(rate).
  double Exponential(double rate);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformU64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (Floyd's algorithm); returns fewer than k only if k > n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  uint64_t s_[4];
};

}  // namespace densest

#endif  // DENSEST_COMMON_RANDOM_H_
