// Copyright 2026 The densest Authors.
// Annotated mutex / condition-variable wrappers over the std primitives.
//
// libstdc++'s std::mutex has no thread-safety-analysis attributes, so a
// raw std::mutex member makes every GUARDED_BY on its data unverifiable.
// These thin wrappers re-expose std::mutex and std::condition_variable
// with the capability annotations from common/thread_annotations.h, so
// Clang's -Wthread-safety can prove the repo's lock discipline:
//
//   Mutex mu_;
//   int guarded_ DENSEST_GUARDED_BY(mu_);
//   ...
//   MutexLock lock(mu_);        // scoped acquire, analysis-visible
//   while (guarded_ == 0) cv_.Wait(mu_);   // Wait REQUIRES(mu_)
//
// Zero-cost: every method is a one-line forwarder the compiler inlines.

#ifndef DENSEST_COMMON_MUTEX_H_
#define DENSEST_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace densest {

class CondVar;

/// \brief std::mutex with capability annotations.
class DENSEST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DENSEST_ACQUIRE() { mu_.lock(); }
  void Unlock() DENSEST_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Scoped holder of a Mutex (the only way the repo takes locks —
/// a bare Lock()/Unlock() pair cannot survive an exception).
class DENSEST_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DENSEST_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DENSEST_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable bound to an annotated Mutex. Wait() requires
/// the mutex held and holds it again on return, which is exactly what the
/// analysis needs to keep tracking guarded reads in the wait loop:
///
///   while (!condition_on_guarded_state) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups happen; always call from a predicate loop.
  void Wait(Mutex& mu) DENSEST_REQUIRES(mu) {
    // The adopt/release dance hands the already-held mutex to a
    // std::unique_lock for the duration of the wait without an extra
    // lock/unlock round trip; from the analysis' point of view the
    // capability is simply held across the call, which is the truth.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Like Wait(), but gives up after `ms` milliseconds. Returns false on
  /// timeout, true when notified (spurious wakeups report true too — the
  /// caller's predicate loop re-checks either way). Deadline-bounded
  /// waiters (a query submitter holding a CancelToken deadline) poll their
  /// predicate through this instead of blocking unboundedly.
  bool WaitFor(Mutex& mu, double ms) DENSEST_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::duration<double, std::milli>(ms));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace densest

#endif  // DENSEST_COMMON_MUTEX_H_
