// Copyright 2026 The densest Authors.
// The writer->reader epoch handoff primitive behind the serving planes: a
// seqlock whose sequence word doubles as a publication epoch.
//
// One writer publishes a payload of relaxed atomics; any number of readers
// snapshot it wait-free-with-retry and never block the writer. The
// protocol (Boehm, "Can seqlocks get along with programming language
// memory models?", MSPC 2012 — the formulation that is race-free under
// the C++ memory model AND under ThreadSanitizer):
//
//   writer                                reader
//   ------                                ------
//   seq.store(s+1, relaxed)   [odd]       s1 = seq.load(acquire)  [retry odd]
//   atomic_thread_fence(release)          payload loads, relaxed
//   payload stores, relaxed               atomic_thread_fence(acquire)
//   seq.store(s+2, release)   [even]      s2 = seq.load(relaxed)
//                                         retry unless s2 == s1
//
// Why this shape: the release fence orders the odd store before every
// payload store, so a reader that acquires an even s1 and then re-reads
// the same value at s2 knows no writer entered the critical section while
// it copied — the payload words it read all belong to publication s1/2.
// The payload MUST be relaxed atomics, not plain memory: a plain-memory
// seqlock's speculative reads race with the writer by definition (the
// retry loop only discards the values after the fact), which is exactly
// what TSan flags. Relaxed atomic payload words make every access a
// non-racing atomic op while compiling to the same plain loads and stores
// on x86-64 and ARM64.
//
// Epochs: publication k leaves the sequence word at 2k, so epoch() ==
// seq/2 names the current publication and readers can tag the snapshots
// they took with the epoch they were taken from.
//
// Single-writer by contract: BeginWrite/EndWrite are not re-entrant and
// must only ever be called from one thread at a time (the repo's dynamic
// service is single-writer by design; nothing here enforces mutual
// exclusion between writers).

#ifndef DENSEST_COMMON_EPOCH_H_
#define DENSEST_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>

namespace densest {

/// \brief Seqlock sequence word with epoch accounting. Holds no payload —
/// the owner declares its payload fields as relaxed std::atomic members
/// and brackets writes with BeginWrite()/EndWrite(), reads with
/// ReadBegin()/ReadRetry().
class EpochSeqLock {
 public:
  EpochSeqLock() = default;
  EpochSeqLock(const EpochSeqLock&) = delete;
  EpochSeqLock& operator=(const EpochSeqLock&) = delete;

  /// Writer: enters the critical section (sequence goes odd) and orders
  /// the transition before the caller's subsequent relaxed payload stores.
  void BeginWrite() {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }

  /// Writer: publishes (sequence goes even) with release semantics, making
  /// every payload store since BeginWrite() visible to any reader whose
  /// ReadBegin() observes the new sequence.
  void EndWrite() {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
  }

  /// Reader: spins past any in-flight write and returns an even sequence
  /// to validate against. The acquire load synchronizes with the
  /// EndWrite() that published it.
  uint64_t ReadBegin() const {
    uint64_t s = seq_.load(std::memory_order_acquire);
    while (s & 1) s = seq_.load(std::memory_order_acquire);
    return s;
  }

  /// Reader: true when the snapshot copied since ReadBegin() may be torn
  /// (a writer entered the critical section meanwhile) and must be
  /// retried. The acquire fence orders the caller's relaxed payload loads
  /// before the re-read of the sequence word.
  bool ReadRetry(uint64_t begin) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return seq_.load(std::memory_order_relaxed) != begin;
  }

  /// Publication count: EndWrite() has run `epoch()` times. Readers
  /// normally derive the epoch from the validated ReadBegin() value
  /// (begin / 2) so it names the publication their snapshot came from.
  uint64_t epoch() const {
    return seq_.load(std::memory_order_acquire) / 2;
  }

  /// The epoch a validated ReadBegin() value belongs to.
  static uint64_t EpochOf(uint64_t begin_sequence) {
    return begin_sequence / 2;
  }

 private:
  std::atomic<uint64_t> seq_{0};
};

}  // namespace densest

#endif  // DENSEST_COMMON_EPOCH_H_
