#include "common/cancel.h"

namespace densest {

Status CancelToken::Check() const {
  if (cancelled()) return Status::Cancelled("cancelled by caller");
  if (deadline_expired()) return Status::DeadlineExceeded("deadline exceeded");
  return Status::OK();
}

}  // namespace densest
