// Copyright 2026 The densest Authors.
// The single registry of failpoint names. Every DENSEST_FAILPOINT seam in
// the library must use a name listed here, and Failpoints::Set refuses to
// arm anything else — so a typo in a test or a --failpoint flag fails
// loudly instead of silently arming a point that no seam ever evaluates.
//
// Grammar: `subsystem.operation`, both segments lowercase
// [a-z0-9_]+ — e.g. "spill.read_at". The `t` subsystem is reserved for
// tests exercising the registry itself (t.* names are armable but no
// library seam evaluates them).
//
// tools/lint.py cross-checks this list against the tree: every
// DENSEST_FAILPOINT("...") literal in src/ must appear here, every entry
// here must be evaluated by some seam, and every name must match the
// grammar. Add the name here in the same change that adds the seam.

#ifndef DENSEST_COMMON_FAILPOINT_NAMES_H_
#define DENSEST_COMMON_FAILPOINT_NAMES_H_

#include <cstddef>
#include <string_view>

namespace densest {

/// Canonical failpoint names, sorted. Keep in sync with the
/// DENSEST_FAILPOINT seams (tools/lint.py enforces both directions).
inline constexpr std::string_view kFailpointNames[] = {
    "edge_file.write",     // WriteBinaryEdgeFile body writes
    "edge_list.read",      // text edge-list parsing
    "edge_stream.read",    // BinaryFileEdgeStream prefetch fread
    "replay.crash",        // ReplayUpdates mid-replay process kill
    "serve.dequeue",       // QueryService reader-side batch processing
    "serve.enqueue",       // QueryService submit-side admission
    "snapshot.read",       // snapshot file read/decode
    "snapshot.write",      // snapshot temp-file write
    "spill.append",        // SpillFile::Append
    "spill.read",          // SpillFile::Reader::Read
    "spill.read_at",       // SpillFile::ReadAt (merge path)
    "update_file.flush",   // WriteBinaryUpdateFile final flush
    "update_file.write",   // WriteBinaryUpdateFile body writes
    "update_stream.read",  // BinaryFileUpdateStream reads
};

/// True when `name` matches the `subsystem.operation` grammar.
constexpr bool FailpointNameWellFormed(std::string_view name) {
  auto segment_ok = [](std::string_view seg) {
    if (seg.empty()) return false;
    for (char c : seg) {
      const bool ok =
          (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
      if (!ok) return false;
    }
    return true;
  };
  const size_t dot = name.find('.');
  if (dot == std::string_view::npos) return false;
  if (name.find('.', dot + 1) != std::string_view::npos) return false;
  return segment_ok(name.substr(0, dot)) && segment_ok(name.substr(dot + 1));
}

/// True when `name` may be armed: a registered seam name, or a well-formed
/// name in the reserved test subsystem `t`.
constexpr bool IsRegisteredFailpoint(std::string_view name) {
  if (!FailpointNameWellFormed(name)) return false;
  if (name.substr(0, 2) == "t.") return true;
  for (std::string_view registered : kFailpointNames) {
    if (name == registered) return true;
  }
  return false;
}

}  // namespace densest

#endif  // DENSEST_COMMON_FAILPOINT_NAMES_H_
