// Copyright 2026 The densest Authors.
// Failpoint registry: named, deterministic fault-injection trigger points
// compiled into every IO seam of the library (binary edge/update stream
// reads, spill write/read/merge, snapshot write/read). A failpoint is armed
// from tests or the CLI (--failpoint=name:spec) with a small spec grammar;
// an unarmed failpoint is one mutex-guarded hash lookup per evaluation, and
// when DENSEST_FAILPOINTS_ENABLED is 0 the seams compile to nothing at all.
//
// Spec grammar — comma-separated clauses, e.g. "after=2,times=1,kind=unavailable":
//
//   off               disarm the point (same as Clear)
//   after=N           skip the first N evaluations, then start firing
//   prob=P            fire each evaluation with probability P (needs seed)
//   seed=S            PRNG seed for prob (default 1; deterministic stream)
//   times=K           stop firing after K fires (default: fire forever)
//   kind=io           inject a permanent IOError            (default)
//   kind=unavailable  inject a transient, retryable fault (kUnavailable)
//   kind=short        deliver a short read (torn file / truncated stream)
//
// The three kinds map onto the library's failure taxonomy: `io` models a
// dead disk (sticky, aborts loudly), `unavailable` models a transient fault
// a bounded retry-with-backoff should heal, `short` models torn/truncated
// data which the sticky-status seams must surface as IOError rather than a
// silent early end-of-stream.

#ifndef DENSEST_COMMON_FAILPOINT_H_
#define DENSEST_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

#ifndef DENSEST_FAILPOINTS_ENABLED
#define DENSEST_FAILPOINTS_ENABLED 0
#endif

namespace densest {

/// \brief What an armed failpoint injects when it fires.
enum class FailpointAction : uint8_t {
  kNone = 0,     ///< not armed / did not fire — proceed normally
  kIOError,      ///< permanent IO failure (sticky, non-retryable)
  kUnavailable,  ///< transient failure — retry policies should heal it
  kShortRead,    ///< deliver fewer bytes than asked (torn / truncated data)
};

/// \brief Process-wide registry of armed failpoints. Thread-safe: the
/// binary stream evaluates its read failpoint from the prefetch thread
/// while tests arm/clear from the main thread.
class Failpoints {
 public:
  static Failpoints& Instance();

  /// True when the library was built with -DDENSEST_FAILPOINTS=ON; when
  /// false, Set fails and every evaluation site compiles to kNone.
  static constexpr bool compiled_in() { return DENSEST_FAILPOINTS_ENABLED != 0; }

  /// Arms `name` with `spec` (grammar above). Fails with InvalidArgument
  /// on a malformed spec or a name not in the registry
  /// (common/failpoint_names.h — a typo would arm a point no seam ever
  /// evaluates), and FailedPrecondition when failpoints are compiled
  /// out — arming a fault that can never fire must be loud.
  Status Set(const std::string& name, const std::string& spec);

  /// Arms from a CLI flag value: one or more ';'-separated "name:spec"
  /// entries, e.g. "spill.read_at:after=2,kind=short;replay.crash:after=1".
  Status SetFromFlag(const std::string& flag);

  void Clear(const std::string& name);
  void ClearAll();

  /// Observability for tests: how often `name` was evaluated / fired.
  uint64_t evaluations(const std::string& name) const;
  uint64_t fires(const std::string& name) const;

  /// Evaluates the failpoint (called from the instrumented seams via the
  /// DENSEST_FAILPOINT macro; prefer the macro so disabled builds pay
  /// nothing). Unarmed names return kNone.
  FailpointAction Eval(const char* name);

 private:
  Failpoints() = default;
  struct Impl;
  Impl* impl();  // lazily constructed, never destroyed (used from atexit paths)
};

}  // namespace densest

#if DENSEST_FAILPOINTS_ENABLED
#define DENSEST_FAILPOINT(name) ::densest::Failpoints::Instance().Eval(name)
#else
#define DENSEST_FAILPOINT(name) ::densest::FailpointAction::kNone
#endif

#endif  // DENSEST_COMMON_FAILPOINT_H_
