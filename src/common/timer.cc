#include "common/timer.h"

namespace densest {

double WallTimer::ElapsedSeconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

uint64_t WallTimer::ElapsedMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start_)
          .count());
}

}  // namespace densest
