// Copyright 2026 The densest Authors.
// Wall-clock timing utilities for the benchmark harness.

#ifndef DENSEST_COMMON_TIMER_H_
#define DENSEST_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace densest {

/// \brief Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  /// Starts (or restarts) the stopwatch.
  WallTimer() { Restart(); }

  /// Resets elapsed time to zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const;

  /// Elapsed microseconds since construction or last Restart().
  uint64_t ElapsedMicros() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace densest

#endif  // DENSEST_COMMON_TIMER_H_
