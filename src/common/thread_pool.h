// Copyright 2026 The densest Authors.
// Minimal fixed-size thread pool shared by the MapReduce simulator and the
// streaming pass engine. Deterministic results are preserved by keeping
// per-task output buffers and merging them in task order.
//
// Concurrency contract (machine-checked by Clang -Wthread-safety via the
// annotations below): `mu_` guards the queue, the outstanding-task count
// and the shutdown flag. Workers block on `work_cv_` for new tasks;
// ParallelFor blocks on `done_cv_` until outstanding_ drains to zero.
// Shutdown protocol: the destructor sets shutdown_ under the lock, wakes
// every worker, and joins; workers finish draining the queue first, so
// every task Submitted before destruction still runs.

#ifndef DENSEST_COMMON_THREAD_POOL_H_
#define DENSEST_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace densest {

/// \brief Fixed-size worker pool with a blocking ParallelFor.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool() DENSEST_EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for i in [0, count) across the pool; returns when all
  /// calls completed. fn must be safe to call concurrently for distinct i.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn)
      DENSEST_EXCLUDES(mu_);

  /// Enqueues one task to run asynchronously; the returned future becomes
  /// ready when it has run (and rethrows anything it threw). The caller
  /// keeps working while the task executes — this is how the file stream
  /// overlaps its next fread with decoding the current buffer.
  std::future<void> Submit(std::function<void()> fn) DENSEST_EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() DENSEST_EXCLUDES(mu_);

  // Written only by the constructor, before any worker can observe the
  // pool; joined by the destructor. Needs no lock.
  std::vector<std::thread> threads_;

  Mutex mu_;
  CondVar work_cv_;  // signaled when the queue grows or shutdown_ flips
  CondVar done_cv_;  // signaled when outstanding_ reaches zero
  std::queue<std::function<void()>> queue_ DENSEST_GUARDED_BY(mu_);
  size_t outstanding_ DENSEST_GUARDED_BY(mu_) = 0;
  bool shutdown_ DENSEST_GUARDED_BY(mu_) = false;
};

}  // namespace densest

#endif  // DENSEST_COMMON_THREAD_POOL_H_
