// Copyright 2026 The densest Authors.
// Minimal fixed-size thread pool shared by the MapReduce simulator and the
// streaming pass engine. Deterministic results are preserved by keeping
// per-task output buffers and merging them in task order.

#ifndef DENSEST_COMMON_THREAD_POOL_H_
#define DENSEST_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace densest {

/// \brief Fixed-size worker pool with a blocking ParallelFor.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for i in [0, count) across the pool; returns when all
  /// calls completed. fn must be safe to call concurrently for distinct i.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Enqueues one task to run asynchronously; the returned future becomes
  /// ready when it has run (and rethrows anything it threw). The caller
  /// keeps working while the task executes — this is how the file stream
  /// overlaps its next fread with decoding the current buffer.
  std::future<void> Submit(std::function<void()> fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> queue_;
  size_t outstanding_ = 0;
  bool shutdown_ = false;
};

}  // namespace densest

#endif  // DENSEST_COMMON_THREAD_POOL_H_
