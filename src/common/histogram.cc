#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/random.h"

namespace densest {

Histogram::Histogram(size_t reservoir_capacity)
    : capacity_(reservoir_capacity),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      rng_state_(0x4157e5e2d9ULL) {
  sample_.reserve(std::min<size_t>(capacity_, 1024));
}

void Histogram::Add(double value) {
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (sample_.size() < capacity_) {
    sample_.push_back(value);
  } else {
    // Vitter's reservoir sampling: keep each prefix element with equal prob.
    uint64_t j = SplitMix64(rng_state_) % count_;
    if (j < capacity_) sample_[j] = value;
  }
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 && other.sample_.size() <= capacity_) {
    // Adopt other's retained sample wholesale (clipped reservoirs keep
    // their own capacity_; a bigger donor falls through to the resample).
    count_ = other.count_;
    sum_ = other.sum_;
    min_ = other.min_;
    max_ = other.max_;
    sample_ = other.sample_;
    return;
  }
  const uint64_t merged_count = count_ + other.count_;
  const double merged_sum = sum_ + other.sum_;
  const double merged_min = std::min(min_, other.min_);
  const double merged_max = std::max(max_, other.max_);
  if (sample_.size() + other.sample_.size() <= capacity_) {
    sample_.insert(sample_.end(), other.sample_.begin(), other.sample_.end());
  } else {
    // Rebuild the reservoir: draw capacity_ values, each from this pool
    // or other's proportionally to true observation mass (not retained
    // sizes — a 10^6-count reservoir and a 10^2-count one retain equally
    // many values but deserve very different weight). Sampling is with
    // replacement within each pool, which is the standard approximation
    // for merging reservoirs without replaying the streams.
    std::vector<double> merged;
    merged.reserve(capacity_);
    for (size_t i = 0; i < capacity_; ++i) {
      const uint64_t pick = SplitMix64(rng_state_) % merged_count;
      const std::vector<double>* pool =
          pick < count_ ? &sample_ : &other.sample_;
      // A capacity-0 donor (or an empty self with an oversized donor) has
      // mass but no retained values; fall back to the non-empty pool.
      if (pool->empty()) pool = pool == &sample_ ? &other.sample_ : &sample_;
      if (pool->empty()) break;
      merged.push_back((*pool)[SplitMix64(rng_state_) % pool->size()]);
    }
    sample_ = std::move(merged);
  }
  count_ = merged_count;
  sum_ = merged_sum;
  min_ = merged_min;
  max_ = merged_max;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (sample_.empty()) return 0.0;
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " min=" << (count_ ? min_ : 0)
     << " p50=" << Quantile(0.5) << " p99=" << Quantile(0.99)
     << " max=" << (count_ ? max_ : 0);
  return os.str();
}

}  // namespace densest
