#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/random.h"

namespace densest {

Histogram::Histogram(size_t reservoir_capacity)
    : capacity_(reservoir_capacity),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      rng_state_(0x4157e5e2d9ULL) {
  sample_.reserve(std::min<size_t>(capacity_, 1024));
}

void Histogram::Add(double value) {
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (sample_.size() < capacity_) {
    sample_.push_back(value);
  } else {
    // Vitter's reservoir sampling: keep each prefix element with equal prob.
    uint64_t j = SplitMix64(rng_state_) % count_;
    if (j < capacity_) sample_[j] = value;
  }
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (sample_.empty()) return 0.0;
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " min=" << (count_ ? min_ : 0)
     << " p50=" << Quantile(0.5) << " p99=" << Quantile(0.99)
     << " max=" << (count_ ? max_ : 0);
  return os.str();
}

}  // namespace densest
