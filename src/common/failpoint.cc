#include "common/failpoint.h"

#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/failpoint_names.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace densest {

namespace {

/// One armed trigger. All counters are guarded by the registry mutex.
struct Point {
  uint64_t after = 0;       // skip this many evaluations before firing
  uint64_t times = 0;       // stop after this many fires (0 = forever)
  double prob = 1.0;        // fire probability once past `after`
  uint64_t prng = 1;        // SplitMix64 state for prob draws
  FailpointAction kind = FailpointAction::kIOError;
  uint64_t evaluations = 0;
  uint64_t fires = 0;
};

std::vector<std::string> SplitList(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

struct Failpoints::Impl {
  mutable Mutex mu;
  std::unordered_map<std::string, Point> points DENSEST_GUARDED_BY(mu);
};

Failpoints::Impl* Failpoints::impl() {
  // Leaked on purpose: seams may evaluate failpoints from background
  // threads during static destruction (stream destructors join their
  // prefetch pool), so the registry must outlive everything.
  static Impl* instance = new Impl();  // lint:allow(naked-new) — leaked singleton
  return instance;
}

Failpoints& Failpoints::Instance() {
  static Failpoints registry;
  return registry;
}

Status Failpoints::Set(const std::string& name, const std::string& spec) {
  if (!compiled_in()) {
    return Status::FailedPrecondition(
        "failpoints compiled out (build with -DDENSEST_FAILPOINTS=ON)");
  }
  if (name.empty()) return Status::InvalidArgument("empty failpoint name");
  // Only names from the single registry (common/failpoint_names.h) may be
  // armed: a typo would otherwise arm a point no seam ever evaluates and
  // the injected fault would silently never fire.
  if (!IsRegisteredFailpoint(name)) {
    return Status::InvalidArgument(
        "unregistered failpoint '" + name +
        "' (see common/failpoint_names.h; names follow subsystem.operation)");
  }
  if (spec == "off") {
    Clear(name);
    return Status::OK();
  }
  Point p;
  bool saw_prob = false;
  for (const std::string& clause : SplitList(spec, ',')) {
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    const std::string key = clause.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : clause.substr(eq + 1);
    auto parse_u64 = [&](uint64_t* out) -> bool {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') return false;
      *out = v;
      return true;
    };
    if (key == "after") {
      if (!parse_u64(&p.after)) {
        return Status::InvalidArgument("bad after= in failpoint spec: " + spec);
      }
    } else if (key == "times") {
      if (!parse_u64(&p.times)) {
        return Status::InvalidArgument("bad times= in failpoint spec: " + spec);
      }
    } else if (key == "seed") {
      if (!parse_u64(&p.prng)) {
        return Status::InvalidArgument("bad seed= in failpoint spec: " + spec);
      }
    } else if (key == "prob") {
      char* end = nullptr;
      p.prob = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || !(p.prob >= 0.0) ||
          p.prob > 1.0) {
        return Status::InvalidArgument("bad prob= in failpoint spec: " + spec);
      }
      saw_prob = true;
    } else if (key == "kind") {
      if (value == "io") {
        p.kind = FailpointAction::kIOError;
      } else if (value == "unavailable") {
        p.kind = FailpointAction::kUnavailable;
      } else if (value == "short") {
        p.kind = FailpointAction::kShortRead;
      } else {
        return Status::InvalidArgument("bad kind= in failpoint spec: " + spec);
      }
    } else {
      return Status::InvalidArgument("unknown clause '" + clause +
                                     "' in failpoint spec: " + spec);
    }
  }
  (void)saw_prob;
  Impl* im = impl();
  MutexLock lock(im->mu);
  im->points[name] = p;
  return Status::OK();
}

Status Failpoints::SetFromFlag(const std::string& flag) {
  for (const std::string& entry : SplitList(flag, ';')) {
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("--failpoint entries must be name:spec, got '" +
                                     entry + "'");
    }
    if (Status s = Set(entry.substr(0, colon), entry.substr(colon + 1));
        !s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

void Failpoints::Clear(const std::string& name) {
  Impl* im = impl();
  MutexLock lock(im->mu);
  im->points.erase(name);
}

void Failpoints::ClearAll() {
  Impl* im = impl();
  MutexLock lock(im->mu);
  im->points.clear();
}

uint64_t Failpoints::evaluations(const std::string& name) const {
  Impl* im = Instance().impl();
  MutexLock lock(im->mu);
  auto it = im->points.find(name);
  return it == im->points.end() ? 0 : it->second.evaluations;
}

uint64_t Failpoints::fires(const std::string& name) const {
  Impl* im = Instance().impl();
  MutexLock lock(im->mu);
  auto it = im->points.find(name);
  return it == im->points.end() ? 0 : it->second.fires;
}

FailpointAction Failpoints::Eval(const char* name) {
  Impl* im = impl();
  MutexLock lock(im->mu);
  auto it = im->points.find(name);
  if (it == im->points.end()) return FailpointAction::kNone;
  Point& p = it->second;
  const uint64_t n = p.evaluations++;
  if (n < p.after) return FailpointAction::kNone;
  if (p.times != 0 && p.fires >= p.times) return FailpointAction::kNone;
  if (p.prob < 1.0) {
    // Deterministic per-point draw stream: same seed, same firing pattern.
    const uint64_t draw = SplitMix64(p.prng);
    const double u =
        static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
    if (u >= p.prob) return FailpointAction::kNone;
  }
  ++p.fires;
  DENSEST_METRIC_COUNTER("io.failpoint_trips").Inc();
  return p.kind;
}

}  // namespace densest
