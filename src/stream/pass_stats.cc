#include "stream/pass_stats.h"

#include <sstream>

namespace densest {

std::string PassStats::ToString() const {
  std::ostringstream os;
  os << "passes=" << passes << " edges_scanned=" << edges_scanned
     << " peak_state_words=" << peak_state_words;
  return os.str();
}

}  // namespace densest
