#include "stream/pass_stats.h"

#include <sstream>

namespace densest {

std::string PassStats::ToString() const {
  std::ostringstream os;
  os << "passes=" << passes << " edges_scanned=" << edges_scanned
     << " peak_state_words=" << peak_state_words;
  if (io_retries > 0 || io_retries_healed > 0) {
    os << " io_retries=" << io_retries
       << " io_retries_healed=" << io_retries_healed;
  }
  return os.str();
}

}  // namespace densest
