#include "stream/file_stream.h"

#include <cstring>

namespace densest {

namespace {
constexpr size_t kBufferBytes = 1 << 20;
constexpr size_t kUnweightedRecord = 2 * sizeof(uint32_t);
constexpr size_t kWeightedRecord = kUnweightedRecord + sizeof(double);
}  // namespace

Status WriteBinaryEdgeFile(const std::string& path, const EdgeList& edges,
                           bool weighted) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);

  BinaryEdgeFileHeader header;
  header.num_nodes = edges.num_nodes();
  header.num_edges = edges.num_edges();
  header.flags = weighted ? 1 : 0;
  if (std::fwrite(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("short write (header): " + path);
  }

  std::vector<unsigned char> buf;
  buf.reserve(kBufferBytes);
  const size_t record = weighted ? kWeightedRecord : kUnweightedRecord;
  for (const Edge& e : edges.edges()) {
    unsigned char rec[kWeightedRecord];
    std::memcpy(rec, &e.u, sizeof(uint32_t));
    std::memcpy(rec + sizeof(uint32_t), &e.v, sizeof(uint32_t));
    if (weighted) std::memcpy(rec + kUnweightedRecord, &e.w, sizeof(double));
    buf.insert(buf.end(), rec, rec + record);
    if (buf.size() >= kBufferBytes) {
      if (std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
        std::fclose(f);
        return Status::IOError("short write: " + path);
      }
      buf.clear();
    }
  }
  if (!buf.empty() &&
      std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
    std::fclose(f);
    return Status::IOError("short write: " + path);
  }
  if (std::fclose(f) != 0) return Status::IOError("close failed: " + path);
  return Status::OK();
}

StatusOr<std::unique_ptr<BinaryFileEdgeStream>> BinaryFileEdgeStream::Open(
    const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);

  BinaryEdgeFileHeader header;
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("short read (header): " + path);
  }
  if (header.magic != BinaryEdgeFileHeader::kMagic) {
    std::fclose(f);
    return Status::InvalidArgument("bad magic in edge file: " + path);
  }

  auto stream = std::unique_ptr<BinaryFileEdgeStream>(new BinaryFileEdgeStream());
  stream->file_ = f;
  stream->header_ = header;
  stream->weighted_ = (header.flags & 1) != 0;
  stream->buffer_.resize(kBufferBytes);
  stream->Reset();
  return stream;
}

BinaryFileEdgeStream::~BinaryFileEdgeStream() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryFileEdgeStream::Reset() {
  std::fseek(file_, sizeof(BinaryEdgeFileHeader), SEEK_SET);
  emitted_ = 0;
  buf_pos_ = 0;
  buf_len_ = 0;
}

bool BinaryFileEdgeStream::FillBuffer() {
  buf_len_ = std::fread(buffer_.data(), 1, buffer_.size(), file_);
  bytes_read_ += buf_len_;
  buf_pos_ = 0;
  return buf_len_ > 0;
}

bool BinaryFileEdgeStream::Next(Edge* e) {
  if (emitted_ >= header_.num_edges) return false;
  const size_t record = weighted_ ? kWeightedRecord : kUnweightedRecord;
  if (buf_len_ - buf_pos_ < record) {
    // Records never straddle the 1 MiB buffer boundary only if record
    // divides the buffer size; move the tail down and refill to be safe.
    size_t tail = buf_len_ - buf_pos_;
    std::memmove(buffer_.data(), buffer_.data() + buf_pos_, tail);
    buf_len_ = tail + std::fread(buffer_.data() + tail, 1,
                                 buffer_.size() - tail, file_);
    bytes_read_ += buf_len_ - tail;
    buf_pos_ = 0;
    if (buf_len_ < record) return false;
  }
  std::memcpy(&e->u, buffer_.data() + buf_pos_, sizeof(uint32_t));
  std::memcpy(&e->v, buffer_.data() + buf_pos_ + sizeof(uint32_t),
              sizeof(uint32_t));
  if (weighted_) {
    std::memcpy(&e->w, buffer_.data() + buf_pos_ + kUnweightedRecord,
                sizeof(double));
  } else {
    e->w = 1.0;
  }
  buf_pos_ += record;
  ++emitted_;
  return true;
}

size_t BinaryFileEdgeStream::NextBatch(Edge* buf, size_t cap) {
  // Decodes straight out of the IO buffer: one refill check per batch
  // chunk instead of one per record, and the record unpack loop is branch-
  // free apart from the weighted/unweighted split hoisted outside it.
  size_t produced = 0;
  const size_t record = weighted_ ? kWeightedRecord : kUnweightedRecord;
  while (produced < cap && emitted_ < header_.num_edges) {
    if (buf_len_ - buf_pos_ < record) {
      size_t tail = buf_len_ - buf_pos_;
      std::memmove(buffer_.data(), buffer_.data() + buf_pos_, tail);
      buf_len_ = tail + std::fread(buffer_.data() + tail, 1,
                                   buffer_.size() - tail, file_);
      bytes_read_ += buf_len_ - tail;
      buf_pos_ = 0;
      if (buf_len_ < record) break;  // truncated file
    }
    size_t chunk = std::min({cap - produced, (buf_len_ - buf_pos_) / record,
                             static_cast<size_t>(header_.num_edges - emitted_)});
    const unsigned char* src = buffer_.data() + buf_pos_;
    if (weighted_) {
      for (size_t i = 0; i < chunk; ++i, src += kWeightedRecord) {
        std::memcpy(&buf[produced + i].u, src, sizeof(uint32_t));
        std::memcpy(&buf[produced + i].v, src + sizeof(uint32_t),
                    sizeof(uint32_t));
        std::memcpy(&buf[produced + i].w, src + kUnweightedRecord,
                    sizeof(double));
      }
    } else {
      for (size_t i = 0; i < chunk; ++i, src += kUnweightedRecord) {
        std::memcpy(&buf[produced + i].u, src, sizeof(uint32_t));
        std::memcpy(&buf[produced + i].v, src + sizeof(uint32_t),
                    sizeof(uint32_t));
        buf[produced + i].w = 1.0;
      }
    }
    buf_pos_ += chunk * record;
    emitted_ += chunk;
    produced += chunk;
  }
  return produced;
}

}  // namespace densest
