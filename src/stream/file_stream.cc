#include "stream/file_stream.h"

#include <cstring>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace densest {

namespace {
constexpr size_t kBufferBytes = 1 << 20;
constexpr size_t kUnweightedRecord = 2 * sizeof(uint32_t);
constexpr size_t kWeightedRecord = kUnweightedRecord + sizeof(double);
// Leading slack in each read buffer where the partial-record tail of the
// previous chunk is copied, so decoding always sees whole records.
constexpr size_t kMaxRecord = kWeightedRecord;
}  // namespace

Status WriteBinaryEdgeFile(const std::string& path, const EdgeList& edges,
                           bool weighted) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  if (DENSEST_FAILPOINT("edge_file.write") != FailpointAction::kNone) {
    std::fclose(f);
    return Status::IOError("short write (injected): " + path);
  }

  BinaryEdgeFileHeader header;
  header.num_nodes = edges.num_nodes();
  header.num_edges = edges.num_edges();
  header.flags = weighted ? 1 : 0;
  if (std::fwrite(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("short write (header): " + path);
  }

  std::vector<unsigned char> buf;
  buf.reserve(kBufferBytes);
  const size_t record = weighted ? kWeightedRecord : kUnweightedRecord;
  for (const Edge& e : edges.edges()) {
    unsigned char rec[kWeightedRecord];
    std::memcpy(rec, &e.u, sizeof(uint32_t));
    std::memcpy(rec + sizeof(uint32_t), &e.v, sizeof(uint32_t));
    if (weighted) std::memcpy(rec + kUnweightedRecord, &e.w, sizeof(double));
    buf.insert(buf.end(), rec, rec + record);
    if (buf.size() >= kBufferBytes) {
      if (std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
        std::fclose(f);
        return Status::IOError("short write: " + path);
      }
      buf.clear();
    }
  }
  if (!buf.empty() &&
      std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
    std::fclose(f);
    return Status::IOError("short write: " + path);
  }
  if (std::fclose(f) != 0) return Status::IOError("close failed: " + path);
  return Status::OK();
}

StatusOr<std::unique_ptr<BinaryFileEdgeStream>> BinaryFileEdgeStream::Open(
    const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);

  BinaryEdgeFileHeader header;
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("short read (header): " + path);
  }
  if (header.magic != BinaryEdgeFileHeader::kMagic) {
    std::fclose(f);
    return Status::InvalidArgument("bad magic in edge file: " + path);
  }

  auto stream = std::unique_ptr<BinaryFileEdgeStream>(new BinaryFileEdgeStream());
  stream->file_ = f;
  stream->path_ = path;
  stream->header_ = header;
  stream->weighted_ = (header.flags & 1) != 0;
  stream->front_.resize(kMaxRecord + kBufferBytes);
  stream->back_.resize(kMaxRecord + kBufferBytes);
  stream->reader_ = std::make_unique<ThreadPool>(1);
  stream->Reset();
  return stream;
}

BinaryFileEdgeStream::~BinaryFileEdgeStream() {
  WaitPrefetch();
  reader_.reset();  // joins the read thread before the FILE goes away
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryFileEdgeStream::IssuePrefetch() {
  if (exhausted_) return;
  back_ready_ = false;
  prefetch_ = reader_->Submit([this] {
    back_unavailable_ = false;
    int attempt = 0;
    RetryBackoff backoff(retry_policy_);
    for (;;) {
      // The failpoint models the device: evaluated before the real fread,
      // a transient (kUnavailable) fault is retried with backoff until the
      // policy's budget runs out, so an armed "times=K" spec heals mid-loop
      // exactly like a flaky-then-recovered disk.
      const FailpointAction fp = DENSEST_FAILPOINT("edge_stream.read");
      if (fp == FailpointAction::kUnavailable) {
        if (attempt + 1 >= retry_policy_.max_attempts) {
          retry_exhausted_.fetch_add(1, std::memory_order_relaxed);
          DENSEST_METRIC_COUNTER("io.retries_exhausted").Inc();
          back_len_ = 0;
          back_error_ = false;
          back_unavailable_ = true;
          return;
        }
        retries_.fetch_add(1, std::memory_order_relaxed);
        DENSEST_METRIC_COUNTER("io.retries").Inc();
        ++attempt;
        backoff.Sleep();
        continue;
      }
      if (attempt > 0) {
        healed_.fetch_add(1, std::memory_order_relaxed);
        DENSEST_METRIC_COUNTER("io.retries_healed").Inc();
      }
      if (fp == FailpointAction::kIOError) {
        back_len_ = 0;
        back_error_ = true;
        return;
      }
      back_len_ = std::fread(back_.data() + kMaxRecord, 1, kBufferBytes, file_);
      // A short fread means EOF *or* a read error; only ferror tells them
      // apart, and it must be checked here while the task owns the FILE.
      // Treating an error as EOF would silently truncate the pass and yield
      // a plausible-looking density over a partial edge set.
      back_error_ = back_len_ < kBufferBytes && std::ferror(file_) != 0;
      if (fp == FailpointAction::kShortRead && back_len_ > 0) {
        // Torn read: deliver only the first half of the chunk, rounded to
        // a record boundary so the decode loop sees valid records and the
        // truncation is caught by the emitted_-vs-header accounting, not
        // by feeding garbage node ids downstream. The delivered length
        // drops below kBufferBytes, which marks the stream exhausted —
        // the bytes past the tear are never decoded.
        const size_t record = weighted_ ? kWeightedRecord : kUnweightedRecord;
        back_len_ = (back_len_ / 2 / record) * record;
      }
      return;
    }
  });
}

void BinaryFileEdgeStream::JoinPrefetch() {
  if (prefetch_.valid()) {
    prefetch_.get();
    bytes_read_ += back_len_;
    back_ready_ = true;
  }
}

size_t BinaryFileEdgeStream::WaitPrefetch() {
  JoinPrefetch();
  if (!back_ready_) return 0;
  back_ready_ = false;  // deliver the chunk exactly once
  return back_len_;
}

void BinaryFileEdgeStream::Reset() {
  WaitPrefetch();  // the task owns the FILE until joined
  // status_ is deliberately NOT cleared: a failed or truncated file stays
  // failed — every pass over it would be short the same way.
  std::clearerr(file_);
  if (std::fseek(file_, sizeof(BinaryEdgeFileHeader), SEEK_SET) != 0 &&
      status_.ok()) {
    status_ = Status::IOError("seek failed: " + path_);
  }
  emitted_ = 0;
  buf_pos_ = 0;
  buf_len_ = 0;
  exhausted_ = false;
  IssuePrefetch();
}

bool BinaryFileEdgeStream::Refill(size_t record) {
  // Carry the partial-record tail (at most kMaxRecord-1 bytes) into the
  // slack ahead of the prefetched chunk, then swap buffers and start the
  // next read immediately — the disk works while the caller decodes.
  //
  // Callers only ask for a refill while emitted_ < header_.num_edges, so
  // every false return below is a premature end of data: either the fread
  // itself failed (back_error_) or the file holds fewer records than its
  // header promises. Both are recorded as a sticky IOError — returning
  // false alone looks identical to a clean end-of-pass to the decode loop.
  const size_t tail = buf_len_ - buf_pos_;
  const size_t got = WaitPrefetch();
  if (back_error_) {
    if (status_.ok()) status_ = Status::IOError("read error: " + path_);
    exhausted_ = true;
    return false;
  }
  if (back_unavailable_) {
    // Transient fault the retry budget could not heal. Sticky like every
    // other stream error, but kUnavailable so callers can tell "retry the
    // whole pass later" apart from "the file is bad".
    if (status_.ok()) {
      status_ = Status::Unavailable(
          "read failed after " + std::to_string(retry_policy_.max_attempts) +
          " attempts: " + path_);
    }
    exhausted_ = true;
    return false;
  }
  if (got + tail < record) {
    if (status_.ok()) {
      status_ = Status::IOError(
          "truncated edge file: " + path_ + " ends after " +
          std::to_string(emitted_) + " of " +
          std::to_string(header_.num_edges) + " edges");
    }
    if (got == 0) return false;  // nothing to swap in
  }
  if (tail > 0) {
    std::memcpy(back_.data() + kMaxRecord - tail,
                front_.data() + buf_pos_, tail);
  }
  front_.swap(back_);
  buf_pos_ = kMaxRecord - tail;
  buf_len_ = kMaxRecord + got;
  if (got < kBufferBytes) {
    exhausted_ = true;  // short fread on a regular file means EOF
  } else {
    IssuePrefetch();
  }
  return buf_len_ - buf_pos_ >= record;
}

bool BinaryFileEdgeStream::Next(Edge* e) {
  // A failed stream stays failed: emitting data again on the next pass
  // while status() still reports the error would let a multi-pass caller
  // mix complete and truncated passes over the same file.
  if (emitted_ >= header_.num_edges || !status_.ok()) return false;
  const size_t record = weighted_ ? kWeightedRecord : kUnweightedRecord;
  if (buf_len_ - buf_pos_ < record && !Refill(record)) return false;
  std::memcpy(&e->u, front_.data() + buf_pos_, sizeof(uint32_t));
  std::memcpy(&e->v, front_.data() + buf_pos_ + sizeof(uint32_t),
              sizeof(uint32_t));
  if (weighted_) {
    std::memcpy(&e->w, front_.data() + buf_pos_ + kUnweightedRecord,
                sizeof(double));
  } else {
    e->w = 1.0;
  }
  buf_pos_ += record;
  ++emitted_;
  return true;
}

size_t BinaryFileEdgeStream::NextBatch(Edge* buf, size_t cap) {
  // Decodes straight out of the IO buffer: one refill check per batch
  // chunk instead of one per record, and the record unpack loop is branch-
  // free apart from the weighted/unweighted split hoisted outside it.
  size_t produced = 0;
  if (!status_.ok()) return 0;  // sticky, same as Next()
  const size_t record = weighted_ ? kWeightedRecord : kUnweightedRecord;
  while (produced < cap && emitted_ < header_.num_edges) {
    if (buf_len_ - buf_pos_ < record && !Refill(record)) break;
    size_t chunk = std::min({cap - produced, (buf_len_ - buf_pos_) / record,
                             static_cast<size_t>(header_.num_edges - emitted_)});
    const unsigned char* src = front_.data() + buf_pos_;
    if (weighted_) {
      for (size_t i = 0; i < chunk; ++i, src += kWeightedRecord) {
        std::memcpy(&buf[produced + i].u, src, sizeof(uint32_t));
        std::memcpy(&buf[produced + i].v, src + sizeof(uint32_t),
                    sizeof(uint32_t));
        std::memcpy(&buf[produced + i].w, src + kUnweightedRecord,
                    sizeof(double));
      }
    } else {
      for (size_t i = 0; i < chunk; ++i, src += kUnweightedRecord) {
        std::memcpy(&buf[produced + i].u, src, sizeof(uint32_t));
        std::memcpy(&buf[produced + i].v, src + sizeof(uint32_t),
                    sizeof(uint32_t));
        buf[produced + i].w = 1.0;
      }
    }
    buf_pos_ += chunk * record;
    emitted_ += chunk;
    produced += chunk;
  }
  return produced;
}

}  // namespace densest
