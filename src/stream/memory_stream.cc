#include "stream/memory_stream.h"

#include <algorithm>
#include <cstring>

namespace densest {

bool EdgeListStream::Next(Edge* e) {
  if (pos_ >= edges_->edges().size()) return false;
  *e = edges_->edges()[pos_++];
  return true;
}

size_t EdgeListStream::NextBatch(Edge* buf, size_t cap) {
  const std::vector<Edge>& edges = edges_->edges();
  const size_t take = std::min(cap, edges.size() - pos_);
  if (take > 0) std::memcpy(buf, edges.data() + pos_, take * sizeof(Edge));
  pos_ += take;
  return take;
}

std::span<const Edge> EdgeListStream::NextView(Edge* /*scratch*/, size_t cap) {
  const std::vector<Edge>& edges = edges_->edges();
  const size_t take = std::min(cap, edges.size() - pos_);
  std::span<const Edge> view(edges.data() + pos_, take);
  pos_ += take;
  return view;
}

bool EdgeListStream::HasUnitWeights() const {
  if (unit_weights_ < 0) {
    unit_weights_ = 1;
    for (const Edge& e : edges_->edges()) {
      if (e.w != 1.0) {
        unit_weights_ = 0;
        break;
      }
    }
  }
  return unit_weights_ != 0;
}

bool UndirectedGraphStream::Next(Edge* e) {
  while (node_ < g_->num_nodes()) {
    auto nbrs = g_->Neighbors(node_);
    auto ws = g_->NeighborWeights(node_);
    while (idx_ < nbrs.size()) {
      NodeId v = nbrs[idx_];
      if (v >= node_) {
        e->u = node_;
        e->v = v;
        e->w = ws.empty() ? 1.0 : ws[idx_];
        ++idx_;
        return true;
      }
      ++idx_;
    }
    ++node_;
    idx_ = 0;
  }
  return false;
}

size_t UndirectedGraphStream::NextBatch(Edge* buf, size_t cap) {
  // Hoists the per-edge span construction out of the loop: the CSR row is
  // fetched once per node and drained with scalar index arithmetic.
  size_t produced = 0;
  const NodeId n = g_->num_nodes();
  while (produced < cap && node_ < n) {
    auto nbrs = g_->Neighbors(node_);
    auto ws = g_->NeighborWeights(node_);
    const bool weighted = !ws.empty();
    while (produced < cap && idx_ < nbrs.size()) {
      NodeId v = nbrs[idx_];
      if (v >= node_) {
        buf[produced].u = node_;
        buf[produced].v = v;
        buf[produced].w = weighted ? ws[idx_] : 1.0;
        ++produced;
      }
      ++idx_;
    }
    if (idx_ >= nbrs.size()) {
      ++node_;
      idx_ = 0;
    }
  }
  return produced;
}

bool DirectedGraphStream::Next(Edge* e) {
  while (node_ < g_->num_nodes()) {
    auto nbrs = g_->OutNeighbors(node_);
    auto ws = g_->OutNeighborWeights(node_);
    if (idx_ < nbrs.size()) {
      e->u = node_;
      e->v = nbrs[idx_];
      e->w = ws.empty() ? 1.0 : ws[idx_];
      ++idx_;
      return true;
    }
    ++node_;
    idx_ = 0;
  }
  return false;
}

size_t DirectedGraphStream::NextBatch(Edge* buf, size_t cap) {
  size_t produced = 0;
  const NodeId n = g_->num_nodes();
  while (produced < cap && node_ < n) {
    auto nbrs = g_->OutNeighbors(node_);
    auto ws = g_->OutNeighborWeights(node_);
    const bool weighted = !ws.empty();
    const size_t take = std::min(cap - produced, nbrs.size() - idx_);
    for (size_t i = 0; i < take; ++i) {
      buf[produced + i].u = node_;
      buf[produced + i].v = nbrs[idx_ + i];
      buf[produced + i].w = weighted ? ws[idx_ + i] : 1.0;
    }
    produced += take;
    idx_ += take;
    if (idx_ >= nbrs.size()) {
      ++node_;
      idx_ = 0;
    }
  }
  return produced;
}

}  // namespace densest
