#include "stream/memory_stream.h"

namespace densest {

bool EdgeListStream::Next(Edge* e) {
  if (pos_ >= edges_->edges().size()) return false;
  *e = edges_->edges()[pos_++];
  return true;
}

bool UndirectedGraphStream::Next(Edge* e) {
  while (node_ < g_->num_nodes()) {
    auto nbrs = g_->Neighbors(node_);
    auto ws = g_->NeighborWeights(node_);
    while (idx_ < nbrs.size()) {
      NodeId v = nbrs[idx_];
      if (v >= node_) {
        e->u = node_;
        e->v = v;
        e->w = ws.empty() ? 1.0 : ws[idx_];
        ++idx_;
        return true;
      }
      ++idx_;
    }
    ++node_;
    idx_ = 0;
  }
  return false;
}

bool DirectedGraphStream::Next(Edge* e) {
  while (node_ < g_->num_nodes()) {
    auto nbrs = g_->OutNeighbors(node_);
    auto ws = g_->OutNeighborWeights(node_);
    if (idx_ < nbrs.size()) {
      e->u = node_;
      e->v = nbrs[idx_];
      e->w = ws.empty() ? 1.0 : ws[idx_];
      ++idx_;
      return true;
    }
    ++node_;
    idx_ = 0;
  }
  return false;
}

}  // namespace densest
