// Copyright 2026 The densest Authors.
// The dynamic-stream substrate: a timestamped sequence of edge insertions
// and deletions, the input model of the incremental maintenance service
// (dynamic/dynamic_densest.h). Where EdgeStream freezes the edge set and
// lets algorithms re-scan it, an UpdateStream is consumed once, forward
// only — the graph it describes exists only as the running prefix of its
// updates (McGregor et al., arXiv:1506.04417; Bhattacharya et al.,
// arXiv:1504.02268).

#ifndef DENSEST_STREAM_UPDATE_STREAM_H_
#define DENSEST_STREAM_UPDATE_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "graph/types.h"
#include "stream/edge_stream.h"

namespace densest {

/// \brief Whether an update adds or removes its edge.
enum class UpdateKind : uint32_t {
  kInsert = 0,
  kDelete = 1,
};

/// \brief One timestamped edge update. 32-bit kind and an explicit
/// reserved word keep the struct free of hidden padding, so binary update
/// files written by raw struct IO are byte-deterministic.
struct EdgeUpdate {
  NodeId u = 0;
  NodeId v = 0;
  uint32_t kind = 0;      ///< UpdateKind as its underlying integer.
  uint32_t reserved = 0;  ///< Always 0 on the wire.
  uint64_t timestamp = 0; ///< Logical tick; strictly increasing per stream.

  bool is_insert() const {
    return kind == static_cast<uint32_t>(UpdateKind::kInsert);
  }
  bool operator==(const EdgeUpdate& o) const {
    return u == o.u && v == o.v && kind == o.kind && timestamp == o.timestamp;
  }
};
static_assert(sizeof(EdgeUpdate) == 24, "EdgeUpdate must be packed");

/// Convenience constructors for the two update kinds.
inline EdgeUpdate InsertUpdate(NodeId u, NodeId v, uint64_t timestamp = 0) {
  return EdgeUpdate{u, v, static_cast<uint32_t>(UpdateKind::kInsert), 0,
                    timestamp};
}
inline EdgeUpdate DeleteUpdate(NodeId u, NodeId v, uint64_t timestamp = 0) {
  return EdgeUpdate{u, v, static_cast<uint32_t>(UpdateKind::kDelete), 0,
                    timestamp};
}

/// \brief A replayable stream of edge updates.
///
/// Contract mirrors EdgeStream: after Reset(), successive Next() calls
/// yield every update exactly once in timestamp order, then return false.
/// Streams that can fail (disk-backed) carry the same sticky status()
/// error model: end-of-stream and mid-stream failure both present as "no
/// more updates", and every consumer must check status() after draining —
/// maintaining a density over a silently truncated update sequence is the
/// dynamic analogue of the truncated-pass bug the EdgeStream model guards.
class UpdateStream {
 public:
  virtual ~UpdateStream() = default;

  /// Rewinds to the first update (starts a new replay).
  virtual void Reset() = 0;

  /// Produces the next update into *u; returns false at end of stream.
  virtual bool Next(EdgeUpdate* u) = 0;

  /// Produces up to `cap` updates into `buf` and returns how many were
  /// written; 0 only at end of stream. The base implementation loops over
  /// Next(); concrete streams override it to amortize the per-update
  /// virtual dispatch (the replay driver's hot path only calls this).
  virtual size_t NextBatch(EdgeUpdate* buf, size_t cap);

  /// Skips the next `n` updates without delivering them — the restore path
  /// uses this to resume a replay from a snapshot's saved cursor. The base
  /// implementation drains through NextBatch, which is O(n) but keeps any
  /// generator state (e.g. the sliding window's FIFO) consistent; seekable
  /// streams override it with an O(1) seek. Returns how many updates were
  /// actually skipped (fewer than `n` only at end of stream or on error).
  virtual uint64_t Skip(uint64_t n);

  /// Sticky health of the stream; see EdgeStream::status().
  virtual Status status() const { return Status::OK(); }

  /// Retry-loop outcomes at this stream's IO seam; see
  /// EdgeStream::io_retry_stats().
  virtual IoRetryStats io_retry_stats() const { return {}; }

  /// Number of nodes in the graph (known in advance, as in the
  /// semi-streaming model; updates never grow the node universe).
  virtual NodeId num_nodes() const = 0;

  /// Updates per replay, if known (0 if unknown).
  virtual uint64_t SizeHint() const { return 0; }
};

/// \brief In-memory UpdateStream over a vector of updates. The vector must
/// outlive the stream.
class MemoryUpdateStream : public UpdateStream {
 public:
  MemoryUpdateStream(const std::vector<EdgeUpdate>& updates, NodeId num_nodes)
      : updates_(&updates), num_nodes_(num_nodes) {}

  void Reset() override { pos_ = 0; }
  bool Next(EdgeUpdate* u) override;
  size_t NextBatch(EdgeUpdate* buf, size_t cap) override;
  uint64_t Skip(uint64_t n) override;
  NodeId num_nodes() const override { return num_nodes_; }
  uint64_t SizeHint() const override { return updates_->size(); }

 private:
  const std::vector<EdgeUpdate>* updates_;
  NodeId num_nodes_;
  size_t pos_ = 0;
};

/// Binary update-file layout: a 24-byte header followed by packed
/// EdgeUpdate records (24 bytes each; see the static_assert above).
struct BinaryUpdateFileHeader {
  static constexpr uint64_t kMagic = 0x44454e5355504454ULL;  // "DENSUPDT"
  uint64_t magic = kMagic;
  uint32_t num_nodes = 0;
  uint32_t reserved = 0;
  uint64_t num_updates = 0;
};

/// Writes `updates` to `path` in the binary update-file format.
Status WriteBinaryUpdateFile(const std::string& path, NodeId num_nodes,
                             const std::vector<EdgeUpdate>& updates);

/// \brief Disk-backed UpdateStream over a binary update file. Buffered
/// reads through one FILE handle; each Reset() replays from the start.
/// Sticky status(): a mid-stream read error (ferror, not EOF) or a file
/// that ends before header.num_updates records sets IOError, which
/// persists across Reset() — the file is bad and every further replay
/// would be silently short.
class BinaryFileUpdateStream : public UpdateStream {
 public:
  /// Opens `path`; fails with IOError / InvalidArgument on a bad file.
  static StatusOr<std::unique_ptr<BinaryFileUpdateStream>> Open(
      const std::string& path);

  ~BinaryFileUpdateStream() override;

  void Reset() override;
  bool Next(EdgeUpdate* u) override;
  size_t NextBatch(EdgeUpdate* buf, size_t cap) override;
  /// O(1) resume: seeks straight to record `delivered_ + n`.
  uint64_t Skip(uint64_t n) override;
  Status status() const override { return status_; }
  NodeId num_nodes() const override { return header_.num_nodes; }
  uint64_t SizeHint() const override { return header_.num_updates; }

  /// Retry knobs for transient (kUnavailable) faults in NextBatch.
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  IoRetryStats io_retry_stats() const override { return retry_stats_; }

 private:
  BinaryFileUpdateStream() = default;

  FILE* file_ = nullptr;
  std::string path_;  // for error messages
  BinaryUpdateFileHeader header_;
  uint64_t delivered_ = 0;
  bool exhausted_ = false;
  Status status_;  // sticky; see status()
  RetryPolicy retry_policy_;
  IoRetryStats retry_stats_;
};

/// \brief Generator: replays an EdgeStream as pure insertions — every edge
/// of one pass becomes one kInsert update with timestamps 1..m. Weights
/// are dropped (the dynamic subsystem is unweighted). The stream must
/// outlive the wrapper; status() forwards its sticky IO health.
class InsertReplayUpdateStream : public UpdateStream {
 public:
  explicit InsertReplayUpdateStream(EdgeStream& edges) : edges_(&edges) {}

  void Reset() override {
    edges_->Reset();
    tick_ = 0;
  }
  bool Next(EdgeUpdate* u) override;
  size_t NextBatch(EdgeUpdate* buf, size_t cap) override;
  Status status() const override { return edges_->status(); }
  IoRetryStats io_retry_stats() const override {
    return edges_->io_retry_stats();
  }
  NodeId num_nodes() const override { return edges_->num_nodes(); }
  uint64_t SizeHint() const override { return edges_->SizeHint(); }

 private:
  EdgeStream* edges_;
  uint64_t tick_ = 0;
  std::vector<Edge> scratch_;
};

/// \brief Generator: sliding-window deleter. Replays an EdgeStream as
/// insertions and, once the window overfills, evicts the oldest live edges
/// — so the described graph converges to the most recent `window` edges of
/// the replay. Keeps O(W + B) state (the FIFO of live edges).
///
/// `eviction_batch` (B, default 1) amortizes deletion-heavy windows: the
/// window may overfill to `window + B` live edges before B evictions are
/// emitted back-to-back, instead of one eviction interleaved after every
/// insert. When the inner stream ends, any overfill is drained so the
/// final live set is exactly the last min(m, window) edges — identical to
/// the per-update (B = 1) path, which the equivalence test in
/// update_stream_test.cc pins down. Total update count is unchanged:
/// m + max(0, m - W) regardless of B.
class SlidingWindowUpdateStream : public UpdateStream {
 public:
  SlidingWindowUpdateStream(EdgeStream& edges, uint64_t window,
                            uint64_t eviction_batch = 1)
      : edges_(&edges),
        window_(window),
        eviction_batch_(eviction_batch < 1 ? 1 : eviction_batch) {}

  void Reset() override {
    edges_->Reset();
    live_.clear();
    pending_evictions_ = 0;
    tick_ = 0;
  }
  bool Next(EdgeUpdate* u) override;
  Status status() const override { return edges_->status(); }
  IoRetryStats io_retry_stats() const override {
    return edges_->io_retry_stats();
  }
  NodeId num_nodes() const override { return edges_->num_nodes(); }
  /// Inserts plus the deletions the window forces, when the inner count is
  /// known: m + max(0, m - W).
  uint64_t SizeHint() const override;

 private:
  EdgeStream* edges_;
  uint64_t window_;
  uint64_t eviction_batch_;
  std::deque<std::pair<NodeId, NodeId>> live_;
  uint64_t pending_evictions_ = 0;  // evictions owed but not yet emitted
  uint64_t tick_ = 0;
};

}  // namespace densest

#endif  // DENSEST_STREAM_UPDATE_STREAM_H_
