#include "stream/edge_stream.h"

// EdgeStream is an interface; its virtual destructor anchor lives here so
// the vtable is emitted in exactly one translation unit.

namespace densest {

size_t EdgeStream::NextBatch(Edge* buf, size_t cap) {
  size_t produced = 0;
  while (produced < cap && Next(buf + produced)) ++produced;
  return produced;
}

}  // namespace densest
