#include "stream/edge_stream.h"

// EdgeStream is an interface; its virtual destructor anchor lives here so
// the vtable is emitted in exactly one translation unit.
