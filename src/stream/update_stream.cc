#include "stream/update_stream.h"

#include <algorithm>
#include <cstring>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace densest {

size_t UpdateStream::NextBatch(EdgeUpdate* buf, size_t cap) {
  size_t got = 0;
  while (got < cap && Next(&buf[got])) ++got;
  return got;
}

uint64_t UpdateStream::Skip(uint64_t n) {
  // Drain-based default: delivers the updates into scratch and discards
  // them, which keeps generator state (sliding-window FIFO, tick counters)
  // exactly as if the updates had been consumed.
  EdgeUpdate scratch[256];
  uint64_t skipped = 0;
  while (skipped < n) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(n - skipped, std::size(scratch)));
    const size_t got = NextBatch(scratch, want);
    if (got == 0) break;
    skipped += got;
  }
  return skipped;
}

// ---------------------------------------------------------------- memory --

bool MemoryUpdateStream::Next(EdgeUpdate* u) {
  if (pos_ >= updates_->size()) return false;
  *u = (*updates_)[pos_++];
  return true;
}

size_t MemoryUpdateStream::NextBatch(EdgeUpdate* buf, size_t cap) {
  const size_t take = std::min(cap, updates_->size() - pos_);
  std::memcpy(buf, updates_->data() + pos_, take * sizeof(EdgeUpdate));
  pos_ += take;
  return take;
}

uint64_t MemoryUpdateStream::Skip(uint64_t n) {
  const uint64_t take = std::min<uint64_t>(n, updates_->size() - pos_);
  pos_ += static_cast<size_t>(take);
  return take;
}

// ----------------------------------------------------------- binary file --

Status WriteBinaryUpdateFile(const std::string& path, NodeId num_nodes,
                             const std::vector<EdgeUpdate>& updates) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  BinaryUpdateFileHeader header;
  header.num_nodes = num_nodes;
  header.num_updates = updates.size();
  bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1;
  if (ok && DENSEST_FAILPOINT("update_file.write") != FailpointAction::kNone) {
    ok = false;  // models fwrite returning short (disk full mid-body)
  }
  if (ok && !updates.empty()) {
    ok = std::fwrite(updates.data(), sizeof(EdgeUpdate), updates.size(), f) ==
         updates.size();
  }
  if (!ok) {
    std::fclose(f);
    return Status::IOError("short write: " + path);
  }
  // fclose flushes the stdio buffer; with buffered writes this is where a
  // full disk actually surfaces, so it gets its own failpoint and message.
  const bool flush_failed =
      DENSEST_FAILPOINT("update_file.flush") != FailpointAction::kNone;
  if (std::fclose(f) != 0 || flush_failed) {
    return Status::IOError("flush failed: " + path);
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<BinaryFileUpdateStream>> BinaryFileUpdateStream::Open(
    const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  BinaryUpdateFileHeader header;
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("cannot read update-file header: " + path);
  }
  if (header.magic != BinaryUpdateFileHeader::kMagic) {
    std::fclose(f);
    return Status::InvalidArgument("not a binary update file: " + path);
  }
  std::unique_ptr<BinaryFileUpdateStream> stream(new BinaryFileUpdateStream());
  stream->file_ = f;
  stream->path_ = path;
  stream->header_ = header;
  return stream;
}

BinaryFileUpdateStream::~BinaryFileUpdateStream() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryFileUpdateStream::Reset() {
  // A sticky error survives Reset: the file is bad and every further
  // replay would be silently short.
  delivered_ = 0;
  exhausted_ = false;
  std::clearerr(file_);
  if (std::fseek(file_, sizeof(BinaryUpdateFileHeader), SEEK_SET) != 0 &&
      status_.ok()) {
    status_ = Status::IOError("seek failed: " + path_);
  }
}

size_t BinaryFileUpdateStream::NextBatch(EdgeUpdate* buf, size_t cap) {
  if (exhausted_ || !status_.ok() || cap == 0) return 0;
  const uint64_t remaining = header_.num_updates - delivered_;
  const size_t want = static_cast<size_t>(std::min<uint64_t>(cap, remaining));
  if (want == 0) {
    exhausted_ = true;
    return 0;
  }
  FailpointAction fp;
  int attempt = 0;
  RetryBackoff backoff(retry_policy_);
  for (;;) {
    fp = DENSEST_FAILPOINT("update_stream.read");
    if (fp != FailpointAction::kUnavailable) break;
    if (attempt + 1 >= retry_policy_.max_attempts) {
      ++retry_stats_.exhausted;
      DENSEST_METRIC_COUNTER("io.retries_exhausted").Inc();
      exhausted_ = true;
      status_ = Status::Unavailable(
          "read failed after " + std::to_string(retry_policy_.max_attempts) +
          " attempts: " + path_);
      return 0;
    }
    ++retry_stats_.retries;
    DENSEST_METRIC_COUNTER("io.retries").Inc();
    ++attempt;
    backoff.Sleep();
  }
  if (attempt > 0) {
    ++retry_stats_.healed;
    DENSEST_METRIC_COUNTER("io.retries_healed").Inc();
  }
  if (fp == FailpointAction::kIOError) {
    exhausted_ = true;
    status_ = Status::IOError("read error (injected): " + path_);
    return 0;
  }
  size_t got = std::fread(buf, sizeof(EdgeUpdate), want, file_);
  if (fp == FailpointAction::kShortRead) {
    // Torn file: pretend it physically ends mid-batch, so the real
    // truncation detection below fires.
    got /= 2;
  }
  if (got < want) {
    exhausted_ = true;
    if (std::ferror(file_) != 0) {
      status_ = Status::IOError("read error: " + path_);
    } else if (got + delivered_ < header_.num_updates) {
      // EOF before the header's count: the body is truncated. Without this
      // the replay would end early and quietly maintain a density over a
      // partial update sequence.
      status_ = Status::IOError("truncated update file: " + path_);
    }
  }
  delivered_ += got;
  return got;
}

bool BinaryFileUpdateStream::Next(EdgeUpdate* u) {
  return NextBatch(u, 1) == 1;
}

uint64_t BinaryFileUpdateStream::Skip(uint64_t n) {
  if (exhausted_ || !status_.ok() || n == 0) return 0;
  const uint64_t take = std::min(n, header_.num_updates - delivered_);
  const uint64_t target = sizeof(BinaryUpdateFileHeader) +
                          (delivered_ + take) * sizeof(EdgeUpdate);
  if (std::fseek(file_, static_cast<long>(target), SEEK_SET) != 0) {
    status_ = Status::IOError("seek failed: " + path_);
    exhausted_ = true;
    return 0;
  }
  delivered_ += take;
  return take;
}

// --------------------------------------------------------- insert replay --

bool InsertReplayUpdateStream::Next(EdgeUpdate* u) {
  Edge e;
  if (!edges_->Next(&e)) return false;
  *u = InsertUpdate(e.u, e.v, ++tick_);
  return true;
}

size_t InsertReplayUpdateStream::NextBatch(EdgeUpdate* buf, size_t cap) {
  scratch_.resize(cap);
  const size_t got = edges_->NextBatch(scratch_.data(), cap);
  for (size_t i = 0; i < got; ++i) {
    buf[i] = InsertUpdate(scratch_[i].u, scratch_[i].v, ++tick_);
  }
  return got;
}

// -------------------------------------------------------- sliding window --

bool SlidingWindowUpdateStream::Next(EdgeUpdate* u) {
  // Inserts run until the window overfills by a full eviction batch, then
  // the owed evictions are emitted back-to-back (oldest first). With
  // eviction_batch_ == 1 this is exactly the classic interleaving: one
  // eviction after each overfilling insert.
  if (pending_evictions_ == 0) {
    Edge e;
    if (edges_->Next(&e)) {
      live_.emplace_back(e.u, e.v);
      *u = InsertUpdate(e.u, e.v, ++tick_);
      if (live_.size() >= window_ + eviction_batch_) {
        pending_evictions_ = live_.size() - window_;
      }
      return true;
    }
    // Inner stream ended: drain any overfill so the final live set is the
    // last min(m, window_) edges, matching the per-update path bit for bit.
    if (live_.size() > window_) {
      pending_evictions_ = live_.size() - window_;
    }
  }
  if (pending_evictions_ > 0) {
    --pending_evictions_;
    const auto [du, dv] = live_.front();
    live_.pop_front();
    *u = DeleteUpdate(du, dv, ++tick_);
    return true;
  }
  return false;
}

uint64_t SlidingWindowUpdateStream::SizeHint() const {
  const uint64_t m = edges_->SizeHint();
  if (m == 0) return 0;
  return m + (m > window_ ? m - window_ : 0);
}

}  // namespace densest
