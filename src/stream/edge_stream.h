// Copyright 2026 The densest Authors.
// The semi-streaming substrate: edges arrive one at a time; algorithms may
// rewind and take multiple passes. Only O(n) state may be kept between
// passes (the streams themselves may be disk- or generator-backed).

#ifndef DENSEST_STREAM_EDGE_STREAM_H_
#define DENSEST_STREAM_EDGE_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "common/retry.h"
#include "common/status.h"
#include "graph/types.h"

namespace densest {

class UndirectedGraph;
class DirectedGraph;

/// \brief A rewindable stream of edges — the input model of all streaming
/// algorithms in this library (paper §1.1: nodes known in advance, edges
/// streamed; multiple passes allowed).
///
/// Contract: after Reset(), successive Next() calls yield every edge of the
/// graph exactly once (in an arbitrary but fixed order), then return false.
class EdgeStream {
 public:
  virtual ~EdgeStream() = default;

  /// Rewinds to the beginning of the stream (starts a new pass).
  virtual void Reset() = 0;

  /// Produces the next edge into *e; returns false at end of stream.
  virtual bool Next(Edge* e) = 0;

  /// Produces up to `cap` edges into `buf` and returns how many were
  /// written; 0 only at end of stream (mid-stream calls may return fewer
  /// than `cap` but never 0). Interleaves freely with Next(): both consume
  /// the same cursor. The base implementation loops over Next(); concrete
  /// streams override it to amortize the per-edge virtual dispatch away
  /// (the pass engine's hot path only calls this).
  virtual size_t NextBatch(Edge* buf, size_t cap);

  /// Zero-copy variant of NextBatch: returns a view of up to `cap` edges,
  /// advancing the same cursor; empty only at end of stream. The view
  /// stays valid until Reset() or until `scratch` is reused by another
  /// call, so callers that hold several views concurrently (the pass
  /// engine's shard rounds) must pass distinct scratch regions. The
  /// default copies through NextBatch into `scratch` (which must hold
  /// `cap` edges); streams whose edges already live in memory override it
  /// to return views of their own storage so a pass copies nothing.
  virtual std::span<const Edge> NextView(Edge* scratch, size_t cap) {
    return {scratch, NextBatch(scratch, cap)};
  }

  /// Health of the stream. Next/NextBatch/NextView signal "no more edges"
  /// by returning nothing, which deliberately conflates end-of-pass with
  /// mid-pass failure (a disk read error, a truncated file); a pass that
  /// ended early would otherwise yield a plausible-looking density computed
  /// from a silently truncated edge set. Streams that can fail set a sticky
  /// error here, and every pass driver checks it after draining a pass,
  /// aborting the run with the error instead of peeling on bad statistics.
  /// In-memory and generator streams cannot fail and keep the OK default.
  virtual Status status() const { return Status::OK(); }

  /// Outcomes of the retry loop at this stream's IO seam: transient
  /// (kUnavailable) faults that were retried, healed, or exhausted. All
  /// zero for streams that cannot fail. Surfaced through PassStats so a
  /// run that limped through transient faults is distinguishable from a
  /// clean one.
  virtual IoRetryStats io_retry_stats() const { return {}; }

  /// True when every edge is guaranteed to carry weight exactly 1.0.
  /// Unit-weight sums are exact in double precision, so the pass engine may
  /// accumulate them in any order and still be bit-reproducible; returning
  /// false (the conservative default) merely selects the slower
  /// order-deterministic path.
  virtual bool HasUnitWeights() const { return false; }

  /// CSR escape hatches: a stream backed by an in-memory CSR graph may
  /// expose it so the pass engine can run its cache-friendly kernel over
  /// the adjacency arrays instead of materializing Edge records. The
  /// exposed graph must describe exactly the edges Next() would yield.
  virtual const UndirectedGraph* UndirectedCsrView() const { return nullptr; }
  virtual const DirectedGraph* DirectedCsrView() const { return nullptr; }

  /// Number of nodes in the graph (known in advance per the semi-streaming
  /// model).
  virtual NodeId num_nodes() const = 0;

  /// Number of edges per pass, if known (0 if unknown).
  virtual EdgeId SizeHint() const { return 0; }
};

/// Runs `fn` on every edge of one full pass (Reset + drain).
template <typename Fn>
void ForEachEdge(EdgeStream& stream, Fn&& fn) {
  stream.Reset();
  Edge e;
  while (stream.Next(&e)) fn(e);
}

}  // namespace densest

#endif  // DENSEST_STREAM_EDGE_STREAM_H_
