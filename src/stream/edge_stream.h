// Copyright 2026 The densest Authors.
// The semi-streaming substrate: edges arrive one at a time; algorithms may
// rewind and take multiple passes. Only O(n) state may be kept between
// passes (the streams themselves may be disk- or generator-backed).

#ifndef DENSEST_STREAM_EDGE_STREAM_H_
#define DENSEST_STREAM_EDGE_STREAM_H_

#include <cstdint>
#include <functional>

#include "graph/types.h"

namespace densest {

/// \brief A rewindable stream of edges — the input model of all streaming
/// algorithms in this library (paper §1.1: nodes known in advance, edges
/// streamed; multiple passes allowed).
///
/// Contract: after Reset(), successive Next() calls yield every edge of the
/// graph exactly once (in an arbitrary but fixed order), then return false.
class EdgeStream {
 public:
  virtual ~EdgeStream() = default;

  /// Rewinds to the beginning of the stream (starts a new pass).
  virtual void Reset() = 0;

  /// Produces the next edge into *e; returns false at end of stream.
  virtual bool Next(Edge* e) = 0;

  /// Number of nodes in the graph (known in advance per the semi-streaming
  /// model).
  virtual NodeId num_nodes() const = 0;

  /// Number of edges per pass, if known (0 if unknown).
  virtual EdgeId SizeHint() const { return 0; }
};

/// Runs `fn` on every edge of one full pass (Reset + drain).
template <typename Fn>
void ForEachEdge(EdgeStream& stream, Fn&& fn) {
  stream.Reset();
  Edge e;
  while (stream.Next(&e)) fn(e);
}

}  // namespace densest

#endif  // DENSEST_STREAM_EDGE_STREAM_H_
