// Copyright 2026 The densest Authors.
// In-memory EdgeStream implementations: over an EdgeList and over CSR graphs.

#ifndef DENSEST_STREAM_MEMORY_STREAM_H_
#define DENSEST_STREAM_MEMORY_STREAM_H_

#include <cstddef>

#include "graph/directed_graph.h"
#include "graph/edge_list.h"
#include "graph/undirected_graph.h"
#include "stream/edge_stream.h"

namespace densest {

/// \brief Streams the entries of an EdgeList in order. The EdgeList must
/// outlive the stream.
class EdgeListStream : public EdgeStream {
 public:
  explicit EdgeListStream(const EdgeList& edges) : edges_(&edges) {}

  void Reset() override { pos_ = 0; }
  bool Next(Edge* e) override;
  size_t NextBatch(Edge* buf, size_t cap) override;
  /// Views straight into the EdgeList's storage — a pass copies nothing.
  std::span<const Edge> NextView(Edge* scratch, size_t cap) override;
  /// Scans the edge list once (cached) to discover exact unit weights.
  bool HasUnitWeights() const override;
  NodeId num_nodes() const override { return edges_->num_nodes(); }
  EdgeId SizeHint() const override { return edges_->num_edges(); }

 private:
  const EdgeList* edges_;
  size_t pos_ = 0;
  mutable int unit_weights_ = -1;  // -1 unknown, else 0/1
};

/// \brief Streams each undirected edge of a CSR graph exactly once
/// (emitting {u, v} from u's adjacency when v >= u). The graph must outlive
/// the stream.
class UndirectedGraphStream : public EdgeStream {
 public:
  explicit UndirectedGraphStream(const UndirectedGraph& g) : g_(&g) {}

  void Reset() override {
    node_ = 0;
    idx_ = 0;
  }
  bool Next(Edge* e) override;
  size_t NextBatch(Edge* buf, size_t cap) override;
  bool HasUnitWeights() const override { return !g_->is_weighted(); }
  const UndirectedGraph* UndirectedCsrView() const override { return g_; }
  NodeId num_nodes() const override { return g_->num_nodes(); }
  EdgeId SizeHint() const override { return g_->num_edges(); }

 private:
  const UndirectedGraph* g_;
  NodeId node_ = 0;
  size_t idx_ = 0;
};

/// \brief Streams each arc of a CSR directed graph exactly once. The graph
/// must outlive the stream.
class DirectedGraphStream : public EdgeStream {
 public:
  explicit DirectedGraphStream(const DirectedGraph& g) : g_(&g) {}

  void Reset() override {
    node_ = 0;
    idx_ = 0;
  }
  bool Next(Edge* e) override;
  size_t NextBatch(Edge* buf, size_t cap) override;
  bool HasUnitWeights() const override { return !g_->is_weighted(); }
  const DirectedGraph* DirectedCsrView() const override { return g_; }
  NodeId num_nodes() const override { return g_->num_nodes(); }
  EdgeId SizeHint() const override { return g_->num_edges(); }

 private:
  const DirectedGraph* g_;
  NodeId node_ = 0;
  size_t idx_ = 0;
};

}  // namespace densest

#endif  // DENSEST_STREAM_MEMORY_STREAM_H_
