#include "stream/generated_stream.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace densest {

GnpEdgeStream::GnpEdgeStream(NodeId n, double p, uint64_t seed)
    : n_(n),
      p_(p),
      seed_(seed),
      log1mp_(p > 0 && p < 1 ? std::log(1.0 - p) : 0.0),
      rng_(seed) {
  Reset();
}

void GnpEdgeStream::Reset() {
  rng_ = Rng(seed_);
  u_ = -1;
  v_ = 1;
  exhausted_ = (p_ <= 0.0 || n_ < 2);
}

bool GnpEdgeStream::Next(Edge* e) {
  if (exhausted_) return false;
  const int64_t n = static_cast<int64_t>(n_);
  if (p_ >= 1.0) {
    // Dense corner case: enumerate all pairs directly.
    ++u_;
    if (u_ >= v_) {
      u_ = 0;
      ++v_;
      if (v_ >= n) {
        exhausted_ = true;
        return false;
      }
    }
    *e = Edge(static_cast<NodeId>(u_), static_cast<NodeId>(v_));
    return true;
  }
  // Geometric skip to the next present edge in the (u < v) enumeration.
  double r = 1.0 - rng_.UniformDouble();
  u_ += 1 + static_cast<int64_t>(std::floor(std::log(r) / log1mp_));
  while (u_ >= v_ && v_ < n) {
    u_ -= v_;
    ++v_;
  }
  if (v_ >= n) {
    exhausted_ = true;
    return false;
  }
  *e = Edge(static_cast<NodeId>(u_), static_cast<NodeId>(v_));
  return true;
}

CirculantEdgeStream::CirculantEdgeStream(NodeId n, NodeId d) : n_(n), d_(d) {
  assert(d % 2 == 0 && d < n);
  Reset();
}

void CirculantEdgeStream::Reset() {
  node_ = 0;
  offset_ = 1;
}

bool CirculantEdgeStream::Next(Edge* e) {
  if (d_ == 0 || offset_ > d_ / 2) return false;
  *e = Edge(node_, (node_ + offset_) % n_);
  ++node_;
  if (node_ == n_) {
    node_ = 0;
    ++offset_;  // the entry guard ends the stream once offset_ > d_/2
  }
  return true;
}

size_t CirculantEdgeStream::NextBatch(Edge* buf, size_t cap) {
  size_t produced = 0;
  while (produced < cap && d_ != 0 && offset_ <= d_ / 2) {
    // Emit the rest of the current offset ring in one tight loop.
    const NodeId take = static_cast<NodeId>(std::min<size_t>(
        cap - produced, static_cast<size_t>(n_ - node_)));
    for (NodeId i = 0; i < take; ++i) {
      NodeId u = node_ + i;
      NodeId v = u + offset_;
      buf[produced + i] = Edge(u, v >= n_ ? v - n_ : v);
    }
    produced += take;
    node_ += take;
    if (node_ == n_) {
      node_ = 0;
      ++offset_;
    }
  }
  return produced;
}

}  // namespace densest
