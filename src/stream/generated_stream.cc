#include "stream/generated_stream.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace densest {

GnpEdgeStream::GnpEdgeStream(NodeId n, double p, uint64_t seed,
                             size_t materialize_budget_bytes)
    : n_(n),
      p_(p),
      seed_(seed),
      log1mp_(p > 0 && p < 1 ? std::log(1.0 - p) : 0.0),
      rng_(seed),
      cache_(materialize_budget_bytes) {
  Reset();
}

void GnpEdgeStream::Reset() {
  cache_.OnReset();
  rng_ = Rng(seed_);
  u_ = -1;
  v_ = 1;
  exhausted_ = (p_ <= 0.0 || n_ < 2);
}

bool GnpEdgeStream::GenerateNext(Edge* e) {
  if (exhausted_) return false;
  const int64_t n = static_cast<int64_t>(n_);
  if (p_ >= 1.0) {
    // Dense corner case: enumerate all pairs directly.
    ++u_;
    if (u_ >= v_) {
      u_ = 0;
      ++v_;
      if (v_ >= n) {
        exhausted_ = true;
        return false;
      }
    }
    *e = Edge(static_cast<NodeId>(u_), static_cast<NodeId>(v_));
    return true;
  }
  // Geometric skip to the next present edge in the (u < v) enumeration.
  double r = 1.0 - rng_.UniformDouble();
  u_ += 1 + static_cast<int64_t>(std::floor(std::log(r) / log1mp_));
  while (u_ >= v_ && v_ < n) {
    u_ -= v_;
    ++v_;
  }
  if (v_ >= n) {
    exhausted_ = true;
    return false;
  }
  *e = Edge(static_cast<NodeId>(u_), static_cast<NodeId>(v_));
  return true;
}

bool GnpEdgeStream::Next(Edge* e) {
  if (cache_.serving()) return cache_.Next(e);
  if (!GenerateNext(e)) {
    cache_.MarkComplete();
    return false;
  }
  cache_.Record(*e);
  return true;
}

std::span<const Edge> GnpEdgeStream::NextView(Edge* scratch, size_t cap) {
  if (cache_.serving()) return cache_.NextView(cap);
  return EdgeStream::NextView(scratch, cap);
}

CirculantEdgeStream::CirculantEdgeStream(NodeId n, NodeId d,
                                         size_t materialize_budget_bytes)
    : n_(n),
      d_(d),
      // The pass length is known up front: either the whole pass fits the
      // budget or recording is pointless, so decide here.
      cache_(static_cast<EdgeId>(n) * (d / 2) * sizeof(Edge) <=
                     materialize_budget_bytes
                 ? materialize_budget_bytes
                 : 0) {
  assert(d % 2 == 0 && d < n);
  Reset();
}

void CirculantEdgeStream::Reset() {
  cache_.OnReset();
  node_ = 0;
  offset_ = 1;
}

bool CirculantEdgeStream::Next(Edge* e) {
  if (cache_.serving()) return cache_.Next(e);
  if (d_ == 0 || offset_ > d_ / 2) {
    cache_.MarkComplete();
    return false;
  }
  *e = Edge(node_, (node_ + offset_) % n_);
  cache_.Record(*e);
  ++node_;
  if (node_ == n_) {
    node_ = 0;
    ++offset_;  // the entry guard ends the stream once offset_ > d_/2
  }
  return true;
}

size_t CirculantEdgeStream::NextBatch(Edge* buf, size_t cap) {
  if (cache_.serving()) {
    std::span<const Edge> view = cache_.NextView(cap);
    std::copy(view.begin(), view.end(), buf);
    return view.size();
  }
  size_t produced = 0;
  while (produced < cap && d_ != 0 && offset_ <= d_ / 2) {
    // Emit the rest of the current offset ring in one tight loop.
    const NodeId take = static_cast<NodeId>(std::min<size_t>(
        cap - produced, static_cast<size_t>(n_ - node_)));
    for (NodeId i = 0; i < take; ++i) {
      NodeId u = node_ + i;
      NodeId v = u + offset_;
      buf[produced + i] = Edge(u, v >= n_ ? v - n_ : v);
    }
    produced += take;
    node_ += take;
    if (node_ == n_) {
      node_ = 0;
      ++offset_;
    }
  }
  for (size_t i = 0; i < produced; ++i) cache_.Record(buf[i]);
  // Complete only on actual generator exhaustion — a cap==0 call mid-pass
  // must not promote a partial recording.
  if (d_ == 0 || offset_ > d_ / 2) cache_.MarkComplete();
  return produced;
}

std::span<const Edge> CirculantEdgeStream::NextView(Edge* scratch, size_t cap) {
  if (cache_.serving()) return cache_.NextView(cap);
  return EdgeStream::NextView(scratch, cap);
}

}  // namespace densest
