// Copyright 2026 The densest Authors.
// Generator-backed edge streams: the edges are *recomputed* on every pass
// instead of stored anywhere. This is the extreme point of the
// semi-streaming model — O(1) stream state — and is how experiments beyond
// RAM size can still be driven deterministically.
//
// Each generator optionally records its first completed pass into an
// in-memory edge vector (capped by a byte budget): passes 2..P then serve
// zero-copy views of that vector — the same fast path an EdgeListStream
// takes — instead of re-running the generator per edge. The replayed
// sequence is bit-identical to regeneration (generators are deterministic),
// so this trades memory for compute without changing any result.

#ifndef DENSEST_STREAM_GENERATED_STREAM_H_
#define DENSEST_STREAM_GENERATED_STREAM_H_

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "stream/edge_stream.h"

namespace densest {

/// \brief First-pass recorder shared by the generator streams.
///
/// States: disabled (budget 0 or blown) -> recording (first pass) ->
/// serving (complete pass captured; replay from memory). A Reset before the
/// first pass completed restarts recording from scratch.
class EdgeCache {
 public:
  /// `budget_bytes` caps the materialized pass (0 disables caching).
  explicit EdgeCache(size_t budget_bytes)
      : max_edges_(budget_bytes / sizeof(Edge)) {
    if (max_edges_ == 0) abandoned_ = true;
  }

  /// True once a full pass is captured and replay is active.
  bool serving() const { return serving_; }

  /// Records one generated edge of the current (first) pass.
  void Record(const Edge& e) {
    if (abandoned_) return;
    if (edges_.size() >= max_edges_) {
      Abandon();
      return;
    }
    edges_.push_back(e);
  }

  /// The generator reported end of pass: the recording is complete.
  void MarkComplete() {
    if (!abandoned_) complete_ = true;
  }

  /// Pass boundary. Promotes a complete recording to serving, restarts an
  /// incomplete one, and rewinds the replay cursor.
  void OnReset() {
    if (complete_) serving_ = true;
    if (!serving_) edges_.clear();
    pos_ = 0;
  }

  /// Replay: next edge of the cached pass (false at end).
  bool Next(Edge* e) {
    if (pos_ >= edges_.size()) return false;
    *e = edges_[pos_++];
    return true;
  }

  /// Replay: zero-copy view of up to `cap` cached edges.
  std::span<const Edge> NextView(size_t cap) {
    const size_t take = std::min(cap, edges_.size() - pos_);
    std::span<const Edge> view(edges_.data() + pos_, take);
    pos_ += take;
    return view;
  }

  /// Cached pass length (only meaningful while serving()).
  EdgeId size() const { return static_cast<EdgeId>(edges_.size()); }

 private:
  void Abandon() {
    abandoned_ = true;
    edges_.clear();
    edges_.shrink_to_fit();
  }

  size_t max_edges_;
  std::vector<Edge> edges_;
  size_t pos_ = 0;
  bool complete_ = false;
  bool serving_ = false;
  bool abandoned_ = false;
};

/// \brief Streams the edges of an Erdős–Rényi G(n, p) graph using
/// Batagelj–Brandes geometric skipping, regenerating the identical edge
/// sequence on every pass from the seed. Nothing is materialized unless a
/// cache budget is given: state is a few machine words.
class GnpEdgeStream : public EdgeStream {
 public:
  /// G(n, p) with the given seed; the same (n, p, seed) triple always
  /// yields the same graph. `materialize_budget_bytes` > 0 records the
  /// first pass (up to that many bytes of edges) and serves later passes
  /// zero-copy from memory; if the graph outgrows the budget, caching is
  /// abandoned and every pass regenerates as before.
  GnpEdgeStream(NodeId n, double p, uint64_t seed,
                size_t materialize_budget_bytes = 0);

  void Reset() override;
  bool Next(Edge* e) override;
  // NextBatch is inherited: per-edge work here is a log and a geometric
  // skip, so batching buys nothing beyond what the base loop already does.
  // (Cached passes override NextView below and skip Next entirely.)
  std::span<const Edge> NextView(Edge* scratch, size_t cap) override;
  bool HasUnitWeights() const override { return true; }
  NodeId num_nodes() const override { return n_; }
  /// Exact once a pass has been materialized; 0 (unknown) before that.
  EdgeId SizeHint() const override {
    return cache_.serving() ? cache_.size() : 0;
  }

 private:
  bool GenerateNext(Edge* e);

  NodeId n_;
  double p_;
  uint64_t seed_;
  double log1mp_;
  Rng rng_;
  int64_t u_ = -1;
  int64_t v_ = 1;
  bool exhausted_ = false;
  EdgeCache cache_;
};

/// \brief Streams a deterministic circulant d-regular graph on n nodes,
/// computing each edge from its index. Zero storage (unless a cache budget
/// is given); useful for the Lemma 5 pass-lower-bound experiments at sizes
/// where materializing the blocks would be wasteful.
class CirculantEdgeStream : public EdgeStream {
 public:
  /// Requires d even and d < n (the matching case of odd d is only needed
  /// by the materialized generator). The edge count is known up front, so
  /// `materialize_budget_bytes` either fits the whole pass or is ignored.
  CirculantEdgeStream(NodeId n, NodeId d, size_t materialize_budget_bytes = 0);

  void Reset() override;
  bool Next(Edge* e) override;
  size_t NextBatch(Edge* buf, size_t cap) override;
  std::span<const Edge> NextView(Edge* scratch, size_t cap) override;
  bool HasUnitWeights() const override { return true; }
  NodeId num_nodes() const override { return n_; }
  EdgeId SizeHint() const override {
    return static_cast<EdgeId>(n_) * (d_ / 2);
  }

 private:
  NodeId n_, d_;
  NodeId node_ = 0;
  NodeId offset_ = 1;
  EdgeCache cache_;
};

}  // namespace densest

#endif  // DENSEST_STREAM_GENERATED_STREAM_H_
