// Copyright 2026 The densest Authors.
// Generator-backed edge streams: the edges are *recomputed* on every pass
// instead of stored anywhere. This is the extreme point of the
// semi-streaming model — O(1) stream state — and is how experiments beyond
// RAM size can still be driven deterministically.

#ifndef DENSEST_STREAM_GENERATED_STREAM_H_
#define DENSEST_STREAM_GENERATED_STREAM_H_

#include "common/random.h"
#include "stream/edge_stream.h"

namespace densest {

/// \brief Streams the edges of an Erdős–Rényi G(n, p) graph using
/// Batagelj–Brandes geometric skipping, regenerating the identical edge
/// sequence on every pass from the seed. Nothing is materialized: state is
/// a few machine words.
class GnpEdgeStream : public EdgeStream {
 public:
  /// G(n, p) with the given seed; the same (n, p, seed) triple always
  /// yields the same graph.
  GnpEdgeStream(NodeId n, double p, uint64_t seed);

  void Reset() override;
  bool Next(Edge* e) override;
  // NextBatch is inherited: per-edge work here is a log and a geometric
  // skip, so batching buys nothing beyond what the base loop already does.
  bool HasUnitWeights() const override { return true; }
  NodeId num_nodes() const override { return n_; }

 private:
  NodeId n_;
  double p_;
  uint64_t seed_;
  double log1mp_;
  Rng rng_;
  int64_t u_ = -1;
  int64_t v_ = 1;
  bool exhausted_ = false;
};

/// \brief Streams a deterministic circulant d-regular graph on n nodes,
/// computing each edge from its index. Zero storage; useful for the
/// Lemma 5 pass-lower-bound experiments at sizes where materializing the
/// blocks would be wasteful.
class CirculantEdgeStream : public EdgeStream {
 public:
  /// Requires d even and d < n (the matching case of odd d is only needed
  /// by the materialized generator).
  CirculantEdgeStream(NodeId n, NodeId d);

  void Reset() override;
  bool Next(Edge* e) override;
  size_t NextBatch(Edge* buf, size_t cap) override;
  bool HasUnitWeights() const override { return true; }
  NodeId num_nodes() const override { return n_; }
  EdgeId SizeHint() const override {
    return static_cast<EdgeId>(n_) * (d_ / 2);
  }

 private:
  NodeId n_, d_;
  NodeId node_ = 0;
  NodeId offset_ = 1;
};

}  // namespace densest

#endif  // DENSEST_STREAM_GENERATED_STREAM_H_
