// Copyright 2026 The densest Authors.
// The scan state of one *physical* pass over an EdgeStream, shared by every
// logical consumer of that pass.
//
// An EdgeStream has exactly one cursor; when K peeling runs are fused over
// the same stream (core/multi_run.h), they must all drink from one scan
// instead of each resetting the stream for themselves. PassCursor is that
// one scan made explicit: the fused engine pulls chunks through it and fans
// each chunk across the runs, and the cursor is the single place where
// "number of times the stream was physically scanned" is counted — the
// quantity the streaming model charges for and the fused benches verify.

#ifndef DENSEST_STREAM_PASS_CURSOR_H_
#define DENSEST_STREAM_PASS_CURSOR_H_

#include <cstdint>
#include <span>

#include "graph/types.h"
#include "stream/edge_stream.h"

namespace densest {

/// \brief Cursor over an EdgeStream that counts physical passes and edges.
/// Not owning; the stream must outlive the cursor.
class PassCursor {
 public:
  explicit PassCursor(EdgeStream& stream) : stream_(&stream) {}

  /// Rewinds the stream and starts a new physical pass.
  void BeginPass() {
    stream_->Reset();
    ++passes_;
  }

  /// Next chunk of the current pass: up to `cap` edges, zero-copy where the
  /// stream supports it, empty exactly at end of pass. `scratch` must hold
  /// `cap` edges and follows EdgeStream::NextView's aliasing rules (one
  /// outstanding view per scratch region).
  std::span<const Edge> NextChunk(Edge* scratch, size_t cap) {
    std::span<const Edge> view = stream_->NextView(scratch, cap);
    edges_scanned_ += view.size();
    return view;
  }

  EdgeStream& stream() { return *stream_; }
  /// Physical passes started so far (BeginPass calls).
  uint64_t passes() const { return passes_; }
  /// Edges delivered across all passes.
  uint64_t edges_scanned() const { return edges_scanned_; }

 private:
  EdgeStream* stream_;
  uint64_t passes_ = 0;
  uint64_t edges_scanned_ = 0;
};

}  // namespace densest

#endif  // DENSEST_STREAM_PASS_CURSOR_H_
