// Copyright 2026 The densest Authors.
// Accounting for the streaming model: passes, edges scanned, bytes, memory.

#ifndef DENSEST_STREAM_PASS_STATS_H_
#define DENSEST_STREAM_PASS_STATS_H_

#include <cstdint>
#include <string>

#include "stream/edge_stream.h"

namespace densest {

/// \brief Counters a streaming algorithm accumulates while consuming a
/// stream. Passes are counted on Reset(); edges on Next().
struct PassStats {
  uint64_t passes = 0;
  uint64_t edges_scanned = 0;
  /// Peak words of between-pass state the algorithm reported via
  /// ReportStateWords (the semi-streaming O(n) budget).
  uint64_t peak_state_words = 0;
  /// Transient IO faults retried / healed by the stream's retry loop (see
  /// common/retry.h): a run that limped through transient faults is
  /// observably different from a clean one even when both succeed.
  uint64_t io_retries = 0;
  uint64_t io_retries_healed = 0;

  void ReportStateWords(uint64_t words) {
    if (words > peak_state_words) peak_state_words = words;
  }

  std::string ToString() const;
};

/// \brief Decorator that counts passes and edges flowing through an
/// underlying stream. Algorithms take an EdgeStream&; wrapping it in a
/// CountingEdgeStream makes the pass/edge accounting externally visible.
class CountingEdgeStream : public EdgeStream {
 public:
  CountingEdgeStream(EdgeStream& inner, PassStats& stats)
      : inner_(&inner), stats_(&stats) {}

  void Reset() override {
    ++stats_->passes;
    inner_->Reset();
    SyncRetryStats();
  }
  bool Next(Edge* e) override {
    bool has = inner_->Next(e);
    if (has) {
      ++stats_->edges_scanned;
    } else {
      SyncRetryStats();  // end of pass: fold in the inner stream's retries
    }
    return has;
  }
  size_t NextBatch(Edge* buf, size_t cap) override {
    size_t got = inner_->NextBatch(buf, cap);
    stats_->edges_scanned += got;
    if (got == 0) SyncRetryStats();
    return got;
  }
  std::span<const Edge> NextView(Edge* scratch, size_t cap) override {
    std::span<const Edge> view = inner_->NextView(scratch, cap);
    stats_->edges_scanned += view.size();
    if (view.empty()) SyncRetryStats();
    return view;
  }
  bool HasUnitWeights() const override { return inner_->HasUnitWeights(); }
  Status status() const override { return inner_->status(); }
  IoRetryStats io_retry_stats() const override {
    return inner_->io_retry_stats();
  }
  // The CSR views are deliberately NOT forwarded: the pass engine's CSR
  // kernel reads the graph without flowing edges through this decorator,
  // which would silently break the edges_scanned accounting.
  NodeId num_nodes() const override { return inner_->num_nodes(); }
  EdgeId SizeHint() const override { return inner_->SizeHint(); }

 private:
  // The inner stream's retry counters are cumulative since construction;
  // copying them (not adding) at pass boundaries keeps PassStats exact no
  // matter how many passes or syncs happen.
  void SyncRetryStats() {
    const IoRetryStats r = inner_->io_retry_stats();
    stats_->io_retries = r.retries;
    stats_->io_retries_healed = r.healed;
  }

  EdgeStream* inner_;
  PassStats* stats_;
};

}  // namespace densest

#endif  // DENSEST_STREAM_PASS_STATS_H_
