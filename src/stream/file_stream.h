// Copyright 2026 The densest Authors.
// Disk-backed EdgeStream over a packed binary edge file. This is the
// honest semi-streaming configuration: the edge set never resides in RAM.

#ifndef DENSEST_STREAM_FILE_STREAM_H_
#define DENSEST_STREAM_FILE_STREAM_H_

#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/edge_list.h"
#include "stream/edge_stream.h"

namespace densest {

/// Binary edge-file layout: a 24-byte header (magic, num_nodes, num_edges,
/// flags) followed by packed records. Unweighted records are 8 bytes
/// (u:u32, v:u32); weighted records append w:f64.
struct BinaryEdgeFileHeader {
  static constexpr uint64_t kMagic = 0x44454e5345444745ULL;  // "DENSEDGE"
  uint64_t magic = kMagic;
  uint32_t num_nodes = 0;
  uint32_t flags = 0;  // bit 0: weighted
  uint64_t num_edges = 0;
};

/// Writes `edges` to `path` in the binary edge-file format. `weighted`
/// selects the record size; if false, weights are dropped.
Status WriteBinaryEdgeFile(const std::string& path, const EdgeList& edges,
                           bool weighted);

/// \brief Buffered streaming reader over a binary edge file. Holds an open
/// FILE handle; each pass re-reads the file from the start.
///
/// Reads ahead: while the caller decodes the current 1 MiB buffer, the next
/// fread already runs on a one-thread background pool, so multi-pass runs
/// overlap disk latency with compute instead of alternating between them.
/// Only the prefetch task touches the FILE between hand-offs; the main
/// thread waits on the task's future before every seek, swap or close, so
/// the handle is never shared.
class BinaryFileEdgeStream : public EdgeStream {
 public:
  /// Opens `path`; fails with IOError / InvalidArgument on a bad file.
  static StatusOr<std::unique_ptr<BinaryFileEdgeStream>> Open(
      const std::string& path);

  ~BinaryFileEdgeStream() override;

  void Reset() override;
  bool Next(Edge* e) override;
  size_t NextBatch(Edge* buf, size_t cap) override;
  /// Sticky IO health: set to IOError when a mid-stream fread fails
  /// (ferror, not EOF) or when the file ends before header_.num_edges
  /// records were decoded (a truncated file). Once set it persists across
  /// Reset() — the underlying file is bad and every further pass would be
  /// silently short, which is exactly the wrong-density bug this guards.
  Status status() const override { return status_; }
  bool HasUnitWeights() const override { return !weighted_; }
  NodeId num_nodes() const override { return header_.num_nodes; }
  EdgeId SizeHint() const override { return header_.num_edges; }

  /// Total bytes read since Open (across all passes, including read-ahead
  /// discarded by an early Reset) — used by PassStats to report streaming
  /// IO volume.
  uint64_t bytes_read() const { return bytes_read_; }

  /// Retry knobs for transient (kUnavailable) faults in the prefetch task.
  /// The task reads the policy, and one is already in flight the moment
  /// Open returns — join it before writing (the joined chunk stays
  /// buffered for the next Refill to consume).
  void set_retry_policy(const RetryPolicy& policy) {
    JoinPrefetch();
    retry_policy_ = policy;
  }

  /// Outcomes of the prefetch retry loop. Unlike back_len_, these may be
  /// read while a prefetch is in flight (Reset() issues one before
  /// returning, and pass-boundary stats syncs read immediately after), so
  /// the counters are relaxed atomics: each is an independent monotonic
  /// tally with no ordering relationship to the buffered data, and a read
  /// that misses an in-flight increment just attributes it to the next
  /// sync. SpillFile uses the same contract.
  IoRetryStats io_retry_stats() const override {
    IoRetryStats stats;
    stats.retries = retries_.load(std::memory_order_relaxed);
    stats.healed = healed_.load(std::memory_order_relaxed);
    stats.exhausted = retry_exhausted_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  BinaryFileEdgeStream() = default;
  /// Starts the background fread of the next chunk into back_.
  void IssuePrefetch();
  /// Joins an outstanding prefetch (if any) and accounts its bytes,
  /// without consuming the chunk — safe to call at any point the task
  /// must not be running (writing retry_policy_, destruction).
  void JoinPrefetch();
  /// Joins like JoinPrefetch, then delivers the buffered chunk exactly
  /// once: returns how many bytes it read (0 when none was pending, at
  /// EOF, or when a previous call already consumed the chunk).
  size_t WaitPrefetch();
  /// Makes at least one whole record available in front_, carrying the
  /// partial-record tail across the buffer swap. False at end of data.
  bool Refill(size_t record);

  FILE* file_ = nullptr;
  std::string path_;  // for error messages
  BinaryEdgeFileHeader header_;
  bool weighted_ = false;
  EdgeId emitted_ = 0;
  uint64_t bytes_read_ = 0;
  Status status_;  // sticky; see status()
  // Double buffer: decode from front_ while the prefetch task fills back_.
  // Each buffer reserves kMaxRecord leading bytes so a partial record can
  // be carried over in front of the next chunk's data.
  std::vector<unsigned char> front_;
  std::vector<unsigned char> back_;
  size_t buf_pos_ = 0;
  size_t buf_len_ = 0;
  size_t back_len_ = 0;  // written by the prefetch task, read after wait
  // True between a JoinPrefetch and the WaitPrefetch that consumes the
  // chunk: back_ holds data nobody decoded yet.
  bool back_ready_ = false;
  // Whether the prefetch task's short fread was a stream *error* rather
  // than EOF (std::ferror, checked inside the task while it still owns the
  // FILE). Read only after WaitPrefetch, like back_len_.
  bool back_error_ = false;
  // Whether the prefetch task exhausted its retry budget against a
  // transient fault; surfaces as a sticky kUnavailable (distinct from the
  // permanent kIOError of back_error_). Read only after WaitPrefetch.
  bool back_unavailable_ = false;
  bool exhausted_ = false;
  RetryPolicy retry_policy_;
  // Retry tallies, incremented by the prefetch task and read concurrently
  // by io_retry_stats(); see that accessor for the ordering contract.
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> healed_{0};
  std::atomic<uint64_t> retry_exhausted_{0};
  std::unique_ptr<ThreadPool> reader_;  // one background read thread
  std::future<void> prefetch_;
};

}  // namespace densest

#endif  // DENSEST_STREAM_FILE_STREAM_H_
