// Copyright 2026 The densest Authors.
// Disk-backed EdgeStream over a packed binary edge file. This is the
// honest semi-streaming configuration: the edge set never resides in RAM.

#ifndef DENSEST_STREAM_FILE_STREAM_H_
#define DENSEST_STREAM_FILE_STREAM_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/edge_list.h"
#include "stream/edge_stream.h"

namespace densest {

/// Binary edge-file layout: a 24-byte header (magic, num_nodes, num_edges,
/// flags) followed by packed records. Unweighted records are 8 bytes
/// (u:u32, v:u32); weighted records append w:f64.
struct BinaryEdgeFileHeader {
  static constexpr uint64_t kMagic = 0x44454e5345444745ULL;  // "DENSEDGE"
  uint64_t magic = kMagic;
  uint32_t num_nodes = 0;
  uint32_t flags = 0;  // bit 0: weighted
  uint64_t num_edges = 0;
};

/// Writes `edges` to `path` in the binary edge-file format. `weighted`
/// selects the record size; if false, weights are dropped.
Status WriteBinaryEdgeFile(const std::string& path, const EdgeList& edges,
                           bool weighted);

/// \brief Buffered streaming reader over a binary edge file. Holds an open
/// FILE handle; each pass re-reads the file from the start.
class BinaryFileEdgeStream : public EdgeStream {
 public:
  /// Opens `path`; fails with IOError / InvalidArgument on a bad file.
  static StatusOr<std::unique_ptr<BinaryFileEdgeStream>> Open(
      const std::string& path);

  ~BinaryFileEdgeStream() override;

  void Reset() override;
  bool Next(Edge* e) override;
  size_t NextBatch(Edge* buf, size_t cap) override;
  bool HasUnitWeights() const override { return !weighted_; }
  NodeId num_nodes() const override { return header_.num_nodes; }
  EdgeId SizeHint() const override { return header_.num_edges; }

  /// Total bytes read since Open (across all passes) — used by PassStats
  /// to report streaming IO volume.
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  BinaryFileEdgeStream() = default;
  bool FillBuffer();

  FILE* file_ = nullptr;
  BinaryEdgeFileHeader header_;
  bool weighted_ = false;
  EdgeId emitted_ = 0;
  uint64_t bytes_read_ = 0;
  std::vector<unsigned char> buffer_;
  size_t buf_pos_ = 0;
  size_t buf_len_ = 0;
};

}  // namespace densest

#endif  // DENSEST_STREAM_FILE_STREAM_H_
