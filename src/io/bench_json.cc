#include "io/bench_json.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace densest {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string BenchJson::ToJson() const {
  std::string out = "{\n  \"bench\": \"" + JsonEscape(name_) +
                    "\",\n  \"metrics\": {";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(metrics_[i].first) + "\": ";
    const double v = metrics_[i].second;
    if (std::isfinite(v)) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out += buf;
    } else {
      out += "null";
    }
  }
  out += "\n  }\n}\n";
  return out;
}

Status BenchJson::Write() const {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    return Status::IOError("cannot create bench_results/: " + ec.message());
  }
  const std::string path = "bench_results/BENCH_" + name_ + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const std::string doc = ToJson();
  if (std::fwrite(doc.data(), 1, doc.size(), f) != doc.size()) {
    std::fclose(f);
    std::remove(path.c_str());  // never leave a half-written document
    return Status::IOError("short write: " + path);
  }
  if (std::fclose(f) != 0) {
    std::remove(path.c_str());
    return Status::IOError("close failed: " + path);
  }
  return Status::OK();
}

}  // namespace densest
