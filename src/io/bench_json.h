// Copyright 2026 The densest Authors.
// Machine-readable metrics sink for the perf harnesses. Lives in the
// library (not bench/) so the serialization — key escaping, non-finite
// handling — is unit-testable; a NaN metric or a quote in a key must never
// emit invalid JSON, because CI tooling diffs these files across runs.

#ifndef DENSEST_IO_BENCH_JSON_H_
#define DENSEST_IO_BENCH_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace densest {

/// Escapes `s` for use inside a JSON string literal: backslash, double
/// quote, and control characters (U+0000..U+001F) are encoded per RFC 8259.
std::string JsonEscape(const std::string& s);

/// \brief Collects flat key -> number metrics (edges/s, scan counts, wall
/// seconds) and serializes them as one JSON object, so CI and scripts can
/// diff runs without scraping the human-oriented stdout tables.
///
/// Serialization is always valid JSON: keys and the bench name are escaped,
/// and non-finite values (NaN, +/-inf have no JSON representation) are
/// written as null rather than as bare tokens that break parsers.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  const std::string& name() const { return name_; }

  /// Renders the full document, e.g.
  /// {"bench": "multi_run", "metrics": {"scan_reduction": 21.5}}.
  std::string ToJson() const;

  /// Writes ToJson() to `bench_results/BENCH_<name>.json` under the current
  /// working directory, creating bench_results/ if needed. Returns the
  /// error (leaving no file behind) when the directory or file is
  /// unavailable.
  Status Write() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace densest

#endif  // DENSEST_IO_BENCH_JSON_H_
