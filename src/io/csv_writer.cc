#include "io/csv_writer.h"

#include <sstream>

namespace densest {

StatusOr<CsvWriter> CsvWriter::Open(const std::string& path,
                                    const std::vector<std::string>& header) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  CsvWriter w(std::move(out));
  w.WriteRow(header);
  return w;
}

void CsvWriter::AddRow(const std::vector<std::string>& values) {
  WriteRow(values);
}

void CsvWriter::WriteRow(const std::vector<std::string>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_ << ',';
    const std::string& v = values[i];
    if (v.find_first_of(",\"\n") != std::string::npos) {
      out_ << '"';
      for (char c : v) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << v;
    }
  }
  out_ << '\n';
}

std::string CsvWriter::Num(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace densest
