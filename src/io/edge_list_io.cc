#include "io/edge_list_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"

namespace densest {

StatusOr<EdgeList> ReadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  EdgeList edges;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (DENSEST_FAILPOINT("edge_list.read") != FailpointAction::kNone) {
      // Models a mid-file device failure: same observable as in.bad().
      return Status::IOError("read error (injected): " + path + ":" +
                             std::to_string(lineno));
    }
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    long long u, v;
    double w = 1.0;
    if (!(ss >> u >> v)) {
      return Status::InvalidArgument("bad edge at " + path + ":" +
                                     std::to_string(lineno));
    }
    ss >> w;  // optional weight
    if (u < 0 || v < 0) {
      return Status::InvalidArgument("negative node id at " + path + ":" +
                                     std::to_string(lineno));
    }
    edges.Add(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
  }
  // getline exits identically on EOF and on a mid-file read error; only
  // badbit tells them apart. Returning the partial list as OK would yield
  // a plausible-looking density over a truncated edge set.
  if (in.bad()) return Status::IOError("read error: " + path);
  return edges;
}

Status WriteEdgeListText(const std::string& path, const EdgeList& edges,
                         bool weighted) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (const Edge& e : edges.edges()) {
    if (weighted) {
      out << e.u << ' ' << e.v << ' ' << e.w << '\n';
    } else {
      out << e.u << ' ' << e.v << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace densest
