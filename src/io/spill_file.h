// Copyright 2026 The densest Authors.
// Temp-file spill store for the MapReduce shuffle: when a shuffle partition
// outgrows its memory budget, its sorted runs are serialized here and
// merge-read back at reduce time, so resident shuffle memory is bounded by
// the budget instead of by |E|. Byte-oriented: callers frame their own
// records (the shuffle writes arrays of trivially-copyable KV structs).
//
// Failure model mirrors the edge streams' sticky status(): a short read
// before a segment is exhausted is an IOError ("truncated spill file"),
// never a silent end-of-data — a reduce over a partial partition would
// produce a plausible-looking but wrong aggregate.

#ifndef DENSEST_IO_SPILL_FILE_H_
#define DENSEST_IO_SPILL_FILE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "common/retry.h"
#include "common/status.h"

namespace densest {

/// \brief One append-only temp file of spilled bytes, deleted when the
/// object dies. Writes happen single-threaded (the shuffle appends runs in
/// chunk order); reads go through independent Reader cursors, each with its
/// own FILE handle, so the merge phase may read several runs of the same
/// file concurrently.
class SpillFile {
 public:
  /// Creates a uniquely-named spill file in `dir` ("" uses the system temp
  /// directory). Fails with IOError when the file cannot be opened.
  static StatusOr<std::unique_ptr<SpillFile>> Create(const std::string& dir);

  /// Creates the spill file at exactly `path` (tests use this to damage the
  /// file between write and read).
  static StatusOr<std::unique_ptr<SpillFile>> CreateAt(std::string path);

  /// Closes and removes the file.
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends `bytes` raw bytes. Fails with IOError on a short write (disk
  /// full); the error is sticky and every later Append fails too.
  Status Append(const void* data, size_t bytes);

  /// Flushes buffered writes to the OS so Readers (which reopen the path)
  /// observe everything appended so far.
  Status Flush();

  /// Total bytes successfully appended.
  uint64_t bytes_written() const { return bytes_written_; }

  const std::string& path() const { return path_; }

  /// Retry knobs for transient (kUnavailable) faults on this file's read
  /// and write seams.
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }

  /// Accumulated retry-loop outcomes across Append/ReadAt/Reader::Read.
  /// Counters are atomic: distinct partitions' merges may read their own
  /// SpillFiles concurrently, and independent Readers may share one file.
  IoRetryStats io_retry_stats() const {
    IoRetryStats stats;
    stats.retries = retries_.load(std::memory_order_relaxed);
    stats.healed = healed_.load(std::memory_order_relaxed);
    stats.exhausted = exhausted_.load(std::memory_order_relaxed);
    return stats;
  }

  /// \brief Sequential cursor over one byte segment of the file.
  class Reader {
   public:
    Reader(Reader&& other) noexcept;
    Reader& operator=(Reader&& other) noexcept;
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;
    ~Reader();

    /// Reads up to min(cap, remaining()) bytes into `buf` and returns how
    /// many were read. 0 exactly when the segment is exhausted. A short
    /// read before that — the file was truncated or the disk failed — is
    /// an IOError, not an end-of-data.
    StatusOr<size_t> Read(void* buf, size_t cap);

    /// Bytes of the segment not yet delivered.
    uint64_t remaining() const { return remaining_; }

   private:
    friend class SpillFile;
    Reader(const SpillFile* owner, FILE* file, uint64_t remaining,
           std::string path)
        : owner_(owner),
          file_(file),
          remaining_(remaining),
          path_(std::move(path)) {}

    const SpillFile* owner_;  // retry policy + shared retry counters
    FILE* file_;
    uint64_t remaining_;
    std::string path_;  // for error messages
  };

  /// Opens an independent reader over bytes [offset, offset + length).
  /// Requires offset + length <= bytes_written(). The SpillFile must
  /// outlive the reader (destruction unlinks the path).
  StatusOr<Reader> OpenReader(uint64_t offset, uint64_t length) const;

  /// Positioned read through one lazily-opened handle shared by all
  /// callers of this file — the merge phase reads its many sorted runs
  /// through this, so open fds stay at one per partition no matter how
  /// many runs spilled (independent Readers would exhaust the fd limit on
  /// exactly the out-of-core workloads the spill path targets). Reads up
  /// to min(cap, bytes_written() - offset) bytes; a short read before
  /// that is an IOError (truncation), mirroring Reader::Read. NOT
  /// thread-safe: one partition's merge — this file's only ReadAt caller
  /// — runs single-threaded.
  StatusOr<size_t> ReadAt(uint64_t offset, void* buf, size_t cap);

 private:
  SpillFile(FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  /// Evaluates the named failpoint, retrying transient (kUnavailable)
  /// fires under the file's policy. Returns the terminal action: kNone,
  /// kIOError or kShortRead, or kUnavailable when the retry budget ran
  /// out. Counts into the shared retry stats.
  FailpointAction EvalFailpointWithRetry(const char* name) const;

  FILE* file_;
  FILE* read_file_ = nullptr;  // lazily opened by ReadAt
  std::string path_;
  uint64_t bytes_written_ = 0;
  Status status_;  // sticky write-side error
  RetryPolicy retry_policy_;
  mutable std::atomic<uint64_t> retries_{0};
  mutable std::atomic<uint64_t> healed_{0};
  mutable std::atomic<uint64_t> exhausted_{0};
};

}  // namespace densest

#endif  // DENSEST_IO_SPILL_FILE_H_
