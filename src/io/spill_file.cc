#include "io/spill_file.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace densest {

namespace {

std::string ErrnoMessage() {
  return std::strerror(errno);
}

/// Process-unique spill names: the pid keeps concurrent processes in a
/// shared temp dir apart, the counter keeps files within one process apart.
std::string NextSpillName() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  return "densest_spill_" + std::to_string(::getpid()) + "_" +
         std::to_string(id) + ".tmp";
}

}  // namespace

StatusOr<std::unique_ptr<SpillFile>> SpillFile::Create(
    const std::string& dir) {
  std::filesystem::path base;
  if (dir.empty()) {
    std::error_code ec;
    base = std::filesystem::temp_directory_path(ec);
    if (ec) return Status::IOError("no temp directory: " + ec.message());
  } else {
    base = dir;
  }
  return CreateAt((base / NextSpillName()).string());
}

StatusOr<std::unique_ptr<SpillFile>> SpillFile::CreateAt(std::string path) {
  FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot create spill file " + path + ": " +
                           ErrnoMessage());
  }
  return std::unique_ptr<SpillFile>(new SpillFile(file, std::move(path)));
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  if (read_file_ != nullptr) std::fclose(read_file_);
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // best effort
}

FailpointAction SpillFile::EvalFailpointWithRetry(const char* name) const {
  int attempt = 0;
  RetryBackoff backoff(retry_policy_);
  for (;;) {
    const FailpointAction fp = DENSEST_FAILPOINT(name);
    if (fp != FailpointAction::kUnavailable) {
      if (attempt > 0) {
        healed_.fetch_add(1, std::memory_order_relaxed);
        DENSEST_METRIC_COUNTER("io.retries_healed").Inc();
      }
      return fp;
    }
    if (attempt + 1 >= retry_policy_.max_attempts) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      DENSEST_METRIC_COUNTER("io.retries_exhausted").Inc();
      return FailpointAction::kUnavailable;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    DENSEST_METRIC_COUNTER("io.retries").Inc();
    ++attempt;
    backoff.Sleep();
  }
}

StatusOr<size_t> SpillFile::ReadAt(uint64_t offset, void* buf, size_t cap) {
  if (offset >= bytes_written_) return size_t{0};
  const FailpointAction fp = EvalFailpointWithRetry("spill.read_at");
  if (fp == FailpointAction::kUnavailable) {
    return Status::Unavailable(
        "read failed after " + std::to_string(retry_policy_.max_attempts) +
        " attempts: spill file " + path_);
  }
  if (fp == FailpointAction::kIOError) {
    return Status::IOError("read error (injected) on spill file " + path_);
  }
  if (read_file_ == nullptr) {
    read_file_ = std::fopen(path_.c_str(), "rb");
    if (read_file_ == nullptr) {
      return Status::IOError("cannot reopen spill file " + path_ + ": " +
                             ErrnoMessage());
    }
  }
  if (std::fseek(read_file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("cannot seek spill file " + path_ + ": " +
                           ErrnoMessage());
  }
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(cap, bytes_written_ - offset));
  size_t got = std::fread(buf, 1, want, read_file_);
  if (fp == FailpointAction::kShortRead) got /= 2;  // torn positioned read
  if (got != want) {
    if (std::ferror(read_file_)) {
      return Status::IOError("read error on spill file " + path_ + ": " +
                             ErrnoMessage());
    }
    return Status::IOError("truncated spill file " + path_ + ": expected " +
                           std::to_string(want) + " bytes at offset " +
                           std::to_string(offset) + ", got " +
                           std::to_string(got));
  }
  return got;
}

Status SpillFile::Append(const void* data, size_t bytes) {
  if (!status_.ok()) return status_;
  if (bytes == 0) return Status::OK();
  const FailpointAction fp = EvalFailpointWithRetry("spill.append");
  if (fp == FailpointAction::kUnavailable) {
    status_ = Status::Unavailable(
        "write failed after " + std::to_string(retry_policy_.max_attempts) +
        " attempts: spill file " + path_);
    return status_;
  }
  const size_t written =
      fp == FailpointAction::kNone ? std::fwrite(data, 1, bytes, file_)
                                   : bytes / 2;  // injected short write
  if (written != bytes) {
    status_ = Status::IOError("short write to spill file " + path_ + ": " +
                              ErrnoMessage());
    return status_;
  }
  bytes_written_ += bytes;
  return Status::OK();
}

Status SpillFile::Flush() {
  if (!status_.ok()) return status_;
  if (std::fflush(file_) != 0) {
    status_ = Status::IOError("cannot flush spill file " + path_ + ": " +
                              ErrnoMessage());
  }
  return status_;
}

StatusOr<SpillFile::Reader> SpillFile::OpenReader(uint64_t offset,
                                                  uint64_t length) const {
  if (offset + length > bytes_written_) {
    return Status::InvalidArgument(
        "spill segment [" + std::to_string(offset) + ", " +
        std::to_string(offset + length) + ") beyond written size " +
        std::to_string(bytes_written_));
  }
  FILE* file = std::fopen(path_.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot reopen spill file " + path_ + ": " +
                           ErrnoMessage());
  }
  if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0) {
    const std::string msg = ErrnoMessage();
    std::fclose(file);
    return Status::IOError("cannot seek spill file " + path_ + ": " + msg);
  }
  return Reader(this, file, length, path_);
}

SpillFile::Reader::Reader(Reader&& other) noexcept
    : owner_(other.owner_),
      file_(other.file_),
      remaining_(other.remaining_),
      path_(std::move(other.path_)) {
  other.file_ = nullptr;
  other.remaining_ = 0;
}

SpillFile::Reader& SpillFile::Reader::operator=(Reader&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    owner_ = other.owner_;
    file_ = other.file_;
    remaining_ = other.remaining_;
    path_ = std::move(other.path_);
    other.file_ = nullptr;
    other.remaining_ = 0;
  }
  return *this;
}

SpillFile::Reader::~Reader() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<size_t> SpillFile::Reader::Read(void* buf, size_t cap) {
  if (remaining_ == 0) return size_t{0};
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(cap, remaining_));
  if (want == 0) return size_t{0};
  const FailpointAction fp = owner_->EvalFailpointWithRetry("spill.read");
  if (fp == FailpointAction::kUnavailable) {
    return Status::Unavailable("read failed after retries: spill file " +
                               path_);
  }
  if (fp == FailpointAction::kIOError) {
    return Status::IOError("read error (injected) on spill file " + path_);
  }
  size_t got = std::fread(buf, 1, want, file_);
  if (fp == FailpointAction::kShortRead) got /= 2;  // torn sequential read
  if (got != want) {
    // The segment promised more bytes than the file delivered: either an
    // IO error or somebody truncated the file. Both corrupt the partition.
    if (std::ferror(file_)) {
      return Status::IOError("read error on spill file " + path_ + ": " +
                             ErrnoMessage());
    }
    return Status::IOError("truncated spill file " + path_ + ": expected " +
                           std::to_string(want) + " more bytes, got " +
                           std::to_string(got));
  }
  remaining_ -= got;
  return got;
}

}  // namespace densest
