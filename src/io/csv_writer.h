// Copyright 2026 The densest Authors.
// Tiny CSV emitter used by the benchmark harness to persist table/figure
// series alongside the human-readable console output.

#ifndef DENSEST_IO_CSV_WRITER_H_
#define DENSEST_IO_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace densest {

/// \brief Appends rows to a CSV file. Values containing commas/quotes are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates) and emits the header row.
  static StatusOr<CsvWriter> Open(const std::string& path,
                                  const std::vector<std::string>& header);

  /// Appends one row; the column count should match the header.
  void AddRow(const std::vector<std::string>& values);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string Num(double v);

 private:
  explicit CsvWriter(std::ofstream out) : out_(std::move(out)) {}
  void WriteRow(const std::vector<std::string>& values);

  std::ofstream out_;
};

}  // namespace densest

#endif  // DENSEST_IO_CSV_WRITER_H_
