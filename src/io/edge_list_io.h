// Copyright 2026 The densest Authors.
// Text edge-list IO (SNAP-compatible "u v [w]" lines).

#ifndef DENSEST_IO_EDGE_LIST_IO_H_
#define DENSEST_IO_EDGE_LIST_IO_H_

#include <string>

#include "common/status.h"
#include "graph/edge_list.h"

namespace densest {

/// Reads a whitespace-separated edge list: one "u v" or "u v w" per line;
/// lines starting with '#' or '%' are comments. Node ids must be
/// non-negative integers (not necessarily contiguous; num_nodes becomes
/// max id + 1).
StatusOr<EdgeList> ReadEdgeListText(const std::string& path);

/// Writes "u v" (or "u v w" when weighted=true) lines.
Status WriteEdgeListText(const std::string& path, const EdgeList& edges,
                         bool weighted = false);

}  // namespace densest

#endif  // DENSEST_IO_EDGE_LIST_IO_H_
