// Copyright 2026 The densest Authors.
// Cluster cost model for the MapReduce simulator. The simulator executes
// jobs for real (so results are testable); this model converts the job's
// record/byte counts into the wall-clock a Hadoop cluster of the paper's
// scale (§6.6: 2000 mappers, 2000 reducers) would have spent. Figure 6.7's
// shape — per-pass time decaying to a scheduling-overhead floor as the
// graph shrinks — falls out of records/workers + fixed overhead.

#ifndef DENSEST_MAPREDUCE_COST_MODEL_H_
#define DENSEST_MAPREDUCE_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace densest {

/// \brief Per-record / per-byte costs of one simulated cluster.
struct CostModel {
  /// Simulated map workers ("mappers" in §6.6).
  int num_mappers = 2000;
  /// Simulated reduce workers.
  int num_reducers = 2000;
  /// Seconds to process one record in a map task.
  double map_seconds_per_record = 2e-6;
  /// Seconds per byte the mappers *read from the DFS* (the stream scan
  /// feeding the map tasks). Charged only for stream-backed job inputs;
  /// in-memory survivor passes read cluster RAM and pay nothing here.
  double map_input_seconds_per_byte = 2e-9;
  /// Seconds to process one record in a reduce task.
  double reduce_seconds_per_record = 2e-6;
  /// Seconds per shuffled byte (network + sort).
  double shuffle_seconds_per_byte = 4e-9;
  /// Seconds per record entering a map-side combiner (in-memory sort +
  /// partial reduce; cheaper than a full map record).
  double combine_seconds_per_record = 5e-7;
  /// Seconds per byte written to or merge-read back from shuffle spill
  /// (local sequential disk IO on the reduce side).
  double spill_seconds_per_byte = 1e-9;
  /// Fixed per-job overhead: scheduling, task startup, commit (Hadoop jobs
  /// pay tens of seconds regardless of input size).
  double job_overhead_seconds = 75.0;
  /// Stragglers etc.: multiplier on the per-worker critical path.
  double skew_factor = 1.3;
};

/// \brief Execution counters of one simulated job.
struct JobStats {
  uint64_t map_input_records = 0;
  /// Bytes the map phase read from the DFS (stream-backed sources only;
  /// 0 for in-memory inputs). What map_input_seconds_per_byte charges.
  uint64_t map_input_bytes = 0;
  uint64_t map_output_records = 0;
  /// Records fed through a map-side combiner (0 when the job has none);
  /// what the cost model charges combiner time for.
  uint64_t combine_input_records = 0;
  /// Records after map-side combining (== map_output_records when the job
  /// has no combiner). This is what actually crosses the shuffle.
  uint64_t combine_output_records = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t reduce_input_groups = 0;
  uint64_t reduce_output_records = 0;
  /// Shuffle-spill IO: bytes serialized to temp files when partitions
  /// exceed the memory budget, and bytes merge-read back at reduce time.
  uint64_t spill_bytes_written = 0;
  uint64_t spill_bytes_read = 0;
  /// Sorted runs spilled across all partitions.
  uint64_t spill_runs = 0;
  /// Transient IO faults retried during the job (input source reads plus
  /// spill IO), and how many operations healed after retrying. Nonzero
  /// counters on a successful job mean it limped through transient faults.
  uint64_t io_retries = 0;
  uint64_t io_retries_healed = 0;
  /// Wall-clock the modeled cluster would have spent on this job.
  double simulated_seconds = 0;

  /// Accumulates counters (and time) of another job.
  void Accumulate(const JobStats& other);

  std::string ToString() const;
};

/// Computes the simulated wall-clock of a job with the given counters:
/// overhead + skew * (map time + shuffle time + reduce time), where each
/// phase is divided across its workers.
double SimulateJobSeconds(const CostModel& model, const JobStats& stats);

}  // namespace densest

#endif  // DENSEST_MAPREDUCE_COST_MODEL_H_
