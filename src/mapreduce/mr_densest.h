// Copyright 2026 The densest Authors.
// Full MapReduce realizations of Algorithm 1 (undirected) and Algorithm 3
// (directed): the drivers orchestrate the §5.2 jobs pass by pass, exactly
// mirroring the streaming algorithms' decisions, and collect the simulated
// per-pass cluster time (Figure 6.7).

#ifndef DENSEST_MAPREDUCE_MR_DENSEST_H_
#define DENSEST_MAPREDUCE_MR_DENSEST_H_

#include <vector>

#include "common/status.h"
#include "core/density.h"
#include "graph/edge_list.h"
#include "mapreduce/graph_jobs.h"
#include "mapreduce/job.h"

namespace densest {

/// \brief Knobs for the undirected MapReduce driver.
struct MrDensestOptions {
  double epsilon = 1.0;
  uint64_t max_passes = 1000;
  bool record_trace = true;
};

/// \brief Result plus cluster accounting.
struct MrDensestResult {
  UndirectedDensestResult result;
  /// Simulated cluster seconds per pass (sums the pass's jobs) —
  /// the series of Figure 6.7.
  std::vector<double> pass_seconds;
  /// Aggregate counters over all jobs.
  JobStats totals;
};

/// Runs the MapReduce version of Algorithm 1 on an undirected edge list.
/// Produces exactly the same subgraph as RunAlgorithm1 with the same
/// epsilon (the drivers make identical decisions); only the execution
/// substrate differs. Unweighted edges only (weights are ignored).
StatusOr<MrDensestResult> RunMrDensestUndirected(MapReduceEnv& env,
                                                 const EdgeList& graph,
                                                 const MrDensestOptions& options);

/// \brief Knobs for the directed MapReduce driver (one ratio c).
struct MrDirectedOptions {
  double c = 1.0;
  double epsilon = 1.0;
  uint64_t max_passes = 1000;
  bool record_trace = true;
};

/// \brief Directed result plus cluster accounting.
struct MrDirectedResult {
  DirectedDensestResult result;
  std::vector<double> pass_seconds;
  JobStats totals;
};

/// Runs the MapReduce version of Algorithm 3 on a directed arc list.
/// Matches RunAlgorithm3 with the same options (size-ratio rule).
StatusOr<MrDirectedResult> RunMrDensestDirected(MapReduceEnv& env,
                                                const EdgeList& arcs,
                                                const MrDirectedOptions& options);

}  // namespace densest

#endif  // DENSEST_MAPREDUCE_MR_DENSEST_H_
