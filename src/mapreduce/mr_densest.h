// Copyright 2026 The densest Authors.
// Full MapReduce realizations of Algorithm 1 (undirected) and Algorithm 3
// (directed): the drivers orchestrate the §5.2 jobs pass by pass, exactly
// mirroring the streaming algorithms' decisions, and collect the simulated
// per-pass cluster time (Figure 6.7).
//
// The drivers read EdgeStreams: the first pass's jobs each scan the input
// through a StreamRecordSource (binary file, generator, or in-memory
// stream — the same inputs the streaming engines run on, counted by the
// same PassCursor accounting), and the removal job's in-memory survivor
// set feeds every later pass (§6.3: the graph shrinks by orders of
// magnitude in the first passes). Shuffle memory inside each job is
// bounded by the spill budget, not by |E|.

#ifndef DENSEST_MAPREDUCE_MR_DENSEST_H_
#define DENSEST_MAPREDUCE_MR_DENSEST_H_

#include <vector>

#include "common/status.h"
#include "core/density.h"
#include "graph/edge_list.h"
#include "mapreduce/graph_jobs.h"
#include "mapreduce/job.h"
#include "stream/edge_stream.h"

namespace densest {

/// \brief Knobs for the undirected MapReduce driver.
struct MrDensestOptions {
  double epsilon = 1.0;
  uint64_t max_passes = 1000;
  bool record_trace = true;
  /// Shuffle spill budget per job in bytes (see
  /// JobOptions::spill_budget_bytes). 0 keeps every shuffle in memory.
  uint64_t spill_budget_bytes = 0;
  /// Directory for spill files ("" = the system temp directory).
  std::string spill_dir;
};

/// \brief Result plus cluster accounting.
struct [[nodiscard]] MrDensestResult {
  UndirectedDensestResult result;
  /// Simulated cluster seconds per pass (sums the pass's jobs) —
  /// the series of Figure 6.7.
  std::vector<double> pass_seconds;
  /// Aggregated job counters per pass (parallel to pass_seconds); the
  /// combiner/spill gates read these.
  std::vector<JobStats> pass_stats;
  /// Aggregate counters over all jobs.
  JobStats totals;
  /// Physical scans of the input stream (each first-pass job re-scans it;
  /// once the removal job has materialized the survivors, later passes run
  /// in memory and scan nothing).
  uint64_t input_scans = 0;
};

/// Runs the MapReduce version of Algorithm 1 over an edge stream.
/// Produces exactly the same subgraph as RunAlgorithm1 with the same
/// epsilon (the drivers make identical decisions); only the execution
/// substrate differs. Unweighted edges only (weights are ignored).
StatusOr<MrDensestResult> RunMrDensestUndirected(MapReduceEnv& env,
                                                 EdgeStream& stream,
                                                 const MrDensestOptions& options);

/// Convenience overload over an in-memory edge list.
StatusOr<MrDensestResult> RunMrDensestUndirected(MapReduceEnv& env,
                                                 const EdgeList& graph,
                                                 const MrDensestOptions& options);

/// \brief Knobs for the directed MapReduce driver (one ratio c).
struct MrDirectedOptions {
  double c = 1.0;
  double epsilon = 1.0;
  uint64_t max_passes = 1000;
  bool record_trace = true;
  /// See MrDensestOptions.
  uint64_t spill_budget_bytes = 0;
  std::string spill_dir;
};

/// \brief Directed result plus cluster accounting.
struct [[nodiscard]] MrDirectedResult {
  DirectedDensestResult result;
  std::vector<double> pass_seconds;
  std::vector<JobStats> pass_stats;
  JobStats totals;
  uint64_t input_scans = 0;
};

/// Runs the MapReduce version of Algorithm 3 over an arc stream.
/// Matches RunAlgorithm3 with the same options (size-ratio rule).
StatusOr<MrDirectedResult> RunMrDensestDirected(MapReduceEnv& env,
                                                EdgeStream& stream,
                                                const MrDirectedOptions& options);

/// Convenience overload over an in-memory arc list.
StatusOr<MrDirectedResult> RunMrDensestDirected(MapReduceEnv& env,
                                                const EdgeList& arcs,
                                                const MrDirectedOptions& options);

}  // namespace densest

#endif  // DENSEST_MAPREDUCE_MR_DENSEST_H_
