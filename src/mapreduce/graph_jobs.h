// Copyright 2026 The densest Authors.
// The paper's §5.2 graph primitives as MapReduce jobs over a distributed
// edge list: density, per-node degrees, and the two-pass removal of marked
// nodes and their incident edges.

#ifndef DENSEST_MAPREDUCE_GRAPH_JOBS_H_
#define DENSEST_MAPREDUCE_GRAPH_JOBS_H_

#include <vector>

#include "graph/subgraph.h"
#include "graph/types.h"
#include "mapreduce/job.h"

namespace densest {

/// A distributed edge list: one record per edge (key = first endpoint,
/// value = second endpoint). Undirected edges appear once, in arbitrary
/// orientation; arcs are (source; target).
using MrEdges = std::vector<KV<NodeId, NodeId>>;

/// Converts an in-memory edge vector into the MR representation.
MrEdges ToMrEdges(const std::vector<Edge>& edges);

/// §5.2 degree job: map (u;v) -> (u;v), (v;u); reduce counts neighbors.
/// Output: one (u; deg) record per node with at least one incident edge.
std::vector<KV<NodeId, EdgeId>> MrDegreeJob(MapReduceEnv& env,
                                            const MrEdges& edges,
                                            JobStats* stats = nullptr);

/// Combiner-optimized degree job: maps to (u;1), (v;1) partial counts and
/// sums them map-side before the shuffle (the classic Hadoop word-count
/// optimization). Identical output to MrDegreeJob with far fewer shuffled
/// records on graphs with heavy nodes.
std::vector<KV<NodeId, EdgeId>> MrDegreeJobCombined(
    MapReduceEnv& env, const MrEdges& edges, JobStats* stats = nullptr);

/// Directed degree job: one pass computing both |E(i, T)| out-degrees and
/// |E(S, j)| in-degrees. Keys encode (node, side): key = 2*node + side,
/// side 0 = out, side 1 = in.
std::vector<KV<uint64_t, EdgeId>> MrDirectedDegreeJob(
    MapReduceEnv& env, const MrEdges& arcs, JobStats* stats = nullptr);

/// §5.2 density job: a trivial aggregation counting the edges (the node
/// count is driver state). Runs as a real job so the cost model charges
/// the pass for it.
EdgeId MrCountEdgesJob(MapReduceEnv& env, const MrEdges& edges,
                       JobStats* stats = nullptr);

/// §5.2 node-removal: two jobs. Pass 1 pivots on the first endpoint (map
/// emits the edge keyed by u plus a (v;$) marker per removed node v;
/// a reducer whose values contain $ drops its edges). Pass 2 pivots on the
/// second endpoint. Returns the surviving edges; orientation is restored.
/// `marked` flags the nodes being removed.
MrEdges MrRemoveNodesJob(MapReduceEnv& env, const MrEdges& edges,
                         const NodeSet& marked, JobStats* pass1_stats = nullptr,
                         JobStats* pass2_stats = nullptr);

/// One-sided removal for the directed algorithm: drops arcs whose
/// *source* (if `by_source`) or *target* endpoint is marked. Single job.
MrEdges MrRemoveArcsJob(MapReduceEnv& env, const MrEdges& arcs,
                        const NodeSet& marked, bool by_source,
                        JobStats* stats = nullptr);

}  // namespace densest

#endif  // DENSEST_MAPREDUCE_GRAPH_JOBS_H_
