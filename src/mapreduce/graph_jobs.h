// Copyright 2026 The densest Authors.
// The paper's §5.2 graph primitives as MapReduce jobs over a distributed
// edge list: density, per-node degrees, and the two-pass removal of marked
// nodes and their incident edges.
//
// Every job has two forms: the primary one reads a RecordSource (so a job
// can scan a disk- or generator-backed EdgeStream without materializing
// it) and takes JobOptions for the shuffle spill budget; the vector form
// wraps the input in a VectorRecordSource and keeps the original
// infallible signatures for in-memory callers.

#ifndef DENSEST_MAPREDUCE_GRAPH_JOBS_H_
#define DENSEST_MAPREDUCE_GRAPH_JOBS_H_

#include <vector>

#include "graph/subgraph.h"
#include "graph/types.h"
#include "mapreduce/job.h"

namespace densest {

/// A distributed edge list: one record per edge (key = first endpoint,
/// value = second endpoint). Undirected edges appear once, in arbitrary
/// orientation; arcs are (source; target).
using MrEdges = std::vector<KV<NodeId, NodeId>>;

/// A RecordSource of such records (e.g. a StreamRecordSource over any
/// EdgeStream, or a VectorRecordSource over MrEdges).
using MrEdgeSource = RecordSource<NodeId, NodeId>;

/// Converts an in-memory edge vector into the MR representation.
MrEdges ToMrEdges(const std::vector<Edge>& edges);

/// §5.2 degree job: map (u;v) -> (u;v), (v;u); reduce counts neighbors.
/// Output: one (u; deg) record per node with at least one incident edge.
std::vector<KV<NodeId, EdgeId>> MrDegreeJob(MapReduceEnv& env,
                                            const MrEdges& edges,
                                            JobStats* stats = nullptr);

/// Combiner-optimized degree job: maps to (u;1), (v;1) partial counts and
/// sums them map-side before the shuffle (the classic Hadoop word-count
/// optimization). Identical output to MrDegreeJob with the shuffle shrunk
/// from O(|E|) records to O(|V_alive|) per map chunk.
StatusOr<std::vector<KV<NodeId, EdgeId>>> MrDegreeJobCombined(
    MapReduceEnv& env, MrEdgeSource& edges, const JobOptions& options,
    JobStats* stats = nullptr);
std::vector<KV<NodeId, EdgeId>> MrDegreeJobCombined(
    MapReduceEnv& env, const MrEdges& edges, JobStats* stats = nullptr);

/// Directed degree job: one pass computing both |E(i, T)| out-degrees and
/// |E(S, j)| in-degrees. Keys encode (node, side): key = 2*node + side,
/// side 0 = out, side 1 = in.
std::vector<KV<uint64_t, EdgeId>> MrDirectedDegreeJob(
    MapReduceEnv& env, const MrEdges& arcs, JobStats* stats = nullptr);

/// Combiner-optimized directed degree job (partial counts summed map-side;
/// same output as MrDirectedDegreeJob).
StatusOr<std::vector<KV<uint64_t, EdgeId>>> MrDirectedDegreeJobCombined(
    MapReduceEnv& env, MrEdgeSource& arcs, const JobOptions& options,
    JobStats* stats = nullptr);

/// §5.2 density job: a trivial aggregation counting the edges (the node
/// count is driver state). Runs as a real job so the cost model charges
/// the pass for it; a map-side combiner collapses each chunk's count to a
/// single shuffled record.
StatusOr<EdgeId> MrCountEdgesJob(MapReduceEnv& env, MrEdgeSource& edges,
                                 const JobOptions& options,
                                 JobStats* stats = nullptr);
EdgeId MrCountEdgesJob(MapReduceEnv& env, const MrEdges& edges,
                       JobStats* stats = nullptr);

/// §5.2 node-removal: two jobs. Pass 1 pivots on the first endpoint (the
/// map keys each edge by u and adds a (v;$) marker per removed node v; a
/// reducer whose values contain $ drops its edges). Pass 2 pivots on the
/// second endpoint. Returns the surviving edges; orientation is restored.
/// `marked` flags the nodes being removed. Pass 1 scans `edges` (one
/// physical scan when stream-backed); pass 2 runs over pass 1's in-memory
/// survivors.
StatusOr<MrEdges> MrRemoveNodesJob(MapReduceEnv& env, MrEdgeSource& edges,
                                   const NodeSet& marked,
                                   const JobOptions& options,
                                   JobStats* pass1_stats = nullptr,
                                   JobStats* pass2_stats = nullptr);
MrEdges MrRemoveNodesJob(MapReduceEnv& env, const MrEdges& edges,
                         const NodeSet& marked, JobStats* pass1_stats = nullptr,
                         JobStats* pass2_stats = nullptr);

/// One-sided removal for the directed algorithm: drops arcs whose
/// *source* (if `by_source`) or *target* endpoint is marked. Single job.
StatusOr<MrEdges> MrRemoveArcsJob(MapReduceEnv& env, MrEdgeSource& arcs,
                                  const NodeSet& marked, bool by_source,
                                  const JobOptions& options,
                                  JobStats* stats = nullptr);
MrEdges MrRemoveArcsJob(MapReduceEnv& env, const MrEdges& arcs,
                        const NodeSet& marked, bool by_source,
                        JobStats* stats = nullptr);

}  // namespace densest

#endif  // DENSEST_MAPREDUCE_GRAPH_JOBS_H_
