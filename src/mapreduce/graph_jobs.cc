#include "mapreduce/graph_jobs.h"

namespace densest {

MrEdges ToMrEdges(const std::vector<Edge>& edges) {
  MrEdges out;
  out.reserve(edges.size());
  for (const Edge& e : edges) {
    out.push_back(KV<NodeId, NodeId>{e.u, e.v});
  }
  return out;
}

std::vector<KV<NodeId, EdgeId>> MrDegreeJob(MapReduceEnv& env,
                                            const MrEdges& edges,
                                            JobStats* stats) {
  // §5.2: duplicate each edge (u,v) as <u;v> and <v;u>; the reducer for u
  // then sees all of u's neighbors and counts them.
  return RunJob<NodeId, NodeId, NodeId, EdgeId>(
      env, edges,
      [](const NodeId& u, const NodeId& v, Emitter<NodeId, NodeId>& emit) {
        emit.Emit(u, v);
        emit.Emit(v, u);
      },
      [](const NodeId& u, const std::vector<NodeId>& neighbors,
         Emitter<NodeId, EdgeId>& emit) {
        emit.Emit(u, static_cast<EdgeId>(neighbors.size()));
      },
      stats);
}

std::vector<KV<NodeId, EdgeId>> MrDegreeJobCombined(MapReduceEnv& env,
                                                    const MrEdges& edges,
                                                    JobStats* stats) {
  auto sum = [](const NodeId& u, const std::vector<EdgeId>& partials,
                Emitter<NodeId, EdgeId>& emit) {
    EdgeId total = 0;
    for (EdgeId x : partials) total += x;
    emit.Emit(u, total);
  };
  return RunJobWithCombiner<NodeId, EdgeId, NodeId, EdgeId>(
      env, edges,
      [](const NodeId& u, const NodeId& v, Emitter<NodeId, EdgeId>& emit) {
        emit.Emit(u, 1);
        emit.Emit(v, 1);
      },
      sum, sum, stats);
}

std::vector<KV<uint64_t, EdgeId>> MrDirectedDegreeJob(MapReduceEnv& env,
                                                      const MrEdges& arcs,
                                                      JobStats* stats) {
  return RunJob<uint64_t, NodeId, uint64_t, EdgeId>(
      env, arcs,
      [](const NodeId& u, const NodeId& v, Emitter<uint64_t, NodeId>& emit) {
        emit.Emit(2 * static_cast<uint64_t>(u), v);      // out-degree slot
        emit.Emit(2 * static_cast<uint64_t>(v) + 1, u);  // in-degree slot
      },
      [](const uint64_t& key, const std::vector<NodeId>& endpoints,
         Emitter<uint64_t, EdgeId>& emit) {
        emit.Emit(key, static_cast<EdgeId>(endpoints.size()));
      },
      stats);
}

EdgeId MrCountEdgesJob(MapReduceEnv& env, const MrEdges& edges,
                       JobStats* stats) {
  std::vector<KV<NodeId, EdgeId>> totals =
      RunJob<NodeId, EdgeId, NodeId, EdgeId>(
          env, edges,
          [](const NodeId&, const NodeId&, Emitter<NodeId, EdgeId>& emit) {
            emit.Emit(0, 1);
          },
          [](const NodeId& key, const std::vector<EdgeId>& ones,
             Emitter<NodeId, EdgeId>& emit) {
            EdgeId total = 0;
            for (EdgeId x : ones) total += x;
            emit.Emit(key, total);
          },
          stats);
  return totals.empty() ? 0 : totals.front().value;
}

namespace {

/// Shared reducer of the removal passes: a key whose values contain the $
/// marker (kInvalidNode) emits nothing; otherwise edges survive. `flip`
/// restores the original orientation when pivoting on the second endpoint.
void RemovalReduce(const NodeId& key, const std::vector<NodeId>& values,
                   Emitter<NodeId, NodeId>& emit, bool flip) {
  for (NodeId v : values) {
    if (v == kInvalidNode) return;  // marked: drop all incident edges
  }
  for (NodeId v : values) {
    if (flip) {
      emit.Emit(v, key);
    } else {
      emit.Emit(key, v);
    }
  }
}

/// Appends one <v;$> marker record per marked node.
void AppendMarkers(const NodeSet& marked, MrEdges& input) {
  for (NodeId u = 0; u < marked.universe_size(); ++u) {
    if (marked.Contains(u)) {
      input.push_back(KV<NodeId, NodeId>{u, kInvalidNode});
    }
  }
}

}  // namespace

MrEdges MrRemoveNodesJob(MapReduceEnv& env, const MrEdges& edges,
                         const NodeSet& marked, JobStats* pass1_stats,
                         JobStats* pass2_stats) {
  // Pass 1: pivot on the first endpoint.
  MrEdges input1 = edges;
  AppendMarkers(marked, input1);
  MrEdges survivors1 = RunJob<NodeId, NodeId, NodeId, NodeId>(
      env, input1,
      [](const NodeId& k, const NodeId& v, Emitter<NodeId, NodeId>& emit) {
        emit.Emit(k, v);
      },
      [](const NodeId& k, const std::vector<NodeId>& values,
         Emitter<NodeId, NodeId>& emit) {
        RemovalReduce(k, values, emit, /*flip=*/false);
      },
      pass1_stats);

  // Pass 2: pivot on the second endpoint; emit flipped back.
  MrEdges input2;
  input2.reserve(survivors1.size() + marked.size());
  for (const auto& kv : survivors1) {
    input2.push_back(KV<NodeId, NodeId>{kv.value, kv.key});
  }
  AppendMarkers(marked, input2);
  return RunJob<NodeId, NodeId, NodeId, NodeId>(
      env, input2,
      [](const NodeId& k, const NodeId& v, Emitter<NodeId, NodeId>& emit) {
        emit.Emit(k, v);
      },
      [](const NodeId& k, const std::vector<NodeId>& values,
         Emitter<NodeId, NodeId>& emit) {
        RemovalReduce(k, values, emit, /*flip=*/true);
      },
      pass2_stats);
}

MrEdges MrRemoveArcsJob(MapReduceEnv& env, const MrEdges& arcs,
                        const NodeSet& marked, bool by_source,
                        JobStats* stats) {
  MrEdges input;
  input.reserve(arcs.size() + marked.size());
  for (const auto& kv : arcs) {
    if (by_source) {
      input.push_back(kv);
    } else {
      input.push_back(KV<NodeId, NodeId>{kv.value, kv.key});
    }
  }
  AppendMarkers(marked, input);
  return RunJob<NodeId, NodeId, NodeId, NodeId>(
      env, input,
      [](const NodeId& k, const NodeId& v, Emitter<NodeId, NodeId>& emit) {
        emit.Emit(k, v);
      },
      [by_source](const NodeId& k, const std::vector<NodeId>& values,
                  Emitter<NodeId, NodeId>& emit) {
        RemovalReduce(k, values, emit, /*flip=*/!by_source);
      },
      stats);
}

}  // namespace densest
