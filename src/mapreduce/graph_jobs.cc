#include "mapreduce/graph_jobs.h"

namespace densest {

namespace {

/// Sum-combiner/reducer of the degree-count jobs (associative and
/// commutative, so it is safe on both sides of the shuffle).
template <typename K>
void SumCounts(const K& key, const std::vector<EdgeId>& partials,
               Emitter<K, EdgeId>& emit) {
  EdgeId total = 0;
  for (EdgeId x : partials) total += x;
  emit.Emit(key, total);
}

/// Shared reducer of the removal passes: a key whose values contain the $
/// marker (kInvalidNode) emits nothing; otherwise edges survive. `flip`
/// restores the original orientation when pivoting on the second endpoint.
void RemovalReduce(const NodeId& key, const std::vector<NodeId>& values,
                   Emitter<NodeId, NodeId>& emit, bool flip) {
  for (NodeId v : values) {
    if (v == kInvalidNode) return;  // marked: drop all incident edges
  }
  for (NodeId v : values) {
    if (flip) {
      emit.Emit(v, key);
    } else {
      emit.Emit(key, v);
    }
  }
}

/// One <v;$> marker record per marked node.
MrEdges MakeMarkers(const NodeSet& marked) {
  MrEdges markers;
  markers.reserve(marked.size());
  for (NodeId u = 0; u < marked.universe_size(); ++u) {
    if (marked.Contains(u)) {
      markers.push_back(KV<NodeId, NodeId>{u, kInvalidNode});
    }
  }
  return markers;
}

}  // namespace

MrEdges ToMrEdges(const std::vector<Edge>& edges) {
  MrEdges out;
  out.reserve(edges.size());
  for (const Edge& e : edges) {
    out.push_back(KV<NodeId, NodeId>{e.u, e.v});
  }
  return out;
}

std::vector<KV<NodeId, EdgeId>> MrDegreeJob(MapReduceEnv& env,
                                            const MrEdges& edges,
                                            JobStats* stats) {
  // §5.2: duplicate each edge (u,v) as <u;v> and <v;u>; the reducer for u
  // then sees all of u's neighbors and counts them.
  return RunJob<NodeId, NodeId, NodeId, EdgeId>(
      env, edges,
      [](const NodeId& u, const NodeId& v, Emitter<NodeId, NodeId>& emit) {
        emit.Emit(u, v);
        emit.Emit(v, u);
      },
      [](const NodeId& u, const std::vector<NodeId>& neighbors,
         Emitter<NodeId, EdgeId>& emit) {
        emit.Emit(u, static_cast<EdgeId>(neighbors.size()));
      },
      stats);
}

StatusOr<std::vector<KV<NodeId, EdgeId>>> MrDegreeJobCombined(
    MapReduceEnv& env, MrEdgeSource& edges, const JobOptions& options,
    JobStats* stats) {
  JobOptions opts = options;
  opts.map_fanout_hint = 2.0;  // two partial counts per edge
  return RunJobOnSource<NodeId, EdgeId, NodeId, EdgeId>(
      env, edges, opts,
      [](const NodeId& u, const NodeId& v, Emitter<NodeId, EdgeId>& emit) {
        emit.Emit(u, 1);
        emit.Emit(v, 1);
      },
      SumCounts<NodeId>, SumCounts<NodeId>, stats);
}

std::vector<KV<NodeId, EdgeId>> MrDegreeJobCombined(MapReduceEnv& env,
                                                    const MrEdges& edges,
                                                    JobStats* stats) {
  VectorRecordSource<NodeId, NodeId> source(edges);
  return std::move(*MrDegreeJobCombined(env, source, JobOptions{}, stats));
}

std::vector<KV<uint64_t, EdgeId>> MrDirectedDegreeJob(MapReduceEnv& env,
                                                      const MrEdges& arcs,
                                                      JobStats* stats) {
  return RunJob<uint64_t, NodeId, uint64_t, EdgeId>(
      env, arcs,
      [](const NodeId& u, const NodeId& v, Emitter<uint64_t, NodeId>& emit) {
        emit.Emit(2 * static_cast<uint64_t>(u), v);      // out-degree slot
        emit.Emit(2 * static_cast<uint64_t>(v) + 1, u);  // in-degree slot
      },
      [](const uint64_t& key, const std::vector<NodeId>& endpoints,
         Emitter<uint64_t, EdgeId>& emit) {
        emit.Emit(key, static_cast<EdgeId>(endpoints.size()));
      },
      stats);
}

StatusOr<std::vector<KV<uint64_t, EdgeId>>> MrDirectedDegreeJobCombined(
    MapReduceEnv& env, MrEdgeSource& arcs, const JobOptions& options,
    JobStats* stats) {
  JobOptions opts = options;
  opts.map_fanout_hint = 2.0;
  return RunJobOnSource<uint64_t, EdgeId, uint64_t, EdgeId>(
      env, arcs, opts,
      [](const NodeId& u, const NodeId& v, Emitter<uint64_t, EdgeId>& emit) {
        emit.Emit(2 * static_cast<uint64_t>(u), 1);      // out-degree slot
        emit.Emit(2 * static_cast<uint64_t>(v) + 1, 1);  // in-degree slot
      },
      SumCounts<uint64_t>, SumCounts<uint64_t>, stats);
}

StatusOr<EdgeId> MrCountEdgesJob(MapReduceEnv& env, MrEdgeSource& edges,
                                 const JobOptions& options, JobStats* stats) {
  StatusOr<std::vector<KV<NodeId, EdgeId>>> totals =
      RunJobOnSource<NodeId, EdgeId, NodeId, EdgeId>(
          env, edges, options,
          [](const NodeId&, const NodeId&, Emitter<NodeId, EdgeId>& emit) {
            emit.Emit(0, 1);
          },
          SumCounts<NodeId>, SumCounts<NodeId>, stats);
  if (!totals.ok()) return totals.status();
  return totals->empty() ? EdgeId{0} : totals->front().value;
}

EdgeId MrCountEdgesJob(MapReduceEnv& env, const MrEdges& edges,
                       JobStats* stats) {
  VectorRecordSource<NodeId, NodeId> source(edges);
  return *MrCountEdgesJob(env, source, JobOptions{}, stats);
}

StatusOr<MrEdges> MrRemoveNodesJob(MapReduceEnv& env, MrEdgeSource& edges,
                                   const NodeSet& marked,
                                   const JobOptions& options,
                                   JobStats* pass1_stats,
                                   JobStats* pass2_stats) {
  MrEdges markers = MakeMarkers(marked);
  VectorRecordSource<NodeId, NodeId> marker_source(markers);

  // Pass 1: pivot on the first endpoint (markers are already keyed by
  // their node, so the map is the identity).
  ChainRecordSource<NodeId, NodeId> input1(edges, marker_source);
  StatusOr<MrEdges> survivors1 = RunJobOnSource<NodeId, NodeId, NodeId, NodeId>(
      env, input1, options,
      [](const NodeId& k, const NodeId& v, Emitter<NodeId, NodeId>& emit) {
        emit.Emit(k, v);
      },
      NoCombiner,
      [](const NodeId& k, const std::vector<NodeId>& values,
         Emitter<NodeId, NodeId>& emit) {
        RemovalReduce(k, values, emit, /*flip=*/false);
      },
      pass1_stats);
  if (!survivors1.ok()) return survivors1.status();

  // Pass 2: pivot on the second endpoint — the map flips each surviving
  // edge (markers stay keyed by their node); the reducer flips back.
  VectorRecordSource<NodeId, NodeId> survivor_source(*survivors1);
  ChainRecordSource<NodeId, NodeId> input2(survivor_source, marker_source);
  return RunJobOnSource<NodeId, NodeId, NodeId, NodeId>(
      env, input2, options,
      [](const NodeId& k, const NodeId& v, Emitter<NodeId, NodeId>& emit) {
        if (v == kInvalidNode) {
          emit.Emit(k, v);
        } else {
          emit.Emit(v, k);
        }
      },
      NoCombiner,
      [](const NodeId& k, const std::vector<NodeId>& values,
         Emitter<NodeId, NodeId>& emit) {
        RemovalReduce(k, values, emit, /*flip=*/true);
      },
      pass2_stats);
}

MrEdges MrRemoveNodesJob(MapReduceEnv& env, const MrEdges& edges,
                         const NodeSet& marked, JobStats* pass1_stats,
                         JobStats* pass2_stats) {
  VectorRecordSource<NodeId, NodeId> source(edges);
  return std::move(*MrRemoveNodesJob(env, source, marked, JobOptions{},
                                     pass1_stats, pass2_stats));
}

StatusOr<MrEdges> MrRemoveArcsJob(MapReduceEnv& env, MrEdgeSource& arcs,
                                  const NodeSet& marked, bool by_source,
                                  const JobOptions& options,
                                  JobStats* stats) {
  MrEdges markers = MakeMarkers(marked);
  VectorRecordSource<NodeId, NodeId> marker_source(markers);
  ChainRecordSource<NodeId, NodeId> input(arcs, marker_source);
  return RunJobOnSource<NodeId, NodeId, NodeId, NodeId>(
      env, input, options,
      [by_source](const NodeId& k, const NodeId& v,
                  Emitter<NodeId, NodeId>& emit) {
        if (by_source || v == kInvalidNode) {
          emit.Emit(k, v);
        } else {
          emit.Emit(v, k);  // pivot on the target endpoint
        }
      },
      NoCombiner,
      [by_source](const NodeId& k, const std::vector<NodeId>& values,
                  Emitter<NodeId, NodeId>& emit) {
        RemovalReduce(k, values, emit, /*flip=*/!by_source);
      },
      stats);
}

MrEdges MrRemoveArcsJob(MapReduceEnv& env, const MrEdges& arcs,
                        const NodeSet& marked, bool by_source,
                        JobStats* stats) {
  VectorRecordSource<NodeId, NodeId> source(arcs);
  return std::move(
      *MrRemoveArcsJob(env, source, marked, by_source, JobOptions{}, stats));
}

}  // namespace densest
