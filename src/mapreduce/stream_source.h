// Copyright 2026 The densest Authors.
// Bridges the streaming substrate into the MapReduce engine: a
// StreamRecordSource chunks any EdgeStream — binary file, Gnp/circulant
// generator, in-memory edge list — into map-task input records through a
// PassCursor, so every MR job over it is one physical scan counted by the
// same accounting the fused streaming engines use.

#ifndef DENSEST_MAPREDUCE_STREAM_SOURCE_H_
#define DENSEST_MAPREDUCE_STREAM_SOURCE_H_

#include <vector>

#include "graph/types.h"
#include "mapreduce/job.h"
#include "stream/pass_cursor.h"

namespace densest {

/// \brief RecordSource over an EdgeStream: each Reset() begins one physical
/// pass on the shared cursor; FillChunk converts the cursor's edge views
/// into (first endpoint; second endpoint) records. Weights are dropped —
/// the §5.2 MR jobs are unweighted. The cursor must outlive the source.
class StreamRecordSource : public RecordSource<NodeId, NodeId> {
 public:
  explicit StreamRecordSource(PassCursor& cursor) : cursor_(&cursor) {}

  /// Wire size of one §5.2 edge record on the modeled DFS — the packed
  /// (u:u32, v:u32) record of the binary edge-file format. Every stream
  /// type is charged this uniformly, so the modeled scan IO is a pure
  /// function of the record count, not of which backend happened to serve
  /// the scan.
  static constexpr uint64_t kDfsRecordBytes = 2 * sizeof(NodeId);

  void Reset() override { cursor_->BeginPass(); }
  size_t FillChunk(KV<NodeId, NodeId>* buf, size_t cap) override;
  uint64_t SizeHint() const override { return cursor_->stream().SizeHint(); }
  /// Forwards the stream's sticky IO health; the engine aborts the job on
  /// a truncated scan instead of reducing over partial data.
  Status status() const override { return cursor_->stream().status(); }
  /// kDfsRecordBytes per record delivered, across all scans.
  uint64_t bytes_scanned() const override { return bytes_scanned_; }
  /// Forwards the stream's retry-loop outcomes (transient faults healed
  /// by the prefetch retry loop show up in JobStats::io_retries).
  IoRetryStats io_retry_stats() const override {
    return cursor_->stream().io_retry_stats();
  }

 private:
  PassCursor* cursor_;
  std::vector<Edge> scratch_;
  uint64_t bytes_scanned_ = 0;
};

}  // namespace densest

#endif  // DENSEST_MAPREDUCE_STREAM_SOURCE_H_
