// Copyright 2026 The densest Authors.
// A typed, in-process MapReduce engine. Jobs execute for real (multi-
// threaded map and reduce with a hash-partitioned, sorted shuffle), so
// algorithm results are testable; the cluster the paper used is modeled by
// CostModel, which converts the observed record/byte counts into simulated
// wall-clock.
//
// Determinism: map tasks keep per-chunk output buffers merged in chunk
// order, and each reduce partition stable-sorts by key, so a job's output
// is a pure function of its input.

#ifndef DENSEST_MAPREDUCE_JOB_H_
#define DENSEST_MAPREDUCE_JOB_H_

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/random.h"
#include "mapreduce/cost_model.h"
#include "common/thread_pool.h"

namespace densest {

/// \brief One key-value record.
template <typename K, typename V>
struct KV {
  K key;
  V value;
};

/// \brief Collects the records a map or reduce function emits.
template <typename K, typename V>
class Emitter {
 public:
  explicit Emitter(std::vector<KV<K, V>>* out) : out_(out) {}
  void Emit(K key, V value) {
    out_->push_back(KV<K, V>{std::move(key), std::move(value)});
  }

 private:
  std::vector<KV<K, V>>* out_;
};

/// \brief Shared execution context: thread pool, cost model, accumulated
/// cluster statistics across all jobs run through it.
class MapReduceEnv {
 public:
  /// `threads` local execution threads (0 = hardware concurrency). The
  /// modeled cluster size lives in `model` and is independent of this.
  explicit MapReduceEnv(const CostModel& model = {}, size_t threads = 0)
      : model_(model), pool_(threads) {}

  const CostModel& cost_model() const { return model_; }
  ThreadPool& pool() { return pool_; }
  /// Counters accumulated over every job run through this env.
  const JobStats& totals() const { return totals_; }
  void AccumulateTotals(const JobStats& s) { totals_.Accumulate(s); }

 private:
  CostModel model_;
  ThreadPool pool_;
  JobStats totals_;
};

/// Runs one MapReduce job, optionally with a Hadoop-style map-side
/// combiner.
///
/// \tparam K2/V2 intermediate key/value (K2 needs operator< and ==;
///         both should be trivially copyable for the byte accounting).
/// \param map_fn     void(const K1&, const V1&, Emitter<K2,V2>&)
/// \param combine_fn type-preserving partial reduction applied per map
///        chunk before the shuffle:
///        void(const K2&, const std::vector<V2>&, Emitter<K2,V2>&).
///        Pass nullptr (NoCombiner) to skip. Must be associative and
///        commutative for the job result to be combiner-invariant.
/// \param reduce_fn  void(const K2&, const std::vector<V2>&, Emitter<K3,V3>&)
/// \param stats_out  optional per-job counters (also accumulated into env).
inline constexpr std::nullptr_t NoCombiner = nullptr;

template <typename K2, typename V2, typename K3, typename V3, typename K1,
          typename V1, typename MapFn, typename CombineFn, typename ReduceFn>
std::vector<KV<K3, V3>> RunJobWithCombiner(
    MapReduceEnv& env, const std::vector<KV<K1, V1>>& input, MapFn&& map_fn,
    CombineFn&& combine_fn, ReduceFn&& reduce_fn,
    JobStats* stats_out = nullptr) {
  JobStats stats;
  stats.map_input_records = input.size();

  // ---- Map phase: chunked across the pool, per-chunk buffers. ----
  const size_t threads = env.pool().num_threads();
  const size_t num_chunks =
      std::max<size_t>(1, std::min(input.size(), threads * 4));
  const size_t chunk_size = (input.size() + num_chunks - 1) / num_chunks;
  std::vector<std::vector<KV<K2, V2>>> map_out(num_chunks);
  std::vector<uint64_t> raw_map_counts(num_chunks, 0);
  env.pool().ParallelFor(num_chunks, [&](size_t c) {
    size_t begin = c * chunk_size;
    size_t end = std::min(input.size(), begin + chunk_size);
    Emitter<K2, V2> emitter(&map_out[c]);
    for (size_t i = begin; i < end; ++i) {
      map_fn(input[i].key, input[i].value, emitter);
    }
    raw_map_counts[c] = map_out[c].size();
    if constexpr (!std::is_same_v<std::decay_t<CombineFn>,
                                  std::nullptr_t>) {
      // Combine chunk-locally: group by key, partially reduce.
      auto& chunk = map_out[c];
      std::stable_sort(chunk.begin(), chunk.end(),
                       [](const KV<K2, V2>& a, const KV<K2, V2>& b) {
                         return a.key < b.key;
                       });
      std::vector<KV<K2, V2>> combined;
      Emitter<K2, V2> combine_emitter(&combined);
      std::vector<V2> values;
      size_t i = 0;
      while (i < chunk.size()) {
        size_t j = i;
        values.clear();
        while (j < chunk.size() && chunk[j].key == chunk[i].key) {
          values.push_back(chunk[j].value);
          ++j;
        }
        combine_fn(chunk[i].key, values, combine_emitter);
        i = j;
      }
      chunk = std::move(combined);
    }
  });

  // ---- Shuffle: hash-partition, preserving chunk order within a key. ----
  const size_t num_partitions = std::max<size_t>(1, threads * 2);
  std::vector<std::vector<KV<K2, V2>>> partitions(num_partitions);
  uint64_t combined_records = 0;
  for (const auto& chunk : map_out) {
    combined_records += chunk.size();
  }
  for (uint64_t c : raw_map_counts) stats.map_output_records += c;
  stats.combine_output_records = combined_records;
  stats.shuffle_bytes = combined_records * (sizeof(K2) + sizeof(V2));
  for (auto& chunk : map_out) {
    for (auto& kv : chunk) {
      size_t p = Mix64(static_cast<uint64_t>(kv.key)) % num_partitions;
      partitions[p].push_back(std::move(kv));
    }
    chunk.clear();
    chunk.shrink_to_fit();
  }

  // ---- Reduce phase: group within each partition, reduce in parallel. ----
  std::vector<std::vector<KV<K3, V3>>> reduce_out(num_partitions);
  std::vector<uint64_t> group_counts(num_partitions, 0);
  env.pool().ParallelFor(num_partitions, [&](size_t p) {
    auto& part = partitions[p];
    std::stable_sort(part.begin(), part.end(),
                     [](const KV<K2, V2>& a, const KV<K2, V2>& b) {
                       return a.key < b.key;
                     });
    Emitter<K3, V3> emitter(&reduce_out[p]);
    std::vector<V2> values;
    size_t i = 0;
    while (i < part.size()) {
      size_t j = i;
      values.clear();
      while (j < part.size() && part[j].key == part[i].key) {
        values.push_back(part[j].value);
        ++j;
      }
      reduce_fn(part[i].key, values, emitter);
      ++group_counts[p];
      i = j;
    }
  });

  std::vector<KV<K3, V3>> output;
  size_t total_out = 0;
  for (const auto& part : reduce_out) total_out += part.size();
  output.reserve(total_out);
  for (auto& part : reduce_out) {
    output.insert(output.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  for (uint64_t c : group_counts) stats.reduce_input_groups += c;
  stats.reduce_output_records = output.size();
  stats.simulated_seconds = SimulateJobSeconds(env.cost_model(), stats);

  env.AccumulateTotals(stats);
  if (stats_out != nullptr) *stats_out = stats;
  return output;
}

/// Combiner-free convenience wrapper (the common case).
template <typename K2, typename V2, typename K3, typename V3, typename K1,
          typename V1, typename MapFn, typename ReduceFn>
std::vector<KV<K3, V3>> RunJob(MapReduceEnv& env,
                               const std::vector<KV<K1, V1>>& input,
                               MapFn&& map_fn, ReduceFn&& reduce_fn,
                               JobStats* stats_out = nullptr) {
  return RunJobWithCombiner<K2, V2, K3, V3>(
      env, input, std::forward<MapFn>(map_fn), NoCombiner,
      std::forward<ReduceFn>(reduce_fn), stats_out);
}

}  // namespace densest

#endif  // DENSEST_MAPREDUCE_JOB_H_
