// Copyright 2026 The densest Authors.
// A typed, in-process MapReduce engine. Jobs execute for real (multi-
// threaded map and reduce with a hash-partitioned, sorted shuffle), so
// algorithm results are testable; the cluster the paper used is modeled by
// CostModel, which converts the observed record/byte counts into simulated
// wall-clock.
//
// Inputs are RecordSources: a job can read an in-memory vector, an
// EdgeStream chunked through a PassCursor (mapreduce/stream_source.h), or
// a concatenation of sources — so the MR drivers run on the same
// out-of-core inputs as the streaming engines. The shuffle spills sorted
// runs to temp files under a byte budget (mapreduce/shuffle.h), keeping
// resident memory bounded by the budget instead of |E|.
//
// Determinism: map chunks have a fixed record count (independent of the
// thread count), their outputs are merged into the shuffle in chunk order,
// and each reduce partition is read in stable-sorted key order whether or
// not it spilled — so a job's output is a pure function of its input for
// any thread count and any spill budget.

#ifndef DENSEST_MAPREDUCE_JOB_H_
#define DENSEST_MAPREDUCE_JOB_H_

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/shuffle.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace densest {

/// \brief One key-value record.
template <typename K, typename V>
struct KV {
  K key;
  V value;
};

/// \brief Collects the records a map or reduce function emits.
template <typename K, typename V>
class Emitter {
 public:
  explicit Emitter(std::vector<KV<K, V>>* out) : out_(out) {}
  void Emit(K key, V value) {
    out_->push_back(KV<K, V>{std::move(key), std::move(value)});
  }
  /// Capacity hint: room for `n` more records without reallocation. The
  /// engine calls this once per task with the cost-model record estimates
  /// so emit loops don't grow the buffer one push_back at a time. (Once,
  /// not per group: an exact-capacity reserve per group would defeat the
  /// vector's geometric growth.)
  void Reserve(size_t n) { out_->reserve(out_->size() + n); }

 private:
  std::vector<KV<K, V>>* out_;
};

/// \brief A rewindable sequence of input records for a MapReduce job.
///
/// Contract (mirrors EdgeStream): after Reset(), successive FillChunk()
/// calls deliver every record exactly once, in a fixed order, then return
/// 0. Sources that can fail (disk-backed streams) report it through a
/// sticky status(), which the engine checks after draining the input —
/// a silently short scan must fail the job, not feed it truncated data.
template <typename K, typename V>
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  /// Rewinds to the first record (a job performs exactly one Reset+drain).
  virtual void Reset() = 0;
  /// Writes up to `cap` records into `buf`; returns how many. 0 only at
  /// end of input.
  virtual size_t FillChunk(KV<K, V>* buf, size_t cap) = 0;
  /// Records per scan if known (0 = unknown); used for capacity hints.
  virtual uint64_t SizeHint() const { return 0; }
  /// Health of the source; see EdgeStream::status().
  virtual Status status() const { return Status::OK(); }
  /// Cumulative bytes this source has read from backing storage (the DFS
  /// of the modeled cluster) since construction. 0 for in-memory sources —
  /// they read cluster RAM, which the cost model charges per record, not
  /// per byte. The engine snapshots this around the map drain and charges
  /// the delta as JobStats::map_input_bytes.
  virtual uint64_t bytes_scanned() const { return 0; }
  /// Cumulative retry-loop outcomes of the source's IO seam (see
  /// common/retry.h); snapshotted around the map drain like bytes_scanned
  /// and surfaced as JobStats::io_retries.
  virtual IoRetryStats io_retry_stats() const { return {}; }
};

/// \brief RecordSource over an in-memory vector (the classic job input).
template <typename K, typename V>
class VectorRecordSource : public RecordSource<K, V> {
 public:
  explicit VectorRecordSource(const std::vector<KV<K, V>>& records)
      : records_(&records) {}
  void Reset() override { pos_ = 0; }
  size_t FillChunk(KV<K, V>* buf, size_t cap) override {
    const size_t take = std::min(cap, records_->size() - pos_);
    std::copy(records_->begin() + pos_, records_->begin() + pos_ + take, buf);
    pos_ += take;
    return take;
  }
  uint64_t SizeHint() const override { return records_->size(); }

 private:
  const std::vector<KV<K, V>>* records_;
  size_t pos_ = 0;
};

/// \brief Concatenation of two RecordSources (first exhausted, then
/// second). The removal jobs chain the edge input with marker records.
template <typename K, typename V>
class ChainRecordSource : public RecordSource<K, V> {
 public:
  ChainRecordSource(RecordSource<K, V>& first, RecordSource<K, V>& second)
      : first_(&first), second_(&second) {}
  void Reset() override {
    first_->Reset();
    second_->Reset();
    on_second_ = false;
  }
  size_t FillChunk(KV<K, V>* buf, size_t cap) override {
    if (!on_second_) {
      const size_t got = first_->FillChunk(buf, cap);
      if (got > 0) return got;
      on_second_ = true;
    }
    return second_->FillChunk(buf, cap);
  }
  uint64_t SizeHint() const override {
    const uint64_t a = first_->SizeHint();
    const uint64_t b = second_->SizeHint();
    return (a == 0 || b == 0) ? 0 : a + b;
  }
  Status status() const override {
    if (Status s = first_->status(); !s.ok()) return s;
    return second_->status();
  }
  uint64_t bytes_scanned() const override {
    return first_->bytes_scanned() + second_->bytes_scanned();
  }
  IoRetryStats io_retry_stats() const override {
    IoRetryStats total = first_->io_retry_stats();
    total.Accumulate(second_->io_retry_stats());
    return total;
  }

 private:
  RecordSource<K, V>* first_;
  RecordSource<K, V>* second_;
  bool on_second_ = false;
};

/// \brief Shared execution context: thread pool, cost model, accumulated
/// cluster statistics across all jobs run through it.
class MapReduceEnv {
 public:
  /// `threads` local execution threads (0 = hardware concurrency). The
  /// modeled cluster size lives in `model` and is independent of this.
  explicit MapReduceEnv(const CostModel& model = {}, size_t threads = 0)
      : model_(model), pool_(threads) {}

  const CostModel& cost_model() const { return model_; }
  ThreadPool& pool() { return pool_; }
  /// Counters accumulated over every job run through this env.
  const JobStats& totals() const { return totals_; }
  void AccumulateTotals(const JobStats& s) { totals_.Accumulate(s); }

 private:
  CostModel model_;
  ThreadPool pool_;
  JobStats totals_;
};

inline constexpr std::nullptr_t NoCombiner = nullptr;

namespace mr_internal {

/// Maps one input chunk and (optionally) combines its output in place.
/// Returns the raw (pre-combine) emit count.
template <typename K2, typename V2, typename K1, typename V1, typename MapFn,
          typename CombineFn>
uint64_t MapCombineChunk(const std::vector<KV<K1, V1>>& input,
                         std::vector<KV<K2, V2>>& out, MapFn& map_fn,
                         CombineFn& combine_fn, double fanout_hint) {
  out.clear();
  Emitter<K2, V2> emitter(&out);
  emitter.Reserve(
      static_cast<size_t>(static_cast<double>(input.size()) * fanout_hint) +
      1);
  for (const KV<K1, V1>& kv : input) {
    map_fn(kv.key, kv.value, emitter);
  }
  const uint64_t raw = out.size();
  if constexpr (!std::is_same_v<std::decay_t<CombineFn>, std::nullptr_t>) {
    // Combine chunk-locally: group by key, partially reduce.
    std::stable_sort(out.begin(), out.end(),
                     [](const KV<K2, V2>& a, const KV<K2, V2>& b) {
                       return a.key < b.key;
                     });
    std::vector<KV<K2, V2>> combined;
    Emitter<K2, V2> combine_emitter(&combined);
    combine_emitter.Reserve(out.size());
    std::vector<V2> values;
    ForEachGroup(out, &values,
                 [&](const K2& key, const std::vector<V2>& vs) {
                   combine_fn(key, vs, combine_emitter);
                 });
    out = std::move(combined);
  }
  return raw;
}

}  // namespace mr_internal

/// Runs one MapReduce job over a RecordSource, optionally with a
/// Hadoop-style map-side combiner and a spill budget on the shuffle.
///
/// \tparam K2/V2 intermediate key/value (K2 needs operator< and ==; both
///         must be trivially copyable — shuffle records may hit disk).
/// \param map_fn     void(const K1&, const V1&, Emitter<K2,V2>&)
/// \param combine_fn type-preserving partial reduction applied per map
///        chunk before the shuffle:
///        void(const K2&, const std::vector<V2>&, Emitter<K2,V2>&).
///        Pass NoCombiner to skip. Must be associative and commutative for
///        the job result to be combiner-invariant.
/// \param reduce_fn  void(const K2&, const std::vector<V2>&, Emitter<K3,V3>&)
/// \param stats_out  optional per-job counters (also accumulated into env).
///
/// Fails only on IO: a bad input source or a failed shuffle spill.
template <typename K2, typename V2, typename K3, typename V3, typename K1,
          typename V1, typename MapFn, typename CombineFn, typename ReduceFn>
StatusOr<std::vector<KV<K3, V3>>> RunJobOnSource(
    MapReduceEnv& env, RecordSource<K1, V1>& source, const JobOptions& options,
    MapFn&& map_fn, CombineFn&& combine_fn, ReduceFn&& reduce_fn,
    JobStats* stats_out = nullptr) {
  JobStats stats;
  const size_t threads = env.pool().num_threads();
  const size_t num_partitions = std::max<size_t>(1, options.num_partitions);
  ShuffleWriter<K2, V2> shuffle(num_partitions, options);
  // The source's size hint times the map fanout bounds what reaches the
  // shuffle (combining only shrinks it); pre-size the partition buffers.
  shuffle.ReserveForInput(static_cast<uint64_t>(
      static_cast<double>(source.SizeHint()) * options.map_fanout_hint));

  // ---- Map phase: pull fixed-size chunks from the source, map+combine a
  // round of them in parallel, merge into the shuffle in chunk order. ----
  const size_t chunk_cap = std::max<size_t>(1, options.map_chunk_records);
  const size_t chunks_per_round = std::max<size_t>(1, threads * 2);
  std::vector<std::vector<KV<K1, V1>>> inputs(chunks_per_round);
  std::vector<std::vector<KV<K2, V2>>> outputs(chunks_per_round);
  std::vector<uint64_t> raw_counts(chunks_per_round, 0);
  const uint64_t input_bytes_before = source.bytes_scanned();
  const IoRetryStats source_retries_before = source.io_retry_stats();
  source.Reset();
  bool source_dry = false;
  {
    DENSEST_TRACE_SPAN("mr.map_phase");
    while (!source_dry) {
      // Once per round (≤ chunks_per_round × chunk_cap records between
      // polls). The early return unwinds the ShuffleWriter, whose SpillFile
      // destructors remove any spill files already written.
      if (Status c = CheckCancel(options.cancel); !c.ok()) return c;
      size_t filled = 0;
      while (filled < chunks_per_round) {
        std::vector<KV<K1, V1>>& in = inputs[filled];
        in.resize(chunk_cap);
        const size_t got = source.FillChunk(in.data(), chunk_cap);
        in.resize(got);
        if (got == 0) {
          source_dry = true;
          break;
        }
        stats.map_input_records += got;
        ++filled;
      }
      DENSEST_METRIC_COUNTER("mr.map_chunks").Inc(filled);
      env.pool().ParallelFor(filled, [&](size_t c) {
        raw_counts[c] = mr_internal::MapCombineChunk<K2, V2>(
            inputs[c], outputs[c], map_fn, combine_fn,
            options.map_fanout_hint);
      });
      for (size_t c = 0; c < filled; ++c) {
        stats.map_output_records += raw_counts[c];
        if (Status s = shuffle.Append(std::move(outputs[c])); !s.ok()) {
          return s;
        }
      }
    }
  }
  // A disk-backed source signals mid-scan failure by ending early; mapping
  // a truncated input would produce a plausible-looking wrong answer.
  if (Status s = source.status(); !s.ok()) return s;
  if (Status c = CheckCancel(options.cancel); !c.ok()) return c;
  stats.map_input_bytes = source.bytes_scanned() - input_bytes_before;

  constexpr bool kHasCombiner =
      !std::is_same_v<std::decay_t<CombineFn>, std::nullptr_t>;
  stats.combine_input_records = kHasCombiner ? stats.map_output_records : 0;
  stats.combine_output_records = shuffle.records();
  // One byte-size convention everywhere a record is accounted: the padded
  // struct size, which is also what the spill budget and spill files see.
  stats.shuffle_bytes = shuffle.records() * sizeof(KV<K2, V2>);

  // ---- Reduce phase: merge-read each partition in key order (spilled
  // runs + in-memory tail), group, reduce — partitions in parallel. ----
  std::vector<std::vector<KV<K3, V3>>> reduce_out(num_partitions);
  std::vector<uint64_t> group_counts(num_partitions, 0);
  std::vector<Status> partition_status(num_partitions);
  const uint64_t out_hint = options.reduce_output_hint / num_partitions;
  {
    DENSEST_TRACE_SPAN("mr.reduce_phase");
    env.pool().ParallelFor(num_partitions, [&](size_t p) {
      // One poll per partition: a tripped token skips the remaining merge
      // work. ParallelFor still joins every worker, so no thread outlives
      // the early return below.
      if (Status c = CheckCancel(options.cancel); !c.ok()) {
        partition_status[p] = c;
        return;
      }
      Emitter<K3, V3> emitter(&reduce_out[p]);
      if (out_hint > 0) emitter.Reserve(out_hint);
      std::vector<V2> values;
      partition_status[p] = shuffle.ReducePartition(
          p, &values, [&](const K2& key, const std::vector<V2>& vs) {
            reduce_fn(key, vs, emitter);
            ++group_counts[p];
          });
    });
  }
  for (const Status& s : partition_status) {
    if (!s.ok()) return s;
  }

  std::vector<KV<K3, V3>> output;
  size_t total_out = 0;
  for (const auto& part : reduce_out) total_out += part.size();
  output.reserve(total_out);
  for (auto& part : reduce_out) {
    output.insert(output.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  for (uint64_t c : group_counts) stats.reduce_input_groups += c;
  stats.reduce_output_records = output.size();
  stats.spill_bytes_written = shuffle.spill_bytes_written();
  stats.spill_bytes_read = shuffle.spill_bytes_read();
  stats.spill_runs = shuffle.spill_runs();
  const IoRetryStats source_retries = source.io_retry_stats();
  const IoRetryStats spill_retries = shuffle.io_retry_stats();
  stats.io_retries = (source_retries.retries - source_retries_before.retries) +
                     spill_retries.retries;
  stats.io_retries_healed =
      (source_retries.healed - source_retries_before.healed) +
      spill_retries.healed;
  stats.simulated_seconds = SimulateJobSeconds(env.cost_model(), stats);

  // Registry mirror of the per-job struct: one bulk add per job, so the
  // cross-command metrics plane sees MR activity without per-record cost.
  DENSEST_METRIC_COUNTER("mr.jobs").Inc();
  DENSEST_METRIC_COUNTER("mr.shuffle_records").Inc(shuffle.records());
  DENSEST_METRIC_COUNTER("mr.spill_bytes").Inc(stats.spill_bytes_written);
  DENSEST_METRIC_COUNTER("mr.reduce_groups").Inc(stats.reduce_input_groups);

  env.AccumulateTotals(stats);
  if (stats_out != nullptr) *stats_out = stats;
  return output;
}

/// In-memory convenience overload: runs the job over a vector with the
/// default (never-spilling) options. Cannot fail — vector sources are
/// infallible and nothing spills.
template <typename K2, typename V2, typename K3, typename V3, typename K1,
          typename V1, typename MapFn, typename CombineFn, typename ReduceFn>
std::vector<KV<K3, V3>> RunJobWithCombiner(
    MapReduceEnv& env, const std::vector<KV<K1, V1>>& input, MapFn&& map_fn,
    CombineFn&& combine_fn, ReduceFn&& reduce_fn,
    JobStats* stats_out = nullptr) {
  VectorRecordSource<K1, V1> source(input);
  StatusOr<std::vector<KV<K3, V3>>> out = RunJobOnSource<K2, V2, K3, V3>(
      env, source, JobOptions{}, std::forward<MapFn>(map_fn),
      std::forward<CombineFn>(combine_fn), std::forward<ReduceFn>(reduce_fn),
      stats_out);
  return std::move(*out);
}

/// Combiner-free convenience wrapper (the common case).
template <typename K2, typename V2, typename K3, typename V3, typename K1,
          typename V1, typename MapFn, typename ReduceFn>
std::vector<KV<K3, V3>> RunJob(MapReduceEnv& env,
                               const std::vector<KV<K1, V1>>& input,
                               MapFn&& map_fn, ReduceFn&& reduce_fn,
                               JobStats* stats_out = nullptr) {
  return RunJobWithCombiner<K2, V2, K3, V3>(
      env, input, std::forward<MapFn>(map_fn), NoCombiner,
      std::forward<ReduceFn>(reduce_fn), stats_out);
}

}  // namespace densest

#endif  // DENSEST_MAPREDUCE_JOB_H_
