#include "mapreduce/mr_densest.h"

#include <cmath>

#include "graph/subgraph.h"

namespace densest {

StatusOr<MrDensestResult> RunMrDensestUndirected(
    MapReduceEnv& env, const EdgeList& graph,
    const MrDensestOptions& options) {
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  const NodeId n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  MrDensestResult out;
  NodeSet alive(n, /*full=*/true);
  NodeSet best = alive;
  double best_density = -1.0;
  MrEdges edges = ToMrEdges(graph.edges());

  const double factor = 2.0 * (1.0 + options.epsilon);
  std::vector<EdgeId> deg(n, 0);
  uint64_t pass = 0;
  while (!alive.empty() && pass < options.max_passes) {
    ++pass;
    double pass_sec = 0;

    // Job 1 (§5.2 "density"): count the surviving edges.
    JobStats density_stats;
    EdgeId m = MrCountEdgesJob(env, edges, &density_stats);
    pass_sec += density_stats.simulated_seconds;

    // Job 2 (§5.2 "degrees"): per-node induced degrees.
    JobStats degree_stats;
    std::vector<KV<NodeId, EdgeId>> degrees =
        MrDegreeJob(env, edges, &degree_stats);
    pass_sec += degree_stats.simulated_seconds;

    const double rho =
        static_cast<double>(m) / static_cast<double>(alive.size());
    if (rho > best_density) {
      best_density = rho;
      best = alive;
    }

    // Driver decision: mark every node at or below the threshold.
    // (Nodes with no surviving edge have degree 0 and are always marked.)
    std::fill(deg.begin(), deg.end(), 0);
    for (const auto& kv : degrees) deg[kv.key] = kv.value;
    const double threshold = factor * rho;
    NodeSet marked(n);
    for (NodeId u = 0; u < n; ++u) {
      if (alive.Contains(u) && static_cast<double>(deg[u]) <= threshold) {
        marked.Insert(u);
        alive.Remove(u);
      }
    }

    if (options.record_trace) {
      PassSnapshot snap;
      snap.pass = pass;
      snap.nodes = static_cast<NodeId>(alive.size() + marked.size());
      snap.edges = m;
      snap.weight = static_cast<double>(m);
      snap.density = rho;
      snap.threshold = threshold;
      snap.removed = marked.size();
      out.result.trace.push_back(snap);
    }

    // Jobs 3+4 (§5.2 "removal"): delete marked nodes and incident edges.
    if (!marked.empty() && !edges.empty()) {
      JobStats removal1, removal2;
      edges = MrRemoveNodesJob(env, edges, marked, &removal1, &removal2);
      pass_sec += removal1.simulated_seconds + removal2.simulated_seconds;
    }
    out.pass_seconds.push_back(pass_sec);
  }

  out.result.nodes = best.ToVector();
  out.result.density = best_density < 0 ? 0.0 : best_density;
  out.result.passes = pass;
  out.totals = env.totals();
  return out;
}

StatusOr<MrDirectedResult> RunMrDensestDirected(
    MapReduceEnv& env, const EdgeList& arcs_in,
    const MrDirectedOptions& options) {
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  if (!(options.c > 0)) return Status::InvalidArgument("c must be > 0");
  const NodeId n = arcs_in.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  MrDirectedResult out;
  out.result.c = options.c;
  NodeSet s(n, /*full=*/true), t(n, /*full=*/true);
  NodeSet best_s = s, best_t = t;
  double best_density = -1.0;
  MrEdges arcs = ToMrEdges(arcs_in.edges());

  std::vector<EdgeId> out_deg(n, 0), in_deg(n, 0);
  uint64_t pass = 0;
  while (!s.empty() && !t.empty() && pass < options.max_passes) {
    ++pass;
    double pass_sec = 0;

    JobStats density_stats;
    EdgeId m = MrCountEdgesJob(env, arcs, &density_stats);
    pass_sec += density_stats.simulated_seconds;

    JobStats degree_stats;
    std::vector<KV<uint64_t, EdgeId>> degrees =
        MrDirectedDegreeJob(env, arcs, &degree_stats);
    pass_sec += degree_stats.simulated_seconds;

    const double rho = static_cast<double>(m) /
                       std::sqrt(static_cast<double>(s.size()) *
                                 static_cast<double>(t.size()));
    if (rho > best_density) {
      best_density = rho;
      best_s = s;
      best_t = t;
    }

    std::fill(out_deg.begin(), out_deg.end(), 0);
    std::fill(in_deg.begin(), in_deg.end(), 0);
    for (const auto& kv : degrees) {
      NodeId node = static_cast<NodeId>(kv.key >> 1);
      if (kv.key & 1) {
        in_deg[node] = kv.value;
      } else {
        out_deg[node] = kv.value;
      }
    }

    const bool peel_s =
        static_cast<double>(s.size()) / static_cast<double>(t.size()) >=
        options.c;
    NodeSet marked(n);
    if (peel_s) {
      const double threshold = (1.0 + options.epsilon) *
                               static_cast<double>(m) /
                               static_cast<double>(s.size());
      for (NodeId u = 0; u < n; ++u) {
        if (s.Contains(u) && static_cast<double>(out_deg[u]) <= threshold) {
          marked.Insert(u);
          s.Remove(u);
        }
      }
    } else {
      const double threshold = (1.0 + options.epsilon) *
                               static_cast<double>(m) /
                               static_cast<double>(t.size());
      for (NodeId u = 0; u < n; ++u) {
        if (t.Contains(u) && static_cast<double>(in_deg[u]) <= threshold) {
          marked.Insert(u);
          t.Remove(u);
        }
      }
    }

    if (options.record_trace) {
      DirectedPassSnapshot snap;
      snap.pass = pass;
      snap.s_size = peel_s ? static_cast<NodeId>(s.size() + marked.size())
                           : s.size();
      snap.t_size = peel_s ? t.size()
                           : static_cast<NodeId>(t.size() + marked.size());
      snap.weight = static_cast<double>(m);
      snap.density = rho;
      snap.removed_from_s = peel_s;
      snap.removed = marked.size();
      out.result.trace.push_back(snap);
    }

    if (!marked.empty() && !arcs.empty()) {
      JobStats removal_stats;
      arcs = MrRemoveArcsJob(env, arcs, marked, /*by_source=*/peel_s,
                             &removal_stats);
      pass_sec += removal_stats.simulated_seconds;
    }
    out.pass_seconds.push_back(pass_sec);
  }

  out.result.s_nodes = best_s.ToVector();
  out.result.t_nodes = best_t.ToVector();
  out.result.density = best_density < 0 ? 0.0 : best_density;
  out.result.passes = pass;
  out.totals = env.totals();
  return out;
}

}  // namespace densest
