#include "mapreduce/mr_densest.h"

#include <cmath>
#include <memory>
#include <optional>

#include "graph/subgraph.h"
#include "mapreduce/stream_source.h"
#include "stream/memory_stream.h"
#include "stream/pass_cursor.h"

namespace densest {

namespace {

/// The per-pass input of a driver: the input stream until the first
/// removal job materializes its survivors, an in-memory vector after.
/// Jobs pull whichever is current through the RecordSource interface.
class DriverInput {
 public:
  explicit DriverInput(PassCursor& cursor) : stream_source_(cursor) {}

  MrEdgeSource& source() {
    if (on_stream_) return stream_source_;
    vector_source_.emplace(edges_);
    return *vector_source_;
  }

  /// Installs the removal job's survivors; later passes run in memory.
  void ReplaceWithSurvivors(MrEdges&& survivors) {
    edges_ = std::move(survivors);
    on_stream_ = false;
  }

  bool on_stream() const { return on_stream_; }
  bool in_memory_empty() const { return !on_stream_ && edges_.empty(); }

 private:
  StreamRecordSource stream_source_;
  MrEdges edges_;
  // Rebuilt per source() call: VectorRecordSource carries a cursor, and a
  // fresh one guarantees every job starts at record zero.
  std::optional<VectorRecordSource<NodeId, NodeId>> vector_source_;
  bool on_stream_ = true;
};

JobOptions DriverJobOptions(uint64_t spill_budget_bytes,
                            const std::string& spill_dir) {
  JobOptions opts;
  opts.spill_budget_bytes = spill_budget_bytes;
  opts.spill_dir = spill_dir;
  return opts;
}

}  // namespace

StatusOr<MrDensestResult> RunMrDensestUndirected(
    MapReduceEnv& env, EdgeStream& stream, const MrDensestOptions& options) {
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  MrDensestResult out;
  NodeSet alive(n, /*full=*/true);
  NodeSet best = alive;
  double best_density = -1.0;
  PassCursor cursor(stream);
  DriverInput input(cursor);
  const JobOptions base_opts =
      DriverJobOptions(options.spill_budget_bytes, options.spill_dir);

  const double factor = 2.0 * (1.0 + options.epsilon);
  std::vector<EdgeId> deg(n, 0);
  uint64_t pass = 0;
  while (!alive.empty() && pass < options.max_passes) {
    ++pass;
    JobStats pass_stats;

    // Job 1 (§5.2 "density"): count the surviving edges.
    JobStats density_stats;
    StatusOr<EdgeId> m =
        MrCountEdgesJob(env, input.source(), base_opts, &density_stats);
    if (!m.ok()) return m.status();
    pass_stats.Accumulate(density_stats);

    // Job 2 (§5.2 "degrees"): per-node induced degrees, combined map-side
    // so the shuffle carries O(|V_alive|) records per chunk, not O(|E|).
    JobStats degree_stats;
    JobOptions degree_opts = base_opts;
    degree_opts.reduce_output_hint = alive.size();
    StatusOr<std::vector<KV<NodeId, EdgeId>>> degrees =
        MrDegreeJobCombined(env, input.source(), degree_opts, &degree_stats);
    if (!degrees.ok()) return degrees.status();
    pass_stats.Accumulate(degree_stats);

    const double rho =
        static_cast<double>(*m) / static_cast<double>(alive.size());
    if (rho > best_density) {
      best_density = rho;
      best = alive;
    }

    // Driver decision: mark every node at or below the threshold.
    // (Nodes with no surviving edge have degree 0 and are always marked.)
    std::fill(deg.begin(), deg.end(), 0);
    for (const auto& kv : *degrees) deg[kv.key] = kv.value;
    const double threshold = factor * rho;
    NodeSet marked(n);
    for (NodeId u = 0; u < n; ++u) {
      if (alive.Contains(u) && static_cast<double>(deg[u]) <= threshold) {
        marked.Insert(u);
        alive.Remove(u);
      }
    }

    if (options.record_trace) {
      PassSnapshot snap;
      snap.pass = pass;
      snap.nodes = static_cast<NodeId>(alive.size() + marked.size());
      snap.edges = *m;
      snap.weight = static_cast<double>(*m);
      snap.density = rho;
      snap.threshold = threshold;
      snap.removed = marked.size();
      out.result.trace.push_back(snap);
    }

    // Jobs 3+4 (§5.2 "removal"): delete marked nodes and incident edges.
    if (!marked.empty() && !input.in_memory_empty()) {
      JobStats removal1, removal2;
      JobOptions removal_opts = base_opts;
      removal_opts.reduce_output_hint = *m;
      StatusOr<MrEdges> survivors = MrRemoveNodesJob(
          env, input.source(), marked, removal_opts, &removal1, &removal2);
      if (!survivors.ok()) return survivors.status();
      input.ReplaceWithSurvivors(std::move(*survivors));
      pass_stats.Accumulate(removal1);
      pass_stats.Accumulate(removal2);
    }
    out.pass_seconds.push_back(pass_stats.simulated_seconds);
    out.pass_stats.push_back(pass_stats);
  }

  out.result.nodes = best.ToVector();
  out.result.density = best_density < 0 ? 0.0 : best_density;
  out.result.passes = pass;
  // Same peeling decisions as RunAlgorithm1, so the same Lemma 1 band.
  out.result.certified_band = 2.0 * (1.0 + options.epsilon);
  out.totals = env.totals();
  out.input_scans = cursor.passes();
  return out;
}

StatusOr<MrDensestResult> RunMrDensestUndirected(
    MapReduceEnv& env, const EdgeList& graph,
    const MrDensestOptions& options) {
  EdgeListStream stream(graph);
  return RunMrDensestUndirected(env, stream, options);
}

StatusOr<MrDirectedResult> RunMrDensestDirected(
    MapReduceEnv& env, EdgeStream& stream, const MrDirectedOptions& options) {
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  if (!(options.c > 0)) return Status::InvalidArgument("c must be > 0");
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  MrDirectedResult out;
  out.result.c = options.c;
  NodeSet s(n, /*full=*/true), t(n, /*full=*/true);
  NodeSet best_s = s, best_t = t;
  double best_density = -1.0;
  PassCursor cursor(stream);
  DriverInput input(cursor);
  const JobOptions base_opts =
      DriverJobOptions(options.spill_budget_bytes, options.spill_dir);

  std::vector<EdgeId> out_deg(n, 0), in_deg(n, 0);
  uint64_t pass = 0;
  while (!s.empty() && !t.empty() && pass < options.max_passes) {
    ++pass;
    JobStats pass_stats;

    JobStats density_stats;
    StatusOr<EdgeId> m =
        MrCountEdgesJob(env, input.source(), base_opts, &density_stats);
    if (!m.ok()) return m.status();
    pass_stats.Accumulate(density_stats);

    JobStats degree_stats;
    JobOptions degree_opts = base_opts;
    degree_opts.reduce_output_hint = s.size() + t.size();
    StatusOr<std::vector<KV<uint64_t, EdgeId>>> degrees =
        MrDirectedDegreeJobCombined(env, input.source(), degree_opts,
                                    &degree_stats);
    if (!degrees.ok()) return degrees.status();
    pass_stats.Accumulate(degree_stats);

    const double rho = static_cast<double>(*m) /
                       std::sqrt(static_cast<double>(s.size()) *
                                 static_cast<double>(t.size()));
    if (rho > best_density) {
      best_density = rho;
      best_s = s;
      best_t = t;
    }

    std::fill(out_deg.begin(), out_deg.end(), 0);
    std::fill(in_deg.begin(), in_deg.end(), 0);
    for (const auto& kv : *degrees) {
      NodeId node = static_cast<NodeId>(kv.key >> 1);
      if (kv.key & 1) {
        in_deg[node] = kv.value;
      } else {
        out_deg[node] = kv.value;
      }
    }

    const bool peel_s =
        static_cast<double>(s.size()) / static_cast<double>(t.size()) >=
        options.c;
    NodeSet marked(n);
    if (peel_s) {
      const double threshold = (1.0 + options.epsilon) *
                               static_cast<double>(*m) /
                               static_cast<double>(s.size());
      for (NodeId u = 0; u < n; ++u) {
        if (s.Contains(u) && static_cast<double>(out_deg[u]) <= threshold) {
          marked.Insert(u);
          s.Remove(u);
        }
      }
    } else {
      const double threshold = (1.0 + options.epsilon) *
                               static_cast<double>(*m) /
                               static_cast<double>(t.size());
      for (NodeId u = 0; u < n; ++u) {
        if (t.Contains(u) && static_cast<double>(in_deg[u]) <= threshold) {
          marked.Insert(u);
          t.Remove(u);
        }
      }
    }

    if (options.record_trace) {
      DirectedPassSnapshot snap;
      snap.pass = pass;
      snap.s_size = peel_s ? static_cast<NodeId>(s.size() + marked.size())
                           : s.size();
      snap.t_size = peel_s ? t.size()
                           : static_cast<NodeId>(t.size() + marked.size());
      snap.weight = static_cast<double>(*m);
      snap.density = rho;
      snap.removed_from_s = peel_s;
      snap.removed = marked.size();
      out.result.trace.push_back(snap);
    }

    if (!marked.empty() && !input.in_memory_empty()) {
      JobStats removal_stats;
      JobOptions removal_opts = base_opts;
      removal_opts.reduce_output_hint = *m;
      StatusOr<MrEdges> survivors =
          MrRemoveArcsJob(env, input.source(), marked, /*by_source=*/peel_s,
                          removal_opts, &removal_stats);
      if (!survivors.ok()) return survivors.status();
      input.ReplaceWithSurvivors(std::move(*survivors));
      pass_stats.Accumulate(removal_stats);
    }
    out.pass_seconds.push_back(pass_stats.simulated_seconds);
    out.pass_stats.push_back(pass_stats);
  }

  out.result.s_nodes = best_s.ToVector();
  out.result.t_nodes = best_t.ToVector();
  out.result.density = best_density < 0 ? 0.0 : best_density;
  out.result.passes = pass;
  // Same peeling decisions as RunAlgorithm3, so the same Theorem 6 band.
  out.result.certified_band = 2.0 * (1.0 + options.epsilon);
  out.totals = env.totals();
  out.input_scans = cursor.passes();
  return out;
}

StatusOr<MrDirectedResult> RunMrDensestDirected(
    MapReduceEnv& env, const EdgeList& arcs_in,
    const MrDirectedOptions& options) {
  EdgeListStream stream(arcs_in);
  return RunMrDensestDirected(env, stream, options);
}

}  // namespace densest
