// Copyright 2026 The densest Authors.
// The spill-capable shuffle of the MapReduce engine. Map output is
// hash-partitioned as it arrives (in chunk order); a partition whose
// in-memory buffer exceeds its share of the byte budget stable-sorts the
// buffer and serializes it to a SpillFile as one sorted run. At reduce time
// the partition's runs (spilled runs + the in-memory tail) are merge-read
// in key order with run-index tie-breaking, which reproduces exactly the
// stable-sorted order of the full append sequence — so job output is
// byte-identical whether zero, some, or all partitions spilled.

#ifndef DENSEST_MAPREDUCE_SHUFFLE_H_
#define DENSEST_MAPREDUCE_SHUFFLE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "common/status.h"
#include "io/spill_file.h"

namespace densest {

template <typename K, typename V>
struct KV;

/// Walks a key-sorted record range and invokes fn(key, values) once per
/// distinct key. `values` is caller-owned scratch reused across groups.
/// The one grouping loop behind the combiner, the in-memory reduce path,
/// and (conceptually) the merge-read — keep their semantics in one place.
template <typename K, typename V, typename GroupFn>
void ForEachGroup(const std::vector<KV<K, V>>& sorted, std::vector<V>* values,
                  GroupFn&& fn) {
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    values->clear();
    while (j < sorted.size() && sorted[j].key == sorted[i].key) {
      values->push_back(sorted[j].value);
      ++j;
    }
    fn(sorted[i].key, *values);
    i = j;
  }
}

/// \brief Knobs for one MapReduce job's execution (not its semantics).
struct JobOptions {
  /// Total in-memory shuffle budget in bytes, shared evenly by the
  /// partitions; a partition whose buffer exceeds its share spills a
  /// sorted run to disk. 0 = never spill (whole shuffle stays resident).
  uint64_t spill_budget_bytes = 0;
  /// Directory for spill files ("" = the system temp directory).
  std::string spill_dir;
  /// Records per map chunk pulled from a RecordSource. A fixed count —
  /// never derived from the thread count — so combiner boundaries, and
  /// with them the job's exact output bytes, are identical for every
  /// thread count.
  size_t map_chunk_records = 1 << 15;
  /// Shuffle partitions (= reduce parallelism ceiling). Fixed for the same
  /// reason as map_chunk_records: output records are concatenated in
  /// partition order, so a thread-derived count would make the output
  /// order machine-dependent.
  size_t num_partitions = 16;
  /// Expected map emissions per input record; pre-sizes map output buffers
  /// (the cost-model record estimate for the job, e.g. 2.0 for the degree
  /// jobs which emit both endpoints).
  double map_fanout_hint = 1.0;
  /// Expected total reduce output records (0 = unknown); pre-sizes reduce
  /// output buffers.
  uint64_t reduce_output_hint = 0;
  /// Optional cooperative cancellation (see common/cancel.h). Polled once
  /// per map round and once per reduce partition; a tripped token fails
  /// the job with kCancelled/kDeadlineExceeded and spill files are removed
  /// by their destructors on the early return. Null = never cancelled.
  const CancelToken* cancel = nullptr;
};

/// \brief Hash-partitioned shuffle store with budgeted spilling.
///
/// Append() must be called in chunk order from one thread (the engine owns
/// that ordering); ReducePartition() calls for distinct partitions may run
/// concurrently.
template <typename K, typename V>
class ShuffleWriter {
  static_assert(std::is_trivially_copyable_v<K> &&
                    std::is_trivially_copyable_v<V>,
                "spillable shuffle records must be trivially copyable");

 public:
  ShuffleWriter(size_t num_partitions, const JobOptions& options)
      : options_(options), partitions_(num_partitions) {
    if (options_.spill_budget_bytes > 0) {
      partition_budget_ = std::max<uint64_t>(
          1, options_.spill_budget_bytes / num_partitions);
    }
  }

  size_t num_partitions() const { return partitions_.size(); }

  /// Capacity hint: the caller expects ~`expected_records` appends in
  /// total, spread evenly by the hash. Pre-sizes the partition buffers
  /// (capped at the spill share — anything beyond it hits disk anyway).
  void ReserveForInput(uint64_t expected_records) {
    if (expected_records == 0) return;
    uint64_t per = expected_records / partitions_.size() + 1;
    if (partition_budget_ > 0) {
      per = std::min<uint64_t>(per,
                               partition_budget_ / sizeof(KV<K, V>) + 1);
    }
    for (Partition& part : partitions_) {
      part.buffer.reserve(static_cast<size_t>(per));
    }
  }

  /// Distributes one map chunk's (combined) output across the partitions,
  /// spilling any partition that left its budget. Consumes the chunk.
  Status Append(std::vector<KV<K, V>>&& chunk) {
    for (KV<K, V>& kv : chunk) {
      const size_t p =
          Mix64(static_cast<uint64_t>(kv.key)) % partitions_.size();
      partitions_[p].buffer.push_back(std::move(kv));
    }
    records_ += chunk.size();
    chunk.clear();
    if (partition_budget_ == 0) return Status::OK();
    for (Partition& part : partitions_) {
      if (part.buffer.size() * sizeof(KV<K, V>) > partition_budget_) {
        if (Status s = SpillRun(part); !s.ok()) return s;
      }
    }
    return Status::OK();
  }

  /// Records appended so far (what crosses the modeled shuffle).
  uint64_t records() const { return records_; }
  /// Bytes serialized to spill files so far.
  uint64_t spill_bytes_written() const { return spill_bytes_written_; }
  /// Bytes merge-read back from spill files (grows during reduce).
  uint64_t spill_bytes_read() const {
    uint64_t total = 0;
    for (const Partition& part : partitions_) total += part.spill_read_bytes;
    return total;
  }
  /// Sorted runs spilled across all partitions.
  uint64_t spill_runs() const {
    uint64_t total = 0;
    for (const Partition& part : partitions_) {
      total += part.run_records.size();
    }
    return total;
  }

  /// Retry-loop outcomes accumulated across all partitions' spill files
  /// (write and merge-read seams); see common/retry.h.
  IoRetryStats io_retry_stats() const {
    IoRetryStats total;
    for (const Partition& part : partitions_) {
      if (part.spill != nullptr) {
        total.Accumulate(part.spill->io_retry_stats());
      }
    }
    return total;
  }

  /// Streams partition `p`'s records grouped by key, in the stable-sorted
  /// order of the append sequence: fn(key, values) once per distinct key.
  /// `values` is caller-owned scratch reused across groups.
  template <typename GroupFn>
  Status ReducePartition(size_t p, std::vector<V>* values, GroupFn&& fn) {
    Partition& part = partitions_[p];
    std::stable_sort(part.buffer.begin(), part.buffer.end(),
                     [](const KV<K, V>& a, const KV<K, V>& b) {
                       return a.key < b.key;
                     });
    if (part.run_records.empty()) {
      // Fast path: nothing spilled, group the in-memory buffer directly.
      ForEachGroup(part.buffer, values, std::forward<GroupFn>(fn));
      return Status::OK();
    }
    return MergeReduce(part, values, std::forward<GroupFn>(fn));
  }

 private:
  struct Partition {
    std::vector<KV<K, V>> buffer;
    std::unique_ptr<SpillFile> spill;
    /// Record count of each sorted run, in spill order; run r occupies
    /// bytes [sum(run_records[0..r)) * sizeof(KV), ...) of the file.
    std::vector<uint64_t> run_records;
    uint64_t spill_read_bytes = 0;
  };

  /// \brief Buffered cursor over one sorted run (a spilled segment or the
  /// in-memory tail). Spilled runs read through the file's shared
  /// positioned-read handle (SpillFile::ReadAt) so a partition holds one
  /// fd no matter how many runs it spilled.
  class RunCursor {
   public:
    /// Spilled run over file bytes [offset, offset + length), refilled in
    /// refill_records batches.
    RunCursor(SpillFile* file, uint64_t offset, uint64_t length,
              size_t refill_records, uint64_t* read_bytes)
        : file_(file),
          offset_(offset),
          remaining_(length),
          refill_records_(std::max<size_t>(1, refill_records)),
          read_bytes_(read_bytes) {}
    /// In-memory tail run (already sorted): zero-copy walk.
    explicit RunCursor(const std::vector<KV<K, V>>* tail) : tail_(tail) {}

    bool exhausted() const { return exhausted_; }
    const KV<K, V>& Front() const {
      return tail_ != nullptr ? (*tail_)[pos_] : buf_[pos_];
    }
    Status Advance() {
      ++pos_;
      return EnsureFront();
    }
    Status EnsureFront() {
      if (tail_ != nullptr) {
        exhausted_ = pos_ >= tail_->size();
        return Status::OK();
      }
      if (pos_ < buf_.size()) return Status::OK();
      if (remaining_ == 0) {
        exhausted_ = true;
        return Status::OK();
      }
      buf_.resize(refill_records_);
      const size_t want = static_cast<size_t>(std::min<uint64_t>(
          refill_records_ * sizeof(KV<K, V>), remaining_));
      StatusOr<size_t> got = file_->ReadAt(offset_, buf_.data(), want);
      if (!got.ok()) return got.status();
      if (*got < want) {
        // ReadAt clamps to bytes_written, so a short result here means the
        // run metadata promises bytes the file never received.
        return Status::IOError("spill run ends mid-file");
      }
      if (*got % sizeof(KV<K, V>) != 0) {
        return Status::IOError("spill run ends mid-record");
      }
      offset_ += *got;
      remaining_ -= *got;
      *read_bytes_ += *got;
      buf_.resize(*got / sizeof(KV<K, V>));
      pos_ = 0;
      exhausted_ = buf_.empty();
      return Status::OK();
    }

   private:
    SpillFile* file_ = nullptr;
    uint64_t offset_ = 0;
    uint64_t remaining_ = 0;
    size_t refill_records_ = 0;
    uint64_t* read_bytes_ = nullptr;
    std::vector<KV<K, V>> buf_;
    const std::vector<KV<K, V>>* tail_ = nullptr;
    size_t pos_ = 0;
    bool exhausted_ = false;
  };

  Status SpillRun(Partition& part) {
    if (part.buffer.empty()) return Status::OK();
    if (part.spill == nullptr) {
      StatusOr<std::unique_ptr<SpillFile>> spill =
          SpillFile::Create(options_.spill_dir);
      if (!spill.ok()) return spill.status();
      part.spill = std::move(*spill);
    }
    std::stable_sort(part.buffer.begin(), part.buffer.end(),
                     [](const KV<K, V>& a, const KV<K, V>& b) {
                       return a.key < b.key;
                     });
    const size_t bytes = part.buffer.size() * sizeof(KV<K, V>);
    if (Status s = part.spill->Append(part.buffer.data(), bytes); !s.ok()) {
      return s;
    }
    part.run_records.push_back(part.buffer.size());
    spill_bytes_written_ += bytes;
    part.buffer.clear();
    return Status::OK();
  }

  /// \brief Tournament (winner) tree over the run cursors: yields records
  /// in (key, run index) order in O(log R) per advance instead of scanning
  /// every cursor per distinct key — the merge stays N log R even at tiny
  /// budget-to-data ratios where hundreds of runs spill. The run-index
  /// tie-break is part of the comparator, so the merge order (and with it
  /// the job's output bytes) is identical to the linear scan it replaces.
  class WinnerTree {
   public:
    explicit WinnerTree(std::vector<RunCursor>* runs) : runs_(runs) {
      // At least two leaves so index 1 is always an internal node that
      // re-evaluates exhaustion (a one-run tree would alias root and leaf).
      leaves_ = 2;
      while (leaves_ < runs->size()) leaves_ <<= 1;
      tree_.assign(2 * leaves_, kNoRun);
      for (uint32_t r = 0; r < runs->size(); ++r) {
        tree_[leaves_ + r] = r;
      }
      for (size_t i = leaves_ - 1; i > 0; --i) {
        tree_[i] = Better(tree_[2 * i], tree_[2 * i + 1]);
      }
    }

    /// Cursor index holding the smallest (key, run), kNoRun when all runs
    /// are exhausted.
    uint32_t winner() const { return tree_[1]; }
    static constexpr uint32_t kNoRun = std::numeric_limits<uint32_t>::max();

    /// Re-seats `run` after its cursor advanced (or exhausted).
    void Update(uint32_t run) {
      for (size_t i = (leaves_ + run) / 2; i > 0; i /= 2) {
        tree_[i] = Better(tree_[2 * i], tree_[2 * i + 1]);
      }
    }

   private:
    uint32_t Better(uint32_t a, uint32_t b) const {
      const bool a_out = a == kNoRun || (*runs_)[a].exhausted();
      const bool b_out = b == kNoRun || (*runs_)[b].exhausted();
      if (a_out) return b_out ? kNoRun : b;
      if (b_out) return a;
      const K& ka = (*runs_)[a].Front().key;
      const K& kb = (*runs_)[b].Front().key;
      if (ka < kb) return a;
      if (kb < ka) return b;
      return a < b ? a : b;  // equal keys: the older run wins
    }

    std::vector<RunCursor>* runs_;
    size_t leaves_ = 1;
    std::vector<uint32_t> tree_;
  };

  template <typename GroupFn>
  Status MergeReduce(Partition& part, std::vector<V>* values, GroupFn&& fn) {
    if (Status s = part.spill->Flush(); !s.ok()) return s;
    // One cursor per sorted run, ordered oldest run first with the
    // in-memory tail last: tie-breaking on run index then reproduces the
    // append order of equal keys, i.e. exactly the stable sort of the
    // whole partition.
    std::vector<RunCursor> runs;
    runs.reserve(part.run_records.size() + 1);
    // Each cursor's refill buffer is its share of the budget, floored at
    // 64 records: below that, per-Advance freads dominate the merge. The
    // floor can exceed a pathologically tiny budget (the forced-spill
    // tests) — a bounded, documented overshoot, not a correctness issue.
    const size_t refill_records = std::max<size_t>(
        64, partition_budget_ /
                ((part.run_records.size() + 1) * sizeof(KV<K, V>)));
    uint64_t offset = 0;
    for (uint64_t run_len : part.run_records) {
      const uint64_t bytes = run_len * sizeof(KV<K, V>);
      runs.emplace_back(part.spill.get(), offset, bytes, refill_records,
                        &part.spill_read_bytes);
      offset += bytes;
    }
    runs.emplace_back(&part.buffer);
    for (RunCursor& run : runs) {
      if (Status s = run.EnsureFront(); !s.ok()) return s;
    }
    // (key, run index) order reproduces the linear scan this replaces: a
    // key's values drain run 0's equal-key records first, then run 1's,
    // ... then the tail — the stable sort of the whole append sequence.
    WinnerTree tree(&runs);
    while (true) {
      uint32_t w = tree.winner();
      if (w == WinnerTree::kNoRun) break;
      const K key = runs[w].Front().key;  // copy before cursors advance
      values->clear();
      while (w != WinnerTree::kNoRun && runs[w].Front().key == key) {
        values->push_back(runs[w].Front().value);
        if (Status s = runs[w].Advance(); !s.ok()) return s;
        tree.Update(w);
        w = tree.winner();
      }
      fn(key, *values);
    }
    return Status::OK();
  }

  JobOptions options_;
  uint64_t partition_budget_ = 0;  // 0 = unlimited
  std::vector<Partition> partitions_;
  uint64_t records_ = 0;
  uint64_t spill_bytes_written_ = 0;
};

}  // namespace densest

#endif  // DENSEST_MAPREDUCE_SHUFFLE_H_
