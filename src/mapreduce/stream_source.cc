#include "mapreduce/stream_source.h"

namespace densest {

size_t StreamRecordSource::FillChunk(KV<NodeId, NodeId>* buf, size_t cap) {
  scratch_.resize(cap);
  // One view per call: the engine consumes the chunk before asking for the
  // next, so reusing one scratch region is within NextView's aliasing rules.
  std::span<const Edge> view = cursor_->NextChunk(scratch_.data(), cap);
  for (size_t i = 0; i < view.size(); ++i) {
    buf[i] = KV<NodeId, NodeId>{view[i].u, view[i].v};
  }
  bytes_scanned_ += view.size() * kDfsRecordBytes;
  return view.size();
}

}  // namespace densest
