#include "mapreduce/job.h"

// RunJob is a header template; MapReduceEnv is header-only. This file
// exists so the build has a stable TU for the module.
