#include "mapreduce/cost_model.h"

#include <algorithm>
#include <sstream>

namespace densest {

void JobStats::Accumulate(const JobStats& other) {
  map_input_records += other.map_input_records;
  map_input_bytes += other.map_input_bytes;
  map_output_records += other.map_output_records;
  combine_input_records += other.combine_input_records;
  combine_output_records += other.combine_output_records;
  shuffle_bytes += other.shuffle_bytes;
  reduce_input_groups += other.reduce_input_groups;
  reduce_output_records += other.reduce_output_records;
  spill_bytes_written += other.spill_bytes_written;
  spill_bytes_read += other.spill_bytes_read;
  spill_runs += other.spill_runs;
  io_retries += other.io_retries;
  io_retries_healed += other.io_retries_healed;
  simulated_seconds += other.simulated_seconds;
}

std::string JobStats::ToString() const {
  std::ostringstream os;
  os << "map_in=" << map_input_records
     << " map_in_bytes=" << map_input_bytes
     << " map_out=" << map_output_records
     << " combine_in=" << combine_input_records
     << " combine_out=" << combine_output_records
     << " shuffle_bytes=" << shuffle_bytes
     << " reduce_groups=" << reduce_input_groups
     << " reduce_out=" << reduce_output_records
     << " spill_written=" << spill_bytes_written
     << " spill_read=" << spill_bytes_read;
  if (io_retries > 0 || io_retries_healed > 0) {
    os << " io_retries=" << io_retries
       << " io_retries_healed=" << io_retries_healed;
  }
  os << " sim_seconds=" << simulated_seconds;
  return os.str();
}

double SimulateJobSeconds(const CostModel& model, const JobStats& stats) {
  const double mappers = std::max(1, model.num_mappers);
  const double reducers = std::max(1, model.num_reducers);
  // Combining runs on the mappers (it is part of the map task); spill IO
  // runs on the reducers (Hadoop's merge phase).
  double map_time = (static_cast<double>(stats.map_input_records) *
                         model.map_seconds_per_record +
                     static_cast<double>(stats.map_input_bytes) *
                         model.map_input_seconds_per_byte +
                     static_cast<double>(stats.combine_input_records) *
                         model.combine_seconds_per_record) /
                    mappers;
  double shuffle_time = static_cast<double>(stats.shuffle_bytes) *
                        model.shuffle_seconds_per_byte / reducers;
  double reduce_time = (static_cast<double>(stats.combine_output_records) *
                            model.reduce_seconds_per_record +
                        static_cast<double>(stats.spill_bytes_written +
                                            stats.spill_bytes_read) *
                            model.spill_seconds_per_byte) /
                       reducers;
  return model.job_overhead_seconds +
         model.skew_factor * (map_time + shuffle_time + reduce_time);
}

}  // namespace densest
