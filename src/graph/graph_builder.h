// Copyright 2026 The densest Authors.
// Graph construction with cleaning policies (dedup, self-loops, symmetry).

#ifndef DENSEST_GRAPH_GRAPH_BUILDER_H_
#define DENSEST_GRAPH_GRAPH_BUILDER_H_

#include "common/status.h"
#include "graph/directed_graph.h"
#include "graph/edge_list.h"
#include "graph/undirected_graph.h"

namespace densest {

/// \brief Options controlling how raw edge input is cleaned before CSR
/// construction. Defaults match the paper's setting: simple graphs, no
/// self-loops, duplicate edges merged.
struct GraphBuilderOptions {
  /// Drop edges with u == v.
  bool remove_self_loops = true;
  /// Merge duplicate edges. For weighted inputs the weights are summed;
  /// for unweighted inputs this deduplicates.
  bool deduplicate = true;
  /// Treat weights as all-1 regardless of input (forces unweighted CSR).
  bool ignore_weights = false;
};

/// \brief Accumulates edges and materializes cleaned CSR graphs.
///
/// Example:
/// \code
///   GraphBuilder b;
///   b.Add(0, 1);
///   b.Add(1, 2, 2.5);
///   UndirectedGraph g = b.BuildUndirected().value();
/// \endcode
class GraphBuilder {
 public:
  explicit GraphBuilder(GraphBuilderOptions options = {}) : options_(options) {}

  /// Appends one edge (or arc, for directed builds).
  void Add(NodeId u, NodeId v, Weight w = 1.0) { edges_.Add(u, v, w); }

  /// Ensures the node range covers [0, n).
  void ReserveNodes(NodeId n) { edges_.set_num_nodes(n); }

  /// Number of raw (pre-cleaning) edges added so far.
  EdgeId num_raw_edges() const { return edges_.num_edges(); }

  /// Builds an undirected CSR graph, applying the cleaning options.
  /// Fails with InvalidArgument on negative weights.
  StatusOr<UndirectedGraph> BuildUndirected() const;

  /// Builds a directed CSR graph, applying the cleaning options.
  StatusOr<DirectedGraph> BuildDirected() const;

  /// Cleans and returns the edge list without building a CSR graph
  /// (interpreting edges as undirected iff `undirected`).
  StatusOr<EdgeList> BuildEdgeList(bool undirected) const;

 private:
  GraphBuilderOptions options_;
  EdgeList edges_;
};

}  // namespace densest

#endif  // DENSEST_GRAPH_GRAPH_BUILDER_H_
