// Copyright 2026 The densest Authors.
// Fundamental graph types shared across the library.

#ifndef DENSEST_GRAPH_TYPES_H_
#define DENSEST_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace densest {

/// Node identifier. 32 bits covers every graph this library targets
/// (laptop-scale reproductions of up to ~10^8 nodes).
using NodeId = uint32_t;

/// Edge count / index type. 64 bits: edge counts can exceed 2^32.
using EdgeId = uint64_t;

/// Edge weight. The unweighted algorithms use weight 1.0.
using Weight = double;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// \brief A single (possibly weighted) edge.
///
/// For undirected graphs the pair is unordered (canonicalized u <= v by
/// GraphBuilder); for directed graphs the edge is the arc u -> v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  Weight w = 1.0;

  Edge() = default;
  Edge(NodeId u_in, NodeId v_in, Weight w_in = 1.0) : u(u_in), v(v_in), w(w_in) {}

  bool operator==(const Edge& o) const { return u == o.u && v == o.v && w == o.w; }
};

}  // namespace densest

#endif  // DENSEST_GRAPH_TYPES_H_
