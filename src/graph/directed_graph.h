// Copyright 2026 The densest Authors.
// Immutable CSR directed graph with both out- and in-adjacency.

#ifndef DENSEST_GRAPH_DIRECTED_GRAPH_H_
#define DENSEST_GRAPH_DIRECTED_GRAPH_H_

#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"

namespace densest {

/// \brief Immutable directed graph in CSR form (out-lists and in-lists).
///
/// Each entry of the source edge list is one arc u -> v. Construct via
/// GraphBuilder or FromEdgeList.
class DirectedGraph {
 public:
  DirectedGraph() = default;

  /// Builds a CSR directed graph from an arc list.
  static DirectedGraph FromEdgeList(const EdgeList& arcs);

  /// Number of nodes.
  NodeId num_nodes() const { return num_nodes_; }
  /// Number of arcs.
  EdgeId num_edges() const { return num_edges_; }
  /// Sum of arc weights.
  Weight total_weight() const { return total_weight_; }
  /// True iff any arc carries a weight different from 1.0.
  bool is_weighted() const { return !out_weights_.empty(); }

  /// Out-degree of u.
  NodeId OutDegree(NodeId u) const {
    return static_cast<NodeId>(out_offsets_[u + 1] - out_offsets_[u]);
  }
  /// In-degree of v.
  NodeId InDegree(NodeId v) const {
    return static_cast<NodeId>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Targets of arcs leaving u.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {out_neighbors_.data() + out_offsets_[u],
            static_cast<size_t>(out_offsets_[u + 1] - out_offsets_[u])};
  }
  /// Sources of arcs entering v.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {in_neighbors_.data() + in_offsets_[v],
            static_cast<size_t>(in_offsets_[v + 1] - in_offsets_[v])};
  }
  /// Weights parallel to OutNeighbors(u); empty for unweighted graphs.
  std::span<const Weight> OutNeighborWeights(NodeId u) const {
    if (out_weights_.empty()) return {};
    return {out_weights_.data() + out_offsets_[u],
            static_cast<size_t>(out_offsets_[u + 1] - out_offsets_[u])};
  }

  /// Re-materializes the arc list.
  EdgeList ToEdgeList() const;

 private:
  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  Weight total_weight_ = 0;
  std::vector<EdgeId> out_offsets_, in_offsets_;
  std::vector<NodeId> out_neighbors_, in_neighbors_;
  std::vector<Weight> out_weights_;  // parallel to out_neighbors_
};

}  // namespace densest

#endif  // DENSEST_GRAPH_DIRECTED_GRAPH_H_
