// Copyright 2026 The densest Authors.
// Node subsets and induced subgraph extraction.

#ifndef DENSEST_GRAPH_SUBGRAPH_H_
#define DENSEST_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/directed_graph.h"
#include "graph/edge_list.h"
#include "graph/types.h"
#include "graph/undirected_graph.h"

namespace densest {

/// \brief Word-packed bitset over node ids with a maintained popcount.
///
/// This is the O(n)-memory set the streaming algorithms keep between passes.
/// Membership lives in 64-bit words (64 nodes per cache line octet), which is
/// what lets the pass engine test both endpoints of an edge with two loads
/// and a branchless AND instead of two byte loads and two branches.
class NodeSet {
 public:
  NodeSet() = default;
  /// Creates a set over the universe [0, n); initially empty or full.
  explicit NodeSet(NodeId n, bool full = false)
      : n_(n),
        words_((static_cast<size_t>(n) + 63) / 64, full ? ~uint64_t{0} : 0),
        count_(full ? n : 0) {
    if (full && (n & 63) != 0) {
      // Clear the tail bits beyond the universe in the last word.
      words_.back() &= (uint64_t{1} << (n & 63)) - 1;
    }
  }

  /// Universe size.
  NodeId universe_size() const { return n_; }
  /// Number of members.
  NodeId size() const { return count_; }
  /// True iff no members.
  bool empty() const { return count_ == 0; }
  /// Membership test.
  bool Contains(NodeId u) const {
    return (words_[u >> 6] >> (u & 63)) & 1;
  }
  /// Branchless test that both u and v are members (the hot predicate of
  /// every undirected streaming pass).
  bool ContainsBoth(NodeId u, NodeId v) const {
    return ((words_[u >> 6] >> (u & 63)) & (words_[v >> 6] >> (v & 63)) & 1) !=
           0;
  }

  /// Inserts u (no-op if present).
  void Insert(NodeId u) {
    const uint64_t mask = uint64_t{1} << (u & 63);
    uint64_t& word = words_[u >> 6];
    count_ += static_cast<NodeId>(!(word & mask));
    word |= mask;
  }
  /// Removes u (no-op if absent).
  void Remove(NodeId u) {
    const uint64_t mask = uint64_t{1} << (u & 63);
    uint64_t& word = words_[u >> 6];
    count_ -= static_cast<NodeId>((word & mask) != 0);
    word &= ~mask;
  }

  /// The packed words, 64 node bits each (bit i of word w = node 64w + i).
  /// Exposed for word-at-a-time consumers (pass engine, sweeps).
  const std::vector<uint64_t>& words() const { return words_; }

  /// Members in increasing order.
  std::vector<NodeId> ToVector() const;

  /// Builds a set from explicit members over universe [0, n).
  static NodeSet FromVector(NodeId n, const std::vector<NodeId>& members);

 private:
  NodeId n_ = 0;
  std::vector<uint64_t> words_;
  NodeId count_ = 0;
};

/// \brief Extracts the subgraph of `g` induced by `nodes`, relabeling nodes
/// to [0, |nodes|). `mapping` (optional out-param) receives the original id
/// of each new node.
UndirectedGraph InducedSubgraph(const UndirectedGraph& g, const NodeSet& nodes,
                                std::vector<NodeId>* mapping = nullptr);

/// Directed version of InducedSubgraph: keeps arcs with both endpoints in
/// `nodes`.
DirectedGraph InducedSubgraphDirected(const DirectedGraph& g,
                                      const NodeSet& nodes,
                                      std::vector<NodeId>* mapping = nullptr);

/// Number of edges of `g` with both endpoints in `nodes`, plus their total
/// weight (equal for unweighted graphs).
struct InducedEdgeCount {
  EdgeId edges = 0;
  Weight weight = 0;
};
InducedEdgeCount CountInducedEdges(const UndirectedGraph& g,
                                   const NodeSet& nodes);

/// Induced density rho(S) = induced weight / |S| (0 for empty S).
double InducedDensity(const UndirectedGraph& g, const NodeSet& nodes);

/// Directed density rho(S, T) = |E(S,T)| / sqrt(|S| |T|) (0 if either empty).
double InducedDensityDirected(const DirectedGraph& g, const NodeSet& s,
                              const NodeSet& t);

}  // namespace densest

#endif  // DENSEST_GRAPH_SUBGRAPH_H_
