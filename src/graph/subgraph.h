// Copyright 2026 The densest Authors.
// Node subsets and induced subgraph extraction.

#ifndef DENSEST_GRAPH_SUBGRAPH_H_
#define DENSEST_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/directed_graph.h"
#include "graph/edge_list.h"
#include "graph/types.h"
#include "graph/undirected_graph.h"

namespace densest {

/// \brief Dense bitmap over node ids with a maintained popcount.
///
/// This is the O(n)-memory set the streaming algorithms keep between passes.
class NodeSet {
 public:
  NodeSet() = default;
  /// Creates a set over the universe [0, n); initially empty or full.
  explicit NodeSet(NodeId n, bool full = false)
      : bits_(n, full ? 1 : 0), count_(full ? n : 0) {}

  /// Universe size.
  NodeId universe_size() const { return static_cast<NodeId>(bits_.size()); }
  /// Number of members.
  NodeId size() const { return count_; }
  /// True iff no members.
  bool empty() const { return count_ == 0; }
  /// Membership test.
  bool Contains(NodeId u) const { return bits_[u] != 0; }

  /// Inserts u (no-op if present).
  void Insert(NodeId u) {
    if (!bits_[u]) {
      bits_[u] = 1;
      ++count_;
    }
  }
  /// Removes u (no-op if absent).
  void Remove(NodeId u) {
    if (bits_[u]) {
      bits_[u] = 0;
      --count_;
    }
  }

  /// Members in increasing order.
  std::vector<NodeId> ToVector() const;

  /// Builds a set from explicit members over universe [0, n).
  static NodeSet FromVector(NodeId n, const std::vector<NodeId>& members);

 private:
  std::vector<uint8_t> bits_;
  NodeId count_ = 0;
};

/// \brief Extracts the subgraph of `g` induced by `nodes`, relabeling nodes
/// to [0, |nodes|). `mapping` (optional out-param) receives the original id
/// of each new node.
UndirectedGraph InducedSubgraph(const UndirectedGraph& g, const NodeSet& nodes,
                                std::vector<NodeId>* mapping = nullptr);

/// Directed version of InducedSubgraph: keeps arcs with both endpoints in
/// `nodes`.
DirectedGraph InducedSubgraphDirected(const DirectedGraph& g,
                                      const NodeSet& nodes,
                                      std::vector<NodeId>* mapping = nullptr);

/// Number of edges of `g` with both endpoints in `nodes`, plus their total
/// weight (equal for unweighted graphs).
struct InducedEdgeCount {
  EdgeId edges = 0;
  Weight weight = 0;
};
InducedEdgeCount CountInducedEdges(const UndirectedGraph& g,
                                   const NodeSet& nodes);

/// Induced density rho(S) = induced weight / |S| (0 for empty S).
double InducedDensity(const UndirectedGraph& g, const NodeSet& nodes);

/// Directed density rho(S, T) = |E(S,T)| / sqrt(|S| |T|) (0 if either empty).
double InducedDensityDirected(const DirectedGraph& g, const NodeSet& s,
                              const NodeSet& t);

}  // namespace densest

#endif  // DENSEST_GRAPH_SUBGRAPH_H_
