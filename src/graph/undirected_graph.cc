#include "graph/undirected_graph.h"

#include <algorithm>
#include <cmath>

namespace densest {

UndirectedGraph UndirectedGraph::FromEdgeList(const EdgeList& edges) {
  UndirectedGraph g;
  g.num_nodes_ = edges.num_nodes();
  g.num_edges_ = edges.num_edges();

  bool weighted = false;
  for (const Edge& e : edges.edges()) {
    if (e.w != 1.0) {
      weighted = true;
      break;
    }
  }

  // Counting pass: a self-loop occupies one adjacency slot, a normal edge two.
  std::vector<EdgeId> counts(g.num_nodes_ + 1, 0);
  EdgeId slots = 0;
  for (const Edge& e : edges.edges()) {
    ++counts[e.u + 1];
    ++slots;
    if (e.u != e.v) {
      ++counts[e.v + 1];
      ++slots;
    } else {
      g.has_self_loops_ = true;
    }
    g.total_weight_ += e.w;
  }
  for (NodeId i = 0; i < g.num_nodes_; ++i) counts[i + 1] += counts[i];
  g.offsets_ = counts;

  g.neighbors_.resize(slots);
  if (weighted) g.weights_.resize(slots);
  std::vector<EdgeId> cursor = g.offsets_;
  for (const Edge& e : edges.edges()) {
    EdgeId pu = cursor[e.u]++;
    g.neighbors_[pu] = e.v;
    if (weighted) g.weights_[pu] = e.w;
    if (e.u != e.v) {
      EdgeId pv = cursor[e.v]++;
      g.neighbors_[pv] = e.u;
      if (weighted) g.weights_[pv] = e.w;
    }
  }
  return g;
}

Weight UndirectedGraph::WeightedDegree(NodeId u) const {
  if (weights_.empty()) return static_cast<Weight>(Degree(u));
  Weight total = 0;
  for (EdgeId i = offsets_[u]; i < offsets_[u + 1]; ++i) total += weights_[i];
  return total;
}

NodeId UndirectedGraph::MaxDegree() const {
  NodeId best = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) best = std::max(best, Degree(u));
  return best;
}

EdgeList UndirectedGraph::ToEdgeList() const {
  EdgeList out(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    auto nbrs = Neighbors(u);
    auto ws = NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      NodeId v = nbrs[i];
      if (v >= u) {  // emit each undirected edge once
        out.Add(u, v, ws.empty() ? 1.0 : ws[i]);
      }
    }
  }
  return out;
}

}  // namespace densest
