#include "graph/directed_graph.h"

namespace densest {

DirectedGraph DirectedGraph::FromEdgeList(const EdgeList& arcs) {
  DirectedGraph g;
  g.num_nodes_ = arcs.num_nodes();
  g.num_edges_ = arcs.num_edges();

  bool weighted = false;
  for (const Edge& e : arcs.edges()) {
    if (e.w != 1.0) {
      weighted = true;
      break;
    }
  }

  std::vector<EdgeId> out_counts(g.num_nodes_ + 1, 0);
  std::vector<EdgeId> in_counts(g.num_nodes_ + 1, 0);
  for (const Edge& e : arcs.edges()) {
    ++out_counts[e.u + 1];
    ++in_counts[e.v + 1];
    g.total_weight_ += e.w;
  }
  for (NodeId i = 0; i < g.num_nodes_; ++i) {
    out_counts[i + 1] += out_counts[i];
    in_counts[i + 1] += in_counts[i];
  }
  g.out_offsets_ = out_counts;
  g.in_offsets_ = in_counts;

  g.out_neighbors_.resize(g.num_edges_);
  g.in_neighbors_.resize(g.num_edges_);
  if (weighted) g.out_weights_.resize(g.num_edges_);
  std::vector<EdgeId> out_cursor = g.out_offsets_;
  std::vector<EdgeId> in_cursor = g.in_offsets_;
  for (const Edge& e : arcs.edges()) {
    EdgeId po = out_cursor[e.u]++;
    g.out_neighbors_[po] = e.v;
    if (weighted) g.out_weights_[po] = e.w;
    g.in_neighbors_[in_cursor[e.v]++] = e.u;
  }
  return g;
}

EdgeList DirectedGraph::ToEdgeList() const {
  EdgeList out(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    auto nbrs = OutNeighbors(u);
    auto ws = OutNeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      out.Add(u, nbrs[i], ws.empty() ? 1.0 : ws[i]);
    }
  }
  return out;
}

}  // namespace densest
