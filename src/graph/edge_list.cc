#include "graph/edge_list.h"

#include <algorithm>
#include <utility>

namespace densest {

void EdgeList::Add(NodeId u, NodeId v, Weight w) {
  edges_.emplace_back(u, v, w);
  NodeId needed = std::max(u, v) + 1;
  if (needed > num_nodes_) num_nodes_ = needed;
}

void EdgeList::Append(const EdgeList& other) {
  edges_.insert(edges_.end(), other.edges_.begin(), other.edges_.end());
  set_num_nodes(other.num_nodes());
}

Weight EdgeList::TotalWeight() const {
  Weight total = 0;
  for (const Edge& e : edges_) total += e.w;
  return total;
}

void EdgeList::CanonicalizeUndirected() {
  for (Edge& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
}

void EdgeList::DeduplicateSummingWeights() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  size_t out = 0;
  for (size_t i = 0; i < edges_.size();) {
    Edge merged = edges_[i];
    size_t j = i + 1;
    while (j < edges_.size() && edges_[j].u == merged.u && edges_[j].v == merged.v) {
      merged.w += edges_[j].w;
      ++j;
    }
    edges_[out++] = merged;
    i = j;
  }
  edges_.resize(out);
}

EdgeId EdgeList::RemoveSelfLoops() {
  size_t before = edges_.size();
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.u == e.v; }),
               edges_.end());
  return before - edges_.size();
}

}  // namespace densest
