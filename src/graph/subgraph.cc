#include "graph/subgraph.h"

#include <bit>
#include <cmath>

namespace densest {

std::vector<NodeId> NodeSet::ToVector() const {
  std::vector<NodeId> out;
  out.reserve(count_);
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      out.push_back(static_cast<NodeId>(w * 64 + std::countr_zero(word)));
      word &= word - 1;  // clear the lowest set bit
    }
  }
  return out;
}

NodeSet NodeSet::FromVector(NodeId n, const std::vector<NodeId>& members) {
  NodeSet s(n);
  for (NodeId u : members) s.Insert(u);
  return s;
}

UndirectedGraph InducedSubgraph(const UndirectedGraph& g, const NodeSet& nodes,
                                std::vector<NodeId>* mapping) {
  std::vector<NodeId> old_to_new(g.num_nodes(), kInvalidNode);
  std::vector<NodeId> new_to_old;
  new_to_old.reserve(nodes.size());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (nodes.Contains(u)) {
      old_to_new[u] = static_cast<NodeId>(new_to_old.size());
      new_to_old.push_back(u);
    }
  }
  EdgeList edges(static_cast<NodeId>(new_to_old.size()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!nodes.Contains(u)) continue;
    auto nbrs = g.Neighbors(u);
    auto ws = g.NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      NodeId v = nbrs[i];
      if (v >= u && nodes.Contains(v)) {
        edges.Add(old_to_new[u], old_to_new[v], ws.empty() ? 1.0 : ws[i]);
      }
    }
  }
  if (mapping != nullptr) *mapping = std::move(new_to_old);
  return UndirectedGraph::FromEdgeList(edges);
}

DirectedGraph InducedSubgraphDirected(const DirectedGraph& g,
                                      const NodeSet& nodes,
                                      std::vector<NodeId>* mapping) {
  std::vector<NodeId> old_to_new(g.num_nodes(), kInvalidNode);
  std::vector<NodeId> new_to_old;
  new_to_old.reserve(nodes.size());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (nodes.Contains(u)) {
      old_to_new[u] = static_cast<NodeId>(new_to_old.size());
      new_to_old.push_back(u);
    }
  }
  EdgeList arcs(static_cast<NodeId>(new_to_old.size()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!nodes.Contains(u)) continue;
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutNeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      NodeId v = nbrs[i];
      if (nodes.Contains(v)) {
        arcs.Add(old_to_new[u], old_to_new[v], ws.empty() ? 1.0 : ws[i]);
      }
    }
  }
  if (mapping != nullptr) *mapping = std::move(new_to_old);
  return DirectedGraph::FromEdgeList(arcs);
}

InducedEdgeCount CountInducedEdges(const UndirectedGraph& g,
                                   const NodeSet& nodes) {
  InducedEdgeCount out;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!nodes.Contains(u)) continue;
    auto nbrs = g.Neighbors(u);
    auto ws = g.NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      NodeId v = nbrs[i];
      if (v >= u && nodes.Contains(v)) {
        ++out.edges;
        out.weight += ws.empty() ? 1.0 : ws[i];
      }
    }
  }
  return out;
}

double InducedDensity(const UndirectedGraph& g, const NodeSet& nodes) {
  if (nodes.empty()) return 0.0;
  return CountInducedEdges(g, nodes).weight / static_cast<double>(nodes.size());
}

double InducedDensityDirected(const DirectedGraph& g, const NodeSet& s,
                              const NodeSet& t) {
  if (s.empty() || t.empty()) return 0.0;
  Weight total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!s.Contains(u)) continue;
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutNeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (t.Contains(nbrs[i])) total += ws.empty() ? 1.0 : ws[i];
    }
  }
  return total / std::sqrt(static_cast<double>(s.size()) *
                           static_cast<double>(t.size()));
}

}  // namespace densest
