// Copyright 2026 The densest Authors.
// Descriptive statistics over graphs (degree distribution, density report).

#ifndef DENSEST_GRAPH_STATS_H_
#define DENSEST_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/directed_graph.h"
#include "graph/undirected_graph.h"

namespace densest {

/// \brief Summary parameters of a graph, as in the paper's Table 1.
struct GraphStats {
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;
  double avg_degree = 0;
  NodeId max_degree = 0;
  double density = 0;       ///< |E| / |V| (half the average degree).
  NodeId isolated_nodes = 0;
};

/// Computes summary stats for an undirected graph.
GraphStats ComputeStats(const UndirectedGraph& g);
/// Computes summary stats for a directed graph (max over in/out degree).
GraphStats ComputeStats(const DirectedGraph& g);

/// Degree histogram: entry d is the number of nodes with degree d.
std::vector<EdgeId> DegreeHistogram(const UndirectedGraph& g);

/// Fits log(count) ~ alpha * log(degree) by least squares over nonzero
/// degrees; returns the estimated power-law exponent (negated slope).
/// Returns 0 for degenerate inputs.
double EstimatePowerLawExponent(const UndirectedGraph& g);

/// Human-readable one-liner, e.g. "|V|=976K |E|=7.6M avgdeg=15.6 maxdeg=…".
std::string FormatStats(const GraphStats& s);

}  // namespace densest

#endif  // DENSEST_GRAPH_STATS_H_
