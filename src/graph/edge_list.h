// Copyright 2026 The densest Authors.
// A flat edge list: the universal interchange format between generators,
// IO, streams, and CSR graph construction.

#ifndef DENSEST_GRAPH_EDGE_LIST_H_
#define DENSEST_GRAPH_EDGE_LIST_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace densest {

/// \brief A list of edges plus the number of nodes in the graph.
///
/// Nodes are the contiguous range [0, num_nodes). The list may be directed
/// or undirected depending on how the consumer interprets it; undirected
/// consumers treat each entry as one undirected edge (not two arcs).
class EdgeList {
 public:
  EdgeList() = default;
  /// Creates an edge list over `num_nodes` nodes with no edges.
  explicit EdgeList(NodeId num_nodes) : num_nodes_(num_nodes) {}
  /// Creates an edge list from existing edges.
  EdgeList(NodeId num_nodes, std::vector<Edge> edges)
      : num_nodes_(num_nodes), edges_(std::move(edges)) {}

  /// Number of nodes (ids are [0, num_nodes())).
  NodeId num_nodes() const { return num_nodes_; }
  /// Raises the node count (never lowers it).
  void set_num_nodes(NodeId n) { if (n > num_nodes_) num_nodes_ = n; }

  /// Number of edges.
  EdgeId num_edges() const { return edges_.size(); }
  /// True iff there are no edges.
  bool empty() const { return edges_.empty(); }

  /// Appends an edge; grows the node range to cover its endpoints.
  void Add(NodeId u, NodeId v, Weight w = 1.0);

  /// Appends all edges of `other` (node counts are merged).
  void Append(const EdgeList& other);

  /// Read access to the underlying edges.
  const std::vector<Edge>& edges() const { return edges_; }
  /// Mutable access (used by canonicalization and shufflers).
  std::vector<Edge>& mutable_edges() { return edges_; }

  /// Total weight of all edges.
  Weight TotalWeight() const;

  /// Reorders endpoints so u <= v within each edge (undirected canonical
  /// form). Does not deduplicate.
  void CanonicalizeUndirected();

  /// Sorts edges lexicographically and merges duplicates by summing
  /// weights. Self-loops are kept; call RemoveSelfLoops first if undesired.
  void DeduplicateSummingWeights();

  /// Drops all edges with u == v. Returns the number removed.
  EdgeId RemoveSelfLoops();

 private:
  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace densest

#endif  // DENSEST_GRAPH_EDGE_LIST_H_
