#include "graph/graph_builder.h"

namespace densest {

StatusOr<EdgeList> GraphBuilder::BuildEdgeList(bool undirected) const {
  EdgeList cleaned = edges_;
  for (const Edge& e : cleaned.edges()) {
    if (e.w < 0) {
      return Status::InvalidArgument("negative edge weight");
    }
  }
  if (options_.ignore_weights) {
    for (Edge& e : cleaned.mutable_edges()) e.w = 1.0;
  }
  if (options_.remove_self_loops) cleaned.RemoveSelfLoops();
  if (undirected) cleaned.CanonicalizeUndirected();
  if (options_.deduplicate) cleaned.DeduplicateSummingWeights();
  if (options_.ignore_weights) {
    // Re-flatten: merged duplicates must not turn into weight-2 edges.
    for (Edge& e : cleaned.mutable_edges()) e.w = 1.0;
  }
  return cleaned;
}

StatusOr<UndirectedGraph> GraphBuilder::BuildUndirected() const {
  StatusOr<EdgeList> cleaned = BuildEdgeList(/*undirected=*/true);
  if (!cleaned.ok()) return cleaned.status();
  return UndirectedGraph::FromEdgeList(*cleaned);
}

StatusOr<DirectedGraph> GraphBuilder::BuildDirected() const {
  StatusOr<EdgeList> cleaned = BuildEdgeList(/*undirected=*/false);
  if (!cleaned.ok()) return cleaned.status();
  return DirectedGraph::FromEdgeList(*cleaned);
}

}  // namespace densest
