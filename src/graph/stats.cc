#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace densest {

GraphStats ComputeStats(const UndirectedGraph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    NodeId d = g.Degree(u);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.isolated_nodes;
  }
  if (s.num_nodes > 0) {
    s.avg_degree = 2.0 * static_cast<double>(s.num_edges) /
                   static_cast<double>(s.num_nodes);
    s.density = static_cast<double>(s.num_edges) /
                static_cast<double>(s.num_nodes);
  }
  return s;
}

GraphStats ComputeStats(const DirectedGraph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    NodeId d = std::max(g.OutDegree(u), g.InDegree(u));
    s.max_degree = std::max(s.max_degree, d);
    if (g.OutDegree(u) == 0 && g.InDegree(u) == 0) ++s.isolated_nodes;
  }
  if (s.num_nodes > 0) {
    s.avg_degree = static_cast<double>(s.num_edges) /
                   static_cast<double>(s.num_nodes);
    s.density = s.avg_degree;
  }
  return s;
}

std::vector<EdgeId> DegreeHistogram(const UndirectedGraph& g) {
  std::vector<EdgeId> hist(g.MaxDegree() + 1, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) ++hist[g.Degree(u)];
  return hist;
}

double EstimatePowerLawExponent(const UndirectedGraph& g) {
  std::vector<EdgeId> hist = DegreeHistogram(g);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t d = 1; d < hist.size(); ++d) {
    if (hist[d] == 0) continue;
    double x = std::log(static_cast<double>(d));
    double y = std::log(static_cast<double>(hist[d]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  double slope = (n * sxy - sx * sy) / denom;
  return -slope;
}

namespace {

std::string Humanize(double v) {
  std::ostringstream os;
  os.precision(3);
  if (v >= 1e9) {
    os << v / 1e9 << "B";
  } else if (v >= 1e6) {
    os << v / 1e6 << "M";
  } else if (v >= 1e3) {
    os << v / 1e3 << "K";
  } else {
    os << v;
  }
  return os.str();
}

}  // namespace

std::string FormatStats(const GraphStats& s) {
  std::ostringstream os;
  os << "|V|=" << Humanize(static_cast<double>(s.num_nodes))
     << " |E|=" << Humanize(static_cast<double>(s.num_edges))
     << " avgdeg=" << s.avg_degree << " maxdeg=" << s.max_degree
     << " rho(V)=" << s.density;
  return os.str();
}

}  // namespace densest
