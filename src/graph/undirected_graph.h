// Copyright 2026 The densest Authors.
// Immutable CSR (compressed sparse row) undirected graph.

#ifndef DENSEST_GRAPH_UNDIRECTED_GRAPH_H_
#define DENSEST_GRAPH_UNDIRECTED_GRAPH_H_

#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"

namespace densest {

/// \brief Immutable undirected graph in CSR form.
///
/// Each undirected edge {u, v} is stored twice (in u's and v's adjacency
/// list). Weights are stored only for weighted graphs; unweighted graphs
/// report weight 1.0 per edge. Construct via GraphBuilder or FromEdgeList.
class UndirectedGraph {
 public:
  UndirectedGraph() = default;

  /// Builds a CSR graph from an edge list. Each entry of `edges` is one
  /// undirected edge; self-loops and duplicates are kept as given (use
  /// GraphBuilder for cleaning policies).
  static UndirectedGraph FromEdgeList(const EdgeList& edges);

  /// Number of nodes.
  NodeId num_nodes() const { return num_nodes_; }
  /// Number of undirected edges.
  EdgeId num_edges() const { return num_edges_; }
  /// Sum of all edge weights (== num_edges() for unweighted graphs).
  Weight total_weight() const { return total_weight_; }
  /// True iff any edge carries a weight different from 1.0.
  bool is_weighted() const { return !weights_.empty(); }
  /// True iff any edge is a self-loop (u == u). Lets pass kernels pick a
  /// tighter inner loop for the overwhelmingly common loop-free case.
  bool has_self_loops() const { return has_self_loops_; }

  /// Degree of node u (number of incident edge slots; a self-loop counts 1).
  NodeId Degree(NodeId u) const {
    return static_cast<NodeId>(offsets_[u + 1] - offsets_[u]);
  }
  /// Sum of incident edge weights of node u.
  Weight WeightedDegree(NodeId u) const;

  /// Neighbors of node u.
  std::span<const NodeId> Neighbors(NodeId u) const {
    return {neighbors_.data() + offsets_[u],
            static_cast<size_t>(offsets_[u + 1] - offsets_[u])};
  }
  /// Weights parallel to Neighbors(u); empty span for unweighted graphs.
  std::span<const Weight> NeighborWeights(NodeId u) const {
    if (weights_.empty()) return {};
    return {weights_.data() + offsets_[u],
            static_cast<size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Density of the whole graph: total_weight / num_nodes (0 if empty).
  double Density() const {
    return num_nodes_ == 0 ? 0.0
                           : total_weight_ / static_cast<double>(num_nodes_);
  }

  /// Maximum degree over all nodes (0 for the empty graph).
  NodeId MaxDegree() const;

  /// Re-materializes the edge list (each undirected edge once, u <= v;
  /// self-loops emitted once).
  EdgeList ToEdgeList() const;

 private:
  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  Weight total_weight_ = 0;
  bool has_self_loops_ = false;
  std::vector<EdgeId> offsets_;    // size num_nodes_ + 1
  std::vector<NodeId> neighbors_;  // size 2 * num_edges_ (self loop: 1 slot)
  std::vector<Weight> weights_;    // parallel to neighbors_, empty if unweighted
};

}  // namespace densest

#endif  // DENSEST_GRAPH_UNDIRECTED_GRAPH_H_
