// Copyright 2026 The densest Authors.
// The epoch-published serving plane of the dynamic service: everything a
// density / membership / snapshot query needs to answer without touching
// the writer — the scalar Answer, the update-stream prefix it corresponds
// to, and a membership bitset of the witnessing node set — double-written
// behind an EpochSeqLock (common/epoch.h) so a pool of readers snapshots
// it wait-free-with-retry while the single writer streams updates.
//
// Memory-ordering contract (the seqlock discipline, spelled out once here
// and relied on by QueryService and the chaos/stress harnesses):
//   - Publish() is writer-only: BeginWrite (odd, release fence), relaxed
//     stores of every payload word, EndWrite (even, release store).
//   - Every Read* runs ReadBegin (acquire, skips odd) -> relaxed payload
//     loads -> ReadRetry (acquire fence, re-read) and retries on mismatch,
//     so a returned snapshot is bit-for-bit one publication's payload —
//     never a blend of two — and carries that publication's epoch.
//   - Payload words are relaxed std::atomics, not plain memory: the
//     speculative reads a plain-memory seqlock discards after the fact
//     are data races under the C++ model and under TSan; relaxed atomics
//     make them defined while compiling to plain moves on x86-64/ARM64.
//
// The writer never blocks (no reader can hold it up), and readers never
// block each other; a reader only retries while a write is actually in
// flight, which lasts O(n/64 + |S|) word stores.

#ifndef DENSEST_SERVE_ANSWER_PLANE_H_
#define DENSEST_SERVE_ANSWER_PLANE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/epoch.h"
#include "common/timer.h"
#include "core/answer.h"
#include "graph/types.h"

namespace densest {

/// \brief One published serving state: the Answer, the absolute update
/// prefix it was computed at, and the witnessing node set.
struct PlaneSnapshot {
  Answer answer;                ///< answer.epoch names the publication
  uint64_t prefix_updates = 0;  ///< updates applied when published
  std::vector<NodeId> members;  ///< witnessing node set, ascending ids
};

/// \brief Double-buffer-free single plane behind a seqlock: the payload is
/// small enough (a handful of scalars + n/64 bitset words) that one
/// versioned plane beats two alternating ones — readers validate instead
/// of chasing a current-plane pointer, and the writer touches each word
/// exactly once per publication. Implements the AnswerSink seam, which is
/// how ReplayUpdates publishes into it without dynamic/ depending on
/// serve/.
class AnswerPlane final : public AnswerSink {
 public:
  /// A plane over the node universe [0, n). No publication yet: readers
  /// see epoch 0 with an empty, certified, zero-density answer.
  explicit AnswerPlane(NodeId n);

  AnswerPlane(const AnswerPlane&) = delete;
  AnswerPlane& operator=(const AnswerPlane&) = delete;

  NodeId num_nodes() const { return num_nodes_; }

  /// Writer-only. Publishes `answer` + the witnessing node set `members`
  /// (ids in [0, n), any order) as of `prefix_updates` applied updates.
  /// O(n/64 + |members|). The answer's epoch field is ignored on input;
  /// the plane assigns the next epoch.
  void Publish(const Answer& answer, std::span<const NodeId> members,
               uint64_t prefix_updates) override;

  /// Publications so far (0 = nothing published yet).
  uint64_t epoch() const { return seq_.epoch(); }

  /// Microseconds since the last Publish() finished (0 before the first
  /// publication: the pre-publication answer is the empty graph's, which
  /// never goes stale). Readable from any thread; this is what the
  /// serve.answer_age_us gauge samples.
  double AgeMicros() const;

  /// One consistent scalar answer; answer.epoch names its publication.
  Answer ReadAnswer() const;

  /// Membership of `v` in the witnessing set, plus the same-publication
  /// answer it belongs to (out-of-range v reads as not-a-member).
  struct Membership {
    bool member = false;
    Answer answer;
  };
  Membership ReadMembership(NodeId v) const;

  /// The full published state — answer, prefix, and the witnessing node
  /// set expanded to ascending ids. O(n/64 + |S|), all one publication.
  PlaneSnapshot ReadSnapshot() const;

  /// Writer-side publication log for the harnesses: when enabled (before
  /// any reader starts), Publish() appends every publication verbatim.
  /// The log is writer-owned plain memory — it may only be read after the
  /// writer is done (join / happens-before), which is how the stress and
  /// chaos oracles use it to check observed snapshots bit-for-bit.
  void EnableWriterLog() { log_enabled_ = true; }
  const std::vector<PlaneSnapshot>& writer_log() const { return writer_log_; }

 private:
  template <typename Fn>
  void ReadConsistent(Fn&& copy_payload) const;

  NodeId num_nodes_;
  EpochSeqLock seq_;
  // Payload: relaxed atomics only (see the file comment).
  std::atomic<double> density_{0};
  std::atomic<double> upper_bound_{0};
  std::atomic<uint32_t> size_{0};
  // Bit 0 certified, bit 1 stale. Starts certified: the pre-publication
  // plane is the empty graph's answer (rho* = 0 <= 0), matching Answer's
  // own default.
  std::atomic<uint32_t> flags_{1};
  std::atomic<uint64_t> prefix_updates_{0};
  std::vector<std::atomic<uint64_t>> member_words_;  // (n + 63) / 64
  WallTimer age_clock_;                     // plane-construction epoch
  std::atomic<int64_t> last_publish_us_{-1};  // age_clock_ at last Publish
  bool log_enabled_ = false;
  std::vector<PlaneSnapshot> writer_log_;  // writer-owned; see EnableWriterLog
};

}  // namespace densest

#endif  // DENSEST_SERVE_ANSWER_PLANE_H_
