// Copyright 2026 The densest Authors.
// The serving front-end of the dynamic service: a pool of reader threads
// draining a bounded queue of batched queries against an AnswerPlane.
//
// Shape: clients call QueryBatch() (synchronous — submit, wait, collect).
// A batch becomes one ticket on a bounded FIFO; reader threads pop
// tickets and answer every query in the batch straight off the plane
// (seqlock reads — the writer is never touched, never blocked). The
// ticket owns copies of the queries and results, so a submitter that
// gives up on its deadline just abandons the ticket and the reader's
// late writes land in ticket-private storage nobody reads.
//
// Backpressure: a full queue rejects the batch immediately with
// kUnavailable — the transient class the repo's retry-with-backoff
// machinery (common/retry.h) already understands — instead of queueing
// into unbounded latency. Deadlines: per-batch via the existing
// CancelToken; an expired token is observed by the submitter's bounded
// wait and by readers at dequeue. SLO tracking: per-query latency
// (enqueue to completion) lands in a common/histogram.h reservoir,
// p50/p99 exposed through stats().
//
// Failpoint seams (fault-injection tests and chaos):
//   serve.enqueue   evaluated on every submit; any armed action sheds the
//                   batch with kUnavailable before it queues
//   serve.dequeue   evaluated by the reader that picks the batch up; any
//                   armed action fails the batch with kUnavailable after
//                   queueing (the client-visible difference is latency)

#ifndef DENSEST_SERVE_QUERY_SERVICE_H_
#define DENSEST_SERVE_QUERY_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/answer.h"
#include "serve/answer_plane.h"

namespace densest {

/// \brief One query against the published serving state.
struct ServeQuery {
  enum class Kind : uint8_t {
    kDensity,     ///< the scalar Answer
    kMembership,  ///< is `node` in the witnessing set (+ the Answer)
    kSnapshot,    ///< the full witnessing node set (+ prefix + Answer)
    kStats,       ///< live metrics exposition (obs/) + the Answer
  };
  Kind kind = Kind::kDensity;
  NodeId node = 0;  ///< kMembership only
};

/// \brief One query's result. `answer` is one untorn publication's state;
/// queries in the same batch may land on different epochs (each is read
/// individually — the batch is a transport unit, not a transaction).
struct ServeResult {
  Answer answer;
  bool member = false;          ///< kMembership
  uint64_t prefix_updates = 0;  ///< kSnapshot: updates applied when published
  std::vector<NodeId> nodes;    ///< kSnapshot: witnessing set, ascending
  std::string stats_text;       ///< kStats: Prometheus-style exposition
};

/// \brief Knobs for the reader pool.
struct QueryServiceOptions {
  /// Reader threads. Must be >= 1.
  size_t num_readers = 4;
  /// Max batches queued (not yet picked up); a submit beyond this sheds
  /// with kUnavailable. Must be >= 1.
  size_t queue_capacity = 64;
  /// Per-batch cancellation/deadline observed by QueryBatch when the call
  /// site passes none. Null = no deadline.
  const CancelToken* cancel = nullptr;
};

/// \brief Serving-side counters and latency SLO summary.
struct QueryServiceStats {
  uint64_t batches_served = 0;
  uint64_t queries_served = 0;
  uint64_t shed = 0;        ///< batches rejected at submit (queue full / failpoint)
  uint64_t failed = 0;      ///< batches failed at dequeue (failpoint)
  uint64_t expired = 0;     ///< batches that hit their deadline / cancel
  double latency_p50_us = 0;
  double latency_p99_us = 0;
  double latency_mean_us = 0;
};

/// \brief N reader threads over a bounded MPMC batch queue. Thread-safe:
/// any number of threads may call QueryBatch concurrently. Destruction
/// stops and joins the readers; in-flight batches complete or expire.
class QueryService {
 public:
  QueryService(const AnswerPlane& plane, const QueryServiceOptions& options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits `queries` as one batch and waits for its results.
  ///   OK                  -> `results` holds one entry per query, in order
  ///   kUnavailable        -> shed (queue full, or an armed serve.* seam);
  ///                          retryable — back off and resubmit
  ///   kCancelled /
  ///   kDeadlineExceeded   -> the batch's token tripped first
  /// The token is the per-call `cancel` if non-null, else options.cancel.
  Status QueryBatch(std::span<const ServeQuery> queries,
                    std::vector<ServeResult>* results,
                    const CancelToken* cancel = nullptr);

  /// Point-in-time counters + latency percentiles (reservoir quantiles).
  QueryServiceStats stats() const;

  /// Stops the readers (idempotent; the destructor calls it). Queued
  /// batches that no reader picked up before the stop expire with
  /// kUnavailable.
  void Stop();

 private:
  /// One submitted batch. Queries/results are ticket-owned copies so an
  /// abandoning submitter and a late reader never share storage.
  struct Ticket {
    std::vector<ServeQuery> queries;
    std::vector<ServeResult> results;
    Status status = Status::OK();
    bool done = false;
    bool abandoned = false;  ///< submitter gave up; drop, don't publish
    const CancelToken* cancel = nullptr;  ///< nulled when abandoned
    double enqueued_us = 0;  ///< service clock at submit
  };

  /// Per-reader latency reservoir: each reader records completions into
  /// its own slot under its own mutex, and stats() combines the slots via
  /// Histogram::Merge() — completion bookkeeping never contends on mu_
  /// with admission.
  struct ReaderSlot {
    mutable Mutex mu;
    Histogram latency_us DENSEST_GUARDED_BY(mu);
  };

  void ReaderLoop(size_t reader_index);
  /// Answers every query in `t` off the plane (no locks held).
  void Serve(Ticket& t) const;
  double NowMicros() const;

  const AnswerPlane& plane_;
  const QueryServiceOptions options_;

  mutable Mutex mu_;
  CondVar work_cv_;   // readers wait: queue non-empty or stopping
  CondVar done_cv_;   // submitters wait: their ticket done
  std::deque<std::shared_ptr<Ticket>> queue_ DENSEST_GUARDED_BY(mu_);
  bool stopping_ DENSEST_GUARDED_BY(mu_) = false;
  uint64_t batches_served_ DENSEST_GUARDED_BY(mu_) = 0;
  uint64_t queries_served_ DENSEST_GUARDED_BY(mu_) = 0;
  uint64_t shed_ DENSEST_GUARDED_BY(mu_) = 0;
  uint64_t failed_ DENSEST_GUARDED_BY(mu_) = 0;
  uint64_t expired_ DENSEST_GUARDED_BY(mu_) = 0;
  std::vector<std::unique_ptr<ReaderSlot>> reader_slots_;  // set in ctor

  std::vector<std::thread> readers_;  // set in ctor, joined in Stop()
  std::chrono::steady_clock::time_point start_;
};

}  // namespace densest

#endif  // DENSEST_SERVE_QUERY_SERVICE_H_
