#include "serve/query_service.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"

namespace densest {

QueryService::QueryService(const AnswerPlane& plane,
                           const QueryServiceOptions& options)
    : plane_(plane),
      options_(options),
      start_(std::chrono::steady_clock::now()) {
  const size_t readers = std::max<size_t>(1, options_.num_readers);
  readers_.reserve(readers);
  for (size_t i = 0; i < readers; ++i) {
    readers_.emplace_back([this] { ReaderLoop(); });
  }
}

QueryService::~QueryService() { Stop(); }

void QueryService::Stop() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  done_cv_.NotifyAll();
  for (std::thread& t : readers_) {
    if (t.joinable()) t.join();
  }
}

double QueryService::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void QueryService::Serve(Ticket& t) const {
  t.results.resize(t.queries.size());
  for (size_t i = 0; i < t.queries.size(); ++i) {
    const ServeQuery& q = t.queries[i];
    ServeResult& r = t.results[i];
    switch (q.kind) {
      case ServeQuery::Kind::kDensity:
        r.answer = plane_.ReadAnswer();
        break;
      case ServeQuery::Kind::kMembership: {
        const AnswerPlane::Membership m = plane_.ReadMembership(q.node);
        r.answer = m.answer;
        r.member = m.member;
        break;
      }
      case ServeQuery::Kind::kSnapshot: {
        PlaneSnapshot snap = plane_.ReadSnapshot();
        r.answer = snap.answer;
        r.prefix_updates = snap.prefix_updates;
        r.nodes = std::move(snap.members);
        break;
      }
    }
  }
}

void QueryService::ReaderLoop() {
  while (true) {
    std::shared_ptr<Ticket> ticket;
    Status status = Status::OK();
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) work_cv_.Wait(mu_);
      if (stopping_) return;
      ticket = std::move(queue_.front());
      queue_.pop_front();
      if (ticket->abandoned) continue;  // submitter already gave up
      // The deadline check must happen while the mutex still pins the
      // token: an abandoning submitter nulls `cancel` under mu_ and only
      // then returns (destroying the token), so outside the lock the
      // pointer may dangle.
      if (ShouldStop(ticket->cancel)) {
        status = ticket->cancel->Check();
      }
    }
    if (status.ok() &&
        DENSEST_FAILPOINT("serve.dequeue") != FailpointAction::kNone) {
      status = Status::Unavailable("injected serve.dequeue fault");
    }
    if (status.ok()) Serve(*ticket);

    MutexLock lock(mu_);
    if (ticket->abandoned) continue;
    ticket->status = status;
    ticket->done = true;
    if (status.ok()) {
      ++batches_served_;
      queries_served_ += ticket->queries.size();
      const double waited = NowMicros() - ticket->enqueued_us;
      for (size_t i = 0; i < ticket->queries.size(); ++i) {
        latency_us_.Add(waited);
      }
    } else if (status.code() == Status::Code::kUnavailable) {
      ++failed_;
    } else {
      ++expired_;
    }
    done_cv_.NotifyAll();
  }
}

Status QueryService::QueryBatch(std::span<const ServeQuery> queries,
                                std::vector<ServeResult>* results,
                                const CancelToken* cancel) {
  if (results == nullptr) {
    return Status::InvalidArgument("QueryBatch: results must be non-null");
  }
  results->clear();
  if (queries.empty()) return Status::OK();
  const CancelToken* token = cancel != nullptr ? cancel : options_.cancel;
  if (Status c = CheckCancel(token); !c.ok()) return c;
  // Admission-side fault seam: an armed action sheds exactly like a full
  // queue would, so clients exercise their retry path.
  if (DENSEST_FAILPOINT("serve.enqueue") != FailpointAction::kNone) {
    MutexLock lock(mu_);
    ++shed_;
    return Status::Unavailable("injected serve.enqueue shed");
  }

  std::shared_ptr<Ticket> ticket = std::make_shared<Ticket>();
  ticket->queries.assign(queries.begin(), queries.end());
  ticket->cancel = token;

  MutexLock lock(mu_);
  if (stopping_) return Status::Unavailable("query service stopped");
  const size_t capacity = std::max<size_t>(1, options_.queue_capacity);
  if (queue_.size() >= capacity) {
    ++shed_;
    return Status::Unavailable("query queue full (backpressure)");
  }
  ticket->enqueued_us = NowMicros();
  queue_.push_back(ticket);
  work_cv_.NotifyOne();

  while (!ticket->done) {
    if (stopping_) {
      ticket->abandoned = true;
      ticket->cancel = nullptr;
      return Status::Unavailable("query service stopped");
    }
    if (ShouldStop(token)) {
      // Give up on the batch but leave its storage to the ticket: a
      // reader that already picked it up writes into ticket-owned
      // vectors nobody will read.
      ticket->abandoned = true;
      ticket->cancel = nullptr;
      ++expired_;
      return token->Check();
    }
    if (token != nullptr) {
      // Bounded wait so the deadline is observed within ~1ms even if no
      // completion notification arrives.
      done_cv_.WaitFor(mu_, 1.0);
    } else {
      done_cv_.Wait(mu_);
    }
  }
  if (ticket->status.ok()) *results = std::move(ticket->results);
  return ticket->status;
}

QueryServiceStats QueryService::stats() const {
  MutexLock lock(mu_);
  QueryServiceStats s;
  s.batches_served = batches_served_;
  s.queries_served = queries_served_;
  s.shed = shed_;
  s.failed = failed_;
  s.expired = expired_;
  s.latency_p50_us = latency_us_.Quantile(0.5);
  s.latency_p99_us = latency_us_.Quantile(0.99);
  s.latency_mean_us = latency_us_.Mean();
  return s;
}

}  // namespace densest
