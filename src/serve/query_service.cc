#include "serve/query_service.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace densest {

QueryService::QueryService(const AnswerPlane& plane,
                           const QueryServiceOptions& options)
    : plane_(plane),
      options_(options),
      start_(std::chrono::steady_clock::now()) {
  const size_t readers = std::max<size_t>(1, options_.num_readers);
  reader_slots_.reserve(readers);
  for (size_t i = 0; i < readers; ++i) {
    reader_slots_.push_back(std::make_unique<ReaderSlot>());
  }
  readers_.reserve(readers);
  for (size_t i = 0; i < readers; ++i) {
    readers_.emplace_back([this, i] { ReaderLoop(i); });
  }
}

QueryService::~QueryService() { Stop(); }

void QueryService::Stop() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  done_cv_.NotifyAll();
  for (std::thread& t : readers_) {
    if (t.joinable()) t.join();
  }
}

double QueryService::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void QueryService::Serve(Ticket& t) const {
  DENSEST_TRACE_SPAN("serve.batch");
  t.results.resize(t.queries.size());
  for (size_t i = 0; i < t.queries.size(); ++i) {
    const ServeQuery& q = t.queries[i];
    ServeResult& r = t.results[i];
    switch (q.kind) {
      case ServeQuery::Kind::kDensity:
        r.answer = plane_.ReadAnswer();
        break;
      case ServeQuery::Kind::kMembership: {
        const AnswerPlane::Membership m = plane_.ReadMembership(q.node);
        r.answer = m.answer;
        r.member = m.member;
        break;
      }
      case ServeQuery::Kind::kSnapshot: {
        PlaneSnapshot snap = plane_.ReadSnapshot();
        r.answer = snap.answer;
        r.prefix_updates = snap.prefix_updates;
        r.nodes = std::move(snap.members);
        break;
      }
      case ServeQuery::Kind::kStats: {
        // Sample the staleness gauge right before rendering, so the
        // exposition a client scrapes through the service carries the age
        // of the answer it would have been served alongside.
        DENSEST_METRIC_GAUGE("serve.answer_age_us").Set(plane_.AgeMicros());
        DENSEST_METRIC_COUNTER("serve.stats_queries").Inc();
        r.answer = plane_.ReadAnswer();
        r.stats_text = obs::RenderMetricsPrometheus();
        break;
      }
    }
  }
}

void QueryService::ReaderLoop(size_t reader_index) {
  while (true) {
    std::shared_ptr<Ticket> ticket;
    Status status = Status::OK();
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) work_cv_.Wait(mu_);
      if (stopping_) return;
      ticket = std::move(queue_.front());
      queue_.pop_front();
      DENSEST_METRIC_GAUGE("serve.queue_depth")
          .Set(static_cast<double>(queue_.size()));
      if (ticket->abandoned) continue;  // submitter already gave up
      // The deadline check must happen while the mutex still pins the
      // token: an abandoning submitter nulls `cancel` under mu_ and only
      // then returns (destroying the token), so outside the lock the
      // pointer may dangle.
      if (ShouldStop(ticket->cancel)) {
        status = ticket->cancel->Check();
      }
    }
    if (status.ok() &&
        DENSEST_FAILPOINT("serve.dequeue") != FailpointAction::kNone) {
      status = Status::Unavailable("injected serve.dequeue fault");
    }
    if (status.ok()) Serve(*ticket);

    double waited = -1;
    size_t served = 0;
    {
      MutexLock lock(mu_);
      if (ticket->abandoned) continue;
      ticket->status = status;
      ticket->done = true;
      if (status.ok()) {
        ++batches_served_;
        served = ticket->queries.size();
        queries_served_ += served;
        waited = NowMicros() - ticket->enqueued_us;
        DENSEST_METRIC_COUNTER("serve.batches_served").Inc();
        DENSEST_METRIC_COUNTER("serve.queries_served").Inc(served);
      } else if (status.code() == Status::Code::kUnavailable) {
        ++failed_;
        DENSEST_METRIC_COUNTER("serve.failed").Inc();
      } else {
        ++expired_;
        DENSEST_METRIC_COUNTER("serve.expired").Inc();
      }
      done_cv_.NotifyAll();
    }
    if (waited >= 0) {
      DENSEST_METRIC_HISTOGRAM("serve.batch_latency_us").Observe(waited);
      // Per-query latency lands in this reader's own reservoir, off mu_;
      // stats() merges the slots (Histogram::Merge).
      ReaderSlot& slot = *reader_slots_[reader_index];
      MutexLock lock(slot.mu);
      for (size_t i = 0; i < served; ++i) {
        slot.latency_us.Add(waited);
      }
    }
  }
}

Status QueryService::QueryBatch(std::span<const ServeQuery> queries,
                                std::vector<ServeResult>* results,
                                const CancelToken* cancel) {
  if (results == nullptr) {
    return Status::InvalidArgument("QueryBatch: results must be non-null");
  }
  results->clear();
  if (queries.empty()) return Status::OK();
  const CancelToken* token = cancel != nullptr ? cancel : options_.cancel;
  if (Status c = CheckCancel(token); !c.ok()) return c;
  // Admission-side fault seam: an armed action sheds exactly like a full
  // queue would, so clients exercise their retry path.
  if (DENSEST_FAILPOINT("serve.enqueue") != FailpointAction::kNone) {
    MutexLock lock(mu_);
    ++shed_;
    DENSEST_METRIC_COUNTER("serve.shed").Inc();
    return Status::Unavailable("injected serve.enqueue shed");
  }

  std::shared_ptr<Ticket> ticket = std::make_shared<Ticket>();
  ticket->queries.assign(queries.begin(), queries.end());
  ticket->cancel = token;

  MutexLock lock(mu_);
  if (stopping_) return Status::Unavailable("query service stopped");
  const size_t capacity = std::max<size_t>(1, options_.queue_capacity);
  if (queue_.size() >= capacity) {
    ++shed_;
    DENSEST_METRIC_COUNTER("serve.shed").Inc();
    return Status::Unavailable("query queue full (backpressure)");
  }
  ticket->enqueued_us = NowMicros();
  queue_.push_back(ticket);
  DENSEST_METRIC_GAUGE("serve.queue_depth")
      .Set(static_cast<double>(queue_.size()));
  work_cv_.NotifyOne();

  while (!ticket->done) {
    if (stopping_) {
      ticket->abandoned = true;
      ticket->cancel = nullptr;
      return Status::Unavailable("query service stopped");
    }
    if (ShouldStop(token)) {
      // Give up on the batch but leave its storage to the ticket: a
      // reader that already picked it up writes into ticket-owned
      // vectors nobody will read.
      ticket->abandoned = true;
      ticket->cancel = nullptr;
      ++expired_;
      DENSEST_METRIC_COUNTER("serve.expired").Inc();
      return token->Check();
    }
    if (token != nullptr) {
      // Bounded wait so the deadline is observed within ~1ms even if no
      // completion notification arrives.
      done_cv_.WaitFor(mu_, 1.0);
    } else {
      done_cv_.Wait(mu_);
    }
  }
  if (ticket->status.ok()) *results = std::move(ticket->results);
  return ticket->status;
}

QueryServiceStats QueryService::stats() const {
  // Combine the per-reader reservoirs first (slot locks only), then take
  // mu_ for the counters — the two lock levels never nest.
  Histogram merged;
  for (const std::unique_ptr<ReaderSlot>& slot : reader_slots_) {
    MutexLock lock(slot->mu);
    merged.Merge(slot->latency_us);
  }
  MutexLock lock(mu_);
  QueryServiceStats s;
  s.batches_served = batches_served_;
  s.queries_served = queries_served_;
  s.shed = shed_;
  s.failed = failed_;
  s.expired = expired_;
  s.latency_p50_us = merged.Quantile(0.5);
  s.latency_p99_us = merged.Quantile(0.99);
  s.latency_mean_us = merged.Mean();
  return s;
}

}  // namespace densest
