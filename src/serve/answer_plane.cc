#include "serve/answer_plane.h"

#include <algorithm>
#include <bit>

#include "obs/metrics.h"

namespace densest {

namespace {
constexpr uint32_t kCertifiedBit = 1u << 0;
constexpr uint32_t kStaleBit = 1u << 1;
}  // namespace

AnswerPlane::AnswerPlane(NodeId n)
    : num_nodes_(n),
      member_words_((static_cast<size_t>(n) + 63) / 64) {
  for (std::atomic<uint64_t>& w : member_words_) {
    w.store(0, std::memory_order_relaxed);
  }
}

void AnswerPlane::Publish(const Answer& answer,
                          std::span<const NodeId> members,
                          uint64_t prefix_updates) {
  WallTimer publish_timer;
  seq_.BeginWrite();
  density_.store(answer.density, std::memory_order_relaxed);
  upper_bound_.store(answer.upper_bound, std::memory_order_relaxed);
  size_.store(answer.size, std::memory_order_relaxed);
  flags_.store((answer.certified ? kCertifiedBit : 0u) |
                   (answer.stale ? kStaleBit : 0u),
               std::memory_order_relaxed);
  prefix_updates_.store(prefix_updates, std::memory_order_relaxed);
  // Full clear + set: n/64 + |S| relaxed stores. Cheap against the ~1k
  // updates a publication typically amortizes over, and it keeps the
  // payload free of any cross-publication state a torn writer could leak.
  for (std::atomic<uint64_t>& w : member_words_) {
    w.store(0, std::memory_order_relaxed);
  }
  for (NodeId v : members) {
    if (v >= num_nodes_) continue;
    std::atomic<uint64_t>& w = member_words_[v >> 6];
    w.store(w.load(std::memory_order_relaxed) | (uint64_t{1} << (v & 63)),
            std::memory_order_relaxed);
  }
  seq_.EndWrite();
  last_publish_us_.store(static_cast<int64_t>(age_clock_.ElapsedMicros()),
                         std::memory_order_relaxed);
  DENSEST_METRIC_COUNTER("serve.publications").Inc();
  DENSEST_METRIC_GAUGE("serve.answer_epoch")
      .Set(static_cast<double>(seq_.epoch()));
  DENSEST_METRIC_HISTOGRAM("serve.publish_latency_us")
      .Observe(static_cast<double>(publish_timer.ElapsedMicros()));

  if (log_enabled_) {
    PlaneSnapshot logged;
    logged.answer = answer;
    logged.answer.epoch = seq_.epoch();
    logged.prefix_updates = prefix_updates;
    logged.members.assign(members.begin(), members.end());
    std::sort(logged.members.begin(), logged.members.end());
    writer_log_.push_back(std::move(logged));
  }
}

double AnswerPlane::AgeMicros() const {
  const int64_t last = last_publish_us_.load(std::memory_order_relaxed);
  if (last < 0) return 0;
  const int64_t now = static_cast<int64_t>(age_clock_.ElapsedMicros());
  return now > last ? static_cast<double>(now - last) : 0;
}

/// Runs `copy_payload` under the seqlock read protocol until it copied one
/// untorn publication. The callback does relaxed payload loads only.
template <typename Fn>
void AnswerPlane::ReadConsistent(Fn&& copy_payload) const {
  while (true) {
    const uint64_t begin = seq_.ReadBegin();
    copy_payload(EpochSeqLock::EpochOf(begin));
    if (!seq_.ReadRetry(begin)) return;
  }
}

Answer AnswerPlane::ReadAnswer() const {
  Answer out;
  ReadConsistent([&](uint64_t epoch) {
    out.density = density_.load(std::memory_order_relaxed);
    out.upper_bound = upper_bound_.load(std::memory_order_relaxed);
    out.size = size_.load(std::memory_order_relaxed);
    const uint32_t flags = flags_.load(std::memory_order_relaxed);
    out.certified = (flags & kCertifiedBit) != 0;
    out.stale = (flags & kStaleBit) != 0;
    out.epoch = epoch;
  });
  return out;
}

AnswerPlane::Membership AnswerPlane::ReadMembership(NodeId v) const {
  Membership out;
  ReadConsistent([&](uint64_t epoch) {
    out.member =
        v < num_nodes_ &&
        (member_words_[v >> 6].load(std::memory_order_relaxed) >>
             (v & 63) & 1) != 0;
    out.answer.density = density_.load(std::memory_order_relaxed);
    out.answer.upper_bound = upper_bound_.load(std::memory_order_relaxed);
    out.answer.size = size_.load(std::memory_order_relaxed);
    const uint32_t flags = flags_.load(std::memory_order_relaxed);
    out.answer.certified = (flags & kCertifiedBit) != 0;
    out.answer.stale = (flags & kStaleBit) != 0;
    out.answer.epoch = epoch;
  });
  return out;
}

PlaneSnapshot AnswerPlane::ReadSnapshot() const {
  PlaneSnapshot out;
  std::vector<uint64_t> words(member_words_.size());
  ReadConsistent([&](uint64_t epoch) {
    out.answer.density = density_.load(std::memory_order_relaxed);
    out.answer.upper_bound = upper_bound_.load(std::memory_order_relaxed);
    out.answer.size = size_.load(std::memory_order_relaxed);
    const uint32_t flags = flags_.load(std::memory_order_relaxed);
    out.answer.certified = (flags & kCertifiedBit) != 0;
    out.answer.stale = (flags & kStaleBit) != 0;
    out.answer.epoch = epoch;
    out.prefix_updates = prefix_updates_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < member_words_.size(); ++i) {
      words[i] = member_words_[i].load(std::memory_order_relaxed);
    }
  });
  out.members.clear();
  for (size_t i = 0; i < words.size(); ++i) {
    uint64_t w = words[i];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.members.push_back(static_cast<NodeId>(i * 64 + bit));
      w &= w - 1;
    }
  }
  return out;
}

}  // namespace densest
