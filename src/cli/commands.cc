#include "cli/commands.h"

#include <array>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "core/enumerate.h"
#include "sketch/sketched_algorithm1.h"
#include "flow/goldberg.h"
#include "gen/chung_lu.h"
#include "gen/datasets.h"
#include "gen/erdos_renyi.h"
#include "graph/graph_builder.h"
#include "graph/stats.h"
#include "io/edge_list_io.h"
#include "dynamic/chaos.h"
#include "dynamic/dynamic_densest.h"
#include "dynamic/replay.h"
#include "dynamic/snapshot.h"
#include "mapreduce/mr_densest.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/answer_plane.h"
#include "serve/query_service.h"
#include "stream/file_stream.h"
#include "stream/memory_stream.h"
#include "stream/update_stream.h"

namespace densest {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// One-line non-zero metrics summary for the --stats-every hooks.
std::string StatsSummaryLine() {
  return obs::MetricsExporter::SummaryLine(
      obs::MetricsRegistry::Get().Collect());
}

/// Loads edges from a text ("u v [w]") or binary (.bin) edge file.
StatusOr<EdgeList> LoadEdges(const std::string& path) {
  if (!EndsWith(path, ".bin")) return ReadEdgeListText(path);
  auto stream = BinaryFileEdgeStream::Open(path);
  if (!stream.ok()) return stream.status();
  EdgeList edges((*stream)->num_nodes());
  Edge e;
  (*stream)->Reset();
  while ((*stream)->Next(&e)) edges.Add(e.u, e.v, e.w);
  // The drain above ends silently on a read error or a truncated file;
  // loading a partial edge set would yield a plausible-looking density.
  if (Status io = (*stream)->status(); !io.ok()) return io;
  edges.set_num_nodes((*stream)->num_nodes());
  return edges;
}

StatusOr<std::string> RequireGraphArg(const Args& args) {
  if (args.positional().empty()) {
    return Status::InvalidArgument("expected a graph file argument");
  }
  return args.positional()[0];
}

Status WriteNodes(const std::string& path, const std::vector<NodeId>& nodes) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (NodeId u : nodes) out << u << '\n';
  return Status::OK();
}

void PrintUndirectedTrace(const UndirectedDensestResult& r,
                          std::ostream& out) {
  out << "pass  nodes  edges  rho  threshold  removed\n";
  for (const PassSnapshot& s : r.trace) {
    out << s.pass << "  " << s.nodes << "  " << s.edges << "  " << s.density
        << "  " << s.threshold << "  " << s.removed << "\n";
  }
}

}  // namespace

Status CmdStats(const Args& args, std::ostream& out) {
  StatusOr<bool> directed = args.GetBool("directed", false);
  if (!directed.ok()) return directed.status();
  StatusOr<std::string> path = RequireGraphArg(args);
  if (!path.ok()) return path.status();
  StatusOr<EdgeList> edges = LoadEdges(*path);
  if (!edges.ok()) return edges.status();

  if (*directed) {
    DirectedGraph g = DirectedGraph::FromEdgeList(*edges);
    out << FormatStats(ComputeStats(g)) << "\n";
  } else {
    UndirectedGraph g = UndirectedGraph::FromEdgeList(*edges);
    GraphStats s = ComputeStats(g);
    out << FormatStats(s) << "\n";
    out << "power-law exponent estimate: " << EstimatePowerLawExponent(g)
        << "\n";
  }
  return Status::OK();
}

Status CmdUndirected(const Args& args, std::ostream& out) {
  StatusOr<double> eps = args.GetDouble("eps", 0.5);
  StatusOr<int64_t> min_size = args.GetInt("min-size", 0);
  StatusOr<int64_t> sketch_buckets = args.GetInt("sketch-buckets", 0);
  StatusOr<int64_t> sketch_tables = args.GetInt("sketch-tables", 5);
  StatusOr<int64_t> compact = args.GetInt("compact-below", 0);
  StatusOr<bool> trace = args.GetBool("trace", false);
  std::string output = args.GetString("output", "");
  for (const Status& s :
       {eps.ok() ? Status::OK() : eps.status(),
        min_size.ok() ? Status::OK() : min_size.status(),
        sketch_buckets.ok() ? Status::OK() : sketch_buckets.status(),
        sketch_tables.ok() ? Status::OK() : sketch_tables.status(),
        compact.ok() ? Status::OK() : compact.status(),
        trace.ok() ? Status::OK() : trace.status()}) {
    if (!s.ok()) return s;
  }
  StatusOr<std::string> path = RequireGraphArg(args);
  if (!path.ok()) return path.status();
  StatusOr<EdgeList> edges = LoadEdges(*path);
  if (!edges.ok()) return edges.status();

  GraphBuilder builder;
  builder.ReserveNodes(edges->num_nodes());
  for (const Edge& e : edges->edges()) builder.Add(e.u, e.v, e.w);
  StatusOr<UndirectedGraph> graph = builder.BuildUndirected();
  if (!graph.ok()) return graph.status();

  UndirectedDensestResult result;
  if (*min_size > 0) {
    Algorithm2Options opt;
    opt.epsilon = *eps;
    opt.min_size = static_cast<NodeId>(*min_size);
    opt.record_trace = *trace;
    StatusOr<UndirectedDensestResult> r = RunAlgorithm2(*graph, opt);
    if (!r.ok()) return r.status();
    result = std::move(*r);
    out << "algorithm 2 (min size " << *min_size << "): ";
  } else if (*sketch_buckets > 0) {
    Algorithm1Options opt;
    opt.epsilon = *eps;
    opt.record_trace = *trace;
    UndirectedGraphStream stream(*graph);
    CountSketchOptions sk;
    sk.buckets = static_cast<int>(*sketch_buckets);
    sk.tables = static_cast<int>(*sketch_tables);
    StatusOr<SketchedResult> r =
        RunSketchedAlgorithm1(stream, sk, /*sketch_seed=*/0x5eed, opt);
    if (!r.ok()) return r.status();
    out << "sketched algorithm 1 (memory ratio " << r->memory_ratio
        << "): ";
    result = std::move(r->result);
  } else {
    Algorithm1Options opt;
    opt.epsilon = *eps;
    opt.record_trace = *trace;
    opt.compact_below_edges = static_cast<EdgeId>(*compact);
    StatusOr<UndirectedDensestResult> r = RunAlgorithm1(*graph, opt);
    if (!r.ok()) return r.status();
    result = std::move(*r);
    out << "algorithm 1: ";
  }
  out << Summarize(result) << "\n";
  if (*trace) PrintUndirectedTrace(result, out);
  if (!output.empty()) return WriteNodes(output, result.nodes);
  return Status::OK();
}

Status CmdDirected(const Args& args, std::ostream& out) {
  StatusOr<double> eps = args.GetDouble("eps", 0.5);
  StatusOr<double> c = args.GetDouble("c", 0.0);
  StatusOr<double> delta = args.GetDouble("delta", 2.0);
  StatusOr<bool> trace = args.GetBool("trace", false);
  for (const Status& s : {eps.ok() ? Status::OK() : eps.status(),
                          c.ok() ? Status::OK() : c.status(),
                          delta.ok() ? Status::OK() : delta.status(),
                          trace.ok() ? Status::OK() : trace.status()}) {
    if (!s.ok()) return s;
  }
  StatusOr<std::string> path = RequireGraphArg(args);
  if (!path.ok()) return path.status();
  StatusOr<EdgeList> edges = LoadEdges(*path);
  if (!edges.ok()) return edges.status();
  DirectedGraph graph = DirectedGraph::FromEdgeList(*edges);

  if (*c > 0) {
    Algorithm3Options opt;
    opt.c = *c;
    opt.epsilon = *eps;
    opt.record_trace = *trace;
    StatusOr<DirectedDensestResult> r = RunAlgorithm3(graph, opt);
    if (!r.ok()) return r.status();
    out << "algorithm 3 (c=" << *c << "): " << Summarize(*r) << "\n";
    if (*trace) {
      out << "pass  |S|  |T|  |E(S,T)|  rho  peel\n";
      for (const DirectedPassSnapshot& s : r->trace) {
        out << s.pass << "  " << s.s_size << "  " << s.t_size << "  "
            << s.weight << "  " << s.density << "  "
            << (s.removed_from_s ? "S" : "T") << "\n";
      }
    }
    return Status::OK();
  }

  CSearchOptions opt;
  opt.delta = *delta;
  opt.epsilon = *eps;
  StatusOr<CSearchResult> r = RunCSearch(graph, opt);
  if (!r.ok()) return r.status();
  out << "c-search over " << r->sweep.size() << " ratios (delta=" << *delta
      << "): best " << Summarize(r->best) << "\n";
  return Status::OK();
}

Status CmdMapReduce(const Args& args, std::ostream& out) {
  StatusOr<double> eps = args.GetDouble("eps", 1.0);
  StatusOr<bool> directed = args.GetBool("directed", false);
  StatusOr<double> c = args.GetDouble("c", 1.0);
  StatusOr<int64_t> spill = args.GetInt("spill-budget", 0);
  StatusOr<int64_t> mappers = args.GetInt("mappers", 2000);
  StatusOr<int64_t> reducers = args.GetInt("reducers", 2000);
  StatusOr<bool> trace = args.GetBool("trace", false);
  for (const Status& s :
       {eps.ok() ? Status::OK() : eps.status(),
        directed.ok() ? Status::OK() : directed.status(),
        c.ok() ? Status::OK() : c.status(),
        spill.ok() ? Status::OK() : spill.status(),
        mappers.ok() ? Status::OK() : mappers.status(),
        reducers.ok() ? Status::OK() : reducers.status(),
        trace.ok() ? Status::OK() : trace.status()}) {
    if (!s.ok()) return s;
  }
  if (*spill < 0) {
    return Status::InvalidArgument("--spill-budget must be >= 0");
  }
  if (*mappers <= 0 || *reducers <= 0) {
    return Status::InvalidArgument("--mappers/--reducers must be > 0");
  }
  StatusOr<std::string> path = RequireGraphArg(args);
  if (!path.ok()) return path.status();

  // A .bin input streams straight from disk — the MR jobs scan it through
  // the stream substrate without ever materializing the edge set; text
  // inputs are loaded and streamed from memory.
  std::unique_ptr<BinaryFileEdgeStream> file_stream;
  EdgeList edges;
  std::unique_ptr<EdgeListStream> memory_stream;
  EdgeStream* stream = nullptr;
  if (EndsWith(*path, ".bin")) {
    auto opened = BinaryFileEdgeStream::Open(*path);
    if (!opened.ok()) return opened.status();
    file_stream = std::move(*opened);
    stream = file_stream.get();
  } else {
    StatusOr<EdgeList> loaded = ReadEdgeListText(*path);
    if (!loaded.ok()) return loaded.status();
    edges = std::move(*loaded);
    memory_stream = std::make_unique<EdgeListStream>(edges);
    stream = memory_stream.get();
  }

  CostModel model;
  model.num_mappers = static_cast<int>(*mappers);
  model.num_reducers = static_cast<int>(*reducers);
  MapReduceEnv env(model);

  if (*directed) {
    MrDirectedOptions opt;
    opt.c = *c;
    opt.epsilon = *eps;
    opt.record_trace = *trace;
    opt.spill_budget_bytes = static_cast<uint64_t>(*spill);
    StatusOr<MrDirectedResult> r = RunMrDensestDirected(env, *stream, opt);
    if (!r.ok()) return r.status();
    out << "mapreduce algorithm 3 (c=" << *c << "): " << Summarize(r->result)
        << "\n";
    out << "input scans: " << r->input_scans
        << "  cluster totals: " << r->totals.ToString() << "\n";
    if (*trace) {
      out << "pass  |S|  |T|  |E(S,T)|  rho  sim_sec\n";
      for (size_t i = 0; i < r->result.trace.size(); ++i) {
        const DirectedPassSnapshot& s = r->result.trace[i];
        out << s.pass << "  " << s.s_size << "  " << s.t_size << "  "
            << s.weight << "  " << s.density << "  " << r->pass_seconds[i]
            << "\n";
      }
    }
    return Status::OK();
  }

  MrDensestOptions opt;
  opt.epsilon = *eps;
  opt.record_trace = *trace;
  opt.spill_budget_bytes = static_cast<uint64_t>(*spill);
  StatusOr<MrDensestResult> r = RunMrDensestUndirected(env, *stream, opt);
  if (!r.ok()) return r.status();
  out << "mapreduce algorithm 1: " << Summarize(r->result) << "\n";
  out << "input scans: " << r->input_scans
      << "  cluster totals: " << r->totals.ToString() << "\n";
  if (*trace) {
    out << "pass  nodes  edges  rho  sim_sec\n";
    for (size_t i = 0; i < r->result.trace.size(); ++i) {
      const PassSnapshot& s = r->result.trace[i];
      out << s.pass << "  " << s.nodes << "  " << s.edges << "  "
          << s.density << "  " << r->pass_seconds[i] << "\n";
    }
  }
  return Status::OK();
}

Status CmdDynamic(const Args& args, std::ostream& out) {
  StatusOr<double> eps = args.GetDouble("eps", 0.75);
  StatusOr<int64_t> window = args.GetInt("window", 0);
  StatusOr<double> rate = args.GetDouble("rate", 0.0);
  StatusOr<int64_t> query_every = args.GetInt("query-every", 1024);
  StatusOr<int64_t> checkpoint_every = args.GetInt("checkpoint-every", 0);
  std::string checkpoints = args.GetString("checkpoints", "exact");
  StatusOr<int64_t> radius = args.GetInt("radius", 2);
  std::string fallback = args.GetString("fallback", "recompute");
  StatusOr<int64_t> threads = args.GetInt("threads", 0);
  std::string snapshot_path = args.GetString("snapshot", "");
  StatusOr<int64_t> snapshot_every = args.GetInt("snapshot-every", 0);
  StatusOr<bool> resume = args.GetBool("resume", false);
  StatusOr<int64_t> evict_batch = args.GetInt("evict-batch", 1);
  StatusOr<int64_t> trim_hysteresis = args.GetInt("trim-hysteresis", 64);
  StatusOr<int64_t> retry_attempts = args.GetInt("retry-attempts", 4);
  StatusOr<double> retry_base_ms = args.GetDouble("retry-base-ms", 0.1);
  StatusOr<double> deadline_ms = args.GetDouble("deadline-ms", 0.0);
  StatusOr<int64_t> rearm_updates = args.GetInt("rearm-updates", 4096);
  StatusOr<bool> check_invariants = args.GetBool("check-invariants", false);
  StatusOr<int64_t> stats_every = args.GetInt("stats-every", 0);
  for (const Status& s :
       {eps.ok() ? Status::OK() : eps.status(),
        window.ok() ? Status::OK() : window.status(),
        rate.ok() ? Status::OK() : rate.status(),
        query_every.ok() ? Status::OK() : query_every.status(),
        checkpoint_every.ok() ? Status::OK() : checkpoint_every.status(),
        radius.ok() ? Status::OK() : radius.status(),
        threads.ok() ? Status::OK() : threads.status(),
        snapshot_every.ok() ? Status::OK() : snapshot_every.status(),
        resume.ok() ? Status::OK() : resume.status(),
        evict_batch.ok() ? Status::OK() : evict_batch.status(),
        trim_hysteresis.ok() ? Status::OK() : trim_hysteresis.status(),
        retry_attempts.ok() ? Status::OK() : retry_attempts.status(),
        retry_base_ms.ok() ? Status::OK() : retry_base_ms.status(),
        deadline_ms.ok() ? Status::OK() : deadline_ms.status(),
        rearm_updates.ok() ? Status::OK() : rearm_updates.status(),
        check_invariants.ok() ? Status::OK() : check_invariants.status(),
        stats_every.ok() ? Status::OK() : stats_every.status()}) {
    if (!s.ok()) return s;
  }
  if (*deadline_ms < 0 || *rearm_updates < 1) {
    return Status::InvalidArgument(
        "--deadline-ms must be >= 0 and --rearm-updates >= 1");
  }
  if (*check_invariants && *checkpoint_every == 0) {
    return Status::InvalidArgument(
        "--check-invariants needs --checkpoint-every=N");
  }
  if (*window < 0 || *radius < 0 || *threads < 0 || *query_every < 0 ||
      *checkpoint_every < 0 || *snapshot_every < 0 || *stats_every < 0) {
    return Status::InvalidArgument("flag values must be >= 0");
  }
  if (*evict_batch < 1 || *trim_hysteresis < 1 || *retry_attempts < 1 ||
      *retry_base_ms < 0) {
    return Status::InvalidArgument(
        "--evict-batch/--trim-hysteresis/--retry-attempts must be >= 1");
  }
  if (*snapshot_every > 0 && snapshot_path.empty()) {
    return Status::InvalidArgument("--snapshot-every needs --snapshot=PATH");
  }
  if (*resume && snapshot_path.empty()) {
    return Status::InvalidArgument("--resume needs --snapshot=PATH");
  }
  StatusOr<std::string> path = RequireGraphArg(args);
  if (!path.ok()) return path.status();

  // A .bin input replays straight from disk; text inputs are loaded and
  // replayed from memory.
  std::unique_ptr<BinaryFileEdgeStream> file_stream;
  EdgeList edges;
  std::unique_ptr<EdgeListStream> memory_stream;
  EdgeStream* stream = nullptr;
  if (EndsWith(*path, ".bin")) {
    auto opened = BinaryFileEdgeStream::Open(*path);
    if (!opened.ok()) return opened.status();
    file_stream = std::move(*opened);
    RetryPolicy retry;
    retry.max_attempts = static_cast<int>(*retry_attempts);
    retry.base_delay_ms = *retry_base_ms;
    file_stream->set_retry_policy(retry);
    stream = file_stream.get();
  } else {
    StatusOr<EdgeList> loaded = ReadEdgeListText(*path);
    if (!loaded.ok()) return loaded.status();
    edges = std::move(*loaded);
    memory_stream = std::make_unique<EdgeListStream>(edges);
    stream = memory_stream.get();
  }

  DynamicDensestOptions opt;
  opt.epsilon = *eps;
  opt.window_radius = static_cast<uint32_t>(*radius);
  opt.trim_hysteresis = static_cast<uint32_t>(*trim_hysteresis);
  opt.engine_options.num_threads = static_cast<size_t>(*threads);
  opt.recompute_deadline_ms = *deadline_ms;
  opt.recompute_rearm_updates = static_cast<uint32_t>(*rearm_updates);
  if (fallback == "recompute") {
    opt.fallback = DynamicFallback::kRecompute;
  } else if (fallback == "rebuild") {
    opt.fallback = DynamicFallback::kRebuildOnly;
  } else if (fallback == "never") {
    opt.fallback = DynamicFallback::kNever;
  } else {
    return Status::InvalidArgument("unknown --fallback: " + fallback);
  }
  ReplayOptions replay_opt;
  replay_opt.target_updates_per_sec = *rate;
  replay_opt.query_every = static_cast<uint64_t>(*query_every);
  replay_opt.checkpoint_every = static_cast<uint64_t>(*checkpoint_every);
  replay_opt.snapshot_every = static_cast<uint64_t>(*snapshot_every);
  replay_opt.snapshot_path = snapshot_path;
  replay_opt.check_invariants = *check_invariants;
  replay_opt.stats_every = static_cast<uint64_t>(*stats_every);
  if (*stats_every > 0) {
    replay_opt.stats_hook = [&out](uint64_t count) {
      out << "[stats @" << count << "] " << StatsSummaryLine() << "\n";
    };
  }
  if (checkpoints == "exact") {
    replay_opt.checkpoint_mode = CheckpointMode::kExactFlow;
  } else if (checkpoints == "batch") {
    replay_opt.checkpoint_mode = CheckpointMode::kBatchAlgorithm1;
  } else {
    return Status::InvalidArgument("unknown --checkpoints: " + checkpoints);
  }

  // --resume: restore the engine and stream position from the snapshot. A
  // missing/torn/corrupted snapshot degrades to a full replay from scratch
  // — logged, never silently served — so restart is always safe.
  std::unique_ptr<DynamicDensest> engine;
  if (*resume) {
    StatusOr<RestoredEngine> restored = ReadSnapshot(snapshot_path, opt);
    if (restored.ok()) {
      engine = std::move(restored->engine);
      replay_opt.skip_updates = restored->cursor;
      out << "resumed from " << snapshot_path << " at update "
          << restored->cursor << "\n";
    } else {
      out << "snapshot unusable (" << restored.status().ToString()
          << "); degrading to full replay from scratch\n";
    }
  }
  if (engine == nullptr) {
    StatusOr<std::unique_ptr<DynamicDensest>> created =
        DynamicDensest::Create(stream->num_nodes(), opt);
    if (!created.ok()) return created.status();
    engine = std::move(*created);
  }

  InsertReplayUpdateStream inserts(*stream);
  std::unique_ptr<SlidingWindowUpdateStream> windowed;
  UpdateStream* updates = &inserts;
  if (*window > 0) {
    windowed = std::make_unique<SlidingWindowUpdateStream>(
        *stream, static_cast<uint64_t>(*window),
        static_cast<uint64_t>(*evict_batch));
    updates = windowed.get();
  }

  StatusOr<ReplayReport> report = ReplayUpdates(*updates, *engine, replay_opt);
  if (!report.ok()) return report.status();

  out << "dynamic densest (eps=" << *eps
      << (*window > 0 ? ", sliding window " + std::to_string(*window)
                      : std::string(", insert-only"))
      << "): rho=" << report->final_density;
  if (report->final_certified) {
    out << " certified rho* < " << report->final_upper_bound << " (band "
        << engine->ApproxBand() << "x)\n";
  } else {
    // Only possible under --fallback=never: the window degraded and the
    // engine is serving best-effort answers without a certificate.
    out << " UNCERTIFIED (window degraded; --fallback=never)\n";
  }
  out << "updates: " << report->updates << " ("
      << report->engine_stats.inserts << " ins, "
      << report->engine_stats.deletes << " del, "
      << report->engine_stats.ignored << " ignored) at "
      << static_cast<uint64_t>(report->updates_per_sec) << "/s\n";
  out << "queries: " << report->queries
      << "  p50=" << report->query_latency_us.Quantile(0.5)
      << "us  p99=" << report->query_latency_us.Quantile(0.99) << "us\n";
  out << "maintenance: " << report->engine_stats.level_moves
      << " level moves, " << report->engine_stats.recomputes
      << " recomputes, " << report->engine_stats.window_moves
      << " window moves, " << report->engine_stats.recomputes_avoided
      << " trims suppressed\n";
  if (report->engine_stats.recomputes_cancelled > 0 ||
      report->engine_stats.stale_answers_served > 0) {
    out << "overload: " << report->engine_stats.recomputes_cancelled
        << " recomputes cancelled by the " << *deadline_ms
        << "ms deadline, " << report->engine_stats.stale_answers_served
        << " queries served the widened stale band\n";
  }
  if (report->snapshots_written > 0 || report->snapshots_failed > 0) {
    out << "snapshots: " << report->snapshots_written << " written in "
        << report->snapshot_seconds << "s";
    if (report->snapshots_failed > 0) {
      out << "  " << report->snapshots_failed << " FAILED (last: "
          << report->last_snapshot_error << ")";
    }
    out << "\n";
  }
  if (const IoRetryStats retry = updates->io_retry_stats();
      retry.retries > 0 || retry.exhausted > 0) {
    out << "io retries: " << retry.retries << " (" << retry.healed
        << " healed, " << retry.exhausted << " exhausted)\n";
  }
  if (!report->checkpoints.empty()) {
    out << "checkpoints: " << report->checkpoints.size()
        << "  band=" << (report->band_ok ? "OK" : "VIOLATED")
        << "  max error=" << report->max_observed_error << "\n";
  }
  if (!report->band_ok) {
    return Status::Internal("maintained density left the certified band");
  }
  return Status::OK();
}

namespace {

/// Parses "--query-mix=D,M,S[,T]": non-negative weights (density,
/// membership, snapshot, and optionally stats) summing to something
/// positive. The stats weight defaults to 0 so existing three-field
/// invocations keep their exact workload.
StatusOr<std::array<uint64_t, 4>> ParseQueryMix(const std::string& mix) {
  std::array<uint64_t, 4> w{};
  std::istringstream in(mix);
  std::string field;
  size_t i = 0;
  while (std::getline(in, field, ',')) {
    if (i >= 4 || field.empty() ||
        field.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("bad --query-mix field: '" + field + "'");
    }
    w[i++] = std::stoull(field);
  }
  if ((i != 3 && i != 4) || w[0] + w[1] + w[2] + w[3] == 0) {
    return Status::InvalidArgument(
        "--query-mix needs three or four weights with a positive sum, "
        "e.g. 80,15,5 or 80,14,5,1");
  }
  return w;
}

}  // namespace

Status CmdServe(const Args& args, std::ostream& out) {
  StatusOr<double> eps = args.GetDouble("eps", 0.75);
  StatusOr<int64_t> window = args.GetInt("window", 0);
  StatusOr<double> rate = args.GetDouble("rate", 0.0);
  StatusOr<int64_t> publish_every = args.GetInt("publish-every", 1024);
  StatusOr<int64_t> readers = args.GetInt("readers", 4);
  StatusOr<double> qps = args.GetDouble("qps", 2000.0);
  std::string mix_flag = args.GetString("query-mix", "80,15,5");
  StatusOr<int64_t> batch = args.GetInt("batch", 8);
  StatusOr<int64_t> queue_capacity = args.GetInt("queue-capacity", 64);
  StatusOr<double> deadline_ms = args.GetDouble("deadline-ms", 0.0);
  StatusOr<int64_t> seed = args.GetInt("seed", 1);
  StatusOr<int64_t> evict_batch = args.GetInt("evict-batch", 1);
  StatusOr<int64_t> stats_every = args.GetInt("stats-every", 0);
  for (const Status& s :
       {eps.ok() ? Status::OK() : eps.status(),
        window.ok() ? Status::OK() : window.status(),
        rate.ok() ? Status::OK() : rate.status(),
        publish_every.ok() ? Status::OK() : publish_every.status(),
        readers.ok() ? Status::OK() : readers.status(),
        qps.ok() ? Status::OK() : qps.status(),
        batch.ok() ? Status::OK() : batch.status(),
        queue_capacity.ok() ? Status::OK() : queue_capacity.status(),
        deadline_ms.ok() ? Status::OK() : deadline_ms.status(),
        seed.ok() ? Status::OK() : seed.status(),
        evict_batch.ok() ? Status::OK() : evict_batch.status(),
        stats_every.ok() ? Status::OK() : stats_every.status()}) {
    if (!s.ok()) return s;
  }
  if (*readers < 1 || *batch < 1 || *queue_capacity < 1) {
    return Status::InvalidArgument(
        "--readers/--batch/--queue-capacity must be >= 1");
  }
  if (*window < 0 || *publish_every < 0 || *qps < 0 || *deadline_ms < 0 ||
      *evict_batch < 1 || *stats_every < 0) {
    return Status::InvalidArgument("flag values out of range");
  }
  StatusOr<std::array<uint64_t, 4>> mix = ParseQueryMix(mix_flag);
  if (!mix.ok()) return mix.status();
  StatusOr<std::string> path = RequireGraphArg(args);
  if (!path.ok()) return path.status();

  // Same input handling as `dynamic`: a .bin input replays straight from
  // disk, text inputs from memory.
  std::unique_ptr<BinaryFileEdgeStream> file_stream;
  EdgeList edges;
  std::unique_ptr<EdgeListStream> memory_stream;
  EdgeStream* stream = nullptr;
  if (EndsWith(*path, ".bin")) {
    auto opened = BinaryFileEdgeStream::Open(*path);
    if (!opened.ok()) return opened.status();
    file_stream = std::move(*opened);
    stream = file_stream.get();
  } else {
    StatusOr<EdgeList> loaded = ReadEdgeListText(*path);
    if (!loaded.ok()) return loaded.status();
    edges = std::move(*loaded);
    memory_stream = std::make_unique<EdgeListStream>(edges);
    stream = memory_stream.get();
  }
  const NodeId num_nodes = stream->num_nodes();

  DynamicDensestOptions opt;
  opt.epsilon = *eps;
  StatusOr<std::unique_ptr<DynamicDensest>> engine =
      DynamicDensest::Create(num_nodes, opt);
  if (!engine.ok()) return engine.status();

  InsertReplayUpdateStream inserts(*stream);
  std::unique_ptr<SlidingWindowUpdateStream> windowed;
  UpdateStream* updates = &inserts;
  if (*window > 0) {
    windowed = std::make_unique<SlidingWindowUpdateStream>(
        *stream, static_cast<uint64_t>(*window),
        static_cast<uint64_t>(*evict_batch));
    updates = windowed.get();
  }

  // The serving tier: the replay thread is the plane's single writer; the
  // reader pool answers the closed-loop client workload below without
  // ever touching the writer.
  AnswerPlane plane(num_nodes);
  QueryServiceOptions qopt;
  qopt.num_readers = static_cast<size_t>(*readers);
  qopt.queue_capacity = static_cast<size_t>(*queue_capacity);
  QueryService service(plane, qopt);

  CancelToken writer_cancel;
  ReplayOptions replay_opt;
  replay_opt.target_updates_per_sec = *rate;
  replay_opt.query_every = 0;  // queries come through the service instead
  replay_opt.publish = &plane;
  replay_opt.publish_every = static_cast<uint64_t>(*publish_every);
  replay_opt.cancel = &writer_cancel;
  replay_opt.stats_every = static_cast<uint64_t>(*stats_every);
  if (*stats_every > 0) {
    // Runs on the writer thread; `out` has no other writer until join.
    replay_opt.stats_hook = [&out](uint64_t count) {
      out << "[stats @" << count << "] " << StatsSummaryLine() << "\n";
    };
  }

  std::atomic<bool> writer_done{false};
  StatusOr<ReplayReport> report = Status::Internal("writer did not run");
  std::thread writer([&] {
    report = ReplayUpdates(*updates, **engine, replay_opt);
    writer_done.store(true, std::memory_order_release);
  });

  // Closed-loop client: submit seeded query batches at --qps until the
  // writer drains the stream. Sheds and expiries are normal serving
  // outcomes and are tallied, not fatal.
  Rng rng(Mix64(static_cast<uint64_t>(*seed)));
  const std::array<uint64_t, 4>& w = *mix;
  const uint64_t mix_total = w[0] + w[1] + w[2] + w[3];
  std::vector<ServeQuery> queries(static_cast<size_t>(*batch));
  std::vector<ServeResult> results;
  uint64_t batches_ok = 0, batches_shed = 0, batches_expired = 0;
  uint64_t queries_submitted = 0;
  Status client_status = Status::OK();
  WallTimer client_wall;
  while (!writer_done.load(std::memory_order_acquire)) {
    for (ServeQuery& q : queries) {
      const uint64_t draw = rng.UniformU64(mix_total);
      if (draw < w[0]) {
        q = ServeQuery{ServeQuery::Kind::kDensity, 0};
      } else if (draw < w[0] + w[1]) {
        q = ServeQuery{ServeQuery::Kind::kMembership,
                       static_cast<NodeId>(rng.UniformU64(
                           num_nodes > 0 ? num_nodes : 1))};
      } else if (draw < w[0] + w[1] + w[2]) {
        q = ServeQuery{ServeQuery::Kind::kSnapshot, 0};
      } else {
        q = ServeQuery{ServeQuery::Kind::kStats, 0};
      }
    }
    Status s;
    if (*deadline_ms > 0) {
      CancelToken deadline = CancelToken::WithDeadlineAfterMs(*deadline_ms);
      s = service.QueryBatch(queries, &results, &deadline);
    } else {
      s = service.QueryBatch(queries, &results);
    }
    queries_submitted += queries.size();
    if (s.ok()) {
      ++batches_ok;
    } else if (s.code() == Status::Code::kUnavailable) {
      ++batches_shed;
    } else if (s.code() == Status::Code::kDeadlineExceeded ||
               s.code() == Status::Code::kCancelled) {
      ++batches_expired;
    } else {
      client_status = s;  // a real serving bug: stop the writer and fail
      writer_cancel.Cancel();
      break;
    }
    if (*qps > 0) {
      const double ahead =
          static_cast<double>(queries_submitted) / *qps -
          client_wall.ElapsedSeconds();
      if (ahead > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(ahead));
      }
    }
  }
  writer.join();
  service.Stop();
  if (!client_status.ok()) return client_status;
  if (!report.ok()) return report.status();

  const Answer final_answer = plane.ReadAnswer();
  out << "serve (eps=" << *eps
      << (*window > 0 ? ", sliding window " + std::to_string(*window)
                      : std::string(", insert-only"))
      << ", readers=" << *readers << "): rho=" << final_answer.density;
  if (final_answer.certified) {
    out << " certified rho* < " << final_answer.upper_bound;
  } else {
    out << " UNCERTIFIED";
  }
  out << " at epoch " << final_answer.epoch << "\n";
  out << "writer: " << report->updates << " updates at "
      << static_cast<uint64_t>(report->updates_per_sec) << "/s, "
      << plane.epoch() << " publications\n";
  out << "client: " << batches_ok << " batches ok, " << batches_shed
      << " shed, " << batches_expired << " expired ("
      << queries_submitted << " queries submitted)\n";
  const QueryServiceStats sstats = service.stats();
  out << "service: " << sstats.queries_served << " queries served  p50="
      << sstats.latency_p50_us << "us  p99=" << sstats.latency_p99_us
      << "us  mean=" << sstats.latency_mean_us << "us\n";
  // Writer-side IO-retry summary, read back from the metrics registry the
  // retry loops feed (`dynamic` prints the same story from its report;
  // before the registry the serve path simply dropped it).
  const uint64_t io_retries = DENSEST_METRIC_COUNTER("io.retries").Value();
  const uint64_t io_exhausted =
      DENSEST_METRIC_COUNTER("io.retries_exhausted").Value();
  if (io_retries > 0 || io_exhausted > 0) {
    out << "io retries: " << io_retries << " ("
        << DENSEST_METRIC_COUNTER("io.retries_healed").Value() << " healed, "
        << io_exhausted << " exhausted)\n";
  }
  return Status::OK();
}

Status CmdChaos(const Args& args, std::ostream& out) {
  StatusOr<bool> smoke = args.GetBool("smoke", false);
  StatusOr<bool> verbose = args.GetBool("verbose", false);
  StatusOr<int64_t> schedules = args.GetInt("schedules", 20);
  StatusOr<int64_t> seed = args.GetInt("seed", 1);
  StatusOr<int64_t> nodes = args.GetInt("nodes", 70);
  StatusOr<int64_t> edges = args.GetInt("edges", 1200);
  StatusOr<int64_t> window = args.GetInt("window", 150);
  StatusOr<double> eps = args.GetDouble("eps", 0.6);
  StatusOr<int64_t> checkpoint_every = args.GetInt("checkpoint-every", 300);
  StatusOr<int64_t> snapshot_every = args.GetInt("snapshot-every", 100);
  StatusOr<int64_t> max_faults = args.GetInt("max-faults", 6);
  StatusOr<int64_t> batch_size = args.GetInt("batch-size", 64);
  StatusOr<int64_t> readers = args.GetInt("readers", 2);
  std::string scratch = args.GetString("scratch", "");
  StatusOr<int64_t> stats_every = args.GetInt("stats-every", 0);
  for (const Status& s :
       {smoke.ok() ? Status::OK() : smoke.status(),
        verbose.ok() ? Status::OK() : verbose.status(),
        schedules.ok() ? Status::OK() : schedules.status(),
        seed.ok() ? Status::OK() : seed.status(),
        nodes.ok() ? Status::OK() : nodes.status(),
        edges.ok() ? Status::OK() : edges.status(),
        window.ok() ? Status::OK() : window.status(),
        eps.ok() ? Status::OK() : eps.status(),
        checkpoint_every.ok() ? Status::OK() : checkpoint_every.status(),
        snapshot_every.ok() ? Status::OK() : snapshot_every.status(),
        max_faults.ok() ? Status::OK() : max_faults.status(),
        batch_size.ok() ? Status::OK() : batch_size.status(),
        readers.ok() ? Status::OK() : readers.status(),
        stats_every.ok() ? Status::OK() : stats_every.status()}) {
    if (!s.ok()) return s;
  }
  if (*schedules < 1 || *nodes < 2 || *edges < 1 || *window < 1 ||
      *checkpoint_every < 1 || *snapshot_every < 1 || *max_faults < 0 ||
      *batch_size < 1 || *readers < 0 || *stats_every < 0) {
    return Status::InvalidArgument("chaos: flag value out of range");
  }

  ChaosOptions opt;
  opt.schedules = static_cast<uint32_t>(*schedules);
  opt.seed = static_cast<uint64_t>(*seed);
  opt.nodes = static_cast<NodeId>(*nodes);
  opt.edges = static_cast<EdgeId>(*edges);
  opt.window = static_cast<uint64_t>(*window);
  opt.epsilon = *eps;
  opt.checkpoint_every = static_cast<uint64_t>(*checkpoint_every);
  opt.snapshot_every = static_cast<uint64_t>(*snapshot_every);
  opt.max_faults = static_cast<uint32_t>(*max_faults);
  opt.batch_size = static_cast<size_t>(*batch_size);
  opt.reader_threads = static_cast<uint32_t>(*readers);
  opt.scratch_dir = scratch;
  if (*verbose) opt.log = &out;
  opt.stats_every = static_cast<uint64_t>(*stats_every);
  if (*stats_every > 0) {
    opt.stats_hook = [&out](uint32_t done) {
      out << "[stats after " << done << " schedules] " << StatsSummaryLine()
          << "\n";
    };
  }
  if (*smoke) {
    // The CI gate: a fixed seed so every run checks the identical fault
    // schedules, and never fewer than the contract's 20.
    opt.seed = 20120817;
    if (opt.schedules < 20) opt.schedules = 20;
  }

  if (!Failpoints::compiled_in()) {
    out << "failpoints compiled out (-DDENSEST_FAILPOINTS=OFF): "
           "running a fault-free soak (snapshots, band checks, audits)\n";
  }
  StatusOr<ChaosReport> report = RunChaos(opt);
  if (!report.ok()) return report.status();
  out << "chaos: " << report->schedules << " schedules survived: "
      << report->total_faults << " faults injected, " << report->total_kills
      << " kills recovered (" << report->total_full_rebuilds
      << " full rebuilds), " << report->total_band_checks << " band checks, "
      << report->total_invariant_audits << " invariant audits; every final "
      << "state bit-identical to its fault-free reference\n";
  if (report->total_reader_snapshots > 0) {
    out << "serving: " << report->total_reader_snapshots
        << " concurrent reader snapshots verified untorn against the "
        << "writer log and re-derived from their workload prefixes\n";
  }
  return Status::OK();
}

Status CmdExact(const Args& args, std::ostream& out) {
  StatusOr<std::string> path = RequireGraphArg(args);
  if (!path.ok()) return path.status();
  StatusOr<EdgeList> edges = LoadEdges(*path);
  if (!edges.ok()) return edges.status();
  GraphBuilder builder;
  builder.ReserveNodes(edges->num_nodes());
  for (const Edge& e : edges->edges()) builder.Add(e.u, e.v, e.w);
  StatusOr<UndirectedGraph> graph = builder.BuildUndirected();
  if (!graph.ok()) return graph.status();

  StatusOr<ExactDensestResult> r = ExactDensestSubgraph(*graph);
  if (!r.ok()) return r.status();
  out << "exact: rho*=" << r->density << " |S*|=" << r->nodes.size()
      << " (" << r->flow_iterations << " max-flow solves)\n";
  return Status::OK();
}

Status CmdEnumerate(const Args& args, std::ostream& out) {
  StatusOr<double> eps = args.GetDouble("eps", 0.5);
  StatusOr<int64_t> count = args.GetInt("count", 10);
  StatusOr<double> min_density = args.GetDouble("min-density", 1.0);
  for (const Status& s :
       {eps.ok() ? Status::OK() : eps.status(),
        count.ok() ? Status::OK() : count.status(),
        min_density.ok() ? Status::OK() : min_density.status()}) {
    if (!s.ok()) return s;
  }
  StatusOr<std::string> path = RequireGraphArg(args);
  if (!path.ok()) return path.status();
  StatusOr<EdgeList> edges = LoadEdges(*path);
  if (!edges.ok()) return edges.status();
  GraphBuilder builder;
  builder.ReserveNodes(edges->num_nodes());
  for (const Edge& e : edges->edges()) builder.Add(e.u, e.v, e.w);
  StatusOr<UndirectedGraph> graph = builder.BuildUndirected();
  if (!graph.ok()) return graph.status();

  EnumerateOptions opt;
  opt.epsilon = *eps;
  opt.max_subgraphs = static_cast<size_t>(*count);
  opt.min_density = *min_density;
  StatusOr<std::vector<UndirectedDensestResult>> subs =
      EnumerateDenseSubgraphs(*graph, opt);
  if (!subs.ok()) return subs.status();
  out << subs->size() << " dense subgraphs:\n";
  for (size_t i = 0; i < subs->size(); ++i) {
    out << "  #" << (i + 1) << " " << Summarize((*subs)[i]) << "\n";
  }
  return Status::OK();
}

Status CmdGenerate(const Args& args, std::ostream& out) {
  StatusOr<int64_t> seed = args.GetInt("seed", 1);
  std::string format = args.GetString("format", "txt");
  StatusOr<int64_t> nodes = args.GetInt("nodes", 10000);
  StatusOr<int64_t> edge_count = args.GetInt("edges", 50000);
  StatusOr<double> exponent = args.GetDouble("exponent", 2.3);
  for (const Status& s :
       {seed.ok() ? Status::OK() : seed.status(),
        nodes.ok() ? Status::OK() : nodes.status(),
        edge_count.ok() ? Status::OK() : edge_count.status(),
        exponent.ok() ? Status::OK() : exponent.status()}) {
    if (!s.ok()) return s;
  }
  if (args.positional().size() < 2) {
    return Status::InvalidArgument("usage: generate <dataset> <path>");
  }
  const std::string& name = args.positional()[0];
  const std::string& path = args.positional()[1];
  uint64_t s = static_cast<uint64_t>(*seed);

  EdgeList edges;
  if (name == "flickr-sim") {
    edges = MakeFlickrSim(s);
  } else if (name == "im-sim") {
    edges = MakeImSim(s);
  } else if (name == "livejournal-sim") {
    edges = MakeLiveJournalSim(s);
  } else if (name == "twitter-sim") {
    edges = MakeTwitterSim(s);
  } else if (name == "er") {
    edges = ErdosRenyiGnm(static_cast<NodeId>(*nodes),
                          static_cast<EdgeId>(*edge_count), s);
  } else if (name == "chung-lu") {
    ChungLuOptions cl;
    cl.num_nodes = static_cast<NodeId>(*nodes);
    cl.num_edges = static_cast<EdgeId>(*edge_count);
    cl.exponent = *exponent;
    edges = ChungLu(cl, s);
  } else {
    return Status::InvalidArgument("unknown dataset: " + name);
  }

  Status write_status;
  if (format == "bin") {
    write_status = WriteBinaryEdgeFile(path, edges, /*weighted=*/false);
  } else if (format == "txt") {
    write_status = WriteEdgeListText(path, edges);
  } else {
    return Status::InvalidArgument("unknown format: " + format);
  }
  if (!write_status.ok()) return write_status;
  out << "wrote " << name << ": |V|=" << edges.num_nodes()
      << " |E|=" << edges.num_edges() << " to " << path << " (" << format
      << ")\n";
  return Status::OK();
}

std::string CliUsage() {
  return
      "densest_cli — densest subgraph in streaming and MapReduce (VLDB'12)\n"
      "\n"
      "usage: densest_cli <command> [args] [--flags]\n"
      "\n"
      "commands:\n"
      "  stats <graph> [--directed]\n"
      "      print graph parameters\n"
      "  undirected <graph> [--eps=0.5] [--min-size=K] [--sketch-buckets=B\n"
      "      --sketch-tables=5] [--compact-below=E] [--trace] [--output=F]\n"
      "      Algorithm 1 (default), Algorithm 2 (--min-size), or the\n"
      "      Count-Sketch variant (--sketch-buckets)\n"
      "  directed <graph> [--eps=0.5] [--c=RATIO | --delta=2] [--trace]\n"
      "      Algorithm 3 for one ratio c, or a c-search in powers of delta\n"
      "  mapreduce <graph> [--eps=1] [--directed --c=1] [--spill-budget=B]\n"
      "      [--mappers=2000 --reducers=2000] [--trace]\n"
      "      simulated-cluster MapReduce drivers; .bin graphs stream\n"
      "      out-of-core, shuffles spill to disk under --spill-budget\n"
      "  dynamic <graph> [--eps=0.75] [--window=W] [--rate=R]\n"
      "      [--query-every=1024] [--checkpoint-every=N]\n"
      "      [--checkpoints=exact|batch] [--radius=2]\n"
      "      [--fallback=recompute|rebuild|never] [--threads=0]\n"
      "      [--snapshot=F --snapshot-every=N] [--resume]\n"
      "      [--evict-batch=1] [--trim-hysteresis=64]\n"
      "      [--retry-attempts=4 --retry-base-ms=0.1]\n"
      "      [--deadline-ms=0 --rearm-updates=4096] [--check-invariants]\n"
      "      [--stats-every=N]\n"
      "      incremental maintenance service: replays the graph as a\n"
      "      timestamped insert stream (--window adds a sliding-window\n"
      "      deleter, --evict-batch amortizes its deletions) and reports\n"
      "      throughput, query latency percentiles and the certified\n"
      "      approximation band. --snapshot-every writes crash-recovery\n"
      "      checkpoints; --resume restores from one (a torn or corrupt\n"
      "      snapshot degrades to a full replay, never a wrong density).\n"
      "      --deadline-ms bounds each background recompute: a recompute\n"
      "      that overruns is cancelled and queries serve the last\n"
      "      certified answer with a widened stale bound until a retried\n"
      "      recompute (doubled budget, after --rearm-updates more\n"
      "      updates) completes. --check-invariants audits the level\n"
      "      structures at every checkpoint\n"
      "  serve <graph> [--eps=0.75] [--window=W] [--rate=R]\n"
      "      [--publish-every=1024] [--readers=4] [--qps=2000]\n"
      "      [--query-mix=80,15,5[,T]] [--batch=8] [--queue-capacity=64]\n"
      "      [--deadline-ms=0] [--seed=1] [--evict-batch=1]\n"
      "      [--stats-every=N]\n"
      "      multi-tenant serving: one writer thread replays the graph's\n"
      "      update stream and publishes each settled answer into an\n"
      "      epoch-based snapshot-isolated plane, while --readers reader\n"
      "      threads answer a closed-loop client workload of batched\n"
      "      density/membership/snapshot/stats queries (--query-mix\n"
      "      weights; the optional 4th weight draws live-metrics stats\n"
      "      queries) at\n"
      "      --qps. Reports writer throughput, publication count, and\n"
      "      serving latency percentiles; a full queue sheds batches with\n"
      "      a retryable kUnavailable, --deadline-ms bounds each batch\n"
      "  chaos [--smoke] [--schedules=20] [--seed=1] [--verbose]\n"
      "      [--nodes=70 --edges=1200 --window=150 --eps=0.6]\n"
      "      [--checkpoint-every=300 --snapshot-every=100]\n"
      "      [--max-faults=6] [--batch-size=64] [--readers=2]\n"
      "      [--scratch=DIR] [--stats-every=N]\n"
      "      randomized chaos/soak harness: replays seeded workloads under\n"
      "      random fault injection (crashes, dead disks, torn files,\n"
      "      failed snapshots) with kill/snapshot-resume cycles, and fails\n"
      "      unless every surviving engine is bit-identical to a\n"
      "      fault-free reference run, and every snapshot observed by\n"
      "      --readers concurrent serving readers matches the writer's\n"
      "      publication log bit-for-bit. --smoke is the fixed-seed CI gate\n"
      "  exact <graph>\n"
      "      exact rho* via Goldberg's max-flow reduction\n"
      "  enumerate <graph> [--eps=0.5] [--count=10] [--min-density=1]\n"
      "      node-disjoint dense subgraphs\n"
      "  generate <dataset> <path> [--seed=1] [--format=txt|bin]\n"
      "      datasets: flickr-sim im-sim livejournal-sim twitter-sim\n"
      "                er chung-lu [--nodes --edges --exponent]\n"
      "\n"
      "graphs: text edge lists (\"u v [w]\" lines, # comments) or .bin files\n"
      "        written by `generate --format=bin`.\n"
      "\n"
      "global flags:\n"
      "  --failpoint=\"name:spec[;name:spec]\"\n"
      "      arm fault-injection points (builds with -DDENSEST_FAILPOINTS=ON\n"
      "      only); see src/common/failpoint.h for names and the spec grammar\n"
      "  --metrics-out=PATH\n"
      "      write the final metrics exposition on exit (Prometheus text,\n"
      "      or the JSON mirror when PATH ends in .json)\n"
      "  --trace-out=PATH\n"
      "      record trace spans for the whole command and write a\n"
      "      chrome://tracing-loadable JSON timeline on exit (builds with\n"
      "      -DDENSEST_TRACING=ON; the default)\n"
      "  --stats-every=N (dynamic / serve / chaos)\n"
      "      print a one-line metrics summary every N applied updates\n"
      "      (chaos: every N schedules)\n";
}

Status RunCliCommand(const std::string& command, const Args& args,
                     std::ostream& out) {
  // Global fault-injection flag, valid for every command:
  // --failpoint="name:spec[;name:spec]" (see common/failpoint.h for the
  // spec grammar). Fails loudly when the build compiled failpoints out.
  if (const std::string failpoints = args.GetString("failpoint", "");
      !failpoints.empty()) {
    if (Status s = Failpoints::Instance().SetFromFlag(failpoints); !s.ok()) {
      return s;
    }
  }
  // Global observability flags, valid for every command:
  //   --metrics-out=PATH  write the final metrics exposition (".json" gets
  //                       the JSON mirror, anything else Prometheus text)
  //   --trace-out=PATH    record DENSEST_TRACE_SPAN spans for the whole
  //                       command and write chrome://tracing JSON
  const std::string metrics_out = args.GetString("metrics-out", "");
  const std::string trace_out = args.GetString("trace-out", "");
  if (!trace_out.empty()) {
    if (!obs::TraceRecorder::compiled_in()) {
      out << "note: tracing compiled out (-DDENSEST_TRACING=OFF); "
          << trace_out << " will hold an empty timeline\n";
    }
    obs::TraceRecorder::Get().Start();
  }
  Status status;
  if (command == "stats") {
    status = CmdStats(args, out);
  } else if (command == "undirected") {
    status = CmdUndirected(args, out);
  } else if (command == "directed") {
    status = CmdDirected(args, out);
  } else if (command == "mapreduce") {
    status = CmdMapReduce(args, out);
  } else if (command == "dynamic") {
    status = CmdDynamic(args, out);
  } else if (command == "serve") {
    status = CmdServe(args, out);
  } else if (command == "chaos") {
    status = CmdChaos(args, out);
  } else if (command == "exact") {
    status = CmdExact(args, out);
  } else if (command == "enumerate") {
    status = CmdEnumerate(args, out);
  } else if (command == "generate") {
    status = CmdGenerate(args, out);
  } else {
    return Status::InvalidArgument("unknown command: " + command);
  }
  // Write the artifacts even when the command failed — a chaos or serve
  // failure is exactly when the timeline and counters are wanted — but
  // never let an artifact-write error mask the command's own status.
  if (!trace_out.empty()) {
    obs::TraceRecorder::Get().Stop();
    Status w = obs::TraceRecorder::Get().DrainToJsonFile(trace_out);
    if (status.ok() && !w.ok()) return w;
    if (w.ok()) out << "trace written to " << trace_out << "\n";
  }
  if (!metrics_out.empty()) {
    Status w = obs::WriteMetricsFile(metrics_out);
    if (status.ok() && !w.ok()) return w;
    if (w.ok()) out << "metrics written to " << metrics_out << "\n";
  }
  if (!status.ok()) return status;
  std::vector<std::string> unused = args.UnusedFlags();
  if (!unused.empty()) {
    std::string msg = "unknown flag(s):";
    for (const std::string& f : unused) msg += " --" + f;
    return Status::InvalidArgument(msg);
  }
  return status;
}

}  // namespace densest
