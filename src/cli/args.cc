#include "cli/args.h"

#include <cstdlib>

namespace densest {

StatusOr<Args> Args::Parse(const std::vector<std::string>& tokens) {
  Args out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("--", 0) != 0) {
      out.positional_.push_back(tok);
      continue;
    }
    std::string body = tok.substr(2);
    if (body.empty() || body[0] == '=') {
      return Status::InvalidArgument("malformed flag: " + tok);
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      out.flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      out.flags_[body] = tokens[i + 1];
      ++i;
    } else {
      out.flags_[body] = "true";
    }
  }
  return out;
}

std::string Args::GetString(const std::string& name,
                            const std::string& def) const {
  used_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

StatusOr<double> Args::GetDouble(const std::string& name, double def) const {
  used_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects a number, got '" +
                                   it->second + "'");
  }
  return v;
}

StatusOr<int64_t> Args::GetInt(const std::string& name, int64_t def) const {
  used_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                   it->second + "'");
  }
  return static_cast<int64_t>(v);
}

StatusOr<bool> Args::GetBool(const std::string& name, bool def) const {
  used_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  return Status::InvalidArgument("--" + name + " expects a boolean, got '" +
                                 v + "'");
}

std::vector<std::string> Args::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : flags_) {
    if (!used_.count(name)) unused.push_back(name);
  }
  return unused;
}

}  // namespace densest
