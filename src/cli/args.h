// Copyright 2026 The densest Authors.
// Minimal command-line flag parsing for the densest_cli tool. Kept in the
// library so the command layer is unit-testable.

#ifndef DENSEST_CLI_ARGS_H_
#define DENSEST_CLI_ARGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace densest {

/// \brief Parsed command line: positionals plus --key=value / --key value
/// flags (bare --key becomes "true").
class Args {
 public:
  /// Parses tokens (argv without the program name). Fails on malformed
  /// flags such as "--=x".
  static StatusOr<Args> Parse(const std::vector<std::string>& tokens);

  /// Positional arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// True iff --name was given (with any value).
  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  /// String value of --name, or `def` if absent.
  std::string GetString(const std::string& name, const std::string& def) const;

  /// Double value of --name, or `def` if absent; fails on non-numeric.
  StatusOr<double> GetDouble(const std::string& name, double def) const;

  /// Int64 value of --name, or `def` if absent; fails on non-numeric.
  StatusOr<int64_t> GetInt(const std::string& name, int64_t def) const;

  /// Bool: present with no value / "true" / "1" => true; "false"/"0" =>
  /// false; absent => def.
  StatusOr<bool> GetBool(const std::string& name, bool def) const;

  /// Flags that were parsed but never read by any Get*/Has call; the CLI
  /// uses this to reject typos like --epsilonn.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace densest

#endif  // DENSEST_CLI_ARGS_H_
