// Copyright 2026 The densest Authors.
// The densest_cli command layer. Each command takes parsed Args and writes
// human-readable output to a stream, so the whole surface is testable
// without spawning processes.

#ifndef DENSEST_CLI_COMMANDS_H_
#define DENSEST_CLI_COMMANDS_H_

#include <ostream>
#include <string>

#include "cli/args.h"
#include "common/status.h"

namespace densest {

/// Dispatches `command` with `args`; returns the command's status.
/// Known commands: stats, undirected, directed, mapreduce, dynamic, serve,
/// chaos, exact, enumerate, generate.
Status RunCliCommand(const std::string& command, const Args& args,
                     std::ostream& out);

/// `stats <graph>`: prints |V|, |E|, degree stats.
/// Flags: --directed.
Status CmdStats(const Args& args, std::ostream& out);

/// `undirected <graph>`: Algorithm 1 (or Algorithm 2 with --min-size, or
/// the sketched variant with --sketch-buckets).
/// Flags: --eps (0.5), --min-size, --sketch-buckets, --sketch-tables (5),
///        --compact-below, --trace, --output (write the subgraph's nodes).
Status CmdUndirected(const Args& args, std::ostream& out);

/// `directed <graph>`: Algorithm 3. With --c runs a single ratio; without
/// it searches c in powers of --delta (2).
/// Flags: --eps (0.5), --c, --delta, --trace.
Status CmdDirected(const Args& args, std::ostream& out);

/// `mapreduce <graph>`: the simulated-cluster MapReduce drivers. A .bin
/// graph streams from disk, and each job's resident shuffle is bounded by
/// the spill budget (the removal job's surviving edges still live in
/// memory between passes — see mapreduce/mr_densest.h).
/// Flags: --eps (1.0), --directed, --c (1.0, directed only),
///        --spill-budget (bytes, 0 = in-memory shuffle), --mappers (2000),
///        --reducers (2000), --trace.
Status CmdMapReduce(const Args& args, std::ostream& out);

/// `dynamic <graph>`: the incremental maintenance service. Replays the
/// graph's edges as a timestamped insertion stream (optionally with a
/// sliding-window deleter) into a DynamicDensest engine, queries on a
/// schedule, and reports update throughput, query latency percentiles and
/// the certified approximation band.
/// Flags: --eps (0.75), --window (0 = insert-only), --rate (0 = unthrottled),
///        --query-every (1024), --checkpoint-every (0),
///        --checkpoints (exact|batch), --radius (2),
///        --fallback (recompute|rebuild|never), --threads (0).
Status CmdDynamic(const Args& args, std::ostream& out);

/// `serve <graph>`: the multi-tenant serving tier. One writer thread
/// replays the graph's update stream into a DynamicDensest engine and
/// publishes every settled answer into an epoch-based snapshot-isolated
/// AnswerPlane; a pool of reader threads (serve/query_service.h) answers
/// a closed-loop client workload of batched density/membership/snapshot
/// queries off the plane. Reports writer throughput, publication count,
/// client outcomes (ok/shed/expired) and serving latency percentiles.
/// Flags: --eps (0.75), --window (0), --rate (0), --publish-every (1024),
///        --readers (4), --qps (2000, 0 = unthrottled),
///        --query-mix (80,15,5), --batch (8), --queue-capacity (64),
///        --deadline-ms (0), --seed (1), --evict-batch (1).
Status CmdServe(const Args& args, std::ostream& out);

/// `chaos`: randomized chaos/soak harness over the failpoint registry
/// (dynamic/chaos.h). Self-contained — generates its own workloads; fails
/// with the replaying seed when any schedule diverges from the fault-free
/// reference.
/// Flags: --smoke (fixed-seed CI gate), --schedules (20), --seed (1),
///        --nodes (70), --edges (1200), --window (150), --eps (0.6),
///        --checkpoint-every (300), --snapshot-every (100),
///        --max-faults (6), --batch-size (64), --scratch (tmp), --verbose.
Status CmdChaos(const Args& args, std::ostream& out);

/// `exact <graph>`: Goldberg exact solver (undirected only).
Status CmdExact(const Args& args, std::ostream& out);

/// `enumerate <graph>`: node-disjoint dense subgraphs.
/// Flags: --eps (0.5), --count (10), --min-density (1).
Status CmdEnumerate(const Args& args, std::ostream& out);

/// `generate <dataset> <path>`: writes a synthetic stand-in dataset
/// (flickr-sim | im-sim | livejournal-sim | twitter-sim | er | chung-lu).
/// Flags: --seed (1), --format (txt|bin), --nodes, --edges (for er /
/// chung-lu), --exponent (2.3, chung-lu only).
Status CmdGenerate(const Args& args, std::ostream& out);

/// Usage text for the tool.
std::string CliUsage();

}  // namespace densest

#endif  // DENSEST_CLI_COMMANDS_H_
