#include "core/enumerate.h"

#include "graph/subgraph.h"

namespace densest {

StatusOr<std::vector<UndirectedDensestResult>> EnumerateDenseSubgraphs(
    const UndirectedGraph& g, const EnumerateOptions& options) {
  std::vector<UndirectedDensestResult> found;
  NodeSet remaining(g.num_nodes(), /*full=*/true);
  double first_density = 0;

  while (options.max_subgraphs == 0 || found.size() < options.max_subgraphs) {
    if (remaining.empty()) break;
    std::vector<NodeId> mapping;
    UndirectedGraph residual = InducedSubgraph(g, remaining, &mapping);
    if (residual.num_edges() == 0) break;

    Algorithm1Options a1;
    a1.epsilon = options.epsilon;
    a1.record_trace = false;
    StatusOr<UndirectedDensestResult> r = RunAlgorithm1(residual, a1);
    if (!r.ok()) return r.status();
    if (r->nodes.empty()) break;

    // Stop conditions on the *next* candidate's density.
    if (r->density < options.min_density) break;
    if (!found.empty() &&
        r->density < options.min_relative_density * first_density) {
      break;
    }

    // Translate node ids back into g's namespace and carve them out.
    UndirectedDensestResult translated;
    translated.density = r->density;
    translated.passes = r->passes;
    translated.nodes.reserve(r->nodes.size());
    for (NodeId local : r->nodes) {
      translated.nodes.push_back(mapping[local]);
      remaining.Remove(mapping[local]);
    }
    if (found.empty()) first_density = translated.density;
    found.push_back(std::move(translated));
  }
  return found;
}

}  // namespace densest
