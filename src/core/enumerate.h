// Copyright 2026 The densest Authors.
// Iterative enumeration of node-disjoint dense subgraphs (the paper's §6
// remark): run Algorithm 1, remove the returned nodes, recurse on the
// residual graph. Each step is an approximation on the residual.

#ifndef DENSEST_CORE_ENUMERATE_H_
#define DENSEST_CORE_ENUMERATE_H_

#include <vector>

#include "common/status.h"
#include "core/algorithm1.h"
#include "core/density.h"
#include "graph/undirected_graph.h"

namespace densest {

/// \brief Knobs for the enumeration loop.
struct EnumerateOptions {
  /// Stop after this many subgraphs (0 = until exhaustion).
  size_t max_subgraphs = 10;
  /// Stop when the next subgraph's density falls below this absolute value.
  double min_density = 1.0;
  /// Stop when the next subgraph's density falls below this fraction of the
  /// first (densest) one.
  double min_relative_density = 0.05;
  /// Epsilon passed through to Algorithm 1.
  double epsilon = 0.5;
};

/// Returns approximately-densest node-disjoint subgraphs in discovery
/// order (non-increasing density in practice). Node ids refer to `g`.
StatusOr<std::vector<UndirectedDensestResult>> EnumerateDenseSubgraphs(
    const UndirectedGraph& g, const EnumerateOptions& options);

}  // namespace densest

#endif  // DENSEST_CORE_ENUMERATE_H_
