#include "core/peel_state.h"

#include <algorithm>

namespace densest {

UndirectedPassResult RunUndirectedPass(EdgeStream& stream,
                                       const NodeSet& alive,
                                       std::vector<double>& degrees) {
  std::fill(degrees.begin(), degrees.end(), 0.0);
  UndirectedPassResult out;
  stream.Reset();
  Edge e;
  while (stream.Next(&e)) {
    if (alive.Contains(e.u) && alive.Contains(e.v)) {
      degrees[e.u] += e.w;
      degrees[e.v] += e.w;
      out.weight += e.w;
      ++out.edges;
    }
  }
  return out;
}

DirectedPassResult RunDirectedPass(EdgeStream& stream, const NodeSet& s,
                                   const NodeSet& t,
                                   std::vector<double>& out_to_t,
                                   std::vector<double>& in_from_s) {
  std::fill(out_to_t.begin(), out_to_t.end(), 0.0);
  std::fill(in_from_s.begin(), in_from_s.end(), 0.0);
  DirectedPassResult out;
  stream.Reset();
  Edge e;
  while (stream.Next(&e)) {
    if (s.Contains(e.u) && t.Contains(e.v)) {
      out_to_t[e.u] += e.w;
      in_from_s[e.v] += e.w;
      out.weight += e.w;
      ++out.arcs;
    }
  }
  return out;
}

}  // namespace densest
