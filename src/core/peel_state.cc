#include "core/peel_state.h"

#include "core/pass_engine.h"

namespace densest {

UndirectedPassResult RunUndirectedPass(EdgeStream& stream,
                                       const NodeSet& alive,
                                       std::vector<double>& degrees) {
  return DefaultPassEngine().RunUndirected(stream, alive, degrees);
}

DirectedPassResult RunDirectedPass(EdgeStream& stream, const NodeSet& s,
                                   const NodeSet& t,
                                   std::vector<double>& out_to_t,
                                   std::vector<double>& in_from_s) {
  return DefaultPassEngine().RunDirected(stream, s, t, out_to_t, in_from_s);
}

}  // namespace densest
