// Copyright 2026 The densest Authors.
// Charikar's greedy 2-approximation (APPROX 2000): repeatedly remove the
// single minimum-degree node; one of the n intermediate subgraphs is a
// 2-approximation. This is the baseline Algorithm 1 relaxes: it needs the
// graph in memory (a streaming version would take Theta(n) passes).

#ifndef DENSEST_CORE_CHARIKAR_H_
#define DENSEST_CORE_CHARIKAR_H_

#include "common/status.h"
#include "core/density.h"
#include "graph/undirected_graph.h"
#include "stream/edge_stream.h"

namespace densest {

/// \brief Output of the greedy peel, including the full removal order
/// (a degeneracy ordering) for callers that want it.
struct [[nodiscard]] CharikarResult {
  /// The best intermediate subgraph (a 2-approximation of rho*).
  UndirectedDensestResult best;
  /// Nodes in removal order (first removed first). Isolated nodes included.
  std::vector<NodeId> removal_order;
};

/// Unweighted exact greedy via a bucket queue: O(n + m) total.
/// `result.best.passes` reports the number of removal steps (== n), the
/// cost a streaming realization would pay.
CharikarResult CharikarPeel(const UndirectedGraph& g);

/// Weighted greedy via a lazy binary heap: O(m log n). Matches
/// CharikarPeel on unweighted inputs (up to ties).
CharikarResult CharikarPeelWeighted(const UndirectedGraph& g);

/// Stream front ends: ingest the stream's edges with one batched pass of
/// the shared pass engine (the only scan Charikar needs — the peel itself
/// requires the graph in memory), then run the greedy peel. Fails with the
/// stream's IOError when the ingestion pass ended early (a truncated or
/// failing file) — peeling the partial graph would yield a plausible but
/// wrong density.
StatusOr<CharikarResult> CharikarPeel(EdgeStream& stream);
StatusOr<CharikarResult> CharikarPeelWeighted(EdgeStream& stream);

}  // namespace densest

#endif  // DENSEST_CORE_CHARIKAR_H_
