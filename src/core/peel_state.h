// Copyright 2026 The densest Authors.
// Between-pass state of the streaming peeling algorithms. This is exactly
// the O(n) memory the semi-streaming model allows: alive bitmaps and one
// degree counter per node.

#ifndef DENSEST_CORE_PEEL_STATE_H_
#define DENSEST_CORE_PEEL_STATE_H_

#include <vector>

#include "graph/subgraph.h"
#include "graph/types.h"
#include "stream/edge_stream.h"

namespace densest {

/// \brief One streaming pass worth of undirected statistics over the alive
/// set S: per-node induced (weighted) degrees, induced edge count/weight.
struct UndirectedPassResult {
  EdgeId edges = 0;
  double weight = 0;
};

/// Streams all edges once and accumulates deg_S for alive nodes.
/// `degrees` must have size num_nodes and is overwritten.
UndirectedPassResult RunUndirectedPass(EdgeStream& stream,
                                       const NodeSet& alive,
                                       std::vector<double>& degrees);

/// \brief One streaming pass of directed statistics: |E(S,T)| plus
/// out-degrees into T (for nodes of S) and in-degrees from S (for nodes
/// of T).
struct DirectedPassResult {
  EdgeId arcs = 0;
  double weight = 0;
};

/// Streams all arcs once; accumulates out_to_t[u] over u in S and
/// in_from_s[v] over v in T. Both vectors must have size num_nodes and are
/// overwritten.
DirectedPassResult RunDirectedPass(EdgeStream& stream, const NodeSet& s,
                                   const NodeSet& t,
                                   std::vector<double>& out_to_t,
                                   std::vector<double>& in_from_s);

}  // namespace densest

#endif  // DENSEST_CORE_PEEL_STATE_H_
