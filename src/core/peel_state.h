// Copyright 2026 The densest Authors.
// Between-pass state of the streaming peeling algorithms: O(n) memory per
// the semi-streaming model — alive bitmaps and degree counters per node
// (the engine's parallel path keeps up to kShardSlots accumulator copies,
// a constant factor on top of that). The pass result types and the batched
// execution live in core/pass_engine.h; these free functions are
// convenience wrappers over the process-wide default engine and are not
// safe for concurrent calls — concurrent runs need a private PassEngine.

#ifndef DENSEST_CORE_PEEL_STATE_H_
#define DENSEST_CORE_PEEL_STATE_H_

#include <vector>

#include "core/pass_engine.h"
#include "graph/subgraph.h"
#include "graph/types.h"
#include "stream/edge_stream.h"

namespace densest {

/// Streams all edges once and accumulates deg_S for alive nodes.
/// `degrees` must have size num_nodes and is overwritten. Runs on
/// DefaultPassEngine() — batched, and multi-threaded where the hardware
/// allows; results are identical to the scalar definition regardless of
/// thread count.
UndirectedPassResult RunUndirectedPass(EdgeStream& stream,
                                       const NodeSet& alive,
                                       std::vector<double>& degrees);

/// Streams all arcs once; accumulates out_to_t[u] over u in S and
/// in_from_s[v] over v in T. Both vectors must have size num_nodes and are
/// overwritten. Runs on DefaultPassEngine().
DirectedPassResult RunDirectedPass(EdgeStream& stream, const NodeSet& s,
                                   const NodeSet& t,
                                   std::vector<double>& out_to_t,
                                   std::vector<double>& in_from_s);

}  // namespace densest

#endif  // DENSEST_CORE_PEEL_STATE_H_
