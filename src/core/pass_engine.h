// Copyright 2026 The densest Authors.
// The shared high-throughput implementation of a streaming pass. Every
// peeling algorithm in the library (Algorithms 1-3, Charikar ingestion, the
// sketched variant) drains its stream through this engine instead of the
// one-virtual-call-per-edge scalar loop.
//
// The engine is fast at three layers:
//   1. batching    — edges are pulled kShardEdges at a time through
//                    EdgeStream::NextBatch, so the per-edge virtual dispatch
//                    disappears from the hot loop;
//   2. word-packed — alive-set membership is tested with NodeSet's
//                    branchless word-packed ContainsBoth;
//   3. parallel    — each round of kShardSlots shards fans out across a
//                    ThreadPool into per-slot degree accumulators.
//
// Determinism: shard boundaries are fixed by the stream order (never by the
// thread count), shard i of every round feeds accumulator slot i, and the
// final reduction sums slots in index order. Results are therefore
// bit-identical for 1, 2, ... N threads — threading changes only who
// executes a shard, never what any accumulator sums or in which order.

#ifndef DENSEST_CORE_PASS_ENGINE_H_
#define DENSEST_CORE_PASS_ENGINE_H_

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "graph/subgraph.h"
#include "graph/types.h"
#include "stream/edge_stream.h"

namespace densest {

/// \brief One streaming pass worth of undirected statistics over the alive
/// set S: induced edge count and induced total weight.
struct [[nodiscard]] UndirectedPassResult {
  EdgeId edges = 0;
  double weight = 0;
};

/// \brief One streaming pass of directed statistics: |E(S,T)| count and
/// weight.
struct [[nodiscard]] DirectedPassResult {
  EdgeId arcs = 0;
  double weight = 0;
};

/// \brief Knobs for a PassEngine.
struct PassEngineOptions {
  /// Worker threads for shard accumulation. 0 = hardware concurrency;
  /// 1 = fully sequential (no pool is created). Any value yields
  /// bit-identical pass results; it only changes wall-clock time.
  size_t num_threads = 0;
};

/// \brief Batched, optionally multi-threaded executor of streaming passes.
///
/// Holds reusable scratch (the batch buffer and the per-slot accumulators),
/// so one engine should be reused across the passes of an algorithm run.
/// An engine is NOT safe for concurrent use from multiple threads; create
/// one engine per concurrent algorithm run instead (every algorithm
/// options struct accepts an `engine` pointer for this).
/// Memory: the deterministic parallel path keeps kShardSlots accumulator
/// vectors of n doubles per plane (8n doubles undirected, 16n directed) —
/// still O(n), but a constant worth knowing at paper scale. Sequential
/// unit-weight passes skip the slots entirely.
class PassEngine {
 public:
  /// Edges per shard. A shard is the unit of work handed to one thread and
  /// the granularity of the deterministic reduction.
  static constexpr size_t kShardEdges = 1 << 14;
  /// Shards (and accumulator slots) per round. Fixed independently of the
  /// thread count so that results never depend on parallelism.
  static constexpr size_t kShardSlots = 8;

  explicit PassEngine(const PassEngineOptions& options = {});
  ~PassEngine();

  /// Pulls up to kShardSlots shard views of kShardEdges each for one round,
  /// reading through `next_view(scratch, cap)` into `batch` (capacity
  /// kShardSlots * kShardEdges). This is THE shard-boundary schedule of the
  /// deterministic reduction: boundaries derive only from the view source,
  /// never from the thread count. Single-sourced here because
  /// MultiRunEngine's fused accumulation must replicate it exactly — change
  /// the schedule in one place or the fused/sequential bit-identity breaks.
  template <typename NextViewFn>
  static size_t FillShardRound(
      NextViewFn&& next_view, Edge* batch,
      std::array<std::span<const Edge>, kShardSlots>& shards) {
    size_t count = 0;
    while (count < kShardSlots) {
      std::span<const Edge> view =
          next_view(batch + count * kShardEdges, kShardEdges);
      if (view.empty()) break;
      shards[count++] = view;
    }
    return count;
  }

  PassEngine(const PassEngine&) = delete;
  PassEngine& operator=(const PassEngine&) = delete;

  /// Resolved worker count (1 means sequential).
  size_t num_threads() const { return num_threads_; }

  /// Streams all edges once and accumulates deg_S for alive nodes.
  /// `degrees` must have size num_nodes and is overwritten.
  ///
  /// Cancellation (all Run* methods): a non-null `cancel` is polled once
  /// per shard round (≤ kShardSlots * kShardEdges edges of work between
  /// polls). On cancellation the pass stops early and returns partial
  /// stats; the caller must poll the token itself (CheckCancel) exactly
  /// like it checks stream.status(), and must not peel on the truncated
  /// stats. A null token costs one pointer test per round.
  UndirectedPassResult RunUndirected(EdgeStream& stream, const NodeSet& alive,
                                     std::vector<double>& degrees,
                                     const CancelToken* cancel = nullptr);

  /// Same pass, but additionally appends every surviving edge (both
  /// endpoints alive) to *survivors in stream order — the ingestion step of
  /// the paper's §6.3 in-memory compaction.
  UndirectedPassResult RunUndirectedCollect(EdgeStream& stream,
                                            const NodeSet& alive,
                                            std::vector<double>& degrees,
                                            std::vector<Edge>* survivors,
                                            const CancelToken* cancel = nullptr);

  /// In-memory pass over an edge buffer (the post-compaction §6.3 path).
  /// When `compact` is true, dead edges are filtered out of `edges` in
  /// place (preserving order), so the buffer keeps shrinking with S.
  UndirectedPassResult RunUndirectedBuffer(std::vector<Edge>& edges,
                                           const NodeSet& alive,
                                           std::vector<double>& degrees,
                                           bool compact,
                                           const CancelToken* cancel = nullptr);

  /// Streams all arcs once; accumulates out_to_t[u] over u in S and
  /// in_from_s[v] over v in T. Both vectors must have size num_nodes and
  /// are overwritten.
  DirectedPassResult RunDirected(EdgeStream& stream, const NodeSet& s,
                                 const NodeSet& t,
                                 std::vector<double>& out_to_t,
                                 std::vector<double>& in_from_s,
                                 const CancelToken* cancel = nullptr);

  /// Batched drain: invokes fn(edge) sequentially, in stream order, for
  /// every edge of one full pass. Replaces scalar ForEachEdge on hot paths
  /// whose per-edge work is not a degree accumulation (graph ingestion,
  /// sketch updates). Zero-copy where the stream supports NextView.
  template <typename Fn>
  void ForEachEdgeBatched(EdgeStream& stream, Fn&& fn) {
    stream.Reset();
    EnsureBatchBuffer();
    for (;;) {
      std::span<const Edge> view = stream.NextView(batch_.data(), batch_.size());
      if (view.empty()) break;
      for (const Edge& e : view) fn(e);
    }
  }

  /// Batched drain filtered to edges with both endpoints in `alive`.
  template <typename Fn>
  void ForEachAliveEdge(EdgeStream& stream, const NodeSet& alive, Fn&& fn) {
    ForEachEdgeBatched(stream, [&](const Edge& e) {
      if (alive.ContainsBoth(e.u, e.v)) fn(e);
    });
  }

 private:
  UndirectedPassResult RunUndirectedImpl(EdgeStream& stream,
                                         const NodeSet& alive,
                                         std::vector<double>& degrees,
                                         std::vector<Edge>* survivors,
                                         const CancelToken* cancel);

  /// CSR kernels: walk the adjacency arrays directly (no Edge records).
  /// In the undirected graph every edge occupies two adjacency slots (a
  /// self-loop one), so degrees accumulate naturally and the totals are
  /// halved at the end.
  UndirectedPassResult RunUndirectedCsr(const UndirectedGraph& g,
                                        const NodeSet& alive,
                                        std::vector<double>& degrees,
                                        const CancelToken* cancel);
  DirectedPassResult RunDirectedCsr(const DirectedGraph& g, const NodeSet& s,
                                    const NodeSet& t,
                                    std::vector<double>& out_to_t,
                                    std::vector<double>& in_from_s,
                                    const CancelToken* cancel);

  /// FillShardRound over the stream and this engine's batch buffer.
  size_t FillShards(EdgeStream& stream,
                    std::array<std::span<const Edge>, kShardSlots>& shards);
  void EnsureBatchBuffer();
  /// Sizes `planes` accumulator planes of kShardSlots slots to n doubles
  /// each and resets the per-slot totals. Slot vectors are zero on entry to
  /// every pass (freshly allocated or re-zeroed by the previous reduction).
  void EnsureAccumulators(size_t n, size_t planes);
  /// Runs fn(slot) for each shard of the round, on the pool if present.
  void DispatchRound(size_t shards, const std::function<void(size_t)>& fn);
  /// degrees[u] = sum over slots (in slot order) of plane[slot][u]; re-zeros
  /// the slot vectors so the next pass starts clean without a memset.
  /// Mirrored by MultiRunEngine's per-run reduction — keep the summation
  /// order in sync (it is part of the fused/sequential bit-identity).
  void ReduceAndClear(size_t plane, std::vector<double>& degrees);

  /// True when this pass may skip the slot structure entirely and
  /// accumulate into the output arrays in stream order: sequential
  /// execution with exact unit weights gives the same bits any slotted
  /// schedule would.
  bool UseDirectPath(const EdgeStream& stream) const {
    return pool_ == nullptr && stream.HasUnitWeights();
  }

  size_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads_ == 1

  std::vector<Edge> batch_;  // kShardSlots * kShardEdges capacity
  // acc_[plane * kShardSlots + slot]: per-slot accumulation vectors.
  // Undirected passes use one plane; directed passes use two (out/in).
  //
  // Concurrency contract (no mutex by design): slot i of a round is
  // written by exactly one DispatchRound task, and no two tasks share a
  // slot, so the slot vectors need no locking. The hand-off in each
  // direction rides ThreadPool::ParallelFor's completion barrier: the
  // caller's writes before DispatchRound (EnsureAccumulators' zeroing,
  // batch_ fill) happen-before the tasks, and every task's slot writes
  // happen-before ReduceAndClear reads them. Nothing here may be touched
  // while a round is in flight.
  std::vector<std::vector<double>> acc_;
  std::array<double, kShardSlots> slot_weight_;
  std::array<EdgeId, kShardSlots> slot_edges_;
  // Per-slot survivor staging for RunUndirectedCollect (flushed in slot
  // order after every round to preserve stream order).
  std::array<std::vector<Edge>, kShardSlots> slot_survivors_;
};

/// Process-wide shared engine (hardware-concurrency threads) used by the
/// free-function pass wrappers and the algorithm entry points. Not for
/// concurrent algorithm runs — those should own a private engine.
PassEngine& DefaultPassEngine();

}  // namespace densest

#endif  // DENSEST_CORE_PASS_ENGINE_H_
