#include "core/algorithm1.h"

#include <vector>

#include "core/pass_engine.h"
#include "stream/memory_stream.h"

namespace densest {

StatusOr<UndirectedDensestResult> RunAlgorithm1(
    EdgeStream& stream, const Algorithm1Options& options) {
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  PassEngine& engine =
      options.engine != nullptr ? *options.engine : DefaultPassEngine();
  NodeSet alive(n, /*full=*/true);
  std::vector<double> degrees(n, 0.0);

  UndirectedDensestResult result;
  NodeSet best = alive;
  double best_density = -1.0;

  // In-memory compaction (§6.3): survivors move into `buffer` once a pass
  // sees few enough edges; `use_buffer` switches the scan source.
  std::vector<Edge> buffer;
  bool use_buffer = false;
  bool compact_this_pass = false;

  const double factor = 2.0 * (1.0 + options.epsilon);
  uint64_t pass = 0;
  uint64_t io_passes = 0;
  while (!alive.empty() &&
         (options.max_passes == 0 || pass < options.max_passes)) {
    ++pass;
    UndirectedPassResult stats;
    if (use_buffer) {
      // Pure in-memory pass; dead edges are filtered out as we go so the
      // buffer keeps shrinking with the graph.
      stats = engine.RunUndirectedBuffer(buffer, alive, degrees,
                                         /*compact=*/true);
    } else if (compact_this_pass) {
      ++io_passes;
      stats = engine.RunUndirectedCollect(stream, alive, degrees, &buffer);
      use_buffer = true;
    } else {
      ++io_passes;
      stats = engine.RunUndirected(stream, alive, degrees);
    }

    const double rho = stats.weight / static_cast<double>(alive.size());

    // Algorithm 1 line 5: S~ tracks the densest intermediate subgraph.
    // (Pass 1 sees S = V, matching the S~ <- V initialization.)
    if (rho > best_density) {
      best_density = rho;
      best = alive;
    }

    // Algorithm 1 line 3: A(S) = { i in S : deg_S(i) <= 2(1+eps) rho(S) }.
    const double threshold = factor * rho;
    NodeId removed = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (alive.Contains(u) && degrees[u] <= threshold) {
        alive.Remove(u);
        ++removed;
      }
    }

    // Arm compaction for the next pass once the survivor count is small.
    // (The surviving edge count after removal is at most stats.edges.)
    if (!use_buffer && !compact_this_pass &&
        options.compact_below_edges > 0 &&
        stats.edges <= options.compact_below_edges) {
      compact_this_pass = true;
      buffer.reserve(static_cast<size_t>(stats.edges));
    }

    if (options.record_trace) {
      PassSnapshot snap;
      snap.pass = pass;
      snap.nodes = static_cast<NodeId>(alive.size() + removed);
      snap.edges = stats.edges;
      snap.weight = stats.weight;
      snap.density = rho;
      snap.threshold = threshold;
      snap.removed = removed;
      result.trace.push_back(snap);
    }
  }

  result.nodes = best.ToVector();
  result.density = best_density < 0 ? 0.0 : best_density;
  result.passes = pass;
  result.io_passes = io_passes;
  return result;
}

StatusOr<UndirectedDensestResult> RunAlgorithm1(
    const UndirectedGraph& g, const Algorithm1Options& options) {
  UndirectedGraphStream stream(g);
  return RunAlgorithm1(stream, options);
}

}  // namespace densest
