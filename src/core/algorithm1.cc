#include "core/algorithm1.h"

#include <vector>

#include "core/pass_engine.h"
#include "core/peel_runs.h"
#include "stream/memory_stream.h"

namespace densest {

StatusOr<UndirectedDensestResult> RunAlgorithm1(
    EdgeStream& stream, const Algorithm1Options& options) {
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  PassEngine& engine =
      options.engine != nullptr ? *options.engine : DefaultPassEngine();
  Algorithm1Run run(n, options);
  std::vector<double> degrees(n, 0.0);

  while (!run.done()) {
    UndirectedPassResult stats;
    switch (run.mode()) {
      case Algorithm1Run::PassMode::kBuffer:
        // Pure in-memory pass (§6.3); dead edges are filtered out as we go
        // so the buffer keeps shrinking with the graph.
        stats = engine.RunUndirectedBuffer(run.buffer(), run.alive(), degrees,
                                           /*compact=*/true, options.cancel);
        break;
      case Algorithm1Run::PassMode::kCollectPass:
        stats = engine.RunUndirectedCollect(stream, run.alive(), degrees,
                                            &run.buffer(), options.cancel);
        break;
      case Algorithm1Run::PassMode::kStream:
        stats = engine.RunUndirected(stream, run.alive(), degrees,
                                     options.cancel);
        break;
    }
    // A failing stream — or a cancelled pass — ends early and silently:
    // the stats above would describe a truncated edge set. Abort instead
    // of peeling on them.
    if (Status io = stream.status(); !io.ok()) return io;
    if (Status c = CheckCancel(options.cancel); !c.ok()) return c;
    run.ApplyPass(stats, degrees);
  }
  return run.TakeResult();
}

StatusOr<UndirectedDensestResult> RunAlgorithm1(
    const UndirectedGraph& g, const Algorithm1Options& options) {
  UndirectedGraphStream stream(g);
  return RunAlgorithm1(stream, options);
}

}  // namespace densest
