// Copyright 2026 The densest Authors.
// Shared result types for the densest-subgraph algorithms: densities,
// per-pass traces (the raw material of the paper's Figures 6.2–6.5), and
// the returned subgraphs.

#ifndef DENSEST_CORE_DENSITY_H_
#define DENSEST_CORE_DENSITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/answer.h"
#include "graph/types.h"

namespace densest {

/// \brief State of the undirected peeling process at one pass.
struct PassSnapshot {
  uint64_t pass = 0;        ///< 1-based pass index.
  NodeId nodes = 0;         ///< |S| at the start of the pass.
  EdgeId edges = 0;         ///< |E(S)| induced edge count.
  double weight = 0;        ///< induced total weight (== edges if unweighted).
  double density = 0;       ///< rho(S) = weight / |S|.
  double threshold = 0;     ///< removal threshold used in this pass.
  NodeId removed = 0;       ///< |A(S)| nodes removed at the end of the pass.
};

/// \brief Output of the undirected algorithms (Algorithms 1 and 2,
/// Charikar's greedy, the sketched variant).
struct [[nodiscard]] UndirectedDensestResult {
  /// Node ids of the returned subgraph S~ (ascending).
  std::vector<NodeId> nodes;
  /// rho(S~).
  double density = 0;
  /// Number of streaming passes taken (1 pass = 1 full scan of the edges).
  uint64_t passes = 0;
  /// Passes that scanned the *external* stream. Equal to `passes` unless
  /// in-memory compaction (Algorithm1Options::compact_below_edges) kicked
  /// in, in which case the remaining passes ran over the internal buffer.
  uint64_t io_passes = 0;
  /// The driver's approximation guarantee: rho* <= certified_band *
  /// density. Set at result construction from the algorithm's proven
  /// factor — 2(1+eps) for Algorithm 1, 3(1+eps) for Algorithm 2, 2 for
  /// Charikar / max-core. 0 = no recorded band (e.g. the sketched variant,
  /// whose oracle estimates void the deterministic proof); ToAnswer() then
  /// reports the answer uncertified.
  double certified_band = 0;
  /// Per-pass trace (empty if tracing was disabled).
  std::vector<PassSnapshot> trace;

  /// The unified serving view (core/answer.h): density + the band-implied
  /// certified upper bound, comparable field-for-field with answers from
  /// the dynamic engine and the serving plane. Batch answers are never
  /// stale and carry epoch 0.
  Answer ToAnswer() const;
};

/// \brief State of the directed peeling process at one pass.
struct DirectedPassSnapshot {
  uint64_t pass = 0;
  NodeId s_size = 0;        ///< |S| at the start of the pass.
  NodeId t_size = 0;        ///< |T| at the start of the pass.
  double weight = 0;        ///< |E(S,T)| (weighted).
  double density = 0;       ///< rho(S,T).
  bool removed_from_s = false;  ///< whether this pass peeled A(S) or B(T).
  NodeId removed = 0;
};

/// \brief Output of the directed algorithm (Algorithm 3) for one ratio c.
struct [[nodiscard]] DirectedDensestResult {
  std::vector<NodeId> s_nodes;
  std::vector<NodeId> t_nodes;
  /// rho(S~, T~) = |E(S~,T~)| / sqrt(|S~| |T~|).
  double density = 0;
  uint64_t passes = 0;
  /// The size ratio c this run assumed.
  double c = 1.0;
  /// rho*(c) <= certified_band * density for this c (2(1+eps) for
  /// Algorithm 3); 0 = no recorded band. See UndirectedDensestResult.
  double certified_band = 0;
  std::vector<DirectedPassSnapshot> trace;

  /// The unified serving view; size counts |S~| + |T~|.
  Answer ToAnswer() const;
};

/// Renders "rho=… |S|=… passes=…" for logs and examples.
std::string Summarize(const UndirectedDensestResult& r);
/// Renders "rho=… |S|=… |T|=… c=… passes=…".
std::string Summarize(const DirectedDensestResult& r);

}  // namespace densest

#endif  // DENSEST_CORE_DENSITY_H_
