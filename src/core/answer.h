// Copyright 2026 The densest Authors.
// The one answer type every engine serves through. A densest-subgraph
// query — against the dynamic maintenance service, the published serving
// plane, or a batch peeling run — always resolves to the same four facts:
// a real induced density (a lower bound on rho*), a certified upper bound
// on rho*, the size of the witnessing node set, and whether the
// certificate currently holds. Benches and tests compare bands through
// this struct instead of per-engine field names; the witnessing node set
// itself stays beside it (DynamicDensest::DensestNodes(), the batch
// results' `nodes` vectors, AnswerPlane's membership bitset) because its
// representation is the one thing the engines legitimately disagree on.

#ifndef DENSEST_CORE_ANSWER_H_
#define DENSEST_CORE_ANSWER_H_

#include <cstdint>
#include <span>

#include "graph/types.h"

namespace densest {

/// \brief A point-in-time densest-subgraph answer.
struct Answer {
  /// Density of the witnessing node set (a real induced density — always a
  /// lower bound on rho*).
  double density = 0;
  /// Certified upper bound: rho* < upper_bound (meaningful only while
  /// certified; equals 0 for an empty graph).
  double upper_bound = 0;
  /// |S| of the witnessing node set.
  NodeId size = 0;
  /// False when the answer carries no certificate: a dynamic engine under
  /// DynamicFallback::kNever with a degraded window, or a batch result
  /// whose driver recorded no approximation band.
  bool certified = true;
  /// True while a deadline-cancelled recompute is pending in the dynamic
  /// engine: the answer is still certified, but upper_bound is the last
  /// certificate widened by the sound growth bound (rho* rises by at most
  /// 1/2 per insertion and never by a deletion), so the band loosens with
  /// every insert until the recompute re-arms and completes. Always false
  /// for batch results.
  bool stale = false;
  /// Publication epoch. 0 for answers read directly off an engine or a
  /// batch run; answers read through an AnswerPlane (serve/answer_plane.h)
  /// carry the strictly increasing epoch of the publication they were
  /// snapshotted from, so a reader can tell two otherwise identical
  /// answers apart and a test can match an observed answer to the exact
  /// writer publication it came from.
  uint64_t epoch = 0;
};

/// \brief Where a driver publishes settled answers for concurrent readers.
/// The seam between the single-writer world (dynamic/replay.cc publishes
/// after each apply run) and the serving world (serve/answer_plane.h is
/// the production implementation) — declared here so dynamic/ never
/// depends on serve/. Publish is writer-only; implementations make the
/// published state readable from other threads on their own terms.
class AnswerSink {
 public:
  virtual ~AnswerSink() = default;
  /// Publishes `answer` + its witnessing node set as of `prefix_updates`
  /// applied updates (an absolute update-stream position).
  virtual void Publish(const Answer& answer, std::span<const NodeId> members,
                       uint64_t prefix_updates) = 0;
};

}  // namespace densest

#endif  // DENSEST_CORE_ANSWER_H_
