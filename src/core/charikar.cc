#include "core/charikar.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "core/pass_engine.h"
#include "graph/edge_list.h"
#include "graph/subgraph.h"

namespace densest {

namespace {

/// Shared epilogue: given the removal order and the density after every
/// removal step, reconstruct the best suffix subgraph.
CharikarResult BuildResult(const UndirectedGraph& g,
                           std::vector<NodeId> removal_order,
                           const std::vector<double>& density_after_step) {
  // density_after_step[t] = rho of the graph after t removals (t = 0 is V).
  size_t best_t = 0;
  for (size_t t = 1; t < density_after_step.size(); ++t) {
    if (density_after_step[t] > density_after_step[best_t]) best_t = t;
  }
  CharikarResult out;
  out.best.density = density_after_step[best_t];
  out.best.passes = removal_order.size();
  out.best.certified_band = 2.0;  // Charikar's classic factor
  out.best.nodes.assign(removal_order.begin() + best_t, removal_order.end());
  std::sort(out.best.nodes.begin(), out.best.nodes.end());
  // Per-step trace mirrors the streaming algorithms' PassSnapshot.
  out.best.trace.reserve(density_after_step.size());
  for (size_t t = 0; t < density_after_step.size(); ++t) {
    PassSnapshot snap;
    snap.pass = t;
    snap.nodes = static_cast<NodeId>(g.num_nodes() - t);
    snap.density = density_after_step[t];
    snap.removed = t + 1 < density_after_step.size() ? 1 : 0;
    out.best.trace.push_back(snap);
  }
  out.removal_order = std::move(removal_order);
  return out;
}

}  // namespace

CharikarResult CharikarPeel(const UndirectedGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<EdgeId> deg(n);
  EdgeId cur_edges = g.num_edges();
  NodeId max_deg = 0;
  for (NodeId u = 0; u < n; ++u) {
    deg[u] = g.Degree(u);
    max_deg = std::max<NodeId>(max_deg, static_cast<NodeId>(deg[u]));
  }

  // Lazy bucket queue: nodes are re-pushed on every degree decrement;
  // stale entries are skipped on pop. Total pushes: n + 2m.
  std::vector<std::vector<NodeId>> buckets(max_deg + 1);
  for (NodeId u = 0; u < n; ++u) {
    buckets[deg[u]].push_back(u);
  }
  NodeSet alive(n, /*full=*/true);

  std::vector<NodeId> removal_order;
  removal_order.reserve(n);
  std::vector<double> density_after_step;
  density_after_step.reserve(n + 1);
  density_after_step.push_back(
      n == 0 ? 0.0
             : static_cast<double>(cur_edges) / static_cast<double>(n));

  size_t cur_min = 0;
  NodeId remaining = n;
  while (remaining > 0) {
    // Find the minimum-degree alive node.
    while (cur_min < buckets.size() &&
           (buckets[cur_min].empty() ||
            !alive.Contains(buckets[cur_min].back()) ||
            deg[buckets[cur_min].back()] != cur_min)) {
      if (buckets[cur_min].empty()) {
        ++cur_min;
      } else {
        buckets[cur_min].pop_back();  // stale entry
      }
    }
    NodeId u = buckets[cur_min].back();
    buckets[cur_min].pop_back();

    alive.Remove(u);
    --remaining;
    removal_order.push_back(u);
    for (NodeId v : g.Neighbors(u)) {
      if (v == u) {  // self-loop: one incident edge, no neighbor update
        --cur_edges;
        continue;
      }
      if (!alive.Contains(v)) continue;
      --cur_edges;
      --deg[v];
      buckets[deg[v]].push_back(v);
    }
    if (cur_min > 0) --cur_min;  // neighbor degrees dropped by at most 1
    density_after_step.push_back(
        remaining == 0
            ? 0.0
            : static_cast<double>(cur_edges) / static_cast<double>(remaining));
  }
  return BuildResult(g, std::move(removal_order), density_after_step);
}

namespace {

/// One batched engine pass over the stream, materialized as a CSR graph.
/// Fails with the stream's status when the pass ended early (truncated or
/// failing file): the partial graph would peel to a plausible wrong rho.
StatusOr<UndirectedGraph> MaterializeStream(EdgeStream& stream) {
  EdgeList edges(stream.num_nodes());
  if (EdgeId hint = stream.SizeHint(); hint > 0) {
    edges.mutable_edges().reserve(static_cast<size_t>(hint));
  }
  DefaultPassEngine().ForEachEdgeBatched(
      stream, [&](const Edge& e) { edges.Add(e.u, e.v, e.w); });
  if (Status io = stream.status(); !io.ok()) return io;
  return UndirectedGraph::FromEdgeList(edges);
}

}  // namespace

StatusOr<CharikarResult> CharikarPeel(EdgeStream& stream) {
  StatusOr<UndirectedGraph> g = MaterializeStream(stream);
  if (!g.ok()) return g.status();
  return CharikarPeel(*g);
}

StatusOr<CharikarResult> CharikarPeelWeighted(EdgeStream& stream) {
  StatusOr<UndirectedGraph> g = MaterializeStream(stream);
  if (!g.ok()) return g.status();
  return CharikarPeelWeighted(*g);
}

CharikarResult CharikarPeelWeighted(const UndirectedGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> wdeg(n);
  double cur_weight = g.total_weight();
  for (NodeId u = 0; u < n; ++u) wdeg[u] = g.WeightedDegree(u);

  using Entry = std::pair<double, NodeId>;  // (weighted degree, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (NodeId u = 0; u < n; ++u) heap.emplace(wdeg[u], u);
  NodeSet alive(n, /*full=*/true);

  std::vector<NodeId> removal_order;
  removal_order.reserve(n);
  std::vector<double> density_after_step;
  density_after_step.reserve(n + 1);
  density_after_step.push_back(n == 0 ? 0.0
                                      : cur_weight / static_cast<double>(n));

  NodeId remaining = n;
  while (remaining > 0) {
    auto [d, u] = heap.top();
    heap.pop();
    if (!alive.Contains(u) || d != wdeg[u]) continue;  // stale entry

    alive.Remove(u);
    --remaining;
    removal_order.push_back(u);
    auto nbrs = g.Neighbors(u);
    auto ws = g.NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      NodeId v = nbrs[i];
      double w = ws.empty() ? 1.0 : ws[i];
      if (v == u) {  // self-loop
        cur_weight -= w;
        continue;
      }
      if (!alive.Contains(v)) continue;
      cur_weight -= w;
      wdeg[v] -= w;
      heap.emplace(wdeg[v], v);
    }
    density_after_step.push_back(
        remaining == 0 ? 0.0 : cur_weight / static_cast<double>(remaining));
  }
  return BuildResult(g, std::move(removal_order), density_after_step);
}

}  // namespace densest
