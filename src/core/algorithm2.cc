#include "core/algorithm2.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/pass_engine.h"
#include "stream/memory_stream.h"

namespace densest {

StatusOr<UndirectedDensestResult> RunAlgorithm2(
    EdgeStream& stream, const Algorithm2Options& options) {
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  if (options.min_size > n) {
    return Status::InvalidArgument("min_size exceeds the node count");
  }

  PassEngine& engine =
      options.engine != nullptr ? *options.engine : DefaultPassEngine();
  NodeSet alive(n, /*full=*/true);
  std::vector<double> degrees(n, 0.0);
  std::vector<NodeId> candidates;

  UndirectedDensestResult result;
  NodeSet best = alive;
  double best_density = -1.0;

  const double factor = 2.0 * (1.0 + options.epsilon);
  const double removal_fraction = options.epsilon / (1.0 + options.epsilon);
  uint64_t pass = 0;
  while (alive.size() >= options.min_size && !alive.empty() &&
         (options.max_passes == 0 || pass < options.max_passes)) {
    ++pass;
    UndirectedPassResult stats = engine.RunUndirected(stream, alive, degrees);
    const double rho = stats.weight / static_cast<double>(alive.size());

    // Algorithm 2 line 6: best intermediate subgraph with |S| >= k.
    if (alive.size() >= options.min_size && rho > best_density) {
      best_density = rho;
      best = alive;
    }

    // A~(S): the below-threshold candidates.
    const double threshold = factor * rho;
    candidates.clear();
    for (NodeId u = 0; u < n; ++u) {
      if (alive.Contains(u) && degrees[u] <= threshold) {
        candidates.push_back(u);
      }
    }

    // Algorithm 2 line 4: remove only |A(S)| = eps/(1+eps) |S| of them —
    // the lowest-degree ones — so some intermediate set lands near size k.
    NodeId quota = static_cast<NodeId>(std::ceil(
        removal_fraction * static_cast<double>(alive.size())));
    quota = std::max<NodeId>(quota, 1);
    quota = std::min<NodeId>(quota, static_cast<NodeId>(candidates.size()));
    if (quota < candidates.size()) {
      std::nth_element(candidates.begin(), candidates.begin() + quota,
                       candidates.end(), [&](NodeId a, NodeId b) {
                         return degrees[a] != degrees[b]
                                    ? degrees[a] < degrees[b]
                                    : a < b;
                       });
      candidates.resize(quota);
    }
    for (NodeId u : candidates) alive.Remove(u);

    if (options.record_trace) {
      PassSnapshot snap;
      snap.pass = pass;
      snap.nodes = static_cast<NodeId>(alive.size() + candidates.size());
      snap.edges = stats.edges;
      snap.weight = stats.weight;
      snap.density = rho;
      snap.threshold = threshold;
      snap.removed = static_cast<NodeId>(candidates.size());
      result.trace.push_back(snap);
    }
    if (candidates.empty()) break;  // nothing removable: avoid spinning
  }

  result.nodes = best.ToVector();
  result.density = best_density < 0 ? 0.0 : best_density;
  result.passes = pass;
  return result;
}

StatusOr<UndirectedDensestResult> RunAlgorithm2(
    const UndirectedGraph& g, const Algorithm2Options& options) {
  UndirectedGraphStream stream(g);
  return RunAlgorithm2(stream, options);
}

}  // namespace densest
