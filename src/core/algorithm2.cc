#include "core/algorithm2.h"

#include <vector>

#include "core/pass_engine.h"
#include "core/peel_runs.h"
#include "stream/memory_stream.h"

namespace densest {

StatusOr<UndirectedDensestResult> RunAlgorithm2(
    EdgeStream& stream, const Algorithm2Options& options) {
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  if (options.min_size > n) {
    return Status::InvalidArgument("min_size exceeds the node count");
  }

  PassEngine& engine =
      options.engine != nullptr ? *options.engine : DefaultPassEngine();
  Algorithm2Run run(n, options);
  std::vector<double> degrees(n, 0.0);

  while (!run.done()) {
    UndirectedPassResult stats =
        engine.RunUndirected(stream, run.alive(), degrees, options.cancel);
    if (Status io = stream.status(); !io.ok()) return io;
    if (Status c = CheckCancel(options.cancel); !c.ok()) return c;
    run.ApplyPass(stats, degrees);
  }
  return run.TakeResult();
}

StatusOr<UndirectedDensestResult> RunAlgorithm2(
    const UndirectedGraph& g, const Algorithm2Options& options) {
  UndirectedGraphStream stream(g);
  return RunAlgorithm2(stream, options);
}

}  // namespace densest
