// Copyright 2026 The densest Authors.
// k-core decomposition (Batagelj–Zaversnik, O(n + m)). The d-core is the
// object Algorithm 2's analysis rests on (Definition 8); the maximum core
// is also a classic 2-approximation baseline for the densest subgraph.

#ifndef DENSEST_CORE_KCORE_H_
#define DENSEST_CORE_KCORE_H_

#include <vector>

#include "core/density.h"
#include "graph/subgraph.h"
#include "graph/undirected_graph.h"

namespace densest {

/// \brief Output of the core decomposition.
struct CoreDecomposition {
  /// core[u] = largest d such that u belongs to the d-core.
  std::vector<NodeId> core;
  /// Degeneracy = max core number (0 for the empty graph).
  NodeId degeneracy = 0;
};

/// Computes all core numbers in O(n + m).
CoreDecomposition KCoreDecomposition(const UndirectedGraph& g);

/// The d-core C_d(G): largest induced subgraph with all degrees >= d
/// (Definition 8). Empty set if no such subgraph exists.
NodeSet DCore(const UndirectedGraph& g, NodeId d);

/// Baseline: the maximum core as a densest-subgraph answer. Its density is
/// at least degeneracy/2 >= rho*(G)/2, i.e. a 2-approximation.
UndirectedDensestResult MaxCoreBaseline(const UndirectedGraph& g);

}  // namespace densest

#endif  // DENSEST_CORE_KCORE_H_
