// Copyright 2026 The densest Authors.
// Algorithm 1 of the paper: streaming (2+2eps)-approximation for the
// undirected densest subgraph in O(log_{1+eps} n) passes and O(n) memory.

#ifndef DENSEST_CORE_ALGORITHM1_H_
#define DENSEST_CORE_ALGORITHM1_H_

#include "common/cancel.h"
#include "common/status.h"
#include "core/density.h"
#include "graph/undirected_graph.h"
#include "stream/edge_stream.h"

namespace densest {

class PassEngine;

/// \brief Knobs for Algorithm 1.
struct Algorithm1Options {
  /// The epsilon of the paper: each pass removes every node with
  /// deg_S(i) <= 2(1+epsilon) rho(S). Larger epsilon = fewer passes,
  /// looser (2+2eps) worst-case guarantee. epsilon = 0 mimics Charikar's
  /// threshold; termination still holds because the minimum-degree node is
  /// never above the average-degree threshold.
  double epsilon = 0.5;
  /// Safety cap on passes (0 = uncapped). The theoretical bound is
  /// O(log_{1+eps} n); the cap only exists to bound pathological inputs.
  uint64_t max_passes = 100000;
  /// Record a PassSnapshot per pass (Figures 6.2/6.3 need this).
  bool record_trace = true;
  /// The paper's §6.3 observation: the graph shrinks by orders of
  /// magnitude in the first passes, so "the rest of the computation can be
  /// done in main memory". When > 0, once a pass sees at most this many
  /// surviving edges the algorithm buffers them and stops re-scanning the
  /// input stream; all later passes run over the in-memory buffer. The
  /// result is bit-identical to the uncompacted run — only IO changes.
  /// 0 disables compaction.
  EdgeId compact_below_edges = 0;
  /// Pass engine to execute streaming passes on. nullptr uses the shared
  /// DefaultPassEngine(); callers running algorithms concurrently from
  /// several threads must each supply a private engine (the shared one
  /// holds mutable scratch and is not thread-safe).
  PassEngine* engine = nullptr;
  /// Optional cooperative cancellation: polled once per shard round, so a
  /// cancel/deadline is observed within one bounded unit of work and the
  /// run returns kCancelled/kDeadlineExceeded. nullptr = never cancelled.
  const CancelToken* cancel = nullptr;
};

/// Runs Algorithm 1 over an edge stream (one Reset+scan per pass). The
/// stream may be disk-, memory- or generator-backed; only O(n) state is
/// kept between passes. Fails with InvalidArgument for epsilon < 0 or an
/// empty node set.
StatusOr<UndirectedDensestResult> RunAlgorithm1(EdgeStream& stream,
                                                const Algorithm1Options& options);

/// Convenience wrapper: streams a CSR graph from memory.
StatusOr<UndirectedDensestResult> RunAlgorithm1(const UndirectedGraph& g,
                                                const Algorithm1Options& options);

}  // namespace densest

#endif  // DENSEST_CORE_ALGORITHM1_H_
