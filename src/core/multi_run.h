// Copyright 2026 The densest Authors.
// Fused multi-run passes: peel every configuration in one scan of the
// stream.
//
// The directed c-search tries O(log_delta n) values of c, and the
// epsilon-sweep benches try a dozen epsilons — and every one of those runs
// re-scans the same edges. Bahmani et al. observe the candidate c values
// "can be tried in parallel" over the same passes; MultiRunEngine is that
// observation as a subsystem. It holds K independent peeling runs (each
// with its own alive sets, degree accumulators and threshold rule from
// core/peel_runs.h) and drives all of them from ONE physical scan per
// pass: each chunk pulled through a PassCursor is fanned across the active
// runs on the ThreadPool. Runs that converge drop out of the fan-out; the
// pass loop ends when all runs are done. Total physical scans = max over
// runs of their pass count, instead of the sum.
//
// Fan-out has two shapes, selected automatically per chunk round:
//   run-major  — a thread owns ONE run's accumulators for the whole round
//                and walks the round's shards in order. No two threads
//                share anything mutable. The right shape while active runs
//                K >= threads.
//   work-major — once K < threads (a small sweep, or a big one whose runs
//                have mostly converged), run-major would idle cores. Each
//                (run, shard) pair becomes its own task instead: shard s of
//                a round feeds accumulator slot s of its run — exactly
//                PassEngine's shard/slot schedule — so tasks for the same
//                run write disjoint slot planes and can proceed
//                concurrently. Runs whose accumulation is order-dependent
//                within a pass (FusedRun::parallel_shards() == false, e.g.
//                the sketched runs whose Count-Sketch updates must follow
//                stream order) stay whole-round tasks.
//
// Determinism: each run consumes shard s into accumulator slot s and slots
// are reduced in index order (PassEngine's schedule: kShardEdges-edge
// shards, shard i of a round into slot i), so every per-run result is
// bit-identical to a sequential run on the same stream — for any fan-out
// thread count and either fan-out shape; threading only changes who
// executes a shard, never what any accumulator sums or in which order. The
// one caveat: a *weighted* stream that exposes a CSR view is accumulated
// here through the batched schedule, while a solo PassEngine run would use
// its CSR row kernel, whose floating-point order differs; unit-weight
// streams (the common case, where sums are exact) and weighted record
// streams agree bit-for-bit on every path.
//
// Memory: per run, one n-sized double plane per degree array on
// unit-weight streams driven run-major; kShardSlots planes per degree
// array on weighted streams, and on unit-weight streams when work-major
// shard-splitting may engage (the price of slot-isolated concurrency) —
// O(K n) either way, the semi-streaming budget times the fused width.

#ifndef DENSEST_CORE_MULTI_RUN_H_
#define DENSEST_CORE_MULTI_RUN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "core/density.h"
#include "core/pass_engine.h"
#include "stream/edge_stream.h"

namespace densest {

/// \brief How Drive() spreads a chunk round's accumulation across threads.
enum class MultiRunFanOut {
  /// Run-major while active runs >= threads, work-major once fewer runs
  /// than threads remain. The default: never idles cores, never pays the
  /// task-splitting overhead while run-major already saturates the pool.
  kAuto,
  /// Always one task per run (PR 2's original behaviour).
  kRunMajor,
  /// Always split shards within runs (testing, and few-runs/many-threads
  /// sweeps where every round benefits).
  kWorkMajor,
};

/// \brief Knobs for a MultiRunEngine.
struct MultiRunOptions {
  /// Worker threads for the fan-out. 0 = hardware concurrency; 1 = fully
  /// sequential. Any value yields bit-identical results; it only changes
  /// wall-clock time.
  size_t num_threads = 0;
  /// Fan-out shape (see MultiRunFanOut). Any value yields bit-identical
  /// results.
  MultiRunFanOut fan_out = MultiRunFanOut::kAuto;
  /// Optional cooperative cancellation for Drive() (the repo-wide options
  /// convention, common/cancel.h): polled once per chunk round of the
  /// shared scan. The sweep entry points (Run*Runs) ignore this and take
  /// their token from the per-run option structs instead — the scan is
  /// physically shared, so one token governs the whole sweep.
  const CancelToken* cancel = nullptr;
};

/// \brief Drives K independent peeling runs from shared physical scans.
///
/// Holds reusable scratch (chunk buffer, a sequential PassEngine for
/// post-compaction buffer passes), so one engine should be reused across
/// sweeps. Not safe for concurrent use from multiple threads; create one
/// engine per concurrent sweep.
class MultiRunEngine {
 public:
  /// Chunk granularity, shared with PassEngine so fused accumulation
  /// reproduces its shard/slot schedule bit-for-bit.
  static constexpr size_t kShardEdges = PassEngine::kShardEdges;
  static constexpr size_t kShardSlots = PassEngine::kShardSlots;

  /// \brief One fused run: private accumulator state plus peel logic,
  /// driven by Drive(). Implementations exist for Algorithms 1-3 (behind
  /// the Run*Runs entry points below) and for the sketched Algorithm 1
  /// (sketch/sketch_runs.h); new peeling variants join the fusion by
  /// implementing this interface, not by touching the engine.
  class FusedRun {
   public:
    virtual ~FusedRun() = default;

    /// True once the run needs no further passes of any kind.
    virtual bool done() const = 0;
    /// True while the run needs the next pass over the shared stream.
    /// A run that is not done yet returns false to leave the scan (e.g.
    /// Algorithm 1 after §6.3 compaction); Drive() then calls
    /// FinishOffStream once and excludes it from further fan-out.
    virtual bool wants_stream() const { return !done(); }
    /// Starts a pass: zero whatever the accumulators need zeroed.
    virtual void BeginPass() = 0;
    /// Folds one shard into accumulator slot `slot`. Shards of one round
    /// arrive either in order from a single thread (run-major, or
    /// parallel_shards() == false) or concurrently from several threads
    /// with distinct `slot` values (work-major).
    virtual void AccumulateShard(std::span<const Edge> shard,
                                 size_t slot) = 0;
    /// Whether distinct shards of one round may be accumulated
    /// concurrently. True requires slot-isolated accumulators (each slot
    /// writes its own plane, reduced in slot order afterwards). Runs whose
    /// per-pass state is order-dependent — a Count-Sketch that must see
    /// updates in stream order, a survivor buffer appended in stream
    /// order — return false and stay sequential within each round.
    virtual bool parallel_shards() const = 0;
    /// Ends a pass: reduce slots, apply the peel step.
    virtual void FinishPass() = 0;
    /// Finishes a run that left the scan (wants_stream() false, done()
    /// false) over its private state; costs no physical scans.
    virtual void FinishOffStream(PassEngine& engine) { (void)engine; }
  };

  explicit MultiRunEngine(const MultiRunOptions& options = {});
  ~MultiRunEngine();

  MultiRunEngine(const MultiRunEngine&) = delete;
  MultiRunEngine& operator=(const MultiRunEngine&) = delete;

  /// Resolved fan-out width (1 means sequential).
  size_t num_threads() const { return num_threads_; }

  /// True when Drive() may split shards within a run (a pool exists and
  /// the fan-out mode permits work-major rounds). Runs backing such a
  /// sweep must allocate slot-isolated accumulators to honour
  /// parallel_shards(); unit-weight sums are integer-exact, so the slotted
  /// planes change memory, never bits.
  bool may_split_shards() const {
    return pool_ != nullptr && fan_out_ != MultiRunFanOut::kRunMajor;
  }

  /// Drives every run in `runs` to completion over shared physical scans
  /// of `stream`. Updates last_physical_passes() / last_edges_scanned().
  /// Fails (abandoning the partial results) when the stream reports an IO
  /// error — a failing stream ends passes early and silently, and peeling
  /// on truncated statistics would yield plausible-looking wrong answers.
  /// MultiRunOptions::cancel is polled once per chunk round of the shared
  /// scan; on cancellation Drive abandons the sweep the same way and
  /// returns kCancelled / kDeadlineExceeded.
  Status Drive(EdgeStream& stream, std::span<FusedRun* const> runs);

  /// Deprecated spelling: pass the token through MultiRunOptions::cancel
  /// (or, for the sweep entry points, through the per-run option structs).
  /// Kept as a thin forwarding shim so existing callers compile; a
  /// non-null `cancel` here overrides the options token for this call.
  Status Drive(EdgeStream& stream, std::span<FusedRun* const> runs,
               const CancelToken* cancel);

  /// Fused Algorithm 3: one directed peeling run per entry of `runs`, all
  /// fed from shared scans of `stream`. Results are positionally matched
  /// to `runs` and identical to sequential RunAlgorithm3 calls (see the
  /// determinism note above — including its weighted-CSR caveat; RunCSearch
  /// wraps this with a fallback that makes its guarantee unconditional).
  /// Per-run `engine` fields are ignored. The shared scan polls the first
  /// non-null per-run `cancel` token (the sweep entry points assume one
  /// token governs the whole sweep — the scan is physically shared, so one
  /// run cannot be cancelled without stopping the others).
  StatusOr<std::vector<DirectedDensestResult>> RunDirectedRuns(
      EdgeStream& stream, const std::vector<Algorithm3Options>& runs);

  /// Fused Algorithm 1 (the epsilon-sweep workhorse; the weighted-CSR
  /// caveat above applies — RunAlgorithm1EpsilonSweep adds the fallback).
  /// §6.3 compaction is honored per run: once a run buffers its survivors
  /// it leaves the fan-out and finishes over its private buffer, costing no
  /// further physical scans — exactly as it would alone.
  StatusOr<std::vector<UndirectedDensestResult>> RunUndirectedRuns(
      EdgeStream& stream, const std::vector<Algorithm1Options>& runs);

  /// Fused Algorithm 2 (the weighted-CSR caveat above applies).
  StatusOr<std::vector<UndirectedDensestResult>> RunUndirectedRuns(
      EdgeStream& stream, const std::vector<Algorithm2Options>& runs);

  /// Batch recompute entry point for the dynamic maintenance service
  /// (dynamic/dynamic_densest.h): one Algorithm 1 run over a frozen
  /// snapshot of the service's live edge set, driven through this engine so
  /// the service's slow path shares scratch, thread fan-out and scan
  /// accounting with every other batch sweep instead of being a separate
  /// world.
  StatusOr<UndirectedDensestResult> RecomputeUndirected(
      EdgeStream& stream, const Algorithm1Options& options);

  /// Physical scans of the stream the last Drive() performed.
  uint64_t last_physical_passes() const { return last_physical_passes_; }
  /// Sum over runs of the stream passes they consumed — what the same
  /// sweep costs in scans when executed run by run. The fused saving is
  /// last_logical_passes() / last_physical_passes(). Recorded by the
  /// sweep entry points layered on Drive() (Run*Runs here, RunSketchedSweep
  /// in sketch/sketch_runs.h) via RecordLogicalPasses.
  uint64_t last_logical_passes() const { return last_logical_passes_; }
  /// Edges delivered by the stream across the last Drive()'s scans.
  uint64_t last_edges_scanned() const { return last_edges_scanned_; }

  /// For sweep drivers layered on Drive(): records the run-by-run scan
  /// cost of the sweep that just executed (Drive resets it to 0).
  void RecordLogicalPasses(uint64_t passes) { last_logical_passes_ = passes; }

 private:
  void Dispatch(size_t count, const std::function<void(size_t)>& fn);
  /// Whether a K-way sweep over `stream` may use the single direct
  /// accumulation plane per degree array: unit weights (any order is the
  /// same bits) and no prospect of work-major shard-splitting, which needs
  /// slot-isolated planes. Work-major engages from the first round when
  /// forced, or under kAuto when the sweep starts with fewer runs than
  /// threads; a wide kAuto sweep keeps the frugal direct planes — if it
  /// later narrows below the thread count, its direct runs simply stay
  /// whole-round tasks (parallel_shards() false), trading late-sweep
  /// speedup for 8x less accumulator memory.
  bool UseDirectPlanes(const EdgeStream& stream, size_t num_runs) const {
    if (!stream.HasUnitWeights()) return false;
    if (!may_split_shards()) return true;
    return fan_out_ != MultiRunFanOut::kWorkMajor && num_runs >= num_threads_;
  }
  /// Whether this round should split shards within runs.
  bool UseWorkMajor(size_t active_runs) const {
    if (!may_split_shards()) return false;
    return fan_out_ == MultiRunFanOut::kWorkMajor ||
           active_runs < num_threads_;
  }

  size_t num_threads_ = 1;
  MultiRunFanOut fan_out_ = MultiRunFanOut::kAuto;
  const CancelToken* default_cancel_ = nullptr;  // MultiRunOptions::cancel
  // Concurrency contract (no mutex by design, same as PassEngine): every
  // task of a round writes one (run, slot) accumulator plane no other task
  // of that round touches, and the round's ParallelFor completion barrier
  // is the only publication point — caller writes happen-before the
  // tasks, task writes happen-before the slot-order reduction that reads
  // them. No engine state may be touched while a round is in flight.
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads_ == 1
  std::vector<Edge> batch_;           // kShardSlots * kShardEdges capacity
  /// (run, shard) task list scratch for work-major rounds.
  std::vector<std::pair<uint32_t, uint32_t>> task_scratch_;
  /// Sequential engine for the in-memory passes of compacted Algorithm 1
  /// runs (deterministic for any thread count, so 1 thread loses nothing).
  std::unique_ptr<PassEngine> buffer_engine_;

  uint64_t last_physical_passes_ = 0;
  uint64_t last_logical_passes_ = 0;
  uint64_t last_edges_scanned_ = 0;
};

/// Convenience for the Figure 6.1-style sweeps: runs Algorithm 1 once per
/// epsilon, all fused over shared scans of `stream`. `base` supplies every
/// other option. Results are positionally matched to `epsilons`. Uses a
/// private MultiRunEngine when `engine` is null.
StatusOr<std::vector<UndirectedDensestResult>> RunAlgorithm1EpsilonSweep(
    EdgeStream& stream, const Algorithm1Options& base,
    const std::vector<double>& epsilons, MultiRunEngine* engine = nullptr);

}  // namespace densest

#endif  // DENSEST_CORE_MULTI_RUN_H_
