// Copyright 2026 The densest Authors.
// Fused multi-run passes: peel every configuration in one scan of the
// stream.
//
// The directed c-search tries O(log_delta n) values of c, and the
// epsilon-sweep benches try a dozen epsilons — and every one of those runs
// re-scans the same edges. Bahmani et al. observe the candidate c values
// "can be tried in parallel" over the same passes; MultiRunEngine is that
// observation as a subsystem. It holds K independent peeling runs (each
// with its own alive sets, degree accumulators and threshold rule from
// core/peel_runs.h) and drives all of them from ONE physical scan per
// pass: each chunk pulled through a PassCursor is fanned across the active
// runs, run-major on the ThreadPool, so no two threads ever share an
// accumulator. Runs that converge drop out of the fan-out; the pass loop
// ends when all runs are done. Total physical scans = max over runs of
// their pass count, instead of the sum.
//
// Determinism: each run consumes chunks single-threaded in stream order
// and accumulates through exactly PassEngine's shard/slot schedule
// (kShardEdges-edge shards, shard i of a round into slot i, slots reduced
// in index order), so every per-run result is bit-identical to a
// sequential RunAlgorithm{1,2,3} call on the same stream — for any fan-out
// thread count. The one caveat: a *weighted* stream that exposes a CSR
// view is accumulated here through the batched schedule, while a solo
// PassEngine run would use its CSR row kernel, whose floating-point order
// differs; unit-weight streams (the common case, where sums are exact) and
// weighted record streams agree bit-for-bit on every path.
//
// Memory: per run, one n-sized double plane per degree array on
// unit-weight streams; kShardSlots planes per degree array on weighted
// streams (the price of the order-deterministic reduction) — O(K n)
// either way, the semi-streaming budget times the fused width.

#ifndef DENSEST_CORE_MULTI_RUN_H_
#define DENSEST_CORE_MULTI_RUN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "core/density.h"
#include "core/pass_engine.h"
#include "stream/edge_stream.h"

namespace densest {

/// \brief Knobs for a MultiRunEngine.
struct MultiRunOptions {
  /// Worker threads for the run-major fan-out. 0 = hardware concurrency;
  /// 1 = fully sequential. Any value yields bit-identical results; it only
  /// changes wall-clock time.
  size_t num_threads = 0;
};

/// \brief Drives K independent peeling runs from shared physical scans.
///
/// Holds reusable scratch (chunk buffer, a sequential PassEngine for
/// post-compaction buffer passes), so one engine should be reused across
/// sweeps. Not safe for concurrent use from multiple threads; create one
/// engine per concurrent sweep.
class MultiRunEngine {
 public:
  /// Chunk granularity, shared with PassEngine so fused accumulation
  /// reproduces its shard/slot schedule bit-for-bit.
  static constexpr size_t kShardEdges = PassEngine::kShardEdges;
  static constexpr size_t kShardSlots = PassEngine::kShardSlots;

  explicit MultiRunEngine(const MultiRunOptions& options = {});
  ~MultiRunEngine();

  MultiRunEngine(const MultiRunEngine&) = delete;
  MultiRunEngine& operator=(const MultiRunEngine&) = delete;

  /// Resolved fan-out width (1 means sequential).
  size_t num_threads() const { return num_threads_; }

  /// Fused Algorithm 3: one directed peeling run per entry of `runs`, all
  /// fed from shared scans of `stream`. Results are positionally matched
  /// to `runs` and identical to sequential RunAlgorithm3 calls (see the
  /// determinism note above — including its weighted-CSR caveat; RunCSearch
  /// wraps this with a fallback that makes its guarantee unconditional).
  /// Per-run `engine` fields are ignored.
  StatusOr<std::vector<DirectedDensestResult>> RunDirectedRuns(
      EdgeStream& stream, const std::vector<Algorithm3Options>& runs);

  /// Fused Algorithm 1 (the epsilon-sweep workhorse; the weighted-CSR
  /// caveat above applies — RunAlgorithm1EpsilonSweep adds the fallback).
  /// §6.3 compaction is honored per run: once a run buffers its survivors
  /// it leaves the fan-out and finishes over its private buffer, costing no
  /// further physical scans — exactly as it would alone.
  StatusOr<std::vector<UndirectedDensestResult>> RunUndirectedRuns(
      EdgeStream& stream, const std::vector<Algorithm1Options>& runs);

  /// Fused Algorithm 2 (the weighted-CSR caveat above applies).
  StatusOr<std::vector<UndirectedDensestResult>> RunUndirectedRuns(
      EdgeStream& stream, const std::vector<Algorithm2Options>& runs);

  /// Physical scans of the stream the last Run*Runs call performed.
  uint64_t last_physical_passes() const { return last_physical_passes_; }
  /// Sum over runs of the stream passes they consumed — what the same
  /// sweep costs in scans when executed run by run. The fused saving is
  /// last_logical_passes() / last_physical_passes().
  uint64_t last_logical_passes() const { return last_logical_passes_; }
  /// Edges delivered by the stream across the last call's scans.
  uint64_t last_edges_scanned() const { return last_edges_scanned_; }

 private:
  template <typename RunT>
  void DriveRuns(EdgeStream& stream, std::vector<RunT>& states);
  void Dispatch(size_t count, const std::function<void(size_t)>& fn);

  size_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads_ == 1
  std::vector<Edge> batch_;           // kShardSlots * kShardEdges capacity
  /// Sequential engine for the in-memory passes of compacted Algorithm 1
  /// runs (deterministic for any thread count, so 1 thread loses nothing).
  std::unique_ptr<PassEngine> buffer_engine_;

  uint64_t last_physical_passes_ = 0;
  uint64_t last_logical_passes_ = 0;
  uint64_t last_edges_scanned_ = 0;
};

/// Convenience for the Figure 6.1-style sweeps: runs Algorithm 1 once per
/// epsilon, all fused over shared scans of `stream`. `base` supplies every
/// other option. Results are positionally matched to `epsilons`. Uses a
/// private MultiRunEngine when `engine` is null.
StatusOr<std::vector<UndirectedDensestResult>> RunAlgorithm1EpsilonSweep(
    EdgeStream& stream, const Algorithm1Options& base,
    const std::vector<double>& epsilons, MultiRunEngine* engine = nullptr);

}  // namespace densest

#endif  // DENSEST_CORE_MULTI_RUN_H_
