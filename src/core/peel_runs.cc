#include "core/peel_runs.h"

#include <algorithm>
#include <cmath>

namespace densest {

namespace {

/// Decides which side to peel under the naive max-degree rule (§4.3):
/// returns true to peel S. Compares the max indegree among B(T) against the
/// max outdegree among A(S), scaled by c.
bool PeelSByMaxDegreeRule(const NodeSet& s, const NodeSet& t,
                          const std::vector<double>& out_to_t,
                          const std::vector<double>& in_from_s,
                          double weight, double epsilon, double c) {
  const double s_threshold = (1.0 + epsilon) * weight / s.size();
  const double t_threshold = (1.0 + epsilon) * weight / t.size();
  const NodeId n = s.universe_size();
  double max_out_in_a = 0;  // E(i*, T) over i in A(S)
  double max_in_in_b = 0;   // E(S, j*) over j in B(T)
  for (NodeId u = 0; u < n; ++u) {
    if (s.Contains(u) && out_to_t[u] <= s_threshold) {
      max_out_in_a = std::max(max_out_in_a, out_to_t[u]);
    }
    if (t.Contains(u) && in_from_s[u] <= t_threshold) {
      max_in_in_b = std::max(max_in_in_b, in_from_s[u]);
    }
  }
  if (max_out_in_a == 0) return true;   // removing A(S) is free
  if (max_in_in_b == 0) return false;   // removing B(T) is free
  return max_in_in_b / max_out_in_a >= c;
}

}  // namespace

// ------------------------------------------------------------- Algorithm 1

Algorithm1Run::Algorithm1Run(NodeId n, const Algorithm1Options& options)
    : options_(options), n_(n), alive_(n, /*full=*/true), best_(alive_) {
  done_ = alive_.empty();
}

void Algorithm1Run::ApplyPass(const UndirectedPassResult& stats,
                              const std::vector<double>& degrees) {
  ++pass_;
  if (mode_ != PassMode::kBuffer) ++io_passes_;
  if (mode_ == PassMode::kCollectPass) mode_ = PassMode::kBuffer;

  const double rho = stats.weight / static_cast<double>(alive_.size());

  // Algorithm 1 line 5: S~ tracks the densest intermediate subgraph.
  // (Pass 1 sees S = V, matching the S~ <- V initialization.)
  if (rho > best_density_) {
    best_density_ = rho;
    best_ = alive_;
  }

  // Algorithm 1 line 3: A(S) = { i in S : deg_S(i) <= 2(1+eps) rho(S) }.
  const double factor = 2.0 * (1.0 + options_.epsilon);
  const double threshold = factor * rho;
  NodeId removed = 0;
  for (NodeId u = 0; u < n_; ++u) {
    if (alive_.Contains(u) && degrees[u] <= threshold) {
      alive_.Remove(u);
      ++removed;
    }
  }

  // Arm compaction for the next pass once the survivor count is small.
  // (The surviving edge count after removal is at most stats.edges.)
  if (mode_ == PassMode::kStream && options_.compact_below_edges > 0 &&
      stats.edges <= options_.compact_below_edges) {
    mode_ = PassMode::kCollectPass;
    buffer_.reserve(static_cast<size_t>(stats.edges));
  }

  if (options_.record_trace) {
    PassSnapshot snap;
    snap.pass = pass_;
    snap.nodes = static_cast<NodeId>(alive_.size() + removed);
    snap.edges = stats.edges;
    snap.weight = stats.weight;
    snap.density = rho;
    snap.threshold = threshold;
    snap.removed = removed;
    result_.trace.push_back(snap);
  }

  done_ = alive_.empty() ||
          (options_.max_passes != 0 && pass_ >= options_.max_passes);
}

UndirectedDensestResult Algorithm1Run::TakeResult() {
  result_.nodes = best_.ToVector();
  result_.density = best_density_ < 0 ? 0.0 : best_density_;
  result_.passes = pass_;
  result_.io_passes = io_passes_;
  // Lemma 1: rho* <= 2(1+eps) rho(S~).
  result_.certified_band = 2.0 * (1.0 + options_.epsilon);
  return std::move(result_);
}

// ------------------------------------------------------------- Algorithm 2

Algorithm2Run::Algorithm2Run(NodeId n, const Algorithm2Options& options)
    : options_(options), n_(n), alive_(n, /*full=*/true), best_(alive_) {
  done_ = alive_.empty() || alive_.size() < options_.min_size;
}

void Algorithm2Run::ApplyPass(const UndirectedPassResult& stats,
                              const std::vector<double>& degrees) {
  ++pass_;
  const double rho = stats.weight / static_cast<double>(alive_.size());

  // Algorithm 2 line 6: best intermediate subgraph with |S| >= k.
  if (alive_.size() >= options_.min_size && rho > best_density_) {
    best_density_ = rho;
    best_ = alive_;
  }

  // A~(S): the below-threshold candidates.
  const double factor = 2.0 * (1.0 + options_.epsilon);
  const double threshold = factor * rho;
  candidates_.clear();
  for (NodeId u = 0; u < n_; ++u) {
    if (alive_.Contains(u) && degrees[u] <= threshold) {
      candidates_.push_back(u);
    }
  }

  // Algorithm 2 line 4: remove only |A(S)| = eps/(1+eps) |S| of them —
  // the lowest-degree ones — so some intermediate set lands near size k.
  const double removal_fraction = options_.epsilon / (1.0 + options_.epsilon);
  NodeId quota = static_cast<NodeId>(std::ceil(
      removal_fraction * static_cast<double>(alive_.size())));
  quota = std::max<NodeId>(quota, 1);
  quota = std::min<NodeId>(quota, static_cast<NodeId>(candidates_.size()));
  if (quota < candidates_.size()) {
    std::nth_element(candidates_.begin(), candidates_.begin() + quota,
                     candidates_.end(), [&](NodeId a, NodeId b) {
                       return degrees[a] != degrees[b]
                                  ? degrees[a] < degrees[b]
                                  : a < b;
                     });
    candidates_.resize(quota);
  }
  for (NodeId u : candidates_) alive_.Remove(u);

  if (options_.record_trace) {
    PassSnapshot snap;
    snap.pass = pass_;
    snap.nodes = static_cast<NodeId>(alive_.size() + candidates_.size());
    snap.edges = stats.edges;
    snap.weight = stats.weight;
    snap.density = rho;
    snap.threshold = threshold;
    snap.removed = static_cast<NodeId>(candidates_.size());
    result_.trace.push_back(snap);
  }

  done_ = candidates_.empty() ||  // nothing removable: avoid spinning
          alive_.empty() || alive_.size() < options_.min_size ||
          (options_.max_passes != 0 && pass_ >= options_.max_passes);
}

UndirectedDensestResult Algorithm2Run::TakeResult() {
  result_.nodes = best_.ToVector();
  result_.density = best_density_ < 0 ? 0.0 : best_density_;
  result_.passes = pass_;
  result_.io_passes = pass_;
  // Theorem 4: rho*_{>=k} <= 3(1+eps) rho(S~) for the at-least-k problem.
  result_.certified_band = 3.0 * (1.0 + options_.epsilon);
  return std::move(result_);
}

// ------------------------------------------------------------- Algorithm 3

Algorithm3Run::Algorithm3Run(NodeId n, const Algorithm3Options& options)
    : options_(options),
      n_(n),
      s_(n, /*full=*/true),
      t_(n, /*full=*/true),
      best_s_(s_),
      best_t_(t_) {
  result_.c = options.c;
  done_ = s_.empty() || t_.empty();
}

void Algorithm3Run::ApplyPass(const DirectedPassResult& stats,
                              const std::vector<double>& out_to_t,
                              const std::vector<double>& in_from_s) {
  ++pass_;
  const double rho =
      stats.weight / std::sqrt(static_cast<double>(s_.size()) *
                               static_cast<double>(t_.size()));

  // Algorithm 3 line 10: track the densest intermediate pair.
  if (rho > best_density_) {
    best_density_ = rho;
    best_s_ = s_;
    best_t_ = t_;
  }

  bool peel_s;
  if (options_.rule == DirectedRemovalRule::kSizeRatio) {
    // Algorithm 3 line 3: drive |S|/|T| toward c.
    peel_s = static_cast<double>(s_.size()) / static_cast<double>(t_.size()) >=
             options_.c;
  } else {
    peel_s = PeelSByMaxDegreeRule(s_, t_, out_to_t, in_from_s, stats.weight,
                                  options_.epsilon, options_.c);
  }

  NodeId removed = 0;
  if (peel_s) {
    const double threshold = (1.0 + options_.epsilon) * stats.weight /
                             static_cast<double>(s_.size());
    for (NodeId u = 0; u < n_; ++u) {
      if (s_.Contains(u) && out_to_t[u] <= threshold) {
        s_.Remove(u);
        ++removed;
      }
    }
  } else {
    const double threshold = (1.0 + options_.epsilon) * stats.weight /
                             static_cast<double>(t_.size());
    for (NodeId u = 0; u < n_; ++u) {
      if (t_.Contains(u) && in_from_s[u] <= threshold) {
        t_.Remove(u);
        ++removed;
      }
    }
  }

  if (options_.record_trace) {
    DirectedPassSnapshot snap;
    snap.pass = pass_;
    snap.s_size =
        peel_s ? static_cast<NodeId>(s_.size() + removed) : s_.size();
    snap.t_size =
        peel_s ? t_.size() : static_cast<NodeId>(t_.size() + removed);
    snap.weight = stats.weight;
    snap.density = rho;
    snap.removed_from_s = peel_s;
    snap.removed = removed;
    result_.trace.push_back(snap);
  }

  done_ = s_.empty() || t_.empty() ||
          (options_.max_passes != 0 && pass_ >= options_.max_passes);
}

DirectedDensestResult Algorithm3Run::TakeResult() {
  result_.s_nodes = best_s_.ToVector();
  result_.t_nodes = best_t_.ToVector();
  result_.density = best_density_ < 0 ? 0.0 : best_density_;
  result_.passes = pass_;
  // Theorem 6: rho*(c) <= 2(1+eps) rho(S~, T~) at this ratio c.
  result_.certified_band = 2.0 * (1.0 + options_.epsilon);
  return std::move(result_);
}

}  // namespace densest
