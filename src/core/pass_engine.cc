#include "core/pass_engine.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace densest {

namespace {

/// Contiguous row range of a CSR kernel shard.
struct RowShard {
  NodeId begin = 0;
  NodeId end = 0;  // exclusive
};

/// Splits [0, n) into row ranges of roughly `entries_per_shard` adjacency
/// entries each (rows are never split). Depends only on the graph shape,
/// so shard boundaries are identical for every thread count.
template <typename DegreeFn>
std::vector<RowShard> ShardRows(NodeId n, const DegreeFn& degree,
                                size_t entries_per_shard) {
  std::vector<RowShard> shards;
  RowShard cur;
  size_t entries = 0;
  for (NodeId u = 0; u < n; ++u) {
    entries += degree(u);
    if (entries >= entries_per_shard) {
      cur.end = u + 1;
      shards.push_back(cur);
      cur.begin = u + 1;
      entries = 0;
    }
  }
  cur.end = n;
  if (cur.end > cur.begin) shards.push_back(cur);
  return shards;
}

}  // namespace

PassEngine::PassEngine(const PassEngineOptions& options) {
  num_threads_ = options.num_threads;
  if (num_threads_ == 0) {
    num_threads_ = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  slot_weight_.fill(0.0);
  slot_edges_.fill(0);
}

PassEngine::~PassEngine() = default;

void PassEngine::EnsureBatchBuffer() {
  batch_.resize(kShardSlots * kShardEdges);
}

void PassEngine::EnsureAccumulators(size_t n, size_t planes) {
  acc_.resize(planes * kShardSlots);
  for (std::vector<double>& slot : acc_) {
    // Slots are zero here by invariant: fresh allocations start zeroed and
    // ReduceAndClear re-zeroes after every pass. A size change re-zeroes.
    if (slot.size() != n) slot.assign(n, 0.0);
  }
  slot_weight_.fill(0.0);
  slot_edges_.fill(0);
}

size_t PassEngine::FillShards(
    EdgeStream& stream, std::array<std::span<const Edge>, kShardSlots>& shards) {
  return FillShardRound(
      [&stream](Edge* scratch, size_t cap) {
        return stream.NextView(scratch, cap);
      },
      batch_.data(), shards);
}

void PassEngine::DispatchRound(size_t shards,
                               const std::function<void(size_t)>& fn) {
  // The central fan-out seam: every sharded pass kernel funnels its rounds
  // here, so round/shard tallies and the round span cover all of them.
  DENSEST_TRACE_SPAN("core.pass_round");
  DENSEST_METRIC_COUNTER("core.pass_rounds").Inc();
  DENSEST_METRIC_COUNTER("core.pass_shards").Inc(shards);
  if (pool_ != nullptr && shards > 1) {
    pool_->ParallelFor(shards, fn);
  } else {
    for (size_t i = 0; i < shards; ++i) fn(i);
  }
}

void PassEngine::ReduceAndClear(size_t plane, std::vector<double>& degrees) {
  const size_t n = degrees.size();
  std::vector<double>* slots = acc_.data() + plane * kShardSlots;
  for (size_t u = 0; u < n; ++u) {
    double total = 0.0;
    for (size_t s = 0; s < kShardSlots; ++s) {
      total += slots[s][u];
      slots[s][u] = 0.0;
    }
    degrees[u] = total;
  }
}

UndirectedPassResult PassEngine::RunUndirected(EdgeStream& stream,
                                               const NodeSet& alive,
                                               std::vector<double>& degrees,
                                               const CancelToken* cancel) {
  return RunUndirectedImpl(stream, alive, degrees, nullptr, cancel);
}

UndirectedPassResult PassEngine::RunUndirectedCollect(
    EdgeStream& stream, const NodeSet& alive, std::vector<double>& degrees,
    std::vector<Edge>* survivors, const CancelToken* cancel) {
  return RunUndirectedImpl(stream, alive, degrees, survivors, cancel);
}

UndirectedPassResult PassEngine::RunUndirectedImpl(
    EdgeStream& stream, const NodeSet& alive, std::vector<double>& degrees,
    std::vector<Edge>* survivors, const CancelToken* cancel) {
  DENSEST_TRACE_SPAN("core.pass_undirected");
  DENSEST_METRIC_COUNTER("core.passes").Inc();
  if (survivors == nullptr) {
    if (const UndirectedGraph* g = stream.UndirectedCsrView()) {
      stream.Reset();  // keeps pass accounting uniform with the batch path
      return RunUndirectedCsr(*g, alive, degrees, cancel);
    }
  }
  EnsureBatchBuffer();
  stream.Reset();

  if (UseDirectPath(stream)) {
    // Unit weights, sequential: accumulate straight into `degrees`. Exact
    // integer-valued sums make this bit-identical to any slotted schedule.
    std::fill(degrees.begin(), degrees.end(), 0.0);
    UndirectedPassResult out;
    double weight = 0.0;
    for (;;) {
      if (ShouldStop(cancel)) break;
      std::span<const Edge> view =
          stream.NextView(batch_.data(), batch_.size());
      if (view.empty()) break;
      if (survivors != nullptr) {
        for (const Edge& e : view) {
          if (alive.ContainsBoth(e.u, e.v)) {
            degrees[e.u] += 1.0;
            degrees[e.v] += 1.0;
            weight += 1.0;
            survivors->push_back(e);
          }
        }
      } else {
        // Branchless: dead edges add 0.0 (a no-op on the degree values),
        // so the loop carries no unpredictable branch.
        for (const Edge& e : view) {
          const double keep = alive.ContainsBoth(e.u, e.v) ? 1.0 : 0.0;
          degrees[e.u] += keep;
          degrees[e.v] += keep;
          weight += keep;
        }
      }
    }
    out.weight = weight;
    out.edges = static_cast<EdgeId>(weight);  // unit weights: count == sum
    return out;
  }

  EnsureAccumulators(degrees.size(), /*planes=*/1);
  std::array<std::span<const Edge>, kShardSlots> shards;
  for (;;) {
    if (ShouldStop(cancel)) break;
    const size_t count = FillShards(stream, shards);
    if (count == 0) break;
    DispatchRound(count, [&](size_t s) {
      std::vector<double>& acc = acc_[s];
      std::vector<Edge>* out =
          survivors != nullptr ? &slot_survivors_[s] : nullptr;
      if (out != nullptr) out->clear();
      double weight = 0.0;
      EdgeId edges = 0;
      for (const Edge& e : shards[s]) {
        if (alive.ContainsBoth(e.u, e.v)) {
          acc[e.u] += e.w;
          acc[e.v] += e.w;
          weight += e.w;
          ++edges;
          if (out != nullptr) out->push_back(e);
        }
      }
      slot_weight_[s] += weight;
      slot_edges_[s] += edges;
    });
    if (survivors != nullptr) {
      // Slot order == stream order: survivors stay in stream order.
      for (size_t s = 0; s < count; ++s) {
        survivors->insert(survivors->end(), slot_survivors_[s].begin(),
                          slot_survivors_[s].end());
      }
    }
    if (count < kShardSlots) break;
  }

  UndirectedPassResult out;
  for (size_t s = 0; s < kShardSlots; ++s) {
    out.weight += slot_weight_[s];
    out.edges += slot_edges_[s];
  }
  ReduceAndClear(/*plane=*/0, degrees);
  return out;
}

UndirectedPassResult PassEngine::RunUndirectedCsr(
    const UndirectedGraph& g, const NodeSet& alive,
    std::vector<double>& degrees, const CancelToken* cancel) {
  const NodeId n = g.num_nodes();
  const bool weighted = g.is_weighted();
  // The sequential kernels below have no round structure, so they poll the
  // token every ~kShardEdges adjacency entries — the same bounded unit of
  // work as one shard. poll_countdown counts entries down to the next poll.
  size_t poll_countdown = kShardEdges;
  // Every undirected edge {u, v} occupies the adjacency slot (u, v) AND
  // (v, u) — a self-loop only (u, u). Walking ALL slots therefore adds each
  // edge's weight to both endpoint degrees with purely sequential reads;
  // edge/weight totals are halved at the end (self-loops counted twice via
  // `self` so the halving stays exact).
  if (pool_ == nullptr && !weighted) {
    std::fill(degrees.begin(), degrees.end(), 0.0);
    double twice_weight = 0.0;
    double self_weight = 0.0;
    if (!g.has_self_loops()) {
      // Two-way unroll with independent row accumulators: breaks the
      // serial FP-add dependency chain. Reassociation is safe — unit
      // weights sum exactly, so every order gives the same bits.
      for (NodeId u = 0; u < n; ++u) {
        if (!alive.Contains(u)) continue;  // whole dead rows cost nothing
        auto nbrs = g.Neighbors(u);
        if (nbrs.size() >= poll_countdown) {
          if (ShouldStop(cancel)) break;
          poll_countdown = kShardEdges;
        } else {
          poll_countdown -= nbrs.size();
        }
        double row0 = 0.0, row1 = 0.0;
        size_t i = 0;
        for (; i + 2 <= nbrs.size(); i += 2) {
          const NodeId v0 = nbrs[i];
          const NodeId v1 = nbrs[i + 1];
          const double k0 = alive.Contains(v0) ? 1.0 : 0.0;
          const double k1 = alive.Contains(v1) ? 1.0 : 0.0;
          degrees[v0] += k0;
          degrees[v1] += k1;
          row0 += k0;
          row1 += k1;
        }
        if (i < nbrs.size()) {
          const NodeId v = nbrs[i];
          const double k = alive.Contains(v) ? 1.0 : 0.0;
          degrees[v] += k;
          row0 += k;
        }
        twice_weight += row0 + row1;
      }
    } else {
      for (NodeId u = 0; u < n; ++u) {
        if (!alive.Contains(u)) continue;
        auto nbrs = g.Neighbors(u);
        if (nbrs.size() >= poll_countdown) {
          if (ShouldStop(cancel)) break;
          poll_countdown = kShardEdges;
        } else {
          poll_countdown -= nbrs.size();
        }
        double row = 0.0;
        for (NodeId v : nbrs) {
          const double keep = alive.Contains(v) ? 1.0 : 0.0;
          degrees[v] += keep;
          row += keep;
          if (v == u) {  // self-loop: single slot, degree counts it twice
            degrees[u] += keep;
            self_weight += keep;
          }
        }
        twice_weight += row;
      }
    }
    UndirectedPassResult out;
    out.weight = (twice_weight + self_weight) / 2.0;
    out.edges = static_cast<EdgeId>(twice_weight + self_weight) / 2;
    return out;
  }

  EnsureAccumulators(n, /*planes=*/1);
  const std::vector<RowShard> shards = ShardRows(
      n, [&g](NodeId u) { return g.Degree(u); }, 2 * kShardEdges);
  std::array<double, kShardSlots> slot_self_weight{};
  std::array<EdgeId, kShardSlots> slot_self_edges{};
  for (size_t base = 0; base < shards.size(); base += kShardSlots) {
    if (ShouldStop(cancel)) break;
    const size_t count = std::min(kShardSlots, shards.size() - base);
    DispatchRound(count, [&](size_t s) {
      const RowShard shard = shards[base + s];
      std::vector<double>& acc = acc_[s];
      double twice_weight = 0.0;
      double self_weight = 0.0;
      EdgeId twice_edges = 0;
      EdgeId self_edges = 0;
      for (NodeId u = shard.begin; u < shard.end; ++u) {
        if (!alive.Contains(u)) continue;
        auto nbrs = g.Neighbors(u);
        auto ws = g.NeighborWeights(u);
        for (size_t i = 0; i < nbrs.size(); ++i) {
          const NodeId v = nbrs[i];
          if (!alive.Contains(v)) continue;
          const double w = weighted ? ws[i] : 1.0;
          acc[v] += w;
          twice_weight += w;
          ++twice_edges;
          if (v == u) {
            acc[u] += w;
            self_weight += w;
            ++self_edges;
          }
        }
      }
      slot_weight_[s] += twice_weight;
      slot_self_weight[s] += self_weight;
      slot_edges_[s] += twice_edges;
      slot_self_edges[s] += self_edges;
    });
  }
  double twice_weight = 0.0;
  double self_weight = 0.0;
  EdgeId twice_edges = 0;
  EdgeId self_edges = 0;
  for (size_t s = 0; s < kShardSlots; ++s) {
    twice_weight += slot_weight_[s];
    self_weight += slot_self_weight[s];
    twice_edges += slot_edges_[s];
    self_edges += slot_self_edges[s];
  }
  UndirectedPassResult out;
  out.weight = (twice_weight + self_weight) / 2.0;
  out.edges = (twice_edges + self_edges) / 2;
  ReduceAndClear(/*plane=*/0, degrees);
  return out;
}

UndirectedPassResult PassEngine::RunUndirectedBuffer(
    std::vector<Edge>& edges, const NodeSet& alive,
    std::vector<double>& degrees, bool compact, const CancelToken* cancel) {
  DENSEST_TRACE_SPAN("core.pass_undirected");
  DENSEST_METRIC_COUNTER("core.passes").Inc();
  EnsureAccumulators(degrees.size(), /*planes=*/1);
  const size_t total = edges.size();
  const size_t round_cap = kShardSlots * kShardEdges;
  size_t write = 0;
  std::array<size_t, kShardSlots> kept{};
  for (size_t start = 0; start < total; start += round_cap) {
    if (ShouldStop(cancel)) {
      // A compacting pass abandoned mid-buffer must not drop the rounds it
      // never scanned: keep the unscanned tail verbatim so the buffer stays
      // a superset of the surviving edges (the caller discards the pass).
      if (compact && write < start) {
        std::memmove(edges.data() + write, edges.data() + start,
                     (total - start) * sizeof(Edge));
      }
      if (compact) write += total - start;
      break;
    }
    const size_t round_edges = std::min(round_cap, total - start);
    const size_t shards = (round_edges + kShardEdges - 1) / kShardEdges;
    DispatchRound(shards, [&](size_t s) {
      Edge* base = edges.data() + start + s * kShardEdges;
      const size_t count = std::min(kShardEdges, round_edges - s * kShardEdges);
      std::vector<double>& acc = acc_[s];
      double weight = 0.0;
      EdgeId kept_edges = 0;
      size_t out_i = 0;
      for (size_t i = 0; i < count; ++i) {
        const Edge e = base[i];
        if (alive.ContainsBoth(e.u, e.v)) {
          acc[e.u] += e.w;
          acc[e.v] += e.w;
          weight += e.w;
          ++kept_edges;
          if (compact) base[out_i++] = e;
        }
      }
      kept[s] = compact ? out_i : count;
      slot_weight_[s] += weight;
      slot_edges_[s] += kept_edges;
    });
    if (compact) {
      // Stitch the per-shard survivor runs back together in shard order;
      // the relative edge order is exactly the original stream order.
      for (size_t s = 0; s < shards; ++s) {
        Edge* base = edges.data() + start + s * kShardEdges;
        if (kept[s] > 0 && edges.data() + write != base) {
          std::memmove(edges.data() + write, base, kept[s] * sizeof(Edge));
        }
        write += kept[s];
      }
    }
  }
  if (compact) edges.resize(write);

  UndirectedPassResult out;
  for (size_t s = 0; s < kShardSlots; ++s) {
    out.weight += slot_weight_[s];
    out.edges += slot_edges_[s];
  }
  ReduceAndClear(/*plane=*/0, degrees);
  return out;
}

DirectedPassResult PassEngine::RunDirected(EdgeStream& stream,
                                           const NodeSet& s_set,
                                           const NodeSet& t_set,
                                           std::vector<double>& out_to_t,
                                           std::vector<double>& in_from_s,
                                           const CancelToken* cancel) {
  DENSEST_TRACE_SPAN("core.pass_directed");
  DENSEST_METRIC_COUNTER("core.passes").Inc();
  if (const DirectedGraph* g = stream.DirectedCsrView()) {
    stream.Reset();
    return RunDirectedCsr(*g, s_set, t_set, out_to_t, in_from_s, cancel);
  }
  EnsureBatchBuffer();
  stream.Reset();

  if (UseDirectPath(stream)) {
    std::fill(out_to_t.begin(), out_to_t.end(), 0.0);
    std::fill(in_from_s.begin(), in_from_s.end(), 0.0);
    DirectedPassResult out;
    for (;;) {
      if (ShouldStop(cancel)) break;
      std::span<const Edge> view =
          stream.NextView(batch_.data(), batch_.size());
      if (view.empty()) break;
      for (const Edge& e : view) {
        if (s_set.Contains(e.u) && t_set.Contains(e.v)) {
          out_to_t[e.u] += e.w;
          in_from_s[e.v] += e.w;
          out.weight += e.w;
          ++out.arcs;
        }
      }
    }
    return out;
  }

  EnsureAccumulators(out_to_t.size(), /*planes=*/2);
  std::array<std::span<const Edge>, kShardSlots> shards;
  for (;;) {
    if (ShouldStop(cancel)) break;
    const size_t count = FillShards(stream, shards);
    if (count == 0) break;
    DispatchRound(count, [&](size_t s) {
      std::vector<double>& out_acc = acc_[s];
      std::vector<double>& in_acc = acc_[kShardSlots + s];
      double weight = 0.0;
      EdgeId arcs = 0;
      for (const Edge& e : shards[s]) {
        if (s_set.Contains(e.u) && t_set.Contains(e.v)) {
          out_acc[e.u] += e.w;
          in_acc[e.v] += e.w;
          weight += e.w;
          ++arcs;
        }
      }
      slot_weight_[s] += weight;
      slot_edges_[s] += arcs;
    });
    if (count < kShardSlots) break;
  }

  DirectedPassResult out;
  for (size_t s = 0; s < kShardSlots; ++s) {
    out.weight += slot_weight_[s];
    out.arcs += slot_edges_[s];
  }
  ReduceAndClear(/*plane=*/0, out_to_t);
  ReduceAndClear(/*plane=*/1, in_from_s);
  return out;
}

DirectedPassResult PassEngine::RunDirectedCsr(const DirectedGraph& g,
                                              const NodeSet& s_set,
                                              const NodeSet& t_set,
                                              std::vector<double>& out_to_t,
                                              std::vector<double>& in_from_s,
                                              const CancelToken* cancel) {
  const NodeId n = g.num_nodes();
  const bool weighted = g.is_weighted();
  size_t poll_countdown = kShardEdges;  // see RunUndirectedCsr
  // Arcs occupy exactly one adjacency slot, so no halving is needed; the
  // out-degree of a row accumulates in a register and stores once.
  if (pool_ == nullptr && !weighted) {
    std::fill(out_to_t.begin(), out_to_t.end(), 0.0);
    std::fill(in_from_s.begin(), in_from_s.end(), 0.0);
    DirectedPassResult out;
    for (NodeId u = 0; u < n; ++u) {
      if (!s_set.Contains(u)) continue;
      auto nbrs = g.OutNeighbors(u);
      if (nbrs.size() >= poll_countdown) {
        if (ShouldStop(cancel)) break;
        poll_countdown = kShardEdges;
      } else {
        poll_countdown -= nbrs.size();
      }
      double row = 0.0;
      for (NodeId v : nbrs) {
        const double keep = t_set.Contains(v) ? 1.0 : 0.0;
        in_from_s[v] += keep;
        row += keep;
      }
      out_to_t[u] = row;
      out.weight += row;
    }
    out.arcs = static_cast<EdgeId>(out.weight);
    return out;
  }

  EnsureAccumulators(n, /*planes=*/2);
  const std::vector<RowShard> shards = ShardRows(
      n, [&g](NodeId u) { return g.OutDegree(u); }, 2 * kShardEdges);
  for (size_t base = 0; base < shards.size(); base += kShardSlots) {
    if (ShouldStop(cancel)) break;
    const size_t count = std::min(kShardSlots, shards.size() - base);
    DispatchRound(count, [&](size_t s) {
      const RowShard shard = shards[base + s];
      std::vector<double>& out_acc = acc_[s];
      std::vector<double>& in_acc = acc_[kShardSlots + s];
      double weight = 0.0;
      EdgeId arcs = 0;
      for (NodeId u = shard.begin; u < shard.end; ++u) {
        if (!s_set.Contains(u)) continue;
        auto nbrs = g.OutNeighbors(u);
        auto ws = g.OutNeighborWeights(u);
        double row = 0.0;
        for (size_t i = 0; i < nbrs.size(); ++i) {
          const NodeId v = nbrs[i];
          if (!t_set.Contains(v)) continue;
          const double w = weighted ? ws[i] : 1.0;
          in_acc[v] += w;
          row += w;
          ++arcs;
        }
        out_acc[u] += row;
        weight += row;
      }
      slot_weight_[s] += weight;
      slot_edges_[s] += arcs;
    });
  }
  DirectedPassResult out;
  for (size_t s = 0; s < kShardSlots; ++s) {
    out.weight += slot_weight_[s];
    out.arcs += slot_edges_[s];
  }
  ReduceAndClear(/*plane=*/0, out_to_t);
  ReduceAndClear(/*plane=*/1, in_from_s);
  return out;
}

PassEngine& DefaultPassEngine() {
  // Leaked singleton: worker threads must not be joined during static
  // destruction, where other statics they might touch are already gone.
  // lint:allow(naked-new) — leaked singleton
  static PassEngine* engine = new PassEngine(PassEngineOptions{});
  return *engine;
}

}  // namespace densest
