#include "core/multi_run.h"

#include <algorithm>
#include <array>
#include <thread>

#include "core/peel_runs.h"
#include "stream/pass_cursor.h"

namespace densest {

namespace {

constexpr size_t kSlots = MultiRunEngine::kShardSlots;

/// One degree plane of a fused run: either a single direct vector
/// (unit-weight streams — integer-exact sums make every accumulation order
/// the same bits) or PassEngine's slot vectors reduced in index order
/// (general weights, replicating the engine's deterministic schedule). In
/// direct mode every slot aliases `values`, so the accumulation loop is
/// identical either way.
struct AccumPlane {
  std::vector<double> values;              // the reduced per-node result
  std::vector<std::vector<double>> slots;  // empty in direct mode

  void Init(size_t n, bool direct) {
    values.assign(n, 0.0);
    if (!direct) {
      slots.assign(kSlots, std::vector<double>(n, 0.0));
    }
  }
  void BeginPass() {
    // Slot vectors are zero by invariant (Reduce re-zeroes them).
    if (slots.empty()) std::fill(values.begin(), values.end(), 0.0);
  }
  double* Slot(size_t s) { return slots.empty() ? values.data() : slots[s].data(); }
  // Mirrors PassEngine::ReduceAndClear: slots summed in index order per
  // node, re-zeroed for the next pass. Keep the two in sync — the summation
  // order is part of the fused/sequential bit-identity contract.
  void Reduce() {
    if (slots.empty()) return;
    const size_t n = values.size();
    for (size_t u = 0; u < n; ++u) {
      double total = 0.0;
      for (std::vector<double>& slot : slots) {
        total += slot[u];
        slot[u] = 0.0;
      }
      values[u] = total;
    }
  }
};

/// Per-slot weight/count totals, mirroring PassEngine's slot_weight_ /
/// slot_edges_ (summed in slot order at end of pass).
struct SlotTotals {
  std::array<double, kSlots> weight{};
  std::array<EdgeId, kSlots> count{};

  void BeginPass() {
    weight.fill(0.0);
    count.fill(0);
  }
  double TotalWeight() const {
    double w = 0.0;
    for (double s : weight) w += s;
    return w;
  }
  EdgeId TotalCount() const {
    EdgeId c = 0;
    for (EdgeId s : count) c += s;
    return c;
  }
};

/// Fused Algorithm 3 run: peel logic + its private accumulators.
struct FusedDirectedRun {
  Algorithm3Run logic;
  AccumPlane out, in;
  SlotTotals totals;

  FusedDirectedRun(NodeId n, const Algorithm3Options& options, bool direct)
      : logic(n, options) {
    out.Init(n, direct);
    in.Init(n, direct);
  }

  bool done() const { return logic.done(); }
  bool wants_stream() const { return !logic.done(); }
  void BeginPass() {
    out.BeginPass();
    in.BeginPass();
    totals.BeginPass();
  }
  void AccumulateShard(std::span<const Edge> shard, size_t slot) {
    const NodeSet& s_set = logic.s();
    const NodeSet& t_set = logic.t();
    double* out_acc = out.Slot(slot);
    double* in_acc = in.Slot(slot);
    double weight = 0.0;
    EdgeId arcs = 0;
    for (const Edge& e : shard) {
      if (s_set.Contains(e.u) && t_set.Contains(e.v)) {
        out_acc[e.u] += e.w;
        in_acc[e.v] += e.w;
        weight += e.w;
        ++arcs;
      }
    }
    totals.weight[slot] += weight;
    totals.count[slot] += arcs;
  }
  void FinishPass() {
    out.Reduce();
    in.Reduce();
    DirectedPassResult stats;
    stats.weight = totals.TotalWeight();
    stats.arcs = totals.TotalCount();
    logic.ApplyPass(stats, out.values, in.values);
  }
  void FinishOffStream(PassEngine&) {}  // directed runs never leave the scan
  uint64_t stream_passes(const DirectedDensestResult& r) const {
    return r.passes;
  }
};

/// Fused Algorithm 1 run. Honors §6.3 compaction: in kCollectPass mode the
/// shard loop additionally appends survivors (in stream order — shards are
/// consumed sequentially within a run), after which the run finishes over
/// its buffer via FinishOffStream, costing no further physical scans.
struct FusedAlg1Run {
  Algorithm1Run logic;
  AccumPlane deg;
  SlotTotals totals;

  FusedAlg1Run(NodeId n, const Algorithm1Options& options, bool direct)
      : logic(n, options) {
    deg.Init(n, direct);
  }

  bool done() const { return logic.done(); }
  bool wants_stream() const {
    return !logic.done() && logic.mode() != Algorithm1Run::PassMode::kBuffer;
  }
  void BeginPass() {
    deg.BeginPass();
    totals.BeginPass();
  }
  void AccumulateShard(std::span<const Edge> shard, size_t slot) {
    const NodeSet& alive = logic.alive();
    double* acc = deg.Slot(slot);
    double weight = 0.0;
    EdgeId edges = 0;
    if (logic.mode() == Algorithm1Run::PassMode::kCollectPass) {
      std::vector<Edge>& buffer = logic.buffer();
      for (const Edge& e : shard) {
        if (alive.ContainsBoth(e.u, e.v)) {
          acc[e.u] += e.w;
          acc[e.v] += e.w;
          weight += e.w;
          ++edges;
          buffer.push_back(e);
        }
      }
    } else {
      for (const Edge& e : shard) {
        if (alive.ContainsBoth(e.u, e.v)) {
          acc[e.u] += e.w;
          acc[e.v] += e.w;
          weight += e.w;
          ++edges;
        }
      }
    }
    totals.weight[slot] += weight;
    totals.count[slot] += edges;
  }
  void FinishPass() {
    deg.Reduce();
    UndirectedPassResult stats;
    stats.weight = totals.TotalWeight();
    stats.edges = totals.TotalCount();
    logic.ApplyPass(stats, deg.values);
  }
  void FinishOffStream(PassEngine& engine) {
    while (!logic.done()) {
      UndirectedPassResult stats = engine.RunUndirectedBuffer(
          logic.buffer(), logic.alive(), deg.values, /*compact=*/true);
      logic.ApplyPass(stats, deg.values);
    }
  }
  uint64_t stream_passes(const UndirectedDensestResult& r) const {
    return r.io_passes;
  }
};

/// Fused Algorithm 2 run.
struct FusedAlg2Run {
  Algorithm2Run logic;
  AccumPlane deg;
  SlotTotals totals;

  FusedAlg2Run(NodeId n, const Algorithm2Options& options, bool direct)
      : logic(n, options) {
    deg.Init(n, direct);
  }

  bool done() const { return logic.done(); }
  bool wants_stream() const { return !logic.done(); }
  void BeginPass() {
    deg.BeginPass();
    totals.BeginPass();
  }
  void AccumulateShard(std::span<const Edge> shard, size_t slot) {
    const NodeSet& alive = logic.alive();
    double* acc = deg.Slot(slot);
    double weight = 0.0;
    EdgeId edges = 0;
    for (const Edge& e : shard) {
      if (alive.ContainsBoth(e.u, e.v)) {
        acc[e.u] += e.w;
        acc[e.v] += e.w;
        weight += e.w;
        ++edges;
      }
    }
    totals.weight[slot] += weight;
    totals.count[slot] += edges;
  }
  void FinishPass() {
    deg.Reduce();
    UndirectedPassResult stats;
    stats.weight = totals.TotalWeight();
    stats.edges = totals.TotalCount();
    logic.ApplyPass(stats, deg.values);
  }
  void FinishOffStream(PassEngine&) {}
  uint64_t stream_passes(const UndirectedDensestResult& r) const {
    return r.passes;
  }
};

}  // namespace

MultiRunEngine::MultiRunEngine(const MultiRunOptions& options) {
  num_threads_ = options.num_threads;
  if (num_threads_ == 0) {
    num_threads_ = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
}

MultiRunEngine::~MultiRunEngine() = default;

void MultiRunEngine::Dispatch(size_t count,
                              const std::function<void(size_t)>& fn) {
  if (pool_ != nullptr && count > 1) {
    pool_->ParallelFor(count, fn);
  } else {
    for (size_t i = 0; i < count; ++i) fn(i);
  }
}

template <typename RunT>
void MultiRunEngine::DriveRuns(EdgeStream& stream, std::vector<RunT>& states) {
  batch_.resize(kShardSlots * kShardEdges);
  PassCursor cursor(stream);

  std::vector<RunT*> active;
  active.reserve(states.size());
  auto refresh_active = [&] {
    active.clear();
    for (RunT& run : states) {
      if (run.done()) continue;
      if (!run.wants_stream()) {
        // The run no longer needs the stream (Algorithm 1 compaction):
        // finish it over its private buffer, off the shared scan.
        if (buffer_engine_ == nullptr) {
          buffer_engine_ = std::make_unique<PassEngine>(
              PassEngineOptions{.num_threads = 1});
        }
        run.FinishOffStream(*buffer_engine_);
        continue;
      }
      active.push_back(&run);
    }
  };
  refresh_active();

  std::array<std::span<const Edge>, kShardSlots> shards;
  while (!active.empty()) {
    for (RunT* run : active) run->BeginPass();
    cursor.BeginPass();
    for (;;) {
      // PassEngine's own shard-boundary schedule, pulled through the
      // cursor so physical-scan accounting stays in one place.
      const size_t count = PassEngine::FillShardRound(
          [&cursor](Edge* scratch, size_t cap) {
            return cursor.NextChunk(scratch, cap);
          },
          batch_.data(), shards);
      if (count == 0) break;
      // Run-major fan-out: each task owns one run's accumulators and walks
      // the round's shards in order, so threads share nothing mutable.
      Dispatch(active.size(), [&](size_t i) {
        for (size_t s = 0; s < count; ++s) {
          active[i]->AccumulateShard(shards[s], s);
        }
      });
      if (count < kShardSlots) break;
    }
    // Reduce + peel, also run-major: only run-private state mutates.
    Dispatch(active.size(), [&](size_t i) { active[i]->FinishPass(); });
    refresh_active();
  }

  last_physical_passes_ = cursor.passes();
  last_edges_scanned_ = cursor.edges_scanned();
}

StatusOr<std::vector<DirectedDensestResult>> MultiRunEngine::RunDirectedRuns(
    EdgeStream& stream, const std::vector<Algorithm3Options>& runs) {
  last_physical_passes_ = last_logical_passes_ = last_edges_scanned_ = 0;
  if (runs.empty()) return std::vector<DirectedDensestResult>{};
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  for (const Algorithm3Options& options : runs) {
    if (options.epsilon < 0) {
      return Status::InvalidArgument("epsilon must be >= 0");
    }
    if (!(options.c > 0)) return Status::InvalidArgument("c must be > 0");
  }

  const bool direct = stream.HasUnitWeights();
  std::vector<FusedDirectedRun> states;
  states.reserve(runs.size());
  for (const Algorithm3Options& options : runs) {
    states.emplace_back(n, options, direct);
  }
  DriveRuns(stream, states);

  std::vector<DirectedDensestResult> results;
  results.reserve(states.size());
  for (FusedDirectedRun& run : states) {
    results.push_back(run.logic.TakeResult());
    last_logical_passes_ += run.stream_passes(results.back());
  }
  return results;
}

StatusOr<std::vector<UndirectedDensestResult>> MultiRunEngine::RunUndirectedRuns(
    EdgeStream& stream, const std::vector<Algorithm1Options>& runs) {
  last_physical_passes_ = last_logical_passes_ = last_edges_scanned_ = 0;
  if (runs.empty()) return std::vector<UndirectedDensestResult>{};
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  for (const Algorithm1Options& options : runs) {
    if (options.epsilon < 0) {
      return Status::InvalidArgument("epsilon must be >= 0");
    }
  }

  const bool direct = stream.HasUnitWeights();
  std::vector<FusedAlg1Run> states;
  states.reserve(runs.size());
  for (const Algorithm1Options& options : runs) {
    states.emplace_back(n, options, direct);
  }
  DriveRuns(stream, states);

  std::vector<UndirectedDensestResult> results;
  results.reserve(states.size());
  for (FusedAlg1Run& run : states) {
    results.push_back(run.logic.TakeResult());
    last_logical_passes_ += run.stream_passes(results.back());
  }
  return results;
}

StatusOr<std::vector<UndirectedDensestResult>> MultiRunEngine::RunUndirectedRuns(
    EdgeStream& stream, const std::vector<Algorithm2Options>& runs) {
  last_physical_passes_ = last_logical_passes_ = last_edges_scanned_ = 0;
  if (runs.empty()) return std::vector<UndirectedDensestResult>{};
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  for (const Algorithm2Options& options : runs) {
    if (options.epsilon < 0) {
      return Status::InvalidArgument("epsilon must be >= 0");
    }
    if (options.min_size > n) {
      return Status::InvalidArgument("min_size exceeds the node count");
    }
  }

  const bool direct = stream.HasUnitWeights();
  std::vector<FusedAlg2Run> states;
  states.reserve(runs.size());
  for (const Algorithm2Options& options : runs) {
    states.emplace_back(n, options, direct);
  }
  DriveRuns(stream, states);

  std::vector<UndirectedDensestResult> results;
  results.reserve(states.size());
  for (FusedAlg2Run& run : states) {
    results.push_back(run.logic.TakeResult());
    last_logical_passes_ += run.stream_passes(results.back());
  }
  return results;
}

StatusOr<std::vector<UndirectedDensestResult>> RunAlgorithm1EpsilonSweep(
    EdgeStream& stream, const Algorithm1Options& base,
    const std::vector<double>& epsilons, MultiRunEngine* engine) {
  std::vector<Algorithm1Options> runs;
  runs.reserve(epsilons.size());
  for (double eps : epsilons) {
    Algorithm1Options options = base;
    options.epsilon = eps;
    runs.push_back(options);
  }
  // Same guarantee as RunCSearch: results never depend on fusing. The one
  // shape whose fused accumulation could differ in low-order FP bits —
  // weighted with a CSR view — runs run-by-run instead (`engine`'s scan
  // counters are untouched in that case).
  if (!stream.HasUnitWeights() && stream.UndirectedCsrView() != nullptr) {
    std::vector<UndirectedDensestResult> results;
    results.reserve(runs.size());
    for (const Algorithm1Options& options : runs) {
      StatusOr<UndirectedDensestResult> r = RunAlgorithm1(stream, options);
      if (!r.ok()) return r.status();
      results.push_back(std::move(*r));
    }
    return results;
  }
  if (engine != nullptr) return engine->RunUndirectedRuns(stream, runs);
  MultiRunEngine local{MultiRunOptions{}};
  return local.RunUndirectedRuns(stream, runs);
}

}  // namespace densest
