#include "core/multi_run.h"

#include <algorithm>
#include <array>
#include <limits>
#include <thread>

#include "core/peel_runs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/pass_cursor.h"

namespace densest {

namespace {

constexpr size_t kSlots = MultiRunEngine::kShardSlots;
/// Sentinel shard index: the task walks the whole round sequentially.
constexpr uint32_t kWholeRound = std::numeric_limits<uint32_t>::max();

/// One degree plane of a fused run: either a single direct vector
/// (unit-weight streams driven run-major — integer-exact sums make every
/// accumulation order the same bits) or PassEngine's slot vectors reduced
/// in index order (general weights, and any stream whose round may be
/// shard-split work-major, replicating the engine's deterministic
/// schedule). In direct mode every slot aliases `values`, so the
/// accumulation loop is identical either way — but aliased slots must
/// never be written concurrently, which is what parallel_shards() guards.
struct AccumPlane {
  std::vector<double> values;              // the reduced per-node result
  std::vector<std::vector<double>> slots;  // empty in direct mode

  void Init(size_t n, bool direct) {
    values.assign(n, 0.0);
    if (!direct) {
      slots.assign(kSlots, std::vector<double>(n, 0.0));
    }
  }
  void BeginPass() {
    // Slot vectors are zero by invariant (Reduce re-zeroes them).
    if (slots.empty()) std::fill(values.begin(), values.end(), 0.0);
  }
  bool slotted() const { return !slots.empty(); }
  double* Slot(size_t s) { return slots.empty() ? values.data() : slots[s].data(); }
  // Mirrors PassEngine::ReduceAndClear: slots summed in index order per
  // node, re-zeroed for the next pass. Keep the two in sync — the summation
  // order is part of the fused/sequential bit-identity contract.
  void Reduce() {
    if (slots.empty()) return;
    const size_t n = values.size();
    for (size_t u = 0; u < n; ++u) {
      double total = 0.0;
      for (std::vector<double>& slot : slots) {
        total += slot[u];
        slot[u] = 0.0;
      }
      values[u] = total;
    }
  }
};

/// Per-slot weight/count totals, mirroring PassEngine's slot_weight_ /
/// slot_edges_ (summed in slot order at end of pass). Distinct shards
/// write distinct slots, so work-major tasks never share an entry.
struct SlotTotals {
  std::array<double, kSlots> weight{};
  std::array<EdgeId, kSlots> count{};

  void BeginPass() {
    weight.fill(0.0);
    count.fill(0);
  }
  double TotalWeight() const {
    double w = 0.0;
    for (double s : weight) w += s;
    return w;
  }
  EdgeId TotalCount() const {
    EdgeId c = 0;
    for (EdgeId s : count) c += s;
    return c;
  }
};

/// Fused Algorithm 3 run: peel logic + its private accumulators.
class FusedDirectedRun final : public MultiRunEngine::FusedRun {
 public:
  FusedDirectedRun(NodeId n, const Algorithm3Options& options, bool direct)
      : logic_(n, options) {
    out_.Init(n, direct);
    in_.Init(n, direct);
  }

  bool done() const override { return logic_.done(); }
  void BeginPass() override {
    out_.BeginPass();
    in_.BeginPass();
    totals_.BeginPass();
  }
  bool parallel_shards() const override { return out_.slotted(); }
  void AccumulateShard(std::span<const Edge> shard, size_t slot) override {
    const NodeSet& s_set = logic_.s();
    const NodeSet& t_set = logic_.t();
    double* out_acc = out_.Slot(slot);
    double* in_acc = in_.Slot(slot);
    double weight = 0.0;
    EdgeId arcs = 0;
    for (const Edge& e : shard) {
      if (s_set.Contains(e.u) && t_set.Contains(e.v)) {
        out_acc[e.u] += e.w;
        in_acc[e.v] += e.w;
        weight += e.w;
        ++arcs;
      }
    }
    totals_.weight[slot] += weight;
    totals_.count[slot] += arcs;
  }
  void FinishPass() override {
    out_.Reduce();
    in_.Reduce();
    DirectedPassResult stats;
    stats.weight = totals_.TotalWeight();
    stats.arcs = totals_.TotalCount();
    logic_.ApplyPass(stats, out_.values, in_.values);
  }
  DirectedDensestResult TakeResult() { return logic_.TakeResult(); }

 private:
  Algorithm3Run logic_;
  AccumPlane out_, in_;
  SlotTotals totals_;
};

/// Fused Algorithm 1 run. Honors §6.3 compaction: in kCollectPass mode the
/// shard loop additionally appends survivors (in stream order — the run
/// reports parallel_shards() false for that pass so its shards stay
/// sequential), after which the run finishes over its buffer via
/// FinishOffStream, costing no further physical scans.
class FusedAlg1Run final : public MultiRunEngine::FusedRun {
 public:
  FusedAlg1Run(NodeId n, const Algorithm1Options& options, bool direct)
      : logic_(n, options), cancel_(options.cancel) {
    deg_.Init(n, direct);
  }

  bool done() const override { return logic_.done(); }
  bool wants_stream() const override {
    return !logic_.done() && logic_.mode() != Algorithm1Run::PassMode::kBuffer;
  }
  void BeginPass() override {
    deg_.BeginPass();
    totals_.BeginPass();
  }
  bool parallel_shards() const override {
    // The collect pass appends survivors in stream order — order a
    // shard-split round would not preserve.
    return deg_.slotted() &&
           logic_.mode() != Algorithm1Run::PassMode::kCollectPass;
  }
  void AccumulateShard(std::span<const Edge> shard, size_t slot) override {
    const NodeSet& alive = logic_.alive();
    double* acc = deg_.Slot(slot);
    double weight = 0.0;
    EdgeId edges = 0;
    if (logic_.mode() == Algorithm1Run::PassMode::kCollectPass) {
      std::vector<Edge>& buffer = logic_.buffer();
      for (const Edge& e : shard) {
        if (alive.ContainsBoth(e.u, e.v)) {
          acc[e.u] += e.w;
          acc[e.v] += e.w;
          weight += e.w;
          ++edges;
          buffer.push_back(e);
        }
      }
    } else {
      for (const Edge& e : shard) {
        if (alive.ContainsBoth(e.u, e.v)) {
          acc[e.u] += e.w;
          acc[e.v] += e.w;
          weight += e.w;
          ++edges;
        }
      }
    }
    totals_.weight[slot] += weight;
    totals_.count[slot] += edges;
  }
  void FinishPass() override {
    deg_.Reduce();
    UndirectedPassResult stats;
    stats.weight = totals_.TotalWeight();
    stats.edges = totals_.TotalCount();
    logic_.ApplyPass(stats, deg_.values);
  }
  void FinishOffStream(PassEngine& engine) override {
    while (!logic_.done()) {
      // A cancelled run stops peeling mid-buffer; Drive's own poll then
      // aborts the sweep before any partial result escapes.
      if (ShouldStop(cancel_)) break;
      UndirectedPassResult stats = engine.RunUndirectedBuffer(
          logic_.buffer(), logic_.alive(), deg_.values, /*compact=*/true,
          cancel_);
      if (ShouldStop(cancel_)) break;
      logic_.ApplyPass(stats, deg_.values);
    }
  }
  UndirectedDensestResult TakeResult() { return logic_.TakeResult(); }

 private:
  Algorithm1Run logic_;
  const CancelToken* cancel_;
  AccumPlane deg_;
  SlotTotals totals_;
};

/// Fused Algorithm 2 run.
class FusedAlg2Run final : public MultiRunEngine::FusedRun {
 public:
  FusedAlg2Run(NodeId n, const Algorithm2Options& options, bool direct)
      : logic_(n, options) {
    deg_.Init(n, direct);
  }

  bool done() const override { return logic_.done(); }
  void BeginPass() override {
    deg_.BeginPass();
    totals_.BeginPass();
  }
  bool parallel_shards() const override { return deg_.slotted(); }
  void AccumulateShard(std::span<const Edge> shard, size_t slot) override {
    const NodeSet& alive = logic_.alive();
    double* acc = deg_.Slot(slot);
    double weight = 0.0;
    EdgeId edges = 0;
    for (const Edge& e : shard) {
      if (alive.ContainsBoth(e.u, e.v)) {
        acc[e.u] += e.w;
        acc[e.v] += e.w;
        weight += e.w;
        ++edges;
      }
    }
    totals_.weight[slot] += weight;
    totals_.count[slot] += edges;
  }
  void FinishPass() override {
    deg_.Reduce();
    UndirectedPassResult stats;
    stats.weight = totals_.TotalWeight();
    stats.edges = totals_.TotalCount();
    logic_.ApplyPass(stats, deg_.values);
  }
  UndirectedDensestResult TakeResult() { return logic_.TakeResult(); }

 private:
  Algorithm2Run logic_;
  AccumPlane deg_;
  SlotTotals totals_;
};

/// Collects pointers to the concrete runs for Drive().
template <typename RunT>
std::vector<MultiRunEngine::FusedRun*> AsFusedRuns(std::vector<RunT>& states) {
  std::vector<MultiRunEngine::FusedRun*> runs;
  runs.reserve(states.size());
  for (RunT& run : states) runs.push_back(&run);
  return runs;
}

/// The token governing a fused sweep: the first non-null per-run token.
/// The physical scan is shared, so one run cannot be cancelled without
/// stopping the whole sweep; sweep builders set one token on every run.
template <typename OptionsT>
const CancelToken* SweepCancel(const std::vector<OptionsT>& runs) {
  for (const OptionsT& options : runs) {
    if (options.cancel != nullptr) return options.cancel;
  }
  return nullptr;
}

}  // namespace

MultiRunEngine::MultiRunEngine(const MultiRunOptions& options) {
  num_threads_ = options.num_threads;
  fan_out_ = options.fan_out;
  default_cancel_ = options.cancel;
  if (num_threads_ == 0) {
    num_threads_ = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
}

MultiRunEngine::~MultiRunEngine() = default;

void MultiRunEngine::Dispatch(size_t count,
                              const std::function<void(size_t)>& fn) {
  if (pool_ != nullptr && count > 1) {
    pool_->ParallelFor(count, fn);
  } else {
    for (size_t i = 0; i < count; ++i) fn(i);
  }
}

Status MultiRunEngine::Drive(EdgeStream& stream,
                             std::span<FusedRun* const> runs) {
  return Drive(stream, runs, default_cancel_);
}

Status MultiRunEngine::Drive(EdgeStream& stream,
                             std::span<FusedRun* const> runs,
                             const CancelToken* cancel) {
  if (cancel == nullptr) cancel = default_cancel_;
  last_physical_passes_ = last_logical_passes_ = last_edges_scanned_ = 0;
  batch_.resize(kShardSlots * kShardEdges);
  PassCursor cursor(stream);

  std::vector<FusedRun*> active;
  active.reserve(runs.size());
  auto refresh_active = [&] {
    active.clear();
    for (FusedRun* run : runs) {
      if (run->done()) continue;
      if (!run->wants_stream()) {
        // The run no longer needs the stream (Algorithm 1 compaction):
        // finish it over its private buffer, off the shared scan.
        if (buffer_engine_ == nullptr) {
          buffer_engine_ = std::make_unique<PassEngine>(
              PassEngineOptions{.num_threads = 1});
        }
        run->FinishOffStream(*buffer_engine_);
        continue;
      }
      active.push_back(run);
    }
  };
  refresh_active();

  std::array<std::span<const Edge>, kShardSlots> shards;
  while (!active.empty()) {
    for (FusedRun* run : active) run->BeginPass();
    cursor.BeginPass();
    for (;;) {
      if (ShouldStop(cancel)) break;
      // PassEngine's own shard-boundary schedule, pulled through the
      // cursor so physical-scan accounting stays in one place.
      const size_t count = PassEngine::FillShardRound(
          [&cursor](Edge* scratch, size_t cap) {
            return cursor.NextChunk(scratch, cap);
          },
          batch_.data(), shards);
      if (count == 0) break;
      DENSEST_TRACE_SPAN("core.fused_round");
      DENSEST_METRIC_COUNTER("core.fused_rounds").Inc();
      if (UseWorkMajor(active.size())) {
        // Work-major fan-out: each (run, shard) pair is a task — shard s
        // feeds slot s, so same-run tasks write disjoint slot planes. Runs
        // whose round must stay sequential become one whole-round task.
        task_scratch_.clear();
        for (size_t i = 0; i < active.size(); ++i) {
          if (active[i]->parallel_shards()) {
            for (size_t s = 0; s < count; ++s) {
              task_scratch_.emplace_back(static_cast<uint32_t>(i),
                                         static_cast<uint32_t>(s));
            }
          } else {
            task_scratch_.emplace_back(static_cast<uint32_t>(i), kWholeRound);
          }
        }
        Dispatch(task_scratch_.size(), [&](size_t t) {
          const auto [i, s] = task_scratch_[t];
          if (s == kWholeRound) {
            for (size_t k = 0; k < count; ++k) {
              active[i]->AccumulateShard(shards[k], k);
            }
          } else {
            active[i]->AccumulateShard(shards[s], s);
          }
        });
      } else {
        // Run-major fan-out: each task owns one run's accumulators and
        // walks the round's shards in order, so threads share nothing
        // mutable.
        Dispatch(active.size(), [&](size_t i) {
          for (size_t s = 0; s < count; ++s) {
            active[i]->AccumulateShard(shards[s], s);
          }
        });
      }
      if (count < kShardSlots) break;
    }
    // A failing stream ends the pass early and silently; the accumulated
    // statistics describe a truncated edge set. Abort before peeling on
    // them — partial sweep results are worse than no results.
    if (Status io = stream.status(); !io.ok()) {
      last_physical_passes_ = cursor.passes();
      last_edges_scanned_ = cursor.edges_scanned();
      return io;
    }
    // A cancelled pass is abandoned exactly like a failing stream: the
    // accumulated statistics describe a truncated edge set, so abort
    // before peeling on them. The pool is already drained (Dispatch
    // returns only after every shard task finished), so no thread is left
    // running against freed state.
    if (Status c = CheckCancel(cancel); !c.ok()) {
      last_physical_passes_ = cursor.passes();
      last_edges_scanned_ = cursor.edges_scanned();
      return c;
    }
    // Reduce + peel, also run-major: only run-private state mutates.
    Dispatch(active.size(), [&](size_t i) { active[i]->FinishPass(); });
    refresh_active();
  }

  last_physical_passes_ = cursor.passes();
  last_edges_scanned_ = cursor.edges_scanned();
  return Status::OK();
}

StatusOr<std::vector<DirectedDensestResult>> MultiRunEngine::RunDirectedRuns(
    EdgeStream& stream, const std::vector<Algorithm3Options>& runs) {
  last_physical_passes_ = last_logical_passes_ = last_edges_scanned_ = 0;
  if (runs.empty()) return std::vector<DirectedDensestResult>{};
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  for (const Algorithm3Options& options : runs) {
    if (options.epsilon < 0) {
      return Status::InvalidArgument("epsilon must be >= 0");
    }
    if (!(options.c > 0)) return Status::InvalidArgument("c must be > 0");
  }

  const bool direct = UseDirectPlanes(stream, runs.size());
  std::vector<FusedDirectedRun> states;
  states.reserve(runs.size());
  for (const Algorithm3Options& options : runs) {
    states.emplace_back(n, options, direct);
  }
  std::vector<FusedRun*> fused = AsFusedRuns(states);
  if (Status s = Drive(stream, fused, SweepCancel(runs)); !s.ok()) return s;

  std::vector<DirectedDensestResult> results;
  results.reserve(states.size());
  uint64_t logical = 0;
  for (FusedDirectedRun& run : states) {
    results.push_back(run.TakeResult());
    logical += results.back().passes;
  }
  RecordLogicalPasses(logical);
  return results;
}

StatusOr<std::vector<UndirectedDensestResult>> MultiRunEngine::RunUndirectedRuns(
    EdgeStream& stream, const std::vector<Algorithm1Options>& runs) {
  last_physical_passes_ = last_logical_passes_ = last_edges_scanned_ = 0;
  if (runs.empty()) return std::vector<UndirectedDensestResult>{};
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  for (const Algorithm1Options& options : runs) {
    if (options.epsilon < 0) {
      return Status::InvalidArgument("epsilon must be >= 0");
    }
  }

  const bool direct = UseDirectPlanes(stream, runs.size());
  std::vector<FusedAlg1Run> states;
  states.reserve(runs.size());
  for (const Algorithm1Options& options : runs) {
    states.emplace_back(n, options, direct);
  }
  std::vector<FusedRun*> fused = AsFusedRuns(states);
  if (Status s = Drive(stream, fused, SweepCancel(runs)); !s.ok()) return s;

  std::vector<UndirectedDensestResult> results;
  results.reserve(states.size());
  uint64_t logical = 0;
  for (FusedAlg1Run& run : states) {
    results.push_back(run.TakeResult());
    logical += results.back().io_passes;
  }
  RecordLogicalPasses(logical);
  return results;
}

StatusOr<std::vector<UndirectedDensestResult>> MultiRunEngine::RunUndirectedRuns(
    EdgeStream& stream, const std::vector<Algorithm2Options>& runs) {
  last_physical_passes_ = last_logical_passes_ = last_edges_scanned_ = 0;
  if (runs.empty()) return std::vector<UndirectedDensestResult>{};
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  for (const Algorithm2Options& options : runs) {
    if (options.epsilon < 0) {
      return Status::InvalidArgument("epsilon must be >= 0");
    }
    if (options.min_size > n) {
      return Status::InvalidArgument("min_size exceeds the node count");
    }
  }

  const bool direct = UseDirectPlanes(stream, runs.size());
  std::vector<FusedAlg2Run> states;
  states.reserve(runs.size());
  for (const Algorithm2Options& options : runs) {
    states.emplace_back(n, options, direct);
  }
  std::vector<FusedRun*> fused = AsFusedRuns(states);
  if (Status s = Drive(stream, fused, SweepCancel(runs)); !s.ok()) return s;

  std::vector<UndirectedDensestResult> results;
  results.reserve(states.size());
  uint64_t logical = 0;
  for (FusedAlg2Run& run : states) {
    results.push_back(run.TakeResult());
    logical += results.back().passes;
  }
  RecordLogicalPasses(logical);
  return results;
}

StatusOr<UndirectedDensestResult> MultiRunEngine::RecomputeUndirected(
    EdgeStream& stream, const Algorithm1Options& options) {
  StatusOr<std::vector<UndirectedDensestResult>> results =
      RunUndirectedRuns(stream, std::vector<Algorithm1Options>{options});
  if (!results.ok()) return results.status();
  return std::move((*results)[0]);
}

StatusOr<std::vector<UndirectedDensestResult>> RunAlgorithm1EpsilonSweep(
    EdgeStream& stream, const Algorithm1Options& base,
    const std::vector<double>& epsilons, MultiRunEngine* engine) {
  std::vector<Algorithm1Options> runs;
  runs.reserve(epsilons.size());
  for (double eps : epsilons) {
    Algorithm1Options options = base;
    options.epsilon = eps;
    runs.push_back(options);
  }
  // Same guarantee as RunCSearch: results never depend on fusing. The one
  // shape whose fused accumulation could differ in low-order FP bits —
  // weighted with a CSR view — runs run-by-run instead (`engine`'s scan
  // counters are untouched in that case).
  if (!stream.HasUnitWeights() && stream.UndirectedCsrView() != nullptr) {
    std::vector<UndirectedDensestResult> results;
    results.reserve(runs.size());
    for (const Algorithm1Options& options : runs) {
      StatusOr<UndirectedDensestResult> r = RunAlgorithm1(stream, options);
      if (!r.ok()) return r.status();
      results.push_back(std::move(*r));
    }
    return results;
  }
  if (engine != nullptr) return engine->RunUndirectedRuns(stream, runs);
  MultiRunEngine local{MultiRunOptions{}};
  return local.RunUndirectedRuns(stream, runs);
}

}  // namespace densest
