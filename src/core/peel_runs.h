// Copyright 2026 The densest Authors.
// Per-run state machines of the streaming peeling algorithms.
//
// Each class below holds the between-pass state of ONE run of Algorithm 1,
// 2 or 3 — alive sets, best-so-far subgraph, trace — and consumes the
// aggregated statistics of one completed pass at a time through ApplyPass.
// The state machine never touches a stream: WHO scans the edges (a private
// PassEngine for a single run, or the MultiRunEngine fanning one physical
// scan across many runs) is the driver's choice, and both drivers share
// exactly this peeling logic, so a fused run can never diverge from a
// sequential one by reimplementation drift.

#ifndef DENSEST_CORE_PEEL_RUNS_H_
#define DENSEST_CORE_PEEL_RUNS_H_

#include <vector>

#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "core/density.h"
#include "core/pass_engine.h"
#include "graph/subgraph.h"
#include "graph/types.h"

namespace densest {

/// \brief One run of Algorithm 1 (undirected peeling, optional §6.3
/// compaction), driven pass by pass.
///
/// Protocol per pass: the driver checks done(); if false it executes one
/// pass over the source named by mode() — the external stream (optionally
/// collecting survivors into buffer() when mode() == kCollectPass) or the
/// in-memory buffer() — and hands the resulting statistics to ApplyPass.
class Algorithm1Run {
 public:
  /// Where the next pass must read its edges from.
  enum class PassMode {
    kStream,       ///< scan the external stream
    kCollectPass,  ///< scan the stream AND collect survivors into buffer()
    kBuffer,       ///< scan buffer() (compaction has kicked in)
  };

  Algorithm1Run(NodeId n, const Algorithm1Options& options);

  bool done() const { return done_; }
  PassMode mode() const { return mode_; }
  const NodeSet& alive() const { return alive_; }
  std::vector<Edge>& buffer() { return buffer_; }

  /// Consumes one pass worth of statistics: updates the best subgraph,
  /// peels below-threshold nodes, arms compaction, records the trace, and
  /// decides whether the run is finished.
  void ApplyPass(const UndirectedPassResult& stats,
                 const std::vector<double>& degrees);

  /// Finalizes the result (call once, after done()).
  UndirectedDensestResult TakeResult();

 private:
  Algorithm1Options options_;
  NodeId n_;
  NodeSet alive_;
  NodeSet best_;
  double best_density_ = -1.0;
  uint64_t pass_ = 0;
  uint64_t io_passes_ = 0;
  PassMode mode_ = PassMode::kStream;
  bool done_ = false;
  std::vector<Edge> buffer_;
  UndirectedDensestResult result_;
};

/// \brief One run of Algorithm 2 (at-least-k peeling with a removal quota).
class Algorithm2Run {
 public:
  Algorithm2Run(NodeId n, const Algorithm2Options& options);

  bool done() const { return done_; }
  const NodeSet& alive() const { return alive_; }

  void ApplyPass(const UndirectedPassResult& stats,
                 const std::vector<double>& degrees);

  UndirectedDensestResult TakeResult();

 private:
  Algorithm2Options options_;
  NodeId n_;
  NodeSet alive_;
  NodeSet best_;
  double best_density_ = -1.0;
  uint64_t pass_ = 0;
  bool done_ = false;
  std::vector<NodeId> candidates_;
  UndirectedDensestResult result_;
};

/// \brief One run of Algorithm 3 (directed (S, T) peeling for one ratio c).
class Algorithm3Run {
 public:
  Algorithm3Run(NodeId n, const Algorithm3Options& options);

  bool done() const { return done_; }
  const NodeSet& s() const { return s_; }
  const NodeSet& t() const { return t_; }

  /// Consumes one directed pass: weight |E(S,T)| plus the two degree
  /// arrays the pass accumulated over the CURRENT s()/t().
  void ApplyPass(const DirectedPassResult& stats,
                 const std::vector<double>& out_to_t,
                 const std::vector<double>& in_from_s);

  DirectedDensestResult TakeResult();

 private:
  Algorithm3Options options_;
  NodeId n_;
  NodeSet s_;
  NodeSet t_;
  NodeSet best_s_;
  NodeSet best_t_;
  double best_density_ = -1.0;
  uint64_t pass_ = 0;
  bool done_ = false;
  DirectedDensestResult result_;
};

}  // namespace densest

#endif  // DENSEST_CORE_PEEL_RUNS_H_
