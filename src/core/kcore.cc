#include "core/kcore.h"

#include <algorithm>

namespace densest {

CoreDecomposition KCoreDecomposition(const UndirectedGraph& g) {
  const NodeId n = g.num_nodes();
  CoreDecomposition out;
  out.core.assign(n, 0);
  if (n == 0) return out;

  // Batagelj–Zaversnik bin sort over degrees.
  NodeId max_deg = g.MaxDegree();
  std::vector<NodeId> bin(max_deg + 2, 0);
  std::vector<NodeId> deg(n);
  for (NodeId u = 0; u < n; ++u) {
    deg[u] = g.Degree(u);
    ++bin[deg[u]];
  }
  NodeId start = 0;
  for (NodeId d = 0; d <= max_deg; ++d) {
    NodeId count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> vert(n);   // nodes sorted by current degree
  std::vector<NodeId> pos(n);    // position of each node in vert
  for (NodeId u = 0; u < n; ++u) {
    pos[u] = bin[deg[u]];
    vert[pos[u]] = u;
    ++bin[deg[u]];
  }
  for (NodeId d = max_deg; d > 0; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  for (NodeId i = 0; i < n; ++i) {
    NodeId u = vert[i];
    out.core[u] = deg[u];
    for (NodeId v : g.Neighbors(u)) {
      if (v == u) continue;
      if (deg[v] > deg[u]) {
        // Swap v with the first node of its degree bucket, then shrink.
        NodeId dv = deg[v];
        NodeId pw = bin[dv];
        NodeId w = vert[pw];
        if (v != w) {
          std::swap(vert[pos[v]], vert[pw]);
          std::swap(pos[v], pos[w]);
        }
        ++bin[dv];
        --deg[v];
      }
    }
  }
  out.degeneracy = *std::max_element(out.core.begin(), out.core.end());
  return out;
}

NodeSet DCore(const UndirectedGraph& g, NodeId d) {
  CoreDecomposition dec = KCoreDecomposition(g);
  NodeSet s(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (dec.core[u] >= d) s.Insert(u);
  }
  return s;
}

UndirectedDensestResult MaxCoreBaseline(const UndirectedGraph& g) {
  UndirectedDensestResult out;
  if (g.num_nodes() == 0) return out;
  CoreDecomposition dec = KCoreDecomposition(g);
  NodeSet s(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (dec.core[u] >= dec.degeneracy) s.Insert(u);
  }
  out.nodes = s.ToVector();
  out.density = InducedDensity(g, s);
  out.passes = 1;  // one in-memory decomposition
  out.certified_band = 2.0;  // density >= degeneracy/2 >= rho*/2
  return out;
}

}  // namespace densest
