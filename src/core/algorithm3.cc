#include "core/algorithm3.h"

#include <cmath>
#include <vector>

#include "core/pass_engine.h"
#include "stream/memory_stream.h"

namespace densest {

namespace {

/// Decides which side to peel under the naive max-degree rule (§4.3):
/// returns true to peel S. Compares the max indegree among B(T) against the
/// max outdegree among A(S), scaled by c.
bool PeelSByMaxDegreeRule(const NodeSet& s, const NodeSet& t,
                          const std::vector<double>& out_to_t,
                          const std::vector<double>& in_from_s,
                          double weight, double epsilon, double c) {
  const double s_threshold = (1.0 + epsilon) * weight / s.size();
  const double t_threshold = (1.0 + epsilon) * weight / t.size();
  const NodeId n = s.universe_size();
  double max_out_in_a = 0;  // E(i*, T) over i in A(S)
  double max_in_in_b = 0;   // E(S, j*) over j in B(T)
  for (NodeId u = 0; u < n; ++u) {
    if (s.Contains(u) && out_to_t[u] <= s_threshold) {
      max_out_in_a = std::max(max_out_in_a, out_to_t[u]);
    }
    if (t.Contains(u) && in_from_s[u] <= t_threshold) {
      max_in_in_b = std::max(max_in_in_b, in_from_s[u]);
    }
  }
  if (max_out_in_a == 0) return true;   // removing A(S) is free
  if (max_in_in_b == 0) return false;   // removing B(T) is free
  return max_in_in_b / max_out_in_a >= c;
}

}  // namespace

StatusOr<DirectedDensestResult> RunAlgorithm3(
    EdgeStream& stream, const Algorithm3Options& options) {
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  if (!(options.c > 0)) {
    return Status::InvalidArgument("c must be > 0");
  }
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  PassEngine& engine =
      options.engine != nullptr ? *options.engine : DefaultPassEngine();
  NodeSet s(n, /*full=*/true);
  NodeSet t(n, /*full=*/true);
  std::vector<double> out_to_t(n, 0.0);
  std::vector<double> in_from_s(n, 0.0);

  DirectedDensestResult result;
  result.c = options.c;
  NodeSet best_s = s;
  NodeSet best_t = t;
  double best_density = -1.0;

  uint64_t pass = 0;
  while (!s.empty() && !t.empty() &&
         (options.max_passes == 0 || pass < options.max_passes)) {
    ++pass;
    DirectedPassResult stats =
        engine.RunDirected(stream, s, t, out_to_t, in_from_s);
    const double rho =
        stats.weight / std::sqrt(static_cast<double>(s.size()) *
                                 static_cast<double>(t.size()));

    // Algorithm 3 line 10: track the densest intermediate pair.
    if (rho > best_density) {
      best_density = rho;
      best_s = s;
      best_t = t;
    }

    bool peel_s;
    if (options.rule == DirectedRemovalRule::kSizeRatio) {
      // Algorithm 3 line 3: drive |S|/|T| toward c.
      peel_s = static_cast<double>(s.size()) /
                   static_cast<double>(t.size()) >=
               options.c;
    } else {
      peel_s = PeelSByMaxDegreeRule(s, t, out_to_t, in_from_s, stats.weight,
                                    options.epsilon, options.c);
    }

    NodeId removed = 0;
    if (peel_s) {
      const double threshold = (1.0 + options.epsilon) * stats.weight /
                               static_cast<double>(s.size());
      for (NodeId u = 0; u < n; ++u) {
        if (s.Contains(u) && out_to_t[u] <= threshold) {
          s.Remove(u);
          ++removed;
        }
      }
    } else {
      const double threshold = (1.0 + options.epsilon) * stats.weight /
                               static_cast<double>(t.size());
      for (NodeId u = 0; u < n; ++u) {
        if (t.Contains(u) && in_from_s[u] <= threshold) {
          t.Remove(u);
          ++removed;
        }
      }
    }

    if (options.record_trace) {
      DirectedPassSnapshot snap;
      snap.pass = pass;
      snap.s_size = peel_s ? static_cast<NodeId>(s.size() + removed)
                           : s.size();
      snap.t_size = peel_s ? t.size()
                           : static_cast<NodeId>(t.size() + removed);
      snap.weight = stats.weight;
      snap.density = rho;
      snap.removed_from_s = peel_s;
      snap.removed = removed;
      result.trace.push_back(snap);
    }
  }

  result.s_nodes = best_s.ToVector();
  result.t_nodes = best_t.ToVector();
  result.density = best_density < 0 ? 0.0 : best_density;
  result.passes = pass;
  return result;
}

StatusOr<DirectedDensestResult> RunAlgorithm3(
    const DirectedGraph& g, const Algorithm3Options& options) {
  DirectedGraphStream stream(g);
  return RunAlgorithm3(stream, options);
}

StatusOr<CSearchResult> RunCSearch(EdgeStream& stream,
                                   const CSearchOptions& options) {
  if (options.delta <= 1.0) {
    return Status::InvalidArgument("delta must be > 1");
  }
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  // c only matters over [1/n, n]: |S|, |T| are integers in [1, n].
  const int j_max = static_cast<int>(
      std::ceil(std::log(static_cast<double>(n)) / std::log(options.delta)));

  CSearchResult out;
  double best_density = -1.0;
  for (int j = -j_max; j <= j_max; ++j) {
    Algorithm3Options run;
    run.c = std::pow(options.delta, j);
    run.epsilon = options.epsilon;
    run.rule = options.rule;
    run.max_passes = options.max_passes;
    run.record_trace = options.record_trace;
    run.engine = options.engine;
    StatusOr<DirectedDensestResult> r = RunAlgorithm3(stream, run);
    if (!r.ok()) return r.status();
    if (r->density > best_density) {
      best_density = r->density;
      out.best = *r;
    }
    out.sweep.push_back(std::move(*r));
  }
  return out;
}

StatusOr<CSearchResult> RunCSearch(const DirectedGraph& g,
                                   const CSearchOptions& options) {
  DirectedGraphStream stream(g);
  return RunCSearch(stream, options);
}

}  // namespace densest
