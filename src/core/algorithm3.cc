#include "core/algorithm3.h"

#include <cmath>
#include <memory>
#include <vector>

#include "core/multi_run.h"
#include "core/pass_engine.h"
#include "core/peel_runs.h"
#include "stream/memory_stream.h"

namespace densest {

StatusOr<DirectedDensestResult> RunAlgorithm3(
    EdgeStream& stream, const Algorithm3Options& options) {
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  if (!(options.c > 0)) {
    return Status::InvalidArgument("c must be > 0");
  }
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  PassEngine& engine =
      options.engine != nullptr ? *options.engine : DefaultPassEngine();
  Algorithm3Run run(n, options);
  std::vector<double> out_to_t(n, 0.0);
  std::vector<double> in_from_s(n, 0.0);

  while (!run.done()) {
    DirectedPassResult stats = engine.RunDirected(
        stream, run.s(), run.t(), out_to_t, in_from_s, options.cancel);
    if (Status io = stream.status(); !io.ok()) return io;
    if (Status c = CheckCancel(options.cancel); !c.ok()) return c;
    run.ApplyPass(stats, out_to_t, in_from_s);
  }
  return run.TakeResult();
}

StatusOr<DirectedDensestResult> RunAlgorithm3(
    const DirectedGraph& g, const Algorithm3Options& options) {
  DirectedGraphStream stream(g);
  return RunAlgorithm3(stream, options);
}

std::vector<Algorithm3Options> CSearchGrid(NodeId n,
                                           const CSearchOptions& options) {
  // delta <= 1 spans no finite grid (RunCSearch rejects it with a status);
  // guard here too since this helper is public.
  if (!(options.delta > 1.0) || n == 0) return {};
  // c only matters over [1/n, n]: |S|, |T| are integers in [1, n].
  const int j_max = static_cast<int>(
      std::ceil(std::log(static_cast<double>(n)) / std::log(options.delta)));
  std::vector<Algorithm3Options> grid;
  grid.reserve(2 * j_max + 1);
  for (int j = -j_max; j <= j_max; ++j) {
    Algorithm3Options run;
    run.c = std::pow(options.delta, j);
    run.epsilon = options.epsilon;
    run.rule = options.rule;
    run.max_passes = options.max_passes;
    run.record_trace = options.record_trace;
    run.engine = options.engine;
    run.cancel = options.cancel;
    grid.push_back(run);
  }
  return grid;
}

StatusOr<CSearchResult> RunCSearch(EdgeStream& stream,
                                   const CSearchOptions& options) {
  if (options.delta <= 1.0) {
    return Status::InvalidArgument("delta must be > 1");
  }
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  const std::vector<Algorithm3Options> grid = CSearchGrid(n, options);

  // The one configuration where fused accumulation is not bit-identical to
  // a solo PassEngine run: a weighted stream with a CSR view (the engine's
  // row kernel associates the FP sums differently). Fall back to run-by-run
  // there so RunCSearch's results never depend on the `fused` flag.
  const bool fuse = options.fused && (stream.HasUnitWeights() ||
                                      stream.DirectedCsrView() == nullptr);

  CSearchResult out;
  if (fuse) {
    // All c values share every physical scan: one MultiRunEngine pass feeds
    // the whole grid, so the stream is scanned max-passes times instead of
    // sum-of-passes times (the paper's "can be tried in parallel" remark).
    std::unique_ptr<MultiRunEngine> local;
    MultiRunEngine* engine = options.multi_engine;
    if (engine == nullptr) {
      local = std::make_unique<MultiRunEngine>();
      engine = local.get();
    }
    StatusOr<std::vector<DirectedDensestResult>> runs =
        engine->RunDirectedRuns(stream, grid);
    if (!runs.ok()) return runs.status();
    out.sweep = std::move(*runs);
    out.physical_scans = engine->last_physical_passes();
  } else {
    for (const Algorithm3Options& run : grid) {
      StatusOr<DirectedDensestResult> r = RunAlgorithm3(stream, run);
      if (!r.ok()) return r.status();
      out.physical_scans += r->passes;
      out.sweep.push_back(std::move(*r));
    }
  }

  double best_density = -1.0;
  for (const DirectedDensestResult& run : out.sweep) {
    if (run.density > best_density) {
      best_density = run.density;
      out.best = run;
    }
  }
  return out;
}

StatusOr<CSearchResult> RunCSearch(const DirectedGraph& g,
                                   const CSearchOptions& options) {
  DirectedGraphStream stream(g);
  return RunCSearch(stream, options);
}

}  // namespace densest
