#include "core/density.h"

#include <sstream>

namespace densest {

Answer UndirectedDensestResult::ToAnswer() const {
  Answer a;
  a.density = density;
  a.size = static_cast<NodeId>(nodes.size());
  a.certified = certified_band > 0;
  a.upper_bound = a.certified ? certified_band * density : 0;
  return a;
}

Answer DirectedDensestResult::ToAnswer() const {
  Answer a;
  a.density = density;
  a.size = static_cast<NodeId>(s_nodes.size() + t_nodes.size());
  a.certified = certified_band > 0;
  a.upper_bound = a.certified ? certified_band * density : 0;
  return a;
}

std::string Summarize(const UndirectedDensestResult& r) {
  std::ostringstream os;
  os << "rho=" << r.density << " |S|=" << r.nodes.size()
     << " passes=" << r.passes;
  return os.str();
}

std::string Summarize(const DirectedDensestResult& r) {
  std::ostringstream os;
  os << "rho=" << r.density << " |S|=" << r.s_nodes.size()
     << " |T|=" << r.t_nodes.size() << " c=" << r.c << " passes=" << r.passes;
  return os.str();
}

}  // namespace densest
