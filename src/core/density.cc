#include "core/density.h"

#include <sstream>

namespace densest {

std::string Summarize(const UndirectedDensestResult& r) {
  std::ostringstream os;
  os << "rho=" << r.density << " |S|=" << r.nodes.size()
     << " passes=" << r.passes;
  return os.str();
}

std::string Summarize(const DirectedDensestResult& r) {
  std::ostringstream os;
  os << "rho=" << r.density << " |S|=" << r.s_nodes.size()
     << " |T|=" << r.t_nodes.size() << " c=" << r.c << " passes=" << r.passes;
  return os.str();
}

}  // namespace densest
