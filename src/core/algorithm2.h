// Copyright 2026 The densest Authors.
// Algorithm 2 of the paper: streaming (3+3eps)-approximation for the
// densest subgraph with at least k nodes (rho*_{>=k}); a (2+2eps)
// guarantee when the optimum itself has more than k nodes (Lemma 10).

#ifndef DENSEST_CORE_ALGORITHM2_H_
#define DENSEST_CORE_ALGORITHM2_H_

#include "common/cancel.h"
#include "common/status.h"
#include "core/density.h"
#include "graph/undirected_graph.h"
#include "stream/edge_stream.h"

namespace densest {

class PassEngine;

/// \brief Knobs for Algorithm 2.
struct Algorithm2Options {
  /// Minimum size of the returned subgraph.
  NodeId min_size = 1;
  /// Paper epsilon: per pass, exactly ceil(eps/(1+eps) |S|) of the
  /// lowest-degree below-threshold nodes are removed (never more than the
  /// below-threshold candidate count). Must be > 0 for multi-node removal;
  /// epsilon = 0 degenerates to one node per pass.
  double epsilon = 0.5;
  /// Safety cap on passes (0 = uncapped).
  uint64_t max_passes = 1000000;
  /// Record a PassSnapshot per pass.
  bool record_trace = true;
  /// Pass engine to run on; nullptr = shared DefaultPassEngine() (not
  /// thread-safe — supply a private engine for concurrent runs).
  PassEngine* engine = nullptr;
  /// Optional cooperative cancellation (see Algorithm1Options::cancel).
  const CancelToken* cancel = nullptr;
};

/// Runs Algorithm 2 over an edge stream. Returns the densest intermediate
/// subgraph among those of size >= min_size; its size is guaranteed
/// >= min_size provided min_size <= num_nodes (otherwise InvalidArgument).
/// The algorithm stops early once |S| < min_size (Lemma 11).
StatusOr<UndirectedDensestResult> RunAlgorithm2(EdgeStream& stream,
                                                const Algorithm2Options& options);

/// Convenience wrapper over a CSR graph.
StatusOr<UndirectedDensestResult> RunAlgorithm2(const UndirectedGraph& g,
                                                const Algorithm2Options& options);

}  // namespace densest

#endif  // DENSEST_CORE_ALGORITHM2_H_
