// Copyright 2026 The densest Authors.
// Algorithm 3 of the paper: streaming (2+2eps)-approximation for the
// densest subgraph in *directed* graphs, for a known size ratio
// c = |S*|/|T*|; plus the outer search over c in powers of delta (§6.4).

#ifndef DENSEST_CORE_ALGORITHM3_H_
#define DENSEST_CORE_ALGORITHM3_H_

#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/density.h"
#include "graph/directed_graph.h"
#include "stream/edge_stream.h"

namespace densest {

class PassEngine;
class MultiRunEngine;

/// \brief Which set to peel when both are nonempty.
enum class DirectedRemovalRule {
  /// The paper's preferred rule: peel S when |S|/|T| >= c, else T.
  /// Needs only one degree array per pass.
  kSizeRatio,
  /// The naive alternative the paper describes first: compute both A(S)
  /// and B(T), compare the max outdegree E(i*,T) against the max indegree
  /// E(S,j*) scaled by c, and remove the side whose extreme is smaller.
  /// Costs both degree arrays every pass; kept for the ablation bench.
  kMaxDegree,
};

/// \brief Knobs for Algorithm 3 (single ratio c).
struct Algorithm3Options {
  /// Assumed ratio |S*|/|T*| (> 0).
  double c = 1.0;
  /// Paper epsilon: a pass removes from S every i with
  /// |E(i,T)| <= (1+eps) |E(S,T)|/|S| (resp. for T).
  double epsilon = 0.5;
  /// Removal-side policy (see DirectedRemovalRule).
  DirectedRemovalRule rule = DirectedRemovalRule::kSizeRatio;
  /// Safety cap on passes (0 = uncapped).
  uint64_t max_passes = 100000;
  /// Record a DirectedPassSnapshot per pass (Figure 6.5 needs this).
  bool record_trace = true;
  /// Pass engine to run on; nullptr = shared DefaultPassEngine() (not
  /// thread-safe — supply a private engine for concurrent runs).
  PassEngine* engine = nullptr;
  /// Optional cooperative cancellation (see Algorithm1Options::cancel).
  const CancelToken* cancel = nullptr;
};

/// Runs Algorithm 3 for one ratio c over an arc stream.
StatusOr<DirectedDensestResult> RunAlgorithm3(EdgeStream& stream,
                                              const Algorithm3Options& options);

/// Convenience wrapper over a CSR directed graph.
StatusOr<DirectedDensestResult> RunAlgorithm3(const DirectedGraph& g,
                                              const Algorithm3Options& options);

/// \brief Knobs for the outer c-search (§4.3 / §6.4): try c = delta^j for
/// all j with 1/n <= delta^j <= n, keep the best result. This worsens the
/// approximation by at most a factor delta.
struct CSearchOptions {
  /// Resolution of the c grid (> 1); the paper uses delta = 2.
  double delta = 2.0;
  double epsilon = 0.5;
  DirectedRemovalRule rule = DirectedRemovalRule::kSizeRatio;
  uint64_t max_passes = 100000;
  /// Record traces in the per-c results (memory heavy for big sweeps).
  bool record_trace = false;
  /// Pass engine for every run of the sweep; nullptr = DefaultPassEngine().
  /// Only consulted when `fused` is false (the fused path scans through a
  /// MultiRunEngine instead).
  PassEngine* engine = nullptr;
  /// Fuse the whole c-grid into shared physical scans (core/multi_run.h):
  /// every pass of the stream feeds all still-active c values at once, so
  /// the stream is scanned max-over-c(passes) times instead of
  /// sum-over-c(passes) times. Results are identical either way; this only
  /// changes IO. (For the one stream shape whose fused accumulation could
  /// differ in low-order FP bits — weighted with a CSR view — RunCSearch
  /// quietly runs run-by-run, keeping that guarantee unconditional.)
  /// false forces one independent run per c.
  bool fused = true;
  /// Engine for the fused path; nullptr = a private MultiRunEngine per
  /// call. Supply one to reuse its scratch across sweeps or to pick the
  /// fan-out thread count.
  MultiRunEngine* multi_engine = nullptr;
  /// Optional cooperative cancellation for the whole sweep (fused or not).
  const CancelToken* cancel = nullptr;
};

/// \brief Result of the c-search: the best run plus the whole sweep
/// (density and passes per c — the series of Figures 6.4 and 6.6).
struct [[nodiscard]] CSearchResult {
  DirectedDensestResult best;
  std::vector<DirectedDensestResult> sweep;
  /// Physical scans of the stream the whole search cost: the number of
  /// fused passes when fusing, the sum of per-run passes otherwise.
  uint64_t physical_scans = 0;
};

/// The c-grid a CSearchOptions spans: one Algorithm3Options per c = delta^j,
/// j in [-ceil(log_delta n), +ceil(log_delta n)]. Exposed so callers can
/// fuse the same grid through a MultiRunEngine themselves. Empty when
/// n == 0 or delta <= 1 (invalid; RunCSearch reports those as statuses).
std::vector<Algorithm3Options> CSearchGrid(NodeId n,
                                           const CSearchOptions& options);

/// Runs Algorithm 3 for every c in the delta-grid and returns the best.
StatusOr<CSearchResult> RunCSearch(EdgeStream& stream,
                                   const CSearchOptions& options);

/// Convenience wrapper over a CSR directed graph.
StatusOr<CSearchResult> RunCSearch(const DirectedGraph& g,
                                   const CSearchOptions& options);

}  // namespace densest

#endif  // DENSEST_CORE_ALGORITHM3_H_
