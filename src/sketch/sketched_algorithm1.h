// Copyright 2026 The densest Authors.
// Algorithm 1 running on a pluggable degree oracle — in particular the
// Count-Sketch heuristic of §5.1 that trades exactness of the degree
// counters for sublinear counter memory.

#ifndef DENSEST_SKETCH_SKETCHED_ALGORITHM1_H_
#define DENSEST_SKETCH_SKETCHED_ALGORITHM1_H_

#include "common/status.h"
#include "core/algorithm1.h"
#include "core/density.h"
#include "sketch/degree_oracle.h"
#include "stream/edge_stream.h"

namespace densest {

/// \brief Result of a sketched run plus its memory accounting.
struct [[nodiscard]] SketchedResult {
  UndirectedDensestResult result;
  /// Counter words the oracle used (t*b for a sketch, n for exact).
  uint64_t oracle_state_words = 0;
  /// Memory ratio vs exact counting: oracle_state_words / n — the bottom
  /// row of the paper's Table 4.
  double memory_ratio = 0;
};

/// Runs Algorithm 1 with `oracle` supplying the per-pass degrees. With an
/// ExactDegreeOracle this reproduces RunAlgorithm1 exactly; with a
/// SketchDegreeOracle it reproduces the paper's §5.1 heuristic.
///
/// The density rho(S) is always tracked exactly (two scalars); only the
/// per-node degree test uses the oracle. The peel logic itself lives in
/// SketchedAlgorithm1Run (sketch/sketch_runs.h), shared with the fused
/// RunSketchedSweep that drives a whole Table 4 grid from one physical
/// scan per pass.
StatusOr<SketchedResult> RunAlgorithm1WithOracle(
    EdgeStream& stream, DegreeOracle& oracle,
    const Algorithm1Options& options);

/// Convenience: builds a Count-Sketch oracle with the given dimensions and
/// runs the sketched Algorithm 1.
StatusOr<SketchedResult> RunSketchedAlgorithm1(
    EdgeStream& stream, const CountSketchOptions& sketch_options,
    uint64_t sketch_seed, const Algorithm1Options& options);

}  // namespace densest

#endif  // DENSEST_SKETCH_SKETCHED_ALGORITHM1_H_
