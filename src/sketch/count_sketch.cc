#include "sketch/count_sketch.h"

#include <algorithm>

namespace densest {

StatusOr<CountSketch> CountSketch::Create(const CountSketchOptions& options,
                                          uint64_t seed) {
  if (options.tables <= 0) {
    return Status::InvalidArgument("tables must be > 0");
  }
  if (options.buckets <= 0) {
    return Status::InvalidArgument("buckets must be > 0");
  }
  return CountSketch(options, seed);
}

CountSketch::CountSketch(const CountSketchOptions& options, uint64_t seed)
    : options_(options) {
  uint64_t sm = seed;
  seeds_.reserve(options.tables);
  sign_seeds_.reserve(options.tables);
  for (int i = 0; i < options.tables; ++i) {
    seeds_.push_back(SplitMix64(sm));
    sign_seeds_.push_back(SplitMix64(sm));
  }
  counters_.assign(static_cast<size_t>(options.tables) * options.buckets,
                   0.0);
}

void CountSketch::Update(uint32_t x, double delta) {
  for (int i = 0; i < options_.tables; ++i) {
    counters_[static_cast<size_t>(i) * options_.buckets + Bucket(i, x)] +=
        Sign(i, x) * delta;
  }
}

double CountSketch::Estimate(uint32_t x) const {
  // Median of t per-table estimates; t is tiny, so stack-sort.
  double estimates[64];
  int t = std::min(options_.tables, 64);
  for (int i = 0; i < t; ++i) {
    estimates[i] =
        counters_[static_cast<size_t>(i) * options_.buckets + Bucket(i, x)] *
        Sign(i, x);
  }
  std::sort(estimates, estimates + t);
  if (t % 2 == 1) return estimates[t / 2];
  return 0.5 * (estimates[t / 2 - 1] + estimates[t / 2]);
}

void CountSketch::Clear() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
}

}  // namespace densest
