#include "sketch/degree_oracle.h"

// DegreeOracle is an interface; vtable anchor.
