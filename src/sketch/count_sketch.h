// Copyright 2026 The densest Authors.
// Count-Sketch (Charikar, Chen, Farach-Colton, TCS 2004): sublinear-space
// frequency estimation. The paper's §5.1 heuristic replaces the O(n) exact
// degree counters with this sketch; high-degree nodes (the ones peeling
// must not remove prematurely) get high-precision estimates.

#ifndef DENSEST_SKETCH_COUNT_SKETCH_H_
#define DENSEST_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace densest {

/// \brief Knobs for the sketch dimensions.
struct CountSketchOptions {
  /// Number of independent hash tables t (the paper's experiments use 5).
  int tables = 5;
  /// Buckets per table b (the paper sweeps 30000–50000 for flickr).
  int buckets = 30000;
};

/// \brief A t x b Count-Sketch over 32-bit keys with double-valued counts.
///
/// Update(x, delta) adds delta to x's frequency; Estimate(x) returns the
/// median of the t per-table estimates. All hash functions are seeded, so
/// two sketches with equal seeds are interchangeable.
class CountSketch {
 public:
  /// Fails with InvalidArgument for non-positive dimensions.
  static StatusOr<CountSketch> Create(const CountSketchOptions& options,
                                      uint64_t seed);

  /// Adds `delta` to the frequency of key x.
  void Update(uint32_t x, double delta);

  /// Median-of-tables estimate of x's frequency.
  double Estimate(uint32_t x) const;

  /// Zeroes all counters (dimensions and seeds are kept).
  void Clear();

  /// Words of counter state (t * b) — the memory the paper's Table 4
  /// compares against the n words of exact counting.
  uint64_t StateWords() const {
    return static_cast<uint64_t>(options_.tables) * options_.buckets;
  }

  const CountSketchOptions& options() const { return options_; }

 private:
  CountSketch(const CountSketchOptions& options, uint64_t seed);

  /// Bucket of key x in table i.
  inline uint32_t Bucket(int i, uint32_t x) const {
    return static_cast<uint32_t>(
        Mix64(seeds_[i] ^ x) % static_cast<uint64_t>(options_.buckets));
  }
  /// Sign (+1/-1) of key x in table i.
  inline double Sign(int i, uint32_t x) const {
    return (Mix64(sign_seeds_[i] ^ x) & 1) ? 1.0 : -1.0;
  }

  CountSketchOptions options_;
  std::vector<uint64_t> seeds_;       // one per table
  std::vector<uint64_t> sign_seeds_;  // one per table
  std::vector<double> counters_;      // t * b, row-major
};

}  // namespace densest

#endif  // DENSEST_SKETCH_COUNT_SKETCH_H_
