#include "sketch/sketched_algorithm1.h"

#include <utility>

#include "core/pass_engine.h"
#include "graph/subgraph.h"
#include "sketch/sketch_runs.h"

namespace densest {

StatusOr<SketchedResult> RunAlgorithm1WithOracle(
    EdgeStream& stream, DegreeOracle& oracle,
    const Algorithm1Options& options) {
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  PassEngine& engine =
      options.engine != nullptr ? *options.engine : DefaultPassEngine();
  // The peel logic lives in the state machine shared with the fused
  // RunSketchedSweep driver; this loop only supplies the passes. The
  // oracle update order must match the stream, so the engine's sequential
  // batched drain is used rather than the parallel accumulators.
  SketchedAlgorithm1Run run(n, oracle, options);
  while (!run.done()) {
    oracle.BeginPass();
    UndirectedPassResult stats;
    engine.ForEachAliveEdge(stream, run.alive(), [&](const Edge& e) {
      oracle.AddIncidence(e.u, e.w);
      oracle.AddIncidence(e.v, e.w);
      stats.weight += e.w;
      ++stats.edges;
    });
    // A failing stream ends its pass early and silently; abort instead of
    // peeling on statistics of a truncated edge set. Cancellation is
    // polled per pass here — the oracle drain is order-dependent, so the
    // pass itself is the bounded unit of work.
    if (Status io = stream.status(); !io.ok()) return io;
    if (Status c = CheckCancel(options.cancel); !c.ok()) return c;
    run.ApplyPass(stats);
  }
  return run.TakeResult();
}

StatusOr<SketchedResult> RunSketchedAlgorithm1(
    EdgeStream& stream, const CountSketchOptions& sketch_options,
    uint64_t sketch_seed, const Algorithm1Options& options) {
  StatusOr<CountSketch> sketch =
      CountSketch::Create(sketch_options, sketch_seed);
  if (!sketch.ok()) return sketch.status();
  SketchDegreeOracle oracle(std::move(*sketch));
  return RunAlgorithm1WithOracle(stream, oracle, options);
}

}  // namespace densest
