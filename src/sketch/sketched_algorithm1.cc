#include "sketch/sketched_algorithm1.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/pass_engine.h"
#include "graph/subgraph.h"

namespace densest {

StatusOr<SketchedResult> RunAlgorithm1WithOracle(
    EdgeStream& stream, DegreeOracle& oracle,
    const Algorithm1Options& options) {
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");

  PassEngine& engine =
      options.engine != nullptr ? *options.engine : DefaultPassEngine();
  NodeSet alive(n, /*full=*/true);
  SketchedResult out;
  NodeSet best = alive;
  double best_density = -1.0;

  const double factor = 2.0 * (1.0 + options.epsilon);
  uint64_t pass = 0;
  while (!alive.empty() &&
         (options.max_passes == 0 || pass < options.max_passes)) {
    ++pass;
    // Pass: exact aggregates, oracle-backed per-node degrees. The oracle
    // update order must match the stream, so the engine's sequential
    // batched drain is used rather than the parallel accumulators.
    oracle.BeginPass();
    double weight = 0;
    EdgeId edges = 0;
    engine.ForEachAliveEdge(stream, alive, [&](const Edge& e) {
      oracle.AddIncidence(e.u, e.w);
      oracle.AddIncidence(e.v, e.w);
      weight += e.w;
      ++edges;
    });
    const double rho = weight / static_cast<double>(alive.size());
    if (rho > best_density) {
      best_density = rho;
      best = alive;
    }

    const double threshold = factor * rho;
    std::vector<std::pair<double, NodeId>> estimates;
    estimates.reserve(alive.size());
    NodeId removed = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (!alive.Contains(u)) continue;
      double est = oracle.EstimateDegree(u);
      if (est <= threshold) {
        alive.Remove(u);
        ++removed;
      } else {
        estimates.emplace_back(est, u);
      }
    }
    // A noisy sketch can over-estimate every candidate and remove nobody,
    // which would degrade to one pass per node. Force geometric progress
    // the way Algorithm 2 does: drop the lowest-estimate nodes, at least a
    // 1/16 fraction (or eps/(1+eps) if that is larger), so the pass count
    // stays O(log |S|) even under heavy sketch noise.
    if (removed == 0 && !estimates.empty()) {
      double fraction = std::max(
          options.epsilon / (1.0 + options.epsilon), 1.0 / 16.0);
      size_t quota = static_cast<size_t>(
          fraction * static_cast<double>(estimates.size()));
      quota = std::min(std::max<size_t>(quota, 1), estimates.size());
      std::nth_element(estimates.begin(), estimates.begin() + (quota - 1),
                       estimates.end());
      for (size_t i = 0; i < quota; ++i) {
        alive.Remove(estimates[i].second);
        ++removed;
      }
    }

    if (options.record_trace) {
      PassSnapshot snap;
      snap.pass = pass;
      snap.nodes = static_cast<NodeId>(alive.size() + removed);
      snap.edges = edges;
      snap.weight = weight;
      snap.density = rho;
      snap.threshold = threshold;
      snap.removed = removed;
      out.result.trace.push_back(snap);
    }
  }

  out.result.nodes = best.ToVector();
  out.result.density = best_density < 0 ? 0.0 : best_density;
  out.result.passes = pass;
  out.oracle_state_words = oracle.StateWords();
  out.memory_ratio =
      static_cast<double>(out.oracle_state_words) / static_cast<double>(n);
  return out;
}

StatusOr<SketchedResult> RunSketchedAlgorithm1(
    EdgeStream& stream, const CountSketchOptions& sketch_options,
    uint64_t sketch_seed, const Algorithm1Options& options) {
  StatusOr<CountSketch> sketch =
      CountSketch::Create(sketch_options, sketch_seed);
  if (!sketch.ok()) return sketch.status();
  SketchDegreeOracle oracle(std::move(*sketch));
  return RunAlgorithm1WithOracle(stream, oracle, options);
}

}  // namespace densest
