// Copyright 2026 The densest Authors.
// Per-run state machine of the §5.1 sketched Algorithm 1, plus the fused
// Table 4 sweep that drives a whole grid of sketch configurations from
// shared physical scans.
//
// SketchedAlgorithm1Run is to RunAlgorithm1WithOracle what core/peel_runs.h
// is to RunAlgorithm{1,2,3}: the between-pass state of ONE oracle-backed
// run — alive set, best-so-far subgraph, the DegreeOracle itself as private
// per-run state — consuming one completed pass at a time through ApplyPass.
// Both drivers (the sequential RunAlgorithm1WithOracle and the fused
// RunSketchedSweep below) share exactly this peeling logic, so a fused
// sketch run can never diverge from a sequential one by reimplementation
// drift.
//
// Fusion and bit-identity: a Count-Sketch is an order-dependent FP
// accumulator (counter[bucket] += sign * w in stream order), so a fused
// sketched run is accumulated sequentially within the run — it walks each
// round's shards in order, which IS stream order, and reports
// parallel_shards() false so work-major rounds never split it. Its exact
// scalar aggregates (pass weight, edge count) are summed the same way.
// That makes fused results bit-identical to sequential ones on EVERY
// stream shape — including weighted CSR streams, where the plane-based
// fused runs need a fallback; the sequential sketched driver uses the same
// stream-order scalar drain.

#ifndef DENSEST_SKETCH_SKETCH_RUNS_H_
#define DENSEST_SKETCH_SKETCH_RUNS_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/algorithm1.h"
#include "core/multi_run.h"
#include "core/pass_engine.h"
#include "graph/subgraph.h"
#include "sketch/degree_oracle.h"
#include "sketch/sketched_algorithm1.h"

namespace densest {

/// \brief One run of the oracle-backed Algorithm 1, driven pass by pass.
///
/// Protocol per pass: the driver calls oracle().BeginPass(), feeds every
/// surviving edge endpoint to oracle().AddIncidence IN STREAM ORDER while
/// summing the exact pass aggregates, then hands those aggregates to
/// ApplyPass, which queries the oracle for the removal sweep.
class SketchedAlgorithm1Run {
 public:
  /// Owning constructor (the fused sweep: each run carries its oracle).
  SketchedAlgorithm1Run(NodeId n, std::unique_ptr<DegreeOracle> oracle,
                        const Algorithm1Options& options);
  /// Non-owning constructor (RunAlgorithm1WithOracle's caller-supplied
  /// oracle). `oracle` must outlive the run.
  SketchedAlgorithm1Run(NodeId n, DegreeOracle& oracle,
                        const Algorithm1Options& options);

  bool done() const { return done_; }
  const NodeSet& alive() const { return alive_; }
  DegreeOracle& oracle() { return *oracle_; }

  /// Consumes one pass worth of exact aggregates: updates the best
  /// subgraph, peels nodes whose oracle degree estimate is below the
  /// threshold (forcing geometric progress under heavy sketch noise),
  /// records the trace, and decides whether the run is finished.
  void ApplyPass(const UndirectedPassResult& stats);

  /// Finalizes the result (call once, after done()).
  SketchedResult TakeResult();

 private:
  Algorithm1Options options_;
  NodeId n_;
  std::unique_ptr<DegreeOracle> owned_oracle_;
  DegreeOracle* oracle_;
  NodeSet alive_;
  NodeSet best_;
  double best_density_ = -1.0;
  uint64_t pass_ = 0;
  bool done_ = false;
  SketchedResult result_;
};

/// \brief One configuration of the fused Table 4 sweep.
struct SketchedSweepRun {
  /// The peeling knobs (epsilon, max_passes, record_trace; compaction is
  /// ignored — oracle-backed runs always scan the stream).
  Algorithm1Options options;
  /// True runs the exact-counting baseline (ExactDegreeOracle, the
  /// denominator of Table 4's ratios) instead of a sketch.
  bool exact = false;
  /// Sketch dimensions and seed (used when !exact).
  CountSketchOptions sketch;
  uint64_t sketch_seed = 0;
};

/// Runs every configuration of `runs` fused over shared physical scans of
/// `stream`: one oracle-backed peeling run per entry, each carrying its
/// private DegreeOracle, all fed from ONE scan per pass round, so a whole
/// Table 4 grid costs max-over-runs(passes) scans instead of the sum.
/// Results are positionally matched to `runs` and bit-identical to
/// sequential RunAlgorithm1WithOracle calls with equal oracles, for any
/// engine thread count and fan-out mode. Uses a private MultiRunEngine
/// when `engine` is null; on success the engine's last_physical_passes() /
/// last_logical_passes() report the fused saving.
StatusOr<std::vector<SketchedResult>> RunSketchedSweep(
    EdgeStream& stream, const std::vector<SketchedSweepRun>& runs,
    MultiRunEngine* engine = nullptr);

}  // namespace densest

#endif  // DENSEST_SKETCH_SKETCH_RUNS_H_
