#include "sketch/sketch_runs.h"

#include <algorithm>
#include <utility>

namespace densest {

SketchedAlgorithm1Run::SketchedAlgorithm1Run(
    NodeId n, std::unique_ptr<DegreeOracle> oracle,
    const Algorithm1Options& options)
    : options_(options),
      n_(n),
      owned_oracle_(std::move(oracle)),
      oracle_(owned_oracle_.get()),
      alive_(n, /*full=*/true),
      best_(alive_) {
  done_ = alive_.empty();
}

SketchedAlgorithm1Run::SketchedAlgorithm1Run(NodeId n, DegreeOracle& oracle,
                                             const Algorithm1Options& options)
    : options_(options),
      n_(n),
      oracle_(&oracle),
      alive_(n, /*full=*/true),
      best_(alive_) {
  done_ = alive_.empty();
}

void SketchedAlgorithm1Run::ApplyPass(const UndirectedPassResult& stats) {
  ++pass_;
  const double rho = stats.weight / static_cast<double>(alive_.size());
  if (rho > best_density_) {
    best_density_ = rho;
    best_ = alive_;
  }

  const double factor = 2.0 * (1.0 + options_.epsilon);
  const double threshold = factor * rho;
  std::vector<std::pair<double, NodeId>> estimates;
  estimates.reserve(alive_.size());
  NodeId removed = 0;
  for (NodeId u = 0; u < n_; ++u) {
    if (!alive_.Contains(u)) continue;
    double est = oracle_->EstimateDegree(u);
    if (est <= threshold) {
      alive_.Remove(u);
      ++removed;
    } else {
      estimates.emplace_back(est, u);
    }
  }
  // A noisy sketch can over-estimate every candidate and remove nobody,
  // which would degrade to one pass per node. Force geometric progress
  // the way Algorithm 2 does: drop the lowest-estimate nodes, at least a
  // 1/16 fraction (or eps/(1+eps) if that is larger), so the pass count
  // stays O(log |S|) even under heavy sketch noise.
  if (removed == 0 && !estimates.empty()) {
    double fraction =
        std::max(options_.epsilon / (1.0 + options_.epsilon), 1.0 / 16.0);
    size_t quota = static_cast<size_t>(
        fraction * static_cast<double>(estimates.size()));
    quota = std::min(std::max<size_t>(quota, 1), estimates.size());
    std::nth_element(estimates.begin(), estimates.begin() + (quota - 1),
                     estimates.end());
    for (size_t i = 0; i < quota; ++i) {
      alive_.Remove(estimates[i].second);
      ++removed;
    }
  }

  if (options_.record_trace) {
    PassSnapshot snap;
    snap.pass = pass_;
    snap.nodes = static_cast<NodeId>(alive_.size() + removed);
    snap.edges = stats.edges;
    snap.weight = stats.weight;
    snap.density = rho;
    snap.threshold = threshold;
    snap.removed = removed;
    result_.result.trace.push_back(snap);
  }

  done_ = alive_.empty() ||
          (options_.max_passes != 0 && pass_ >= options_.max_passes);
}

SketchedResult SketchedAlgorithm1Run::TakeResult() {
  result_.result.nodes = best_.ToVector();
  result_.result.density = best_density_ < 0 ? 0.0 : best_density_;
  result_.result.passes = pass_;
  result_.result.io_passes = pass_;  // oracle runs always scan the stream
  // certified_band stays 0: the oracle's degree estimates carry relative
  // error, which voids Lemma 1's deterministic proof — the sketched answer
  // is served uncertified (Answer::certified == false).
  result_.oracle_state_words = oracle_->StateWords();
  result_.memory_ratio = static_cast<double>(result_.oracle_state_words) /
                         static_cast<double>(n_);
  return std::move(result_);
}

namespace {

/// A SketchedAlgorithm1Run adapted to MultiRunEngine's fan-out. The oracle
/// is an order-dependent FP accumulator, so the whole round is consumed
/// sequentially in shard (= stream) order and parallel_shards() is false:
/// work-major rounds schedule this run as one whole-round task. The exact
/// pass aggregates are summed in the same stream order, matching the
/// sequential driver's scalar drain bit for bit on every stream shape.
class FusedSketchedRun final : public MultiRunEngine::FusedRun {
 public:
  FusedSketchedRun(NodeId n, std::unique_ptr<DegreeOracle> oracle,
                   const Algorithm1Options& options)
      : run_(n, std::move(oracle), options) {}

  bool done() const override { return run_.done(); }
  void BeginPass() override {
    run_.oracle().BeginPass();
    weight_ = 0.0;
    edges_ = 0;
  }
  bool parallel_shards() const override { return false; }
  void AccumulateShard(std::span<const Edge> shard, size_t) override {
    const NodeSet& alive = run_.alive();
    DegreeOracle& oracle = run_.oracle();
    for (const Edge& e : shard) {
      if (alive.ContainsBoth(e.u, e.v)) {
        oracle.AddIncidence(e.u, e.w);
        oracle.AddIncidence(e.v, e.w);
        weight_ += e.w;
        ++edges_;
      }
    }
  }
  void FinishPass() override {
    UndirectedPassResult stats;
    stats.edges = edges_;
    stats.weight = weight_;
    run_.ApplyPass(stats);
  }
  SketchedResult TakeResult() { return run_.TakeResult(); }

 private:
  SketchedAlgorithm1Run run_;
  double weight_ = 0.0;
  EdgeId edges_ = 0;
};

}  // namespace

StatusOr<std::vector<SketchedResult>> RunSketchedSweep(
    EdgeStream& stream, const std::vector<SketchedSweepRun>& runs,
    MultiRunEngine* engine) {
  if (runs.empty()) {
    // Mirror the Run*Runs entry points: an empty sweep still zeroes the
    // engine's scan counters (Drive of zero runs scans nothing), so a
    // caller reusing the engine never reads the previous sweep's totals.
    if (engine != nullptr) {
      if (Status s = engine->Drive(stream, {}); !s.ok()) return s;
    }
    return std::vector<SketchedResult>{};
  }
  const NodeId n = stream.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  for (const SketchedSweepRun& run : runs) {
    if (run.options.epsilon < 0) {
      return Status::InvalidArgument("epsilon must be >= 0");
    }
  }

  std::vector<std::unique_ptr<FusedSketchedRun>> states;
  states.reserve(runs.size());
  for (const SketchedSweepRun& run : runs) {
    std::unique_ptr<DegreeOracle> oracle;
    if (run.exact) {
      oracle = std::make_unique<ExactDegreeOracle>(n);
    } else {
      StatusOr<CountSketch> sketch =
          CountSketch::Create(run.sketch, run.sketch_seed);
      if (!sketch.ok()) return sketch.status();
      oracle = std::make_unique<SketchDegreeOracle>(std::move(*sketch));
    }
    states.push_back(std::make_unique<FusedSketchedRun>(
        n, std::move(oracle), run.options));
  }

  std::unique_ptr<MultiRunEngine> local;
  if (engine == nullptr) {
    local = std::make_unique<MultiRunEngine>();
    engine = local.get();
  }
  std::vector<MultiRunEngine::FusedRun*> fused;
  fused.reserve(states.size());
  for (auto& state : states) fused.push_back(state.get());
  // One token governs the shared scan (see RunDirectedRuns): the first
  // non-null per-run token.
  const CancelToken* cancel = nullptr;
  for (const SketchedSweepRun& run : runs) {
    if (run.options.cancel != nullptr) {
      cancel = run.options.cancel;
      break;
    }
  }
  if (Status s = engine->Drive(stream, fused, cancel); !s.ok()) return s;

  std::vector<SketchedResult> results;
  results.reserve(states.size());
  uint64_t logical = 0;
  for (auto& state : states) {
    results.push_back(state->TakeResult());
    logical += results.back().result.passes;
  }
  engine->RecordLogicalPasses(logical);
  return results;
}

}  // namespace densest
