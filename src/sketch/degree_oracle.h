// Copyright 2026 The densest Authors.
// Degree oracles: the per-pass degree counting abstraction that lets the
// peeling algorithm run on exact counters or on a Count-Sketch (§5.1)
// without changing the algorithm.

#ifndef DENSEST_SKETCH_DEGREE_ORACLE_H_
#define DENSEST_SKETCH_DEGREE_ORACLE_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "graph/types.h"
#include "sketch/count_sketch.h"

namespace densest {

/// \brief Per-pass degree counting interface. A pass calls BeginPass once,
/// AddIncidence for each surviving edge endpoint, then EstimateDegree
/// during the removal sweep.
class DegreeOracle {
 public:
  virtual ~DegreeOracle() = default;

  /// Resets all counters (degrees are recounted every pass because the
  /// alive set shrinks).
  virtual void BeginPass() = 0;
  /// Records weight `w` of an edge incident to node u.
  virtual void AddIncidence(NodeId u, double w) = 0;
  /// Estimated induced degree of u in the current pass.
  virtual double EstimateDegree(NodeId u) const = 0;
  /// Words of counter state (for the Table 4 memory comparison).
  virtual uint64_t StateWords() const = 0;
};

/// \brief Exact O(n)-word counting (the default Algorithm 1 behaviour).
class ExactDegreeOracle : public DegreeOracle {
 public:
  explicit ExactDegreeOracle(NodeId num_nodes) : degrees_(num_nodes, 0.0) {}

  void BeginPass() override {
    std::fill(degrees_.begin(), degrees_.end(), 0.0);
  }
  void AddIncidence(NodeId u, double w) override { degrees_[u] += w; }
  double EstimateDegree(NodeId u) const override { return degrees_[u]; }
  uint64_t StateWords() const override { return degrees_.size(); }

 private:
  std::vector<double> degrees_;
};

/// \brief Count-Sketch-backed counting using t*b words (§5.1).
class SketchDegreeOracle : public DegreeOracle {
 public:
  explicit SketchDegreeOracle(CountSketch sketch)
      : sketch_(std::move(sketch)) {}

  void BeginPass() override { sketch_.Clear(); }
  void AddIncidence(NodeId u, double w) override { sketch_.Update(u, w); }
  double EstimateDegree(NodeId u) const override {
    return sketch_.Estimate(u);
  }
  uint64_t StateWords() const override { return sketch_.StateWords(); }

 private:
  CountSketch sketch_;
};

}  // namespace densest

#endif  // DENSEST_SKETCH_DEGREE_ORACLE_H_
