// Copyright 2026 The densest Authors.
// Chung–Lu random graphs with power-law expected degrees — the main
// generator for social-network stand-ins.

#ifndef DENSEST_GEN_CHUNG_LU_H_
#define DENSEST_GEN_CHUNG_LU_H_

#include "common/random.h"
#include "graph/edge_list.h"

namespace densest {

/// \brief Parameters for the Chung–Lu power-law generator.
struct ChungLuOptions {
  NodeId num_nodes = 10000;
  /// Target edge count; the output has at most this many edges (duplicates
  /// and self-loops from the sampling process are discarded).
  EdgeId num_edges = 50000;
  /// Power-law exponent beta of the expected degree sequence (typical
  /// social graphs: 2.1 – 2.8). Expected degree of rank-i node is
  /// proportional to (i + i0)^(-1/(beta-1)).
  double exponent = 2.3;
  /// Rank offset i0; larger values flatten the head of the distribution
  /// (tames the largest hubs).
  double rank_offset = 10.0;
  /// Generate arcs instead of undirected edges.
  bool directed = false;
};

/// Samples a Chung–Lu graph: endpoints of each edge are drawn independently
/// with probability proportional to their expected degree, duplicates
/// removed. Degree distribution follows the configured power law.
/// Deterministic given the seed.
EdgeList ChungLu(const ChungLuOptions& options, uint64_t seed);

}  // namespace densest

#endif  // DENSEST_GEN_CHUNG_LU_H_
