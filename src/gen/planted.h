// Copyright 2026 The densest Authors.
// Planted dense-structure generators: a sparse background plus one or more
// dense blocks whose location is known, so experiments have a ground truth.

#ifndef DENSEST_GEN_PLANTED_H_
#define DENSEST_GEN_PLANTED_H_

#include <vector>

#include "common/random.h"
#include "graph/edge_list.h"

namespace densest {

/// \brief One planted dense undirected block.
struct PlantedBlock {
  /// Number of nodes in the block.
  NodeId size = 50;
  /// Internal edge probability (1.0 = clique).
  double internal_p = 0.5;
};

/// \brief Result of a planted generation: the graph plus the ground truth.
struct PlantedGraph {
  EdgeList edges;
  /// Node ids of each planted block, in the order the blocks were given.
  std::vector<std::vector<NodeId>> blocks;
};

/// Plants dense ER blocks on disjoint random node subsets of a background
/// G(n, m_background) graph. Blocks must fit: sum of sizes <= n.
PlantedGraph PlantDenseBlocks(NodeId n, EdgeId background_edges,
                              const std::vector<PlantedBlock>& blocks,
                              uint64_t seed);

/// \brief A planted directed (S*, T*) pair for the directed problem:
/// every node of S* points to most of T* (arc probability `p`), on top of
/// a directed background.
struct PlantedDirectedGraph {
  EdgeList arcs;
  std::vector<NodeId> s_nodes;
  std::vector<NodeId> t_nodes;
};

/// Plants an S->T dense bipartite-style block (|S| = s_size, |T| = t_size,
/// arc prob p; S and T are disjoint) on a directed G(n, m) background.
PlantedDirectedGraph PlantDirectedBlock(NodeId n, EdgeId background_edges,
                                        NodeId s_size, NodeId t_size, double p,
                                        uint64_t seed);

}  // namespace densest

#endif  // DENSEST_GEN_PLANTED_H_
