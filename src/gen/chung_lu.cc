#include "gen/chung_lu.h"

#include <cmath>
#include <unordered_set>
#include <vector>

namespace densest {

EdgeList ChungLu(const ChungLuOptions& options, uint64_t seed) {
  const NodeId n = options.num_nodes;
  EdgeList out(n);
  if (n < 2 || options.num_edges == 0) return out;
  Rng rng(seed);

  // Cumulative weight table for endpoint sampling.
  const double gamma = 1.0 / (options.exponent - 1.0);
  std::vector<double> cumulative(n);
  double total = 0;
  for (NodeId i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i) + options.rank_offset, -gamma);
    cumulative[i] = total;
  }

  auto sample_node = [&]() -> NodeId {
    double x = rng.UniformDouble() * total;
    // Binary search the cumulative table.
    NodeId lo = 0, hi = n - 1;
    while (lo < hi) {
      NodeId mid = lo + (hi - lo) / 2;
      if (cumulative[mid] < x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };

  std::unordered_set<uint64_t> seen;
  seen.reserve(options.num_edges * 2);
  // Cap the attempt budget: extremely dense parameterizations could
  // otherwise loop forever re-sampling duplicates.
  const EdgeId max_attempts = options.num_edges * 20;
  EdgeId attempts = 0;
  while (out.num_edges() < options.num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId u = sample_node();
    NodeId v = sample_node();
    if (u == v) continue;
    if (!options.directed && u > v) std::swap(u, v);
    uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) out.Add(u, v);
  }
  return out;
}

}  // namespace densest
