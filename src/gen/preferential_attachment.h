// Copyright 2026 The densest Authors.
// Preferential attachment generators, including the deterministic weighted
// variant used by the paper's Lemma 6 pass lower bound.

#ifndef DENSEST_GEN_PREFERENTIAL_ATTACHMENT_H_
#define DENSEST_GEN_PREFERENTIAL_ATTACHMENT_H_

#include "common/random.h"
#include "graph/edge_list.h"

namespace densest {

/// Barabási–Albert preferential attachment: nodes arrive one at a time,
/// each attaching `edges_per_node` edges to existing nodes chosen with
/// probability proportional to their current degree. Produces a power-law
/// degree sequence. Deterministic given the seed.
EdgeList BarabasiAlbert(NodeId num_nodes, NodeId edges_per_node,
                        uint64_t seed);

/// The deterministic weighted preferential-attachment process from the
/// paper's Lemma 6: node u (arriving t-th) adds an edge to *every* existing
/// node v with weight proportional to v's current weighted degree. The
/// resulting weighted degree sequence follows a power law, which forces
/// Algorithm 1 to take Omega(log n) passes. O(n^2) edges — keep n modest.
EdgeList DeterministicWeightedPA(NodeId num_nodes);

}  // namespace densest

#endif  // DENSEST_GEN_PREFERENTIAL_ATTACHMENT_H_
