#include "gen/disjointness.h"

#include <cassert>

namespace densest {

DisjointnessInstance MakeDisjointnessInstance(NodeId num_indices, int q,
                                              bool yes, double fill,
                                              uint64_t seed) {
  assert(q >= 2);
  DisjointnessInstance out;
  out.yes = yes;
  const NodeId qn = static_cast<NodeId>(q);
  out.edges = EdgeList(num_indices * qn);
  Rng rng(seed);

  // Player j holding index i contributes the star from u_{j,i} to every
  // other node of gadget i (the lemma's q-1 edges).
  auto add_player_edges = [&](NodeId gadget, int j) {
    NodeId base = gadget * qn;
    for (int j2 = 0; j2 < q; ++j2) {
      if (j2 == j) continue;
      out.edges.Add(base + static_cast<NodeId>(j),
                    base + static_cast<NodeId>(j2));
    }
  };

  out.special_gadget = yes ? static_cast<NodeId>(
                                 rng.UniformU64(num_indices))
                           : kInvalidNode;
  for (NodeId i = 0; i < num_indices; ++i) {
    if (yes && i == out.special_gadget) {
      for (int j = 0; j < q; ++j) add_player_edges(i, j);
    } else if (rng.Bernoulli(fill)) {
      add_player_edges(i, static_cast<int>(rng.UniformU64(q)));
    }
  }
  // YES: clique gadget with doubled edges -> 2 * C(q,2) weight / q nodes.
  // NO: star gadget -> (q-1) weight / q nodes.
  out.expected_density =
      yes ? static_cast<double>(q - 1)
          : (static_cast<double>(q) - 1.0) / static_cast<double>(q);
  return out;
}

}  // namespace densest
