#include "gen/lower_bound.h"

#include <cassert>

#include "gen/regular.h"

namespace densest {

NodeId Lemma5NumNodes(int k) {
  NodeId total = 0;
  for (int i = 1; i <= k; ++i) {
    total += static_cast<NodeId>(1) << (2 * k + 1 - i);
  }
  return total;
}

EdgeList Lemma5Construction(int k) {
  assert(k >= 1 && k <= 12);
  EdgeList out(Lemma5NumNodes(k));
  NodeId base = 0;
  for (int i = 1; i <= k; ++i) {
    NodeId block_nodes = static_cast<NodeId>(1) << (2 * k + 1 - i);
    NodeId degree = static_cast<NodeId>(1) << (i - 1);
    EdgeList block = CirculantRegular(block_nodes, degree);
    for (const Edge& e : block.edges()) {
      out.Add(base + e.u, base + e.v);
    }
    base += block_nodes;
  }
  return out;
}

}  // namespace densest
