// Copyright 2026 The densest Authors.
// Regular graph constructions (circulant graphs).

#ifndef DENSEST_GEN_REGULAR_H_
#define DENSEST_GEN_REGULAR_H_

#include "graph/edge_list.h"

namespace densest {

/// Builds a d-regular circulant graph on n nodes: node i is adjacent to
/// i +- 1, ..., i +- d/2 (mod n); if d is odd, also to i + n/2 (requires n
/// even). Requires d < n and (d even or n even). Density is exactly d/2.
EdgeList CirculantRegular(NodeId n, NodeId d);

}  // namespace densest

#endif  // DENSEST_GEN_REGULAR_H_
