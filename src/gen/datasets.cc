#include "gen/datasets.h"

#include "common/random.h"
#include "gen/chung_lu.h"
#include "gen/planted.h"
#include "gen/rmat.h"
#include "graph/graph_builder.h"

namespace densest {

namespace {

/// Cleans a raw generated edge list (dedup, drop self-loops), interpreting
/// it as undirected iff `undirected`.
EdgeList Clean(const EdgeList& raw, bool undirected) {
  // ignore_weights: overlaps between the background generator and planted
  // blocks must collapse to simple unit edges, like the paper's graphs.
  GraphBuilderOptions options;
  options.ignore_weights = true;
  GraphBuilder b(options);
  b.ReserveNodes(raw.num_nodes());
  for (const Edge& e : raw.edges()) b.Add(e.u, e.v, e.w);
  return std::move(b.BuildEdgeList(undirected)).value();
}

}  // namespace

std::vector<DatasetInfo> Table1Datasets() {
  return {
      {"flickr-sim", "flickr", false, 976000, 7600000, 100000, 760000},
      {"im-sim", "im", false, 645000000, 6100000000ULL, 250000, 2400000},
      {"livejournal-sim", "livejournal", true, 4840000, 68900000, 131072,
       1500000},
      {"twitter-sim", "twitter", true, 50700000, 2700000000ULL, 131072,
       1600000},
  };
}

EdgeList MakeFlickrSim(uint64_t seed) {
  ChungLuOptions cl;
  cl.num_nodes = 100000;
  cl.num_edges = 730000;
  cl.exponent = 2.2;
  cl.rank_offset = 8.0;
  EdgeList graph = ChungLu(cl, seed);

  // Two dense photo-group communities: flickr's densest subgraph in the
  // paper is a tightly connected core (rho = 557 at full scale).
  std::vector<PlantedBlock> blocks = {{160, 0.75}, {80, 0.9}};
  PlantedGraph planted =
      PlantDenseBlocks(cl.num_nodes, /*background_edges=*/0, blocks,
                       seed ^ 0xf11c4b10cULL);
  graph.Append(planted.edges);
  return Clean(graph, /*undirected=*/true);
}

EdgeList MakeImSim(uint64_t seed) {
  ChungLuOptions cl;
  cl.num_nodes = 250000;
  cl.num_edges = 2350000;
  cl.exponent = 2.6;  // messenger contact lists: flatter tail than flickr
  cl.rank_offset = 20.0;
  EdgeList graph = ChungLu(cl, seed);

  std::vector<PlantedBlock> blocks = {{220, 0.6}};
  PlantedGraph planted = PlantDenseBlocks(cl.num_nodes, 0, blocks,
                                          seed ^ 0x1a15eedULL);
  graph.Append(planted.edges);
  return Clean(graph, /*undirected=*/true);
}

EdgeList MakeLiveJournalSim(uint64_t seed) {
  RmatOptions rm;
  rm.scale = 17;
  rm.num_edges = 1350000;
  rm.a = 0.48;  // milder skew than twitter: blogs link more diffusely
  rm.b = 0.21;
  rm.c = 0.21;
  rm.d = 0.10;
  rm.directed = true;
  EdgeList arcs = Rmat(rm, seed);

  // Mildly asymmetric dense community (c* = 260/110 ~ 2.4, off the powers
  // of every delta grid): the best c is near-but-not-exactly 1-ish, as the
  // paper observes for livejournal (c = 0.436), and coarser delta grids
  // miss it — the Table 3 degradation.
  PlantedDirectedGraph planted = PlantDirectedBlock(
      static_cast<NodeId>(1) << rm.scale, /*background_edges=*/0,
      /*s_size=*/260, /*t_size=*/110, /*p=*/0.6, seed ^ 0x11feULL);
  arcs.Append(planted.arcs);
  return Clean(arcs, /*undirected=*/false);
}

EdgeList MakeTwitterSim(uint64_t seed) {
  RmatOptions rm;
  rm.scale = 17;
  rm.num_edges = 1300000;
  rm.a = 0.55;  // more skew than livejournal
  rm.b = 0.20;
  rm.c = 0.15;
  rm.d = 0.10;
  rm.directed = true;
  EdgeList arcs = Rmat(rm, seed);
  const NodeId n = static_cast<NodeId>(1) << rm.scale;

  // Celebrity structure: a 6000-strong follower pool where everyone follows
  // most of a 30-celebrity set (the paper notes ~600 users followed by
  // >30M others). The densest (S, T) pair is then strongly size-skewed
  // (c = |S|/|T| = 200), reproducing the paper's twitter observation that
  // the best c is far from 1.
  Rng rng(seed ^ 0x7137e4ULL);
  std::vector<uint64_t> chosen = rng.SampleWithoutReplacement(n, 6030);
  std::vector<NodeId> celebs(chosen.begin(), chosen.begin() + 30);
  for (size_t i = 30; i < chosen.size(); ++i) {
    NodeId follower = static_cast<NodeId>(chosen[i]);
    for (NodeId celeb : celebs) {
      if (rng.Bernoulli(0.85)) arcs.Add(follower, celeb);
    }
  }
  return Clean(arcs, /*undirected=*/false);
}

std::vector<SnapStandInSpec> Table2Specs() {
  // clique_size targets the paper-reported rho*: a p-dense block of size s
  // has density ~ p * (s - 1) / 2.
  return {
      {"as20000102", 6474, 13233, 9.29, 20, 0.98},
      {"ca-AstroPh", 18772, 396160, 32.12, 66, 1.0},
      {"ca-CondMat", 23133, 186936, 13.47, 28, 1.0},
      {"ca-GrQc", 5242, 28980, 22.39, 46, 1.0},
      {"ca-HepPh", 12008, 237010, 119.0, 239, 1.0},
      {"ca-HepTh", 9877, 51971, 15.5, 32, 1.0},
      {"email-Enron", 36692, 367662, 37.34, 80, 0.95},
  };
}

EdgeList MakeSnapStandIn(const SnapStandInSpec& spec, uint64_t seed) {
  // Planted block edge budget comes out of the total so |E| matches the row.
  EdgeId planted_edges = static_cast<EdgeId>(
      spec.clique_p * spec.clique_size * (spec.clique_size - 1) / 2);
  EdgeId background =
      spec.edges > planted_edges ? spec.edges - planted_edges : spec.edges / 2;

  ChungLuOptions cl;
  cl.num_nodes = spec.nodes;
  cl.num_edges = background;
  cl.exponent = 2.3;
  cl.rank_offset = 10.0;
  EdgeList graph = ChungLu(cl, seed);

  std::vector<PlantedBlock> blocks = {
      {spec.clique_size, spec.clique_p}};
  PlantedGraph planted = PlantDenseBlocks(spec.nodes, 0, blocks,
                                          seed ^ 0x5eedb10cULL);
  graph.Append(planted.edges);
  return Clean(graph, /*undirected=*/true);
}

}  // namespace densest
