// Copyright 2026 The densest Authors.
// Synthetic stand-ins for the paper's evaluation datasets.
//
// The paper evaluates on flickr (976K nodes / 7.6M edges), im (645M / 6.1B),
// livejournal (4.84M / 68.9M), twitter (50.7M / 2.7B), plus seven SNAP
// graphs for the quality study (Table 2). None of those are available
// offline, and im/twitter exceed laptop scale, so this module generates
// structurally matched stand-ins: heavy-tailed degree sequences (Chung–Lu /
// R-MAT), plus planted dense structures that mimic the dense cores real
// social graphs have. See DESIGN.md §3 for the substitution argument.

#ifndef DENSEST_GEN_DATASETS_H_
#define DENSEST_GEN_DATASETS_H_

#include <string>
#include <vector>

#include "graph/edge_list.h"

namespace densest {

/// \brief Descriptor of a stand-in dataset: what the paper used and what we
/// generate (Table 1 of the paper).
struct DatasetInfo {
  std::string name;           ///< e.g. "flickr-sim"
  std::string paper_name;     ///< e.g. "flickr"
  bool directed = false;
  NodeId paper_nodes = 0;     ///< node count reported in the paper
  EdgeId paper_edges = 0;     ///< edge count reported in the paper
  NodeId sim_nodes = 0;       ///< node count we generate
  EdgeId sim_edges = 0;       ///< approximate edge count we generate
};

/// Returns descriptors for the four Table 1 stand-ins, in paper order.
std::vector<DatasetInfo> Table1Datasets();

/// flickr stand-in: undirected Chung–Lu power law (beta=2.2) with two
/// planted dense communities. ~100K nodes / ~760K edges (paper: 976K/7.6M).
EdgeList MakeFlickrSim(uint64_t seed);

/// im (Yahoo! Messenger) stand-in: undirected, flatter power law
/// (beta=2.6) with one large planted community. ~250K nodes / ~2.4M edges
/// (paper: 645M/6.1B — scaled ~2500x to laptop size).
EdgeList MakeImSim(uint64_t seed);

/// livejournal stand-in: directed R-MAT with a planted near-symmetric
/// (S*, T*) block, |S*| ~ |T*| (best c near 1, as the paper observes).
/// ~131K nodes / ~1.5M arcs (paper: 4.84M/68.9M).
EdgeList MakeLiveJournalSim(uint64_t seed);

/// twitter stand-in: directed, highly skewed — a pool of followers
/// all following a small celebrity set, so the best c is far from 1
/// (paper §6.4's observation about 600 users with >30M followers).
/// ~131K nodes / ~1.6M arcs (paper: 50.7M/2.7B).
EdgeList MakeTwitterSim(uint64_t seed);

/// \brief One of the seven SNAP graphs in the paper's Table 2 quality study.
struct SnapStandInSpec {
  std::string name;     ///< paper's dataset name, e.g. "ca-AstroPh"
  NodeId nodes;         ///< |V| as reported in Table 2
  EdgeId edges;         ///< |E| as reported in Table 2
  double paper_rho;     ///< rho*(G) the paper's LP reported
  NodeId clique_size;   ///< planted near-clique size targeting paper_rho
  double clique_p;      ///< internal edge probability of the planted block
};

/// The seven Table 2 rows with their paper-reported parameters.
std::vector<SnapStandInSpec> Table2Specs();

/// Generates the stand-in for one Table 2 row: Chung–Lu background with the
/// row's |V| and |E|, plus a planted near-clique sized so the densest
/// subgraph has roughly the paper-reported density.
EdgeList MakeSnapStandIn(const SnapStandInSpec& spec, uint64_t seed);

}  // namespace densest

#endif  // DENSEST_GEN_DATASETS_H_
