// Copyright 2026 The densest Authors.
// R-MAT recursive matrix graphs (Chakrabarti, Zhan, Faloutsos, SDM 2004):
// skewed, community-structured graphs used as web/social stand-ins.

#ifndef DENSEST_GEN_RMAT_H_
#define DENSEST_GEN_RMAT_H_

#include "common/random.h"
#include "graph/edge_list.h"

namespace densest {

/// \brief Parameters for the R-MAT generator.
struct RmatOptions {
  /// log2 of the number of nodes (num_nodes = 2^scale).
  int scale = 14;
  /// Target number of edges (duplicates/self-loops discarded, so the output
  /// has at most this many).
  EdgeId num_edges = 1 << 18;
  /// Quadrant probabilities; must sum to ~1. Defaults are the classic
  /// Graph500-like skewed setting.
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  /// Per-level multiplicative noise on the quadrant probabilities,
  /// preventing exact self-similarity artifacts.
  double noise = 0.1;
  /// Emit arcs instead of undirected edges.
  bool directed = false;
};

/// Generates an R-MAT graph. Deterministic given the seed.
EdgeList Rmat(const RmatOptions& options, uint64_t seed);

}  // namespace densest

#endif  // DENSEST_GEN_RMAT_H_
