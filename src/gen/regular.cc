#include "gen/regular.h"

#include <cassert>

namespace densest {

EdgeList CirculantRegular(NodeId n, NodeId d) {
  assert(d < n);
  assert(d % 2 == 0 || n % 2 == 0);
  EdgeList out(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId k = 1; k <= d / 2; ++k) {
      NodeId j = (i + k) % n;
      out.Add(i, j);  // each {i, i+k} emitted once, by its lower offset side
    }
  }
  if (d % 2 == 1) {
    for (NodeId i = 0; i < n / 2; ++i) out.Add(i, i + n / 2);
  }
  return out;
}

}  // namespace densest
