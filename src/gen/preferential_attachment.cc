#include "gen/preferential_attachment.h"

#include <vector>

namespace densest {

EdgeList BarabasiAlbert(NodeId num_nodes, NodeId edges_per_node,
                        uint64_t seed) {
  EdgeList out(num_nodes);
  if (num_nodes < 2 || edges_per_node == 0) return out;
  Rng rng(seed);

  // Endpoint-repetition trick: sampling a uniform entry of `targets` is
  // sampling a node proportional to its degree.
  std::vector<NodeId> targets;
  targets.reserve(static_cast<size_t>(num_nodes) * edges_per_node * 2);

  // Seed graph: a single edge 0 - 1.
  out.Add(0, 1);
  targets.push_back(0);
  targets.push_back(1);

  std::vector<NodeId> chosen;
  for (NodeId u = 2; u < num_nodes; ++u) {
    chosen.clear();
    NodeId want = std::min<NodeId>(edges_per_node, u);
    // Rejection-sample distinct neighbors; u is small early on so cap tries.
    int tries = 0;
    while (chosen.size() < want && tries < 200) {
      ++tries;
      NodeId v = targets[rng.UniformU64(targets.size())];
      bool dup = false;
      for (NodeId c : chosen) {
        if (c == v) {
          dup = true;
          break;
        }
      }
      if (!dup) chosen.push_back(v);
    }
    for (NodeId v : chosen) {
      out.Add(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return out;
}

EdgeList DeterministicWeightedPA(NodeId num_nodes) {
  EdgeList out(num_nodes);
  if (num_nodes < 2) return out;
  // wdeg[v] = current weighted degree of v. Each arriving node distributes
  // one unit of weight across all existing nodes proportionally to wdeg,
  // so the total weight grows by exactly 1 per arrival and the resulting
  // weighted degree sequence is a power law (Lemma 6).
  std::vector<double> wdeg(num_nodes, 0.0);
  for (NodeId u = 1; u < num_nodes; ++u) {
    double total = 0;
    for (NodeId v = 0; v < u; ++v) total += wdeg[v];
    for (NodeId v = 0; v < u; ++v) {
      double w = (total == 0) ? 1.0 / static_cast<double>(u)
                              : wdeg[v] / total;
      if (w <= 0) continue;
      out.Add(u, v, w);
      wdeg[v] += w;
      wdeg[u] += w;
    }
  }
  return out;
}

}  // namespace densest
