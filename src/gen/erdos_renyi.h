// Copyright 2026 The densest Authors.
// Erdős–Rényi random graph generators.

#ifndef DENSEST_GEN_ERDOS_RENYI_H_
#define DENSEST_GEN_ERDOS_RENYI_H_

#include "common/random.h"
#include "graph/edge_list.h"

namespace densest {

/// Samples a simple undirected G(n, m) graph: m distinct edges chosen
/// uniformly among the n(n-1)/2 possible. Requires m <= n(n-1)/2.
/// Deterministic given the seed.
EdgeList ErdosRenyiGnm(NodeId n, EdgeId m, uint64_t seed);

/// Samples undirected G(n, p): each of the n(n-1)/2 edges present
/// independently with probability p. Uses geometric skipping, so the cost is
/// proportional to the number of edges generated, not n^2.
EdgeList ErdosRenyiGnp(NodeId n, double p, uint64_t seed);

/// Directed variant of G(n, m): m distinct arcs (u != v) chosen uniformly.
EdgeList ErdosRenyiDirectedGnm(NodeId n, EdgeId m, uint64_t seed);

}  // namespace densest

#endif  // DENSEST_GEN_ERDOS_RENYI_H_
