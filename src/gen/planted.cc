#include "gen/planted.h"

#include "gen/erdos_renyi.h"

namespace densest {

PlantedGraph PlantDenseBlocks(NodeId n, EdgeId background_edges,
                              const std::vector<PlantedBlock>& blocks,
                              uint64_t seed) {
  PlantedGraph out;
  out.edges = ErdosRenyiGnm(n, background_edges, seed);
  out.edges.set_num_nodes(n);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);

  NodeId total = 0;
  for (const PlantedBlock& b : blocks) total += b.size;
  std::vector<uint64_t> chosen = rng.SampleWithoutReplacement(n, total);

  size_t cursor = 0;
  for (const PlantedBlock& b : blocks) {
    std::vector<NodeId> members;
    members.reserve(b.size);
    for (NodeId i = 0; i < b.size; ++i) {
      members.push_back(static_cast<NodeId>(chosen[cursor++]));
    }
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (rng.Bernoulli(b.internal_p)) {
          out.edges.Add(members[i], members[j]);
        }
      }
    }
    out.blocks.push_back(std::move(members));
  }
  return out;
}

PlantedDirectedGraph PlantDirectedBlock(NodeId n, EdgeId background_edges,
                                        NodeId s_size, NodeId t_size, double p,
                                        uint64_t seed) {
  PlantedDirectedGraph out;
  out.arcs = ErdosRenyiDirectedGnm(n, background_edges, seed);
  out.arcs.set_num_nodes(n);
  Rng rng(seed ^ 0xc2b2ae3d27d4eb4fULL);

  std::vector<uint64_t> chosen =
      rng.SampleWithoutReplacement(n, s_size + t_size);
  for (NodeId i = 0; i < s_size; ++i) {
    out.s_nodes.push_back(static_cast<NodeId>(chosen[i]));
  }
  for (NodeId i = 0; i < t_size; ++i) {
    out.t_nodes.push_back(static_cast<NodeId>(chosen[s_size + i]));
  }
  for (NodeId s : out.s_nodes) {
    for (NodeId t : out.t_nodes) {
      if (rng.Bernoulli(p)) out.arcs.Add(s, t);
    }
  }
  return out;
}

}  // namespace densest
