// Copyright 2026 The densest Authors.
// The Lemma 7 construction (§4.1.1): the multiparty set-disjointness
// instances that prove any p-pass alpha-approximation needs
// Omega(n/(p alpha^2)) space. A YES instance hides one q-clique among star
// gadgets; a NO instance is all stars. Any algorithm with approximation
// factor better than the rho_yes/rho_no = q gap distinguishes them.

#ifndef DENSEST_GEN_DISJOINTNESS_H_
#define DENSEST_GEN_DISJOINTNESS_H_

#include "common/random.h"
#include "graph/edge_list.h"

namespace densest {

/// \brief One reduction instance.
struct DisjointnessInstance {
  /// The constructed graph: num_indices disjoint gadgets of q nodes each.
  /// Edges are a multigraph (parallel edges carry summed weight after
  /// cleaning), matching the lemma's edge accounting.
  EdgeList edges;
  /// Whether this is a YES instance (one gadget is a q-clique).
  bool yes = false;
  /// Index of the clique gadget (YES instances only).
  NodeId special_gadget = 0;
  /// Density of the densest gadget: q-1 for YES, 1 - 1/q for NO.
  double expected_density = 0;
};

/// Builds an instance with `num_indices` gadgets of `q` players each.
/// In a NO instance every index is held by at most one player (gadgets are
/// stars); in a YES instance one random index is held by all players (its
/// gadget becomes a clique with doubled edges). Each gadget independently
/// gets a player with probability `fill`, mirroring the promise problem.
DisjointnessInstance MakeDisjointnessInstance(NodeId num_indices, int q,
                                              bool yes, double fill,
                                              uint64_t seed);

}  // namespace densest

#endif  // DENSEST_GEN_DISJOINTNESS_H_
