#include "gen/rmat.h"

#include <unordered_set>
#include <utility>

namespace densest {

EdgeList Rmat(const RmatOptions& options, uint64_t seed) {
  const NodeId n = static_cast<NodeId>(1) << options.scale;
  EdgeList out(n);
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(options.num_edges * 2);

  const EdgeId max_attempts = options.num_edges * 20;
  EdgeId attempts = 0;
  while (out.num_edges() < options.num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId u = 0, v = 0;
    double a = options.a, b = options.b, c = options.c, d = options.d;
    for (int level = 0; level < options.scale; ++level) {
      double r = rng.UniformDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
      // Multiplicative noise, renormalized (Graph500-style).
      if (options.noise > 0) {
        auto jitter = [&](double x) {
          return x * (1.0 - options.noise / 2 +
                      options.noise * rng.UniformDouble());
        };
        a = jitter(a);
        b = jitter(b);
        c = jitter(c);
        d = jitter(d);
        double s = a + b + c + d;
        a /= s;
        b /= s;
        c /= s;
        d /= s;
      }
    }
    if (u == v) continue;
    if (!options.directed && u > v) std::swap(u, v);
    uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) out.Add(u, v);
  }
  out.set_num_nodes(n);
  return out;
}

}  // namespace densest
