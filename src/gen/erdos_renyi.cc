#include "gen/erdos_renyi.h"

#include <cmath>
#include <unordered_set>

namespace densest {

namespace {

inline uint64_t PairKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

EdgeList ErdosRenyiGnm(NodeId n, EdgeId m, uint64_t seed) {
  EdgeList out(n);
  if (n < 2) return out;
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  while (out.num_edges() < m) {
    NodeId u = static_cast<NodeId>(rng.UniformU64(n));
    NodeId v = static_cast<NodeId>(rng.UniformU64(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (seen.insert(PairKey(u, v)).second) out.Add(u, v);
  }
  return out;
}

EdgeList ErdosRenyiGnp(NodeId n, double p, uint64_t seed) {
  EdgeList out(n);
  if (n < 2 || p <= 0.0) return out;
  Rng rng(seed);
  if (p >= 1.0) {
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v) out.Add(u, v);
    return out;
  }
  // Batagelj–Brandes geometric skipping over the implicit edge enumeration.
  const double log1mp = std::log(1.0 - p);
  int64_t v = 1;
  int64_t u = static_cast<int64_t>(-1);
  const int64_t nn = static_cast<int64_t>(n);
  while (v < nn) {
    double r = 1.0 - rng.UniformDouble();
    u += 1 + static_cast<int64_t>(std::floor(std::log(r) / log1mp));
    while (u >= v && v < nn) {
      u -= v;
      ++v;
    }
    if (v < nn) out.Add(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return out;
}

EdgeList ErdosRenyiDirectedGnm(NodeId n, EdgeId m, uint64_t seed) {
  EdgeList out(n);
  if (n < 2) return out;
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  while (out.num_edges() < m) {
    NodeId u = static_cast<NodeId>(rng.UniformU64(n));
    NodeId v = static_cast<NodeId>(rng.UniformU64(n));
    if (u == v) continue;
    if (seen.insert(PairKey(u, v)).second) out.Add(u, v);
  }
  return out;
}

}  // namespace densest
