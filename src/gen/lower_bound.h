// Copyright 2026 The densest Authors.
// The paper's pass-lower-bound constructions (§4.1.1).

#ifndef DENSEST_GEN_LOWER_BOUND_H_
#define DENSEST_GEN_LOWER_BOUND_H_

#include "graph/edge_list.h"

namespace densest {

/// \brief The Lemma 5 construction: k disjoint blocks G_1..G_k where G_i is
/// a 2^(i-1)-regular graph on 2^(2k+1-i) nodes, so every block has exactly
/// 2^(2k-1) edges. Algorithm 1 peels only O(log k) blocks per pass, forcing
/// Omega(log n / log log n) passes.
///
/// Node count is sum_i 2^(2k+1-i) ≈ 2^(2k); keep k <= 10 on a laptop.
EdgeList Lemma5Construction(int k);

/// Number of nodes of the Lemma 5 construction for a given k.
NodeId Lemma5NumNodes(int k);

}  // namespace densest

#endif  // DENSEST_GEN_LOWER_BOUND_H_
